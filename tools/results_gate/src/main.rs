//! `results_gate` — the CI results-regression gate.
//!
//! Compares freshly regenerated `METRICS_*.json` / `BENCH_*.json` documents
//! against the baselines committed under `results/`:
//!
//! * **schema drift is a hard failure** — every metrics document must carry
//!   `schema: "vdc-metrics/1"` and exactly the six top-level keys that
//!   schema defines; histograms must carry exactly the eight stat keys the
//!   exporter writes;
//! * **deterministic values must match** — counters, SLO accounting, and
//!   histogram sample counts compare exactly; power/energy gauges and
//!   histogram statistics compare within a relative tolerance;
//! * **wall-clock noise is ignored** — statistics of `*_ns` histograms and
//!   the timing fields of `BENCH_*.json` records vary run to run, so only
//!   their shape (names, sample counts) is gated.
//!
//! On mismatch the gate prints one line per moved value plus a unified diff
//! of the canonicalized documents (wall-clock fields masked) and exits
//! non-zero. `--bless` copies the fresh documents over the baselines
//! instead, for intentional result changes.
//!
//! ```text
//! results_gate --baseline results --fresh target/results-gate/results [--bless]
//! ```

use std::process::ExitCode;
use vdc_dcsim::json::JsonValue;

/// Relative tolerance for float comparisons (power, energy, slack).
/// Reruns are bit-identical on one host; the slack absorbs libm drift
/// across toolchains, not real regressions.
const DEFAULT_TOL: f64 = 1e-9;

/// Exact set of top-level keys of a `vdc-metrics/1` document.
const METRICS_KEYS: [&str; 6] = ["schema", "run", "counters", "gauges", "histograms", "slo"];

/// Exact set of keys of one exported histogram entry.
const HISTOGRAM_KEYS: [&str; 8] = ["name", "count", "min", "max", "mean", "p50", "p90", "p99"];

/// Exact set of top-level keys of a `BENCH_*.json` document.
const BENCH_KEYS: [&str; 3] = ["bench", "samples", "results"];

/// Timing fields of a bench record — wall-clock, never gated on value.
/// Peak-RSS samples ride along: like wall-clock they are host-dependent
/// measurements (allocator, page size, concurrent load), so the gate
/// checks their presence, not their value — the hard RSS *budget* is
/// enforced by the bench bin itself, which exits non-zero on overshoot.
const BENCH_TIMING_KEYS: [&str; 8] = [
    "median_ns",
    "min_ns",
    "mean_ns",
    "max_ns",
    "iters_per_sample",
    "sample_ns",
    "peak_rss_kib",
    "rss_budget_kib",
];

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        return true; // covers exact zeros and infinities of equal sign
    }
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

fn keys(v: &JsonValue) -> Vec<String> {
    match v {
        JsonValue::Object(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
        _ => Vec::new(),
    }
}

/// Is this histogram (or gauge) wall-clock timing data? Peak-RSS samples
/// are treated the same way: host-dependent measurements whose shape is
/// gated but whose value is not.
fn is_wall_clock(name: &str) -> bool {
    name.ends_with("_ns") || name.ends_with("_rss_kib")
}

/// Validate the shape of a `vdc-metrics/1` document. Returns one problem
/// line per violation; an empty vector means the schema holds.
fn validate_metrics_schema(file: &str, doc: &JsonValue) -> Vec<String> {
    let mut problems = Vec::new();
    let mut push = |msg: String| problems.push(format!("{file}: {msg}"));

    let have = keys(doc);
    if have.is_empty() {
        push("top level is not a JSON object".to_string());
        return problems;
    }
    for k in METRICS_KEYS {
        if !have.iter().any(|h| h == k) {
            push(format!("schema drift: missing top-level key {k:?}"));
        }
    }
    for k in &have {
        if !METRICS_KEYS.contains(&k.as_str()) {
            push(format!("schema drift: unknown top-level key {k:?}"));
        }
    }
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("vdc-metrics/1") => {}
        Some(other) => push(format!(
            "schema drift: schema is {other:?}, expected \"vdc-metrics/1\""
        )),
        None => push("schema drift: \"schema\" is not a string".to_string()),
    }
    if doc.get("run").and_then(JsonValue::as_str).is_none() {
        push("schema drift: \"run\" is not a string".to_string());
    }
    for section in ["counters", "gauges"] {
        match doc.get(section) {
            Some(JsonValue::Object(fields)) => {
                for (k, v) in fields {
                    if v.as_f64().is_none() {
                        push(format!("schema drift: {section}.{k} is not a number"));
                    }
                }
            }
            _ => push(format!("schema drift: {section:?} is not an object")),
        }
    }
    match doc.get("histograms").and_then(JsonValue::as_array) {
        Some(entries) => {
            for (i, entry) in entries.iter().enumerate() {
                let have = keys(entry);
                let label = entry
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("#{i}"));
                for k in HISTOGRAM_KEYS {
                    if !have.iter().any(|h| h == k) {
                        push(format!("schema drift: histogram {label} missing key {k:?}"));
                    }
                }
                for k in &have {
                    if !HISTOGRAM_KEYS.contains(&k.as_str()) {
                        push(format!("schema drift: histogram {label} unknown key {k:?}"));
                    }
                }
            }
        }
        None => push("schema drift: \"histograms\" is not an array".to_string()),
    }
    if doc.get("slo").and_then(JsonValue::as_array).is_none() {
        push("schema drift: \"slo\" is not an array".to_string());
    }
    problems
}

/// Compare two scalar-valued objects (counters or gauges).
fn compare_object(
    file: &str,
    section: &str,
    base: &JsonValue,
    fresh: &JsonValue,
    exact: bool,
    tol: f64,
    problems: &mut Vec<String>,
) {
    let base_keys = keys(base);
    let fresh_keys = keys(fresh);
    for k in &base_keys {
        if !fresh_keys.contains(k) {
            problems.push(format!("{file}: {section}.{k} disappeared"));
        }
    }
    for k in &fresh_keys {
        if !base_keys.contains(k) {
            problems.push(format!("{file}: {section}.{k} is new (not in baseline)"));
        }
    }
    for k in &base_keys {
        let (Some(b), Some(f)) = (
            base.get(k).and_then(JsonValue::as_f64),
            fresh.get(k).and_then(JsonValue::as_f64),
        ) else {
            continue; // covered by key-set / schema checks
        };
        let ok = if exact { b == f } else { rel_close(b, f, tol) };
        if !ok {
            problems.push(format!(
                "{file}: {section}.{k} moved: baseline {b}, fresh {f}"
            ));
        }
    }
}

/// Compare two `vdc-metrics/1` documents (both already schema-validated).
fn compare_metrics(file: &str, base: &JsonValue, fresh: &JsonValue, tol: f64) -> Vec<String> {
    let mut problems = Vec::new();

    let b_run = base.get("run").and_then(JsonValue::as_str).unwrap_or("");
    let f_run = fresh.get("run").and_then(JsonValue::as_str).unwrap_or("");
    if b_run != f_run {
        problems.push(format!(
            "{file}: run moved: baseline {b_run:?}, fresh {f_run:?}"
        ));
    }

    let null = JsonValue::Null;
    compare_object(
        file,
        "counters",
        base.get("counters").unwrap_or(&null),
        fresh.get("counters").unwrap_or(&null),
        true,
        tol,
        &mut problems,
    );
    compare_object(
        file,
        "gauges",
        base.get("gauges").unwrap_or(&null),
        fresh.get("gauges").unwrap_or(&null),
        false,
        tol,
        &mut problems,
    );

    let empty: [JsonValue; 0] = [];
    let b_hist = base
        .get("histograms")
        .and_then(JsonValue::as_array)
        .unwrap_or(&empty);
    let f_hist = fresh
        .get("histograms")
        .and_then(JsonValue::as_array)
        .unwrap_or(&empty);
    let hist_name = |h: &JsonValue| {
        h.get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let b_names: Vec<String> = b_hist.iter().map(&hist_name).collect();
    let f_names: Vec<String> = f_hist.iter().map(&hist_name).collect();
    if b_names != f_names {
        problems.push(format!(
            "{file}: histogram set moved: baseline [{}], fresh [{}]",
            b_names.join(", "),
            f_names.join(", ")
        ));
    } else {
        for (b, f) in b_hist.iter().zip(f_hist) {
            let name = hist_name(b);
            let stat =
                |h: &JsonValue, k: &str| h.get(k).and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
            let (bc, fc) = (stat(b, "count"), stat(f, "count"));
            if bc != fc {
                problems.push(format!(
                    "{file}: histograms.{name}.count moved: baseline {bc}, fresh {fc}"
                ));
            }
            if is_wall_clock(&name) {
                continue; // stats are wall-clock noise by design
            }
            for k in ["min", "max", "mean", "p50", "p90", "p99"] {
                let (bv, fv) = (stat(b, k), stat(f, k));
                if !rel_close(bv, fv, tol) {
                    problems.push(format!(
                        "{file}: histograms.{name}.{k} moved: baseline {bv}, fresh {fv}"
                    ));
                }
            }
        }
    }

    let b_slo = base
        .get("slo")
        .and_then(JsonValue::as_array)
        .unwrap_or(&empty);
    let f_slo = fresh
        .get("slo")
        .and_then(JsonValue::as_array)
        .unwrap_or(&empty);
    if b_slo.len() != f_slo.len() {
        problems.push(format!(
            "{file}: slo entry count moved: baseline {}, fresh {}",
            b_slo.len(),
            f_slo.len()
        ));
    } else {
        for (i, (b, f)) in b_slo.iter().zip(f_slo).enumerate() {
            let label = b
                .get("app")
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .unwrap_or_else(|| format!("#{i}"));
            let b_keys = keys(b);
            if b_keys != keys(f) {
                problems.push(format!("{file}: slo[{label}] key set moved"));
                continue;
            }
            for k in &b_keys {
                match (b.get(k), f.get(k)) {
                    (Some(JsonValue::Str(bs)), Some(JsonValue::Str(fs))) if bs != fs => {
                        problems.push(format!(
                            "{file}: slo[{label}].{k} moved: baseline {bs:?}, fresh {fs:?}"
                        ));
                    }
                    (Some(bv), Some(fv)) => {
                        if let (Some(bn), Some(fn_)) = (bv.as_f64(), fv.as_f64()) {
                            if !rel_close(bn, fn_, tol) {
                                problems.push(format!(
                                    "{file}: slo[{label}].{k} moved: baseline {bn}, fresh {fn_}"
                                ));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    problems
}

/// Compare two `BENCH_*.json` documents: name, configured sample count, and
/// the (group, id) sequence must match; all timings are ignored.
fn compare_bench(file: &str, base: &JsonValue, fresh: &JsonValue) -> Vec<String> {
    let mut problems = Vec::new();
    for (doc, which) in [(base, "baseline"), (fresh, "fresh")] {
        let have = keys(doc);
        for k in BENCH_KEYS {
            if !have.iter().any(|h| h == k) {
                problems.push(format!("{file}: {which} missing top-level key {k:?}"));
            }
        }
    }
    if !problems.is_empty() {
        return problems;
    }
    let b_name = base.get("bench").and_then(JsonValue::as_str).unwrap_or("");
    let f_name = fresh.get("bench").and_then(JsonValue::as_str).unwrap_or("");
    if b_name != f_name {
        problems.push(format!(
            "{file}: bench moved: baseline {b_name:?}, fresh {f_name:?}"
        ));
    }
    let empty: [JsonValue; 0] = [];
    let ids = |doc: &JsonValue| -> Vec<String> {
        doc.get("results")
            .and_then(JsonValue::as_array)
            .unwrap_or(&empty)
            .iter()
            .map(|r| {
                format!(
                    "{}/{}",
                    r.get("group").and_then(JsonValue::as_str).unwrap_or("?"),
                    r.get("id").and_then(JsonValue::as_str).unwrap_or("?")
                )
            })
            .collect()
    };
    let (b_ids, f_ids) = (ids(base), ids(fresh));
    if b_ids != f_ids {
        problems.push(format!(
            "{file}: benchmark set moved: baseline [{}], fresh [{}]",
            b_ids.join(", "),
            f_ids.join(", ")
        ));
    }
    problems
}

/// Pretty-print a document one scalar per line, masking wall-clock fields,
/// so unified diffs line up with the gate's comparison policy.
fn canonical_lines(doc: &JsonValue) -> Vec<String> {
    let mut out = Vec::new();
    let bench = doc.get("bench").is_some();
    render(doc, "", "", bench, false, &mut out);
    out
}

fn render(
    v: &JsonValue,
    path: &str,
    indent: &str,
    bench: bool,
    masked: bool,
    out: &mut Vec<String>,
) {
    match v {
        JsonValue::Object(fields) => {
            // A histogram entry is wall-clock when its name says so.
            let wall = v
                .get("name")
                .and_then(JsonValue::as_str)
                .is_some_and(is_wall_clock);
            for (k, val) in fields {
                let mask = masked
                    || (wall && k != "name" && k != "count")
                    || (bench && BENCH_TIMING_KEYS.contains(&k.as_str()));
                let child = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                render(val, &child, indent, bench, mask, out);
            }
        }
        JsonValue::Array(items) => {
            out.push(format!("{indent}{path}: [{}]", items.len()));
            for (i, item) in items.iter().enumerate() {
                let label = item
                    .get("name")
                    .or_else(|| item.get("app"))
                    .or_else(|| item.get("id"))
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .unwrap_or_else(|| i.to_string());
                render(
                    item,
                    &format!("{path}[{label}]"),
                    indent,
                    bench,
                    masked,
                    out,
                );
            }
        }
        scalar => {
            let rendered = if masked {
                "(wall-clock, ignored)".to_string()
            } else {
                match scalar {
                    JsonValue::Null => "null".to_string(),
                    JsonValue::Bool(b) => b.to_string(),
                    JsonValue::Num(x) => vdc_dcsim::json::num(*x),
                    JsonValue::Str(s) => format!("{s:?}"),
                    _ => unreachable!(),
                }
            };
            out.push(format!("{indent}{path}: {rendered}"));
        }
    }
}

/// Minimal unified diff (LCS over lines, full context collapsed).
fn unified_diff(base: &[String], fresh: &[String], file: &str) -> String {
    let n = base.len();
    let m = fresh.len();
    // LCS length table.
    let mut lcs = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if base[i] == fresh[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut out = format!("--- {file} (baseline)\n+++ {file} (fresh)\n");
    let (mut i, mut j) = (0, 0);
    let mut context_gap = false;
    while i < n || j < m {
        if i < n && j < m && base[i] == fresh[j] {
            if !context_gap {
                out.push_str("  ...\n");
                context_gap = true;
            }
            i += 1;
            j += 1;
        } else if i < n && (j == m || lcs[i + 1][j] >= lcs[i][j + 1]) {
            out.push_str(&format!("- {}\n", base[i]));
            context_gap = false;
            i += 1;
        } else {
            out.push_str(&format!("+ {}\n", fresh[j]));
            context_gap = false;
            j += 1;
        }
    }
    out
}

fn read_doc(path: &std::path::Path) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    JsonValue::parse(&text).map_err(|e| format!("{}: invalid JSON: {e}", path.display()))
}

/// Result-document file names (`METRICS_*.json` / `BENCH_*.json`) in a
/// directory, sorted for stable report order.
fn result_files(dir: &std::path::Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: cannot list: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: cannot list: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if (name.starts_with("METRICS_") || name.starts_with("BENCH_")) && name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

struct GateReport {
    problems: Vec<String>,
    diffs: Vec<String>,
    checked: usize,
}

fn run_gate(
    baseline_dir: &std::path::Path,
    fresh_dir: &std::path::Path,
    tol: f64,
) -> Result<GateReport, String> {
    let baseline_files = result_files(baseline_dir)?;
    let fresh_files = result_files(fresh_dir)?;
    if baseline_files.is_empty() {
        return Err(format!(
            "{}: no METRICS_*.json / BENCH_*.json baselines found",
            baseline_dir.display()
        ));
    }
    let mut report = GateReport {
        problems: Vec::new(),
        diffs: Vec::new(),
        checked: 0,
    };
    for name in &fresh_files {
        if !baseline_files.contains(name) {
            report.problems.push(format!(
                "{name}: fresh results have no committed baseline (run with --bless to add it)"
            ));
        }
    }
    for name in &baseline_files {
        if !fresh_files.contains(name) {
            report.problems.push(format!(
                "{name}: baseline was not regenerated by the fresh run"
            ));
            continue;
        }
        report.checked += 1;
        let base = read_doc(&baseline_dir.join(name))?;
        let fresh = read_doc(&fresh_dir.join(name))?;
        let mut problems = Vec::new();
        if name.starts_with("METRICS_") {
            problems.extend(validate_metrics_schema(name, &fresh));
            if problems.is_empty() {
                problems.extend(validate_metrics_schema(
                    &format!("{name} (baseline)"),
                    &base,
                ));
                problems.extend(compare_metrics(name, &base, &fresh, tol));
            }
        } else {
            problems.extend(compare_bench(name, &base, &fresh));
        }
        if !problems.is_empty() {
            report.diffs.push(unified_diff(
                &canonical_lines(&base),
                &canonical_lines(&fresh),
                name,
            ));
        }
        report.problems.extend(problems);
    }
    Ok(report)
}

fn bless(
    baseline_dir: &std::path::Path,
    fresh_dir: &std::path::Path,
) -> Result<Vec<String>, String> {
    let mut blessed = Vec::new();
    for name in result_files(fresh_dir)? {
        // Never bless a document that does not parse or violates the schema.
        let doc = read_doc(&fresh_dir.join(name.as_str()))?;
        if name.starts_with("METRICS_") {
            let problems = validate_metrics_schema(&name, &doc);
            if !problems.is_empty() {
                return Err(problems.join("\n"));
            }
        }
        for ext_name in [name.clone(), name.replace(".json", ".tsv")] {
            let src = fresh_dir.join(&ext_name);
            if src.exists() {
                std::fs::copy(&src, baseline_dir.join(&ext_name))
                    .map_err(|e| format!("{ext_name}: cannot bless: {e}"))?;
                blessed.push(ext_name);
            }
        }
    }
    Ok(blessed)
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let baseline = arg_value(&args, "--baseline").unwrap_or_else(|| "results".to_string());
    let Some(fresh) = arg_value(&args, "--fresh") else {
        eprintln!("usage: results_gate --fresh <dir> [--baseline <dir>] [--tol <rel>] [--bless]");
        return ExitCode::FAILURE;
    };
    let tol: f64 = match arg_value(&args, "--tol") {
        None => DEFAULT_TOL,
        Some(t) => match t.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("--tol {t:?} is not a number");
                return ExitCode::FAILURE;
            }
        },
    };
    let baseline_dir = std::path::Path::new(&baseline);
    let fresh_dir = std::path::Path::new(&fresh);

    if args.iter().any(|a| a == "--bless") {
        return match bless(baseline_dir, fresh_dir) {
            Ok(blessed) => {
                for name in &blessed {
                    println!("blessed {name}");
                }
                println!("results_gate: {} baseline files rewritten", blessed.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("results_gate: refusing to bless:\n{e}");
                ExitCode::FAILURE
            }
        };
    }

    match run_gate(baseline_dir, fresh_dir, tol) {
        Ok(report) if report.problems.is_empty() => {
            println!(
                "results_gate: OK — {} result files match the committed baselines",
                report.checked
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            eprintln!("results_gate: results moved vs committed baselines:");
            for p in &report.problems {
                eprintln!("  {p}");
            }
            for d in &report.diffs {
                eprintln!("\n{d}");
            }
            eprintln!(
                "\nresults_gate: FAILED ({} problems). If the change is intentional, rerun \
                 with --bless and commit the refreshed results/.",
                report.problems.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("results_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_doc(counter: i64, gauge: f64, ns_mean: f64) -> JsonValue {
        let text = format!(
            r#"{{"schema":"vdc-metrics/1","run":"t","counters":{{"a.b":{counter}}},
                "gauges":{{"p.w":{gauge}}},
                "histograms":[
                  {{"name":"x.sample_ns","count":4,"min":1.0,"max":{ns_mean},"mean":{ns_mean},"p50":1.0,"p90":1.0,"p99":1.0}},
                  {{"name":"x.power_w","count":4,"min":1.0,"max":2.0,"mean":1.5,"p50":1.5,"p90":2.0,"p99":2.0}}],
                "slo":[{{"app":"App1","target_ms":500.0,"violations":3}}]}}"#
        );
        JsonValue::parse(&text).unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let d = metrics_doc(7, 123.456, 10.0);
        assert!(validate_metrics_schema("f", &d).is_empty());
        assert!(compare_metrics("f", &d, &d, DEFAULT_TOL).is_empty());
    }

    #[test]
    fn wall_clock_histogram_stats_are_ignored_but_counts_are_not() {
        let base = metrics_doc(7, 1.0, 10.0);
        let fresh = metrics_doc(7, 1.0, 99999.0); // only the _ns stats moved
        assert!(compare_metrics("f", &base, &fresh, DEFAULT_TOL).is_empty());
    }

    #[test]
    fn counter_delta_fails_exactly() {
        let base = metrics_doc(7, 1.0, 10.0);
        let fresh = metrics_doc(8, 1.0, 10.0);
        let problems = compare_metrics("f", &base, &fresh, DEFAULT_TOL);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("counters.a.b moved"), "{problems:?}");
    }

    #[test]
    fn gauge_delta_respects_relative_tolerance() {
        let base = metrics_doc(7, 1000.0, 10.0);
        let within = metrics_doc(7, 1000.0 * (1.0 + 1e-12), 10.0);
        let outside = metrics_doc(7, 1000.1, 10.0);
        assert!(compare_metrics("f", &base, &within, DEFAULT_TOL).is_empty());
        let problems = compare_metrics("f", &base, &outside, DEFAULT_TOL);
        assert!(problems.iter().any(|p| p.contains("gauges.p.w moved")));
    }

    #[test]
    fn schema_drift_is_reported() {
        let mut doc = metrics_doc(7, 1.0, 10.0);
        if let JsonValue::Object(fields) = &mut doc {
            fields.push(("extra".to_string(), JsonValue::Num(1.0)));
            fields.retain(|(k, _)| k != "slo");
        }
        let problems = validate_metrics_schema("f", &doc);
        assert!(problems
            .iter()
            .any(|p| p.contains("unknown top-level key \"extra\"")));
        assert!(problems
            .iter()
            .any(|p| p.contains("missing top-level key \"slo\"")));
        let bad_schema = JsonValue::parse(
            r#"{"schema":"vdc-metrics/2","run":"t","counters":{},"gauges":{},"histograms":[],"slo":[]}"#,
        )
        .unwrap();
        let problems = validate_metrics_schema("f", &bad_schema);
        assert!(problems.iter().any(|p| p.contains("vdc-metrics/2")));
    }

    #[test]
    fn slo_and_histogram_count_deltas_fail() {
        let base = metrics_doc(7, 1.0, 10.0);
        let fresh_text = r#"{"schema":"vdc-metrics/1","run":"t","counters":{"a.b":7},
            "gauges":{"p.w":1.0},
            "histograms":[
              {"name":"x.sample_ns","count":5,"min":1.0,"max":10.0,"mean":10.0,"p50":1.0,"p90":1.0,"p99":1.0},
              {"name":"x.power_w","count":4,"min":1.0,"max":2.0,"mean":1.5,"p50":1.5,"p90":2.0,"p99":2.0}],
            "slo":[{"app":"App1","target_ms":500.0,"violations":4}]}"#;
        let fresh = JsonValue::parse(fresh_text).unwrap();
        let problems = compare_metrics("f", &base, &fresh, DEFAULT_TOL);
        assert!(
            problems
                .iter()
                .any(|p| p.contains("histograms.x.sample_ns.count moved")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("slo[App1].violations moved")),
            "{problems:?}"
        );
    }

    #[test]
    fn unified_diff_masks_wall_clock_lines() {
        let base = metrics_doc(7, 1.0, 10.0);
        let fresh = metrics_doc(8, 1.0, 20.0);
        let diff = unified_diff(&canonical_lines(&base), &canonical_lines(&fresh), "f");
        assert!(diff.contains("- counters.a.b: 7"), "{diff}");
        assert!(diff.contains("+ counters.a.b: 8"), "{diff}");
        // The _ns stats differ numerically but are masked, so they never
        // show up as diff lines.
        assert!(!diff.contains("99999"), "{diff}");
        assert!(!diff.contains("sample_ns.mean"), "{diff}");
    }

    #[test]
    fn bench_documents_gate_shape_not_timings() {
        let base = JsonValue::parse(
            r#"{"bench":"b","samples":15,"results":[{"group":"g","id":"one","median_ns":100.0}]}"#,
        )
        .unwrap();
        let fresh = JsonValue::parse(
            r#"{"bench":"b","samples":15,"results":[{"group":"g","id":"one","median_ns":999.0}]}"#,
        )
        .unwrap();
        assert!(compare_bench("f", &base, &fresh).is_empty());
        let renamed = JsonValue::parse(
            r#"{"bench":"b","samples":15,"results":[{"group":"g","id":"two","median_ns":999.0}]}"#,
        )
        .unwrap();
        let problems = compare_bench("f", &base, &renamed);
        assert!(problems.iter().any(|p| p.contains("benchmark set moved")));
    }
}
