#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
#
# The whole workspace is std-only with path-only dependencies, so every
# step runs with the network forbidden. A clean checkout on a machine with
# a stock Rust toolchain and NO registry access must pass end-to-end; any
# reintroduced external dependency fails the build step immediately.
#
# Exits non-zero on the first failing step.

set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

run() {
    echo "==> $*"
    "$@"
}

# Hermeticity: the dependency graph must be path-only. Every package that
# `cargo metadata` can see must either live in this workspace (null
# "source") or not resolve at all; any registry/git source is a regression.
run_metadata_check() {
    echo "==> hermeticity: cargo metadata --offline lists only path dependencies"
    local sources
    sources=$(cargo metadata --format-version 1 --offline |
        tr ',' '\n' | grep -o '"source":"[^"]*"' | sort -u || true)
    if [ -n "$sources" ]; then
        echo "non-path dependency sources found:" >&2
        echo "$sources" >&2
        exit 1
    fi
}
run_metadata_check

run cargo fmt --check
run cargo clippy --all-targets --offline -- -D warnings
run cargo build --release --offline
run cargo test -q --offline

# Documentation must build clean (broken intra-doc links and malformed
# examples fail here, not on docs.rs).
run cargo doc --no-deps --offline

# Telemetry-overhead smoke check: an instrumented co-simulation must stay
# within a generous factor of the no-op-sink run (release build, so the
# ratio reflects real relative cost, not debug-build noise).
run cargo test -q --release --offline --test telemetry_overhead

# Shard-equivalence gate: the sharded replay/co-sim must be bit-identical
# to the single-threaded run. tests/sharding.rs reads VDC_SHARDS in both
# its co-sim gate and its trace-replay twin (demand update + DVFS pass +
# power series), so each entry covers the full replay path. When the
# workflow matrix pins VDC_SHARDS we run just that count; a bare local
# invocation sweeps both ends of the shard range.
if [ -n "${VDC_SHARDS:-}" ]; then
    shard_counts=("$VDC_SHARDS")
else
    shard_counts=(1 8)
fi
for n in "${shard_counts[@]}"; do
    run env VDC_SHARDS="$n" cargo test -q --offline --test sharding
    run env VDC_SHARDS="$n" cargo test -q --offline --test sharding \
        env_selected_shard_count_matches_replay_baseline
done

# Results-regression gate: re-run the cheap experiment bins from a scratch
# working directory (they write results/ relative to cwd) and diff the
# fresh METRICS_*.json against the committed baselines. Deterministic
# counters/gauges/SLO fields must match; schema drift vs vdc-metrics/1 is
# a hard failure. Intentional changes: bless with
#   target/release/results_gate --fresh target/results-gate/results --bless
echo "==> results_gate: regenerate experiment metrics and diff vs results/"
scratch="target/results-gate"
rm -rf "$scratch"
mkdir -p "$scratch"
(cd "$scratch" && ../release/vdcpower largescale --vms 40 --samples 48 >/dev/null)
(cd "$scratch" && ../release/cosim --apps 6 --days 1 -q >/dev/null)
(cd "$scratch" && ../release/week_profile -q >/dev/null)
(cd "$scratch" && ../release/churn -q >/dev/null)
(cd "$scratch" && ../release/faults --apps 8 --samples 48 -q >/dev/null)
# Controller ablation: the same trace through all three TierController
# impls (MPC / robust / cooling-coupled); the gate diffs the per-
# controller energy/violation/safe-mode family.
(cd "$scratch" && ../release/controllers --apps 8 --samples 48 -q >/dev/null)
# Megafleet smoke tier: streaming trace + hierarchical pods. --max-rss-mib
# asserts the constant-memory claim inside the bin (exit 1 on breach); the
# gate then diffs the deterministic counters and the bench record shape.
(cd "$scratch" && ../release/megafleet --servers 2000 --vms 20000 --samples 48 \
    --max-rss-mib 64 -q >/dev/null)
run ./target/release/results_gate --baseline results --fresh "$scratch/results"

echo "==> ci.sh: all gates passed"
