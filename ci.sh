#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
#
# The whole workspace is std-only with path-only dependencies, so every
# step runs with the network forbidden. A clean checkout on a machine with
# a stock Rust toolchain and NO registry access must pass end-to-end; any
# reintroduced external dependency fails the build step immediately.
#
# Exits non-zero on the first failing step.

set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --all-targets --offline -- -D warnings
run cargo build --release --offline
run cargo test -q --offline

# Documentation must build clean (broken intra-doc links and malformed
# examples fail here, not on docs.rs).
run cargo doc --no-deps --offline

# Telemetry-overhead smoke check: an instrumented co-simulation must stay
# within a generous factor of the no-op-sink run (release build, so the
# ratio reflects real relative cost, not debug-build noise).
run cargo test -q --release --offline --test telemetry_overhead

# Shard-equivalence gate at both ends of the shard range: the sharded
# replay/co-sim must be bit-identical to the single-threaded run whether
# the env pins 1 worker or 8. tests/sharding.rs reads VDC_SHARDS in both
# its co-sim gate and its trace-replay twin (demand update + DVFS pass +
# power series), so each matrix entry covers the full replay path.
run env VDC_SHARDS=1 cargo test -q --offline --test sharding
run env VDC_SHARDS=8 cargo test -q --offline --test sharding
run env VDC_SHARDS=1 cargo test -q --offline --test sharding env_selected_shard_count_matches_replay_baseline
run env VDC_SHARDS=8 cargo test -q --offline --test sharding env_selected_shard_count_matches_replay_baseline

echo "==> ci.sh: all gates passed"
