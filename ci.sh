#!/usr/bin/env bash
# Offline CI gate: formatting, lints, release build, full test suite.
#
# The whole workspace is std-only with path-only dependencies, so every
# step runs with the network forbidden. A clean checkout on a machine with
# a stock Rust toolchain and NO registry access must pass end-to-end; any
# reintroduced external dependency fails the build step immediately.
#
# Exits non-zero on the first failing step.

set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --check
run cargo clippy --all-targets --offline -- -D warnings
run cargo build --release --offline
run cargo test -q --offline

echo "==> ci.sh: all gates passed"
