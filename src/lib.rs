//! `vdcpower` — performance-assured power optimization for virtualized data
//! centers.
//!
//! Facade crate re-exporting the workspace members. See the crate-level
//! documentation of [`core`] (the integrated runtime) for the architecture,
//! and `README.md` / `DESIGN.md` for the map from the paper (Wang & Wang,
//! ICPP 2010) to modules.
//!
//! ```
//! // The quickstart example lives in examples/quickstart.rs; a minimal
//! // smoke check that the facade exposes the substrates:
//! use vdcpower::linalg::Matrix;
//! let eye = Matrix::identity(2);
//! assert_eq!(eye[(0, 0)], 1.0);
//! ```

pub use vdc_apptier as apptier;
pub use vdc_churn as churn;
pub use vdc_consolidate as consolidate;
pub use vdc_control as control;
pub use vdc_core as core;
pub use vdc_dcsim as dcsim;
pub use vdc_linalg as linalg;
pub use vdc_telemetry as telemetry;
pub use vdc_trace as trace;
