//! `vdcpower` — command-line driver for the two-level power/performance
//! management system.
//!
//! ```text
//! vdcpower identify   [--concurrency 40] [--seed 42]
//! vdcpower testbed    [--apps 8] [--concurrency 40] [--setpoint 1000] [--periods 200]
//! vdcpower largescale [--vms 500] [--optimizer ipac|pmapper|ipac-no-dvfs] [--samples 672]
//!                     [--shards N]   (N worker threads; 0/default = host parallelism;
//!                                     output is bit-identical for every N)
//!                     [--fleet spec.json]  (heterogeneous host fleet from a
//!                                           `FleetSpec` JSON file)
//! vdcpower trace-gen  [--vms 100] [--samples 672] [--seed 1] --out trace.csv
//! vdcpower trace-info --in trace.csv
//! ```
//!
//! The figure-regeneration binaries live in `vdc-bench` (`cargo run -p
//! vdc-bench --bin fig2 …`); this driver is for ad-hoc exploration.
//!
//! Every command accepts `--quiet`/`-q` (warnings only) and
//! `--verbose`/`-v` (debug narration). Narration goes to stderr; stdout
//! carries only results.

use std::fs::File;
use std::io::{BufReader, Write};
use std::process::ExitCode;

use vdcpower::apptier::{AppSim, WorkloadProfile};
use vdcpower::control::analysis::{achievable_range, analyze_closed_loop};
use vdcpower::control::{MpcConfig, ReferenceTrajectory};
use vdcpower::core::controller::{identify_plant, IdentificationConfig};
use vdcpower::core::experiments::MeanStd;
use vdcpower::core::largescale::{run_large_scale, LargeScaleConfig, OptimizerKind};
use vdcpower::core::testbed::{Testbed, TestbedConfig};
use vdcpower::core::RunOptions;
use vdcpower::dcsim::FleetSpec;
use vdcpower::telemetry::export::write_metrics;
use vdcpower::telemetry::{Reporter, Telemetry};
use vdcpower::trace::{generate_trace, trace_stats, TraceConfig, UtilizationTrace};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: vdcpower <command> [flags]\n\
         commands:\n\
         \x20 identify    identify a response-time model and analyze the loop\n\
         \x20 testbed     run the 4-server / N-application testbed scenario\n\
         \x20 largescale  replay a synthetic trace under a power optimizer\n\
         \x20             (--shards N fans the replay over worker threads;\n\
         \x20              --fleet spec.json loads a heterogeneous host fleet)\n\
         \x20 trace-gen   generate a synthetic utilization trace as CSV\n\
         \x20 trace-info  summarize a trace CSV\n\
         global flags: --quiet/-q (warnings only), --verbose/-v (debug narration)\n\
         run `cargo run -p vdc-bench --bin fig2 --release` etc. for the paper figures"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reporter = Reporter::from_args(&args);
    match args.first().map(String::as_str) {
        Some("identify") => cmd_identify(&args, &reporter),
        Some("testbed") => cmd_testbed(&args, &reporter),
        Some("largescale") => cmd_largescale(&args, &reporter),
        Some("trace-gen") => cmd_trace_gen(&args, &reporter),
        Some("trace-info") => cmd_trace_info(&args),
        _ => usage(),
    }
}

fn cmd_identify(args: &[String], reporter: &Reporter) -> ExitCode {
    let concurrency = arg_num(args, "--concurrency", 40usize);
    let seed = arg_num(args, "--seed", 42u64);
    reporter.info(&format!(
        "identifying at concurrency {concurrency} (seed {seed})..."
    ));
    let mut plant = match AppSim::new(WorkloadProfile::rubbos(), concurrency, &[1.0, 1.0], seed) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("plant construction failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model = match identify_plant(&mut plant, &IdentificationConfig::default(), seed) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("identification failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("model (eq. (1) form, ms / GHz):");
    println!("  a  = {:?}", model.a());
    println!("  b  = {:?}", model.b());
    println!("  bias = {:.1}", model.bias());
    for ch in 0..model.n_inputs() {
        if let Some(g) = model.dc_gain(ch) {
            println!("  dc gain tier {}: {:.1} ms/GHz", ch + 1, g);
        }
    }
    let cfg = MpcConfig {
        prediction_horizon: 10,
        control_horizon: 3,
        q_weight: 1.0,
        r_weight: vec![4.0e4; model.n_inputs()],
        reference: ReferenceTrajectory::new(4.0, 12.0).expect("static config"),
        setpoint: 1000.0,
        c_min: vec![0.3; model.n_inputs()],
        c_max: vec![3.0; model.n_inputs()],
        delta_max: Some(0.3),
        terminal_constraint: true,
    };
    match analyze_closed_loop(&model, &cfg) {
        Ok(a) => {
            println!(
                "closed loop: decay radius {:.3}, {} marginal mode(s), settles in ~{} periods",
                a.decay_radius(),
                a.marginal_modes(),
                a.settling_periods()
                    .map(|s| format!("{s:.0}"))
                    .unwrap_or_else(|| "<state-dim".into())
            );
        }
        Err(e) => println!("closed-loop analysis unavailable: {e}"),
    }
    if let Some((lo, hi)) = achievable_range(&model, &cfg.c_min, &cfg.c_max) {
        // The linear model extrapolates below zero at generous allocations;
        // clamp the display (the physical floor is the zero-load service
        // time), and flag that only the upper end is trustworthy.
        println!(
            "achievable steady-state range over the allocation box: {:.0}–{:.0} ms\n\
             (the §IV-A feasibility check: pick set points inside this band;\n\
             the lower end is a linear extrapolation — trust the upper end)",
            lo.max(0.0),
            hi
        );
    }
    ExitCode::SUCCESS
}

fn cmd_testbed(args: &[String], reporter: &Reporter) -> ExitCode {
    let cfg = TestbedConfig {
        n_apps: arg_num(args, "--apps", 8usize),
        concurrency: arg_num(args, "--concurrency", 40usize),
        setpoint_ms: arg_num(args, "--setpoint", 1000.0f64),
        seed: arg_num(args, "--seed", 2010u64),
        ..Default::default()
    };
    let periods = arg_num(args, "--periods", 200usize);
    reporter.info(&format!(
        "testbed: {} apps @ concurrency {}, set point {} ms, {periods} periods",
        cfg.n_apps, cfg.concurrency, cfg.setpoint_ms
    ));
    let mut tb = match Testbed::build(&cfg) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("build failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let samples = match tb.run(periods) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tail = &samples[periods / 3..];
    for app in 0..cfg.n_apps {
        let vals: Vec<f64> = tail.iter().filter_map(|s| s.response_ms[app]).collect();
        let m = MeanStd::from_samples(&vals);
        println!(
            "  App{:<2} p90 = {:7.1} ± {:5.1} ms ({} samples)",
            app + 1,
            m.mean,
            m.std,
            m.n
        );
    }
    let power = tail.iter().map(|s| s.power_w).sum::<f64>() / tail.len() as f64;
    println!(
        "  mean cluster power {:.1} W | energy so far {:.1} Wh",
        power,
        tb.datacenter().energy_wh()
    );
    ExitCode::SUCCESS
}

fn cmd_largescale(args: &[String], reporter: &Reporter) -> ExitCode {
    let n_vms = arg_num(args, "--vms", 500usize);
    let samples = arg_num(args, "--samples", 672usize);
    let seed = arg_num(args, "--seed", 5415u64);
    let shards = arg_num(args, "--shards", 0usize); // 0 = host parallelism
    let optimizer = match arg_value(args, "--optimizer").as_deref() {
        None | Some("ipac") => OptimizerKind::Ipac,
        Some("pmapper") => OptimizerKind::Pmapper,
        Some("ipac-no-dvfs") => OptimizerKind::IpacNoDvfs,
        Some(other) => {
            eprintln!("unknown optimizer {other:?} (ipac | pmapper | ipac-no-dvfs)");
            return ExitCode::FAILURE;
        }
    };
    // Optional fleet-spec file (see `FleetSpec::to_json` for the format):
    // host mixes load from disk instead of recompiling the sweep.
    let fleet = match arg_value(args, "--fleet") {
        None => None,
        Some(path) => match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| FleetSpec::from_json_str(&text).map_err(|e| e.to_string()))
        {
            Ok(spec) => Some(spec),
            Err(e) => {
                eprintln!("could not load fleet spec {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    reporter.info(&format!(
        "largescale: {n_vms} VMs, {samples} samples @ 15 min, optimizer {optimizer:?}"
    ));
    let trace = generate_trace(&TraceConfig {
        n_vms,
        n_samples: samples,
        interval_s: 900.0,
        seed,
    });
    let telemetry = Telemetry::enabled();
    let mut cfg = LargeScaleConfig::new(n_vms, optimizer);
    cfg.shards = shards;
    cfg.fleet = fleet;
    match run_large_scale(
        &trace,
        &cfg,
        &RunOptions::default().with_telemetry(&telemetry),
    ) {
        Ok(r) => {
            println!("  energy per VM     {:.1} Wh", r.energy_per_vm_wh);
            println!("  total energy      {:.1} Wh", r.total_energy_wh);
            println!(
                "  migrations        {} ({} from overload relief)",
                r.migrations, r.relief_migrations
            );
            println!(
                "  active servers    mean {:.1}, peak {}",
                r.mean_active_servers, r.peak_active_servers
            );
            println!(
                "  SLA violations    {:.4} % of demanded cycles",
                100.0 * r.sla_violation_fraction
            );
            println!("  wake energy       {:.1} Wh", r.wake_energy_wh);
            match write_metrics(&telemetry, "largescale", "results") {
                Ok(path) => println!("  metrics -> {path}"),
                Err(e) => reporter.warn(&format!("could not write metrics: {e}")),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("run failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_trace_gen(args: &[String], reporter: &Reporter) -> ExitCode {
    let n_vms = arg_num(args, "--vms", 100usize);
    let samples = arg_num(args, "--samples", 672usize);
    let seed = arg_num(args, "--seed", 1u64);
    let Some(out) = arg_value(args, "--out") else {
        eprintln!("trace-gen requires --out <file.csv>");
        return ExitCode::FAILURE;
    };
    reporter.debug(&format!(
        "generating {n_vms} VMs x {samples} samples (seed {seed})"
    ));
    let trace = generate_trace(&TraceConfig {
        n_vms,
        n_samples: samples,
        interval_s: 900.0,
        seed,
    });
    let file = match File::create(&out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = trace.write_csv(file) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {out}: {} VMs x {} samples, mean utilization {:.1} %",
        trace.n_vms(),
        trace.n_samples(),
        100.0 * trace.mean_utilization()
    );
    ExitCode::SUCCESS
}

fn cmd_trace_info(args: &[String]) -> ExitCode {
    let Some(input) = arg_value(args, "--in") else {
        eprintln!("trace-info requires --in <file.csv>");
        return ExitCode::FAILURE;
    };
    let file = match File::open(&input) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match UtilizationTrace::read_csv(BufReader::new(file)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("parse failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{input}: {} VMs x {} samples @ {:.0} s ({:.1} days)",
        trace.n_vms(),
        trace.n_samples(),
        trace.interval_s(),
        trace.duration_s() / 86400.0
    );
    let stats = trace_stats(&trace, trace.n_vms());
    println!(
        "mean utilization      {:.1} %",
        100.0 * stats.mean_utilization
    );
    println!(
        "mean per-VM peak      {:.1} %",
        100.0 * stats.mean_peak_utilization
    );
    println!(
        "lag-1 autocorrelation {:.2}",
        stats.mean_lag1_autocorrelation
    );
    println!("aggregate peak/mean   {:.2}", stats.aggregate_peak_to_mean);
    println!("sector mix:");
    for (sector, count) in &stats.sector_counts {
        println!("  {:<15} {count}", sector.name());
    }
    let (peak_t, peak) = stats
        .aggregate_demand_ghz
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("non-empty trace");
    println!(
        "peak aggregate demand {:.1} GHz at sample {} (hour {:.1})",
        peak,
        peak_t,
        peak_t as f64 * trace.interval_s() / 3600.0
    );
    let mut stdout = std::io::stdout();
    let _ = stdout.flush();
    ExitCode::SUCCESS
}
