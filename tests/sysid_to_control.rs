//! Integration of the identification → control pipeline across crates:
//! the model identified on the DES plant must be usable by the MPC, track
//! set-point changes, and survive workload shifts — the §VII-A scenarios,
//! at reduced scale for test time.

use vdcpower::apptier::{AppSim, WorkloadProfile};
use vdcpower::control::stability::{is_stable, model_poles};
use vdcpower::core::controller::{identify_plant, IdentificationConfig, ResponseTimeController};

fn ident_cfg() -> IdentificationConfig {
    IdentificationConfig {
        periods: 140,
        ..Default::default()
    }
}

#[test]
fn identified_model_is_stable_and_physical() {
    let mut plant = AppSim::new(WorkloadProfile::rubbos(), 30, &[1.0, 1.0], 5).unwrap();
    let model = identify_plant(&mut plant, &ident_cfg(), 55).unwrap();
    // Stable AR dynamics (margin 0: strictly inside the unit circle).
    assert!(is_stable(&model, 0.0).unwrap(), "a = {:?}", model.a());
    assert_eq!(model_poles(&model).unwrap().len(), 1);
    // Physical: more CPU, lower response time — on both tiers.
    for ch in 0..2 {
        assert!(model.dc_gain(ch).unwrap() < 0.0);
    }
    // The bias dominates (response time is positive at zero allocation
    // change) and is in a plausible ms range.
    assert!(model.bias() > 0.0 && model.bias() < 60_000.0);
}

#[test]
fn controller_tracks_a_setpoint_staircase() {
    let profile = WorkloadProfile::rubbos();
    let mut twin = AppSim::new(profile.clone(), 30, &[1.0, 1.0], 6).unwrap();
    let model = identify_plant(&mut twin, &ident_cfg(), 66).unwrap();
    let mut ctrl = ResponseTimeController::new(model, 900.0, 4.0, &[1.0, 1.0]).unwrap();
    let mut plant = AppSim::new(profile, 30, &[1.0, 1.0], 7).unwrap();

    for &target in &[900.0_f64, 1200.0, 700.0] {
        ctrl.set_setpoint(target);
        let mut tail = Vec::new();
        for k in 0..70 {
            if let Some(t) = ctrl.control_period(&mut plant).unwrap() {
                if k >= 45 {
                    tail.push(t);
                }
            }
        }
        let mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
        assert!(
            (mean - target).abs() < 0.2 * target,
            "staircase step to {target}: settled at {mean:.0}"
        );
    }
}

#[test]
fn three_tier_application_is_controllable() {
    // The paper's formulation covers r_i tiers; exercise r = 3 end-to-end.
    let profile = WorkloadProfile::three_tier();
    let mut twin = AppSim::new(profile.clone(), 30, &[1.0, 1.0, 1.0], 8).unwrap();
    let model = identify_plant(&mut twin, &ident_cfg(), 88).unwrap();
    assert_eq!(model.n_inputs(), 3);
    let mut ctrl = ResponseTimeController::new(model, 1000.0, 4.0, &[1.0, 1.0, 1.0]).unwrap();
    let mut plant = AppSim::new(profile, 30, &[1.0, 1.0, 1.0], 9).unwrap();
    let mut tail = Vec::new();
    for k in 0..110 {
        if let Some(t) = ctrl.control_period(&mut plant).unwrap() {
            if k >= 70 {
                tail.push(t);
            }
        }
    }
    let mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
    assert!(
        (mean - 1000.0).abs() < 200.0,
        "3-tier steady state {mean:.0} ms"
    );
}

#[test]
fn controller_survives_infeasible_setpoint_by_saturating() {
    // A 50 ms set point is unreachable: the controller must saturate at its
    // allocation ceiling without panicking or oscillating out of bounds.
    let profile = WorkloadProfile::rubbos();
    let mut twin = AppSim::new(profile.clone(), 40, &[1.0, 1.0], 10).unwrap();
    let model = identify_plant(&mut twin, &ident_cfg(), 99).unwrap();
    let mut ctrl = ResponseTimeController::new(model, 50.0, 4.0, &[1.0, 1.0]).unwrap();
    let mut plant = AppSim::new(profile, 40, &[1.0, 1.0], 11).unwrap();
    for _ in 0..60 {
        ctrl.control_period(&mut plant).unwrap();
    }
    let alloc = ctrl.allocation();
    for &c in alloc {
        assert!(c <= 3.0 + 1e-9, "allocation {c} beyond ceiling");
    }
    assert!(
        alloc.iter().sum::<f64>() > 4.0,
        "controller should be pushing hard: {alloc:?}"
    );
}
