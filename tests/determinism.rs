//! Tier-1 determinism gate: the full co-simulation must be bit-identical
//! across runs with the same seed.
//!
//! The hermetic PRNG (`vdc_apptier::rng::SimRng`) is the only randomness
//! source in the workspace, so two same-seed runs must agree on every f64
//! of the recorded power and response-time trajectories — not just within
//! a tolerance. Comparing `to_bits` makes any nondeterminism (HashMap
//! iteration, thread interleaving, platform math differences inside one
//! build) a hard failure.

use vdc_core::cosim::{run_cosim, CosimConfig, CosimResult};
use vdc_core::largescale::{run_large_scale, LargeScaleConfig, OptimizerKind};
use vdc_core::{run_large_scale_streaming, ControllerSpec, FaultPlan, RunOptions};
use vdc_telemetry::Telemetry;
use vdc_trace::{generate_trace, StreamingTrace, TraceConfig};

fn small_run(seed: u64) -> CosimResult {
    let trace = generate_trace(&TraceConfig {
        n_vms: 12,
        n_samples: 24,
        interval_s: 900.0,
        seed: seed ^ 0x7ACE,
    });
    let cfg = CosimConfig {
        n_apps: 6,
        control_periods_per_sample: 2,
        optimizer_period_samples: 8,
        seed,
        ..Default::default()
    };
    run_cosim(&trace, &cfg, &RunOptions::default()).expect("co-simulation runs")
}

fn bits(series: &[f64]) -> Vec<u64> {
    series.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let a = small_run(0xD5EED);
    let b = small_run(0xD5EED);
    assert_eq!(
        bits(&a.power_series_w),
        bits(&b.power_series_w),
        "power trajectory diverged between same-seed runs"
    );
    assert_eq!(
        bits(&a.response_series_ms),
        bits(&b.response_series_ms),
        "response-time trajectory diverged between same-seed runs"
    );
    assert_eq!(a.total_energy_wh.to_bits(), b.total_energy_wh.to_bits());
    assert_eq!(a.migrations, b.migrations);
}

/// The controller seam's default-path pin: selecting the paper MPC
/// *explicitly* — via `CosimConfig::controller` and again via the
/// `RunOptions` override — must reproduce the implicit-default run bit
/// for bit. The seam may add controllers, but `ControllerSpec::Mpc` is
/// the pre-seam code path, not a near-copy of it.
#[test]
fn explicit_mpc_spec_is_bit_identical_to_the_default() {
    let default = small_run(0xD5EED);
    let trace = generate_trace(&TraceConfig {
        n_vms: 12,
        n_samples: 24,
        interval_s: 900.0,
        seed: 0xD5EED ^ 0x7ACE,
    });
    let cfg = CosimConfig {
        n_apps: 6,
        control_periods_per_sample: 2,
        optimizer_period_samples: 8,
        seed: 0xD5EED,
        controller: ControllerSpec::Mpc,
        ..Default::default()
    };
    let explicit = run_cosim(
        &trace,
        &cfg,
        &RunOptions::default().with_controller(ControllerSpec::Mpc),
    )
    .expect("explicit-spec run");
    assert_eq!(
        bits(&default.power_series_w),
        bits(&explicit.power_series_w),
        "explicit ControllerSpec::Mpc perturbed the power trajectory"
    );
    assert_eq!(
        bits(&default.response_series_ms),
        bits(&explicit.response_series_ms),
        "explicit ControllerSpec::Mpc perturbed the response trajectory"
    );
    assert_eq!(
        default.total_energy_wh.to_bits(),
        explicit.total_energy_wh.to_bits()
    );
    assert_eq!(default.migrations, explicit.migrations);
    assert_eq!(default.final_placements, explicit.final_placements);
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    // The instrumented entry point must be an observer only: attaching an
    // enabled sink may read clocks and fill the registry, but every f64 of
    // the simulation output stays bit-identical to the plain run.
    let plain = small_run(0xD5EED);
    let trace = generate_trace(&TraceConfig {
        n_vms: 12,
        n_samples: 24,
        interval_s: 900.0,
        seed: 0xD5EED ^ 0x7ACE,
    });
    let cfg = CosimConfig {
        n_apps: 6,
        control_periods_per_sample: 2,
        optimizer_period_samples: 8,
        seed: 0xD5EED,
        ..Default::default()
    };
    let telemetry = Telemetry::enabled();
    let instrumented = run_cosim(
        &trace,
        &cfg,
        &RunOptions::default().with_telemetry(&telemetry),
    )
    .expect("instrumented run");
    assert_eq!(
        bits(&plain.power_series_w),
        bits(&instrumented.power_series_w),
        "telemetry perturbed the power trajectory"
    );
    assert_eq!(
        bits(&plain.response_series_ms),
        bits(&instrumented.response_series_ms),
        "telemetry perturbed the response-time trajectory"
    );
    assert_eq!(
        plain.total_energy_wh.to_bits(),
        instrumented.total_energy_wh.to_bits()
    );
    assert_eq!(plain.migrations, instrumented.migrations);
    // And the sink actually observed the run.
    let counters = telemetry.counter_values();
    let get = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    assert_eq!(get("cosim.samples"), 24);
    assert!(get("mpc.steps") > 0, "MPC steps not recorded");
    assert!(!telemetry.slo_snapshot().is_empty(), "no SLO accounting");
}

#[test]
fn empty_fault_plan_is_bit_identical_to_a_plain_run() {
    // Attaching a `FaultPlan` with no scheduled events must be a no-op all
    // the way down: the single `RunOptions::faults()` gate filters empty
    // plans, so none of the fault machinery (host events, fallible plan
    // application, safe mode, watchdog) may run, and every f64 of the
    // trajectories stays bit-identical to a run with no plan attached.
    let plain = small_run(0xD5EED);
    let trace = generate_trace(&TraceConfig {
        n_vms: 12,
        n_samples: 24,
        interval_s: 900.0,
        seed: 0xD5EED ^ 0x7ACE,
    });
    let cfg = CosimConfig {
        n_apps: 6,
        control_periods_per_sample: 2,
        optimizer_period_samples: 8,
        seed: 0xD5EED,
        ..Default::default()
    };
    let plan = FaultPlan::empty();
    let faulted =
        run_cosim(&trace, &cfg, &RunOptions::default().with_faults(&plan)).expect("empty-plan run");
    assert_eq!(
        bits(&plain.power_series_w),
        bits(&faulted.power_series_w),
        "empty fault plan perturbed the power trajectory"
    );
    assert_eq!(
        bits(&plain.response_series_ms),
        bits(&faulted.response_series_ms),
        "empty fault plan perturbed the response-time trajectory"
    );
    assert_eq!(
        plain.total_energy_wh.to_bits(),
        faulted.total_energy_wh.to_bits()
    );
    assert_eq!(plain.migrations, faulted.migrations);
    assert_eq!(plain.final_placements, faulted.final_placements);
}

/// The streaming trace generator must be a pure re-chunking of its
/// materialized twin ([`StreamingTrace::materialize`], the documented
/// bit-identity reference — `generate_trace`'s serial RNG is a different
/// stream by design): driving the replay sample-by-sample from
/// [`StreamingTrace`] yields every bit the materialized week does, with
/// and without the hierarchical pod optimizer. This is the determinism
/// half of the megafleet claim — constant memory may not cost a single
/// ULP.
#[test]
fn streaming_replay_is_bit_identical_to_materialized() {
    let trace_cfg = TraceConfig {
        n_vms: 30,
        n_samples: 24,
        interval_s: 900.0,
        seed: 0x5EED5,
    };
    // Streaming refuses to auto-size (that would scan the whole trace up
    // front), so pin the fleet explicitly for both runs.
    let cfg = LargeScaleConfig {
        n_servers: Some(24),
        ..LargeScaleConfig::new(30, OptimizerKind::Ipac)
    };
    for pods in [None, Some(4)] {
        let mut opts = RunOptions::default().with_series();
        if let Some(p) = pods {
            opts = opts.with_pods(p);
        }
        let trace = StreamingTrace::materialize(&trace_cfg);
        let materialized = run_large_scale(&trace, &cfg, &opts).expect("materialized run");
        let mut stream = StreamingTrace::new(&trace_cfg);
        let streamed = run_large_scale_streaming(&mut stream, &cfg, &opts).expect("streaming run");
        let ctx = format!("pods={pods:?}");
        assert_eq!(
            materialized.total_energy_wh.to_bits(),
            streamed.total_energy_wh.to_bits(),
            "{ctx}: total energy diverged between streaming and materialized"
        );
        assert_eq!(
            bits(
                &materialized
                    .series
                    .iter()
                    .map(|s| s.power_w)
                    .collect::<Vec<_>>()
            ),
            bits(
                &streamed
                    .series
                    .iter()
                    .map(|s| s.power_w)
                    .collect::<Vec<_>>()
            ),
            "{ctx}: power series diverged between streaming and materialized"
        );
        assert_eq!(
            materialized.sla_violation_fraction.to_bits(),
            streamed.sla_violation_fraction.to_bits(),
            "{ctx}: SLA fraction diverged"
        );
        assert_eq!(
            materialized.migrations, streamed.migrations,
            "{ctx}: migrations diverged"
        );
        assert_eq!(
            materialized.final_placements, streamed.final_placements,
            "{ctx}: final placements diverged"
        );
    }
}

/// Same-seed hierarchical runs are bit-identical — the pod optimizer adds
/// no randomness source beyond the seeded trace.
#[test]
fn same_seed_hierarchical_runs_are_bit_identical() {
    let run = || {
        let trace = generate_trace(&TraceConfig {
            n_vms: 30,
            n_samples: 24,
            interval_s: 900.0,
            seed: 0xD5EED,
        });
        let cfg = LargeScaleConfig::new(30, OptimizerKind::Ipac);
        run_large_scale(
            &trace,
            &cfg,
            &RunOptions::default().with_series().with_pods(8),
        )
        .expect("hierarchical run")
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.total_energy_wh.to_bits(),
        b.total_energy_wh.to_bits(),
        "hierarchical energy diverged between same-seed runs"
    );
    assert_eq!(
        bits(&a.series.iter().map(|s| s.power_w).collect::<Vec<_>>()),
        bits(&b.series.iter().map(|s| s.power_w).collect::<Vec<_>>()),
        "hierarchical power trajectory diverged between same-seed runs"
    );
    assert_eq!(a.final_placements, b.final_placements);
}

#[test]
fn different_seeds_diverge() {
    let a = small_run(1);
    let b = small_run(2);
    assert_ne!(
        bits(&a.power_series_w),
        bits(&b.power_series_w),
        "different seeds produced identical power trajectories"
    );
}

#[test]
fn trajectories_cover_every_sample_and_are_physical() {
    let r = small_run(42);
    assert_eq!(r.power_series_w.len(), 24);
    assert_eq!(r.response_series_ms.len(), 24);
    for &w in &r.power_series_w {
        assert!(w.is_finite() && w >= 0.0, "power sample {w}");
    }
    for &ms in &r.response_series_ms {
        // -1.0 is the no-measurement sentinel; everything else is a mean
        // response time in milliseconds.
        assert!(ms == -1.0 || (ms.is_finite() && ms > 0.0), "response {ms}");
    }
}
