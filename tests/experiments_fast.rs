//! Fast experiment-runner checks on the analytic plant: the full Fig. 4 /
//! Fig. 5 sweeps in milliseconds, plus the Fig. 3 static baseline. These
//! guard the experiment plumbing itself; the DES-backed results live in
//! EXPERIMENTS.md and the `fig*` binaries.

use vdcpower::core::controller::IdentificationConfig;
use vdcpower::core::experiments::{
    fig3_static_baseline, fig4_with_plant, fig5_with_plant, PlantKind,
};
use vdcpower::core::testbed::TestbedConfig;

fn ident() -> IdentificationConfig {
    IdentificationConfig {
        periods: 160,
        ..Default::default()
    }
}

#[test]
fn fig4_sweep_on_analytic_plant_tracks_setpoint() {
    let points = fig4_with_plant(
        &[30, 50, 70],
        1000.0,
        &ident(),
        30,
        100,
        7,
        PlantKind::Analytic,
    )
    .expect("sweep runs");
    assert_eq!(points.len(), 3);
    for p in &points {
        assert!(
            (p.response.mean - 1000.0).abs() < 150.0,
            "concurrency {}: mean {:.0}",
            p.x,
            p.response.mean
        );
        assert!(p.response.n > 50);
    }
}

#[test]
fn fig5_sweep_on_analytic_plant_tracks_every_setpoint() {
    let points = fig5_with_plant(
        &[700.0, 1000.0, 1300.0],
        40,
        &ident(),
        30,
        100,
        9,
        PlantKind::Analytic,
    )
    .expect("sweep runs");
    for p in &points {
        let rel = (p.response.mean - p.x).abs() / p.x;
        assert!(rel < 0.12, "set point {}: mean {:.0}", p.x, p.response.mean);
    }
    // Variance grows with the set point (longer queues are noisier).
    assert!(points[2].response.std >= points[0].response.std * 0.8);
}

#[test]
fn fig3_baseline_shows_uncontrolled_surge_violation() {
    let cfg = TestbedConfig {
        concurrency: 40,
        ..Default::default()
    };
    let series = fig3_static_baseline(&cfg, 600.0, 200.0, 400.0, 80, &[0.9, 0.9], 11)
        .expect("baseline runs");
    let mean_in = |lo: f64, hi: f64| {
        let v: Vec<f64> = series
            .iter()
            .filter(|p| p.time_s >= lo && p.time_s < hi)
            .filter_map(|p| p.response_ms)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let pre = mean_in(50.0, 200.0);
    let surge = mean_in(250.0, 400.0);
    let post = mean_in(450.0, 600.0);
    assert!(
        surge > 1.6 * pre,
        "uncontrolled surge must violate: pre {pre:.0}, surge {surge:.0}"
    );
    assert!(
        (post - pre).abs() < 0.35 * pre,
        "load returns, so should the baseline: pre {pre:.0}, post {post:.0}"
    );
}
