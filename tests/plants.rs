//! Cross-crate plant interchangeability: the same controller must drive
//! the discrete-event simulator, the analytic MVA plant, and an open-loop
//! workload through the one `Plant` interface.

use vdcpower::apptier::{AnalyticPlant, AppSim, Plant, WorkloadProfile};
use vdcpower::core::controller::{identify_plant, IdentificationConfig, ResponseTimeController};

fn ident() -> IdentificationConfig {
    IdentificationConfig {
        periods: 140,
        ..Default::default()
    }
}

fn steady_state(ctrl: &mut ResponseTimeController, plant: &mut dyn Plant, periods: usize) -> f64 {
    let mut tail = Vec::new();
    for k in 0..periods {
        if let Some(t) = ctrl.control_period(plant).unwrap() {
            if k >= periods * 2 / 3 {
                tail.push(t);
            }
        }
    }
    tail.iter().sum::<f64>() / tail.len().max(1) as f64
}

#[test]
fn controller_identified_on_des_works_on_analytic_plant() {
    // Identify on the exact simulator, control the analytic approximation:
    // cross-plant generalization through the shared trait.
    let mut des_twin = AppSim::new(WorkloadProfile::rubbos(), 40, &[1.0, 1.0], 3).unwrap();
    let model = identify_plant(&mut des_twin, &ident(), 33).unwrap();
    let mut ctrl = ResponseTimeController::new(model, 1000.0, 4.0, &[1.0, 1.0]).unwrap();
    let mut analytic =
        AnalyticPlant::new(WorkloadProfile::rubbos(), 40, &[1.0, 1.0], 0.45, 5).unwrap();
    let mean = steady_state(&mut ctrl, &mut analytic, 90);
    assert!(
        (mean - 1000.0).abs() < 150.0,
        "analytic plant steady state {mean:.0} ms"
    );
}

#[test]
fn controller_identified_on_analytic_works_on_des() {
    // The reverse direction: cheap identification, faithful plant.
    let mut fast_twin =
        AnalyticPlant::new(WorkloadProfile::rubbos(), 40, &[1.0, 1.0], 0.45, 7).unwrap();
    let model = identify_plant(&mut fast_twin, &ident(), 44).unwrap();
    // Physicality survives the analytic substitution.
    for ch in 0..2 {
        assert!(model.dc_gain(ch).unwrap() < 0.0);
    }
    let mut ctrl = ResponseTimeController::new(model, 1000.0, 4.0, &[1.0, 1.0]).unwrap();
    let mut des = AppSim::new(WorkloadProfile::rubbos(), 40, &[1.0, 1.0], 9).unwrap();
    let mean = steady_state(&mut ctrl, &mut des, 110);
    assert!(
        (mean - 1000.0).abs() < 200.0,
        "DES steady state {mean:.0} ms under analytic-identified model"
    );
}

#[test]
fn controller_holds_setpoint_on_open_loop_workload() {
    // Open-loop arrivals (no client self-throttling): the controller must
    // still regulate p90 by scaling capacity with the offered load.
    let mut twin = AppSim::open(WorkloadProfile::rubbos(), 35.0, &[1.0, 1.0], 21).unwrap();
    let model = identify_plant(&mut twin, &ident(), 55).unwrap();
    let mut ctrl = ResponseTimeController::new(model, 120.0, 4.0, &[1.0, 1.0]).unwrap();
    let mut plant = AppSim::open(WorkloadProfile::rubbos(), 35.0, &[1.0, 1.0], 23).unwrap();
    let mean = steady_state(&mut ctrl, &mut plant, 110);
    assert!(
        (mean - 120.0).abs() < 60.0,
        "open-loop steady state {mean:.0} ms vs 120 ms set point"
    );
}

#[test]
fn mixed_class_workload_is_controllable() {
    // The 85/15 browse/post mixture has much heavier tails; the controller
    // still holds the p90 set point (with wider variance).
    let mut twin = AppSim::new(WorkloadProfile::rubbos_mixed(), 30, &[1.0, 1.0], 31).unwrap();
    let model = identify_plant(&mut twin, &ident(), 66).unwrap();
    let mut ctrl = ResponseTimeController::new(model, 1200.0, 4.0, &[1.0, 1.0]).unwrap();
    let mut plant = AppSim::new(WorkloadProfile::rubbos_mixed(), 30, &[1.0, 1.0], 37).unwrap();
    let mean = steady_state(&mut ctrl, &mut plant, 120);
    assert!(
        (mean - 1200.0).abs() < 250.0,
        "mixed-class steady state {mean:.0} ms"
    );
}
