//! Telemetry-overhead smoke gate (run by `ci.sh`): a co-simulation step
//! with an enabled metrics sink must stay within a generous budget of the
//! no-op-sink run.
//!
//! The disabled handle is a `None` branch — no clock reads, no atomics —
//! so the instrumented/uninstrumented ratio is the cost of the registry
//! and `Instant` reads amortized over real simulation work. The budget is
//! deliberately loose (shared CI runners, debug builds): the gate exists
//! to catch pathological regressions (per-sample allocation storms,
//! lock contention on the hot path), not to benchmark.

use std::time::Instant;
use vdc_core::cosim::{run_cosim, CosimConfig};
use vdc_core::RunOptions;
use vdc_telemetry::Telemetry;
use vdc_trace::{generate_trace, TraceConfig};

/// Instrumented runtime must stay under `BUDGET_RATIO` x the no-op run.
const BUDGET_RATIO: f64 = 3.0;
const REPEATS: usize = 3;

fn timed_run(telemetry: &Telemetry) -> f64 {
    let trace = generate_trace(&TraceConfig {
        n_vms: 10,
        n_samples: 16,
        interval_s: 900.0,
        seed: 0x0B5E,
    });
    let cfg = CosimConfig {
        n_apps: 5,
        control_periods_per_sample: 2,
        optimizer_period_samples: 8,
        seed: 0x0B5E,
        ..Default::default()
    };
    let t = Instant::now();
    run_cosim(
        &trace,
        &cfg,
        &RunOptions::default().with_telemetry(telemetry),
    )
    .expect("run");
    t.elapsed().as_secs_f64()
}

#[test]
fn instrumented_cosim_stays_within_overhead_budget() {
    // Min-of-repeats on both sides filters scheduler noise.
    let baseline = (0..REPEATS)
        .map(|_| timed_run(&Telemetry::disabled()))
        .fold(f64::INFINITY, f64::min);
    let instrumented = (0..REPEATS)
        .map(|_| timed_run(&Telemetry::enabled()))
        .fold(f64::INFINITY, f64::min);
    let ratio = instrumented / baseline.max(1e-9);
    assert!(
        ratio <= BUDGET_RATIO,
        "telemetry overhead ratio {ratio:.2} exceeds budget {BUDGET_RATIO} \
         (instrumented {instrumented:.3} s vs no-op {baseline:.3} s)"
    );
}
