//! Trait-level conformance suite for the controller seam.
//!
//! Every [`ControllerSpec`] must honor the same [`TierController`]
//! contract regardless of the law behind it: converge to the set point on
//! a real plant, keep allocations inside any valid box handed to
//! `set_bounds`, freeze the allocation bit-for-bit across masked (sensor
//! dropout) periods, and resume control on the first clean sample. The
//! bounds property is randomized with `vdc-check` (replay failures with
//! `VDC_CHECK_SEED`); the closed-loop checks run the shipped workload
//! profiles deterministically.

use vdc_check::{check, from_fn, prop_assert, TestRng};
use vdcpower::apptier::{AnalyticPlant, AppSim, WorkloadProfile};
use vdcpower::control::ArxModel;
use vdcpower::core::controller::{identify_plant, IdentificationConfig};
use vdcpower::core::ControllerSpec;

const SPECS: [ControllerSpec; 3] = [
    ControllerSpec::Mpc,
    ControllerSpec::Robust,
    ControllerSpec::CoolingMpc {
        energy_weight: vdcpower::core::DEFAULT_COOLING_WEIGHT,
    },
];

/// One identified model shared by the suite: PRBS + least squares on the
/// analytic twin (microsecond-cost plant, same interface as the DES).
fn identified_model() -> ArxModel {
    let mut twin =
        AnalyticPlant::new(WorkloadProfile::rubbos(), 40, &[1.0, 1.0], 0.4, 7).expect("twin");
    identify_plant(&mut twin, &IdentificationConfig::default(), 42).expect("identification")
}

#[test]
fn every_controller_converges_to_the_setpoint_on_the_real_plant() {
    let setpoint_ms = 1000.0;
    let period_s = 4.0;
    // Identify on the discrete-event twin — the "real plant" path the
    // quickstart example exercises.
    let mut twin = AppSim::new(WorkloadProfile::rubbos(), 40, &[1.0, 1.0], 7).expect("twin");
    let model = identify_plant(&mut twin, &IdentificationConfig::default(), 42).expect("model");
    for spec in SPECS {
        let mut ctrl = spec
            .build(&model, setpoint_ms, period_s, &[1.0, 1.0])
            .expect("spec builds");
        let mut plant = AppSim::new(WorkloadProfile::rubbos(), 40, &[1.0, 1.0], 99).expect("plant");
        let mut tail = Vec::new();
        for k in 0..120 {
            let measured = ctrl
                .control_period(&mut plant)
                .expect("clean control period");
            if k >= 90 {
                if let Some(t) = measured {
                    tail.push(t);
                }
            }
        }
        assert!(
            !tail.is_empty(),
            "{}: no measurements in the settling tail",
            spec.name()
        );
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - setpoint_ms).abs() < 200.0,
            "{}: settled at {mean:.0} ms, set point {setpoint_ms} ms",
            spec.name()
        );
        assert_eq!(ctrl.setpoint(), setpoint_ms);
        assert!(ctrl.last_measurement_ms().is_some());
    }
}

#[test]
fn every_controller_honors_allocation_bounds() {
    let model = identified_model();
    // Random valid boxes around the initial allocation, random set points,
    // random spec: allocations must stay inside the box at every period.
    let gen = from_fn(|rng: &mut TestRng| {
        let c_min = rng.f64_in(0.3, 0.9);
        let c_max = rng.f64_in(1.2, 3.0);
        let setpoint = rng.f64_in(600.0, 1400.0);
        let which = rng.usize_in(0, SPECS.len() - 1);
        let seed = rng.usize_in(0, 1 << 30) as u64;
        (c_min, c_max, setpoint, which, seed)
    });
    check(24, &gen, |(c_min, c_max, setpoint, which, seed)| {
        let spec = SPECS[*which];
        let mut ctrl = spec
            .build(&model, *setpoint, 4.0, &[1.0, 1.0])
            .expect("spec builds");
        ctrl.set_bounds(*c_min, *c_max).expect("valid box");
        let mut plant = AnalyticPlant::new(WorkloadProfile::rubbos(), 40, &[1.0, 1.0], 0.4, *seed)
            .expect("plant");
        for k in 0..30 {
            ctrl.control_period(&mut plant).expect("control period");
            for (tier, &c) in ctrl.allocation().iter().enumerate() {
                prop_assert!(
                    (*c_min - 1e-9..=*c_max + 1e-9).contains(&c),
                    "{}: period {k} tier {tier} allocation {c} outside [{c_min}, {c_max}]",
                    spec.name()
                );
            }
        }
        Ok(())
    });
}

#[test]
fn safe_mode_freezes_the_allocation_and_the_first_clean_sample_restores() {
    let model = identified_model();
    for spec in SPECS {
        let mut ctrl = spec
            .build(&model, 1000.0, 4.0, &[1.0, 1.0])
            .expect("spec builds");
        let mut plant =
            AnalyticPlant::new(WorkloadProfile::rubbos(), 40, &[1.0, 1.0], 0.4, 5).expect("plant");
        for _ in 0..10 {
            ctrl.control_period(&mut plant).expect("clean period");
        }
        assert!(!ctrl.in_safe_mode(), "{}: clean loop", spec.name());
        let frozen: Vec<u64> = ctrl.allocation().iter().map(|c| c.to_bits()).collect();
        // Sensor dropout: masked periods must freeze the allocation
        // bit-for-bit — the plant keeps running, the actuation does not.
        for k in 0..5 {
            let masked = ctrl
                .control_period_masked(&mut plant)
                .expect("masked period");
            assert!(masked.is_none(), "{}: masked period measured", spec.name());
            assert!(ctrl.in_safe_mode(), "{}: masked period {k}", spec.name());
            let now: Vec<u64> = ctrl.allocation().iter().map(|c| c.to_bits()).collect();
            assert_eq!(
                frozen,
                now,
                "{}: allocation moved during dropout (period {k})",
                spec.name()
            );
        }
        // First clean sample: measurement returns and safe mode clears.
        let measured = ctrl.control_period(&mut plant).expect("clean period");
        assert!(
            measured.is_some(),
            "{}: no measurement on the first clean sample",
            spec.name()
        );
        assert!(
            !ctrl.in_safe_mode(),
            "{}: safe mode latched after recovery",
            spec.name()
        );
    }
}
