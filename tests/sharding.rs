//! Tier-1 shard-equivalence gate: the sharded replay and co-simulation
//! must be **bit-identical** to the single-threaded run at every shard
//! count — trajectories, telemetry counters, SLO accounting, and final VM
//! placements.
//!
//! The guarantee holds because sharding only fans out per-element work
//! (one application's control periods, one server's power read) while
//! every f64 reduction stays a sequential index-order fold (see
//! `vdc_core::shard`). These tests are the enforcement: any change that
//! lets the shard count leak into an f64 — a parallel sum, a
//! HashMap-ordered fold, a per-shard RNG reseed — fails here, not in a
//! figure three PRs later.
//!
//! `ci.sh` additionally runs this suite with `VDC_SHARDS=1` and
//! `VDC_SHARDS=8`, which the env-driven test below picks up.

use vdc_churn::{AdmissionPolicy, ChurnConfig, ChurnWorkload};
use vdc_core::churn::{run_churn, ChurnResult};
use vdc_core::cosim::{run_cosim, CosimConfig, CosimResult};
use vdc_core::largescale::{run_large_scale, LargeScaleConfig, LargeScaleResult, OptimizerKind};
use vdc_core::{ControllerSpec, FaultConfig, FaultPlan, RunOptions};
use vdc_dcsim::{FleetSpec, PueSeries};
use vdc_telemetry::Telemetry;
use vdc_trace::{generate_trace, TraceConfig, UtilizationTrace};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn bits(series: &[f64]) -> Vec<u64> {
    series.iter().map(|x| x.to_bits()).collect()
}

fn fast_trace(n_vms: usize, seed: u64) -> UtilizationTrace {
    generate_trace(&TraceConfig {
        n_vms,
        n_samples: 24,
        interval_s: 900.0,
        seed,
    })
}

/// Per-app SLO accounting, f64 fields bit-cast for exact comparison:
/// `(app, setpoint_bits, samples, violations, mean_bits)`.
type SloState = (u32, u64, u64, u64, u64);

/// Deterministic telemetry state: counters plus the SLO accounting.
/// Timing histograms are excluded on purpose — they record wall-clock
/// nanoseconds, the one thing sharding *should* change.
fn telemetry_state(t: &Telemetry) -> (Vec<(String, u64)>, Vec<SloState>) {
    let counters = t.counter_values();
    let slo = t
        .slo_snapshot()
        .into_iter()
        .map(|s| {
            (
                s.app,
                s.setpoint_ms.to_bits(),
                s.samples,
                s.violations,
                s.mean_ms.to_bits(),
            )
        })
        .collect();
    (counters, slo)
}

fn cosim_at(trace: &UtilizationTrace, shards: usize) -> (CosimResult, Telemetry) {
    let cfg = CosimConfig {
        n_apps: 6,
        control_periods_per_sample: 2,
        optimizer_period_samples: 8,
        seed: 0x5A4D,
        ..Default::default()
    };
    let telemetry = Telemetry::enabled();
    let opts = RunOptions::default()
        .with_telemetry(&telemetry)
        .with_shards(shards);
    let result = run_cosim(trace, &cfg, &opts).expect("cosim runs");
    (result, telemetry)
}

fn assert_cosim_identical(a: &CosimResult, b: &CosimResult, ctx: &str) {
    assert_eq!(
        bits(&a.power_series_w),
        bits(&b.power_series_w),
        "{ctx}: power trajectory diverged"
    );
    assert_eq!(
        bits(&a.response_series_ms),
        bits(&b.response_series_ms),
        "{ctx}: response trajectory diverged"
    );
    assert_eq!(
        a.total_energy_wh.to_bits(),
        b.total_energy_wh.to_bits(),
        "{ctx}: total energy"
    );
    assert_eq!(
        a.mean_tracking_error_ms.to_bits(),
        b.mean_tracking_error_ms.to_bits(),
        "{ctx}: tracking error"
    );
    assert_eq!(
        a.violation_fraction.to_bits(),
        b.violation_fraction.to_bits(),
        "{ctx}: violation fraction"
    );
    assert_eq!(a.migrations, b.migrations, "{ctx}: migrations");
    assert_eq!(
        a.final_placements, b.final_placements,
        "{ctx}: final VM placements"
    );
}

#[test]
fn cosim_is_bit_identical_across_shard_counts() {
    let trace = fast_trace(6, 0x7ACE);
    let (baseline, base_tel) = cosim_at(&trace, 1);
    let base_state = telemetry_state(&base_tel);
    for shards in SHARD_COUNTS {
        let (r, tel) = cosim_at(&trace, shards);
        assert_cosim_identical(&baseline, &r, &format!("cosim shards={shards}"));
        assert_eq!(
            base_state,
            telemetry_state(&tel),
            "cosim shards={shards}: telemetry counters/SLO diverged"
        );
    }
}

fn cosim_spec_at(
    trace: &UtilizationTrace,
    spec: ControllerSpec,
    pue: &PueSeries,
    shards: usize,
) -> (CosimResult, Telemetry) {
    let cfg = CosimConfig {
        n_apps: 6,
        control_periods_per_sample: 2,
        optimizer_period_samples: 8,
        seed: 0x5A4D,
        ..Default::default()
    };
    let telemetry = Telemetry::enabled();
    let opts = RunOptions::default()
        .with_telemetry(&telemetry)
        .with_shards(shards)
        .with_controller(spec)
        .with_pue(pue);
    let result = run_cosim(trace, &cfg, &opts).expect("cosim runs");
    (result, telemetry)
}

/// The controller seam must not weaken shard equivalence: the two
/// non-default controllers — robust fixed-gain and cooling-coupled MPC,
/// the latter with a stepped PUE feed actually steering its objective —
/// produce different results than the paper MPC, but any *given* spec is
/// bit-identical at every shard count.
#[test]
fn non_default_controllers_are_bit_identical_across_shard_counts() {
    let trace = fast_trace(6, 0x7ACE);
    let pue = PueSeries::from_samples(vec![1.25, 1.25, 1.85, 1.85, 1.25, 1.85])
        .expect("PUE samples >= 1 validate");
    for spec in [ControllerSpec::Robust, ControllerSpec::cooling()] {
        let (baseline, base_tel) = cosim_spec_at(&trace, spec, &pue, 1);
        let base_state = telemetry_state(&base_tel);
        for shards in SHARD_COUNTS {
            let (r, tel) = cosim_spec_at(&trace, spec, &pue, shards);
            let ctx = format!("cosim {} shards={shards}", spec.name());
            assert_cosim_identical(&baseline, &r, &ctx);
            assert_eq!(
                base_state,
                telemetry_state(&tel),
                "{ctx}: telemetry counters/SLO diverged"
            );
        }
    }
}

fn largescale_at(
    trace: &UtilizationTrace,
    shards: usize,
) -> (LargeScaleResult, Vec<u64>, Telemetry) {
    let cfg = LargeScaleConfig::new(30, OptimizerKind::Ipac);
    let telemetry = Telemetry::enabled();
    let opts = RunOptions::default()
        .with_telemetry(&telemetry)
        .with_shards(shards)
        .with_series();
    let result = run_large_scale(trace, &cfg, &opts).expect("replay runs");
    let series_bits = result.series.iter().map(|s| s.power_w.to_bits()).collect();
    (result, series_bits, telemetry)
}

fn assert_largescale_identical(a: &LargeScaleResult, b: &LargeScaleResult, ctx: &str) {
    assert_eq!(
        a.total_energy_wh.to_bits(),
        b.total_energy_wh.to_bits(),
        "{ctx}: total energy"
    );
    assert_eq!(
        a.energy_per_vm_wh.to_bits(),
        b.energy_per_vm_wh.to_bits(),
        "{ctx}: energy per VM"
    );
    assert_eq!(
        a.sla_violation_fraction.to_bits(),
        b.sla_violation_fraction.to_bits(),
        "{ctx}: SLA fraction"
    );
    assert_eq!(a.migrations, b.migrations, "{ctx}: migrations");
    assert_eq!(a.relief_migrations, b.relief_migrations, "{ctx}: relief");
    assert_eq!(a.peak_active_servers, b.peak_active_servers, "{ctx}");
    assert_eq!(
        a.final_placements, b.final_placements,
        "{ctx}: final VM placements"
    );
}

#[test]
fn largescale_is_bit_identical_across_shard_counts() {
    let trace = fast_trace(30, 0xBEE);
    let (baseline, base_series, base_tel) = largescale_at(&trace, 1);
    let base_state = telemetry_state(&base_tel);
    for shards in SHARD_COUNTS {
        let (r, series, tel) = largescale_at(&trace, shards);
        assert_largescale_identical(&baseline, &r, &format!("largescale shards={shards}"));
        assert_eq!(
            base_series, series,
            "largescale shards={shards}: power series diverged"
        );
        assert_eq!(
            base_state,
            telemetry_state(&tel),
            "largescale shards={shards}: telemetry counters diverged"
        );
    }
}

fn largescale_fleet_at(
    trace: &UtilizationTrace,
    shards: usize,
) -> (LargeScaleResult, Vec<u64>, Telemetry) {
    let mut cfg = LargeScaleConfig::new(30, OptimizerKind::Ipac);
    // Two-site SPECpower fleet with distinct per-site PUE: the
    // heterogeneous path (profile-aware power, facility multipliers,
    // per-site energy buckets) must stay on the sequential index-order
    // folds that make the homogeneous replay shard-stable.
    cfg.fleet = Some(FleetSpec::specpower_mixed(12));
    let telemetry = Telemetry::enabled();
    let opts = RunOptions::default()
        .with_telemetry(&telemetry)
        .with_shards(shards)
        .with_series();
    let result = run_large_scale(trace, &cfg, &opts).expect("fleet replay runs");
    let series_bits = result.series.iter().map(|s| s.power_w.to_bits()).collect();
    (result, series_bits, telemetry)
}

#[test]
fn heterogeneous_fleet_is_bit_identical_across_shard_counts() {
    let trace = fast_trace(30, 0xF1EE7);
    let (baseline, base_series, base_tel) = largescale_fleet_at(&trace, 1);
    let base_state = telemetry_state(&base_tel);
    let base_sites = bits(&baseline.site_energy_wh);
    for shards in SHARD_COUNTS {
        let (r, series, tel) = largescale_fleet_at(&trace, shards);
        assert_largescale_identical(&baseline, &r, &format!("fleet shards={shards}"));
        assert_eq!(
            base_series, series,
            "fleet shards={shards}: power series diverged"
        );
        assert_eq!(
            base_sites,
            bits(&r.site_energy_wh),
            "fleet shards={shards}: per-site energy diverged"
        );
        assert_eq!(
            base_state,
            telemetry_state(&tel),
            "fleet shards={shards}: telemetry counters diverged"
        );
    }
}

fn churn_at(trace: &UtilizationTrace, shards: usize) -> (ChurnResult, Vec<u64>, Telemetry) {
    // Short steady lifetimes so plenty of VMs depart before the flash
    // crowd lands — later arrivals then reuse freed arena slots, putting
    // slot recycling squarely on the sharded path under test.
    let wl_cfg = ChurnConfig {
        mean_lifetime_s: 3_600.0,
        ..ChurnConfig::with_flash_crowd(80.0, 24, 25, 0xF1A5)
    };
    let workload = ChurnWorkload::generate(&wl_cfg, trace.n_samples(), trace.interval_s());
    let cfg = LargeScaleConfig::new(40, OptimizerKind::Ipac);
    let telemetry = Telemetry::enabled();
    let opts = RunOptions::default()
        .with_telemetry(&telemetry)
        .with_shards(shards)
        .with_series();
    let result = run_churn(trace, &cfg, &workload, AdmissionPolicy::WakeAndRetry, &opts)
        .expect("churn replay runs");
    let series_bits = result
        .base
        .series
        .iter()
        .map(|s| s.power_w.to_bits())
        .collect();
    (result, series_bits, telemetry)
}

/// Lifecycle churn — arrivals, departures, admission control, and the
/// slot-recycling free list — must not perturb shard equivalence: the
/// flash-crowd scenario is bit-identical at every shard count, down to
/// the churn counters and the final placements of recycled slots.
#[test]
fn flash_crowd_churn_is_bit_identical_across_shard_counts() {
    let trace = generate_trace(&TraceConfig {
        n_vms: 40,
        n_samples: 48,
        interval_s: 900.0,
        seed: 0xC4B2,
    });
    let (baseline, base_series, base_tel) = churn_at(&trace, 1);
    let base_state = telemetry_state(&base_tel);
    assert!(baseline.arrivals > 0, "scenario must churn");
    assert!(baseline.departures > 0, "scenario must free slots");
    assert!(
        baseline.recycled_slots > 0,
        "scenario must exercise slot recycling"
    );
    for shards in SHARD_COUNTS {
        let (r, series, tel) = churn_at(&trace, shards);
        let ctx = format!("churn shards={shards}");
        assert_largescale_identical(&baseline.base, &r.base, &ctx);
        assert_eq!(base_series, series, "{ctx}: power series diverged");
        assert_eq!(baseline.arrivals, r.arrivals, "{ctx}: arrivals");
        assert_eq!(baseline.departures, r.departures, "{ctx}: departures");
        assert_eq!(baseline.admitted, r.admitted, "{ctx}: admitted");
        assert_eq!(baseline.rejections, r.rejections, "{ctx}: rejections");
        assert_eq!(baseline.wake_retries, r.wake_retries, "{ctx}: wake retries");
        assert_eq!(
            baseline.peak_queue_depth, r.peak_queue_depth,
            "{ctx}: peak queue depth"
        );
        assert_eq!(
            baseline.recycled_slots, r.recycled_slots,
            "{ctx}: recycled slots"
        );
        assert_eq!(
            baseline.live_churn_vms, r.live_churn_vms,
            "{ctx}: live churn VMs"
        );
        assert_eq!(
            base_state,
            telemetry_state(&tel),
            "{ctx}: telemetry counters diverged"
        );
    }
}

fn faulted_churn_at(
    trace: &UtilizationTrace,
    plan: &FaultPlan,
    shards: usize,
) -> (ChurnResult, Vec<u64>, Telemetry) {
    let wl_cfg = ChurnConfig {
        mean_lifetime_s: 3_600.0,
        ..ChurnConfig::with_flash_crowd(80.0, 24, 25, 0xF1A5)
    };
    let workload = ChurnWorkload::generate(&wl_cfg, trace.n_samples(), trace.interval_s());
    let cfg = LargeScaleConfig::new(40, OptimizerKind::Ipac);
    let telemetry = Telemetry::enabled();
    let opts = RunOptions::default()
        .with_telemetry(&telemetry)
        .with_shards(shards)
        .with_series()
        .with_faults(plan);
    let result = run_churn(trace, &cfg, &workload, AdmissionPolicy::WakeAndRetry, &opts)
        .expect("faulted churn replay runs");
    let series_bits = result
        .base
        .series
        .iter()
        .map(|s| s.power_w.to_bits())
        .collect();
    (result, series_bits, telemetry)
}

/// Fault injection must not perturb shard equivalence: a crash storm with
/// flaky migrations and wakes layered over the flash-crowd churn scenario
/// — evacuations, retries with backoff, stranded accounting, watchdog
/// relief — stays bit-identical at every shard count. This holds because
/// every fault draw is a pure function of the plan and the attempt
/// ordinal, never of shard-local state.
#[test]
fn crash_storm_churn_is_bit_identical_across_shard_counts() {
    let trace = generate_trace(&TraceConfig {
        n_vms: 40,
        n_samples: 48,
        interval_s: 900.0,
        seed: 0xC4B2,
    });
    let fault_cfg = FaultConfig {
        migration_failure_prob: 0.2,
        migration_backoff_budget: 3,
        wake_failure_prob: 0.2,
        ..FaultConfig::crash_storm(8.0 * 3_600.0, 1_800.0, 0xFA11)
    };
    let plan = FaultPlan::generate(&fault_cfg, trace.n_samples(), trace.interval_s(), 40, 0);
    assert!(!plan.is_empty(), "scenario must schedule faults");
    let (baseline, base_series, base_tel) = faulted_churn_at(&trace, &plan, 1);
    let base_state = telemetry_state(&base_tel);
    let crashes = base_state
        .0
        .iter()
        .find(|(n, _)| n == "fault.crashes")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(crashes > 0, "scenario must crash hosts");
    for shards in SHARD_COUNTS {
        let (r, series, tel) = faulted_churn_at(&trace, &plan, shards);
        let ctx = format!("faulted churn shards={shards}");
        assert_largescale_identical(&baseline.base, &r.base, &ctx);
        assert_eq!(base_series, series, "{ctx}: power series diverged");
        assert_eq!(baseline.admitted, r.admitted, "{ctx}: admitted");
        assert_eq!(baseline.rejections, r.rejections, "{ctx}: rejections");
        assert_eq!(baseline.wake_retries, r.wake_retries, "{ctx}: wake retries");
        assert_eq!(
            base_state,
            telemetry_state(&tel),
            "{ctx}: telemetry counters diverged"
        );
    }
}

fn hierarchical_at(
    trace: &UtilizationTrace,
    shards: usize,
) -> (LargeScaleResult, Vec<u64>, Telemetry) {
    let mut cfg = LargeScaleConfig::new(30, OptimizerKind::Ipac);
    // Two-site fleet with pods of 4: the partition yields multiple pods
    // per site, so the shard fan-out over pods, the merge in pod order,
    // and the spill/rebalance/drain passes are all on the path under
    // test — not just a degenerate single pod.
    cfg.fleet = Some(FleetSpec::specpower_mixed(12));
    let telemetry = Telemetry::enabled();
    let opts = RunOptions::default()
        .with_telemetry(&telemetry)
        .with_shards(shards)
        .with_series()
        .with_pods(4);
    let result = run_large_scale(trace, &cfg, &opts).expect("hierarchical replay runs");
    let series_bits = result.series.iter().map(|s| s.power_w.to_bits()).collect();
    (result, series_bits, telemetry)
}

/// The hierarchical pod optimizer must preserve the repo-wide invariant:
/// pods are packed from one immutable snapshot and merged in pod index
/// order, so the shard count — which only decides how pods fan out over
/// workers — can never leak into a result bit.
#[test]
fn hierarchical_is_bit_identical_across_shard_counts() {
    let trace = fast_trace(30, 0xF1EE7);
    let (baseline, base_series, base_tel) = hierarchical_at(&trace, 1);
    let base_state = telemetry_state(&base_tel);
    assert!(
        base_state
            .0
            .iter()
            .any(|(n, v)| n == "optimizer.pod_invocations" && *v > 0),
        "scenario must actually run pod-local planning"
    );
    for shards in SHARD_COUNTS {
        let (r, series, tel) = hierarchical_at(&trace, shards);
        let ctx = format!("hierarchical shards={shards}");
        assert_largescale_identical(&baseline, &r, &ctx);
        assert_eq!(base_series, series, "{ctx}: power series diverged");
        assert_eq!(
            bits(&baseline.site_energy_wh),
            bits(&r.site_energy_wh),
            "{ctx}: per-site energy diverged"
        );
        assert_eq!(
            base_state,
            telemetry_state(&tel),
            "{ctx}: telemetry counters diverged"
        );
    }
}

fn env_shards() -> usize {
    std::env::var("VDC_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// CI entry point: `VDC_SHARDS=N` pins an extra shard count to verify
/// against the single-threaded baseline (ci.sh runs 1 and 8). Unset, it
/// exercises the auto mode (`shards = 0`, host parallelism).
#[test]
fn env_selected_shard_count_matches_baseline() {
    let shards = env_shards();
    let trace = fast_trace(6, 0xC1);
    let (baseline, _) = cosim_at(&trace, 1);
    let (r, _) = cosim_at(&trace, shards);
    assert_cosim_identical(&baseline, &r, &format!("cosim VDC_SHARDS={shards}"));
}

/// Trace-replay twin of the env-driven gate: the same `VDC_SHARDS` matrix
/// must also leave the week replay — per-sample demand updates, DVFS
/// passes, and the power series — bit-identical to the single-threaded
/// baseline.
#[test]
fn env_selected_shard_count_matches_replay_baseline() {
    let shards = env_shards();
    let trace = fast_trace(30, 0xC2);
    let (baseline, base_series, _) = largescale_at(&trace, 1);
    let (r, series, _) = largescale_at(&trace, shards);
    assert_largescale_identical(&baseline, &r, &format!("largescale VDC_SHARDS={shards}"));
    assert_eq!(
        base_series, series,
        "largescale VDC_SHARDS={shards}: power series diverged"
    );
}
