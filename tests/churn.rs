//! Tier-1 churn gate at the workspace level: the lifecycle-events
//! subsystem must be a strict superset of the fixed-population replay.
//!
//! * With **zero events**, `run_churn` is bit-identical to
//!   `run_large_scale` on the same trace — every churn hook is dormant
//!   and the slot-recycling free list is never touched.
//! * With a real churn stream, the run is deterministic (same seed, same
//!   result) and the admission ledger balances: every arrival is either
//!   admitted or rejected, and nothing is silently dropped.

use vdc_churn::{AdmissionPolicy, ChurnConfig, ChurnWorkload};
use vdc_core::churn::run_churn;
use vdc_core::largescale::{run_large_scale, LargeScaleConfig, OptimizerKind};
use vdc_core::RunOptions;
use vdc_trace::{generate_trace, TraceConfig, UtilizationTrace};

fn day_trace(n_vms: usize, seed: u64) -> UtilizationTrace {
    generate_trace(&TraceConfig {
        n_vms,
        n_samples: 48,
        interval_s: 900.0,
        seed,
    })
}

#[test]
fn zero_event_churn_run_matches_fixed_population_replay() {
    let trace = day_trace(30, 0xFACADE);
    let cfg = LargeScaleConfig::new(30, OptimizerKind::Ipac);
    let opts = RunOptions::default().with_series();
    let fixed = run_large_scale(&trace, &cfg, &opts).expect("fixed replay runs");
    let workload = ChurnWorkload::empty(trace.n_samples(), trace.interval_s());
    let churned = run_churn(
        &trace,
        &cfg,
        &workload,
        AdmissionPolicy::WakeAndRetry,
        &opts,
    )
    .expect("empty churn replay runs");

    assert_eq!(
        fixed.total_energy_wh.to_bits(),
        churned.base.total_energy_wh.to_bits(),
        "total energy"
    );
    assert_eq!(
        fixed.energy_per_vm_wh.to_bits(),
        churned.base.energy_per_vm_wh.to_bits(),
        "energy per VM"
    );
    assert_eq!(
        fixed.sla_violation_fraction.to_bits(),
        churned.base.sla_violation_fraction.to_bits(),
        "SLA fraction"
    );
    assert_eq!(fixed.migrations, churned.base.migrations, "migrations");
    assert_eq!(
        fixed.peak_active_servers, churned.base.peak_active_servers,
        "peak active servers"
    );
    assert_eq!(
        fixed.final_placements, churned.base.final_placements,
        "final placements"
    );
    let fixed_series: Vec<u64> = fixed.series.iter().map(|s| s.power_w.to_bits()).collect();
    let churn_series: Vec<u64> = churned
        .base
        .series
        .iter()
        .map(|s| s.power_w.to_bits())
        .collect();
    assert_eq!(fixed_series, churn_series, "power series");

    assert_eq!(churned.arrivals, 0);
    assert_eq!(churned.departures, 0);
    assert_eq!(churned.rejections, 0);
    assert_eq!(churned.recycled_slots, 0);
    assert_eq!(churned.live_churn_vms, 0);
}

#[test]
fn churn_replay_is_deterministic_and_conserves_arrivals() {
    let trace = day_trace(30, 0xD1CE);
    let cfg = LargeScaleConfig::new(30, OptimizerKind::Ipac);
    let wl_cfg = ChurnConfig {
        mean_lifetime_s: 3_600.0,
        ..ChurnConfig::with_flash_crowd(60.0, 20, 15, 0x51DE)
    };
    let workload = ChurnWorkload::generate(&wl_cfg, trace.n_samples(), trace.interval_s());
    let opts = RunOptions::default();
    let a = run_churn(
        &trace,
        &cfg,
        &workload,
        AdmissionPolicy::WakeAndRetry,
        &opts,
    )
    .unwrap();
    let b = run_churn(
        &trace,
        &cfg,
        &workload,
        AdmissionPolicy::WakeAndRetry,
        &opts,
    )
    .unwrap();

    assert!(a.arrivals > 0, "scenario must churn");
    assert_eq!(a.admitted + a.rejections, a.arrivals, "admission ledger");
    assert_eq!(
        a.base.total_energy_wh.to_bits(),
        b.base.total_energy_wh.to_bits(),
        "repeat run: energy"
    );
    assert_eq!(
        a.base.final_placements, b.base.final_placements,
        "repeat run: placements"
    );
    assert_eq!(a.arrivals, b.arrivals);
    assert_eq!(a.departures, b.departures);
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.rejections, b.rejections);
    assert_eq!(a.wake_retries, b.wake_retries);
    assert_eq!(a.recycled_slots, b.recycled_slots);
    assert_eq!(a.live_churn_vms, b.live_churn_vms);
}
