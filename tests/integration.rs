//! Cross-crate integration tests: the full two-level pipeline of Fig. 1,
//! exercised through the public facade crate.

use vdcpower::consolidate::item::PackItem;
use vdcpower::core::controller::IdentificationConfig;
use vdcpower::core::experiments::{fig2, fig6, Fig6Config, MeanStd};
use vdcpower::core::largescale::{run_large_scale, LargeScaleConfig, OptimizerKind};
use vdcpower::core::optimizer::{OptimizerConfig, PowerOptimizer};
use vdcpower::core::testbed::{Testbed, TestbedConfig};
use vdcpower::core::RunOptions;
use vdcpower::dcsim::VmId;
use vdcpower::trace::{generate_trace, TraceConfig};

fn quick_testbed_cfg(n_apps: usize) -> TestbedConfig {
    TestbedConfig {
        n_apps,
        concurrency: 25,
        ident: IdentificationConfig {
            periods: 120,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn fig2_pipeline_tracks_setpoint_for_every_app() {
    let cfg = quick_testbed_cfg(3);
    let result = fig2(&cfg, 40, 60).expect("fig2 runs");
    assert_eq!(result.per_app.len(), 3);
    for (i, m) in result.per_app.iter().enumerate() {
        assert!(m.n > 30, "app {i} produced too few measurements");
        assert!(
            (m.mean - 1000.0).abs() < 200.0,
            "app {i}: mean {:.1} should be near the 1000 ms set point",
            m.mean
        );
        assert!(m.std < 400.0, "app {i}: std {:.1} implausibly large", m.std);
    }
}

#[test]
fn controllers_and_optimizer_integrate_on_the_testbed() {
    // Run the controllers, then invoke the data-center optimizer (IPAC) on
    // top — the integrated architecture of Fig. 1. Power must drop (or at
    // worst stay) and response times must still track afterwards.
    let cfg = quick_testbed_cfg(2);
    let mut tb = Testbed::build(&cfg).expect("testbed builds");
    tb.run(50).expect("warm-up");
    let before = tb.run(10).expect("pre-optimizer sample");
    let before_power = before.iter().map(|s| s.power_w).sum::<f64>() / before.len() as f64;

    let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
    let stats = tb.run_optimizer(&mut opt).expect("optimizer runs");
    // 4 VMs spread over 4 servers with ~0.6 GHz each: consolidation must
    // find something to do.
    assert!(
        stats.migrations + stats.slept > 0,
        "optimizer should consolidate the spread testbed: {stats:?}"
    );

    let after = tb.run(60).expect("post-optimizer run");
    let after_power =
        after[20..].iter().map(|s| s.power_w).sum::<f64>() / (after.len() - 20) as f64;
    assert!(
        after_power < before_power,
        "consolidation should cut power: {after_power:.1} vs {before_power:.1}"
    );
    // SLAs still hold after migration.
    for app in 0..2 {
        let tail: Vec<f64> = after[30..]
            .iter()
            .filter_map(|s| s.response_ms[app])
            .collect();
        let mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
        assert!(
            (mean - 1000.0).abs() < 250.0,
            "app {app} lost its SLA after consolidation: {mean:.0} ms"
        );
    }
}

#[test]
fn large_scale_shapes_match_the_paper() {
    let trace = generate_trace(&TraceConfig {
        n_vms: 80,
        n_samples: 96,
        interval_s: 900.0,
        seed: 1234,
    });
    let points = fig6(&trace, &Fig6Config::new([40, 80])).expect("fig6 runs");
    assert_eq!(points.len(), 2);
    for p in &points {
        // The headline claim: IPAC consumes less energy per VM.
        assert!(
            p.ipac.energy_per_vm_wh < p.pmapper.energy_per_vm_wh,
            "IPAC must beat pMapper at n = {}",
            p.n_vms
        );
        // Both schemes keep all VMs placed on a bounded fleet.
        assert!(p.ipac.peak_active_servers <= 80);
    }
}

#[test]
fn migration_counters_and_energy_are_consistent() {
    let trace = generate_trace(&TraceConfig {
        n_vms: 30,
        n_samples: 48,
        interval_s: 900.0,
        seed: 77,
    });
    let r = run_large_scale(
        &trace,
        &LargeScaleConfig::new(30, OptimizerKind::Ipac),
        &RunOptions::default(),
    )
    .expect("run");
    assert_eq!(r.n_vms, 30);
    assert!((r.energy_per_vm_wh * 30.0 - r.total_energy_wh).abs() < 1e-6);
    assert!(r.mean_active_servers <= r.peak_active_servers as f64);
    // 48 samples / 16-per-invocation = 2 periodic + 1 initial invocation.
    assert_eq!(r.optimizer_invocations, 3);
}

#[test]
fn optimizer_places_new_vms_against_live_datacenter() {
    use vdcpower::dcsim::{DataCenter, Server, ServerSpec, VmSpec};
    let mut dc = DataCenter::new();
    let quad = dc.add_server(Server::asleep(ServerSpec::type_quad_3ghz()));
    dc.add_server(Server::asleep(ServerSpec::type_dual_1_5ghz()));
    let mut items = Vec::new();
    for i in 0..4u64 {
        dc.add_vm(VmSpec::new(i, 0.8, 1024.0)).unwrap();
        items.push(PackItem::new(VmId(i), 0.8, 1024.0));
    }
    let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
    let stats = opt.optimize(&mut dc, &items).unwrap();
    assert_eq!(stats.placements, 4);
    // All four fit on the efficient quad; the small server stays asleep.
    assert_eq!(dc.active_servers(), vec![quad]);
}

#[test]
fn mean_std_helper_is_exported_and_sane() {
    let m = MeanStd::from_samples(&[1.0, 2.0, 3.0]);
    assert!((m.mean - 2.0).abs() < 1e-12);
    assert_eq!(m.n, 3);
}
