//! Benches for the large-scale machinery: trace generation, overload
//! relief, and one full optimizer invocation against a populated data
//! center (the cost paid every 4 simulated hours in Fig. 6).

use std::hint::black_box;
use vdc_apptier::rng::SimRng;
use vdc_bench::harness::BenchHarness;
use vdc_consolidate::constraint::AndConstraint;
use vdc_consolidate::relief::{relieve_overloads, ReliefConfig};
use vdc_consolidate::view::snapshot;
use vdc_core::optimizer::{OptimizerConfig, PowerOptimizer};
use vdc_dcsim::{DataCenter, Server, ServerHandle, ServerSpec, VmSpec};
use vdc_trace::{generate_trace, TraceConfig};

fn bench_trace_generation(h: &mut BenchHarness) {
    for n_vms in [100usize, 1000] {
        h.bench("trace_generate", &n_vms.to_string(), || {
            generate_trace(black_box(&TraceConfig {
                n_vms,
                n_samples: 672,
                interval_s: 900.0,
                seed: 7,
            }))
        });
    }
}

/// A populated data center with some overloaded servers.
fn pressured_dc(n_servers: usize, n_vms: usize, seed: u64) -> DataCenter {
    let mut rng = SimRng::seed_from_u64(seed);
    let catalog = ServerSpec::catalog();
    let mut dc = DataCenter::new();
    for _ in 0..n_servers {
        let spec = rng.pick(&catalog).clone();
        dc.add_server(Server::active(spec));
    }
    let mut vms = Vec::with_capacity(n_vms);
    for i in 0..n_vms {
        let demand = 0.3 + rng.uniform() * 1.2;
        let vm = dc.add_vm(VmSpec::new(i as u64, demand, 512.0)).unwrap();
        vms.push(vm);
        // Round-robin placement ignores balance: some servers overload.
        let mut placed = false;
        for off in 0..n_servers {
            let s = ServerHandle::from_index((i + off) % n_servers);
            if dc.place_vm(vm, s).is_ok() {
                placed = true;
                break;
            }
        }
        assert!(placed, "fleet too small for the benchmark population");
    }
    // Inflate some demands to create genuine overload.
    for i in (0..n_vms).step_by(7) {
        dc.set_vm_demand(vms[i], 3.5).unwrap();
    }
    dc
}

fn bench_relief(h: &mut BenchHarness) {
    let constraint = AndConstraint::cpu_and_memory();
    for (servers, vms) in [(50usize, 150usize), (200, 600)] {
        let dc = pressured_dc(servers, vms, 3);
        let snap = snapshot(&dc);
        h.bench("overload_relief", &format!("{vms}vms_{servers}srv"), || {
            relieve_overloads(black_box(&snap), &constraint, &ReliefConfig::default())
        });
    }
}

fn bench_optimizer_invocation(h: &mut BenchHarness) {
    for (servers, vms) in [(100usize, 300usize), (400, 1200)] {
        let dc = pressured_dc(servers, vms, 5);
        let ipac = PowerOptimizer::new(OptimizerConfig::ipac_default());
        h.bench(
            "optimizer_invocation_plan",
            &format!("ipac_{vms}vms"),
            || ipac.plan(black_box(&dc), &[]),
        );
        let pmapper = PowerOptimizer::new(OptimizerConfig::pmapper_default());
        h.bench(
            "optimizer_invocation_plan",
            &format!("pmapper_{vms}vms"),
            || pmapper.plan(black_box(&dc), &[]),
        );
    }
}

fn main() {
    let mut h = BenchHarness::from_env("largescale");
    bench_trace_generation(&mut h);
    bench_relief(&mut h);
    bench_optimizer_invocation(&mut h);
    h.finish();
}
