//! Criterion benches for the large-scale machinery: trace generation,
//! overload relief, and one full optimizer invocation against a populated
//! data center (the cost paid every 4 simulated hours in Fig. 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vdc_consolidate::constraint::AndConstraint;
use vdc_consolidate::relief::{relieve_overloads, ReliefConfig};
use vdc_consolidate::view::snapshot;
use vdc_core::optimizer::{OptimizerConfig, PowerOptimizer};
use vdc_trace::{generate_trace, TraceConfig};
use vdc_dcsim::{DataCenter, Server, ServerSpec, VmId, VmSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generate");
    g.sample_size(10);
    for n_vms in [100usize, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(n_vms), &n_vms, |bench, &n| {
            bench.iter(|| {
                black_box(generate_trace(&TraceConfig {
                    n_vms: n,
                    n_samples: 672,
                    interval_s: 900.0,
                    seed: 7,
                }))
            })
        });
    }
    g.finish();
}

/// A populated data center with some overloaded servers.
fn pressured_dc(n_servers: usize, n_vms: usize, seed: u64) -> DataCenter {
    let mut rng = SmallRng::seed_from_u64(seed);
    let catalog = ServerSpec::catalog();
    let mut dc = DataCenter::new();
    for _ in 0..n_servers {
        let spec = catalog[rng.random_range(0..catalog.len())].clone();
        dc.add_server(Server::active(spec));
    }
    for i in 0..n_vms {
        let demand = 0.3 + rng.random::<f64>() * 1.2;
        dc.add_vm(VmSpec::new(i as u64, demand, 512.0)).unwrap();
        // Round-robin placement ignores balance: some servers overload.
        let mut placed = false;
        for off in 0..n_servers {
            let s = (i + off) % n_servers;
            if dc.place_vm(VmId(i as u64), s).is_ok() {
                placed = true;
                break;
            }
        }
        assert!(placed, "fleet too small for the benchmark population");
    }
    // Inflate some demands to create genuine overload.
    for i in (0..n_vms).step_by(7) {
        dc.set_vm_demand(VmId(i as u64), 3.5).unwrap();
    }
    dc
}

fn bench_relief(c: &mut Criterion) {
    let mut g = c.benchmark_group("overload_relief");
    g.sample_size(20);
    let constraint = AndConstraint::cpu_and_memory();
    for (servers, vms) in [(50usize, 150usize), (200, 600)] {
        let dc = pressured_dc(servers, vms, 3);
        let snap = snapshot(&dc);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{vms}vms_{servers}srv")),
            &vms,
            |bench, _| {
                bench.iter(|| {
                    black_box(relieve_overloads(
                        &snap,
                        &constraint,
                        &ReliefConfig::default(),
                    ))
                })
            },
        );
    }
    g.finish();
}

fn bench_optimizer_invocation(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer_invocation_plan");
    g.sample_size(10);
    for (servers, vms) in [(100usize, 300usize), (400, 1200)] {
        let dc = pressured_dc(servers, vms, 5);
        g.bench_with_input(
            BenchmarkId::new("ipac", format!("{vms}vms")),
            &vms,
            |bench, _| {
                let opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
                bench.iter(|| black_box(opt.plan(&dc, &[])))
            },
        );
        g.bench_with_input(
            BenchmarkId::new("pmapper", format!("{vms}vms")),
            &vms,
            |bench, _| {
                let opt = PowerOptimizer::new(OptimizerConfig::pmapper_default());
                bench.iter(|| black_box(opt.plan(&dc, &[])))
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_trace_generation, bench_relief, bench_optimizer_invocation
}
criterion_main!(benches);
