//! Shard-scaling trajectory for the week-replay workloads: wall-clock at
//! shard counts 1/2/4/8 plus an Amdahl projection from the *measured*
//! parallel fraction, emitted as `results/BENCH_shard_scaling.json`.
//!
//! Two numbers per shard count, both honest:
//!
//! * `speedup_measured` — wall-clock ratio vs the single-shard run **on
//!   this host**. Bounded by `host_parallelism`; on a 1-core CI box it
//!   stays ~1.0 by construction.
//! * `speedup_projected` — Amdahl's law applied to the parallel fraction
//!   measured from the telemetry spans around the shardable regions
//!   (`cosim.control_ns`; for the replay the sum of the demand-update,
//!   DVFS-decision, snapshot, power-map, and pack-search spans): what the
//!   measured split predicts for a host with at least `shards` idle cores.
//!
//! The JSON carries both plus the host parallelism, so a reader can never
//! mistake a projection for a measurement.

use std::time::Instant;
use vdc_core::cosim::{run_cosim, CosimConfig};
use vdc_core::largescale::{run_large_scale, LargeScaleConfig, OptimizerKind};
use vdc_core::RunOptions;
use vdc_dcsim::json::{array, JsonObject};
use vdc_telemetry::Telemetry;
use vdc_trace::{generate_trace, TraceConfig, UtilizationTrace};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn week_trace(n_vms: usize, seed: u64) -> UtilizationTrace {
    generate_trace(&TraceConfig {
        n_vms,
        n_samples: 672, // 7 days of 15-minute samples
        interval_s: 900.0,
        seed,
    })
}

/// Total nanoseconds recorded under the named spans (count × mean each).
/// The spans must cover disjoint regions, so their sum is the total time
/// spent inside shardable work.
fn span_total_ns(t: &Telemetry, spans: &[&str]) -> f64 {
    t.histogram_summaries()
        .into_iter()
        .filter(|h| spans.contains(&h.name.as_str()))
        .map(|h| h.count as f64 * h.mean)
        .sum()
}

struct Run {
    shards: usize,
    wall_ns: f64,
    parallel_ns: f64,
}

/// Time one workload at every shard count; returns runs in shard order.
fn sweep(workload: &str, spans: &[&str], mut run: impl FnMut(usize, &Telemetry)) -> Vec<Run> {
    SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let telemetry = Telemetry::enabled();
            let t = Instant::now();
            run(shards, &telemetry);
            let wall_ns = t.elapsed().as_nanos() as f64;
            let parallel_ns = span_total_ns(&telemetry, spans);
            println!(
                "{workload:<18} shards={shards}  wall {:>8.2} ms  shardable {:>8.2} ms",
                wall_ns / 1e6,
                parallel_ns / 1e6,
            );
            Run {
                shards,
                wall_ns,
                parallel_ns,
            }
        })
        .collect()
}

/// Amdahl's law from the measured serial fraction of the baseline run.
fn projected_speedup(serial_fraction: f64, shards: usize) -> f64 {
    1.0 / (serial_fraction + (1.0 - serial_fraction) / shards as f64)
}

fn rows(workload: &str, runs: &[Run], host: usize) -> Vec<String> {
    let base = &runs[0];
    // Parallel fraction of the single-shard run: the span around the
    // shardable region over total wall time.
    let parallel_fraction = (base.parallel_ns / base.wall_ns).clamp(0.0, 1.0);
    let serial_fraction = 1.0 - parallel_fraction;
    runs.iter()
        .map(|r| {
            JsonObject::new()
                .str("workload", workload)
                .int("shards", r.shards as i64)
                .int("host_parallelism", host as i64)
                .num("wall_ns", r.wall_ns)
                .num("speedup_measured", base.wall_ns / r.wall_ns)
                .num("parallel_fraction", parallel_fraction)
                .num(
                    "speedup_projected",
                    projected_speedup(serial_fraction, r.shards),
                )
                .build()
        })
        .collect()
}

fn main() {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("shard_scaling on {host} host core(s)");

    // Week-replay co-simulation: MPC-dominated, the near-linear workload.
    let cosim_trace = week_trace(16, 0x5CA1E);
    let cosim_runs = sweep("cosim_week", &["cosim.control_ns"], |shards, telemetry| {
        let cfg = CosimConfig {
            n_apps: 16,
            control_periods_per_sample: 2,
            seed: 0x5CA1E,
            ..Default::default()
        };
        let opts = RunOptions::default()
            .with_telemetry(telemetry)
            .with_shards(shards);
        run_cosim(&cosim_trace, &cfg, &opts).expect("cosim week replay");
    });

    // Week replay of the trace-driven large-scale simulation (Fig. 6
    // machinery). The shardable regions are the per-sample demand-update
    // and DVFS-decision fans, the consolidation/relief snapshots, the
    // per-server power map, and the Minimum Slack root sweeps inside the
    // optimizer's packing (`optimizer.pack_search_ns` — the replay's
    // dominant cost); the sequential remainder is the pack commit loops
    // plus the index-order folds.
    let ls_trace = week_trace(600, 0x1EE7);
    let ls_runs = sweep(
        "largescale_week",
        &[
            "largescale.demand_ns",
            "largescale.dvfs_ns",
            "largescale.relief_snapshot_ns",
            "largescale.power_map_ns",
            "optimizer.snapshot_ns",
            "optimizer.pack_search_ns",
        ],
        |shards, telemetry| {
            let cfg = LargeScaleConfig::new(600, OptimizerKind::Ipac);
            let opts = RunOptions::default()
                .with_telemetry(telemetry)
                .with_shards(shards);
            run_large_scale(&ls_trace, &cfg, &opts).expect("week replay");
        },
    );

    let mut all = rows("cosim_week", &cosim_runs, host);
    all.extend(rows("largescale_week", &ls_runs, host));
    let doc = JsonObject::new()
        .str("bench", "shard_scaling")
        .int("host_parallelism", host as i64)
        .str(
            "note",
            "speedup_measured is wall-clock on this host (bounded by \
             host_parallelism); speedup_projected is Amdahl's law from the \
             measured parallel fraction of the shards=1 run",
        )
        .raw("results", &array(&all))
        .build();
    let out_dir = std::env::var("VDC_BENCH_OUT_DIR").unwrap_or_else(|_| "results".to_string());
    let path = format!("{out_dir}/BENCH_shard_scaling.json");
    match std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(&path, doc + "\n")) {
        Ok(()) => println!("shard scaling trajectory -> {path}"),
        Err(e) => vdc_telemetry::Reporter::default().warn(&format!("could not write {path}: {e}")),
    }
}
