//! Benches for the consolidation layer (PERF + ABL2 rows of the
//! experiment index): Minimum Slack vs FFD packing cost, the ε / step-cap
//! sensitivity of Algorithm 1, and full PAC / IPAC / pMapper invocations
//! at growing data-center sizes.

use std::hint::black_box;
use vdc_apptier::rng::{seed_stream, SimRng};
use vdc_bench::harness::BenchHarness;
use vdc_consolidate::constraint::AndConstraint;
use vdc_consolidate::ffd::first_fit_decreasing;
use vdc_consolidate::ipac::{ipac_plan, IpacConfig};
use vdc_consolidate::item::{PackItem, PackServer};
use vdc_consolidate::minslack::{minimum_slack, MinSlackConfig};
use vdc_consolidate::pac::pac_pack;
use vdc_consolidate::pmapper::pmapper_plan;
use vdc_consolidate::policy::AlwaysAllow;
use vdc_dcsim::{ServerSpec, VmId};

fn make_items(n: usize, seed: u64) -> Vec<PackItem> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            PackItem::new(
                VmId(i as u64),
                0.2 + rng.uniform() * 1.8,
                256.0 + rng.uniform() * 2048.0,
            )
        })
        .collect()
}

fn make_servers(n: usize, seed: u64) -> Vec<PackServer> {
    let mut rng = SimRng::seed_from_u64(seed);
    let catalog = ServerSpec::catalog();
    (0..n)
        .map(|i| {
            let spec = rng.pick(&catalog);
            PackServer {
                index: i,
                cpu_capacity_ghz: spec.max_capacity_ghz(),
                mem_capacity_mib: spec.memory_mib,
                max_watts: spec.power.max_watts,
                idle_watts: spec.power.static_watts,
                active: false,
                pue: 1.0,
                resident: Vec::new(),
            }
        })
        .collect()
}

/// A populated snapshot: items spread round-robin (inefficient placement).
fn populated(servers: usize, vms: usize, seed: u64) -> Vec<PackServer> {
    let mut s = make_servers(servers, seed);
    for item in make_items(vms, seed_stream(seed, 1)) {
        let slot = (item.vm.0 as usize) % s.len();
        s[slot].resident.push(item);
        s[slot].active = true;
    }
    s
}

fn bench_minslack_vs_ffd(h: &mut BenchHarness) {
    let constraint = AndConstraint::cpu_and_memory();
    for n in [20usize, 100, 400] {
        let items = make_items(n, 42);
        let server = &make_servers(1, 7)[0];
        h.bench("pack_one_server", &format!("minimum_slack_{n}"), || {
            minimum_slack(
                black_box(server),
                &items,
                &constraint,
                &MinSlackConfig::default(),
            )
        });
        h.bench("pack_one_server", &format!("ffd_{n}"), || {
            let mut s = vec![server.clone()];
            first_fit_decreasing(&mut s, black_box(&items), &constraint)
        });
    }
}

fn bench_minslack_epsilon(h: &mut BenchHarness) {
    // ABL2: the allowed-slack ε and the step budget trade solution quality
    // for search time (lines 4 and 15–17 of Algorithm 1).
    let constraint = AndConstraint::cpu_and_memory();
    let items = make_items(200, 11);
    let server = &make_servers(1, 3)[0];
    for eps in [0.0f64, 0.05, 0.25, 1.0] {
        let cfg = MinSlackConfig {
            epsilon_ghz: eps,
            ..Default::default()
        };
        h.bench("minslack_epsilon", &format!("eps{eps}"), || {
            minimum_slack(black_box(server), &items, &constraint, &cfg)
        });
    }
    for budget in [500u64, 20_000] {
        let cfg = MinSlackConfig {
            epsilon_ghz: 0.0,
            step_budget: budget,
            ..Default::default()
        };
        h.bench("minslack_epsilon", &format!("budget{budget}"), || {
            minimum_slack(black_box(server), &items, &constraint, &cfg)
        });
    }
}

fn bench_pac(h: &mut BenchHarness) {
    let constraint = AndConstraint::cpu_and_memory();
    for (servers, vms) in [(50usize, 100usize), (200, 400), (500, 1000)] {
        let base = make_servers(servers, 3);
        let items = make_items(vms, 4);
        h.bench("pac_pack", &format!("{vms}vms_{servers}srv"), || {
            let mut s = base.clone();
            pac_pack(
                &mut s,
                black_box(&items),
                &constraint,
                &MinSlackConfig::default(),
            )
        });
    }
}

fn bench_ipac_vs_pmapper(h: &mut BenchHarness) {
    let constraint = AndConstraint::cpu_and_memory();
    for (servers, vms) in [(50usize, 100usize), (200, 400), (500, 1000)] {
        let snap = populated(servers, vms, 9);
        h.bench("invocation", &format!("ipac_{vms}vms"), || {
            ipac_plan(
                black_box(&snap),
                &[],
                &constraint,
                &AlwaysAllow,
                &IpacConfig::default(),
            )
        });
        h.bench("invocation", &format!("pmapper_{vms}vms"), || {
            pmapper_plan(black_box(&snap), &[], &constraint)
        });
    }
}

fn main() {
    let mut h = BenchHarness::from_env("consolidation");
    bench_minslack_vs_ffd(&mut h);
    bench_minslack_epsilon(&mut h);
    bench_pac(&mut h);
    bench_ipac_vs_pmapper(&mut h);
    h.finish();
}
