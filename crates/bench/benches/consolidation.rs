//! Criterion benches for the consolidation layer (PERF + ABL2 rows of the
//! experiment index): Minimum Slack vs FFD packing cost, the ε / step-cap
//! sensitivity of Algorithm 1, and full PAC / IPAC / pMapper invocations
//! at growing data-center sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use vdc_consolidate::constraint::AndConstraint;
use vdc_consolidate::ffd::first_fit_decreasing;
use vdc_consolidate::ipac::{ipac_plan, IpacConfig};
use vdc_consolidate::item::{PackItem, PackServer};
use vdc_consolidate::minslack::{minimum_slack, MinSlackConfig};
use vdc_consolidate::pac::pac_pack;
use vdc_consolidate::pmapper::pmapper_plan;
use vdc_consolidate::policy::AlwaysAllow;
use vdc_dcsim::{ServerSpec, VmId};

fn make_items(n: usize, seed: u64) -> Vec<PackItem> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            PackItem::new(
                VmId(i as u64),
                0.2 + rng.random::<f64>() * 1.8,
                256.0 + rng.random::<f64>() * 2048.0,
            )
        })
        .collect()
}

fn make_servers(n: usize, seed: u64) -> Vec<PackServer> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let catalog = ServerSpec::catalog();
    (0..n)
        .map(|i| {
            let spec = &catalog[rng.random_range(0..catalog.len())];
            PackServer {
                index: i,
                cpu_capacity_ghz: spec.max_capacity_ghz(),
                mem_capacity_mib: spec.memory_mib,
                max_watts: spec.power.max_watts,
                idle_watts: spec.power.static_watts,
                active: false,
                resident: Vec::new(),
            }
        })
        .collect()
}

/// A populated snapshot: items spread round-robin (inefficient placement).
fn populated(servers: usize, vms: usize, seed: u64) -> Vec<PackServer> {
    let mut s = make_servers(servers, seed);
    for item in make_items(vms, seed ^ 0x9E37) {
        let slot = (item.vm.0 as usize) % s.len();
        s[slot].resident.push(item);
        s[slot].active = true;
    }
    s
}

fn bench_minslack_vs_ffd(c: &mut Criterion) {
    let mut g = c.benchmark_group("pack_one_server");
    let constraint = AndConstraint::cpu_and_memory();
    for n in [20usize, 100, 400] {
        let items = make_items(n, 42);
        let server = &make_servers(1, 7)[0];
        g.bench_with_input(BenchmarkId::new("minimum_slack", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(minimum_slack(
                    server,
                    &items,
                    &constraint,
                    &MinSlackConfig::default(),
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("ffd", n), &n, |bench, _| {
            bench.iter(|| {
                let mut s = vec![server.clone()];
                black_box(first_fit_decreasing(&mut s, &items, &constraint))
            })
        });
    }
    g.finish();
}

fn bench_minslack_epsilon(c: &mut Criterion) {
    // ABL2: the allowed-slack ε and the step budget trade solution quality
    // for search time (lines 4 and 15–17 of Algorithm 1).
    let mut g = c.benchmark_group("minslack_epsilon");
    let constraint = AndConstraint::cpu_and_memory();
    let items = make_items(200, 11);
    let server = &make_servers(1, 3)[0];
    for eps in [0.0f64, 0.05, 0.25, 1.0] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("eps{eps}")),
            &eps,
            |bench, &eps| {
                let cfg = MinSlackConfig {
                    epsilon_ghz: eps,
                    ..Default::default()
                };
                bench.iter(|| black_box(minimum_slack(server, &items, &constraint, &cfg)))
            },
        );
    }
    for budget in [500u64, 20_000] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("budget{budget}")),
            &budget,
            |bench, &budget| {
                let cfg = MinSlackConfig {
                    epsilon_ghz: 0.0,
                    step_budget: budget,
                    ..Default::default()
                };
                bench.iter(|| black_box(minimum_slack(server, &items, &constraint, &cfg)))
            },
        );
    }
    g.finish();
}

fn bench_pac(c: &mut Criterion) {
    let mut g = c.benchmark_group("pac_pack");
    g.sample_size(10);
    let constraint = AndConstraint::cpu_and_memory();
    for (servers, vms) in [(50usize, 100usize), (200, 400), (500, 1000)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{vms}vms_{servers}srv")),
            &vms,
            |bench, _| {
                let base = make_servers(servers, 3);
                let items = make_items(vms, 4);
                bench.iter(|| {
                    let mut s = base.clone();
                    black_box(pac_pack(
                        &mut s,
                        &items,
                        &constraint,
                        &MinSlackConfig::default(),
                    ))
                })
            },
        );
    }
    g.finish();
}

fn bench_ipac_vs_pmapper(c: &mut Criterion) {
    let mut g = c.benchmark_group("invocation");
    g.sample_size(10);
    let constraint = AndConstraint::cpu_and_memory();
    for (servers, vms) in [(50usize, 100usize), (200, 400), (500, 1000)] {
        let snap = populated(servers, vms, 9);
        g.bench_with_input(
            BenchmarkId::new("ipac", format!("{vms}vms")),
            &vms,
            |bench, _| {
                bench.iter(|| {
                    black_box(ipac_plan(
                        &snap,
                        &[],
                        &constraint,
                        &AlwaysAllow,
                        &IpacConfig::default(),
                    ))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("pmapper", format!("{vms}vms")),
            &vms,
            |bench, _| bench.iter(|| black_box(pmapper_plan(&snap, &[], &constraint))),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_minslack_vs_ffd, bench_minslack_epsilon, bench_pac, bench_ipac_vs_pmapper
}
criterion_main!(benches);
