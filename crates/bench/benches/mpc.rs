//! Benches for the control layer: the cost of one MPC control step (the
//! per-period overhead every application controller pays) and of
//! batch/recursive system identification.

use std::hint::black_box;
use vdc_bench::harness::BenchHarness;
use vdc_control::sysid::{fit_arx, ExperimentData, Prbs, RecursiveLeastSquares};
use vdc_control::{ArxModel, MpcConfig, MpcController, ReferenceTrajectory};

fn model_with_inputs(m: usize) -> ArxModel {
    let b1: Vec<f64> = (0..m).map(|i| -150.0 - 10.0 * i as f64).collect();
    let b2: Vec<f64> = (0..m).map(|i| -50.0 - 5.0 * i as f64).collect();
    ArxModel::new(vec![0.45], vec![b1, b2], 1400.0).unwrap()
}

fn controller(m: usize, horizon: (usize, usize)) -> MpcController {
    let reference = ReferenceTrajectory::new(4.0, 12.0).unwrap();
    let cfg = MpcConfig {
        prediction_horizon: horizon.0,
        control_horizon: horizon.1,
        q_weight: 1.0,
        r_weight: vec![4e4; m],
        reference,
        setpoint: 1000.0,
        c_min: vec![0.3; m],
        c_max: vec![3.0; m],
        delta_max: Some(0.3),
        terminal_constraint: true,
    };
    MpcController::new(model_with_inputs(m), cfg, &vec![1.0; m]).unwrap()
}

fn bench_mpc_step(h: &mut BenchHarness) {
    for (m, p, mh) in [(2usize, 10usize, 3usize), (3, 10, 3), (4, 16, 4)] {
        let mut ctrl = controller(m, (p, mh));
        let mut t = 1800.0;
        h.bench("mpc_step", &format!("tiers{m}_P{p}_M{mh}"), || {
            let step = ctrl.step(black_box(t)).unwrap();
            // Keep the measurement wandering so the solve stays hot.
            t = 900.0 + (t * 1.3) % 600.0;
            step
        });
    }
}

fn bench_mpc_step_saturated(h: &mut BenchHarness) {
    // Force the box-QP fallback path by demanding an unreachable set point.
    let mut ctrl = controller(2, (10, 3));
    ctrl.set_setpoint(1.0);
    h.bench("mpc_step_saturated", "tiers2_P10_M3", || {
        ctrl.step(black_box(2500.0)).unwrap()
    });
}

fn ident_data(n: usize) -> ExperimentData {
    let model = model_with_inputs(2);
    let mut p1 = Prbs::new(0.6, 1.4, 3, 0xACE1);
    let mut p2 = Prbs::new(0.5, 1.2, 4, 0xBEEF);
    let mut data = ExperimentData::new();
    let mut t_hist = vec![800.0];
    let mut c_hist = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
    for _ in 0..n {
        let c = vec![p1.next_level(), p2.next_level()];
        c_hist.rotate_right(1);
        c_hist[0] = c.clone();
        let t = model.predict(&t_hist, &c_hist).unwrap();
        t_hist[0] = t;
        data.push(c, t);
    }
    data
}

fn bench_sysid(h: &mut BenchHarness) {
    for n in [200usize, 1000] {
        let data = ident_data(n);
        h.bench("sysid", &format!("fit_arx_{n}"), || {
            fit_arx(black_box(&data), 1, 2).unwrap()
        });
    }
    let data = ident_data(500);
    h.bench("sysid", "rls_500_updates", || {
        let mut rls = RecursiveLeastSquares::new(1, 2, 2, 0.98, 1e6).unwrap();
        for (c, &t) in data.inputs().iter().zip(data.outputs()) {
            rls.observe(c, t).unwrap();
        }
        rls.model().unwrap()
    });
}

fn main() {
    let mut h = BenchHarness::from_env("mpc");
    bench_mpc_step(&mut h);
    bench_mpc_step_saturated(&mut h);
    bench_sysid(&mut h);
    h.finish();
}
