//! Benches for the dense linear-algebra substrate (PERF row of the
//! experiment index): factorization and solve costs at the sizes the MPC
//! controller uses every control period.

use std::hint::black_box;
use vdc_bench::harness::BenchHarness;
use vdc_linalg::{eigenvalues, lstsq, BoxQp, Cholesky, Lu, Matrix, Vector};

fn well_conditioned(n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    let mut state: u64 = 0xC0FFEE;
    for r in 0..n {
        for c in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            m[(r, c)] = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
        }
        m[(r, r)] += n as f64;
    }
    m
}

fn bench_lu(h: &mut BenchHarness) {
    for n in [8usize, 16, 32] {
        let a = well_conditioned(n);
        let b: Vector = (0..n).map(|i| i as f64).collect();
        h.bench("lu_solve", &n.to_string(), || {
            let lu = Lu::new(black_box(&a)).unwrap();
            lu.solve(&b).unwrap()
        });
    }
}

fn bench_lstsq(h: &mut BenchHarness) {
    for (rows, cols) in [(60usize, 6usize), (200, 8), (400, 12)] {
        let mut a = Matrix::zeros(rows, cols);
        let mut state: u64 = 1;
        for r in 0..rows {
            for col in 0..cols {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                a[(r, col)] = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            }
        }
        let b: Vector = (0..rows).map(|i| (i % 7) as f64).collect();
        h.bench("qr_lstsq", &format!("{rows}x{cols}"), || {
            lstsq(black_box(&a), &b).unwrap()
        });
    }
}

fn bench_cholesky(h: &mut BenchHarness) {
    for n in [6usize, 12, 24] {
        let a = well_conditioned(n);
        let spd = a.gram();
        let b: Vector = (0..n).map(|i| i as f64).collect();
        h.bench("cholesky_solve", &n.to_string(), || {
            let ch = Cholesky::new(black_box(&spd)).unwrap();
            ch.solve(&b).unwrap()
        });
    }
}

fn bench_eigenvalues(h: &mut BenchHarness) {
    for n in [3usize, 6, 10] {
        let mut a = well_conditioned(n);
        // Spread the spectrum: clustered eigenvalues are a root-finding
        // stress case, not a representative timing case.
        for i in 0..n {
            a[(i, i)] += 2.0 * i as f64;
        }
        h.bench("eigenvalues", &n.to_string(), || {
            eigenvalues(black_box(&a)).unwrap()
        });
    }
}

fn bench_box_qp(h: &mut BenchHarness) {
    for n in [6usize, 12] {
        let hm = well_conditioned(n).gram();
        let f: Vector = (0..n).map(|i| -(i as f64) - 1.0).collect();
        let qp = BoxQp::new(hm, f, vec![-0.2; n], vec![0.2; n]).unwrap();
        h.bench("box_qp", &n.to_string(), || black_box(&qp).solve().unwrap());
    }
}

fn main() {
    let mut h = BenchHarness::from_env("linalg");
    bench_lu(&mut h);
    bench_lstsq(&mut h);
    bench_cholesky(&mut h);
    bench_eigenvalues(&mut h);
    bench_box_qp(&mut h);
    h.finish();
}
