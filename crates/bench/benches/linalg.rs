//! Criterion benches for the dense linear-algebra substrate (PERF row of
//! the experiment index): factorization and solve costs at the sizes the
//! MPC controller uses every control period.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vdc_linalg::{eigenvalues, lstsq, BoxQp, Cholesky, Lu, Matrix, Vector};

fn well_conditioned(n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    let mut state: u64 = 0xC0FFEE;
    for r in 0..n {
        for c in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            m[(r, c)] = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
        }
        m[(r, r)] += n as f64;
    }
    m
}

fn bench_lu(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu_solve");
    for n in [8usize, 16, 32] {
        let a = well_conditioned(n);
        let b: Vector = (0..n).map(|i| i as f64).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let lu = Lu::new(black_box(&a)).unwrap();
                black_box(lu.solve(&b).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_lstsq(c: &mut Criterion) {
    let mut g = c.benchmark_group("qr_lstsq");
    for (rows, cols) in [(60usize, 6usize), (200, 8), (400, 12)] {
        let mut a = Matrix::zeros(rows, cols);
        let mut state: u64 = 1;
        for r in 0..rows {
            for col in 0..cols {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                a[(r, col)] = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            }
        }
        let b: Vector = (0..rows).map(|i| (i % 7) as f64).collect();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{rows}x{cols}")),
            &rows,
            |bench, _| bench.iter(|| black_box(lstsq(&a, &b).unwrap())),
        );
    }
    g.finish();
}

fn bench_cholesky(c: &mut Criterion) {
    let mut g = c.benchmark_group("cholesky_solve");
    for n in [6usize, 12, 24] {
        let a = well_conditioned(n);
        let spd = a.gram();
        let b: Vector = (0..n).map(|i| i as f64).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let ch = Cholesky::new(black_box(&spd)).unwrap();
                black_box(ch.solve(&b).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_eigenvalues(c: &mut Criterion) {
    let mut g = c.benchmark_group("eigenvalues");
    for n in [3usize, 6, 10] {
        let mut a = well_conditioned(n);
        // Spread the spectrum: clustered eigenvalues are a root-finding
        // stress case, not a representative timing case.
        for i in 0..n {
            a[(i, i)] += 2.0 * i as f64;
        }
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(eigenvalues(&a).unwrap()))
        });
    }
    g.finish();
}

fn bench_box_qp(c: &mut Criterion) {
    let mut g = c.benchmark_group("box_qp");
    for n in [6usize, 12] {
        let h = well_conditioned(n).gram();
        let f: Vector = (0..n).map(|i| -(i as f64) - 1.0).collect();
        let qp = BoxQp::new(h, f, vec![-0.2; n], vec![0.2; n]).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(qp.solve().unwrap()))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_lu, bench_lstsq, bench_cholesky, bench_eigenvalues, bench_box_qp
}
criterion_main!(benches);
