//! Criterion benches for the plant: discrete-event simulation throughput
//! (events are the dominant cost of the testbed experiments) and the
//! analytic MVA evaluator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vdc_apptier::{mva_closed_network, AppSim, WorkloadProfile};

fn bench_des(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_run_one_period");
    g.sample_size(20);
    for concurrency in [10usize, 40, 80] {
        g.bench_with_input(
            BenchmarkId::from_parameter(concurrency),
            &concurrency,
            |bench, &cc| {
                let mut sim =
                    AppSim::new(WorkloadProfile::rubbos(), cc, &[1.0, 1.0], 7).unwrap();
                // Warm up into steady state once.
                sim.run_for(10.0);
                sim.take_completed();
                bench.iter(|| {
                    sim.run_for(4.0);
                    black_box(sim.take_completed())
                })
            },
        );
    }
    g.finish();
}

fn bench_mva(c: &mut Criterion) {
    let mut g = c.benchmark_group("mva");
    for population in [40usize, 400, 4000] {
        g.bench_with_input(
            BenchmarkId::from_parameter(population),
            &population,
            |bench, &n| {
                let demands = [0.011, 0.013, 0.004];
                bench.iter(|| black_box(mva_closed_network(&demands, 0.0, n).unwrap()))
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_des, bench_mva
}
criterion_main!(benches);
