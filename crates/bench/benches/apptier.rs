//! Benches for the plant: discrete-event simulation throughput (events are
//! the dominant cost of the testbed experiments) and the analytic MVA
//! evaluator.

use std::hint::black_box;
use vdc_apptier::{mva_closed_network, AppSim, WorkloadProfile};
use vdc_bench::harness::BenchHarness;

fn bench_des(h: &mut BenchHarness) {
    for concurrency in [10usize, 40, 80] {
        let mut sim = AppSim::new(WorkloadProfile::rubbos(), concurrency, &[1.0, 1.0], 7).unwrap();
        // Warm up into steady state once.
        sim.run_for(10.0);
        sim.take_completed();
        h.bench("des_run_one_period", &concurrency.to_string(), || {
            sim.run_for(4.0);
            sim.take_completed()
        });
    }
}

fn bench_mva(h: &mut BenchHarness) {
    for population in [40usize, 400, 4000] {
        let demands = [0.011, 0.013, 0.004];
        h.bench("mva", &population.to_string(), || {
            mva_closed_network(black_box(&demands), 0.0, population).unwrap()
        });
    }
}

fn main() {
    let mut h = BenchHarness::from_env("apptier");
    bench_des(&mut h);
    bench_mva(&mut h);
    h.finish();
}
