//! Full-system co-simulation: the complete Fig. 1 architecture, end to
//! end — hundreds of MPC-controlled applications whose workload intensity
//! follows the trace, consolidated by IPAC, throttled by DVFS, relieved on
//! demand — versus **static peak provisioning** of the same applications.
//!
//! This is the experiment the paper implies but never runs at scale: both
//! of its evaluation halves (controller on 4 servers; consolidation on
//! replayed demands) composed into one system.
//!
//! ```text
//! cargo run -p vdc-bench --bin cosim --release [--apps 100] [--days 7] [--quick]
//!     [--shards N] [--quiet|-q] [--verbose|-v]
//! ```
//!
//! `--shards N` fans the per-sample control loop over N worker threads
//! (default: host parallelism; output is bit-identical for every N).
//!
//! The dynamic run is instrumented: `results/METRICS_cosim.json` / `.tsv`
//! capture MPC phase timings, DVFS transition counts, and per-app SLO
//! accounting (see DESIGN.md §Telemetry).

use vdc_bench::{arg_num, arg_present, figure_header, rule};
use vdc_core::cosim::{run_cosim, CosimConfig};
use vdc_core::RunOptions;
use vdc_telemetry::export::write_metrics;
use vdc_telemetry::{Reporter, Telemetry};
use vdc_trace::{generate_trace, TraceConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reporter = Reporter::from_args(&args);
    let quick = arg_present(&args, "--quick");
    let n_apps = arg_num(&args, "--apps", if quick { 30 } else { 100 });
    let days = arg_num(&args, "--days", if quick { 1 } else { 7 });
    let seed = arg_num(&args, "--seed", 0xC051u64);
    let shards = arg_num(&args, "--shards", 0usize); // 0 = host parallelism

    figure_header(
        "Co-simulation",
        "controllers-in-the-loop vs static peak provisioning (full Fig. 1 system)",
    );
    let trace = generate_trace(&TraceConfig {
        n_vms: n_apps,
        n_samples: 96 * days,
        interval_s: 900.0,
        seed,
    });
    reporter.info(&format!(
        "{n_apps} two-tier applications over {days} day(s); optimizer every 4 h; \
         relief every 15 min"
    ));

    let base = CosimConfig {
        n_apps,
        seed,
        shards,
        ..Default::default()
    };
    let telemetry = Telemetry::enabled();
    reporter.debug("running the dynamic (MPC + IPAC + DVFS) configuration");
    let dynamic = run_cosim(
        &trace,
        &base,
        &RunOptions::default().with_telemetry(&telemetry),
    )
    .expect("dynamic run failed");
    reporter.debug("running the static peak-provisioned baseline");
    let static_peak = run_cosim(
        &trace,
        &CosimConfig {
            controllers_enabled: false,
            ..base
        },
        &RunOptions::default(),
    )
    .expect("static run failed");

    rule(78);
    println!(
        "{:<22} {:>13} {:>13} {:>12} {:>12}",
        "scheme", "Wh/app", "track err", "violations", "mean srv"
    );
    rule(78);
    for (name, r) in [
        ("MPC + IPAC + DVFS", &dynamic),
        ("static peak + IPAC", &static_peak),
    ] {
        println!(
            "{:<22} {:>13.1} {:>10.0} ms {:>11.2}% {:>12.1}",
            name,
            r.energy_per_app_wh,
            r.mean_tracking_error_ms,
            100.0 * r.violation_fraction,
            r.mean_active_servers
        );
    }
    rule(78);
    let saving = 1.0 - dynamic.total_energy_wh / static_peak.total_energy_wh;
    println!(
        "dynamic control saves {:.1} % energy versus peak sizing while holding the\n\
         same SLA — the integrated claim of the paper, reproduced in one run\n\
         (static tracking error is one-sided: over-provisioned apps run *below*\n\
         the set point, which wastes power rather than violating the SLA).",
        100.0 * saving
    );
    match write_metrics(&telemetry, "cosim", "results") {
        Ok(path) => println!("metrics -> {path}"),
        Err(e) => reporter.warn(&format!("could not write metrics: {e}")),
    }
}
