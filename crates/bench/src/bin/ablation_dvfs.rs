//! Ablation ABL1 (DESIGN.md): separate the paper's two claimed saving
//! sources by running IPAC with DVFS, IPAC without DVFS, and pMapper on
//! the same trace.
//!
//! §VII-B attributes IPAC's win over pMapper to (1) Minimum Slack packing
//! better than FFD and (2) DVFS harvesting short-term demand dips between
//! optimizer invocations. This binary quantifies each contribution.
//!
//! ```text
//! cargo run -p vdc-bench --bin ablation_dvfs --release [--vms 1030] [--quick]
//! ```

use vdc_bench::{arg_num, arg_present, figure_header, rule};
use vdc_core::experiments::ablation_dvfs;
use vdc_trace::{generate_trace, TraceConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_num(&args, "--seed", 5415u64);
    let quick = arg_present(&args, "--quick");
    let n_vms = arg_num(&args, "--vms", if quick { 200 } else { 1030 });

    let trace_cfg = if quick {
        TraceConfig {
            n_vms,
            n_samples: 96,
            interval_s: 900.0,
            seed,
        }
    } else {
        TraceConfig {
            n_vms,
            ..TraceConfig::paper_scale(seed)
        }
    };
    figure_header(
        "Ablation ABL1",
        "energy per VM: IPAC vs IPAC-without-DVFS vs pMapper",
    );
    let trace = generate_trace(&trace_cfg);
    let a = ablation_dvfs(&trace, n_vms).expect("ablation failed");

    rule(64);
    println!(
        "{:<18} {:>14} {:>14} {:>12}",
        "scheme", "Wh/VM", "migrations", "mean active"
    );
    rule(64);
    for (name, r) in [
        ("IPAC + DVFS", &a.ipac),
        ("IPAC (no DVFS)", &a.ipac_no_dvfs),
        ("pMapper", &a.pmapper),
    ] {
        println!(
            "{:<18} {:>14.1} {:>14} {:>12.1}",
            name, r.energy_per_vm_wh, r.migrations, r.mean_active_servers
        );
    }
    rule(64);
    let packing_gain = 1.0 - a.ipac_no_dvfs.energy_per_vm_wh / a.pmapper.energy_per_vm_wh;
    let dvfs_gain = 1.0 - a.ipac.energy_per_vm_wh / a.ipac_no_dvfs.energy_per_vm_wh;
    println!(
        "packing (MinSlack vs FFD) contributes {:.1} %; DVFS adds another {:.1} %",
        100.0 * packing_gain,
        100.0 * dvfs_gain
    );
}
