//! VM lifecycle churn under admission control: a day of steady
//! diurnally-modulated arrivals/departures, then the same day hit by a
//! flash crowd, replayed once per admission policy. The table contrasts
//! what each policy trades: `reject` sheds load (rejections up, power
//! flat), `queue` delays it (queue depth up, no rejections), and
//! `wake-and-retry` buys capacity from the sleeping pool (wake retries
//! up, power up).
//!
//! ```text
//! cargo run -p vdc-bench --bin churn --release [--vms 120] [--samples 96]
//!     [--seed 5415] [--shards N] [--quiet|-q] [--verbose|-v]
//! ```
//!
//! The flash-crowd/wake-and-retry run is instrumented:
//! `results/METRICS_churn.json` / `.tsv` capture the `churn.*` counter
//! family (arrivals, departures, rejections, wake retries), the queue
//! depth gauge, and the placement/wake-wait histograms on top of the
//! large-scale metrics (see DESIGN.md §11).

use vdc_bench::{arg_num, figure_header, rule};
use vdc_churn::{AdmissionPolicy, ChurnConfig, ChurnWorkload};
use vdc_core::churn::{run_churn, ChurnResult};
use vdc_core::largescale::{LargeScaleConfig, OptimizerKind};
use vdc_core::RunOptions;
use vdc_telemetry::export::write_metrics;
use vdc_telemetry::{Reporter, Telemetry};
use vdc_trace::{generate_trace, TraceConfig, UtilizationTrace};

fn scenario_row(name: &str, policy: &str, r: &ChurnResult) {
    println!(
        "{:<14} {:<14} {:>9.1} {:>7.3}% {:>8} {:>8} {:>7} {:>6} {:>6} {:>9}",
        name,
        policy,
        r.base.total_energy_wh,
        100.0 * r.base.sla_violation_fraction,
        r.arrivals,
        r.departures,
        r.rejections,
        r.wake_retries,
        r.peak_queue_depth,
        r.base.migrations,
    );
}

fn run_scenario(
    trace: &UtilizationTrace,
    cfg: &LargeScaleConfig,
    workload: &ChurnWorkload,
    policy: AdmissionPolicy,
    opts: &RunOptions<'_>,
) -> ChurnResult {
    run_churn(trace, cfg, workload, policy, opts).expect("churn run failed")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reporter = Reporter::from_args(&args);
    let n_vms = arg_num(&args, "--vms", 120usize);
    let n_samples = arg_num(&args, "--samples", 96usize);
    let seed = arg_num(&args, "--seed", 5415u64);
    let shards = arg_num(&args, "--shards", 0usize); // 0 = host parallelism

    let trace = generate_trace(&TraceConfig {
        n_vms,
        n_samples,
        interval_s: 900.0,
        seed,
    });
    // Fleet sized so consolidation keeps a sleeping pool: the flash
    // crowd overflows the *active* set (policies diverge) while
    // wake-and-retry still has dark servers to buy capacity from.
    let cfg = LargeScaleConfig {
        n_servers: Some((n_vms / 2).max(4)),
        ..LargeScaleConfig::new(n_vms, OptimizerKind::Ipac)
    };

    figure_header(
        "Churn",
        "VM lifecycle churn: steady arrivals vs a flash crowd, per admission policy",
    );
    reporter.info(&format!(
        "{n_vms} base VMs on {} servers over {:.1} day(s) @ {:.0} s samples (seed {seed})",
        cfg.n_servers.unwrap_or(0),
        n_samples as f64 * trace.interval_s() / 86400.0,
        trace.interval_s()
    ));

    // Steady stream: ~n_vms/2 arrivals/day, 3-hour lifetimes so slots
    // recycle within the horizon. The flash crowd adds a burst of
    // n_vms/3 short-lived VMs in the early afternoon on top of it.
    let steady_cfg = ChurnConfig {
        mean_lifetime_s: 3.0 * 3600.0,
        ..ChurnConfig::steady(n_vms as f64 / 2.0, seed ^ 0xC4B2)
    };
    let flash_cfg = ChurnConfig {
        mean_lifetime_s: 3.0 * 3600.0,
        ..ChurnConfig::with_flash_crowd(
            n_vms as f64 / 2.0,
            n_samples / 2,
            (n_vms / 3).max(1),
            seed ^ 0xC4B2,
        )
    };
    let steady_wl = ChurnWorkload::generate(&steady_cfg, n_samples, trace.interval_s());
    let flash_wl = ChurnWorkload::generate(&flash_cfg, n_samples, trace.interval_s());
    reporter.info(&format!(
        "steady workload: {} arrivals / {} in-horizon departures; flash crowd adds {}",
        steady_wl.total_arrivals(),
        steady_wl.total_departures(),
        flash_wl.total_arrivals() - steady_wl.total_arrivals()
    ));

    let plain = RunOptions::default().with_shards(shards);
    let steady = run_scenario(
        &trace,
        &cfg,
        &steady_wl,
        AdmissionPolicy::WakeAndRetry,
        &plain,
    );
    let reject = run_scenario(&trace, &cfg, &flash_wl, AdmissionPolicy::Reject, &plain);
    let queue = run_scenario(&trace, &cfg, &flash_wl, AdmissionPolicy::Queue, &plain);
    // The headline scenario is instrumented and exported.
    let telemetry = Telemetry::enabled();
    let instrumented = plain.with_telemetry(&telemetry);
    let flash = run_scenario(
        &trace,
        &cfg,
        &flash_wl,
        AdmissionPolicy::WakeAndRetry,
        &instrumented,
    );

    rule(106);
    println!(
        "{:<14} {:<14} {:>9} {:>8} {:>8} {:>8} {:>7} {:>6} {:>6} {:>9}",
        "scenario",
        "admission",
        "Wh",
        "SLA",
        "arrive",
        "depart",
        "reject",
        "wake",
        "queue",
        "migrations"
    );
    rule(106);
    scenario_row("steady", "wake-and-retry", &steady);
    scenario_row("flash crowd", "reject", &reject);
    scenario_row("flash crowd", "queue", &queue);
    scenario_row("flash crowd", "wake-and-retry", &flash);
    rule(106);
    println!(
        "flash/wake-and-retry: {} of {} arrivals landed in recycled slots; {} churn VMs live at end",
        flash.recycled_slots, flash.arrivals, flash.live_churn_vms
    );

    match write_metrics(&telemetry, "churn", "results") {
        Ok(path) => println!("metrics -> {path}"),
        Err(e) => reporter.warn(&format!("could not write metrics: {e}")),
    }
}
