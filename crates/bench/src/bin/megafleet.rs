//! Megafleet: the streaming + hierarchical scale tier.
//!
//! Drives [`vdc_core::run_large_scale_streaming`] with a constant-memory
//! [`StreamingTrace`] and the hierarchical pod optimizer
//! (`RunOptions::with_pods`) at fleet sizes where a materialized week —
//! `n_vms × n_samples` f64s — would dominate memory. The point of the bin
//! is to *enforce* the streaming claim, not narrate it: peak RSS is read
//! back from the kernel (`VmHWM` in `/proc/self/status`) and the process
//! exits non-zero when `--max-rss-mib` is exceeded, so CI fails loudly if
//! anything re-materializes the trace.
//!
//! ```text
//! cargo run -p vdc-bench --bin megafleet --release [--servers 2000]
//!     [--vms 20000] [--samples 48] [--pod-size 256] [--seed N]
//!     [--shards N] [--max-rss-mib M] [--fleet spec.json] [--out DIR]
//!     [--quiet|-q]
//! ```
//!
//! `--max-rss-mib 0` (the default) measures without a budget. The
//! acceptance tier is `--servers 100000 --vms 1000000 --samples 48`; the
//! CI smoke tier is `--servers 2000 --vms 20000 --samples 48` under a
//! fixed budget (see ci.sh).
//!
//! Output: `results/BENCH_megafleet.json` with one record carrying the
//! wall-clock timing fields plus `peak_rss_kib` / `rss_budget_kib` (both
//! masked as wall-clock-like by `results_gate` — host-dependent values,
//! gated on shape only), and `results/METRICS_megafleet.json` / `.tsv`
//! with the run's telemetry (`megafleet.*`, `optimizer.pod_*`).

use std::time::Instant;
use vdc_bench::{arg_num, arg_value, figure_header, rule};
use vdc_core::largescale::{LargeScaleConfig, OptimizerKind};
use vdc_core::{run_large_scale_streaming, RunOptions};
use vdc_dcsim::json::{array, JsonObject};
use vdc_dcsim::FleetSpec;
use vdc_telemetry::export::write_metrics;
use vdc_telemetry::{Reporter, Telemetry};
use vdc_trace::{StreamingTrace, TraceConfig};

/// Peak resident-set size of this process in KiB (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable — the budget
/// check is skipped rather than failed in that case.
fn peak_rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reporter = Reporter::from_args(&args);
    let servers = arg_num(&args, "--servers", 2000usize);
    let n_vms = arg_num(&args, "--vms", 20_000usize);
    let n_samples = arg_num(&args, "--samples", 48usize);
    let pod_size = arg_num(&args, "--pod-size", 256usize);
    let seed = arg_num(&args, "--seed", 5415u64);
    let shards = arg_num(&args, "--shards", 0usize); // 0 = host parallelism
    let max_rss_mib = arg_num(&args, "--max-rss-mib", 0u64); // 0 = no budget
    let out_dir = arg_value(&args, "--out").unwrap_or_else(|| "results".to_string());
    // Optional fleet-spec file (`FleetSpec::to_json` format). A loaded
    // fleet defines its own host mix and server counts, so it takes
    // precedence over `--servers`.
    let fleet = arg_value(&args, "--fleet").map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("could not read fleet spec {path}: {e}");
            std::process::exit(1);
        });
        FleetSpec::from_json_str(&text).unwrap_or_else(|e| {
            eprintln!("could not parse fleet spec {path}: {e}");
            std::process::exit(1);
        })
    });

    figure_header(
        "Megafleet",
        "streaming trace + hierarchical pod optimizer at fleet scale",
    );
    reporter.info(&format!(
        "{servers} servers, {n_vms} VMs, {n_samples} samples, pods of {pod_size} (seed {seed})"
    ));

    let trace_cfg = TraceConfig {
        n_vms,
        n_samples,
        interval_s: 900.0,
        seed,
    };
    let mut stream = StreamingTrace::new(&trace_cfg);
    let telemetry = Telemetry::enabled();
    let cfg = LargeScaleConfig {
        n_servers: Some(servers),
        fleet,
        ..LargeScaleConfig::new(n_vms, OptimizerKind::Ipac)
    };
    let mut opts = RunOptions::default()
        .with_telemetry(&telemetry)
        .with_shards(shards);
    if pod_size > 0 {
        opts = opts.with_pods(pod_size);
    }

    let start = Instant::now();
    let result = run_large_scale_streaming(&mut stream, &cfg, &opts).expect("run failed");
    let wall_ns = start.elapsed().as_nanos() as f64;
    let rss_kib = peak_rss_kib();
    let budget_kib = max_rss_mib * 1024;
    telemetry.record("megafleet.wall_ns", wall_ns);
    telemetry.record("megafleet.peak_rss_kib", rss_kib as f64);
    telemetry.incr("megafleet.vms", n_vms as u64);
    telemetry.incr("megafleet.servers", servers as u64);

    rule(78);
    println!(
        "wall {:.2} s | peak RSS {:.1} MiB | {:.1} Wh/VM | {} migrations | SLA unmet {:.4} %",
        wall_ns / 1e9,
        rss_kib as f64 / 1024.0,
        result.energy_per_vm_wh,
        result.migrations,
        100.0 * result.sla_violation_fraction
    );
    rule(78);

    // One BenchRecord-shaped entry (single sample: the whole run), plus the
    // RSS fields results_gate masks alongside the timing keys.
    let id = format!("s{servers}_v{n_vms}_t{n_samples}_p{pod_size}");
    let record = JsonObject::new()
        .str("group", "megafleet")
        .str("id", &id)
        .int("iters_per_sample", 1)
        .num("min_ns", wall_ns)
        .num("median_ns", wall_ns)
        .num("mean_ns", wall_ns)
        .num("max_ns", wall_ns)
        .nums("sample_ns", &[wall_ns])
        .num("peak_rss_kib", rss_kib as f64)
        .num("rss_budget_kib", budget_kib as f64)
        .build();
    let doc = JsonObject::new()
        .str("bench", "megafleet")
        .int("samples", 1)
        .raw("results", &array(&[record]))
        .build();
    let bench_path = format!("{out_dir}/BENCH_megafleet.json");
    match std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(&bench_path, doc + "\n")) {
        Ok(()) => println!("bench -> {bench_path}"),
        Err(e) => reporter.warn(&format!("could not write {bench_path}: {e}")),
    }
    match write_metrics(&telemetry, "megafleet", &out_dir) {
        Ok(path) => println!("metrics -> {path}"),
        Err(e) => reporter.warn(&format!("could not write metrics: {e}")),
    }

    if budget_kib > 0 && rss_kib > budget_kib {
        eprintln!(
            "megafleet: peak RSS {:.1} MiB exceeds budget {} MiB",
            rss_kib as f64 / 1024.0,
            max_rss_mib
        );
        std::process::exit(1);
    }
}
