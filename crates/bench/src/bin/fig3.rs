//! Figure 3: typical run of the response-time controller under a workload
//! surge — App5's concurrency doubles (40 → 80) during t ∈ [600, 1200) s.
//! Prints (a) the response time of App5 and (b) cluster power over time.
//!
//! ```text
//! cargo run -p vdc-bench --bin fig3 --release [--apps 8] [--total 1500]
//!     [--surge-start 600] [--surge-end 1200] [--surge-concurrency 80]
//! ```

use vdc_bench::{arg_num, figure_header, rule};
use vdc_core::experiments::{fig3, fig3_static_baseline};
use vdc_core::testbed::TestbedConfig;
use vdc_telemetry::Reporter;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reporter = Reporter::from_args(&args);
    let cfg = TestbedConfig {
        n_apps: arg_num(&args, "--apps", 8usize),
        concurrency: arg_num(&args, "--concurrency", 40usize),
        setpoint_ms: arg_num(&args, "--setpoint", 1000.0f64),
        seed: arg_num(&args, "--seed", 2010u64),
        ..Default::default()
    };
    let total_s = arg_num(&args, "--total", 1500.0f64);
    let surge_start = arg_num(&args, "--surge-start", 600.0f64);
    let surge_end = arg_num(&args, "--surge-end", 1200.0f64);
    let surge_c = arg_num(&args, "--surge-concurrency", 80usize);
    let app = arg_num(&args, "--app", 4usize); // App5, 0-indexed

    figure_header(
        "Figure 3",
        "typical run under a workload surge: (a) App5 response time, (b) cluster power",
    );
    reporter.info(&format!(
        "surge: concurrency {} → {} during [{:.0}, {:.0}) s of a {:.0} s run",
        cfg.concurrency, surge_c, surge_start, surge_end, total_s
    ));
    let result = fig3(&cfg, app, total_s, surge_start, surge_end, surge_c).expect("fig3 failed");

    rule(54);
    println!(
        "{:>8} {:>16} {:>12}  phase",
        "t (s)", "App5 p90 (ms)", "power (W)"
    );
    rule(54);
    // Print every 20 s to keep the table readable.
    for p in result
        .series
        .iter()
        .filter(|p| (p.time_s as u64).is_multiple_of(20))
    {
        let phase = if p.time_s >= surge_start && p.time_s < surge_end {
            "SURGE"
        } else {
            ""
        };
        match p.response_ms {
            Some(t) => println!(
                "{:>8.0} {:>16.0} {:>12.1}  {}",
                p.time_s, t, p.power_w, phase
            ),
            None => println!(
                "{:>8.0} {:>16} {:>12.1}  {}",
                p.time_s, "-", p.power_w, phase
            ),
        }
    }
    rule(54);
    let phase_mean = |lo: f64, hi: f64| {
        let vals: Vec<f64> = result
            .series
            .iter()
            .filter(|p| p.time_s >= lo && p.time_s < hi)
            .filter_map(|p| p.response_ms)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let power_mean = |lo: f64, hi: f64| {
        let vals: Vec<f64> = result
            .series
            .iter()
            .filter(|p| p.time_s >= lo && p.time_s < hi)
            .map(|p| p.power_w)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    println!(
        "mean p90: pre-surge {:.0} ms | surge (after resettle) {:.0} ms | post {:.0} ms",
        phase_mean(200.0, surge_start),
        phase_mean(surge_start + 200.0, surge_end),
        phase_mean(surge_end + 100.0, total_s),
    );
    println!(
        "mean power: pre-surge {:.1} W | surge {:.1} W | post {:.1} W",
        power_mean(200.0, surge_start),
        power_mean(surge_start + 200.0, surge_end),
        power_mean(surge_end + 100.0, total_s),
    );

    // Counterfactual: the same surge with allocations frozen at the
    // pre-surge equilibrium (what a controller-less scheme experiences).
    let frozen = [0.9, 0.9];
    let baseline = fig3_static_baseline(
        &cfg,
        total_s,
        surge_start,
        surge_end,
        surge_c,
        &frozen,
        4242,
    )
    .expect("baseline failed");
    let base_mean = |lo: f64, hi: f64| {
        let vals: Vec<f64> = baseline
            .iter()
            .filter(|p| p.time_s >= lo && p.time_s < hi)
            .filter_map(|p| p.response_ms)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    rule(54);
    println!(
        "static-allocation baseline ({:.1} GHz/tier, no controller):\n\
         mean p90: pre-surge {:.0} ms | surge {:.0} ms | post {:.0} ms",
        frozen[0],
        base_mean(200.0, surge_start),
        base_mean(surge_start + 100.0, surge_end),
        base_mean(surge_end + 100.0, total_s),
    );
    println!(
        "without reallocation the surge roughly doubles the response time;\n\
         the MPC holds it at the set point (compare the surge columns)."
    );
}
