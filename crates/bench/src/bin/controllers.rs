//! Controller ablation: one trace, three tier controllers, head to head.
//!
//! Replays the same utilization trace through the full co-simulation once
//! per [`ControllerSpec`] — the paper MPC, the robust fixed-gain
//! provisioner, and the cooling-coupled MPC — under identical conditions:
//! a sensor-dropout fault plan (so the safe-mode column is exercised, not
//! zero) and a stepped site-PUE series fed forward each sample (so the
//! cooling-coupled variant has a signal to react to; the others ignore it
//! by contract). The table is the ablation: energy, SLO violation
//! fraction, migrations, and safe-mode samples per controller.
//!
//! ```text
//! cargo run -p vdc-bench --bin controllers --release [--apps 16]
//!     [--samples 672] [--seed 51103] [--shards N] [--quiet|-q]
//! ```
//!
//! Output: `results/METRICS_controllers.json` / `.tsv` with one
//! `controllers.<name>.*` family per controller (energy Wh, violation
//! fraction, migrations, safe-mode samples) — deterministic values, gated
//! by `tools/results_gate` in ci.sh.

use vdc_bench::{arg_num, figure_header, rule};
use vdc_core::cosim::{run_cosim, CosimConfig, CosimResult};
use vdc_core::{ControllerSpec, FaultConfig, FaultPlan, RunOptions};
use vdc_dcsim::PueSeries;
use vdc_telemetry::export::write_metrics;
use vdc_telemetry::{Reporter, Telemetry};
use vdc_trace::{generate_trace, TraceConfig};

fn counter(telemetry: &Telemetry, name: &str) -> u64 {
    telemetry
        .counter_values()
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// The site PUE trajectory: a cool-night / hot-afternoon square wave over
/// each simulated day. 96 samples = one day at 15-minute cadence; the
/// afternoon block (samples 48..72 of each day) runs hot.
fn diurnal_pue(n_samples: usize) -> PueSeries {
    let samples = (0..n_samples.max(1))
        .map(|t| {
            let tod = t % 96;
            if (48..72).contains(&tod) {
                1.85
            } else {
                1.25
            }
        })
        .collect();
    PueSeries::from_samples(samples).expect("PUE samples >= 1 validate")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reporter = Reporter::from_args(&args);
    let n_apps = arg_num(&args, "--apps", 16usize);
    let n_samples = arg_num(&args, "--samples", 672usize);
    let seed = arg_num(&args, "--seed", 51103u64);
    let shards = arg_num(&args, "--shards", 0usize); // 0 = host parallelism

    let trace = generate_trace(&TraceConfig {
        n_vms: n_apps,
        n_samples,
        interval_s: 900.0,
        seed,
    });
    let cfg = CosimConfig {
        n_apps,
        seed,
        ..Default::default()
    };
    // Identical sensor-dropout plan for every controller: each must ride
    // the masked windows out in safe mode, so the safe-mode column
    // compares like for like.
    let dropout_cfg = FaultConfig::sensor_dropout(4.0, 5_400.0, seed ^ 0xD809);
    let n_hosts = 2 * n_apps;
    let plan = FaultPlan::generate(&dropout_cfg, n_samples, trace.interval_s(), n_hosts, n_apps);
    let pue = diurnal_pue(n_samples);

    figure_header(
        "Controllers",
        "one trace, three tier controllers: MPC vs robust vs cooling-coupled",
    );
    reporter.info(&format!(
        "{n_apps} applications over {:.1} day(s) @ {:.0} s samples (seed {seed}); \
         {} dropout windows; PUE steps 1.25 <-> 1.85 each afternoon",
        n_samples as f64 * trace.interval_s() / 86400.0,
        trace.interval_s(),
        plan.dropout_windows().len(),
    ));

    let specs = [
        ControllerSpec::Mpc,
        ControllerSpec::Robust,
        ControllerSpec::cooling(),
    ];
    // Summary sink: one `controllers.<name>.*` family per run, exported as
    // the bin's METRICS file.
    let summary = Telemetry::enabled();
    let mut rows: Vec<(ControllerSpec, CosimResult, u64)> = Vec::new();
    for spec in specs {
        let telemetry = Telemetry::enabled();
        let opts = RunOptions::default()
            .with_telemetry(&telemetry)
            .with_shards(shards)
            .with_controller(spec)
            .with_faults(&plan)
            .with_pue(&pue);
        let result = run_cosim(&trace, &cfg, &opts).expect("ablation run completes");
        let safe_mode = counter(&telemetry, "control.safe_mode_samples");
        let name = spec.name();
        summary.record(
            &format!("controllers.{name}.energy_wh"),
            result.total_energy_wh,
        );
        summary.record(
            &format!("controllers.{name}.violation_fraction"),
            result.violation_fraction,
        );
        summary.incr(&format!("controllers.{name}.migrations"), result.migrations);
        summary.incr(&format!("controllers.{name}.safe_mode_samples"), safe_mode);
        reporter.info(&format!("{name}: done ({:.1} Wh)", result.total_energy_wh));
        rows.push((spec, result, safe_mode));
    }

    rule(78);
    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>12}",
        "controller", "energy Wh", "viol %", "migrations", "safe-mode"
    );
    rule(78);
    for (spec, r, safe_mode) in &rows {
        println!(
            "{:<14} {:>12.1} {:>9.2}% {:>12} {:>12}",
            spec.name(),
            r.total_energy_wh,
            100.0 * r.violation_fraction,
            r.migrations,
            safe_mode,
        );
    }
    rule(78);
    let (_, mpc, _) = &rows[0];
    let (_, cooling, _) = &rows[2];
    println!(
        "cooling-coupled vs paper MPC: {:+.2}% energy, {:+.2} points of violation\n\
         (the cooling term trades allocation slack for facility power when the\n\
         site runs hot; the robust controller needs no model at all).",
        100.0 * (cooling.total_energy_wh / mpc.total_energy_wh - 1.0),
        100.0 * (cooling.violation_fraction - mpc.violation_fraction),
    );

    match write_metrics(&summary, "controllers", "results") {
        Ok(path) => println!("metrics -> {path}"),
        Err(e) => reporter.warn(&format!("could not write metrics: {e}")),
    }
}
