//! A week in profile: hourly power, active-server, and migration series of
//! the large-scale data center under IPAC — the "behind the scenes" of one
//! Fig. 6 point. Useful for sanity-checking the diurnal response of the
//! two-level scheme (consolidation at night, DVFS through the day).
//!
//! ```text
//! cargo run -p vdc-bench --bin week_profile --release [--vms 1030] [--quick]
//!     [--shards N] [--quiet|-q] [--verbose|-v]
//! ```
//!
//! `--shards N` fans the per-server map stages over N worker threads
//! (default: host parallelism; output is bit-identical for every N).
//!
//! The run is instrumented: `results/METRICS_week_profile.json` / `.tsv`
//! capture per-sample step cost, optimizer invocation stats, and DVFS
//! transition counts (see DESIGN.md §Telemetry).

use vdc_bench::{arg_num, arg_present, figure_header, rule};
use vdc_core::largescale::{run_large_scale, LargeScaleConfig, OptimizerKind};
use vdc_core::RunOptions;
use vdc_telemetry::export::write_metrics;
use vdc_telemetry::{Reporter, Telemetry};
use vdc_trace::{generate_trace, TraceConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reporter = Reporter::from_args(&args);
    let quick = arg_present(&args, "--quick");
    let n_vms = arg_num(&args, "--vms", if quick { 200 } else { 1030 });
    let seed = arg_num(&args, "--seed", 5415u64);
    let shards = arg_num(&args, "--shards", 0usize); // 0 = host parallelism

    let trace_cfg = if quick {
        TraceConfig {
            n_vms,
            n_samples: 96,
            interval_s: 900.0,
            seed,
        }
    } else {
        TraceConfig {
            n_vms,
            ..TraceConfig::paper_scale(seed)
        }
    };
    figure_header(
        "Week profile",
        "hourly cluster power / active servers / migrations under IPAC",
    );
    reporter.info(&format!(
        "{n_vms} VMs over {:.1} day(s) @ {:.0} s samples (seed {seed})",
        trace_cfg.n_samples as f64 * trace_cfg.interval_s / 86400.0,
        trace_cfg.interval_s
    ));
    let trace = generate_trace(&trace_cfg);
    let telemetry = Telemetry::enabled();
    let cfg = LargeScaleConfig::new(n_vms, OptimizerKind::Ipac);
    let opts = RunOptions::default()
        .with_telemetry(&telemetry)
        .with_shards(shards)
        .with_series();
    let result = run_large_scale(&trace, &cfg, &opts).expect("run failed");
    let series = &result.series;

    rule(76);
    println!(
        "{:>6} {:>5} {:>12} {:>12} {:>12} {:>12}",
        "day", "hour", "power (W)", "active srv", "migrations", "unmet %"
    );
    rule(76);
    // Print every 4 hours.
    let per_hour = (3600.0 / trace.interval_s()).round() as usize;
    for s in series.iter().step_by(4 * per_hour.max(1)) {
        let hours = s.t_s / 3600.0;
        println!(
            "{:>6} {:>5} {:>12.1} {:>12} {:>12} {:>11.3}%",
            (hours / 24.0) as u64 + 1,
            (hours % 24.0) as u64,
            s.power_w,
            s.active_servers,
            s.migrations_so_far,
            100.0 * s.unmet_fraction
        );
    }
    rule(76);
    println!(
        "totals: {:.1} Wh/VM over {:.0} h | {} migrations ({} from overload relief)",
        result.energy_per_vm_wh,
        trace.duration_s() / 3600.0,
        result.migrations,
        result.relief_migrations
    );
    println!(
        "SLA: {:.4} % of demanded CPU cycles went unserved; wake transitions cost {:.1} Wh",
        100.0 * result.sla_violation_fraction,
        result.wake_energy_wh
    );
    match write_metrics(&telemetry, "week_profile", "results") {
        Ok(path) => println!("metrics -> {path}"),
        Err(e) => reporter.warn(&format!("could not write metrics: {e}")),
    }
}
