//! Fault injection with graceful degradation: the full co-simulation
//! replayed under a deterministic `FaultPlan` — host crash storms with
//! evacuation, transient migration failures with retry-and-backoff, and
//! sensor dropout ridden out in MPC safe mode — versus the fault-free
//! baseline. The table shows what each fault family costs: power stays
//! close to baseline, the violation fraction degrades gracefully instead
//! of collapsing, and every crash, retry, stranded VM, and safe-mode
//! sample is accounted for.
//!
//! ```text
//! cargo run -p vdc-bench --bin faults --release [--apps 24] [--samples 96]
//!     [--seed 64337] [--shards N] [--quiet|-q] [--verbose|-v]
//! ```
//!
//! The everything-fails-at-once run is instrumented:
//! `results/METRICS_faults.json` / `.tsv` capture the `fault.*` counter
//! family (crashes, recoveries, evacuated/stranded VMs, migration retries
//! and drops, watchdog reliefs) plus `control.safe_mode_samples` and
//! `optimizer.plan_partial` on top of the cosim metrics (see DESIGN.md
//! §12).

use vdc_bench::{arg_num, figure_header, rule};
use vdc_core::cosim::{run_cosim, CosimConfig, CosimResult};
use vdc_core::{FaultConfig, FaultPlan, RunOptions};
use vdc_telemetry::export::write_metrics;
use vdc_telemetry::{Reporter, Telemetry};
use vdc_trace::{generate_trace, TraceConfig, UtilizationTrace};

fn counter(telemetry: &Telemetry, name: &str) -> u64 {
    telemetry
        .counter_values()
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn run_scenario(
    trace: &UtilizationTrace,
    cfg: &CosimConfig,
    plan: Option<&FaultPlan>,
    telemetry: &Telemetry,
    shards: usize,
) -> CosimResult {
    let mut opts = RunOptions::default()
        .with_telemetry(telemetry)
        .with_shards(shards);
    if let Some(plan) = plan {
        opts = opts.with_faults(plan);
    }
    run_cosim(trace, cfg, &opts).expect("faulted co-simulation runs")
}

fn scenario_row(name: &str, r: &CosimResult, t: &Telemetry) {
    println!(
        "{:<18} {:>9.1} {:>7.2}% {:>7} {:>8} {:>9} {:>7} {:>7} {:>9} {:>9}",
        name,
        r.total_energy_wh,
        100.0 * r.violation_fraction,
        counter(t, "fault.crashes"),
        counter(t, "fault.recoveries"),
        counter(t, "fault.stranded_vms"),
        counter(t, "fault.migration_retries"),
        counter(t, "fault.migrations_dropped"),
        counter(t, "control.safe_mode_samples"),
        counter(t, "fault.watchdog_reliefs"),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reporter = Reporter::from_args(&args);
    let n_apps = arg_num(&args, "--apps", 24usize);
    let n_samples = arg_num(&args, "--samples", 96usize);
    let seed = arg_num(&args, "--seed", 64337u64);
    let shards = arg_num(&args, "--shards", 0usize); // 0 = host parallelism

    let trace = generate_trace(&TraceConfig {
        n_vms: n_apps,
        n_samples,
        interval_s: 900.0,
        seed,
    });
    let cfg = CosimConfig {
        n_apps,
        seed,
        ..Default::default()
    };
    // The cosim fleet is auto-sized from peak static provisioning; plans
    // over-cover it (events for hosts past the fleet are skipped
    // deterministically).
    let n_hosts = 2 * n_apps;

    figure_header(
        "Faults",
        "deterministic fault injection with graceful degradation, vs fault-free",
    );
    reporter.info(&format!(
        "{n_apps} MPC-controlled applications over {:.1} day(s) @ {:.0} s samples (seed {seed})",
        n_samples as f64 * trace.interval_s() / 86400.0,
        trace.interval_s()
    ));

    // One plan per fault family, plus everything at once. All draws come
    // from seed-streamed generators, so each scenario is reproducible in
    // isolation.
    let crash_cfg = FaultConfig::crash_storm(8.0 * 3_600.0, 1_800.0, seed ^ 0xFA11);
    let flaky_cfg = FaultConfig {
        migration_failure_prob: 0.35,
        migration_backoff_budget: 1,
        ..FaultConfig::quiet(seed ^ 0xF1A6)
    };
    let dropout_cfg = FaultConfig::sensor_dropout(6.0, 5_400.0, seed ^ 0xD809);
    let combined_cfg = FaultConfig {
        migration_failure_prob: 0.25,
        migration_backoff_budget: 3,
        dropouts_per_day: 4.0,
        dropout_mean_s: 5_400.0,
        ..FaultConfig::crash_storm(8.0 * 3_600.0, 1_800.0, seed ^ 0xA11F)
    };
    let interval_s = trace.interval_s();
    let crash_plan = FaultPlan::generate(&crash_cfg, n_samples, interval_s, n_hosts, n_apps);
    let flaky_plan = FaultPlan::generate(&flaky_cfg, n_samples, interval_s, n_hosts, n_apps);
    let dropout_plan = FaultPlan::generate(&dropout_cfg, n_samples, interval_s, n_hosts, n_apps);
    let combined_plan = FaultPlan::generate(&combined_cfg, n_samples, interval_s, n_hosts, n_apps);
    reporter.info(&format!(
        "crash plan: {} host events; dropout plan: {} windows; combined: {} events",
        crash_plan.host_events().len(),
        dropout_plan.dropout_windows().len(),
        combined_plan.host_events().len() + combined_plan.dropout_windows().len(),
    ));

    let baseline_tel = Telemetry::enabled();
    let baseline = run_scenario(&trace, &cfg, None, &baseline_tel, shards);
    let crash_tel = Telemetry::enabled();
    let crash = run_scenario(&trace, &cfg, Some(&crash_plan), &crash_tel, shards);
    let flaky_tel = Telemetry::enabled();
    let flaky = run_scenario(&trace, &cfg, Some(&flaky_plan), &flaky_tel, shards);
    let dropout_tel = Telemetry::enabled();
    let dropout = run_scenario(&trace, &cfg, Some(&dropout_plan), &dropout_tel, shards);
    // The headline scenario — everything fails at once — is the exported
    // one.
    let telemetry = Telemetry::enabled();
    let combined = run_scenario(&trace, &cfg, Some(&combined_plan), &telemetry, shards);

    rule(114);
    println!(
        "{:<18} {:>9} {:>8} {:>7} {:>8} {:>9} {:>7} {:>7} {:>9} {:>9}",
        "scenario",
        "Wh",
        "viol",
        "crashes",
        "recover",
        "stranded",
        "retries",
        "dropped",
        "safemode",
        "watchdog"
    );
    rule(114);
    scenario_row("fault-free", &baseline, &baseline_tel);
    scenario_row("crash storm", &crash, &crash_tel);
    scenario_row("flaky migrations", &flaky, &flaky_tel);
    scenario_row("sensor dropout", &dropout, &dropout_tel);
    scenario_row("everything", &combined, &telemetry);
    rule(114);
    println!(
        "graceful degradation: the combined scenario spends {:.1}% more energy and adds\n\
         {:.2} points of violation over fault-free, while every evacuation, retry, and\n\
         masked sample is accounted for (stranded VMs stay registered, never lost).",
        100.0 * (combined.total_energy_wh / baseline.total_energy_wh - 1.0),
        100.0 * (combined.violation_fraction - baseline.violation_fraction),
    );

    match write_metrics(&telemetry, "faults", "results") {
        Ok(path) => println!("metrics -> {path}"),
        Err(e) => reporter.warn(&format!("could not write metrics: {e}")),
    }
}
