//! Figure 5: response time of App5 under set points 600–1300 ms at
//! concurrency 40 (controller identified at 40; set point differs from the
//! design conditions).
//!
//! ```text
//! cargo run -p vdc-bench --bin fig5 --release [--concurrency 40]
//!     [--warmup 40] [--measure 150] [--seed 2010]
//! ```

use vdc_bench::{arg_num, arg_present, figure_header, rule};
use vdc_core::controller::IdentificationConfig;
use vdc_core::experiments::{fig5_with_plant, PlantKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let concurrency = arg_num(&args, "--concurrency", 40usize);
    let warmup = arg_num(&args, "--warmup", 40usize);
    let measure = arg_num(&args, "--measure", 150usize);
    let seed = arg_num(&args, "--seed", 2010u64);

    figure_header(
        "Figure 5",
        "response time of App5 under different set points (600–1300 ms)",
    );
    let setpoints = [600.0, 700.0, 800.0, 900.0, 1000.0, 1100.0, 1200.0, 1300.0];
    let kind = if arg_present(&args, "--fast") {
        PlantKind::Analytic
    } else {
        PlantKind::Des
    };
    let points = fig5_with_plant(
        &setpoints,
        concurrency,
        &IdentificationConfig::default(),
        warmup,
        measure,
        seed,
        kind,
    )
    .expect("fig5 failed");

    rule(62);
    println!(
        "{:>14} {:>12} {:>10} {:>10} {:>8}",
        "setpoint (ms)", "mean (ms)", "std (ms)", "err (%)", "n"
    );
    rule(62);
    for p in &points {
        println!(
            "{:>14.0} {:>12.1} {:>10.1} {:>10.1} {:>8}",
            p.x,
            p.response.mean,
            p.response.std,
            100.0 * (p.response.mean - p.x) / p.x,
            p.response.n
        );
    }
    rule(62);
    let worst = points
        .iter()
        .map(|p| ((p.response.mean - p.x) / p.x).abs())
        .fold(0.0_f64, f64::max);
    println!(
        "worst relative tracking error across set points: {:.1} %",
        worst * 100.0
    );
}
