//! Figure 6: energy consumption per VM over 7 days, IPAC vs pMapper,
//! across data centers of 30 … 5,415 VMs.
//!
//! Default: the figure's tick sizes (30, 1030, …, 5030, plus the full
//! 5,415). `--full` sweeps all 54 data-center sizes like the paper;
//! `--quick` shrinks the trace for a fast smoke run.
//!
//! ```text
//! cargo run -p vdc-bench --bin fig6 --release [--full | --quick] [--seed 5415]
//!     [--shards N] [--mixed-fleet]
//! ```
//!
//! `--shards N` spreads the swept data-center sizes over N worker threads
//! (default: host parallelism; output is bit-identical for every N).
//! `--mixed-fleet` swaps the homogeneous paper catalog for the two-site
//! SPECpower fleet (a lean low-PUE site plus a legacy high-PUE site) so the
//! sweep exercises heterogeneous efficiency ordering and per-site PUE.

use vdc_apptier::rng::SimRng;
use vdc_bench::{arg_num, arg_present, figure_header, rule};
use vdc_core::experiments::{fig6, Fig6Config};
use vdc_dcsim::FleetSpec;
use vdc_trace::{generate_trace, TraceConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = arg_num(&args, "--seed", 5415u64);
    let quick = arg_present(&args, "--quick");
    let full = arg_present(&args, "--full");
    let shards = arg_num(&args, "--shards", 0usize); // 0 = host parallelism
    let mixed = arg_present(&args, "--mixed-fleet");

    let trace_cfg = if quick {
        TraceConfig {
            n_vms: 600,
            n_samples: 96, // one day
            interval_s: 900.0,
            seed,
        }
    } else {
        TraceConfig::paper_scale(seed)
    };

    let sizes: Vec<usize> = if quick {
        vec![30, 150, 300, 600]
    } else if full {
        // 54 data centers from 30 to 5,415 VMs, like §VII-B.
        let mut v: Vec<usize> = (0..53).map(|i| 30 + i * 100).collect();
        v.push(5415);
        v
    } else {
        vec![30, 1030, 2030, 3030, 4030, 5030, 5415]
    };

    figure_header(
        "Figure 6",
        "energy per VM in 7 days vs number of VMs: IPAC vs pMapper",
    );
    println!(
        "trace: {} VMs x {} samples @ {:.0} s; sweeping {} data-center sizes",
        trace_cfg.n_vms,
        trace_cfg.n_samples,
        trace_cfg.interval_s,
        sizes.len()
    );
    let trace = generate_trace(&trace_cfg);
    let fleet_spec = if mixed {
        // Same server-to-VM ratio as the legacy sweep (3,000 per 5,415).
        let max_size = sizes.iter().copied().max().unwrap_or(1);
        let n_servers = ((max_size as f64 * 3000.0 / 5415.0).ceil() as usize).max(8);
        let spec = FleetSpec::specpower_mixed(n_servers);
        // Replay the fleet draw (run_large_scale seeds it with the config
        // seed, 0x5415) to report the drawn per-profile composition.
        let mut rng = SimRng::seed_from_u64(0x5415);
        let assignments = spec.assignments_with(&mut |n| rng.index(n));
        let mut per_profile = vec![0usize; spec.catalog.len()];
        for &(_, profile) in &assignments {
            per_profile[profile.index()] += 1;
        }
        println!(
            "mixed fleet: {n_servers} servers across {} sites",
            spec.sites.len()
        );
        for (site, s) in spec.sites.iter().enumerate() {
            println!(
                "  site {site} '{}': {} servers, PUE {:.2}",
                s.name,
                s.n_servers,
                s.pue.at(0)
            );
        }
        for (idx, count) in per_profile.iter().enumerate() {
            if *count > 0 {
                let p = spec
                    .catalog
                    .get(vdc_dcsim::ProfileId::from_index(idx))
                    .unwrap();
                println!(
                    "  {:>4} x {:<28} idle fraction {:>5.1}%  {:.3} GHz/W",
                    count,
                    p.name,
                    100.0 * p.idle_fraction(),
                    p.power_efficiency()
                );
            }
        }
        Some(spec)
    } else {
        None
    };
    let fig6_cfg = Fig6Config {
        shards,
        fleet_spec,
        ..Fig6Config::new(sizes)
    };
    let points = fig6(&trace, &fig6_cfg).expect("fig6 failed");

    rule(104);
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "#VMs",
        "IPAC (Wh/VM)",
        "pMap (Wh/VM)",
        "saving",
        "IPAC migr",
        "IPAC srv",
        "pMap srv",
        "IPAC SLA"
    );
    rule(104);
    let mut savings = Vec::new();
    for p in &points {
        savings.push(p.saving_fraction());
        println!(
            "{:>8} {:>14.1} {:>14.1} {:>9.1}% {:>12} {:>12.1} {:>12.1} {:>9.3}%",
            p.n_vms,
            p.ipac.energy_per_vm_wh,
            p.pmapper.energy_per_vm_wh,
            100.0 * p.saving_fraction(),
            p.ipac.migrations,
            p.ipac.mean_active_servers,
            p.pmapper.mean_active_servers,
            100.0 * p.ipac.sla_violation_fraction
        );
    }
    rule(104);
    let mean_saving = savings.iter().sum::<f64>() / savings.len() as f64;
    println!(
        "mean IPAC saving vs pMapper: {:.1} % (paper reports 40.7 % on its trace)",
        100.0 * mean_saving
    );
    println!(
        "note: 'saving' here is (1 - IPAC/pMapper) of energy-per-VM; compare the shape:\n\
         IPAC below pMapper everywhere, both rising with #VMs as less-efficient\n\
         servers come into use."
    );
}
