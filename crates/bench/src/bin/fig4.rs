//! Figure 4: response time of App5 under concurrency levels 30–80, with
//! the controller identified at concurrency 40 (robustness to workload
//! different from the identification conditions).
//!
//! ```text
//! cargo run -p vdc-bench --bin fig4 --release [--setpoint 1000]
//!     [--warmup 40] [--measure 150] [--seed 2010]
//! ```

use vdc_bench::{arg_num, arg_present, figure_header, rule};
use vdc_core::controller::IdentificationConfig;
use vdc_core::experiments::{fig4_with_plant, PlantKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let setpoint = arg_num(&args, "--setpoint", 1000.0f64);
    let warmup = arg_num(&args, "--warmup", 40usize);
    let measure = arg_num(&args, "--measure", 150usize);
    let seed = arg_num(&args, "--seed", 2010u64);

    figure_header(
        "Figure 4",
        "response time of App5 under different workloads (controller identified at 40)",
    );
    let concurrencies = [30, 40, 50, 60, 70, 80];
    let kind = if arg_present(&args, "--fast") {
        PlantKind::Analytic
    } else {
        PlantKind::Des
    };
    let points = fig4_with_plant(
        &concurrencies,
        setpoint,
        &IdentificationConfig::default(),
        warmup,
        measure,
        seed,
        kind,
    )
    .expect("fig4 failed");

    rule(52);
    println!(
        "{:>12} {:>12} {:>10} {:>8}",
        "concurrency", "mean (ms)", "std (ms)", "n"
    );
    rule(52);
    for p in &points {
        println!(
            "{:>12.0} {:>12.1} {:>10.1} {:>8}",
            p.x, p.response.mean, p.response.std, p.response.n
        );
    }
    rule(52);
    let worst = points
        .iter()
        .map(|p| (p.response.mean - setpoint).abs())
        .fold(0.0_f64, f64::max);
    println!("set point {setpoint:.0} ms; worst mean deviation across levels: {worst:.1} ms");
}
