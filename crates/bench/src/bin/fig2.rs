//! Figure 2: response time of all 8 applications in the data center, set
//! point 1000 ms, power optimizer disabled.
//!
//! ```text
//! cargo run -p vdc-bench --bin fig2 --release [--apps 8] [--concurrency 40]
//!     [--setpoint 1000] [--warmup 50] [--measure 250] [--seed 2010]
//! ```

use vdc_bench::{arg_num, figure_header, rule};
use vdc_core::experiments::fig2;
use vdc_core::testbed::TestbedConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = TestbedConfig {
        n_apps: arg_num(&args, "--apps", 8usize),
        concurrency: arg_num(&args, "--concurrency", 40usize),
        setpoint_ms: arg_num(&args, "--setpoint", 1000.0f64),
        seed: arg_num(&args, "--seed", 2010u64),
        ..Default::default()
    };
    let warmup = arg_num(&args, "--warmup", 50usize);
    let measure = arg_num(&args, "--measure", 250usize);

    figure_header(
        "Figure 2",
        "90-percentile response time of all applications (mean ± std)",
    );
    println!(
        "testbed: {} apps, concurrency {}, set point {} ms, {} warm-up + {} measured periods",
        cfg.n_apps, cfg.concurrency, cfg.setpoint_ms, warmup, measure
    );
    let result = fig2(&cfg, warmup, measure).expect("fig2 experiment failed");
    rule(46);
    println!(
        "{:<8} {:>12} {:>10} {:>8}",
        "App", "mean (ms)", "std (ms)", "n"
    );
    rule(46);
    for (i, m) in result.per_app.iter().enumerate() {
        println!(
            "App{:<5} {:>12.1} {:>10.1} {:>8}",
            i + 1,
            m.mean,
            m.std,
            m.n
        );
    }
    rule(46);
    let overall: f64 =
        result.per_app.iter().map(|m| m.mean).sum::<f64>() / result.per_app.len() as f64;
    println!(
        "overall mean {:.1} ms vs set point {:.0} ms ({:+.1} %)",
        overall,
        result.setpoint_ms,
        100.0 * (overall - result.setpoint_ms) / result.setpoint_ms
    );
}
