//! Std-only micro-benchmark harness.
//!
//! Replaces the Criterion dependency for the five bench binaries under
//! `benches/` (all declared with `harness = false`). Each sample times a
//! calibrated batch of iterations with [`std::time::Instant`]; the harness
//! reports min / median / mean / max per-iteration nanoseconds and writes a
//! machine-readable `results/BENCH_<name>.json` alongside the table.
//!
//! Tunables (environment):
//! * `VDC_BENCH_SAMPLES` — timed samples per benchmark (default 15);
//! * `VDC_BENCH_WARMUP_MS` — warmup budget per benchmark (default 200 ms);
//! * `VDC_BENCH_OUT_DIR` — output directory (default `results`).

use std::hint::black_box;
use std::time::{Duration, Instant};
use vdc_dcsim::json::{array, JsonObject};

/// Result of one benchmark: per-iteration nanoseconds across samples.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark group (e.g. `lu_solve`).
    pub group: String,
    /// Case id within the group (e.g. a problem size).
    pub id: String,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Per-iteration nanoseconds, one entry per sample, sorted.
    pub sample_ns: Vec<f64>,
}

impl BenchRecord {
    /// Fastest sample.
    pub fn min_ns(&self) -> f64 {
        self.sample_ns[0]
    }

    /// Median sample — the headline number (robust to scheduler noise).
    pub fn median_ns(&self) -> f64 {
        let n = self.sample_ns.len();
        if n % 2 == 1 {
            self.sample_ns[n / 2]
        } else {
            0.5 * (self.sample_ns[n / 2 - 1] + self.sample_ns[n / 2])
        }
    }

    /// Mean over samples.
    pub fn mean_ns(&self) -> f64 {
        self.sample_ns.iter().sum::<f64>() / self.sample_ns.len() as f64
    }

    /// Slowest sample.
    pub fn max_ns(&self) -> f64 {
        self.sample_ns[self.sample_ns.len() - 1]
    }

    fn to_json(&self) -> String {
        JsonObject::new()
            .str("group", &self.group)
            .str("id", &self.id)
            .int("iters_per_sample", self.iters_per_sample as i64)
            .num("min_ns", self.min_ns())
            .num("median_ns", self.median_ns())
            .num("mean_ns", self.mean_ns())
            .num("max_ns", self.max_ns())
            .nums("sample_ns", &self.sample_ns)
            .build()
    }
}

/// Collects benchmark results for one bench binary.
#[derive(Debug)]
pub struct BenchHarness {
    name: String,
    samples: u32,
    warmup: Duration,
    out_dir: String,
    records: Vec<BenchRecord>,
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl BenchHarness {
    /// Create a harness named after the bench binary, reading tunables
    /// from the environment.
    pub fn from_env(name: &str) -> BenchHarness {
        BenchHarness {
            name: name.to_string(),
            samples: env_u64("VDC_BENCH_SAMPLES", 15).max(3) as u32,
            warmup: Duration::from_millis(env_u64("VDC_BENCH_WARMUP_MS", 200)),
            out_dir: std::env::var("VDC_BENCH_OUT_DIR").unwrap_or_else(|_| "results".to_string()),
            records: Vec::new(),
        }
    }

    /// Time `f`, printing a row and recording the result.
    ///
    /// The return value of `f` is passed through [`black_box`] so the
    /// optimizer cannot delete the measured work.
    pub fn bench<T>(&mut self, group: &str, id: &str, mut f: impl FnMut() -> T) {
        // Warmup doubles the batch size until the warmup budget is spent;
        // this also calibrates iterations so one sample costs ~1/4 of the
        // warmup budget (>= 1 iteration for slow closures).
        let mut iters: u64 = 1;
        let warmup_start = Instant::now();
        let per_iter = loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let measured = t.elapsed() / iters as u32;
            if warmup_start.elapsed() >= self.warmup {
                break measured;
            }
            iters = iters.saturating_mul(2).min(1 << 24);
        };
        let sample_budget = self.warmup / 4;
        let iters_per_sample = if per_iter.is_zero() {
            iters
        } else {
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };

        let mut sample_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        sample_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());

        let rec = BenchRecord {
            group: group.to_string(),
            id: id.to_string(),
            iters_per_sample,
            sample_ns,
        };
        println!(
            "{:<24} {:<12} median {:>12}  (min {}, mean {}, max {}, {} iters x {} samples)",
            rec.group,
            rec.id,
            fmt_ns(rec.median_ns()),
            fmt_ns(rec.min_ns()),
            fmt_ns(rec.mean_ns()),
            fmt_ns(rec.max_ns()),
            rec.iters_per_sample,
            rec.sample_ns.len(),
        );
        self.records.push(rec);
    }

    /// Write `results/BENCH_<name>.json` and print the summary footer.
    pub fn finish(self) {
        let rendered: Vec<String> = self.records.iter().map(BenchRecord::to_json).collect();
        let doc = JsonObject::new()
            .str("bench", &self.name)
            .int("samples", self.samples as i64)
            .raw("results", &array(&rendered))
            .build();
        let path = format!("{}/BENCH_{}.json", self.out_dir, self.name);
        match std::fs::create_dir_all(&self.out_dir)
            .and_then(|()| std::fs::write(&path, doc + "\n"))
        {
            Ok(()) => println!("{} benchmarks -> {path}", self.records.len()),
            Err(e) => {
                vdc_telemetry::Reporter::default().warn(&format!("could not write {path}: {e}"))
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_are_order_independent() {
        let rec = BenchRecord {
            group: "g".into(),
            id: "1".into(),
            iters_per_sample: 10,
            sample_ns: vec![1.0, 2.0, 3.0, 10.0],
        };
        assert_eq!(rec.min_ns(), 1.0);
        assert_eq!(rec.max_ns(), 10.0);
        assert_eq!(rec.median_ns(), 2.5);
        assert_eq!(rec.mean_ns(), 4.0);
    }

    #[test]
    fn record_json_is_flat_and_complete() {
        let rec = BenchRecord {
            group: "lu".into(),
            id: "8".into(),
            iters_per_sample: 100,
            sample_ns: vec![5.0, 6.0, 7.0],
        };
        let j = rec.to_json();
        for key in ["group", "id", "iters_per_sample", "median_ns", "sample_ns"] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key} in {j}");
        }
    }

    #[test]
    fn harness_measures_and_writes_json() {
        let dir = std::env::temp_dir().join("vdc-bench-harness-test");
        std::env::set_var("VDC_BENCH_OUT_DIR", &dir);
        std::env::set_var("VDC_BENCH_SAMPLES", "3");
        std::env::set_var("VDC_BENCH_WARMUP_MS", "1");
        let mut h = BenchHarness::from_env("selftest");
        let mut acc = 0u64;
        h.bench("noop", "sum", || {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(h.records.len(), 1);
        assert!(h.records[0].min_ns() >= 0.0);
        h.finish();
        let path = dir.join("BENCH_selftest.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"bench\":\"selftest\""));
        std::env::remove_var("VDC_BENCH_OUT_DIR");
        std::env::remove_var("VDC_BENCH_SAMPLES");
        std::env::remove_var("VDC_BENCH_WARMUP_MS");
    }
}
