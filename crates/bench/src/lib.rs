//! Shared helpers for the figure-regeneration binaries.
//!
//! Each `fig*` binary (see `src/bin/`) reproduces one figure of the paper's
//! evaluation section and prints the corresponding rows/series; this crate
//! holds the formatting and argument plumbing they share. The benches under
//! `benches/` measure the algorithmic costs (MPC solve time, Minimum Slack
//! vs FFD, PAC/IPAC/pMapper scaling) with the std-only [`harness`].

pub mod harness;

/// Print a horizontal rule sized to a table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Print a standard figure header with reproduction context.
pub fn figure_header(figure: &str, description: &str) {
    rule(78);
    println!("{figure}: {description}");
    println!(
        "(reproduction of Wang & Wang, ICPP 2010 — simulated substrate; compare shapes,\n \
         not absolute values; see EXPERIMENTS.md)"
    );
    rule(78);
}

/// Parse `--flag value`-style overrides from argv, returning the value.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse a numeric flag with a default.
pub fn arg_num<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    arg_value(args, flag)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `true` when `--flag` is present.
pub fn arg_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn arg_parsing() {
        let a = args(&["--seed", "42", "--full"]);
        assert_eq!(arg_value(&a, "--seed").as_deref(), Some("42"));
        assert_eq!(arg_num(&a, "--seed", 7u64), 42);
        assert_eq!(arg_num(&a, "--missing", 7u64), 7);
        assert!(arg_present(&a, "--full"));
        assert!(!arg_present(&a, "--quick"));
        // Flag at the end without a value.
        let b = args(&["--seed"]);
        assert_eq!(arg_value(&b, "--seed"), None);
        // Unparseable value falls back to the default.
        let c = args(&["--seed", "zebra"]);
        assert_eq!(arg_num(&c, "--seed", 7u64), 7);
    }
}
