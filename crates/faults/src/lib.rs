//! Deterministic fault injection for the run loops.
//!
//! Every fault-free result in this workspace assumes hosts never die,
//! migrations never fail, and the controller always sees a clean
//! response-time sample. This crate supplies the adversary: a
//! [`FaultPlan`] drawn *up front* from a [`vdc_apptier::rng::SimRng`]
//! under per-fault-class seed streams (the same discipline as
//! `ChurnWorkload::generate`), so the same seed always produces the same
//! storm and the run loops only ever *read* the plan — sharded replays of
//! a faulted run stay bit-identical at every shard count.
//!
//! Four fault classes:
//!
//! * **host crashes** — per-host exponential inter-failure times (MTTF,
//!   optionally per host model) with exponential repair times (MTTR),
//!   pre-rolled into a sorted crash/recover event stream;
//! * **migration failures** — each migration attempt in an optimizer plan
//!   fails with probability `p`; outcomes are a pure function of the plan
//!   seed and the attempt ordinal, consumed through a [`FaultSession`]
//!   cursor in deterministic apply order;
//! * **wake failures** — the `WakeAndRetry` admission path's wake attempts
//!   fail with probability `p`, same ordinal-indexed scheme;
//! * **sensor dropout** — per-app windows during which the response-time
//!   measurement is masked (`None`, never `0.0`), pre-rolled per app.
//!
//! [`FaultPlan::empty`] (or any plan whose config injects nothing) is the
//! contract anchor: run loops treat it exactly like "no faults", so the
//! output is byte-identical to a plain run.

#![warn(missing_docs)]

pub mod plan;

pub use plan::{DropoutWindow, FaultConfig, FaultPlan, FaultSession, HostFault, HostFaultKind};
