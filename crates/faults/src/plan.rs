//! Fault-plan generation and the per-run consumption cursor.

use vdc_apptier::rng::{seed_stream, SimRng};

/// RNG stream tags: one per fault class, so the crash schedule, dropout
/// windows, migration outcomes, and wake outcomes never share draws even
/// though all four derive from one plan seed.
const STREAM_HOSTS: u64 = 0x5646_4C54; // "VFLT"
const STREAM_DROPOUT: u64 = 0x5644_524F; // "VDRO"
const STREAM_MIGRATION: u64 = 0x564D_4947; // "VMIG"
const STREAM_WAKE: u64 = 0x5657_414B; // "VWAK"

/// Configuration of the fault generator. Every knob defaults to "off";
/// a config that injects nothing generates a plan for which
/// [`FaultPlan::is_empty`] is true, and run loops treat such a plan
/// exactly like no plan at all.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Mean time to failure per host (seconds, exponential inter-failure
    /// times); `0` disables host crashes.
    pub host_mttf_s: f64,
    /// Mean time to repair a crashed host (seconds, exponential).
    pub host_mttr_s: f64,
    /// Probability that one migration *attempt* in an optimizer plan
    /// fails; `0` disables migration faults.
    pub migration_failure_prob: f64,
    /// Total deterministic backoff budget (in abstract backoff units) a
    /// migration may spend on retries. Retry `i` costs `2^i` units, so a
    /// budget of 7 buys retries at costs 1 + 2 + 4 (four attempts total);
    /// a budget of 0 means one attempt, no retries. No wall clock is
    /// involved — the schedule only bounds the retry count.
    pub migration_backoff_budget: u32,
    /// Probability that one wake attempt in the `WakeAndRetry` admission
    /// path fails; `0` disables wake faults.
    pub wake_failure_prob: f64,
    /// Mean sensor-dropout windows per application per day; `0` disables
    /// sensor faults.
    pub dropouts_per_day: f64,
    /// Mean length of one dropout window (seconds, exponential; floored
    /// at one sample interval so every window masks something).
    pub dropout_mean_s: f64,
    /// Plan seed (fully deterministic given the seed).
    pub seed: u64,
}

impl FaultConfig {
    /// A config that injects nothing (the generated plan is empty).
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            host_mttf_s: 0.0,
            host_mttr_s: 1_800.0,
            migration_failure_prob: 0.0,
            migration_backoff_budget: 7,
            wake_failure_prob: 0.0,
            dropouts_per_day: 0.0,
            dropout_mean_s: 1_800.0,
            seed,
        }
    }

    /// Host crashes only: exponential failures at the given MTTF, repairs
    /// at the given MTTR.
    pub fn crash_storm(host_mttf_s: f64, host_mttr_s: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            host_mttf_s,
            host_mttr_s,
            ..FaultConfig::quiet(seed)
        }
    }

    /// Flaky migrations only: each attempt fails with probability `p`
    /// under the default backoff budget.
    pub fn flaky_migrations(p: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            migration_failure_prob: p,
            ..FaultConfig::quiet(seed)
        }
    }

    /// Wake failures only: each `WakeAndRetry` wake attempt fails with
    /// probability `p`.
    pub fn flaky_wakes(p: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            wake_failure_prob: p,
            ..FaultConfig::quiet(seed)
        }
    }

    /// Sensor dropout only: per-app masking windows at the given daily
    /// rate and mean length.
    pub fn sensor_dropout(per_day: f64, mean_s: f64, seed: u64) -> FaultConfig {
        FaultConfig {
            dropouts_per_day: per_day,
            dropout_mean_s: mean_s,
            ..FaultConfig::quiet(seed)
        }
    }
}

/// What happens to a host at its fault event time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostFaultKind {
    /// The host crashes: its VMs must be evacuated and it refuses wake
    /// and placement until recovery.
    Crash,
    /// The host is repaired and rejoins the sleeping pool.
    Recover,
}

/// One timestamped host fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostFault {
    /// Sample index the event fires at.
    pub at_sample: usize,
    /// Server slot index the event targets. Run loops skip events whose
    /// index is out of range for their fleet (plans may be generated for
    /// a nominal host count).
    pub host: usize,
    /// Crash or recovery.
    pub kind: HostFaultKind,
}

/// One sensor-dropout window: application `app`'s response-time
/// measurement is masked for samples in `[from_sample, until_sample)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropoutWindow {
    /// Application index the window applies to.
    pub app: usize,
    /// First masked sample.
    pub from_sample: usize,
    /// First sample past the window (exclusive).
    pub until_sample: usize,
}

/// A generated, replayable fault plan: sorted host events, per-app
/// dropout windows, and the seeds + probabilities from which per-attempt
/// migration/wake outcomes are computed as pure functions of the attempt
/// ordinal.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    host_events: Vec<HostFault>,
    dropouts: Vec<DropoutWindow>,
    migration_failure_prob: f64,
    migration_backoff_budget: u32,
    wake_failure_prob: f64,
    migration_seed: u64,
    wake_seed: u64,
    n_samples: usize,
}

impl FaultPlan {
    /// Generate the plan for a horizon of `n_samples` samples spaced
    /// `interval_s` seconds apart, a fleet of `n_hosts` servers (uniform
    /// MTTF from the config), and `n_apps` applications.
    pub fn generate(
        cfg: &FaultConfig,
        n_samples: usize,
        interval_s: f64,
        n_hosts: usize,
        n_apps: usize,
    ) -> FaultPlan {
        let mttfs = vec![cfg.host_mttf_s; n_hosts];
        FaultPlan::generate_with_mttf(cfg, n_samples, interval_s, &mttfs, n_apps)
    }

    /// Generate with an explicit per-host MTTF (seconds; entry `h` is
    /// host `h`'s mean time to failure, `<= 0` exempts the host). This is
    /// the per-`HostProfile` hook: callers with a heterogeneous fleet map
    /// each host's profile to its model's MTTF before generating.
    pub fn generate_with_mttf(
        cfg: &FaultConfig,
        n_samples: usize,
        interval_s: f64,
        host_mttf_s: &[f64],
        n_apps: usize,
    ) -> FaultPlan {
        assert!(n_samples > 0, "fault plan needs a non-empty horizon");
        assert!(interval_s > 0.0, "fault plan needs a positive interval");
        assert!(
            (0.0..=1.0).contains(&cfg.migration_failure_prob),
            "migration failure probability {} outside [0, 1]",
            cfg.migration_failure_prob
        );
        assert!(
            (0.0..=1.0).contains(&cfg.wake_failure_prob),
            "wake failure probability {} outside [0, 1]",
            cfg.wake_failure_prob
        );
        let horizon_s = n_samples as f64 * interval_s;

        // Host crash/recover schedule: each host walks its own seed
        // stream, alternating exponential up-time (MTTF) and repair time
        // (MTTR), so adding hosts never perturbs earlier hosts' draws.
        let mut host_events = Vec::new();
        let hosts_seed = seed_stream(cfg.seed, STREAM_HOSTS);
        for (h, &mttf) in host_mttf_s.iter().enumerate() {
            if mttf <= 0.0 {
                continue;
            }
            let mut rng = SimRng::seed_from_u64(seed_stream(hosts_seed, h as u64));
            let mut t_s = rng.exponential(mttf);
            // The repair sample is rounded up, so the next crash draw can
            // land inside the rounding gap; clamp it past the recovery.
            let mut up_since = 0usize;
            while t_s < horizon_s {
                let crash = ((t_s / interval_s) as usize).max(up_since);
                if crash >= n_samples {
                    break;
                }
                host_events.push(HostFault {
                    at_sample: crash,
                    host: h,
                    kind: HostFaultKind::Crash,
                });
                let repair_s = t_s + rng.exponential(cfg.host_mttr_s.max(interval_s));
                let recover = ((repair_s / interval_s).ceil() as usize).max(crash + 1);
                if recover >= n_samples {
                    break; // stays down through the end of the horizon
                }
                host_events.push(HostFault {
                    at_sample: recover,
                    host: h,
                    kind: HostFaultKind::Recover,
                });
                up_since = recover;
                t_s = repair_s + rng.exponential(mttf);
            }
        }
        // Stable sort: same-sample events keep host order (and per-host
        // crash-before-recover order), so replay application order is
        // fixed by the plan alone.
        host_events.sort_by_key(|e| e.at_sample);

        // Sensor dropout: per-app windows, again one stream per app.
        let mut dropouts = Vec::new();
        if cfg.dropouts_per_day > 0.0 {
            let gap_mean_s = 86_400.0 / cfg.dropouts_per_day;
            let drop_seed = seed_stream(cfg.seed, STREAM_DROPOUT);
            for app in 0..n_apps {
                let mut rng = SimRng::seed_from_u64(seed_stream(drop_seed, app as u64));
                let mut t_s = rng.exponential(gap_mean_s);
                while t_s < horizon_s {
                    let len_s = rng.exponential(cfg.dropout_mean_s).max(interval_s);
                    let from = (t_s / interval_s) as usize;
                    let until =
                        (((t_s + len_s) / interval_s).ceil() as usize).clamp(from + 1, n_samples);
                    dropouts.push(DropoutWindow {
                        app,
                        from_sample: from,
                        until_sample: until,
                    });
                    t_s = t_s + len_s + rng.exponential(gap_mean_s);
                }
            }
        }

        FaultPlan {
            host_events,
            dropouts,
            migration_failure_prob: cfg.migration_failure_prob,
            migration_backoff_budget: cfg.migration_backoff_budget,
            wake_failure_prob: cfg.wake_failure_prob,
            migration_seed: seed_stream(cfg.seed, STREAM_MIGRATION),
            wake_seed: seed_stream(cfg.seed, STREAM_WAKE),
            n_samples,
        }
    }

    /// A plan that injects nothing. Run loops must produce byte-identical
    /// output under this plan and under no plan at all — the zero-fault
    /// contract `tests/determinism.rs` enforces.
    pub fn empty() -> FaultPlan {
        FaultPlan {
            host_events: Vec::new(),
            dropouts: Vec::new(),
            migration_failure_prob: 0.0,
            migration_backoff_budget: 0,
            wake_failure_prob: 0.0,
            migration_seed: 0,
            wake_seed: 0,
            n_samples: 0,
        }
    }

    /// Whether the plan injects any fault at all.
    pub fn is_empty(&self) -> bool {
        self.host_events.is_empty()
            && self.dropouts.is_empty()
            && self.migration_failure_prob <= 0.0
            && self.wake_failure_prob <= 0.0
    }

    /// The sorted host crash/recover event stream.
    pub fn host_events(&self) -> &[HostFault] {
        &self.host_events
    }

    /// All sensor-dropout windows.
    pub fn dropout_windows(&self) -> &[DropoutWindow] {
        &self.dropouts
    }

    /// Whether application `app`'s response-time sensor is masked at
    /// sample `t`.
    pub fn sensor_dropped(&self, app: usize, t: usize) -> bool {
        self.dropouts
            .iter()
            .any(|w| w.app == app && (w.from_sample..w.until_sample).contains(&t))
    }

    /// Whether migration attempt number `attempt` (a global ordinal in
    /// deterministic apply order) fails. Pure function of the plan, so
    /// replays agree regardless of shard count.
    pub fn migration_attempt_fails(&self, attempt: u64) -> bool {
        if self.migration_failure_prob <= 0.0 {
            return false;
        }
        SimRng::seed_from_u64(seed_stream(self.migration_seed, attempt)).uniform()
            < self.migration_failure_prob
    }

    /// Whether wake attempt number `attempt` fails.
    pub fn wake_attempt_fails(&self, attempt: u64) -> bool {
        if self.wake_failure_prob <= 0.0 {
            return false;
        }
        SimRng::seed_from_u64(seed_stream(self.wake_seed, attempt)).uniform()
            < self.wake_failure_prob
    }

    /// Maximum attempts per migration under the deterministic
    /// exponential-backoff budget: attempt 0 is free, retry `i` costs
    /// `2^i` budget units, retries stop once the cumulative cost would
    /// exceed the budget.
    pub fn max_migration_attempts(&self) -> u32 {
        let mut attempts = 1u32;
        let mut spent = 0u64;
        let mut cost = 1u64;
        while spent + cost <= self.migration_backoff_budget as u64 {
            spent += cost;
            cost = cost.saturating_mul(2);
            attempts += 1;
        }
        attempts
    }

    /// Horizon length the plan was generated for (0 for [`FaultPlan::empty`]).
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }
}

/// Per-run consumption state over a [`FaultPlan`]: the host-event cursor,
/// the migration/wake attempt ordinals, and the degradation counters the
/// run loop rolls up into telemetry at the end.
///
/// All consumption is strictly sequential (the run loops apply host
/// events, optimizer plans, and admission passes in deterministic index
/// order), so a session's trajectory is a pure function of the plan.
#[derive(Debug, Clone)]
pub struct FaultSession<'p> {
    plan: &'p FaultPlan,
    cursor: usize,
    migration_attempts: u64,
    wake_attempts: u64,
    /// Evacuated VMs that could not be re-placed anywhere (capacity
    /// exhausted) — the `fault.stranded_vms` counter.
    pub stranded_vms: u64,
    /// Optimizer plans that committed only a prefix of their moves.
    pub plan_partials: u64,
    /// Migration retries spent (attempts beyond the first, successful or
    /// not).
    pub migration_retries: u64,
    /// Migrations abandoned after exhausting their retry budget.
    pub migrations_dropped: u64,
    /// Wake attempts that failed in the admission path.
    pub wake_failures: u64,
    /// Host crash events applied.
    pub crashes: u64,
    /// Host recovery events applied.
    pub recoveries: u64,
    /// Samples the controller spent in hold-last-good safe mode.
    pub safe_mode_samples: u64,
    /// Out-of-cadence emergency relief passes the SLO watchdog triggered.
    pub watchdog_reliefs: u64,
}

impl<'p> FaultSession<'p> {
    /// A fresh session over a plan.
    pub fn new(plan: &'p FaultPlan) -> FaultSession<'p> {
        FaultSession {
            plan,
            cursor: 0,
            migration_attempts: 0,
            wake_attempts: 0,
            stranded_vms: 0,
            plan_partials: 0,
            migration_retries: 0,
            migrations_dropped: 0,
            wake_failures: 0,
            crashes: 0,
            recoveries: 0,
            safe_mode_samples: 0,
            watchdog_reliefs: 0,
        }
    }

    /// The plan this session consumes.
    pub fn plan(&self) -> &'p FaultPlan {
        self.plan
    }

    /// The host events due at sample `t`, advancing the cursor past them.
    /// Must be called with non-decreasing `t` (the run-loop sample order);
    /// events for skipped samples are consumed and dropped.
    pub fn host_events_at(&mut self, t: usize) -> &'p [HostFault] {
        let events = &self.plan.host_events;
        while self.cursor < events.len() && events[self.cursor].at_sample < t {
            self.cursor += 1;
        }
        let start = self.cursor;
        while self.cursor < events.len() && events[self.cursor].at_sample == t {
            self.cursor += 1;
        }
        &events[start..self.cursor]
    }

    /// Draw the outcome of the next migration attempt (true = fails).
    pub fn draw_migration_failure(&mut self) -> bool {
        let i = self.migration_attempts;
        self.migration_attempts += 1;
        self.plan.migration_attempt_fails(i)
    }

    /// Draw the outcome of the next wake attempt (true = fails).
    pub fn draw_wake_failure(&mut self) -> bool {
        let i = self.wake_attempts;
        self.wake_attempts += 1;
        let failed = self.plan.wake_attempt_fails(i);
        if failed {
            self.wake_failures += 1;
        }
        failed
    }

    /// Whether app `app`'s sensor is masked at sample `t`.
    pub fn sensor_dropped(&self, app: usize, t: usize) -> bool {
        self.plan.sensor_dropped(app, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = FaultConfig {
            migration_failure_prob: 0.2,
            dropouts_per_day: 4.0,
            ..FaultConfig::crash_storm(6.0 * 3_600.0, 1_800.0, 7)
        };
        let a = FaultPlan::generate(&cfg, 96, 900.0, 20, 6);
        let b = FaultPlan::generate(&cfg, 96, 900.0, 20, 6);
        assert_eq!(a, b);
        let c = FaultPlan::generate(&FaultConfig { seed: 8, ..cfg }, 96, 900.0, 20, 6);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn quiet_config_and_empty_plan_inject_nothing() {
        let quiet = FaultPlan::generate(&FaultConfig::quiet(3), 48, 900.0, 10, 4);
        assert!(quiet.is_empty());
        assert!(quiet.host_events().is_empty());
        assert!(quiet.dropout_windows().is_empty());
        let empty = FaultPlan::empty();
        assert!(empty.is_empty());
        assert!(!empty.migration_attempt_fails(0));
        assert!(!empty.wake_attempt_fails(0));
        let mut s = FaultSession::new(&empty);
        assert!(s.host_events_at(0).is_empty());
        assert!(!s.sensor_dropped(0, 0));
    }

    #[test]
    fn crash_events_are_sorted_and_alternate_per_host() {
        let cfg = FaultConfig::crash_storm(4.0 * 3_600.0, 1_800.0, 11);
        let plan = FaultPlan::generate(&cfg, 192, 900.0, 30, 0);
        assert!(
            !plan.host_events().is_empty(),
            "storm MTTF must crash something"
        );
        assert!(plan
            .host_events()
            .windows(2)
            .all(|p| p[0].at_sample <= p[1].at_sample));
        // Per host, kinds strictly alternate starting with a crash, and a
        // recovery never precedes its crash.
        let mut last: std::collections::BTreeMap<usize, (HostFaultKind, usize)> =
            std::collections::BTreeMap::new();
        for e in plan.host_events() {
            match last.get(&e.host) {
                None => assert_eq!(e.kind, HostFaultKind::Crash, "host {} starts up", e.host),
                Some(&(kind, at)) => {
                    assert_ne!(kind, e.kind, "host {} repeats {kind:?}", e.host);
                    assert!(at < e.at_sample || kind == HostFaultKind::Recover);
                }
            }
            last.insert(e.host, (e.kind, e.at_sample));
        }
    }

    #[test]
    fn per_host_mttf_exempts_and_biases_hosts() {
        let cfg = FaultConfig::crash_storm(2.0 * 3_600.0, 1_800.0, 5);
        // Host 0 exempt, host 1 fragile, host 2 sturdy.
        let plan =
            FaultPlan::generate_with_mttf(&cfg, 672, 900.0, &[0.0, 3_600.0, 500.0 * 3_600.0], 0);
        let crashes = |h: usize| {
            plan.host_events()
                .iter()
                .filter(|e| e.host == h && e.kind == HostFaultKind::Crash)
                .count()
        };
        assert_eq!(crashes(0), 0, "MTTF <= 0 exempts the host");
        assert!(crashes(1) > crashes(2), "{} vs {}", crashes(1), crashes(2));
    }

    #[test]
    fn dropout_windows_mask_the_right_app_samples() {
        let cfg = FaultConfig::sensor_dropout(6.0, 2_700.0, 13);
        let plan = FaultPlan::generate(&cfg, 96, 900.0, 0, 3);
        assert!(!plan.dropout_windows().is_empty());
        for w in plan.dropout_windows() {
            assert!(w.app < 3);
            assert!(w.from_sample < w.until_sample);
            assert!(w.until_sample <= 96);
            assert!(plan.sensor_dropped(w.app, w.from_sample));
            assert!(
                !plan.sensor_dropped(w.app + 3, w.from_sample),
                "other apps clean"
            );
        }
        // Masked fraction is positive but the sensor is not dead.
        let masked = (0..96).filter(|&t| plan.sensor_dropped(0, t)).count();
        assert!(masked < 96);
    }

    #[test]
    fn migration_outcomes_are_pure_and_track_the_probability() {
        let cfg = FaultConfig::flaky_migrations(0.3, 17);
        let plan = FaultPlan::generate(&cfg, 48, 900.0, 0, 0);
        let n = 20_000u64;
        let fails = (0..n).filter(|&i| plan.migration_attempt_fails(i)).count();
        let rate = fails as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "failure rate {rate}");
        // Pure function: same ordinal, same answer; session draws agree.
        let mut s = FaultSession::new(&plan);
        for i in 0..100 {
            assert_eq!(s.draw_migration_failure(), plan.migration_attempt_fails(i));
        }
    }

    #[test]
    fn backoff_budget_bounds_attempts() {
        let attempts = |budget: u32| {
            FaultPlan {
                migration_backoff_budget: budget,
                ..FaultPlan::empty()
            }
            .max_migration_attempts()
        };
        assert_eq!(attempts(0), 1, "no budget, single attempt");
        assert_eq!(attempts(1), 2);
        assert_eq!(attempts(2), 2, "second retry costs 2, budget exhausted");
        assert_eq!(attempts(3), 3);
        assert_eq!(attempts(7), 4, "1 + 2 + 4 fits exactly");
        assert_eq!(attempts(8), 4);
    }

    #[test]
    fn session_cursor_walks_the_event_stream_once() {
        let cfg = FaultConfig::crash_storm(3.0 * 3_600.0, 1_800.0, 23);
        let plan = FaultPlan::generate(&cfg, 96, 900.0, 12, 0);
        let mut s = FaultSession::new(&plan);
        let mut seen = 0usize;
        for t in 0..96 {
            let events = s.host_events_at(t);
            assert!(events.iter().all(|e| e.at_sample == t));
            seen += events.len();
        }
        assert_eq!(seen, plan.host_events().len(), "every event delivered once");
        assert!(s.host_events_at(96).is_empty());
    }

    #[test]
    fn wake_outcomes_count_failures() {
        let cfg = FaultConfig::flaky_wakes(1.0, 9);
        let plan = FaultPlan::generate(&cfg, 48, 900.0, 0, 0);
        let mut s = FaultSession::new(&plan);
        for _ in 0..5 {
            assert!(s.draw_wake_failure(), "p = 1 always fails");
        }
        assert_eq!(s.wake_failures, 5);
    }
}
