//! Trace storage and CSV interchange.

use crate::sector::Sector;
use std::io::{BufRead, BufWriter, Write};

/// Per-VM metadata carried alongside the utilization series.
#[derive(Debug, Clone, PartialEq)]
pub struct VmTraceMeta {
    /// Sector the source server belonged to.
    pub sector: Sector,
    /// Nominal CPU capacity of the source server (GHz); utilization × this
    /// gives the VM's absolute CPU demand.
    pub nominal_ghz: f64,
    /// Memory footprint of the VM (MiB).
    pub memory_mib: f64,
}

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content.
    Parse(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::Parse(s) => write!(f, "trace parse error: {s}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// An in-memory utilization trace: `n_vms` series of `n_samples` values in
/// `\[0, 1\]`, sampled every `interval_s` seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationTrace {
    n_vms: usize,
    n_samples: usize,
    interval_s: f64,
    /// Row-major: `data[vm * n_samples + t]`.
    data: Vec<f64>,
    meta: Vec<VmTraceMeta>,
}

impl UtilizationTrace {
    /// Assemble a trace from raw parts.
    ///
    /// # Panics
    /// Panics if dimensions disagree.
    pub fn from_parts(
        n_samples: usize,
        interval_s: f64,
        data: Vec<f64>,
        meta: Vec<VmTraceMeta>,
    ) -> UtilizationTrace {
        assert!(n_samples > 0, "trace needs at least one sample");
        assert_eq!(
            data.len(),
            meta.len() * n_samples,
            "data length must be n_vms * n_samples"
        );
        UtilizationTrace {
            n_vms: meta.len(),
            n_samples,
            interval_s,
            data,
            meta,
        }
    }

    /// Number of VMs.
    pub fn n_vms(&self) -> usize {
        self.n_vms
    }

    /// Samples per VM.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Sampling interval in seconds.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Trace duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.interval_s * self.n_samples as f64
    }

    /// Utilization of `vm` at sample `t` (clamped into range).
    pub fn utilization(&self, vm: usize, t: usize) -> f64 {
        let t = t.min(self.n_samples - 1);
        self.data[vm * self.n_samples + t]
    }

    /// Full series of one VM.
    pub fn series(&self, vm: usize) -> &[f64] {
        &self.data[vm * self.n_samples..(vm + 1) * self.n_samples]
    }

    /// Absolute CPU demand (GHz) of `vm` at sample `t`.
    pub fn demand_ghz(&self, vm: usize, t: usize) -> f64 {
        self.utilization(vm, t) * self.meta[vm].nominal_ghz
    }

    /// Metadata of one VM.
    pub fn meta(&self, vm: usize) -> &VmTraceMeta {
        &self.meta[vm]
    }

    /// Restrict to the first `n` VMs (used by the Fig. 6 sweep over data
    /// centers of 30…5,415 VMs).
    pub fn head(&self, n: usize) -> UtilizationTrace {
        let n = n.min(self.n_vms);
        UtilizationTrace {
            n_vms: n,
            n_samples: self.n_samples,
            interval_s: self.interval_s,
            data: self.data[..n * self.n_samples].to_vec(),
            meta: self.meta[..n].to_vec(),
        }
    }

    /// Mean utilization across all VMs and samples.
    pub fn mean_utilization(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Write as CSV: header, then one row per VM:
    /// `vm,sector,nominal_ghz,memory_mib,u0,u1,…`.
    pub fn write_csv<W: Write>(&self, w: W) -> Result<(), TraceError> {
        let mut out = BufWriter::new(w);
        writeln!(
            out,
            "# vdcpower utilization trace: n_vms={} n_samples={} interval_s={}",
            self.n_vms, self.n_samples, self.interval_s
        )?;
        for vm in 0..self.n_vms {
            let m = &self.meta[vm];
            write!(
                out,
                "{},{},{},{}",
                vm,
                m.sector.name(),
                m.nominal_ghz,
                m.memory_mib
            )?;
            for &u in self.series(vm) {
                write!(out, ",{:.4}", u)?;
            }
            writeln!(out)?;
        }
        out.flush()?;
        Ok(())
    }

    /// Write as TSV: a header row naming the columns, then one row per VM
    /// (`vm`, `sector`, `nominal_ghz`, `memory_mib`, `u0`…). Hand-rolled —
    /// the workspace has no serialization dependency by design.
    pub fn write_tsv<W: Write>(&self, w: W) -> Result<(), TraceError> {
        let mut out = BufWriter::new(w);
        write!(out, "vm\tsector\tnominal_ghz\tmemory_mib")?;
        for t in 0..self.n_samples {
            write!(out, "\tu{t}")?;
        }
        writeln!(out)?;
        for vm in 0..self.n_vms {
            let m = &self.meta[vm];
            write!(
                out,
                "{vm}\t{}\t{}\t{}",
                m.sector.name(),
                m.nominal_ghz,
                m.memory_mib
            )?;
            for &u in self.series(vm) {
                write!(out, "\t{u:.4}")?;
            }
            writeln!(out)?;
        }
        out.flush()?;
        Ok(())
    }

    /// Write the per-VM metadata as a hand-rolled JSON array, one object
    /// per VM: `{"vm":0,"sector":"retail","nominal_ghz":2.0,…}`.
    pub fn write_meta_json<W: Write>(&self, w: W) -> Result<(), TraceError> {
        let mut out = BufWriter::new(w);
        write!(out, "[")?;
        for (vm, m) in self.meta.iter().enumerate() {
            if vm > 0 {
                write!(out, ",")?;
            }
            write!(
                out,
                "{{\"vm\":{vm},\"sector\":\"{}\",\"nominal_ghz\":{},\"memory_mib\":{}}}",
                m.sector.name(),
                m.nominal_ghz,
                m.memory_mib
            )?;
        }
        writeln!(out, "]")?;
        out.flush()?;
        Ok(())
    }

    /// Read the CSV format produced by [`UtilizationTrace::write_csv`].
    pub fn read_csv<R: BufRead>(r: R) -> Result<UtilizationTrace, TraceError> {
        let mut lines = r.lines();
        let header = lines
            .next()
            .ok_or_else(|| TraceError::Parse("empty trace file".into()))??;
        let interval_s = header
            .split("interval_s=")
            .nth(1)
            .and_then(|s| s.trim().parse::<f64>().ok())
            .ok_or_else(|| TraceError::Parse("missing interval_s in header".into()))?;

        let mut data = Vec::new();
        let mut meta = Vec::new();
        let mut n_samples = None;
        for (lineno, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split(',');
            let _vm = fields
                .next()
                .ok_or_else(|| TraceError::Parse(format!("line {lineno}: missing vm id")))?;
            let sector_name = fields
                .next()
                .ok_or_else(|| TraceError::Parse(format!("line {lineno}: missing sector")))?;
            let sector = Sector::from_name(sector_name).ok_or_else(|| {
                TraceError::Parse(format!("line {lineno}: unknown sector {sector_name}"))
            })?;
            let nominal_ghz: f64 = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| TraceError::Parse(format!("line {lineno}: bad nominal_ghz")))?;
            let memory_mib: f64 = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| TraceError::Parse(format!("line {lineno}: bad memory_mib")))?;
            let series: Result<Vec<f64>, _> = fields
                .map(|s| {
                    s.parse::<f64>()
                        .map_err(|_| TraceError::Parse(format!("line {lineno}: bad sample {s:?}")))
                })
                .collect();
            let series = series?;
            if series.is_empty() {
                return Err(TraceError::Parse(format!("line {lineno}: no samples")));
            }
            match n_samples {
                None => n_samples = Some(series.len()),
                Some(n) if n != series.len() => {
                    return Err(TraceError::Parse(format!(
                        "line {lineno}: expected {n} samples, got {}",
                        series.len()
                    )))
                }
                _ => {}
            }
            data.extend(series);
            meta.push(VmTraceMeta {
                sector,
                nominal_ghz,
                memory_mib,
            });
        }
        let n_samples =
            n_samples.ok_or_else(|| TraceError::Parse("trace has no VM rows".into()))?;
        Ok(UtilizationTrace::from_parts(
            n_samples, interval_s, data, meta,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> UtilizationTrace {
        let meta = vec![
            VmTraceMeta {
                sector: Sector::Financial,
                nominal_ghz: 2.0,
                memory_mib: 1024.0,
            },
            VmTraceMeta {
                sector: Sector::Retail,
                nominal_ghz: 3.0,
                memory_mib: 2048.0,
            },
        ];
        let data = vec![0.1, 0.2, 0.3, 0.5, 0.6, 0.7];
        UtilizationTrace::from_parts(3, 900.0, data, meta)
    }

    #[test]
    fn accessors() {
        let t = small_trace();
        assert_eq!(t.n_vms(), 2);
        assert_eq!(t.n_samples(), 3);
        assert_eq!(t.duration_s(), 2700.0);
        assert_eq!(t.utilization(0, 1), 0.2);
        assert_eq!(t.utilization(1, 0), 0.5);
        // Clamped past-the-end access.
        assert_eq!(t.utilization(0, 99), 0.3);
        assert_eq!(t.series(1), &[0.5, 0.6, 0.7]);
        assert!((t.demand_ghz(1, 2) - 2.1).abs() < 1e-12);
        assert!((t.mean_utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "n_vms * n_samples")]
    fn mismatched_dimensions_panic() {
        let meta = vec![VmTraceMeta {
            sector: Sector::Telecom,
            nominal_ghz: 1.0,
            memory_mib: 512.0,
        }];
        let _ = UtilizationTrace::from_parts(3, 900.0, vec![0.1, 0.2], meta);
    }

    #[test]
    fn head_restricts() {
        let t = small_trace();
        let h = t.head(1);
        assert_eq!(h.n_vms(), 1);
        assert_eq!(h.series(0), t.series(0));
        // head beyond size is the whole trace.
        assert_eq!(t.head(10).n_vms(), 2);
    }

    #[test]
    fn csv_roundtrip() {
        let t = small_trace();
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let parsed = UtilizationTrace::read_csv(buf.as_slice()).unwrap();
        assert_eq!(parsed.n_vms(), 2);
        assert_eq!(parsed.n_samples(), 3);
        assert_eq!(parsed.interval_s(), 900.0);
        assert_eq!(parsed.meta(0).sector, Sector::Financial);
        for vm in 0..2 {
            for k in 0..3 {
                assert!((parsed.utilization(vm, k) - t.utilization(vm, k)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let t = small_trace();
        let mut buf = Vec::new();
        t.write_tsv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "vm\tsector\tnominal_ghz\tmemory_mib\tu0\tu1\tu2"
        );
        let row: Vec<&str> = lines.next().unwrap().split('\t').collect();
        assert_eq!(&row[..4], &["0", "financial", "2", "1024"]);
        assert_eq!(row.len(), 4 + 3);
        assert_eq!(text.lines().count(), 1 + 2);
    }

    #[test]
    fn meta_json_is_wellformed() {
        let t = small_trace();
        let mut buf = Vec::new();
        t.write_meta_json(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with('[') && text.trim_end().ends_with(']'));
        assert!(text.contains("\"sector\":\"financial\""));
        assert!(text.contains("\"vm\":1"));
        assert_eq!(text.matches("{\"vm\":").count(), 2);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(UtilizationTrace::read_csv(&b""[..]).is_err());
        assert!(UtilizationTrace::read_csv(&b"# nonsense header\n"[..]).is_err());
        let bad_sector = b"# interval_s=900\n0,agriculture,1.0,512,0.5\n";
        assert!(UtilizationTrace::read_csv(&bad_sector[..]).is_err());
        let ragged = b"# interval_s=900\n0,retail,1.0,512,0.5,0.6\n1,retail,1.0,512,0.5\n";
        assert!(UtilizationTrace::read_csv(&ragged[..]).is_err());
        let bad_sample = b"# interval_s=900\n0,retail,1.0,512,zebra\n";
        assert!(UtilizationTrace::read_csv(&bad_sample[..]).is_err());
    }
}
