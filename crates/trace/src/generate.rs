//! Synthetic trace generation.
//!
//! Reproduces the statistical structure of the SHIP trace the paper replays
//! (§VI-B): per-sector diurnal shapes with weekday/weekend contrast,
//! heterogeneous per-VM scale and phase, AR(1) noise (real utilization is
//! strongly autocorrelated at 15-minute granularity), and occasional flash
//! crowds. The trace "starts" on a Monday at 00:00, matching the paper's
//! July 14th 2008 anchor.

use crate::sector::Sector;
use crate::store::{UtilizationTrace, VmTraceMeta};
use vdc_apptier::rng::SimRng;

/// Configuration of the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Number of VMs (source servers).
    pub n_vms: usize,
    /// Number of samples per VM.
    pub n_samples: usize,
    /// Sampling interval (seconds).
    pub interval_s: f64,
    /// RNG seed (fully deterministic given the seed).
    pub seed: u64,
}

impl TraceConfig {
    /// The paper's scale: 5,415 VMs × 672 samples (7 days × 96 per day) at
    /// 15-minute spacing.
    pub fn paper_scale(seed: u64) -> TraceConfig {
        TraceConfig {
            n_vms: 5415,
            n_samples: 672,
            interval_s: 900.0,
            seed,
        }
    }

    /// A small configuration for quick tests.
    pub fn small(n_vms: usize, seed: u64) -> TraceConfig {
        TraceConfig {
            n_vms,
            n_samples: 672,
            interval_s: 900.0,
            seed,
        }
    }
}

/// Per-VM randomized parameters (shared with the streaming generator in
/// [`crate::stream`], which must reproduce the per-VM draw order exactly).
pub(crate) struct VmParams {
    pub(crate) sector: Sector,
    pub(crate) scale: f64,
    pub(crate) phase_h: f64,
    pub(crate) ar_state: f64,
}

/// Draw one VM's randomized parameters and metadata: sector, scale, phase,
/// nominal capacity, memory — in that exact RNG order.
pub(crate) fn draw_vm(rng: &mut SimRng) -> (VmParams, VmTraceMeta) {
    // Sector mix: weighted toward telecom/financial like enterprise
    // fleets; each VM perturbs its sector's canonical shape.
    let sector = match rng.index(10) {
        0..=2 => Sector::Manufacturing,
        3..=5 => Sector::Telecom,
        6..=7 => Sector::Financial,
        _ => Sector::Retail,
    };
    let p = VmParams {
        sector,
        scale: 0.6 + 0.8 * rng.uniform(),
        phase_h: rng.uniform() * 3.0 - 1.5,
        ar_state: 0.0,
    };
    // Nominal source-server capacity: 1–4 GHz-class machines.
    let nominal_ghz = *rng.pick(&[1.0, 1.5, 2.0, 3.0, 4.0]);
    // Memory: 512 MiB – 4 GiB, correlated with capacity.
    let memory_mib = 512.0 * (1.0 + rng.index((nominal_ghz * 2.0) as usize + 1) as f64);
    (
        p,
        VmTraceMeta {
            sector,
            nominal_ghz,
            memory_mib,
        },
    )
}

/// Generate a synthetic utilization trace.
///
/// # Examples
///
/// ```
/// use vdc_trace::{generate_trace, TraceConfig};
///
/// let trace = generate_trace(&TraceConfig::small(10, 42));
/// assert_eq!(trace.n_vms(), 10);
/// assert_eq!(trace.n_samples(), 672); // 7 days at 15-minute spacing
/// assert!(trace.utilization(0, 0) <= 1.0);
/// ```
pub fn generate_trace(cfg: &TraceConfig) -> UtilizationTrace {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let mut data = Vec::with_capacity(cfg.n_vms * cfg.n_samples);
    let mut meta = Vec::with_capacity(cfg.n_vms);

    for _ in 0..cfg.n_vms {
        let (mut p, m) = draw_vm(&mut rng);
        for t in 0..cfg.n_samples {
            let u = sample_utilization(&mut p, t, cfg.interval_s, &mut rng);
            data.push(u);
        }
        meta.push(m);
    }
    UtilizationTrace::from_parts(cfg.n_samples, cfg.interval_s, data, meta)
}

/// One utilization sample for one VM.
pub(crate) fn sample_utilization(
    p: &mut VmParams,
    t: usize,
    interval_s: f64,
    rng: &mut SimRng,
) -> f64 {
    let shape = p.sector.shape();
    let hours = t as f64 * interval_s / 3600.0;
    let hour_of_day = (hours + p.phase_h).rem_euclid(24.0);
    let day = (hours / 24.0).floor() as usize % 7;
    let weekend = day >= 5; // trace starts Monday
    let day_factor = if weekend { shape.weekend_factor } else { 1.0 };

    // Diurnal: raised cosine centred on the peak hour.
    let angle = (hour_of_day - shape.peak_hour) / 24.0 * 2.0 * std::f64::consts::PI;
    let diurnal = shape.diurnal_amp * 0.5 * (1.0 + angle.cos());

    // AR(1) noise keeps consecutive samples correlated.
    let white: f64 = rng.uniform() * 2.0 - 1.0;
    p.ar_state = 0.85 * p.ar_state + shape.noise_sd * white;

    // Flash crowd.
    let spike = if rng.uniform() < shape.spike_prob {
        shape.spike_amp * (0.5 + rng.uniform())
    } else {
        0.0
    };

    ((shape.base + diurnal * day_factor) * p.scale + p.ar_state + spike).clamp(0.01, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_range() {
        let cfg = TraceConfig::small(20, 1);
        let t = generate_trace(&cfg);
        assert_eq!(t.n_vms(), 20);
        assert_eq!(t.n_samples(), 672);
        for vm in 0..20 {
            for &u in t.series(vm) {
                assert!((0.01..=1.0).contains(&u), "utilization {u} out of range");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_trace(&TraceConfig::small(5, 42));
        let b = generate_trace(&TraceConfig::small(5, 42));
        assert_eq!(a, b);
        let c = generate_trace(&TraceConfig::small(5, 43));
        assert_ne!(a, c);
    }

    #[test]
    fn diurnal_structure_present() {
        // Averaged over many financial-sector VMs, business hours must be
        // hotter than the small hours on weekdays.
        let cfg = TraceConfig::small(300, 7);
        let t = generate_trace(&cfg);
        let mut peak = 0.0;
        let mut trough = 0.0;
        let mut n = 0;
        for vm in 0..t.n_vms() {
            if t.meta(vm).sector != Sector::Financial {
                continue;
            }
            n += 1;
            // Tuesday 13:00 (t = 96 + 52) vs Tuesday 03:00 (t = 96 + 12).
            peak += t.utilization(vm, 96 + 52);
            trough += t.utilization(vm, 96 + 12);
        }
        assert!(n > 10, "need financial VMs in the mix");
        assert!(
            peak / n as f64 > trough / n as f64 + 0.1,
            "business hours should dominate: {} vs {}",
            peak / n as f64,
            trough / n as f64
        );
    }

    #[test]
    fn weekend_contrast_for_financial() {
        let cfg = TraceConfig::small(400, 9);
        let t = generate_trace(&cfg);
        let mut weekday = 0.0;
        let mut weekend = 0.0;
        let mut n = 0;
        for vm in 0..t.n_vms() {
            if t.meta(vm).sector != Sector::Financial {
                continue;
            }
            n += 1;
            // Wednesday 13:00 vs Saturday 13:00.
            weekday += t.utilization(vm, 2 * 96 + 52);
            weekend += t.utilization(vm, 5 * 96 + 52);
        }
        assert!(n > 10);
        assert!(weekday / n as f64 > weekend / n as f64 + 0.05);
    }

    #[test]
    fn autocorrelation_is_high() {
        // Adjacent 15-minute samples must be strongly correlated, like the
        // real trace (lag-1 autocorrelation > 0.5 on average).
        let cfg = TraceConfig::small(50, 11);
        let t = generate_trace(&cfg);
        let mut acc = 0.0;
        for vm in 0..t.n_vms() {
            let s = t.series(vm);
            let mean = s.iter().sum::<f64>() / s.len() as f64;
            let var: f64 = s.iter().map(|u| (u - mean).powi(2)).sum();
            let cov: f64 = s.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum();
            if var > 1e-12 {
                acc += cov / var;
            }
        }
        let mean_rho = acc / t.n_vms() as f64;
        assert!(mean_rho > 0.5, "lag-1 autocorrelation {mean_rho} too low");
    }

    #[test]
    fn paper_scale_shape() {
        let cfg = TraceConfig::paper_scale(1);
        assert_eq!(cfg.n_vms, 5415);
        assert_eq!(cfg.n_samples, 672);
        assert_eq!(cfg.interval_s, 900.0);
        // 7 days.
        assert_eq!(cfg.n_samples as f64 * cfg.interval_s, 7.0 * 86400.0);
    }

    #[test]
    fn overall_mean_utilization_plausible() {
        // Enterprise servers idle a lot: mean utilization should be well
        // below saturation but nonzero.
        let t = generate_trace(&TraceConfig::small(200, 3));
        let m = t.mean_utilization();
        assert!((0.1..0.7).contains(&m), "mean utilization {m}");
    }

    #[test]
    fn memory_and_capacity_assigned() {
        let t = generate_trace(&TraceConfig::small(100, 5));
        for vm in 0..t.n_vms() {
            let m = t.meta(vm);
            assert!(m.nominal_ghz >= 1.0 && m.nominal_ghz <= 4.0);
            assert!(m.memory_mib >= 512.0);
        }
    }
}
