//! Trace statistics: the aggregate properties that make a utilization
//! trace "look like" the SHIP trace the paper replays — used both to
//! validate the synthetic generator and to characterize user-supplied
//! CSVs (`vdcpower trace-info`).

use crate::sector::Sector;
use crate::store::UtilizationTrace;

/// Aggregate statistics of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Mean utilization over all VMs and samples.
    pub mean_utilization: f64,
    /// Mean of per-VM peak utilizations.
    pub mean_peak_utilization: f64,
    /// Peak-to-mean ratio of the *aggregate* demand curve (burstiness; the
    /// headroom a consolidator must keep).
    pub aggregate_peak_to_mean: f64,
    /// Mean lag-1 autocorrelation across VMs (how predictable consecutive
    /// 15-minute samples are).
    pub mean_lag1_autocorrelation: f64,
    /// VM count per sector.
    pub sector_counts: Vec<(Sector, usize)>,
    /// Aggregate demand (GHz) at each sample — the fleet-sizing input.
    pub aggregate_demand_ghz: Vec<f64>,
}

/// Compute [`TraceStats`] for (the first `n_vms` of) a trace.
pub fn trace_stats(trace: &UtilizationTrace, n_vms: usize) -> TraceStats {
    let n = n_vms.min(trace.n_vms()).max(1).min(trace.n_vms());
    let samples = trace.n_samples();

    let mut mean_sum = 0.0;
    let mut peak_sum = 0.0;
    let mut rho_sum = 0.0;
    let mut rho_count = 0usize;
    let mut sector_counts: Vec<(Sector, usize)> = Sector::ALL.iter().map(|&s| (s, 0)).collect();
    let mut aggregate = vec![0.0_f64; samples];

    for vm in 0..n {
        let series = trace.series(vm);
        let mean = series.iter().sum::<f64>() / samples as f64;
        let peak = series.iter().fold(0.0_f64, |m, &u| m.max(u));
        mean_sum += mean;
        peak_sum += peak;

        let var: f64 = series.iter().map(|u| (u - mean).powi(2)).sum();
        if var > 1e-12 && samples > 1 {
            let cov: f64 = series
                .windows(2)
                .map(|w| (w[0] - mean) * (w[1] - mean))
                .sum();
            rho_sum += cov / var;
            rho_count += 1;
        }

        let sector = trace.meta(vm).sector;
        if let Some(entry) = sector_counts.iter_mut().find(|(s, _)| *s == sector) {
            entry.1 += 1;
        }
        for (t, agg) in aggregate.iter_mut().enumerate() {
            *agg += trace.demand_ghz(vm, t);
        }
    }

    let agg_mean = aggregate.iter().sum::<f64>() / samples as f64;
    let agg_peak = aggregate.iter().fold(0.0_f64, |m, &v| m.max(v));
    TraceStats {
        mean_utilization: mean_sum / n as f64,
        mean_peak_utilization: peak_sum / n as f64,
        aggregate_peak_to_mean: if agg_mean > 0.0 {
            agg_peak / agg_mean
        } else {
            0.0
        },
        mean_lag1_autocorrelation: if rho_count > 0 {
            rho_sum / rho_count as f64
        } else {
            0.0
        },
        sector_counts,
        aggregate_demand_ghz: aggregate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_trace, TraceConfig};

    #[test]
    fn synthetic_trace_has_ship_like_statistics() {
        let trace = generate_trace(&TraceConfig::small(300, 42));
        let stats = trace_stats(&trace, trace.n_vms());
        // Enterprise servers: moderate mean, clear headroom to peaks.
        assert!(
            (0.1..0.7).contains(&stats.mean_utilization),
            "mean {}",
            stats.mean_utilization
        );
        assert!(stats.mean_peak_utilization > stats.mean_utilization + 0.1);
        // 15-minute samples are strongly autocorrelated.
        assert!(stats.mean_lag1_autocorrelation > 0.5);
        // Aggregate burstiness: diurnal swing means peak/mean in (1.05, 3).
        assert!(
            (1.05..3.0).contains(&stats.aggregate_peak_to_mean),
            "peak/mean {}",
            stats.aggregate_peak_to_mean
        );
        // Every sector is represented at this population size.
        assert!(stats.sector_counts.iter().all(|&(_, c)| c > 0));
        let total: usize = stats.sector_counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 300);
        assert_eq!(stats.aggregate_demand_ghz.len(), trace.n_samples());
    }

    #[test]
    fn stats_respect_vm_prefix() {
        let trace = generate_trace(&TraceConfig::small(50, 7));
        let all = trace_stats(&trace, 50);
        let half = trace_stats(&trace, 25);
        let total_half: usize = half.sector_counts.iter().map(|&(_, c)| c).sum();
        assert_eq!(total_half, 25);
        // Aggregate of the prefix is no larger than the whole.
        for (a, b) in half
            .aggregate_demand_ghz
            .iter()
            .zip(&all.aggregate_demand_ghz)
        {
            assert!(a <= b);
        }
    }

    #[test]
    fn aggregate_peaks_during_daytime() {
        // The diurnal structure must show in the aggregate: the busiest
        // sample of day 2 falls in working/evening hours (08:00–24:00).
        let trace = generate_trace(&TraceConfig::small(400, 11));
        let stats = trace_stats(&trace, 400);
        let day2 = &stats.aggregate_demand_ghz[96..192];
        let (peak_idx, _) = day2
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let hour = peak_idx as f64 * 0.25;
        assert!(
            (8.0..24.0).contains(&hour),
            "aggregate peak at hour {hour} of day 2"
        );
    }
}
