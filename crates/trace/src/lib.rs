//! Data-center utilization traces.
//!
//! The paper's large-scale evaluation (§VI-B) replays "a trace file
//! \[recording\] the average CPU utilization of each server every 15 minutes
//! from 00:00 on July 14th (Monday) to 23:45 on July 20th (Sunday) in
//! 2008" for 5,415 servers from ten companies across the manufacturing,
//! telecommunications, financial, and retail sectors, treating each
//! server's utilization series as the CPU demand of one VM.
//!
//! That trace (from SHIP, PACT'09 \[24\]) is proprietary, so this crate
//! provides:
//!
//! * [`generate`] — a statistical generator reproducing the structure that
//!   matters to consolidation: per-sector diurnal shapes, weekday/weekend
//!   contrast, heterogeneous per-VM scale, autocorrelated noise, and flash
//!   crowds ([`generate::TraceConfig::paper_scale`] emits exactly 5,415
//!   VMs × 672 samples at 15-minute spacing);
//! * [`store`] — an in-memory trace type ([`store::UtilizationTrace`]) and
//!   a CSV codec so the real trace can be dropped in if available;
//! * [`stream`] — a constant-memory streaming generator
//!   ([`stream::StreamingTrace`]) and the [`stream::DemandSource`] trait the
//!   replay loops are generic over, for fleets whose full-week matrix would
//!   not fit in memory.

#![warn(missing_docs)]

pub mod generate;
pub mod sector;
pub mod stats;
pub mod store;
pub mod stream;

pub use generate::{generate_trace, TraceConfig};
pub use sector::Sector;
pub use stats::{trace_stats, TraceStats};
pub use store::{TraceError, UtilizationTrace, VmTraceMeta};
pub use stream::{DemandSource, StreamingTrace};
