//! Streaming trace generation and the [`DemandSource`] abstraction.
//!
//! The materialized generator ([`crate::generate_trace`]) stores the full
//! `n_vms × n_samples` utilization matrix — ~5.4 GB of `f64`s for the
//! 100k-server / 1M-VM megafleet week the ROADMAP targets. The replay loop
//! only ever reads one *sample column* at a time, so [`StreamingTrace`]
//! keeps per-VM generator state (RNG, AR(1) noise, diurnal parameters) and
//! synthesizes each column on demand: memory is `O(n_vms)` regardless of
//! the horizon length.
//!
//! Sample-major streaming is impossible on the legacy generator's single
//! serial RNG (each sample consumes a data-dependent number of draws), so
//! the stream derives one independent RNG per VM with
//! [`vdc_apptier::rng::seed_stream`]. The statistical model is shared code
//! with the materialized path ([`crate::generate`]'s `draw_vm` /
//! `sample_utilization`), and [`StreamingTrace::materialize`] replays the
//! same per-VM streams into an in-memory [`UtilizationTrace`] — streaming
//! and materialized replays of the same config are bit-identical, which
//! `tests/determinism.rs` pins end to end.

use crate::generate::{draw_vm, sample_utilization, TraceConfig, VmParams};
use crate::store::{UtilizationTrace, VmTraceMeta};
use vdc_apptier::rng::{seed_stream, SimRng};

/// A per-sample CPU-demand source for the replay loops.
///
/// [`UtilizationTrace`] (random access, whole matrix in memory) and
/// [`StreamingTrace`] (forward-only cursor, `O(n_vms)` memory) both
/// implement it, so `run_large_scale` and `run_churn` are generic over
/// where the demand column comes from. Callers must invoke
/// [`DemandSource::advance_to`] with non-decreasing `t` before reading
/// sample `t`; random-access sources make it a no-op.
pub trait DemandSource {
    /// Number of VMs.
    fn n_vms(&self) -> usize;
    /// Samples per VM.
    fn n_samples(&self) -> usize;
    /// Sampling interval in seconds.
    fn interval_s(&self) -> f64;
    /// Metadata of one VM.
    fn meta(&self, vm: usize) -> &VmTraceMeta;
    /// Whether any `(vm, t)` can be read at any time. `false` means the
    /// source is forward-only: reads are valid only for the sample most
    /// recently passed to [`DemandSource::advance_to`].
    fn random_access(&self) -> bool {
        true
    }
    /// Position the source at sample `t` (non-decreasing across calls).
    fn advance_to(&mut self, _t: usize) {}
    /// Absolute CPU demand (GHz) of `vm` at sample `t`.
    fn demand_ghz(&self, vm: usize, t: usize) -> f64;
}

impl DemandSource for UtilizationTrace {
    fn n_vms(&self) -> usize {
        UtilizationTrace::n_vms(self)
    }
    fn n_samples(&self) -> usize {
        UtilizationTrace::n_samples(self)
    }
    fn interval_s(&self) -> f64 {
        UtilizationTrace::interval_s(self)
    }
    fn meta(&self, vm: usize) -> &VmTraceMeta {
        UtilizationTrace::meta(self, vm)
    }
    fn demand_ghz(&self, vm: usize, t: usize) -> f64 {
        UtilizationTrace::demand_ghz(self, vm, t)
    }
}

/// A shared trace reference is itself a (random-access) demand source, so
/// the borrowing runner entry points can hand `&UtilizationTrace` to the
/// generic replay loop without cloning the matrix.
impl DemandSource for &UtilizationTrace {
    fn n_vms(&self) -> usize {
        UtilizationTrace::n_vms(self)
    }
    fn n_samples(&self) -> usize {
        UtilizationTrace::n_samples(self)
    }
    fn interval_s(&self) -> f64 {
        UtilizationTrace::interval_s(self)
    }
    fn meta(&self, vm: usize) -> &VmTraceMeta {
        UtilizationTrace::meta(self, vm)
    }
    fn demand_ghz(&self, vm: usize, t: usize) -> f64 {
        UtilizationTrace::demand_ghz(self, vm, t)
    }
}

/// Constant-memory, forward-only trace generator.
///
/// Holds one RNG + AR(1) state per VM (derived with
/// [`seed_stream`]`(cfg.seed, vm)`) plus the current sample column —
/// `O(n_vms)` memory however long the horizon. [`StreamingTrace::advance_to`]
/// steps every VM's generator to the requested sample; reads are then valid
/// for that sample only.
///
/// # Examples
///
/// ```
/// use vdc_trace::{DemandSource, StreamingTrace, TraceConfig};
///
/// let cfg = TraceConfig { n_vms: 4, n_samples: 8, interval_s: 900.0, seed: 7 };
/// let mut s = StreamingTrace::new(&cfg);
/// s.advance_to(0);
/// let d0 = s.demand_ghz(2, 0);
/// assert!(d0 > 0.0);
/// // Bit-identical to the materialized twin.
/// let full = StreamingTrace::materialize(&cfg);
/// assert_eq!(d0.to_bits(), full.demand_ghz(2, 0).to_bits());
/// ```
pub struct StreamingTrace {
    n_samples: usize,
    interval_s: f64,
    meta: Vec<VmTraceMeta>,
    params: Vec<VmParams>,
    rngs: Vec<SimRng>,
    /// Utilization column at `cursor`.
    current: Vec<f64>,
    /// Last generated sample; `None` until the first `advance_to`.
    cursor: Option<usize>,
}

impl StreamingTrace {
    /// Create a stream positioned before the first sample. Per-VM
    /// parameters (sector, scale, phase, nominal capacity, memory) are
    /// drawn up front; utilization columns are synthesized by
    /// [`StreamingTrace::advance_to`].
    pub fn new(cfg: &TraceConfig) -> StreamingTrace {
        assert!(cfg.n_samples > 0, "trace needs at least one sample");
        let mut meta = Vec::with_capacity(cfg.n_vms);
        let mut params = Vec::with_capacity(cfg.n_vms);
        let mut rngs = Vec::with_capacity(cfg.n_vms);
        for vm in 0..cfg.n_vms {
            let mut rng = SimRng::seed_from_u64(seed_stream(cfg.seed, vm as u64));
            let (p, m) = draw_vm(&mut rng);
            params.push(p);
            meta.push(m);
            rngs.push(rng);
        }
        StreamingTrace {
            n_samples: cfg.n_samples,
            interval_s: cfg.interval_s,
            meta,
            params,
            rngs,
            current: vec![0.0; cfg.n_vms],
            cursor: None,
        }
    }

    /// Utilization of `vm` at the current cursor sample.
    ///
    /// # Panics
    /// Panics if no sample has been generated yet.
    pub fn utilization(&self, vm: usize) -> f64 {
        assert!(self.cursor.is_some(), "advance_to must run before reads");
        self.current[vm]
    }

    /// The sample the stream is positioned at (`None` before the first
    /// [`StreamingTrace::advance_to`]).
    pub fn cursor(&self) -> Option<usize> {
        self.cursor
    }

    /// Generate the next sample column for every VM.
    fn step(&mut self) {
        let t = self.cursor.map_or(0, |c| c + 1);
        debug_assert!(t < self.n_samples);
        for vm in 0..self.current.len() {
            self.current[vm] =
                sample_utilization(&mut self.params[vm], t, self.interval_s, &mut self.rngs[vm]);
        }
        self.cursor = Some(t);
    }

    /// Materialize the whole trace the stream would produce into an
    /// in-memory [`UtilizationTrace`] — the bit-identity reference for the
    /// streaming replay path (note: *not* the same values as
    /// [`crate::generate_trace`], whose single serial RNG cannot stream).
    pub fn materialize(cfg: &TraceConfig) -> UtilizationTrace {
        let mut s = StreamingTrace::new(cfg);
        let n_vms = s.current.len();
        let mut data = vec![0.0_f64; n_vms * cfg.n_samples];
        for t in 0..cfg.n_samples {
            s.step();
            for (vm, &u) in s.current.iter().enumerate() {
                data[vm * cfg.n_samples + t] = u;
            }
        }
        UtilizationTrace::from_parts(cfg.n_samples, cfg.interval_s, data, s.meta)
    }
}

impl DemandSource for StreamingTrace {
    fn n_vms(&self) -> usize {
        self.current.len()
    }
    fn n_samples(&self) -> usize {
        self.n_samples
    }
    fn interval_s(&self) -> f64 {
        self.interval_s
    }
    fn meta(&self, vm: usize) -> &VmTraceMeta {
        &self.meta[vm]
    }
    fn random_access(&self) -> bool {
        false
    }

    /// Step the generators forward to sample `t`.
    ///
    /// # Panics
    /// Panics if `t` is out of range or behind the cursor (the stream is
    /// forward-only; rebuild it with [`StreamingTrace::new`] to rewind).
    fn advance_to(&mut self, t: usize) {
        assert!(t < self.n_samples, "sample {t} out of range");
        if let Some(c) = self.cursor {
            assert!(c <= t, "stream is forward-only: at {c}, asked for {t}");
        }
        while self.cursor.is_none_or(|c| c < t) {
            self.step();
        }
    }

    /// Demand at the cursor sample; `t` must equal the cursor.
    fn demand_ghz(&self, vm: usize, t: usize) -> f64 {
        debug_assert_eq!(Some(t), self.cursor, "read must match advance_to");
        self.current[vm] * self.meta[vm].nominal_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n_vms: usize, n_samples: usize, seed: u64) -> TraceConfig {
        TraceConfig {
            n_vms,
            n_samples,
            interval_s: 900.0,
            seed,
        }
    }

    #[test]
    fn stream_matches_materialized_bit_for_bit() {
        let c = cfg(17, 96, 0x57E4);
        let full = StreamingTrace::materialize(&c);
        let mut s = StreamingTrace::new(&c);
        assert_eq!(DemandSource::n_vms(&s), 17);
        assert_eq!(DemandSource::n_samples(&s), 96);
        for t in 0..96 {
            s.advance_to(t);
            for vm in 0..17 {
                assert_eq!(
                    DemandSource::demand_ghz(&s, vm, t).to_bits(),
                    DemandSource::demand_ghz(&full, vm, t).to_bits(),
                    "vm {vm} sample {t}"
                );
                assert_eq!(
                    s.utilization(vm).to_bits(),
                    full.utilization(vm, t).to_bits()
                );
            }
        }
    }

    #[test]
    fn meta_matches_materialized() {
        let c = cfg(40, 8, 9);
        let full = StreamingTrace::materialize(&c);
        let s = StreamingTrace::new(&c);
        for vm in 0..40 {
            assert_eq!(DemandSource::meta(&s, vm), DemandSource::meta(&full, vm));
        }
    }

    #[test]
    fn advance_is_idempotent_and_skippable() {
        let c = cfg(5, 32, 3);
        let full = StreamingTrace::materialize(&c);
        let mut s = StreamingTrace::new(&c);
        // Jump straight to sample 20, then re-request it.
        s.advance_to(20);
        s.advance_to(20);
        assert_eq!(s.cursor(), Some(20));
        for vm in 0..5 {
            assert_eq!(
                DemandSource::demand_ghz(&s, vm, 20).to_bits(),
                DemandSource::demand_ghz(&full, vm, 20).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "forward-only")]
    fn rewinding_panics() {
        let mut s = StreamingTrace::new(&cfg(3, 16, 1));
        s.advance_to(5);
        s.advance_to(4);
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = StreamingTrace::materialize(&cfg(8, 24, 42));
        let b = StreamingTrace::materialize(&cfg(8, 24, 42));
        let c = StreamingTrace::materialize(&cfg(8, 24, 43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn utilization_stays_in_range() {
        let t = StreamingTrace::materialize(&cfg(30, 96, 11));
        for vm in 0..30 {
            for &u in t.series(vm) {
                assert!((0.01..=1.0).contains(&u), "utilization {u} out of range");
            }
        }
    }

    #[test]
    fn trace_reference_is_a_random_access_source() {
        let full = StreamingTrace::materialize(&cfg(4, 8, 2));
        let mut by_ref: &UtilizationTrace = &full;
        assert!(DemandSource::random_access(&by_ref));
        by_ref.advance_to(7); // no-op
        assert_eq!(
            DemandSource::demand_ghz(&by_ref, 1, 3).to_bits(),
            full.demand_ghz(1, 3).to_bits()
        );
    }
}
