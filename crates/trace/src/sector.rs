//! Industry sectors and their load shapes.
//!
//! The real trace spans "manufacturing, telecommunications, financial, and
//! retail sectors" (§VI-B). Each sector gets a characteristic diurnal
//! profile; the generator perturbs these per VM.

/// Industry sector of a traced VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sector {
    /// Manufacturing: flat-ish shift-based load, mild diurnal swing.
    Manufacturing,
    /// Telecommunications: high evening peak, substantial night load.
    Telecom,
    /// Financial: sharp business-hours peak, quiet weekends.
    Financial,
    /// Retail: daytime/evening peak, strong weekend activity.
    Retail,
}

/// Shape parameters of one sector's load profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SectorShape {
    /// Baseline utilization in `\[0, 1\]`.
    pub base: f64,
    /// Amplitude of the diurnal component.
    pub diurnal_amp: f64,
    /// Hour of day (0–24) at which load peaks.
    pub peak_hour: f64,
    /// Multiplier applied to the diurnal component on weekends.
    pub weekend_factor: f64,
    /// Standard deviation of the AR(1) noise component.
    pub noise_sd: f64,
    /// Per-sample probability of a flash-crowd spike.
    pub spike_prob: f64,
    /// Mean amplitude of a spike.
    pub spike_amp: f64,
}

impl Sector {
    /// All sectors, in a fixed order.
    pub const ALL: [Sector; 4] = [
        Sector::Manufacturing,
        Sector::Telecom,
        Sector::Financial,
        Sector::Retail,
    ];

    /// The sector's load shape.
    pub fn shape(&self) -> SectorShape {
        match self {
            Sector::Manufacturing => SectorShape {
                base: 0.32,
                diurnal_amp: 0.12,
                peak_hour: 11.0,
                weekend_factor: 0.75,
                noise_sd: 0.05,
                spike_prob: 0.002,
                spike_amp: 0.2,
            },
            Sector::Telecom => SectorShape {
                base: 0.30,
                diurnal_amp: 0.25,
                peak_hour: 20.0,
                weekend_factor: 0.95,
                noise_sd: 0.06,
                spike_prob: 0.004,
                spike_amp: 0.25,
            },
            Sector::Financial => SectorShape {
                base: 0.18,
                diurnal_amp: 0.35,
                peak_hour: 13.0,
                weekend_factor: 0.25,
                noise_sd: 0.05,
                spike_prob: 0.005,
                spike_amp: 0.3,
            },
            Sector::Retail => SectorShape {
                base: 0.22,
                diurnal_amp: 0.28,
                peak_hour: 17.0,
                weekend_factor: 1.25,
                noise_sd: 0.06,
                spike_prob: 0.006,
                spike_amp: 0.35,
            },
        }
    }

    /// Short stable name for CSV serialization.
    pub fn name(&self) -> &'static str {
        match self {
            Sector::Manufacturing => "manufacturing",
            Sector::Telecom => "telecom",
            Sector::Financial => "financial",
            Sector::Retail => "retail",
        }
    }

    /// Parse a [`Sector::name`] back.
    pub fn from_name(name: &str) -> Option<Sector> {
        Sector::ALL.iter().copied().find(|s| s.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_sane() {
        for s in Sector::ALL {
            let sh = s.shape();
            assert!(sh.base >= 0.0 && sh.base <= 1.0);
            assert!(sh.diurnal_amp >= 0.0 && sh.base + sh.diurnal_amp <= 1.0);
            assert!((0.0..24.0).contains(&sh.peak_hour));
            assert!(sh.weekend_factor >= 0.0);
            assert!(sh.noise_sd > 0.0);
            assert!((0.0..1.0).contains(&sh.spike_prob));
        }
    }

    #[test]
    fn name_roundtrip() {
        for s in Sector::ALL {
            assert_eq!(Sector::from_name(s.name()), Some(s));
        }
        assert_eq!(Sector::from_name("nonsense"), None);
    }

    #[test]
    fn financial_is_quiet_on_weekends() {
        assert!(Sector::Financial.shape().weekend_factor < 0.5);
        assert!(Sector::Retail.shape().weekend_factor > 1.0);
    }
}
