//! Property-based tests for trace generation and I/O.

use proptest::prelude::*;
use vdc_trace::{generate_trace, Sector, TraceConfig, UtilizationTrace, VmTraceMeta};

fn meta_strategy() -> impl Strategy<Value = VmTraceMeta> {
    (
        prop_oneof![
            Just(Sector::Manufacturing),
            Just(Sector::Telecom),
            Just(Sector::Financial),
            Just(Sector::Retail),
        ],
        0.5f64..8.0,
        128.0f64..8192.0,
    )
        .prop_map(|(sector, nominal_ghz, memory_mib)| VmTraceMeta {
            sector,
            nominal_ghz,
            memory_mib,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_utilization_always_in_unit_range(
        (n_vms, n_samples, seed) in (1usize..30, 1usize..200, 0u64..10_000)
    ) {
        let t = generate_trace(&TraceConfig {
            n_vms,
            n_samples,
            interval_s: 900.0,
            seed,
        });
        prop_assert_eq!(t.n_vms(), n_vms);
        prop_assert_eq!(t.n_samples(), n_samples);
        for vm in 0..n_vms {
            for &u in t.series(vm) {
                prop_assert!((0.0..=1.0).contains(&u));
            }
            prop_assert!(t.meta(vm).nominal_ghz > 0.0);
        }
    }

    #[test]
    fn csv_roundtrip_arbitrary_traces(
        (metas, n_samples, seed) in (
            proptest::collection::vec(meta_strategy(), 1..10),
            1usize..50,
            0u64..1000,
        )
    ) {
        // Build a trace with pseudo-random but valid utilizations.
        let n_vms = metas.len();
        let mut state = seed.wrapping_add(1);
        let mut data = Vec::with_capacity(n_vms * n_samples);
        for _ in 0..n_vms * n_samples {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            data.push(((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0));
        }
        let t = UtilizationTrace::from_parts(n_samples, 900.0, data, metas);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let parsed = UtilizationTrace::read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(parsed.n_vms(), t.n_vms());
        prop_assert_eq!(parsed.n_samples(), t.n_samples());
        for vm in 0..t.n_vms() {
            prop_assert_eq!(parsed.meta(vm).sector, t.meta(vm).sector);
            prop_assert!((parsed.meta(vm).nominal_ghz - t.meta(vm).nominal_ghz).abs() < 1e-9);
            for k in 0..n_samples {
                // 4-decimal CSV precision.
                prop_assert!((parsed.utilization(vm, k) - t.utilization(vm, k)).abs() < 5e-5);
            }
        }
    }

    #[test]
    fn head_preserves_prefix(
        (n_vms, keep, seed) in (2usize..20, 1usize..20, 0u64..1000)
    ) {
        let t = generate_trace(&TraceConfig {
            n_vms,
            n_samples: 24,
            interval_s: 900.0,
            seed,
        });
        let h = t.head(keep);
        prop_assert_eq!(h.n_vms(), keep.min(n_vms));
        for vm in 0..h.n_vms() {
            prop_assert_eq!(h.series(vm), t.series(vm));
        }
    }

    #[test]
    fn demand_is_utilization_times_nominal(
        (n_vms, seed, vm_pick, t_pick) in (1usize..10, 0u64..1000, 0usize..10, 0usize..30)
    ) {
        let t = generate_trace(&TraceConfig {
            n_vms,
            n_samples: 30,
            interval_s: 900.0,
            seed,
        });
        let vm = vm_pick % n_vms;
        let d = t.demand_ghz(vm, t_pick);
        let expect = t.utilization(vm, t_pick) * t.meta(vm).nominal_ghz;
        prop_assert!((d - expect).abs() < 1e-12);
        prop_assert!(d <= t.meta(vm).nominal_ghz + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Robustness: the CSV reader must reject or accept arbitrary junk
    /// without panicking.
    #[test]
    fn csv_reader_never_panics_on_junk(junk in ".{0,400}") {
        let _ = UtilizationTrace::read_csv(junk.as_bytes());
    }

    /// Header-shaped junk with arbitrary bodies must also be panic-free.
    #[test]
    fn csv_reader_never_panics_on_near_miss(body in ".{0,300}") {
        let input = format!("# vdcpower utilization trace: interval_s=900\n{body}\n");
        let _ = UtilizationTrace::read_csv(input.as_bytes());
    }
}
