//! Property-based tests for trace generation and I/O.

use vdc_check::{ascii_string, check, choose, from_fn, prop_assert, prop_assert_eq, Gen, TestRng};
use vdc_trace::{generate_trace, Sector, TraceConfig, UtilizationTrace, VmTraceMeta};

const CASES: u32 = 32;

fn gen_meta(rng: &mut TestRng) -> VmTraceMeta {
    let sector = choose(&[
        Sector::Manufacturing,
        Sector::Telecom,
        Sector::Financial,
        Sector::Retail,
    ])
    .generate(rng);
    VmTraceMeta {
        sector,
        nominal_ghz: rng.f64_in(0.5, 8.0),
        memory_mib: rng.f64_in(128.0, 8192.0),
    }
}

#[test]
fn generated_utilization_always_in_unit_range() {
    let gen = from_fn(|rng: &mut TestRng| {
        (
            rng.usize_in(1, 30),
            rng.usize_in(1, 200),
            rng.u64_in(0, 10_000),
        )
    });
    check(CASES, &gen, |&(n_vms, n_samples, seed)| {
        let t = generate_trace(&TraceConfig {
            n_vms,
            n_samples,
            interval_s: 900.0,
            seed,
        });
        prop_assert_eq!(t.n_vms(), n_vms);
        prop_assert_eq!(t.n_samples(), n_samples);
        for vm in 0..n_vms {
            for &u in t.series(vm) {
                prop_assert!((0.0..=1.0).contains(&u));
            }
            prop_assert!(t.meta(vm).nominal_ghz > 0.0);
        }
        Ok(())
    });
}

#[test]
fn csv_roundtrip_arbitrary_traces() {
    let gen = from_fn(|rng: &mut TestRng| {
        let n_vms = rng.usize_in(1, 10);
        let metas: Vec<VmTraceMeta> = (0..n_vms).map(|_| gen_meta(rng)).collect();
        (metas, rng.usize_in(1, 50), rng.u64_in(0, 1000))
    });
    check(CASES, &gen, |(metas, n_samples, seed)| {
        let (n_samples, seed) = (*n_samples, *seed);
        // Build a trace with pseudo-random but valid utilizations.
        let n_vms = metas.len();
        let mut state = seed.wrapping_add(1);
        let mut data = Vec::with_capacity(n_vms * n_samples);
        for _ in 0..n_vms * n_samples {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            data.push(((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0));
        }
        let t = UtilizationTrace::from_parts(n_samples, 900.0, data, metas.clone());
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let parsed = UtilizationTrace::read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(parsed.n_vms(), t.n_vms());
        prop_assert_eq!(parsed.n_samples(), t.n_samples());
        for vm in 0..t.n_vms() {
            prop_assert_eq!(parsed.meta(vm).sector, t.meta(vm).sector);
            prop_assert!((parsed.meta(vm).nominal_ghz - t.meta(vm).nominal_ghz).abs() < 1e-9);
            for k in 0..n_samples {
                // 4-decimal CSV precision.
                prop_assert!((parsed.utilization(vm, k) - t.utilization(vm, k)).abs() < 5e-5);
            }
        }
        Ok(())
    });
}

#[test]
fn head_preserves_prefix() {
    let gen = from_fn(|rng: &mut TestRng| {
        (
            rng.usize_in(2, 20),
            rng.usize_in(1, 20),
            rng.u64_in(0, 1000),
        )
    });
    check(CASES, &gen, |&(n_vms, keep, seed)| {
        let t = generate_trace(&TraceConfig {
            n_vms,
            n_samples: 24,
            interval_s: 900.0,
            seed,
        });
        let h = t.head(keep);
        prop_assert_eq!(h.n_vms(), keep.min(n_vms));
        for vm in 0..h.n_vms() {
            prop_assert_eq!(h.series(vm), t.series(vm));
        }
        Ok(())
    });
}

#[test]
fn demand_is_utilization_times_nominal() {
    let gen = from_fn(|rng: &mut TestRng| {
        (
            rng.usize_in(1, 10),
            rng.u64_in(0, 1000),
            rng.usize_in(0, 10),
            rng.usize_in(0, 30),
        )
    });
    check(CASES, &gen, |&(n_vms, seed, vm_pick, t_pick)| {
        let t = generate_trace(&TraceConfig {
            n_vms,
            n_samples: 30,
            interval_s: 900.0,
            seed,
        });
        let vm = vm_pick % n_vms;
        let d = t.demand_ghz(vm, t_pick);
        let expect = t.utilization(vm, t_pick) * t.meta(vm).nominal_ghz;
        prop_assert!((d - expect).abs() < 1e-12);
        prop_assert!(d <= t.meta(vm).nominal_ghz + 1e-12);
        Ok(())
    });
}

/// Robustness: the CSV reader must reject or accept arbitrary junk without
/// panicking.
#[test]
fn csv_reader_never_panics_on_junk() {
    check(128, &ascii_string(0, 400), |junk| {
        let _ = UtilizationTrace::read_csv(junk.as_bytes());
        Ok(())
    });
}

/// Header-shaped junk with arbitrary bodies must also be panic-free.
#[test]
fn csv_reader_never_panics_on_near_miss() {
    check(128, &ascii_string(0, 300), |body| {
        let input = format!("# vdcpower utilization trace: interval_s=900\n{body}\n");
        let _ = UtilizationTrace::read_csv(input.as_bytes());
        Ok(())
    });
}
