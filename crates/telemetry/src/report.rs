//! Leveled, human-facing progress reporting.
//!
//! The workspace convention (see DESIGN.md §"Telemetry"): **stdout is
//! reserved for machine-readable results** — figure tables, JSON paths,
//! CSV — while narration ("running 25 of 96…", run parameters, warnings)
//! goes through a [`Reporter`] to **stderr**, filtered by a verbosity
//! level. `--quiet` silences narration entirely; `--verbose` adds debug
//! detail; warnings always print.

use std::io::Write;

/// Verbosity of a [`Reporter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Warnings only.
    Quiet,
    /// Progress narration (the default).
    Info,
    /// Extra detail for debugging runs.
    Debug,
}

/// Writes leveled narration to stderr.
#[derive(Debug, Clone, Copy)]
pub struct Reporter {
    level: Level,
}

impl Default for Reporter {
    fn default() -> Self {
        Reporter::new(Level::Info)
    }
}

impl Reporter {
    /// Reporter at an explicit level.
    pub fn new(level: Level) -> Reporter {
        Reporter { level }
    }

    /// Reporter configured from command-line arguments: `--quiet`/`-q`
    /// selects [`Level::Quiet`], `--verbose`/`-v` selects [`Level::Debug`]
    /// (quiet wins when both are given), anything else [`Level::Info`].
    pub fn from_args(args: &[String]) -> Reporter {
        let has = |long: &str, short: &str| args.iter().any(|a| a == long || a == short);
        let level = if has("--quiet", "-q") {
            Level::Quiet
        } else if has("--verbose", "-v") {
            Level::Debug
        } else {
            Level::Info
        };
        Reporter::new(level)
    }

    /// The active verbosity level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// `true` when `level` messages would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        level <= self.level || level == Level::Quiet
    }

    fn emit(&self, prefix: &str, msg: &str) {
        // A failed stderr write (closed pipe) must not kill the run.
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{prefix}{msg}");
    }

    /// Progress narration; silenced by `--quiet`.
    pub fn info(&self, msg: &str) {
        if self.level >= Level::Info {
            self.emit("", msg);
        }
    }

    /// Debug detail; emitted only with `--verbose`.
    pub fn debug(&self, msg: &str) {
        if self.level >= Level::Debug {
            self.emit("debug: ", msg);
        }
    }

    /// Warning; always emitted, at every level.
    pub fn warn(&self, msg: &str) {
        self.emit("warning: ", msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn level_from_flags() {
        assert_eq!(Reporter::from_args(&args(&[])).level(), Level::Info);
        assert_eq!(
            Reporter::from_args(&args(&["--quiet"])).level(),
            Level::Quiet
        );
        assert_eq!(Reporter::from_args(&args(&["-q"])).level(), Level::Quiet);
        assert_eq!(
            Reporter::from_args(&args(&["--verbose"])).level(),
            Level::Debug
        );
        assert_eq!(Reporter::from_args(&args(&["-v"])).level(), Level::Debug);
        // Quiet wins over verbose.
        assert_eq!(
            Reporter::from_args(&args(&["-v", "--quiet"])).level(),
            Level::Quiet
        );
    }

    #[test]
    fn enabled_respects_ordering() {
        let quiet = Reporter::new(Level::Quiet);
        assert!(!quiet.enabled(Level::Info));
        assert!(!quiet.enabled(Level::Debug));
        let info = Reporter::new(Level::Info);
        assert!(info.enabled(Level::Info));
        assert!(!info.enabled(Level::Debug));
        let debug = Reporter::new(Level::Debug);
        assert!(debug.enabled(Level::Debug));
    }

    #[test]
    fn emitting_does_not_panic() {
        let r = Reporter::new(Level::Debug);
        r.info("info line");
        r.debug("debug line");
        r.warn("warn line");
        Reporter::new(Level::Quiet).info("silenced");
    }
}
