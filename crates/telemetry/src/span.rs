//! Lightweight timing spans over [`std::time::Instant`].
//!
//! A [`SpanTimer`] is a drop guard: it samples `Instant::now()` when
//! created and records the elapsed nanoseconds into a histogram when
//! dropped. The disabled path carries no clock read and no allocation —
//! [`crate::Telemetry::timer`] on a disabled handle returns an inert guard
//! whose drop is a no-op, so instrumentation left in hot loops costs a
//! branch when telemetry is off.
//!
//! Wall-clock readings flow only *into* the registry, never back into the
//! instrumented code, so spans cannot perturb simulation state or RNG
//! streams (the `tests/determinism.rs` contract).

use crate::registry::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// Drop guard that records its lifetime (in nanoseconds) into a histogram.
#[derive(Debug)]
#[must_use = "a span records on drop; binding to `_` drops it immediately"]
pub struct SpanTimer {
    /// `None` when telemetry is disabled: drop is then a no-op.
    armed: Option<(Instant, Arc<Histogram>)>,
}

impl SpanTimer {
    /// An inert guard (used by disabled telemetry handles).
    pub(crate) fn inert() -> SpanTimer {
        SpanTimer { armed: None }
    }

    /// A live guard recording into `sink` on drop.
    pub(crate) fn started(sink: Arc<Histogram>) -> SpanTimer {
        SpanTimer {
            armed: Some((Instant::now(), sink)),
        }
    }

    /// Stop the span early, recording now instead of at scope end.
    pub fn finish(mut self) {
        self.record_elapsed();
    }

    fn record_elapsed(&mut self) {
        if let Some((start, sink)) = self.armed.take() {
            sink.record(start.elapsed().as_nanos() as f64);
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.record_elapsed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_span_records_once() {
        let h = Arc::new(Histogram::default());
        {
            let _t = SpanTimer::started(Arc::clone(&h));
            std::hint::black_box(0u64);
        }
        assert_eq!(h.count(), 1);
        assert!(h.min().unwrap() >= 0.0);
    }

    #[test]
    fn finish_records_and_disarms() {
        let h = Arc::new(Histogram::default());
        let t = SpanTimer::started(Arc::clone(&h));
        t.finish();
        assert_eq!(h.count(), 1, "finish must record exactly once");
    }

    #[test]
    fn inert_span_is_a_noop() {
        let t = SpanTimer::inert();
        t.finish(); // must not panic or record anywhere
        let _ = SpanTimer::inert(); // drop path
    }
}
