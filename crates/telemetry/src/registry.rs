//! Thread-safe metric registry: counters, gauges, and log-bucketed
//! histograms.
//!
//! Everything is built on `std::sync` primitives so the workspace stays
//! hermetic. Hot-path updates touch only atomics (a counter increment is
//! one `fetch_add`; a histogram record is one `fetch_add` plus a handful
//! of CAS loops for min/max/sum); the registry lock is taken only when a
//! metric name is first seen, and instrumented call sites cache the
//! returned `Arc` handles where they can.
//!
//! Metric names follow a `layer.event[_unit]` convention (see DESIGN.md):
//! `mpc.qp_solve_ns`, `optimizer.migrations`, `cosim.sample_ns`. Snapshots
//! iterate a `BTreeMap`, so exports list metrics in sorted, deterministic
//! order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Sub-buckets per power of two in a [`Histogram`]: relative bucket width
/// `2^(1/8) − 1 ≈ 9 %`, comparable quantile error.
const SUBS_PER_OCTAVE: usize = 8;
/// Histogram range: `2^LOG2_MIN ≤ v < 2^LOG2_MAX` lands in a real bucket;
/// values outside clamp into the first/last bucket.
const LOG2_MIN: i32 = -16;
const LOG2_MAX: i32 = 48;
/// Total bucket count.
const N_BUCKETS: usize = ((LOG2_MAX - LOG2_MIN) as usize) * SUBS_PER_OCTAVE;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins `f64` gauge (stored as bits in an atomic).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Overwrite the gauge value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Lock-free log-bucketed histogram over non-negative `f64` samples.
///
/// Buckets are geometric with [`SUBS_PER_OCTAVE`] sub-buckets per octave,
/// so quantile estimates carry ≈ ±4.5 % relative error — plenty for
/// latency distributions spanning nanoseconds to seconds. Exact min, max,
/// sum, and count are tracked on the side.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of samples, as `f64` bits updated by CAS.
    sum_bits: AtomicU64,
    /// Minimum sample, as `f64` bits updated by CAS.
    min_bits: AtomicU64,
    /// Maximum sample, as `f64` bits updated by CAS.
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

/// Bucket index of a sample (clamped into range; non-positive and
/// non-finite values land in bucket 0).
fn bucket_of(v: f64) -> usize {
    if !(v.is_finite() && v > 0.0) {
        return 0;
    }
    let pos = (v.log2() - LOG2_MIN as f64) * SUBS_PER_OCTAVE as f64;
    (pos.floor().max(0.0) as usize).min(N_BUCKETS - 1)
}

/// Representative value of a bucket (geometric midpoint).
fn bucket_value(idx: usize) -> f64 {
    let log2 = LOG2_MIN as f64 + (idx as f64 + 0.5) / SUBS_PER_OCTAVE as f64;
    log2.exp2()
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: f64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_update(&self.sum_bits, |s| s + v);
        atomic_f64_update(&self.min_bits, |m| m.min(v));
        atomic_f64_update(&self.max_bits, |m| m.max(v));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        let m = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        m.is_finite().then_some(m)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        let m = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        m.is_finite().then_some(m)
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) from the buckets,
    /// clamped into the exact observed `[min, max]`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        // Rank of the q-quantile among n samples (nearest-rank, 1-based).
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let v = bucket_value(i);
                return Some(v.clamp(self.min()?, self.max()?));
            }
        }
        self.max()
    }
}

/// Update an `f64`-in-`AtomicU64` cell with a pure function, via CAS.
fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Point-in-time view of one histogram, used by exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Mean of samples.
    pub mean: f64,
    /// Estimated 50th percentile.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// Thread-safe registry of named metrics.
///
/// Names are created on first use; snapshotting walks sorted maps so the
/// export order is deterministic.
#[derive(Debug, Default)]
pub struct MetricRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Get-or-insert a metric handle by name.
fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(m) = map.read().expect("registry lock").get(name) {
        return Arc::clone(m);
    }
    let mut w = map.write().expect("registry lock");
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl MetricRegistry {
    /// New, empty registry.
    pub fn new() -> MetricRegistry {
        MetricRegistry::default()
    }

    /// Counter handle for `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// Gauge handle for `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// Histogram handle for `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// Sorted `(name, value)` snapshot of all counters.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Sorted `(name, value)` snapshot of all gauges.
    pub fn gauge_values(&self) -> Vec<(String, f64)> {
        self.gauges
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Sorted summaries of all non-empty histograms.
    pub fn histogram_summaries(&self) -> Vec<HistogramSummary> {
        self.histograms
            .read()
            .expect("registry lock")
            .iter()
            .filter(|(_, h)| h.count() > 0)
            .map(|(name, h)| HistogramSummary {
                name: name.clone(),
                count: h.count(),
                min: h.min().unwrap_or(0.0),
                max: h.max().unwrap_or(0.0),
                mean: h.mean(),
                p50: h.quantile(0.50).unwrap_or(0.0),
                p90: h.quantile(0.90).unwrap_or(0.0),
                p99: h.quantile(0.99).unwrap_or(0.0),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = MetricRegistry::new();
        r.counter("a.events").add(2);
        r.counter("a.events").add(3);
        r.gauge("a.level").set(1.5);
        r.gauge("a.level").set(-2.5);
        assert_eq!(r.counter_values(), vec![("a.events".to_string(), 5)]);
        assert_eq!(r.gauge_values(), vec![("a.level".to_string(), -2.5)]);
    }

    #[test]
    fn histogram_quantiles_bound_error() {
        let h = Histogram::default();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(1000.0));
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Log-bucketing gives ~±9 % relative error at worst.
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((p50 / 500.0 - 1.0).abs() < 0.10, "p50 {p50}");
        assert!((p90 / 900.0 - 1.0).abs() < 0.10, "p90 {p90}");
        assert!((p99 / 990.0 - 1.0).abs() < 0.10, "p99 {p99}");
        assert!(p50 <= p90 && p90 <= p99);
    }

    #[test]
    fn histogram_handles_degenerate_samples() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        // Degenerate samples land in bucket 0 and are clamped by min/max.
        assert_eq!(h.count(), 3);
        let q = h.quantile(0.5).unwrap();
        assert!(q.is_finite());
    }

    #[test]
    fn histogram_extreme_range() {
        let h = Histogram::default();
        h.record(1e-9); // below 2^-16: clamps to first bucket
        h.record(1e18); // above 2^48: clamps to last bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(1e-9));
        assert_eq!(h.max(), Some(1e18));
        // Quantiles stay inside the exact observed range.
        let p99 = h.quantile(0.99).unwrap();
        assert!((1e-9..=1e18).contains(&p99));
    }

    #[test]
    fn registry_is_sharable_across_threads() {
        let r = Arc::new(MetricRegistry::new());
        let c = r.counter("t.hits");
        let h = r.histogram("t.ns");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        c.add(1);
                        h.record(1.0 + i as f64);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        let summaries = r.histogram_summaries();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].name, "t.ns");
    }

    #[test]
    fn empty_histograms_are_omitted_from_summaries() {
        let r = MetricRegistry::new();
        let _ = r.histogram("never.recorded");
        assert!(r.histogram_summaries().is_empty());
    }
}
