//! Per-application SLO accounting.
//!
//! The paper's performance-assurance claim is about the measured
//! 90-percentile response time `t_i` of each application staying at its
//! SLA set point `Ts` (§III). This module keeps one streaming accountant
//! per application: a log-bucketed histogram of measurements (for p50 /
//! p90 / p99 extraction), a violation counter, time spent in violation,
//! and the longest run of consecutive violating samples — the "violation
//! window" a capacity planner cares about.

use crate::registry::Histogram;
use std::collections::BTreeMap;

/// Streaming SLO statistics for one application.
#[derive(Debug)]
pub struct SloEntry {
    /// SLA set point `Ts` the measurements are judged against (ms).
    pub setpoint_ms: f64,
    /// Distribution of measurements (ms).
    pub hist: Histogram,
    /// Samples whose measurement exceeded `Ts`.
    pub violations: u64,
    /// Accumulated wall time of violating samples (s).
    pub time_in_violation_s: f64,
    /// Accumulated observed time (s).
    pub observed_s: f64,
    /// Length of the current run of consecutive violating samples.
    current_window: u64,
    /// Longest run of consecutive violating samples seen so far.
    pub longest_violation_window: u64,
}

impl SloEntry {
    fn new(setpoint_ms: f64) -> SloEntry {
        SloEntry {
            setpoint_ms,
            hist: Histogram::default(),
            violations: 0,
            time_in_violation_s: 0.0,
            observed_s: 0.0,
            current_window: 0,
            longest_violation_window: 0,
        }
    }

    fn observe(&mut self, measured_ms: f64, dt_s: f64) {
        self.hist.record(measured_ms);
        self.observed_s += dt_s;
        if measured_ms > self.setpoint_ms {
            self.violations += 1;
            self.time_in_violation_s += dt_s;
            self.current_window += 1;
            self.longest_violation_window = self.longest_violation_window.max(self.current_window);
        } else {
            self.current_window = 0;
        }
    }

    /// Fraction of samples violating the set point (0 when empty).
    pub fn violation_fraction(&self) -> f64 {
        let n = self.hist.count();
        if n == 0 {
            0.0
        } else {
            self.violations as f64 / n as f64
        }
    }
}

/// SLO accountant over a set of applications keyed by index.
#[derive(Debug, Default)]
pub struct SloAccountant {
    apps: BTreeMap<u32, SloEntry>,
}

impl SloAccountant {
    /// Empty accountant.
    pub fn new() -> SloAccountant {
        SloAccountant::default()
    }

    /// Record one measurement for `app`: `measured_ms` against
    /// `setpoint_ms`, covering `dt_s` seconds of operation. The set point
    /// of an application is fixed by its first observation (a later,
    /// different set point updates it for subsequent judgments — the
    /// Fig. 5 sweep changes `Ts` at run time).
    pub fn observe(&mut self, app: u32, setpoint_ms: f64, measured_ms: f64, dt_s: f64) {
        let entry = self
            .apps
            .entry(app)
            .or_insert_with(|| SloEntry::new(setpoint_ms));
        entry.setpoint_ms = setpoint_ms;
        entry.observe(measured_ms, dt_s);
    }

    /// Number of applications with at least one observation.
    pub fn n_apps(&self) -> usize {
        self.apps.len()
    }

    /// Iterate `(app, entry)` in app order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &SloEntry)> {
        self.apps.iter().map(|(&k, v)| (k, v))
    }

    /// Entry for one application, if observed.
    pub fn entry(&self, app: u32) -> Option<&SloEntry> {
        self.apps.get(&app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_violations_and_windows() {
        let mut s = SloAccountant::new();
        // Pattern: ok, viol, viol, viol, ok, viol — longest window 3.
        for (i, ms) in [900.0, 1100.0, 1200.0, 1050.0, 800.0, 1500.0]
            .iter()
            .enumerate()
        {
            let _ = i;
            s.observe(7, 1000.0, *ms, 2.0);
        }
        let e = s.entry(7).unwrap();
        assert_eq!(e.violations, 4);
        assert_eq!(e.longest_violation_window, 3);
        assert!((e.time_in_violation_s - 8.0).abs() < 1e-12);
        assert!((e.observed_s - 12.0).abs() < 1e-12);
        assert!((e.violation_fraction() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(e.hist.count(), 6);
    }

    #[test]
    fn apps_are_independent_and_sorted() {
        let mut s = SloAccountant::new();
        s.observe(3, 500.0, 600.0, 1.0);
        s.observe(1, 500.0, 400.0, 1.0);
        s.observe(3, 500.0, 450.0, 1.0);
        assert_eq!(s.n_apps(), 2);
        let order: Vec<u32> = s.iter().map(|(a, _)| a).collect();
        assert_eq!(order, vec![1, 3]);
        assert_eq!(s.entry(1).unwrap().violations, 0);
        assert_eq!(s.entry(3).unwrap().violations, 1);
        assert!(s.entry(9).is_none());
    }

    #[test]
    fn p90_tracks_the_distribution() {
        let mut s = SloAccountant::new();
        for i in 1..=100 {
            s.observe(0, 95.0, i as f64, 1.0);
        }
        let e = s.entry(0).unwrap();
        let p90 = e.hist.quantile(0.9).unwrap();
        assert!((p90 / 90.0 - 1.0).abs() < 0.10, "p90 {p90}");
        assert_eq!(e.violations, 5); // 96..=100
    }
}
