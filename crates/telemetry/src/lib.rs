//! `vdc-telemetry`: hermetic, std-only observability for the power /
//! performance management stack.
//!
//! The paper's claims are measured trajectories — 90-percentile response
//! time against the SLA `Ts`, energy per VM over a week, DVFS decisions
//! per arbitrator period — so the runtime needs an instrumentation layer
//! that can account for them without perturbing the simulation. This
//! crate provides:
//!
//! * a thread-safe **metric registry** ([`registry`]): counters, gauges,
//!   and log-bucketed histograms with p50/p90/p99 extraction, all on
//!   `std::sync` atomics;
//! * **spans** ([`span`]): `Instant`-based drop-guard timers whose
//!   disabled path performs no clock read;
//! * **SLO accounting** ([`slo`]): per-application `t_i` vs `Ts`
//!   distributions, violation counts, windows, and time-in-violation;
//! * **exporters** ([`export`]): `results/METRICS_<run>.json` / `.tsv`
//!   through the workspace's hand-rolled JSON writer;
//! * a leveled **reporter** ([`report`]) so human narration goes to
//!   stderr behind `--quiet` / `--verbose` while stdout stays
//!   machine-readable.
//!
//! The entry point is the cheap, cloneable [`Telemetry`] handle. A
//! disabled handle (the default everywhere) turns every call into a
//! branch on a `None`; an enabled handle shares one registry across every
//! clone, so controllers, optimizers, and simulation loops all feed the
//! same export. Telemetry reads wall-clock time but never feeds anything
//! back into the instrumented code, so enabling it cannot change
//! simulation state or RNG streams (enforced by `tests/determinism.rs`).
//!
//! ```
//! use vdc_telemetry::Telemetry;
//!
//! let t = Telemetry::enabled();
//! t.incr("demo.events", 2);
//! {
//!     let _span = t.timer("demo.step_ns");
//!     // ... timed work ...
//! }
//! t.slo_observe(0, 1000.0, 850.0, 4.0);
//! let doc = vdc_telemetry::export::render_json(&t, "demo");
//! assert!(doc.contains("\"demo.events\":2"));
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod registry;
pub mod report;
pub mod slo;
pub mod span;

pub use registry::{Counter, Gauge, Histogram, HistogramSummary, MetricRegistry};
pub use report::{Level, Reporter};
pub use slo::{SloAccountant, SloEntry};
pub use span::SpanTimer;

use std::sync::{Arc, Mutex};

/// Shared state behind an enabled [`Telemetry`] handle.
#[derive(Debug, Default)]
struct Inner {
    metrics: MetricRegistry,
    slo: Mutex<SloAccountant>,
}

/// Cheap, cloneable telemetry handle.
///
/// All clones of an enabled handle share one registry; a disabled handle
/// makes every operation a no-op (no clock reads, no locks, no
/// allocation). Instrumented components hold a `Telemetry` by value and
/// default to [`Telemetry::disabled`].
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Point-in-time SLO summary for one application (see [`Telemetry::slo_snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SloSummary {
    /// Application index.
    pub app: u32,
    /// SLA set point `Ts` (ms).
    pub setpoint_ms: f64,
    /// Number of measurements.
    pub samples: u64,
    /// Mean measurement (ms).
    pub mean_ms: f64,
    /// Estimated p50 measurement (ms).
    pub p50_ms: f64,
    /// Estimated p90 measurement (ms) — the paper's controlled statistic.
    pub p90_ms: f64,
    /// Estimated p99 measurement (ms).
    pub p99_ms: f64,
    /// Measurements above `Ts`.
    pub violations: u64,
    /// `violations / samples`.
    pub violation_fraction: f64,
    /// Wall time spent in violation (s).
    pub time_in_violation_s: f64,
    /// Total observed wall time (s).
    pub observed_s: f64,
    /// Longest run of consecutive violating samples.
    pub longest_violation_window: u64,
}

impl Telemetry {
    /// A live handle with a fresh, empty registry.
    pub fn enabled() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner::default())),
        }
    }

    /// A no-op handle: every operation is a branch and nothing else.
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `n` to the counter `name`.
    pub fn incr(&self, name: &str, n: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter(name).add(n);
        }
    }

    /// Set the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge(name).set(v);
        }
    }

    /// Record sample `v` into the histogram `name`.
    pub fn record(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner.metrics.histogram(name).record(v);
        }
    }

    /// Start a span recording elapsed nanoseconds into the histogram
    /// `name` when the returned guard drops. On a disabled handle the
    /// guard is inert and no clock is read.
    pub fn timer(&self, name: &str) -> SpanTimer {
        match &self.inner {
            Some(inner) => SpanTimer::started(inner.metrics.histogram(name)),
            None => SpanTimer::inert(),
        }
    }

    /// Record one SLO measurement for `app` (see [`SloAccountant::observe`]).
    pub fn slo_observe(&self, app: u32, setpoint_ms: f64, measured_ms: f64, dt_s: f64) {
        if let Some(inner) = &self.inner {
            inner
                .slo
                .lock()
                .expect("slo lock")
                .observe(app, setpoint_ms, measured_ms, dt_s);
        }
    }

    /// Sorted counter snapshot (empty when disabled).
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.inner
            .as_ref()
            .map(|i| i.metrics.counter_values())
            .unwrap_or_default()
    }

    /// Sorted gauge snapshot (empty when disabled).
    pub fn gauge_values(&self) -> Vec<(String, f64)> {
        self.inner
            .as_ref()
            .map(|i| i.metrics.gauge_values())
            .unwrap_or_default()
    }

    /// Sorted summaries of non-empty histograms (empty when disabled).
    pub fn histogram_summaries(&self) -> Vec<HistogramSummary> {
        self.inner
            .as_ref()
            .map(|i| i.metrics.histogram_summaries())
            .unwrap_or_default()
    }

    /// Per-application SLO summaries in app order (empty when disabled).
    pub fn slo_snapshot(&self) -> Vec<SloSummary> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let slo = inner.slo.lock().expect("slo lock");
        slo.iter()
            .map(|(app, e)| SloSummary {
                app,
                setpoint_ms: e.setpoint_ms,
                samples: e.hist.count(),
                mean_ms: e.hist.mean(),
                p50_ms: e.hist.quantile(0.50).unwrap_or(0.0),
                p90_ms: e.hist.quantile(0.90).unwrap_or(0.0),
                p99_ms: e.hist.quantile(0.99).unwrap_or(0.0),
                violations: e.violations,
                violation_fraction: e.violation_fraction(),
                time_in_violation_s: e.time_in_violation_s,
                observed_s: e.observed_s,
                longest_violation_window: e.longest_violation_window,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.incr("x", 1);
        t.gauge_set("x", 1.0);
        t.record("x", 1.0);
        t.slo_observe(0, 1.0, 2.0, 1.0);
        let _span = t.timer("x");
        assert!(t.counter_values().is_empty());
        assert!(t.gauge_values().is_empty());
        assert!(t.histogram_summaries().is_empty());
        assert!(t.slo_snapshot().is_empty());
    }

    #[test]
    fn clones_share_one_registry() {
        let t = Telemetry::enabled();
        let u = t.clone();
        t.incr("shared.hits", 1);
        u.incr("shared.hits", 2);
        {
            let _span = u.timer("shared.ns");
        }
        assert_eq!(t.counter_values(), vec![("shared.hits".to_string(), 3)]);
        assert_eq!(t.histogram_summaries().len(), 1);
    }

    #[test]
    fn slo_snapshot_reports_p90_and_windows() {
        let t = Telemetry::enabled();
        for ms in [500.0, 1500.0, 1600.0, 700.0] {
            t.slo_observe(3, 1000.0, ms, 2.0);
        }
        let snap = t.slo_snapshot();
        assert_eq!(snap.len(), 1);
        let s = &snap[0];
        assert_eq!(s.app, 3);
        assert_eq!(s.samples, 4);
        assert_eq!(s.violations, 2);
        assert_eq!(s.longest_violation_window, 2);
        assert!((s.violation_fraction - 0.5).abs() < 1e-12);
        assert!((s.time_in_violation_s - 4.0).abs() < 1e-12);
        assert!(s.p90_ms > 1000.0);
    }

    #[test]
    fn debug_format_shows_state() {
        assert_eq!(
            format!("{:?}", Telemetry::disabled()),
            "Telemetry { enabled: false }"
        );
        assert_eq!(
            format!("{:?}", Telemetry::enabled()),
            "Telemetry { enabled: true }"
        );
    }
}
