//! Exporters: render a [`Telemetry`] handle's state as the
//! `results/METRICS_<run>.json` / `.tsv` documents.
//!
//! The JSON is emitted through the workspace's hand-rolled writer
//! (`vdc_dcsim::json`), same as `results/BENCH_*.json`, so downstream
//! tooling reads one dialect. The TSV is a flat
//! `kind<TAB>name<TAB>field<TAB>value` table for spreadsheet/awk use.
//! Schema id: `vdc-metrics/1`.
//!
//! This shape is a CI contract: `tools/results_gate` re-parses these
//! documents against the committed `results/` baselines on every run and
//! hard-fails on schema drift, so a change here must come with a schema
//! bump and a `results_gate --bless`.

use crate::Telemetry;
use vdc_dcsim::json::{array, num, JsonObject};

/// Schema identifier stamped into every metrics document.
pub const SCHEMA: &str = "vdc-metrics/1";

/// Render the metrics document as JSON.
///
/// Metric order is deterministic (sorted by name; SLO entries by app id),
/// so same-seed runs produce byte-identical documents up to timing values.
pub fn render_json(t: &Telemetry, run: &str) -> String {
    let mut counters = JsonObject::new();
    for (name, v) in t.counter_values() {
        counters = counters.int(&name, v as i64);
    }
    let mut gauges = JsonObject::new();
    for (name, v) in t.gauge_values() {
        gauges = gauges.num(&name, v);
    }
    let histograms: Vec<String> = t
        .histogram_summaries()
        .iter()
        .map(|h| {
            JsonObject::new()
                .str("name", &h.name)
                .int("count", h.count as i64)
                .num("min", h.min)
                .num("max", h.max)
                .num("mean", h.mean)
                .num("p50", h.p50)
                .num("p90", h.p90)
                .num("p99", h.p99)
                .build()
        })
        .collect();
    let slo: Vec<String> = t
        .slo_snapshot()
        .iter()
        .map(|e| {
            JsonObject::new()
                .int("app", e.app as i64)
                .num("setpoint_ms", e.setpoint_ms)
                .int("samples", e.samples as i64)
                .num("mean_ms", e.mean_ms)
                .num("p50_ms", e.p50_ms)
                .num("p90_ms", e.p90_ms)
                .num("p99_ms", e.p99_ms)
                .int("violations", e.violations as i64)
                .num("violation_fraction", e.violation_fraction)
                .num("time_in_violation_s", e.time_in_violation_s)
                .num("observed_s", e.observed_s)
                .int(
                    "longest_violation_window",
                    e.longest_violation_window as i64,
                )
                .build()
        })
        .collect();
    JsonObject::new()
        .str("schema", SCHEMA)
        .str("run", run)
        .raw("counters", &counters.build())
        .raw("gauges", &gauges.build())
        .raw("histograms", &array(&histograms))
        .raw("slo", &array(&slo))
        .build()
}

/// Render the metrics document as TSV (`kind name field value` columns).
pub fn render_tsv(t: &Telemetry, run: &str) -> String {
    let mut out = String::from("kind\tname\tfield\tvalue\n");
    let mut push = |kind: &str, name: &str, field: &str, value: &str| {
        out.push_str(&format!("{kind}\t{name}\t{field}\t{value}\n"));
    };
    push("meta", run, "schema", SCHEMA);
    for (name, v) in t.counter_values() {
        push("counter", &name, "value", &v.to_string());
    }
    for (name, v) in t.gauge_values() {
        push("gauge", &name, "value", &num(v));
    }
    for h in t.histogram_summaries() {
        push("histogram", &h.name, "count", &h.count.to_string());
        for (field, v) in [
            ("min", h.min),
            ("max", h.max),
            ("mean", h.mean),
            ("p50", h.p50),
            ("p90", h.p90),
            ("p99", h.p99),
        ] {
            push("histogram", &h.name, field, &num(v));
        }
    }
    for e in t.slo_snapshot() {
        let name = format!("app{}", e.app);
        push("slo", &name, "setpoint_ms", &num(e.setpoint_ms));
        push("slo", &name, "samples", &e.samples.to_string());
        push("slo", &name, "p90_ms", &num(e.p90_ms));
        push("slo", &name, "violations", &e.violations.to_string());
        push(
            "slo",
            &name,
            "violation_fraction",
            &num(e.violation_fraction),
        );
        push(
            "slo",
            &name,
            "time_in_violation_s",
            &num(e.time_in_violation_s),
        );
        push(
            "slo",
            &name,
            "longest_violation_window",
            &e.longest_violation_window.to_string(),
        );
    }
    out
}

/// Write `METRICS_<run>.json` and `METRICS_<run>.tsv` under `out_dir`
/// (created if missing). Returns the JSON path.
pub fn write_metrics(t: &Telemetry, run: &str, out_dir: &str) -> std::io::Result<String> {
    std::fs::create_dir_all(out_dir)?;
    let json_path = format!("{out_dir}/METRICS_{run}.json");
    std::fs::write(&json_path, render_json(t, run) + "\n")?;
    let tsv_path = format!("{out_dir}/METRICS_{run}.tsv");
    std::fs::write(&tsv_path, render_tsv(t, run))?;
    Ok(json_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> Telemetry {
        let t = Telemetry::enabled();
        t.incr("mpc.steps", 12);
        t.gauge_set("cosim.total_energy_wh", 345.5);
        t.record("mpc.qp_solve_ns", 1500.0);
        t.record("mpc.qp_solve_ns", 2500.0);
        t.slo_observe(0, 1000.0, 900.0, 4.0);
        t.slo_observe(0, 1000.0, 1100.0, 4.0);
        t
    }

    #[test]
    fn json_document_contains_all_sections() {
        let doc = render_json(&populated(), "unit");
        for key in [
            "\"schema\":\"vdc-metrics/1\"",
            "\"run\":\"unit\"",
            "\"counters\":{\"mpc.steps\":12}",
            "\"cosim.total_energy_wh\":345.5",
            "\"name\":\"mpc.qp_solve_ns\"",
            "\"p90\":",
            "\"slo\":[{\"app\":0",
            "\"violations\":1",
        ] {
            assert!(doc.contains(key), "missing {key} in {doc}");
        }
    }

    #[test]
    fn disabled_handle_renders_empty_document() {
        let doc = render_json(&Telemetry::disabled(), "empty");
        assert!(doc.contains("\"counters\":{}"));
        assert!(doc.contains("\"histograms\":[]"));
        assert!(doc.contains("\"slo\":[]"));
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let tsv = render_tsv(&populated(), "unit");
        let mut lines = tsv.lines();
        assert_eq!(lines.next(), Some("kind\tname\tfield\tvalue"));
        assert!(tsv.contains("counter\tmpc.steps\tvalue\t12"));
        assert!(tsv.contains("gauge\tcosim.total_energy_wh\tvalue\t345.5"));
        assert!(tsv.contains("histogram\tmpc.qp_solve_ns\tcount\t2"));
        assert!(tsv.contains("slo\tapp0\tviolations\t1"));
        // Every row has exactly four tab-separated columns.
        for line in tsv.lines() {
            assert_eq!(line.split('\t').count(), 4, "bad row {line:?}");
        }
    }

    #[test]
    fn metrics_document_round_trips_through_the_workspace_parser() {
        use vdc_dcsim::json::JsonValue;
        let t = populated();
        let doc = render_json(&t, "roundtrip");
        let v = JsonValue::parse(&doc).expect("emitted document parses");
        assert_eq!(v.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(v.get("run").unwrap().as_str(), Some("roundtrip"));
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("mpc.steps")
                .unwrap()
                .as_f64(),
            Some(12.0)
        );
        assert_eq!(
            v.get("gauges")
                .unwrap()
                .get("cosim.total_energy_wh")
                .unwrap()
                .as_f64(),
            Some(345.5)
        );
        let hists = v.get("histograms").unwrap().as_array().unwrap();
        let h = &hists[0];
        assert_eq!(h.get("name").unwrap().as_str(), Some("mpc.qp_solve_ns"));
        assert_eq!(h.get("count").unwrap().as_f64(), Some(2.0));
        let slo = v.get("slo").unwrap().as_array().unwrap();
        assert_eq!(slo.len(), 1);
        assert_eq!(slo[0].get("violations").unwrap().as_f64(), Some(1.0));
        // The parsed summary values match the in-memory snapshot exactly.
        let summary = &t.histogram_summaries()[0];
        assert_eq!(h.get("p90").unwrap().as_f64(), Some(summary.p90));
        assert_eq!(h.get("mean").unwrap().as_f64(), Some(summary.mean));
    }

    #[test]
    fn non_finite_observations_keep_the_document_parseable() {
        use vdc_dcsim::json::JsonValue;
        // NaN samples and non-finite gauges must never leak bare NaN/inf
        // tokens into the document — they render as null (a JSON number
        // cannot be non-finite).
        let t = Telemetry::enabled();
        t.record("edge.hist_ns", f64::NAN);
        t.gauge_set("edge.gauge", f64::INFINITY);
        let doc = render_json(&t, "edge");
        let v = JsonValue::parse(&doc).expect("document parses");
        for token in ["NaN", "inf"] {
            assert!(!doc.contains(token), "{token} leaked: {doc}");
        }
        assert_eq!(
            v.get("gauges").unwrap().get("edge.gauge"),
            Some(&JsonValue::Null)
        );
    }

    #[test]
    fn write_metrics_creates_both_files() {
        let dir = std::env::temp_dir().join("vdc-telemetry-export-test");
        let dir_s = dir.to_str().unwrap();
        let json_path = write_metrics(&populated(), "selftest", dir_s).unwrap();
        assert!(json_path.ends_with("METRICS_selftest.json"));
        let body = std::fs::read_to_string(&json_path).unwrap();
        assert!(body.ends_with("}\n"));
        let tsv = std::fs::read_to_string(dir.join("METRICS_selftest.tsv")).unwrap();
        assert!(tsv.starts_with("kind\t"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
