//! Property-based pod-partition laws: for *arbitrary* site layouts and
//! pod sizes, [`vdc_core::pod_partition`] must produce a true partition
//! (every server in exactly one pod), never straddle a site boundary, and
//! hit the documented pod-count formula for site-grouped fleets. On top
//! of the combinatorial laws, the degenerate configuration — a pod at
//! least as large as the fleet — must make the hierarchical optimizer
//! bitwise indistinguishable from flat planning. Failures replay with
//! `VDC_CHECK_SEED`.

use vdc_check::{check, from_fn, prop_assert, prop_assert_eq, Gen, TestRng};
use vdc_core::largescale::{run_large_scale, LargeScaleConfig, OptimizerKind};
use vdc_core::{pod_partition, RunOptions};
use vdc_trace::{generate_trace, TraceConfig};

const CASES: u32 = 48;

/// A site-grouped fleet layout: `site_lens[s]` servers at site `s`, laid
/// out contiguously — the only layout `FleetSpec` produces.
#[derive(Debug, Clone)]
struct Layout {
    site_lens: Vec<usize>,
    pod_size: usize,
}

fn layout() -> impl Gen<Value = Layout> {
    from_fn(|rng: &mut TestRng| {
        let n_sites = rng.usize_in(1, 4);
        let site_lens = (0..n_sites).map(|_| rng.usize_in(0, 20)).collect();
        Layout {
            site_lens,
            pod_size: rng.usize_in(1, 12),
        }
    })
}

fn sites_of(layout: &Layout) -> Vec<usize> {
    let mut sites = Vec::new();
    for (s, &len) in layout.site_lens.iter().enumerate() {
        sites.extend(std::iter::repeat(s).take(len));
    }
    sites
}

#[test]
fn pods_partition_the_fleet_exactly() {
    check(CASES, &layout(), |l| {
        let sites = sites_of(&l);
        let pods = pod_partition(&sites, l.pod_size);
        // Every server in exactly one pod: the ranges chain seamlessly
        // from 0 to n with no gap, overlap, or empty pod.
        let mut next = 0usize;
        for pod in &pods {
            prop_assert_eq!(pod.start, next, "pods must chain without gaps");
            prop_assert!(pod.end > pod.start, "pods must be non-empty");
            prop_assert!(
                pod.end - pod.start <= l.pod_size,
                "pod exceeds pod_size {}",
                l.pod_size
            );
            next = pod.end;
        }
        prop_assert_eq!(next, sites.len(), "pods must cover the whole fleet");
        Ok(())
    });
}

#[test]
fn pods_never_straddle_sites() {
    check(CASES, &layout(), |l| {
        let sites = sites_of(&l);
        for pod in pod_partition(&sites, l.pod_size) {
            let site = sites[pod.start];
            prop_assert!(
                sites[pod.clone()].iter().all(|&s| s == site),
                "pod {:?} straddles a site boundary",
                pod
            );
        }
        Ok(())
    });
}

#[test]
fn pod_count_is_ceil_per_site() {
    check(CASES, &layout(), |l| {
        let sites = sites_of(&l);
        let pods = pod_partition(&sites, l.pod_size);
        let expected: usize = l
            .site_lens
            .iter()
            .map(|&len| len.div_ceil(l.pod_size))
            .sum();
        prop_assert_eq!(
            pods.len(),
            expected,
            "site-grouped fleet: pod count must be sum of per-site ceils \
             (site_lens {:?}, pod_size {})",
            &l.site_lens,
            l.pod_size
        );
        Ok(())
    });
}

/// Shrinkable run configuration for the degeneracy property; mirrors
/// `proptest_sharding.rs` so a failing case prints as a few numbers.
#[derive(Debug, Clone)]
struct Instance {
    trace_cfg: TraceConfig,
    cfg: LargeScaleConfig,
}

fn instance() -> impl Gen<Value = Instance> {
    from_fn(|rng: &mut TestRng| {
        let n_vms = rng.usize_in(1, 16);
        let trace_cfg = TraceConfig {
            n_vms,
            n_samples: rng.usize_in(4, 24),
            interval_s: 900.0,
            seed: rng.u64_in(0, u64::MAX - 1),
        };
        let mut cfg = LargeScaleConfig::new(
            n_vms,
            if rng.usize_in(0, 1) == 0 {
                OptimizerKind::Ipac
            } else {
                OptimizerKind::Pmapper
            },
        );
        if rng.usize_in(0, 1) == 0 {
            cfg.n_servers = Some(rng.usize_in(2, 10));
        }
        cfg.optimizer_period_samples = rng.usize_in(1, 8);
        cfg.seed = rng.u64_in(0, u64::MAX - 1);
        Instance { trace_cfg, cfg }
    })
}

#[test]
fn whole_fleet_pod_degenerates_to_flat() {
    check(CASES, &instance(), |inst| {
        let trace = generate_trace(&inst.trace_cfg);
        let flat = run_large_scale(&trace, &inst.cfg, &RunOptions::default()).expect("flat run");
        // A pod at least as large as any fleet this instance can build:
        // one pod spans everything, so routing, packing, spill, rebalance,
        // and drain must all collapse to the flat code path's answer.
        let hier = run_large_scale(
            &trace,
            &inst.cfg,
            &RunOptions::default().with_pods(usize::MAX),
        )
        .expect("hierarchical run");
        let ctx = format!(
            "n_vms={} servers={:?} seed={:#x}",
            inst.cfg.n_vms, inst.cfg.n_servers, inst.trace_cfg.seed
        );
        prop_assert_eq!(
            flat.total_energy_wh.to_bits(),
            hier.total_energy_wh.to_bits(),
            "{ctx}: total energy"
        );
        prop_assert_eq!(
            flat.sla_violation_fraction.to_bits(),
            hier.sla_violation_fraction.to_bits(),
            "{ctx}: SLA fraction"
        );
        prop_assert_eq!(
            flat.mean_active_servers.to_bits(),
            hier.mean_active_servers.to_bits(),
            "{ctx}: mean active servers"
        );
        prop_assert_eq!(flat.migrations, hier.migrations, "{ctx}: migrations");
        prop_assert_eq!(
            flat.wake_energy_wh.to_bits(),
            hier.wake_energy_wh.to_bits(),
            "{ctx}: wake energy"
        );
        prop_assert_eq!(
            &flat.final_placements,
            &hier.final_placements,
            "{ctx}: final placements"
        );
        Ok(())
    });
}
