//! Property-based shard equivalence: for *arbitrary* small configurations
//! (VM count, fleet size, trace seed, optimizer kind) and an *arbitrary*
//! shard count, `run_large_scale` must be bit-identical to the
//! single-threaded run. The example-based suite (`tests/sharding.rs`)
//! pins specific shard counts; this one walks the configuration space so
//! a shard-dependence that only shows up at, say, 7 VMs on 3 servers
//! still gets caught. Failures replay with `VDC_CHECK_SEED`.

use vdc_check::{check, from_fn, prop_assert_eq, Gen, TestRng};
use vdc_core::largescale::{run_large_scale, LargeScaleConfig, OptimizerKind};
use vdc_core::RunOptions;
use vdc_trace::{generate_trace, TraceConfig};

const CASES: u32 = 24;

/// Shrinkable instance: the trace is regenerated from its config inside
/// the property, so a failing case prints as a few numbers, not a week of
/// samples.
#[derive(Debug, Clone)]
struct Instance {
    trace_cfg: TraceConfig,
    cfg: LargeScaleConfig,
    shards: usize,
}

fn instance() -> impl Gen<Value = Instance> {
    from_fn(|rng: &mut TestRng| {
        let n_vms = rng.usize_in(1, 16);
        let trace_cfg = TraceConfig {
            n_vms,
            n_samples: rng.usize_in(4, 24),
            interval_s: 900.0,
            seed: rng.u64_in(0, u64::MAX - 1),
        };
        let mut cfg = LargeScaleConfig::new(
            n_vms,
            if rng.usize_in(0, 1) == 0 {
                OptimizerKind::Ipac
            } else {
                OptimizerKind::Pmapper
            },
        );
        // Half the cases pin a tight fleet (overload-relief pressure),
        // half auto-size.
        if rng.usize_in(0, 1) == 0 {
            cfg.n_servers = Some(rng.usize_in(2, 10));
        }
        cfg.optimizer_period_samples = rng.usize_in(1, 8);
        cfg.seed = rng.u64_in(0, u64::MAX - 1);
        Instance {
            trace_cfg,
            cfg,
            shards: rng.usize_in(2, 32),
        }
    })
}

#[test]
fn sharded_run_large_scale_equals_unsharded() {
    check(CASES, &instance(), |inst| {
        let trace = generate_trace(&inst.trace_cfg);
        let single = run_large_scale(&trace, &inst.cfg, &RunOptions::default().with_shards(1))
            .expect("single-threaded run");
        let sharded = run_large_scale(
            &trace,
            &inst.cfg,
            &RunOptions::default().with_shards(inst.shards),
        )
        .expect("sharded run");
        let ctx = format!(
            "n_vms={} servers={:?} shards={}",
            inst.cfg.n_vms, inst.cfg.n_servers, inst.shards
        );
        prop_assert_eq!(
            single.total_energy_wh.to_bits(),
            sharded.total_energy_wh.to_bits(),
            "{ctx}: total energy"
        );
        prop_assert_eq!(
            single.energy_per_vm_wh.to_bits(),
            sharded.energy_per_vm_wh.to_bits(),
            "{ctx}: energy per VM"
        );
        prop_assert_eq!(
            single.sla_violation_fraction.to_bits(),
            sharded.sla_violation_fraction.to_bits(),
            "{ctx}: SLA fraction"
        );
        prop_assert_eq!(
            single.mean_active_servers.to_bits(),
            sharded.mean_active_servers.to_bits(),
            "{ctx}: mean active servers"
        );
        prop_assert_eq!(single.migrations, sharded.migrations, "{ctx}: migrations");
        prop_assert_eq!(
            single.relief_migrations,
            sharded.relief_migrations,
            "{ctx}: relief migrations"
        );
        prop_assert_eq!(
            single.peak_active_servers,
            sharded.peak_active_servers,
            "{ctx}: peak active"
        );
        prop_assert_eq!(
            single.wake_energy_wh.to_bits(),
            sharded.wake_energy_wh.to_bits(),
            "{ctx}: wake energy"
        );
        prop_assert_eq!(
            &single.final_placements,
            &sharded.final_placements,
            "{ctx}: final placements"
        );
        Ok(())
    });
}
