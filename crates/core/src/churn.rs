//! VM lifecycle churn replay: `run_churn` and the admission-control seam.
//!
//! [`run_churn`] is [`crate::run_large_scale`] plus a lifecycle dimension:
//! a pre-generated [`ChurnWorkload`] (arrivals, departures, flash crowds)
//! is interleaved with the existing control/optimizer cadence, so IPAC
//! re-plans incrementally against a placement that drifts between
//! invocations instead of a frozen population. Departed VMs free their
//! arena slots for recycling (`vdc-dcsim`'s generation-tagged free list),
//! so long churn runs never grow the arena past the high-water live
//! population.
//!
//! # Admission
//!
//! Each arrival batch (queued VMs retrying first, then new arrivals in
//! event order) is packed onto the *active* servers with the same Minimum
//! Slack search the optimizer uses. Arrivals that fit nowhere hit the
//! configured [`AdmissionPolicy`]:
//!
//! * **Reject** — deregister immediately (`churn.rejections`);
//! * **Queue** — stay registered but unplaced and retry every sample
//!   (`churn.queue_depth` gauges the backlog);
//! * **WakeAndRetry** — pack onto the *sleeping* servers; a hit wakes the
//!   host, models its [`vdc_dcsim::ServerSpec::wake_latency_s`] (sourced
//!   from `HostProfile::wake_latency_s` for profile-built fleets) as an
//!   admission delay — the VM's demand starts one sample late and the wait
//!   lands in the `churn.wake_wait_ns` histogram — and a miss falls back
//!   to rejection.
//!
//! Every decision is sequential and derived from index-ordered sharded
//! snapshots, so churn runs stay bit-identical at every shard count; a
//! workload with zero events leaves the run loop byte-identical to
//! [`crate::run_large_scale`].

use crate::largescale::{run_large_scale_impl, LargeScaleConfig, LargeScaleResult};
use crate::optimizer::snapshot_sharded;
use crate::run::RunOptions;
use crate::{CoreError, Result};
use std::collections::{BTreeMap, VecDeque};
use vdc_churn::{AdmissionPolicy, ChurnWorkload, EventKind};
use vdc_consolidate::constraint::AndConstraint;
use vdc_consolidate::item::{PackItem, PackServer};
use vdc_consolidate::minslack::MinSlackConfig;
use vdc_consolidate::pac::pac_pack;
use vdc_dcsim::{DataCenter, ServerHandle, VmHandle, VmId, VmSpec};
use vdc_faults::FaultSession;
use vdc_telemetry::Telemetry;
use vdc_trace::UtilizationTrace;

/// Result of one churn run: the large-scale rollup plus lifecycle
/// accounting. `base.n_vms` and `base.energy_per_vm_wh` keep counting the
/// fixed base population only; churn VMs show up in `base.migrations`,
/// the power/energy figures, and `base.final_placements` (live churn VMs
/// carry external labels `>= base.n_vms`).
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// The underlying large-scale rollup.
    pub base: LargeScaleResult,
    /// Arrival events replayed.
    pub arrivals: u64,
    /// Departure events that removed a live VM.
    pub departures: u64,
    /// Arrivals (or queue retries) that found a server.
    pub admitted: u64,
    /// Arrivals turned away (policy `Reject`, or `WakeAndRetry` with no
    /// feasible sleeping server either).
    pub rejections: u64,
    /// Admissions that had to wake a sleeping server.
    pub wake_retries: u64,
    /// Deepest admission queue over the run (policy `Queue`).
    pub peak_queue_depth: usize,
    /// Arrivals that landed in a recycled arena slot (handle generation
    /// > 0) — nonzero whenever departures preceded arrivals.
    pub recycled_slots: u64,
    /// Churn VMs still live (placed or queued) at the end of the horizon.
    pub live_churn_vms: usize,
}

/// Run the large-scale simulation with a lifecycle-churn workload.
///
/// The workload's horizon must match the trace (`n_samples`); churn VM
/// external labels are `cfg.n_vms + k` so they never collide with the
/// base population. See [`RunOptions`] for the telemetry/shards/series
/// axes — churn adds the `churn.*` counter family on top of the
/// large-scale metrics.
pub fn run_churn(
    trace: &UtilizationTrace,
    cfg: &LargeScaleConfig,
    workload: &ChurnWorkload,
    policy: AdmissionPolicy,
    opts: &RunOptions<'_>,
) -> Result<ChurnResult> {
    if workload.n_samples() != trace.n_samples() {
        return Err(CoreError::BadConfig(format!(
            "churn workload horizon {} != trace horizon {}",
            workload.n_samples(),
            trace.n_samples()
        )));
    }
    let telemetry = opts.telemetry();
    // Pre-register the churn counter family so every scenario exports the
    // same key set regardless of which paths fire.
    for key in [
        "churn.arrivals",
        "churn.departures",
        "churn.admitted",
        "churn.rejections",
        "churn.wake_retries",
    ] {
        telemetry.incr(key, 0);
    }
    telemetry.gauge_set("churn.queue_depth", 0.0);
    let shards = crate::shard::resolve(opts.shards_or(cfg.shards));
    let mut ctx = ChurnCtx::new(workload, policy, cfg.n_vms, shards);
    let mut source = trace;
    let base = run_large_scale_impl(&mut source, cfg, opts, &telemetry, Some(&mut ctx))?;
    telemetry.gauge_set("churn.live_vms", ctx.live.len() as f64);
    Ok(ChurnResult {
        base,
        arrivals: ctx.arrivals,
        departures: ctx.departures,
        admitted: ctx.admitted,
        rejections: ctx.rejections,
        wake_retries: ctx.wake_retries,
        peak_queue_depth: ctx.peak_queue_depth,
        recycled_slots: ctx.recycled_slots,
        live_churn_vms: ctx.live.len(),
    })
}

/// Mutable churn state threaded through the run loop. One instance per
/// run; `run_large_scale_impl` calls [`ChurnCtx::apply_events`] once per
/// sample (after the demand update, before consolidation) and
/// [`ChurnCtx::write_demands`] for the churn region of the demand table.
pub(crate) struct ChurnCtx<'a> {
    workload: &'a ChurnWorkload,
    policy: AdmissionPolicy,
    /// Size of the fixed base population: churn slots start at this index
    /// and external churn labels at this id.
    base_vms: usize,
    minslack: MinSlackConfig,
    /// Cursor into the sorted event stream.
    cursor: usize,
    /// Per churn slot (arena slot − `base_vms`): the live occupant's
    /// workload index `k` and the sample its demand becomes visible
    /// (wake-and-retry admissions start one sample late).
    owner: Vec<Option<(usize, usize)>>,
    /// Live churn VMs by workload index (placed or queued).
    live: BTreeMap<usize, VmHandle>,
    /// Workload indices awaiting placement, FIFO (policy `Queue`), each
    /// tagged with the sample it first joined the queue so admission can
    /// report how long it aged (`churn.queue_wait`, in samples).
    queue: VecDeque<(usize, usize)>,
    arrivals: u64,
    departures: u64,
    admitted: u64,
    rejections: u64,
    wake_retries: u64,
    peak_queue_depth: usize,
    recycled_slots: u64,
}

impl<'a> ChurnCtx<'a> {
    fn new(
        workload: &'a ChurnWorkload,
        policy: AdmissionPolicy,
        base_vms: usize,
        shards: usize,
    ) -> ChurnCtx<'a> {
        ChurnCtx {
            workload,
            policy,
            base_vms,
            minslack: MinSlackConfig {
                shards,
                ..MinSlackConfig::default()
            },
            cursor: 0,
            owner: Vec::new(),
            live: BTreeMap::new(),
            queue: VecDeque::new(),
            arrivals: 0,
            departures: 0,
            admitted: 0,
            rejections: 0,
            wake_retries: 0,
            peak_queue_depth: 0,
            recycled_slots: 0,
        }
    }

    /// External label of churn VM `k` (disjoint from the base ids
    /// `0..base_vms`).
    fn ext_id(&self, k: usize) -> u64 {
        (self.base_vms + k) as u64
    }

    /// The packing item for churn VM `k` at sample `t`.
    fn item(&self, k: usize, t: usize) -> PackItem {
        PackItem::new(
            VmId(self.ext_id(k)),
            self.workload.demand_ghz(k, t).max(0.0),
            self.workload.memory_mib(k),
        )
    }

    /// Write the churn region of the demand table (slots `base_vms..`),
    /// sharded per slot exactly like the base region: live owners whose
    /// activation sample has passed read their workload demand, everything
    /// else (vacant, queued, still waking) reads 0.
    pub(crate) fn write_demands(&self, dc: &mut DataCenter, t: usize, shards: usize) {
        debug_assert_eq!(self.owner.len(), dc.vm_slots() - self.base_vms);
        let (workload, owner) = (self.workload, &self.owner);
        crate::shard::map_slice_mut(&mut dc.demands_mut()[self.base_vms..], shards, |i, d| {
            *d = match owner[i] {
                Some((k, active_from)) if t >= active_from => workload.demand_ghz(k, t).max(0.0),
                _ => 0.0,
            };
        });
    }

    /// Replay every lifecycle event due at sample `t`: departures first,
    /// then the admission queue retries, then new arrivals in event order.
    pub(crate) fn apply_events(
        &mut self,
        dc: &mut DataCenter,
        t: usize,
        shards: usize,
        telemetry: &Telemetry,
        faults: Option<&mut FaultSession<'_>>,
    ) -> Result<()> {
        let events = self.workload.events();
        let (mut departs, mut arrives) = (Vec::new(), Vec::new());
        while self.cursor < events.len() && events[self.cursor].at_sample == t {
            match events[self.cursor].kind {
                EventKind::Arrive(k) => arrives.push(k),
                EventKind::Depart(k) => departs.push(k),
            }
            self.cursor += 1;
        }

        for k in departs {
            // Rejected (or already-departed) VMs have no live handle; their
            // departure is a no-op.
            if let Some(h) = self.live.remove(&k) {
                self.queue.retain(|&(q, _)| q != k);
                let slot = h.index();
                debug_assert!(slot >= self.base_vms, "churn never removes base VMs");
                dc.remove_vm(h)?;
                self.owner[slot - self.base_vms] = None;
                self.departures += 1;
                telemetry.incr("churn.departures", 1);
            }
        }

        self.arrivals += arrives.len() as u64;
        telemetry.incr("churn.arrivals", arrives.len() as u64);
        // Register the new arrivals so the batch below owns handles for
        // queued retries and fresh VMs alike. Registration pops the free
        // list, so post-departure arrivals land in recycled slots.
        for &k in &arrives {
            let spec = VmSpec::new(
                self.ext_id(k),
                self.workload.demand_ghz(k, t),
                self.workload.memory_mib(k),
            );
            let h = dc.add_vm(spec)?;
            debug_assert!(h.index() >= self.base_vms);
            if h.generation() > 0 {
                self.recycled_slots += 1;
            }
            let churn_slot = h.index() - self.base_vms;
            if churn_slot >= self.owner.len() {
                self.owner.resize(churn_slot + 1, None);
            }
            self.live.insert(k, h);
        }

        // Admission batch: queued VMs retry first (FIFO, keeping their
        // original enqueue sample so their age survives retries), then the
        // new arrivals in event order (age zero).
        let batch: Vec<(usize, usize)> = self
            .queue
            .drain(..)
            .chain(arrives.into_iter().map(|k| (k, t)))
            .collect();
        if !batch.is_empty() {
            self.admit(dc, batch, t, shards, telemetry, faults)?;
        }
        self.peak_queue_depth = self.peak_queue_depth.max(self.queue.len());
        telemetry.gauge_set("churn.queue_depth", self.queue.len() as f64);
        Ok(())
    }

    /// Pack a batch of registered-but-unplaced churn VMs onto the fleet
    /// and apply the admission policy to the leftovers. Each batch entry
    /// carries the sample the VM first asked for placement, so `Queue`
    /// admissions can report their age.
    fn admit(
        &mut self,
        dc: &mut DataCenter,
        batch: Vec<(usize, usize)>,
        t: usize,
        shards: usize,
        telemetry: &Telemetry,
        mut faults: Option<&mut FaultSession<'_>>,
    ) -> Result<()> {
        let placement_span = telemetry.timer("churn.placement_ns");
        let items: Vec<PackItem> = batch.iter().map(|&(k, _)| self.item(k, t)).collect();
        let since: BTreeMap<u64, usize> = batch
            .iter()
            .map(|&(k, enqueued_at)| (self.ext_id(k), enqueued_at))
            .collect();
        let constraint = AndConstraint::cpu_and_memory();
        // Index-ordered sharded snapshot (bit-identical at every shard
        // count), split into the active fleet — the Minimum Slack first
        // pass — and the sleeping pool the wake-and-retry fallback taps.
        let (mut active_view, mut sleeping_view): (Vec<PackServer>, Vec<PackServer>) =
            snapshot_sharded(dc, shards)
                .into_iter()
                .partition(|s| s.active);
        // Crashed hosts fall into the inactive partition advertising zero
        // capacity; drop them so the wake fallback can't select one.
        sleeping_view.retain(|s| s.cpu_capacity_ghz > 0.0);
        let first = pac_pack(&mut active_view, &items, &constraint, &self.minslack);
        self.place_assignments(dc, &active_view, &first.assignments, t, t)?;
        self.admitted += first.assignments.len() as u64;
        telemetry.incr("churn.admitted", first.assignments.len() as u64);
        if self.policy == AdmissionPolicy::Queue {
            // Queue aging: samples waited between first asking and being
            // admitted (zero for arrivals placed the same sample).
            for &(id, _) in &first.assignments {
                telemetry.record("churn.queue_wait", (t - since[&id.0]) as f64);
            }
        }

        let mut leftovers: Vec<u64> = first.unplaced.iter().map(|id| id.0).collect();
        if !leftovers.is_empty() && self.policy == AdmissionPolicy::WakeAndRetry {
            let retry_items: Vec<PackItem> = items
                .iter()
                .filter(|i| leftovers.contains(&i.vm.0))
                .cloned()
                .collect();
            let second = pac_pack(
                &mut sleeping_view,
                &retry_items,
                &constraint,
                &self.minslack,
            );
            // Model the host's wake latency as an admission delay: the VM
            // occupies its slot now but its demand starts next sample, and
            // the wait is recorded against the churn.wake_wait_ns histogram.
            // Under fault injection the wake itself may fail — the chosen
            // host never comes up and the VM falls through to the leftover
            // walk below, so `churn.wake_retries` only ever counts wakes
            // that actually happened.
            let mut committed: Vec<(VmId, usize)> = Vec::with_capacity(second.assignments.len());
            let mut failed_wakes: Vec<u64> = Vec::new();
            for &(id, si) in &second.assignments {
                if faults.as_deref_mut().is_some_and(|f| f.draw_wake_failure()) {
                    failed_wakes.push(id.0);
                    continue;
                }
                let server = ServerHandle::from_index(sleeping_view[si].index);
                let wake_latency_s = dc.server(server)?.spec.wake_latency_s;
                telemetry.record("churn.wake_wait_ns", wake_latency_s * 1e9);
                committed.push((id, si));
            }
            self.place_assignments(dc, &sleeping_view, &committed, t, t + 1)?;
            self.wake_retries += committed.len() as u64;
            telemetry.incr("churn.wake_retries", committed.len() as u64);
            self.admitted += committed.len() as u64;
            telemetry.incr("churn.admitted", committed.len() as u64);
            leftovers = second
                .unplaced
                .iter()
                .map(|id| id.0)
                .chain(failed_wakes)
                .collect();
        }

        // Walk the original batch order so the queue keeps FIFO fairness
        // (pac_pack's unplaced list comes back in swap-perturbed order).
        let leftover_set: std::collections::BTreeSet<u64> = leftovers.into_iter().collect();
        for (k, enqueued_at) in batch {
            if !leftover_set.contains(&self.ext_id(k)) {
                continue;
            }
            match self.policy {
                AdmissionPolicy::Queue => self.queue.push_back((k, enqueued_at)),
                AdmissionPolicy::Reject | AdmissionPolicy::WakeAndRetry => {
                    let h = self.live.remove(&k).expect("unplaced VM is live");
                    dc.remove_vm(h)?;
                    self.rejections += 1;
                    telemetry.incr("churn.rejections", 1);
                }
            }
        }
        placement_span.finish();
        Ok(())
    }

    /// Execute one pack result: place each assigned VM on its chosen
    /// server (waking it if asleep) with its demand visible from
    /// `active_from` on.
    fn place_assignments(
        &mut self,
        dc: &mut DataCenter,
        view: &[PackServer],
        assignments: &[(VmId, usize)],
        t: usize,
        active_from: usize,
    ) -> Result<()> {
        for &(id, si) in assignments {
            let k = id.0 as usize - self.base_vms;
            let h = *self.live.get(&k).expect("assigned VM is live");
            let server = ServerHandle::from_index(view[si].index);
            dc.place_vm(h, server)?;
            let demand = if t >= active_from {
                self.workload.demand_ghz(k, t)
            } else {
                0.0
            };
            dc.set_vm_demand(h, demand)?;
            self.owner[h.index() - self.base_vms] = Some((k, active_from));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::largescale::OptimizerKind;
    use vdc_churn::ChurnConfig;
    use vdc_trace::{generate_trace, TraceConfig};

    fn small_trace() -> UtilizationTrace {
        generate_trace(&TraceConfig {
            n_vms: 40,
            n_samples: 96, // one day
            interval_s: 900.0,
            seed: 99,
        })
    }

    fn churn_workload(trace: &UtilizationTrace, cfg: &ChurnConfig) -> ChurnWorkload {
        ChurnWorkload::generate(cfg, trace.n_samples(), trace.interval_s())
    }

    /// Bitwise comparison of the large-scale rollup (the fields the
    /// sharding suites pin).
    fn assert_base_bit_identical(a: &LargeScaleResult, b: &LargeScaleResult, ctx: &str) {
        assert_eq!(a.n_vms, b.n_vms, "{ctx}");
        assert_eq!(
            a.total_energy_wh.to_bits(),
            b.total_energy_wh.to_bits(),
            "{ctx}: total energy"
        );
        assert_eq!(a.migrations, b.migrations, "{ctx}: migrations");
        assert_eq!(
            a.mean_active_servers.to_bits(),
            b.mean_active_servers.to_bits(),
            "{ctx}: mean active"
        );
        assert_eq!(a.peak_active_servers, b.peak_active_servers, "{ctx}");
        assert_eq!(a.optimizer_invocations, b.optimizer_invocations, "{ctx}");
        assert_eq!(a.relief_migrations, b.relief_migrations, "{ctx}");
        assert_eq!(
            a.sla_violation_fraction.to_bits(),
            b.sla_violation_fraction.to_bits(),
            "{ctx}: SLA fraction"
        );
        assert_eq!(
            a.wake_energy_wh.to_bits(),
            b.wake_energy_wh.to_bits(),
            "{ctx}: wake energy"
        );
        assert_eq!(a.final_placements, b.final_placements, "{ctx}: placements");
    }

    #[test]
    fn zero_event_run_is_bit_identical_to_run_large_scale() {
        let t = small_trace();
        let cfg = LargeScaleConfig::new(40, OptimizerKind::Ipac);
        let empty = ChurnWorkload::empty(t.n_samples(), t.interval_s());
        let opts = RunOptions::default().with_series();
        let plain = crate::run_large_scale(&t, &cfg, &opts).unwrap();
        let churned = run_churn(&t, &cfg, &empty, AdmissionPolicy::WakeAndRetry, &opts).unwrap();
        assert_base_bit_identical(&plain, &churned.base, "zero-event churn");
        assert_eq!(plain.series.len(), churned.base.series.len());
        for (a, b) in plain.series.iter().zip(&churned.base.series) {
            assert_eq!(a.power_w.to_bits(), b.power_w.to_bits());
            assert_eq!(a.active_servers, b.active_servers);
        }
        assert_eq!(churned.arrivals, 0);
        assert_eq!(churned.departures, 0);
        assert_eq!(churned.rejections, 0);
        assert_eq!(churned.live_churn_vms, 0);
    }

    #[test]
    fn steady_churn_admits_departs_and_recycles() {
        let t = small_trace();
        let cfg = LargeScaleConfig::new(40, OptimizerKind::Ipac);
        // Short lifetimes: plenty of departures inside one day, so later
        // arrivals must land in recycled slots.
        let wl_cfg = ChurnConfig {
            mean_lifetime_s: 3.0 * 3600.0,
            ..ChurnConfig::steady(60.0, 0xC0FF)
        };
        let wl = churn_workload(&t, &wl_cfg);
        assert!(wl.total_arrivals() > 10, "workload should churn");
        let r = run_churn(
            &t,
            &cfg,
            &wl,
            AdmissionPolicy::WakeAndRetry,
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(r.arrivals, wl.total_arrivals() as u64);
        assert!(r.departures > 0, "short lifetimes must depart in-horizon");
        assert!(r.admitted > 0);
        assert_eq!(r.admitted + r.rejections, r.arrivals);
        assert!(
            r.recycled_slots > 0,
            "arrivals after departures must reuse freed slots"
        );
        // Live churn VMs appear in the final placements under their
        // offset external labels.
        let churn_placed = r
            .base
            .final_placements
            .iter()
            .filter(|(id, _)| *id >= 40)
            .count();
        assert!(churn_placed <= r.live_churn_vms);
        assert!(r.base.total_energy_wh > 0.0);
    }

    #[test]
    fn reject_policy_counts_rejections_on_a_tight_fleet() {
        let t = small_trace();
        // A deliberately small fleet: active capacity runs out, and under
        // Reject there is no wake fallback.
        let cfg = LargeScaleConfig {
            n_servers: Some(10),
            ..LargeScaleConfig::new(40, OptimizerKind::Ipac)
        };
        let wl = churn_workload(&t, &ChurnConfig::with_flash_crowd(40.0, 8, 30, 0xBEEF));
        let r = run_churn(
            &t,
            &cfg,
            &wl,
            AdmissionPolicy::Reject,
            &RunOptions::default(),
        )
        .unwrap();
        assert!(r.rejections > 0, "tight fleet must reject some arrivals");
        assert_eq!(r.wake_retries, 0, "Reject never wakes servers");
        assert_eq!(r.peak_queue_depth, 0, "Reject never queues");
        assert_eq!(r.admitted + r.rejections, r.arrivals);
    }

    #[test]
    fn queue_policy_holds_arrivals_instead_of_rejecting() {
        let t = small_trace();
        let cfg = LargeScaleConfig {
            n_servers: Some(10),
            ..LargeScaleConfig::new(40, OptimizerKind::Ipac)
        };
        let wl = churn_workload(&t, &ChurnConfig::with_flash_crowd(40.0, 8, 30, 0xBEEF));
        let r = run_churn(
            &t,
            &cfg,
            &wl,
            AdmissionPolicy::Queue,
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(r.rejections, 0, "Queue never rejects");
        assert!(r.peak_queue_depth > 0, "the flash crowd must back up");
        assert!(r.admitted <= r.arrivals);
    }

    #[test]
    fn wake_and_retry_uses_the_sleeping_pool() {
        let t = small_trace();
        // Enough total servers, but most are asleep after consolidation,
        // so a flash crowd overflows the active set and must wake hosts.
        let cfg = LargeScaleConfig {
            n_servers: Some(40),
            ..LargeScaleConfig::new(40, OptimizerKind::Ipac)
        };
        let wl = churn_workload(&t, &ChurnConfig::with_flash_crowd(20.0, 12, 40, 0xD00D));
        let telemetry = Telemetry::enabled();
        let opts = RunOptions::default().with_telemetry(&telemetry);
        let r = run_churn(&t, &cfg, &wl, AdmissionPolicy::WakeAndRetry, &opts).unwrap();
        assert!(r.wake_retries > 0, "the burst must overflow active hosts");
        let hists = telemetry.histogram_summaries();
        let wake = hists
            .iter()
            .find(|h| h.name == "churn.wake_wait_ns")
            .expect("wake wait histogram recorded");
        assert_eq!(wake.count, r.wake_retries);
        // All catalog wake latencies are 25–30 s.
        assert!(
            wake.min >= 25e9 && wake.max <= 30e9,
            "modeled, not wall-clock"
        );
        let counters = telemetry.counter_values();
        let counter = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .expect("counter registered")
        };
        assert_eq!(counter("churn.arrivals"), r.arrivals);
        assert_eq!(counter("churn.wake_retries"), r.wake_retries);
    }

    #[test]
    fn wake_failures_reject_instead_of_counting_retries() {
        use vdc_faults::{FaultConfig, FaultPlan};
        let t = small_trace();
        let cfg = LargeScaleConfig {
            n_servers: Some(40),
            ..LargeScaleConfig::new(40, OptimizerKind::Ipac)
        };
        let wl = churn_workload(
            &t,
            &vdc_churn::ChurnConfig::with_flash_crowd(20.0, 12, 40, 0xD00D),
        );
        // Baseline: the burst overflows active hosts and wakes sleepers.
        let clean = run_churn(
            &t,
            &cfg,
            &wl,
            AdmissionPolicy::WakeAndRetry,
            &RunOptions::default(),
        )
        .unwrap();
        assert!(clean.wake_retries > 0);
        // Every wake fails: the same VMs fall through to rejection and the
        // retry counter must stay exactly zero — no overcounting a wake
        // that never happened.
        let plan = FaultPlan::generate(
            &FaultConfig::flaky_wakes(1.0, 0xD00D),
            t.n_samples(),
            t.interval_s(),
            0,
            0,
        );
        let telemetry = Telemetry::enabled();
        let opts = RunOptions::default()
            .with_telemetry(&telemetry)
            .with_faults(&plan);
        let faulted = run_churn(&t, &cfg, &wl, AdmissionPolicy::WakeAndRetry, &opts).unwrap();
        assert_eq!(faulted.wake_retries, 0, "no wake ever succeeded");
        assert!(
            faulted.rejections >= clean.rejections,
            "failed wakes become rejections"
        );
        let counters = telemetry.counter_values();
        let counter = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .expect("counter registered")
        };
        assert_eq!(counter("churn.wake_retries"), 0);
        assert!(counter("fault.wake_failures") > 0);
        assert_eq!(faulted.admitted + faulted.rejections, faulted.arrivals);
    }

    #[test]
    fn queue_policy_records_wait_ages() {
        let t = small_trace();
        let cfg = LargeScaleConfig {
            n_servers: Some(10),
            ..LargeScaleConfig::new(40, OptimizerKind::Ipac)
        };
        let wl = churn_workload(
            &t,
            &vdc_churn::ChurnConfig::with_flash_crowd(40.0, 8, 30, 0xBEEF),
        );
        let telemetry = Telemetry::enabled();
        let opts = RunOptions::default().with_telemetry(&telemetry);
        let r = run_churn(&t, &cfg, &wl, AdmissionPolicy::Queue, &opts).unwrap();
        assert!(r.peak_queue_depth > 0, "the flash crowd must back up");
        let hists = telemetry.histogram_summaries();
        let wait = hists
            .iter()
            .find(|h| h.name == "churn.queue_wait")
            .expect("queue wait histogram recorded under Queue policy");
        assert_eq!(
            wait.count, r.admitted,
            "every admitted VM records its age (including zero waits)"
        );
        assert!(wait.min >= 0.0);
        assert!(
            wait.max >= 1.0,
            "a backed-up queue must admit some VM at least one sample late"
        );
    }

    #[test]
    fn horizon_mismatch_is_rejected() {
        let t = small_trace();
        let cfg = LargeScaleConfig::new(40, OptimizerKind::Ipac);
        let wl = ChurnWorkload::empty(48, t.interval_s());
        assert!(matches!(
            run_churn(
                &t,
                &cfg,
                &wl,
                AdmissionPolicy::Queue,
                &RunOptions::default()
            ),
            Err(CoreError::BadConfig(_))
        ));
    }

    #[test]
    fn churn_run_is_shard_invariant() {
        let t = small_trace();
        let cfg = LargeScaleConfig::new(40, OptimizerKind::Ipac);
        let wl = churn_workload(&t, &ChurnConfig::with_flash_crowd(40.0, 12, 25, 0xACE));
        let opts = RunOptions::default();
        let single = run_churn(&t, &cfg, &wl, AdmissionPolicy::WakeAndRetry, &opts).unwrap();
        for shards in [2usize, 8] {
            let sharded = run_churn(
                &t,
                &cfg,
                &wl,
                AdmissionPolicy::WakeAndRetry,
                &opts.with_shards(shards),
            )
            .unwrap();
            assert_base_bit_identical(&single.base, &sharded.base, &format!("shards={shards}"));
            assert_eq!(single.arrivals, sharded.arrivals);
            assert_eq!(single.departures, sharded.departures);
            assert_eq!(single.admitted, sharded.admitted);
            assert_eq!(single.rejections, sharded.rejections);
            assert_eq!(single.wake_retries, sharded.wake_retries);
            assert_eq!(single.peak_queue_depth, sharded.peak_queue_depth);
            assert_eq!(single.recycled_slots, sharded.recycled_slots);
        }
    }
}
