//! The data-center-level power optimizer of Fig. 1.
//!
//! Wraps the consolidation algorithms (`vdc-consolidate`) behind one
//! interface that snapshots a [`DataCenter`], plans, applies, and throttles
//! (DVFS + sleep) — one "invocation" of the optimizer in the paper's
//! terminology, to be scheduled on a long time scale (hours to days).

use crate::Result;
use vdc_consolidate::constraint::AndConstraint;
use vdc_consolidate::ipac::{ipac_plan_stats, IpacConfig};
use vdc_consolidate::item::{PackItem, PackServer};
use vdc_consolidate::plan::ConsolidationPlan;
use vdc_consolidate::pmapper::pmapper_plan;
use vdc_consolidate::policy::{AlwaysAllow, MigrationPolicy};
use vdc_consolidate::view::{apply_plan, apply_plan_fallible, ApplyStats};
use vdc_dcsim::{DataCenter, ServerHandle};
use vdc_faults::FaultSession;
use vdc_telemetry::Telemetry;

/// Build the consolidation snapshot with per-server view construction
/// fanned out over `shards` workers ([`crate::shard`]).
///
/// Produces exactly the vector [`vdc_consolidate::view::snapshot`] builds —
/// server order is index-stable and each [`PackServer`] depends only on its
/// own server's state — so planning decisions are unchanged by the shard
/// count. The workers walk a copy-on-write [`vdc_dcsim::Snapshot`] (dense
/// arena reads, no tree lookups), so each server's resident list is pure
/// per-element work.
pub fn snapshot_sharded(dc: &DataCenter, shards: usize) -> Vec<PackServer> {
    let view = dc.snapshot();
    crate::shard::map_indices(view.n_servers(), shards, |i| {
        vdc_consolidate::view::pack_server(&view, ServerHandle::from_index(i))
    })
}

/// Which consolidation algorithm the optimizer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's Incremental Power-Aware Consolidation.
    Ipac,
    /// The pMapper baseline.
    Pmapper,
}

/// Optimizer configuration.
pub struct OptimizerConfig {
    /// Consolidation algorithm.
    pub algorithm: Algorithm,
    /// Packing feasibility rule (defaults to CPU + memory, the §VII-B
    /// administrator constraint).
    pub constraint: AndConstraint,
    /// IPAC tuning (ignored by pMapper).
    pub ipac: IpacConfig,
    /// Cost-aware migration policy (applied by IPAC's drain rounds).
    pub policy: Box<dyn MigrationPolicy + Send + Sync>,
}

impl OptimizerConfig {
    /// Default IPAC configuration with the standard constraint set.
    pub fn ipac_default() -> OptimizerConfig {
        OptimizerConfig {
            algorithm: Algorithm::Ipac,
            constraint: AndConstraint::cpu_and_memory(),
            ipac: IpacConfig::default(),
            policy: Box::new(AlwaysAllow),
        }
    }

    /// Default pMapper configuration with the standard constraint set.
    pub fn pmapper_default() -> OptimizerConfig {
        OptimizerConfig {
            algorithm: Algorithm::Pmapper,
            constraint: AndConstraint::cpu_and_memory(),
            ipac: IpacConfig::default(),
            policy: Box::new(AlwaysAllow),
        }
    }
}

/// The data-center-level power optimizer.
pub struct PowerOptimizer {
    cfg: OptimizerConfig,
    invocations: u64,
    total_migrations: u64,
    telemetry: Telemetry,
    shards: usize,
}

impl PowerOptimizer {
    /// Create an optimizer.
    pub fn new(cfg: OptimizerConfig) -> PowerOptimizer {
        PowerOptimizer {
            cfg,
            invocations: 0,
            total_migrations: 0,
            telemetry: Telemetry::disabled(),
            shards: 1,
        }
    }

    /// Fan the shardable phases of an invocation out over `shards` workers
    /// (`0` = host parallelism): snapshot construction and the Minimum
    /// Slack root sweeps inside IPAC's packing. The commit phases stay
    /// sequential — an optimizer invocation is the serial barrier of the
    /// sharded replay loop — and the consolidation decisions are
    /// bit-identical at every shard count (see
    /// [`vdc_consolidate::minimum_slack`]).
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = crate::shard::resolve(shards);
        self.cfg.ipac.minslack.shards = self.shards;
    }

    /// Attach a telemetry sink. Each invocation then records its planning
    /// cost (`optimizer.invocation_ns`), migrations proposed vs applied,
    /// sleep/wake decisions, and the post-consolidation capacity slack
    /// (`optimizer.slack_ghz`).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Total migrations executed across invocations.
    pub fn total_migrations(&self) -> u64 {
        self.total_migrations
    }

    /// Plan without applying (inspection / dry runs).
    pub fn plan(&self, dc: &DataCenter, new_items: &[PackItem]) -> ConsolidationPlan {
        let span = self.telemetry.timer("optimizer.snapshot_ns");
        let snap = snapshot_sharded(dc, self.shards);
        span.finish();
        match self.cfg.algorithm {
            Algorithm::Ipac => {
                let (plan, stats) = ipac_plan_stats(
                    &snap,
                    new_items,
                    &self.cfg.constraint,
                    self.cfg.policy.as_ref(),
                    &self.cfg.ipac,
                );
                // The Minimum Slack root sweeps fan out over the shard
                // workers; everything else in the invocation is serial.
                self.telemetry
                    .record("optimizer.pack_search_ns", stats.search_ns as f64);
                plan
            }
            Algorithm::Pmapper => pmapper_plan(&snap, new_items, &self.cfg.constraint),
        }
    }

    /// One optimizer invocation: snapshot → plan → apply. `new_items` are
    /// VMs registered in the data center but not yet placed.
    pub fn optimize(&mut self, dc: &mut DataCenter, new_items: &[PackItem]) -> Result<ApplyStats> {
        let span = self.telemetry.timer("optimizer.invocation_ns");
        let plan = self.plan(dc, new_items);
        let stats = apply_plan(dc, &plan)?;
        span.finish();
        self.finish_invocation(dc, plan.moves.len(), &stats);
        Ok(stats)
    }

    /// One optimizer invocation whose migrations may fail, drawing
    /// per-attempt outcomes from the fault session. Each migration gets
    /// the plan's deterministic retry-with-exponential-backoff budget; the
    /// first migration to exhaust it truncates the suffix, so the plan
    /// commits its successful prefix (`optimizer.plan_partial` counts
    /// truncations). With a plan whose migration failure probability is
    /// zero, this is behaviorally identical to [`PowerOptimizer::optimize`].
    pub fn optimize_faulted(
        &mut self,
        dc: &mut DataCenter,
        new_items: &[PackItem],
        faults: &mut FaultSession<'_>,
    ) -> Result<ApplyStats> {
        let span = self.telemetry.timer("optimizer.invocation_ns");
        let plan = self.plan(dc, new_items);
        let max_attempts = faults.plan().max_migration_attempts();
        let partial =
            apply_plan_fallible(dc, &plan, max_attempts, || faults.draw_migration_failure())?;
        span.finish();
        self.finish_invocation(dc, plan.moves.len(), &partial.stats);
        faults.migration_retries += partial.retries;
        faults.migrations_dropped += partial.dropped as u64;
        faults.stranded_vms += partial.stranded.len() as u64;
        if partial.is_partial() {
            faults.plan_partials += 1;
            self.telemetry.incr("optimizer.plan_partial", 1);
        }
        Ok(partial.stats)
    }

    /// Shared invocation bookkeeping: counters, telemetry rollups, and the
    /// post-consolidation slack gauge.
    fn finish_invocation(&mut self, dc: &DataCenter, proposed: usize, stats: &ApplyStats) {
        self.invocations += 1;
        self.total_migrations += stats.migrations as u64;
        self.telemetry.incr("optimizer.invocations", 1);
        self.telemetry
            .incr("optimizer.migrations_proposed", proposed as u64);
        self.telemetry
            .incr("optimizer.migrations_applied", stats.migrations as u64);
        self.telemetry
            .incr("optimizer.servers_slept", stats.slept as u64);
        self.telemetry
            .incr("optimizer.servers_woken", stats.woken as u64);
        self.telemetry
            .record("optimizer.migrated_mib", stats.migrated_mib);
        self.telemetry
            .gauge_set("optimizer.slack_ghz", active_slack_ghz(dc));
    }
}

/// Spare CPU capacity across active servers (GHz): how much headroom the
/// consolidated placement leaves before the next overload.
fn active_slack_ghz(dc: &DataCenter) -> f64 {
    dc.active_servers()
        .into_iter()
        .map(|s| {
            let cap = dc.server(s).map(|sv| sv.capacity_ghz()).unwrap_or(0.0);
            let demand = dc.server_demand_ghz(s).unwrap_or(0.0);
            (cap - demand).max(0.0)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdc_consolidate::view::snapshot;
    use vdc_dcsim::{Server, ServerSpec, VmId, VmSpec};

    fn srv(i: usize) -> ServerHandle {
        ServerHandle::from_index(i)
    }

    fn spread_dc() -> DataCenter {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        dc.add_server(Server::active(ServerSpec::type_dual_2ghz()));
        dc.add_server(Server::active(ServerSpec::type_dual_1_5ghz()));
        for i in 0..3 {
            let h = dc.add_vm(VmSpec::new(i, 0.8, 1024.0)).unwrap();
            dc.place_vm(h, srv(i as usize)).unwrap();
        }
        dc
    }

    fn placement_by_label(dc: &DataCenter, id: u64) -> Option<usize> {
        dc.lookup(VmId(id))
            .and_then(|h| dc.placement_of(h))
            .map(|s| s.index())
    }

    #[test]
    fn ipac_invocation_consolidates_and_counts() {
        let mut dc = spread_dc();
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        let stats = opt.optimize(&mut dc, &[]).unwrap();
        assert!(stats.migrations >= 2, "{stats:?}");
        assert_eq!(opt.invocations(), 1);
        assert_eq!(opt.total_migrations(), stats.migrations as u64);
        // Everything should now sit on the efficient quad server.
        for i in 0..3 {
            assert_eq!(placement_by_label(&dc, i), Some(0));
        }
        dc.apply_dvfs(true).unwrap();
        assert_eq!(dc.active_servers(), vec![srv(0)]);
    }

    #[test]
    fn pmapper_invocation_also_consolidates() {
        let mut dc = spread_dc();
        let mut opt = PowerOptimizer::new(OptimizerConfig::pmapper_default());
        let stats = opt.optimize(&mut dc, &[]).unwrap();
        assert!(stats.migrations >= 2, "{stats:?}");
        for i in 0..3 {
            assert_eq!(placement_by_label(&dc, i), Some(0));
        }
    }

    #[test]
    fn new_items_placed_by_invocation() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::asleep(ServerSpec::type_quad_3ghz()));
        dc.add_vm(VmSpec::new(7, 1.0, 1024.0)).unwrap();
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        let stats = opt
            .optimize(&mut dc, &[PackItem::new(VmId(7), 1.0, 1024.0)])
            .unwrap();
        assert_eq!(stats.placements, 1);
        assert_eq!(placement_by_label(&dc, 7), Some(0));
        assert!(dc.server(srv(0)).unwrap().is_active());
    }

    #[test]
    fn dry_run_plan_does_not_mutate() {
        let dc = spread_dc();
        let opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        let plan = opt.plan(&dc, &[]);
        assert!(!plan.moves.is_empty());
        // dc unchanged.
        assert_eq!(placement_by_label(&dc, 1), Some(1));
    }

    #[test]
    fn sharded_snapshot_equals_sequential_snapshot() {
        let dc = spread_dc();
        let sequential = snapshot(&dc);
        for shards in [1usize, 2, 3, 16] {
            let sharded = snapshot_sharded(&dc, shards);
            assert_eq!(sharded.len(), sequential.len());
            for (a, b) in sharded.iter().zip(&sequential) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.cpu_capacity_ghz.to_bits(), b.cpu_capacity_ghz.to_bits());
                assert_eq!(a.mem_capacity_mib.to_bits(), b.mem_capacity_mib.to_bits());
                assert_eq!(a.active, b.active);
                assert_eq!(a.resident.len(), b.resident.len());
                for (x, y) in a.resident.iter().zip(&b.resident) {
                    assert_eq!(x.vm, y.vm);
                    assert_eq!(x.cpu_ghz.to_bits(), y.cpu_ghz.to_bits());
                    assert_eq!(x.mem_mib.to_bits(), y.mem_mib.to_bits());
                }
            }
        }
    }

    #[test]
    fn empty_datacenter_invocation_is_a_safe_noop() {
        // 0 VMs, 0 servers: the optimizer/largescale boundary must not
        // panic or fabricate work.
        let mut dc = DataCenter::new();
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        let stats = opt.optimize(&mut dc, &[]).unwrap();
        assert_eq!(stats, ApplyStats::default());
        assert_eq!(opt.invocations(), 1);
        assert!(snapshot_sharded(&dc, 8).is_empty());
    }

    #[test]
    fn servers_without_vms_stay_asleep() {
        // Servers but no VMs: nothing to place, nothing woken.
        let mut dc = DataCenter::new();
        for _ in 0..3 {
            dc.add_server(Server::asleep(ServerSpec::type_dual_2ghz()));
        }
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        let stats = opt.optimize(&mut dc, &[]).unwrap();
        assert_eq!(stats.woken, 0);
        assert!(dc.active_servers().is_empty());
    }

    #[test]
    fn all_asleep_fleet_wakes_for_new_items() {
        // The wake path of the boundary: an entirely sleeping fleet must
        // wake exactly the servers the placement needs.
        let mut dc = DataCenter::new();
        for _ in 0..4 {
            dc.add_server(Server::asleep(ServerSpec::type_dual_2ghz()));
        }
        let mut items = Vec::new();
        for i in 0..3 {
            dc.add_vm(VmSpec::new(i, 1.0, 1024.0)).unwrap();
            items.push(PackItem::new(VmId(i), 1.0, 1024.0));
        }
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        opt.set_shards(8);
        let stats = opt.optimize(&mut dc, &items).unwrap();
        assert_eq!(stats.placements, 3);
        let active = dc.active_servers();
        assert!(!active.is_empty(), "placement must wake servers");
        assert!(active.len() < 4, "3 GHz of demand must not wake the fleet");
        assert!(dc.wake_count() >= 1);
        for i in 0..3 {
            assert!(placement_by_label(&dc, i).is_some());
        }
    }
}
