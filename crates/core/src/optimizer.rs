//! The data-center-level power optimizer of Fig. 1.
//!
//! Wraps the consolidation algorithms (`vdc-consolidate`) behind one
//! interface that snapshots a [`DataCenter`], plans, applies, and throttles
//! (DVFS + sleep) — one "invocation" of the optimizer in the paper's
//! terminology, to be scheduled on a long time scale (hours to days).

use crate::Result;
use std::collections::BTreeSet;
use vdc_consolidate::constraint::AndConstraint;
use vdc_consolidate::ipac::{ipac_plan_stats, IpacConfig};
use vdc_consolidate::item::{PackItem, PackServer};
use vdc_consolidate::minslack::MinSlackConfig;
use vdc_consolidate::pac::pac_pack;
use vdc_consolidate::plan::{ConsolidationPlan, Move};
use vdc_consolidate::pmapper::pmapper_plan;
use vdc_consolidate::policy::{AlwaysAllow, MigrationPolicy};
use vdc_consolidate::view::{apply_plan, apply_plan_fallible, ApplyStats};
use vdc_dcsim::{DataCenter, ServerHandle, VmId};
use vdc_faults::FaultSession;
use vdc_telemetry::Telemetry;

/// Build the consolidation snapshot with per-server view construction
/// fanned out over `shards` workers ([`crate::shard`]).
///
/// Produces exactly the vector [`vdc_consolidate::view::snapshot`] builds —
/// server order is index-stable and each [`PackServer`] depends only on its
/// own server's state — so planning decisions are unchanged by the shard
/// count. The workers walk a copy-on-write [`vdc_dcsim::Snapshot`] (dense
/// arena reads, no tree lookups), so each server's resident list is pure
/// per-element work.
pub fn snapshot_sharded(dc: &DataCenter, shards: usize) -> Vec<PackServer> {
    let view = dc.snapshot();
    crate::shard::map_indices(view.n_servers(), shards, |i| {
        vdc_consolidate::view::pack_server(&view, ServerHandle::from_index(i))
    })
}

/// Partition a fleet into contiguous, site-aligned pods.
///
/// `sites[i]` is the site index of server `i`. Pods are contiguous runs of
/// at most `pod_size` servers that never straddle a site boundary: the
/// partition cuts whenever the site changes *or* the pod is full. Every
/// server lands in exactly one pod, and for a fleet whose servers are
/// grouped by site (the only layout [`vdc_dcsim::FleetSpec`] produces) the
/// pod count is `Σ_site ceil(site_len / pod_size)` —
/// `ceil(n / pod_size)` for a single-site fleet.
///
/// # Panics
/// Panics if `pod_size` is zero.
pub fn pod_partition(sites: &[usize], pod_size: usize) -> Vec<std::ops::Range<usize>> {
    assert!(pod_size > 0, "pod_size must be positive");
    let mut pods = Vec::new();
    let mut start = 0;
    while start < sites.len() {
        let mut end = start + 1;
        while end < sites.len() && end - start < pod_size && sites[end] == sites[start] {
            end += 1;
        }
        pods.push(start..end);
        start = end;
    }
    pods
}

/// Remaining routing capacity of one pod during the arrival distribution
/// (see `plan_hierarchical`), used only for the overflow fallback once no
/// individual server fits an arrival. The scarcest remaining resource as
/// a fraction of pod capacity decides ties: memory is the binding
/// constraint for much of the paper's VM mix, so CPU slack alone would
/// keep routing arrivals at memory-full pods.
struct PodRoute {
    cpu_slack: f64,
    mem_slack: f64,
    cpu_cap: f64,
    mem_cap: f64,
}

impl PodRoute {
    fn frac(&self) -> f64 {
        let cpu = if self.cpu_cap > 0.0 {
            self.cpu_slack / self.cpu_cap
        } else {
            0.0
        };
        let mem = if self.mem_cap > 0.0 {
            self.mem_slack / self.mem_cap
        } else {
            0.0
        };
        cpu.min(mem)
    }
}

/// One server's remaining routing slack during the arrival distribution.
struct RouteSlot {
    server: usize,
    cpu: f64,
    mem: f64,
    closed: bool,
}

/// Replay a plan onto a fleet view whose position equals the global server
/// index (the shape [`snapshot_sharded`] produces), so the hierarchical
/// spill and rebalance passes can reason about the post-plan placement
/// without touching the data center.
fn apply_plan_to_view(view: &mut [PackServer], plan: &ConsolidationPlan) {
    for m in &plan.moves {
        if let Some(from) = m.from {
            if let Some(pos) = view[from].resident.iter().position(|it| it.vm == m.vm) {
                view[from].resident.swap_remove(pos);
            }
        }
        view[m.to]
            .resident
            .push(PackItem::new(m.vm, m.cpu_ghz, m.mem_mib));
        view[m.to].active = true;
    }
    for &w in &plan.servers_to_wake {
        view[w].active = true;
    }
    for &s in &plan.servers_to_sleep {
        // Mirror `apply_plan`: a sleep target that ended up non-empty is
        // skipped, not forced.
        if view[s].resident.is_empty() {
            view[s].active = false;
        }
    }
}

/// Which consolidation algorithm the optimizer runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's Incremental Power-Aware Consolidation.
    Ipac,
    /// The pMapper baseline.
    Pmapper,
}

/// Optimizer configuration.
pub struct OptimizerConfig {
    /// Consolidation algorithm.
    pub algorithm: Algorithm,
    /// Packing feasibility rule (defaults to CPU + memory, the §VII-B
    /// administrator constraint).
    pub constraint: AndConstraint,
    /// IPAC tuning (ignored by pMapper).
    pub ipac: IpacConfig,
    /// Cost-aware migration policy (applied by IPAC's drain rounds).
    pub policy: Box<dyn MigrationPolicy + Send + Sync>,
}

impl OptimizerConfig {
    /// Default IPAC configuration with the standard constraint set.
    pub fn ipac_default() -> OptimizerConfig {
        OptimizerConfig {
            algorithm: Algorithm::Ipac,
            constraint: AndConstraint::cpu_and_memory(),
            ipac: IpacConfig::default(),
            policy: Box::new(AlwaysAllow),
        }
    }

    /// Default pMapper configuration with the standard constraint set.
    pub fn pmapper_default() -> OptimizerConfig {
        OptimizerConfig {
            algorithm: Algorithm::Pmapper,
            constraint: AndConstraint::cpu_and_memory(),
            ipac: IpacConfig::default(),
            policy: Box::new(AlwaysAllow),
        }
    }
}

/// The data-center-level power optimizer.
pub struct PowerOptimizer {
    cfg: OptimizerConfig,
    invocations: u64,
    total_migrations: u64,
    telemetry: Telemetry,
    shards: usize,
    pods: Option<usize>,
}

impl PowerOptimizer {
    /// Create an optimizer.
    pub fn new(cfg: OptimizerConfig) -> PowerOptimizer {
        PowerOptimizer {
            cfg,
            invocations: 0,
            total_migrations: 0,
            telemetry: Telemetry::disabled(),
            shards: 1,
            pods: None,
        }
    }

    /// Switch to hierarchical planning with pods of at most `pod_size`
    /// servers (`None` or a size that yields a single pod restores the flat
    /// planner bit-for-bit). Pods are contiguous and site-aligned
    /// ([`pod_partition`]); each pod is packed independently — fanned out
    /// over the shard workers — then a cross-pod rebalance pass moves VMs
    /// from the worst-filled pod's overloaded servers into the best-slack
    /// pod. Call after [`PowerOptimizer::set_telemetry`] so the `pod_*`
    /// keys are pre-registered on the right sink.
    pub fn set_pods(&mut self, pod_size: Option<usize>) {
        self.pods = pod_size.filter(|&p| p > 0);
        if self.pods.is_some() {
            self.telemetry.incr("optimizer.pod_invocations", 0);
            self.telemetry.incr("optimizer.pod_rebalance_moves", 0);
            self.telemetry.incr("optimizer.pod_drain_moves", 0);
            self.telemetry.incr("optimizer.pod_spill_placed", 0);
            self.telemetry.gauge_set("optimizer.pod_count", 0.0);
        }
    }

    /// Fan the shardable phases of an invocation out over `shards` workers
    /// (`0` = host parallelism): snapshot construction and the Minimum
    /// Slack root sweeps inside IPAC's packing. The commit phases stay
    /// sequential — an optimizer invocation is the serial barrier of the
    /// sharded replay loop — and the consolidation decisions are
    /// bit-identical at every shard count (see
    /// [`vdc_consolidate::minimum_slack`]).
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = crate::shard::resolve(shards);
        self.cfg.ipac.minslack.shards = self.shards;
    }

    /// Attach a telemetry sink. Each invocation then records its planning
    /// cost (`optimizer.invocation_ns`), migrations proposed vs applied,
    /// sleep/wake decisions, and the post-consolidation capacity slack
    /// (`optimizer.slack_ghz`).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of invocations so far.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Total migrations executed across invocations.
    pub fn total_migrations(&self) -> u64 {
        self.total_migrations
    }

    /// Plan without applying (inspection / dry runs).
    pub fn plan(&self, dc: &DataCenter, new_items: &[PackItem]) -> ConsolidationPlan {
        let span = self.telemetry.timer("optimizer.snapshot_ns");
        let snap = snapshot_sharded(dc, self.shards);
        span.finish();
        if let Some(pod_size) = self.pods {
            let sites: Vec<usize> = (0..snap.len())
                .map(|i| dc.server_site(ServerHandle::from_index(i)))
                .collect();
            let pods = pod_partition(&sites, pod_size);
            if pods.len() > 1 {
                return self.plan_hierarchical(&snap, new_items, &pods);
            }
            // A single pod is the whole fleet: fall through to the flat
            // planner so `pod_size >= n_servers` degenerates bitwise.
        }
        self.plan_flat(&snap, new_items)
    }

    /// Flat (whole-fleet) planning: the paper's global PAC/IPAC or pMapper.
    fn plan_flat(&self, snap: &[PackServer], new_items: &[PackItem]) -> ConsolidationPlan {
        match self.cfg.algorithm {
            Algorithm::Ipac => {
                let (plan, stats) = ipac_plan_stats(
                    snap,
                    new_items,
                    &self.cfg.constraint,
                    self.cfg.policy.as_ref(),
                    &self.cfg.ipac,
                );
                // The Minimum Slack root sweeps fan out over the shard
                // workers; everything else in the invocation is serial.
                self.telemetry
                    .record("optimizer.pack_search_ns", stats.search_ns as f64);
                plan
            }
            Algorithm::Pmapper => pmapper_plan(snap, new_items, &self.cfg.constraint),
        }
    }

    /// Hierarchical planning: pack each pod independently (fanned out over
    /// the shard workers), merge in pod order, place arrivals no pod could
    /// absorb with a fleet-wide spill pass, then run one cross-pod
    /// rebalance moving VMs from the worst-filled pod's overloaded servers
    /// into the best-slack pod.
    ///
    /// The result is deterministic and independent of the shard count:
    /// pods are packed from the same immutable snapshot, merged in pod
    /// index order, and both the spill and rebalance passes run
    /// sequentially on the merged view.
    fn plan_hierarchical(
        &self,
        snap: &[PackServer],
        new_items: &[PackItem],
        pods: &[std::ops::Range<usize>],
    ) -> ConsolidationPlan {
        self.telemetry
            .gauge_set("optimizer.pod_count", pods.len() as f64);
        self.telemetry
            .incr("optimizer.pod_invocations", pods.len() as u64);

        // Route each arrival at *server* granularity: first-fit over the
        // fleet's per-server remaining slack, walking servers in exactly
        // the order flat PAC fills them (power efficiency descending, then
        // index) — the item joins the pod owning the server it lands on.
        // This keeps hierarchical initial placement faithful to the global
        // greedy: efficient hardware and low-PUE sites fill first, and no
        // pod is stuffed past what its servers can actually bin-pack. A
        // server whose slack drops below the smallest arrival footprint is
        // closed; closed entries are compacted away periodically so the
        // scan stays near-linear at megafleet scale. Arrivals no server
        // fits fall back to the pod with the largest scarce-resource
        // fraction — its packer will leave them unplaced and the
        // fleet-wide spill pass picks them up.
        let mut pod_items: Vec<Vec<PackItem>> = vec![Vec::new(); pods.len()];
        if !new_items.is_empty() {
            let mut pod_of = vec![0usize; snap.len()];
            let mut routes = Vec::with_capacity(pods.len());
            for (p, range) in pods.iter().enumerate() {
                let mut route = PodRoute {
                    cpu_slack: 0.0,
                    mem_slack: 0.0,
                    cpu_cap: 0.0,
                    mem_cap: 0.0,
                };
                for s in range.clone() {
                    pod_of[s] = p;
                    route.cpu_cap += snap[s].cpu_capacity_ghz;
                    route.cpu_slack += snap[s].cpu_capacity_ghz;
                    route.mem_cap += snap[s].mem_capacity_mib;
                    route.mem_slack += snap[s].mem_capacity_mib;
                    for it in &snap[s].resident {
                        route.cpu_slack -= it.cpu_ghz;
                        route.mem_slack -= it.mem_mib;
                    }
                }
                routes.push(route);
            }
            let mut order: Vec<usize> = (0..snap.len()).collect();
            order.sort_by(|&a, &b| {
                snap[b]
                    .power_efficiency()
                    .total_cmp(&snap[a].power_efficiency())
                    .then(a.cmp(&b))
            });
            let mut open: Vec<RouteSlot> = order
                .into_iter()
                .map(|si| {
                    let s = &snap[si];
                    let mut slot = RouteSlot {
                        server: si,
                        cpu: s.cpu_capacity_ghz,
                        mem: s.mem_capacity_mib,
                        closed: false,
                    };
                    for it in &s.resident {
                        slot.cpu -= it.cpu_ghz;
                        slot.mem -= it.mem_mib;
                    }
                    slot
                })
                .collect();
            let min_cpu = new_items
                .iter()
                .map(|i| i.cpu_ghz)
                .fold(f64::INFINITY, f64::min);
            let min_mem = new_items
                .iter()
                .map(|i| i.mem_mib)
                .fold(f64::INFINITY, f64::min);
            let mut n_closed = 0usize;
            for item in new_items {
                let mut dest = None;
                for slot in open.iter_mut() {
                    if slot.closed {
                        continue;
                    }
                    if slot.cpu < min_cpu || slot.mem < min_mem {
                        slot.closed = true;
                        n_closed += 1;
                        continue;
                    }
                    if slot.cpu >= item.cpu_ghz && slot.mem >= item.mem_mib {
                        slot.cpu -= item.cpu_ghz;
                        slot.mem -= item.mem_mib;
                        dest = Some(pod_of[slot.server]);
                        break;
                    }
                }
                let p = dest.unwrap_or_else(|| {
                    let mut fallback = 0;
                    for (p, route) in routes.iter().enumerate().skip(1) {
                        if route.frac() > routes[fallback].frac() {
                            fallback = p;
                        }
                    }
                    fallback
                });
                pod_items[p].push(*item);
                routes[p].cpu_slack -= item.cpu_ghz;
                routes[p].mem_slack -= item.mem_mib;
                if n_closed * 2 > open.len() {
                    open.retain(|s| !s.closed);
                    n_closed = 0;
                }
            }
        }

        // Pack each pod independently, fanned out over the shard workers.
        // The per-pod Minimum Slack sweeps stay inline (shards = 1): the
        // parallelism budget is already spent across pods, and nested
        // scoped pools would oversubscribe the host.
        let algorithm = self.cfg.algorithm;
        let constraint = &self.cfg.constraint;
        let policy = self.cfg.policy.as_ref();
        let ipac_cfg = IpacConfig {
            minslack: MinSlackConfig {
                shards: 1,
                ..self.cfg.ipac.minslack
            },
            ..self.cfg.ipac
        };
        let pod_items = &pod_items;
        let pod_plans = crate::shard::map_indices(pods.len(), self.shards, |p| {
            let view = &snap[pods[p].clone()];
            match algorithm {
                Algorithm::Ipac => {
                    let (plan, stats) =
                        ipac_plan_stats(view, &pod_items[p], constraint, policy, &ipac_cfg);
                    (plan, stats.search_ns)
                }
                Algorithm::Pmapper => (pmapper_plan(view, &pod_items[p], constraint), 0),
            }
        });

        // Merge in pod order — deterministic regardless of shard count.
        // Pod plans already speak global server indices (PackServer::index
        // survives slicing).
        let mut plan = ConsolidationPlan::default();
        let mut search_ns = 0u64;
        for (pod_plan, ns) in pod_plans {
            plan.moves.extend(pod_plan.moves);
            plan.servers_to_sleep.extend(pod_plan.servers_to_sleep);
            plan.servers_to_wake.extend(pod_plan.servers_to_wake);
            search_ns += ns;
        }
        if algorithm == Algorithm::Ipac {
            self.telemetry
                .record("optimizer.pack_search_ns", search_ns as f64);
        }

        // Post-plan fleet view (position == global index) for the global
        // passes below.
        let mut post = snap.to_vec();
        apply_plan_to_view(&mut post, &plan);
        let mut woken: BTreeSet<usize> = plan.servers_to_wake.iter().copied().collect();

        // Spill pass: arrivals their assigned pod could not absorb retry
        // against the whole fleet (cross-pod initial placement is cheap —
        // no memory copy).
        let placed: BTreeSet<VmId> = plan
            .moves
            .iter()
            .filter(|m| m.from.is_none())
            .map(|m| m.vm)
            .collect();
        let spill: Vec<PackItem> = new_items
            .iter()
            .filter(|it| !placed.contains(&it.vm))
            .copied()
            .collect();
        if !spill.is_empty() {
            let was_active: Vec<bool> = post.iter().map(|s| s.active).collect();
            let spill_cfg = MinSlackConfig {
                shards: self.shards,
                ..self.cfg.ipac.minslack
            };
            let res = pac_pack(&mut post, &spill, constraint, &spill_cfg);
            let mut spill_placed = 0u64;
            for &(vm, si) in &res.assignments {
                let item = spill.iter().find(|it| it.vm == vm).expect("spill item");
                plan.moves.push(Move {
                    vm,
                    from: None,
                    to: post[si].index,
                    cpu_ghz: item.cpu_ghz,
                    mem_mib: item.mem_mib,
                });
                spill_placed += 1;
                post[si].active = true;
                if !was_active[si] && woken.insert(post[si].index) {
                    plan.servers_to_wake.push(post[si].index);
                }
            }
            self.telemetry
                .incr("optimizer.pod_spill_placed", spill_placed);
        }

        // Cross-pod rebalance: one pass from the worst-filled pod to the
        // best-slack pod, moving only the smallest VMs off overloaded
        // servers — the cheap escape hatch for load the pod boundary
        // trapped. Only VMs untouched by the pod plans are candidates, so
        // each VM appears in at most one move (apply_plan detaches every
        // mover before re-attaching; two moves of one VM would corrupt it).
        let mut worst = 0usize;
        let mut best = 0usize;
        let (mut worst_fill, mut best_slack) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for (p, range) in pods.iter().enumerate() {
            let mut cap = 0.0;
            let mut dem = 0.0;
            for s in &post[range.clone()] {
                cap += s.cpu_capacity_ghz;
                for it in &s.resident {
                    dem += it.cpu_ghz;
                }
            }
            let fill = if cap > 0.0 { dem / cap } else { 0.0 };
            let slack = cap - dem;
            if fill > worst_fill {
                worst_fill = fill;
                worst = p;
            }
            if slack > best_slack {
                best_slack = slack;
                best = p;
            }
        }
        if worst != best {
            let moved: BTreeSet<VmId> = plan.moves.iter().map(|m| m.vm).collect();
            // Smallest residents of overloaded servers, until each server
            // fits again.
            let mut candidates: Vec<(PackItem, usize)> = Vec::new();
            for s in &post[pods[worst].clone()] {
                let mut dem: f64 = s.resident.iter().map(|it| it.cpu_ghz).sum();
                if dem <= s.cpu_capacity_ghz {
                    continue;
                }
                let mut movable: Vec<&PackItem> = s
                    .resident
                    .iter()
                    .filter(|it| !moved.contains(&it.vm))
                    .collect();
                movable.sort_by(|a, b| {
                    a.cpu_ghz
                        .partial_cmp(&b.cpu_ghz)
                        .expect("finite demands")
                        .then_with(|| a.vm.cmp(&b.vm))
                });
                for it in movable {
                    if dem <= s.cpu_capacity_ghz {
                        break;
                    }
                    candidates.push((*it, s.index));
                    dem -= it.cpu_ghz;
                }
            }
            if !candidates.is_empty() {
                let mut target: Vec<PackServer> = post[pods[best].clone()].to_vec();
                let items: Vec<PackItem> = candidates.iter().map(|(it, _)| *it).collect();
                let rebalance_cfg = MinSlackConfig {
                    shards: self.shards,
                    ..self.cfg.ipac.minslack
                };
                let was_active: Vec<bool> = target.iter().map(|s| s.active).collect();
                let res = pac_pack(&mut target, &items, constraint, &rebalance_cfg);
                let mut rebalance_moves = 0u64;
                for &(vm, si) in &res.assignments {
                    let (item, origin) = candidates
                        .iter()
                        .find(|(it, _)| it.vm == vm)
                        .expect("candidate item");
                    let to = target[si].index;
                    plan.moves.push(Move {
                        vm,
                        from: Some(*origin),
                        to,
                        cpu_ghz: item.cpu_ghz,
                        mem_mib: item.mem_mib,
                    });
                    rebalance_moves += 1;
                    // Keep `post` current for the drain pass below.
                    if let Some(pos) = post[*origin].resident.iter().position(|it| it.vm == vm) {
                        post[*origin].resident.swap_remove(pos);
                    }
                    post[to].resident.push(*item);
                    post[to].active = true;
                    if !was_active[si] && woken.insert(to) {
                        plan.servers_to_wake.push(to);
                    }
                }
                self.telemetry
                    .incr("optimizer.pod_rebalance_moves", rebalance_moves);
            }
        }

        self.drain_pass(&mut post, &mut plan, pods);
        plan
    }

    /// Fragmentation drain: per-pod packing strands partially-filled
    /// servers that a global packer would have merged, and that waste is
    /// exactly the hierarchical power regret the regret harness
    /// (`tests/regret.rs`) bounds. One cheap pass recovers most of it:
    /// evacuate servers from the *emptiest* pod into the best-slack other
    /// pod's **active** headroom (never waking anything). A server that
    /// drains completely is put to sleep — the idle-power win — and a
    /// server that only drains partially keeps just the moves whose target
    /// is strictly more power-efficient than the source, so every
    /// committed move lowers power on its own. A resident that is itself
    /// a fresh placement (`from: None`) is *re-routed* — its existing
    /// move's target is rewritten — while residents already migrated by a
    /// pod plan block their server (one move per VM: `apply_plan` detaches
    /// all movers before re-attaching, so a second move would corrupt the
    /// VM).
    fn drain_pass(
        &self,
        post: &mut [PackServer],
        plan: &mut ConsolidationPlan,
        pods: &[std::ops::Range<usize>],
    ) {
        let pod_load = |view: &[PackServer]| {
            let mut cap = 0.0;
            let mut dem = 0.0;
            for s in view {
                cap += s.cpu_capacity_ghz;
                for it in &s.resident {
                    dem += it.cpu_ghz;
                }
            }
            (cap, dem)
        };
        // Emptiest pod with any demand (ties break toward the lower pod).
        let mut lo: Option<usize> = None;
        let mut lo_fill = f64::INFINITY;
        for (p, range) in pods.iter().enumerate() {
            let (cap, dem) = pod_load(&post[range.clone()]);
            if dem > 0.0 && dem / cap < lo_fill {
                lo_fill = dem / cap;
                lo = Some(p);
            }
        }
        let Some(lo) = lo else { return };
        // Best active-headroom pod other than the source.
        let mut hi: Option<usize> = None;
        let mut hi_slack = f64::NEG_INFINITY;
        for (p, range) in pods.iter().enumerate() {
            if p == lo {
                continue;
            }
            let slack: f64 = post[range.clone()]
                .iter()
                .filter(|s| s.active)
                .map(|s| {
                    let dem: f64 = s.resident.iter().map(|it| it.cpu_ghz).sum();
                    (s.cpu_capacity_ghz - dem).max(0.0)
                })
                .sum();
            if slack > hi_slack {
                hi_slack = slack;
                hi = Some(p);
            }
        }
        let Some(hi) = hi else { return };

        // Residents already *migrated* (from: Some) pin their server;
        // fresh placements (from: None) can be re-routed in place.
        let mut migrated: BTreeSet<VmId> = BTreeSet::new();
        let mut placement_move: std::collections::BTreeMap<VmId, usize> =
            std::collections::BTreeMap::new();
        for (mi, m) in plan.moves.iter().enumerate() {
            match m.from {
                Some(_) => {
                    migrated.insert(m.vm);
                }
                None => {
                    placement_move.insert(m.vm, mi);
                }
            }
        }
        let drain_cfg = MinSlackConfig {
            shards: self.shards,
            ..self.cfg.ipac.minslack
        };
        let mut target: Vec<PackServer> = post[pods[hi].clone()]
            .iter()
            .filter(|s| s.active)
            .cloned()
            .collect();
        // Least-loaded source servers first: the cheapest wins, and the
        // remaining headroom shrinks with every committed drain.
        let mut sources: Vec<usize> = pods[lo]
            .clone()
            .filter(|&i| post[i].active && !post[i].resident.is_empty())
            .collect();
        let server_demand = |s: &PackServer| s.resident.iter().map(|it| it.cpu_ghz).sum::<f64>();
        sources.sort_by(|&a, &b| {
            server_demand(&post[a])
                .total_cmp(&server_demand(&post[b]))
                .then_with(|| a.cmp(&b))
        });
        let mut drain_moves = 0u64;
        for si in sources {
            if post[si].resident.iter().any(|it| migrated.contains(&it.vm)) {
                continue;
            }
            let items = post[si].resident.clone();
            let mut trial = target.clone();
            let res = pac_pack(&mut trial, &items, &self.cfg.constraint, &drain_cfg);
            // Two wins, two commit rules. A *full* drain empties the
            // server and sleeps it — the idle-power saving justifies any
            // active target. A *partial* drain keeps the source awake, so
            // a moved VM only pays off when its new host turns demand into
            // power strictly better than the old one did.
            let full = res.unplaced.is_empty();
            let src_eff = post[si].power_efficiency();
            for &(vm, ti) in &res.assignments {
                if !full && target[ti].power_efficiency() <= src_eff {
                    continue;
                }
                let item = *items.iter().find(|it| it.vm == vm).expect("drain item");
                let to = target[ti].index;
                match placement_move.get(&vm) {
                    // A fresh placement: send it straight to the drain
                    // target instead of emitting a second move.
                    Some(&mi) => plan.moves[mi].to = to,
                    None => plan.moves.push(Move {
                        vm,
                        from: Some(si),
                        to,
                        cpu_ghz: item.cpu_ghz,
                        mem_mib: item.mem_mib,
                    }),
                }
                // Dropping an assignment only sheds load, so committing
                // this subset onto the real target view stays feasible.
                target[ti].resident.push(item);
                post[to].resident.push(item);
                if let Some(pos) = post[si].resident.iter().position(|it| it.vm == vm) {
                    post[si].resident.remove(pos);
                }
                drain_moves += 1;
            }
            if full {
                post[si].active = false;
                // A wake the pod plan scheduled purely for re-routed
                // placements is now pointless (and would burn wake
                // energy): cancel it, and make the emptied server sleep.
                if let Some(pos) = plan.servers_to_wake.iter().position(|&w| w == si) {
                    plan.servers_to_wake.remove(pos);
                }
                if !plan.servers_to_sleep.contains(&si) {
                    plan.servers_to_sleep.push(si);
                }
            }
        }
        self.telemetry
            .incr("optimizer.pod_drain_moves", drain_moves);
    }

    /// One optimizer invocation: snapshot → plan → apply. `new_items` are
    /// VMs registered in the data center but not yet placed.
    pub fn optimize(&mut self, dc: &mut DataCenter, new_items: &[PackItem]) -> Result<ApplyStats> {
        let span = self.telemetry.timer("optimizer.invocation_ns");
        let plan = self.plan(dc, new_items);
        let stats = apply_plan(dc, &plan)?;
        span.finish();
        self.finish_invocation(dc, plan.moves.len(), &stats);
        Ok(stats)
    }

    /// One optimizer invocation whose migrations may fail, drawing
    /// per-attempt outcomes from the fault session. Each migration gets
    /// the plan's deterministic retry-with-exponential-backoff budget; the
    /// first migration to exhaust it truncates the suffix, so the plan
    /// commits its successful prefix (`optimizer.plan_partial` counts
    /// truncations). With a plan whose migration failure probability is
    /// zero, this is behaviorally identical to [`PowerOptimizer::optimize`].
    pub fn optimize_faulted(
        &mut self,
        dc: &mut DataCenter,
        new_items: &[PackItem],
        faults: &mut FaultSession<'_>,
    ) -> Result<ApplyStats> {
        let span = self.telemetry.timer("optimizer.invocation_ns");
        let plan = self.plan(dc, new_items);
        let max_attempts = faults.plan().max_migration_attempts();
        let partial =
            apply_plan_fallible(dc, &plan, max_attempts, || faults.draw_migration_failure())?;
        span.finish();
        self.finish_invocation(dc, plan.moves.len(), &partial.stats);
        faults.migration_retries += partial.retries;
        faults.migrations_dropped += partial.dropped as u64;
        faults.stranded_vms += partial.stranded.len() as u64;
        if partial.is_partial() {
            faults.plan_partials += 1;
            self.telemetry.incr("optimizer.plan_partial", 1);
        }
        Ok(partial.stats)
    }

    /// Shared invocation bookkeeping: counters, telemetry rollups, and the
    /// post-consolidation slack gauge.
    fn finish_invocation(&mut self, dc: &DataCenter, proposed: usize, stats: &ApplyStats) {
        self.invocations += 1;
        self.total_migrations += stats.migrations as u64;
        self.telemetry.incr("optimizer.invocations", 1);
        self.telemetry
            .incr("optimizer.migrations_proposed", proposed as u64);
        self.telemetry
            .incr("optimizer.migrations_applied", stats.migrations as u64);
        self.telemetry
            .incr("optimizer.servers_slept", stats.slept as u64);
        self.telemetry
            .incr("optimizer.servers_woken", stats.woken as u64);
        self.telemetry
            .record("optimizer.migrated_mib", stats.migrated_mib);
        self.telemetry
            .gauge_set("optimizer.slack_ghz", active_slack_ghz(dc));
    }
}

/// Spare CPU capacity across active servers (GHz): how much headroom the
/// consolidated placement leaves before the next overload.
fn active_slack_ghz(dc: &DataCenter) -> f64 {
    dc.active_servers()
        .into_iter()
        .map(|s| {
            let cap = dc.server(s).map(|sv| sv.capacity_ghz()).unwrap_or(0.0);
            let demand = dc.server_demand_ghz(s).unwrap_or(0.0);
            (cap - demand).max(0.0)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdc_consolidate::view::snapshot;
    use vdc_dcsim::{Server, ServerSpec, VmId, VmSpec};

    fn srv(i: usize) -> ServerHandle {
        ServerHandle::from_index(i)
    }

    fn spread_dc() -> DataCenter {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        dc.add_server(Server::active(ServerSpec::type_dual_2ghz()));
        dc.add_server(Server::active(ServerSpec::type_dual_1_5ghz()));
        for i in 0..3 {
            let h = dc.add_vm(VmSpec::new(i, 0.8, 1024.0)).unwrap();
            dc.place_vm(h, srv(i as usize)).unwrap();
        }
        dc
    }

    fn placement_by_label(dc: &DataCenter, id: u64) -> Option<usize> {
        dc.lookup(VmId(id))
            .and_then(|h| dc.placement_of(h))
            .map(|s| s.index())
    }

    #[test]
    fn ipac_invocation_consolidates_and_counts() {
        let mut dc = spread_dc();
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        let stats = opt.optimize(&mut dc, &[]).unwrap();
        assert!(stats.migrations >= 2, "{stats:?}");
        assert_eq!(opt.invocations(), 1);
        assert_eq!(opt.total_migrations(), stats.migrations as u64);
        // Everything should now sit on the efficient quad server.
        for i in 0..3 {
            assert_eq!(placement_by_label(&dc, i), Some(0));
        }
        dc.apply_dvfs(true).unwrap();
        assert_eq!(dc.active_servers(), vec![srv(0)]);
    }

    #[test]
    fn pmapper_invocation_also_consolidates() {
        let mut dc = spread_dc();
        let mut opt = PowerOptimizer::new(OptimizerConfig::pmapper_default());
        let stats = opt.optimize(&mut dc, &[]).unwrap();
        assert!(stats.migrations >= 2, "{stats:?}");
        for i in 0..3 {
            assert_eq!(placement_by_label(&dc, i), Some(0));
        }
    }

    #[test]
    fn new_items_placed_by_invocation() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::asleep(ServerSpec::type_quad_3ghz()));
        dc.add_vm(VmSpec::new(7, 1.0, 1024.0)).unwrap();
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        let stats = opt
            .optimize(&mut dc, &[PackItem::new(VmId(7), 1.0, 1024.0)])
            .unwrap();
        assert_eq!(stats.placements, 1);
        assert_eq!(placement_by_label(&dc, 7), Some(0));
        assert!(dc.server(srv(0)).unwrap().is_active());
    }

    #[test]
    fn dry_run_plan_does_not_mutate() {
        let dc = spread_dc();
        let opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        let plan = opt.plan(&dc, &[]);
        assert!(!plan.moves.is_empty());
        // dc unchanged.
        assert_eq!(placement_by_label(&dc, 1), Some(1));
    }

    #[test]
    fn sharded_snapshot_equals_sequential_snapshot() {
        let dc = spread_dc();
        let sequential = snapshot(&dc);
        for shards in [1usize, 2, 3, 16] {
            let sharded = snapshot_sharded(&dc, shards);
            assert_eq!(sharded.len(), sequential.len());
            for (a, b) in sharded.iter().zip(&sequential) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.cpu_capacity_ghz.to_bits(), b.cpu_capacity_ghz.to_bits());
                assert_eq!(a.mem_capacity_mib.to_bits(), b.mem_capacity_mib.to_bits());
                assert_eq!(a.active, b.active);
                assert_eq!(a.resident.len(), b.resident.len());
                for (x, y) in a.resident.iter().zip(&b.resident) {
                    assert_eq!(x.vm, y.vm);
                    assert_eq!(x.cpu_ghz.to_bits(), y.cpu_ghz.to_bits());
                    assert_eq!(x.mem_mib.to_bits(), y.mem_mib.to_bits());
                }
            }
        }
    }

    #[test]
    fn empty_datacenter_invocation_is_a_safe_noop() {
        // 0 VMs, 0 servers: the optimizer/largescale boundary must not
        // panic or fabricate work.
        let mut dc = DataCenter::new();
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        let stats = opt.optimize(&mut dc, &[]).unwrap();
        assert_eq!(stats, ApplyStats::default());
        assert_eq!(opt.invocations(), 1);
        assert!(snapshot_sharded(&dc, 8).is_empty());
    }

    #[test]
    fn servers_without_vms_stay_asleep() {
        // Servers but no VMs: nothing to place, nothing woken.
        let mut dc = DataCenter::new();
        for _ in 0..3 {
            dc.add_server(Server::asleep(ServerSpec::type_dual_2ghz()));
        }
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        let stats = opt.optimize(&mut dc, &[]).unwrap();
        assert_eq!(stats.woken, 0);
        assert!(dc.active_servers().is_empty());
    }

    #[test]
    fn pod_partition_respects_size_and_sites() {
        // Three sites of 5, 3, 4 servers; pod_size 2.
        let sites: Vec<usize> = [0usize; 5]
            .iter()
            .chain([1usize; 3].iter())
            .chain([2usize; 4].iter())
            .copied()
            .collect();
        let pods = pod_partition(&sites, 2);
        // ceil(5/2) + ceil(3/2) + ceil(4/2) = 3 + 2 + 2.
        assert_eq!(pods.len(), 7);
        let mut next = 0;
        for pod in &pods {
            assert_eq!(pod.start, next, "pods must tile the fleet");
            assert!(!pod.is_empty() && pod.len() <= 2);
            let site = sites[pod.start];
            assert!(pod.clone().all(|i| sites[i] == site), "pod straddles sites");
            next = pod.end;
        }
        assert_eq!(next, sites.len());
        // pod_size >= fleet: one pod per site, not one pod total.
        assert_eq!(pod_partition(&sites, 100).len(), 3);
        // Single site degenerates to ceil(n / pod_size).
        assert_eq!(pod_partition(&[0; 10], 4).len(), 3);
        assert_eq!(pod_partition(&[], 4).len(), 0);
    }

    #[test]
    #[should_panic(expected = "pod_size must be positive")]
    fn pod_partition_rejects_zero() {
        pod_partition(&[0, 0], 0);
    }

    #[test]
    fn single_pod_plan_is_bitwise_flat() {
        // pod_size >= fleet on a single-site fleet must take the flat path
        // exactly — same plan, byte for byte.
        let dc = spread_dc();
        let flat = PowerOptimizer::new(OptimizerConfig::ipac_default());
        let mut hier = PowerOptimizer::new(OptimizerConfig::ipac_default());
        hier.set_pods(Some(64));
        let a = flat.plan(&dc, &[]);
        let b = hier.plan(&dc, &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn set_pods_zero_or_none_disables_hierarchy() {
        let dc = spread_dc();
        let flat = PowerOptimizer::new(OptimizerConfig::ipac_default());
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        opt.set_pods(Some(0));
        assert_eq!(opt.plan(&dc, &[]), flat.plan(&dc, &[]));
        opt.set_pods(Some(1));
        opt.set_pods(None);
        assert_eq!(opt.plan(&dc, &[]), flat.plan(&dc, &[]));
    }

    /// Two sites × two quad servers, VMs spread one per server.
    fn two_site_dc() -> DataCenter {
        let mut dc = DataCenter::new();
        for site in 0..2 {
            for _ in 0..2 {
                dc.add_server_in_site(Server::active(ServerSpec::type_quad_3ghz()), site)
                    .unwrap();
            }
        }
        for i in 0..4 {
            let h = dc.add_vm(VmSpec::new(i, 0.8, 1024.0)).unwrap();
            dc.place_vm(h, srv(i as usize)).unwrap();
        }
        dc
    }

    #[test]
    fn hierarchical_consolidates_within_pods() {
        let mut dc = two_site_dc();
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        opt.set_pods(Some(2));
        let stats = opt.optimize(&mut dc, &[]).unwrap();
        assert!(stats.migrations >= 2, "{stats:?}");
        // Each pod consolidates onto one of its own servers; no VM crosses
        // a site boundary.
        for i in 0..4u64 {
            let placed = placement_by_label(&dc, i).unwrap();
            let expected_site = if i < 2 { 0 } else { 1 };
            assert_eq!(dc.server_site(srv(placed)), expected_site);
        }
        dc.apply_dvfs(true).unwrap();
        assert_eq!(dc.active_servers().len(), 2, "one active server per pod");
    }

    #[test]
    fn hierarchical_places_new_items_via_slack_routing() {
        let mut dc = two_site_dc();
        let mut items = Vec::new();
        for i in 10..14 {
            dc.add_vm(VmSpec::new(i, 1.0, 1024.0)).unwrap();
            items.push(PackItem::new(VmId(i), 1.0, 1024.0));
        }
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        opt.set_pods(Some(2));
        let stats = opt.optimize(&mut dc, &items).unwrap();
        assert_eq!(stats.placements, 4);
        for i in 10..14 {
            assert!(placement_by_label(&dc, i).is_some());
        }
    }

    #[test]
    fn hierarchical_spill_escapes_a_full_pod() {
        // Pod 0 (site 0) advertises the most CPU slack but its memory is
        // completely full, so the slack router sends every arrival there
        // and the pod packer cannot place them — the fleet-wide spill pass
        // must land them in pod 1.
        let mut dc = DataCenter::new();
        dc.add_server_in_site(Server::active(ServerSpec::type_quad_3ghz()), 0)
            .unwrap();
        dc.add_server_in_site(Server::active(ServerSpec::type_dual_2ghz()), 1)
            .unwrap();
        let big = dc.add_vm(VmSpec::new(1, 0.1, 16384.0)).unwrap();
        dc.place_vm(big, srv(0)).unwrap();
        let mut items = Vec::new();
        for i in 10..14 {
            dc.add_vm(VmSpec::new(i, 0.5, 2048.0)).unwrap();
            items.push(PackItem::new(VmId(i), 0.5, 2048.0));
        }
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        opt.set_pods(Some(1));
        let stats = opt.optimize(&mut dc, &items).unwrap();
        assert_eq!(stats.placements, 4, "every arrival must land");
        for i in 10..14 {
            assert_eq!(placement_by_label(&dc, i), Some(1), "spilled to pod 1");
        }
    }

    #[test]
    fn hierarchical_is_deterministic_across_shard_counts() {
        let build = || {
            let mut dc = two_site_dc();
            for i in 10..18 {
                dc.add_vm(VmSpec::new(i, 0.7, 512.0)).unwrap();
            }
            dc
        };
        let items: Vec<PackItem> = (10..18)
            .map(|i| PackItem::new(VmId(i), 0.7, 512.0))
            .collect();
        let reference = {
            let dc = build();
            let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
            opt.set_pods(Some(2));
            opt.plan(&dc, &items)
        };
        for shards in [1usize, 2, 3, 8] {
            let dc = build();
            let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
            opt.set_shards(shards);
            opt.set_pods(Some(2));
            assert_eq!(opt.plan(&dc, &items), reference, "shards={shards}");
        }
    }

    #[test]
    fn all_asleep_fleet_wakes_for_new_items() {
        // The wake path of the boundary: an entirely sleeping fleet must
        // wake exactly the servers the placement needs.
        let mut dc = DataCenter::new();
        for _ in 0..4 {
            dc.add_server(Server::asleep(ServerSpec::type_dual_2ghz()));
        }
        let mut items = Vec::new();
        for i in 0..3 {
            dc.add_vm(VmSpec::new(i, 1.0, 1024.0)).unwrap();
            items.push(PackItem::new(VmId(i), 1.0, 1024.0));
        }
        let mut opt = PowerOptimizer::new(OptimizerConfig::ipac_default());
        opt.set_shards(8);
        let stats = opt.optimize(&mut dc, &items).unwrap();
        assert_eq!(stats.placements, 3);
        let active = dc.active_servers();
        assert!(!active.is_empty(), "placement must wake servers");
        assert!(active.len() < 4, "3 GHz of demand must not wake the fleet");
        assert!(dc.wake_count() >= 1);
        for i in 0..3 {
            assert!(placement_by_label(&dc, i).is_some());
        }
    }
}
