//! The hardware-testbed scenario of §VI-A / §VII-A, simulated.
//!
//! Four servers host eight two-tier RUBBoS-like applications (16 VMs).
//! Every application has its own response-time controller; every server
//! runs the CPU resource arbitrator (DVFS). The data-center power optimizer
//! can be invoked on top, but the §VII-A experiments disable it ("In this
//! experiment, we disable the power optimizer to evaluate the response time
//! controllers"), which is the default here too.

use crate::controller::{identify_plant, IdentificationConfig};
use crate::tier::{ControllerSpec, TierController};
use crate::{CoreError, Result};
use vdc_apptier::{AppSim, WorkloadProfile};
use vdc_dcsim::{CpuArbitrator, DataCenter, Server, ServerHandle, ServerSpec, VmHandle, VmSpec};

/// Configuration of the testbed scenario.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Number of applications (paper: 8).
    pub n_apps: usize,
    /// Concurrency level per application (paper: 40).
    pub concurrency: usize,
    /// Response-time set point (ms; paper: 1000).
    pub setpoint_ms: f64,
    /// Control period (seconds; paper: "several seconds").
    pub period_s: f64,
    /// Identification settings.
    pub ident: IdentificationConfig,
    /// Identify one model and share it across identical applications
    /// (the paper identifies one application and reuses the controller
    /// design; Figs. 4–5 probe exactly this robustness).
    pub share_model: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Which tier controller each application runs (the [`crate::tier`]
    /// seam; default: the paper MPC).
    pub controller: ControllerSpec,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            n_apps: 8,
            concurrency: 40,
            setpoint_ms: 1000.0,
            period_s: 4.0,
            ident: IdentificationConfig::default(),
            share_model: true,
            seed: 2010,
            controller: ControllerSpec::Mpc,
        }
    }
}

/// One sample of the testbed per control period.
#[derive(Debug, Clone)]
pub struct TestbedSample {
    /// Simulation time at the end of the period (seconds).
    pub time_s: f64,
    /// Measured 90-percentile response time per application (ms); `None`
    /// if no requests completed that period.
    pub response_ms: Vec<Option<f64>>,
    /// Total cluster power (watts).
    pub power_w: f64,
    /// Per-server DVFS frequency (GHz; 0 = sleeping).
    pub freq_ghz: Vec<f64>,
}

/// The simulated testbed.
pub struct Testbed {
    dc: DataCenter,
    apps: Vec<AppSim>,
    controllers: Vec<Box<dyn TierController>>,
    /// `vm_handles[app][tier]`.
    vm_handles: Vec<Vec<VmHandle>>,
    time_s: f64,
}

impl Testbed {
    /// Build the testbed: create servers and VMs, identify models, and
    /// construct the controllers. This performs the §IV-B identification
    /// experiment, so it simulates several hundred control periods.
    pub fn build(cfg: &TestbedConfig) -> Result<Testbed> {
        if cfg.n_apps == 0 {
            return Err(CoreError::BadConfig("need at least one application".into()));
        }
        let profile = WorkloadProfile::rubbos();
        let n_tiers = profile.n_tiers();

        // Four servers as in §VI-A (two larger, two smaller boxes).
        let mut dc = DataCenter::new();
        dc.set_arbitrator(CpuArbitrator::new(0.05));
        let specs = [
            ServerSpec::type_quad_3ghz(),
            ServerSpec::type_dual_2ghz(),
            ServerSpec::type_dual_2ghz(),
            ServerSpec::type_quad_3ghz(),
        ];
        for spec in specs {
            dc.add_server(Server::active(spec));
        }

        // One model shared across identical applications, or one each.
        let ident_model = if cfg.share_model {
            let mut twin = AppSim::new(
                profile.clone(),
                cfg.concurrency,
                &vec![1.0; n_tiers],
                cfg.seed ^ 0x51D,
            )?;
            Some(identify_plant(&mut twin, &cfg.ident, cfg.seed)?)
        } else {
            None
        };

        let mut apps = Vec::with_capacity(cfg.n_apps);
        let mut controllers = Vec::with_capacity(cfg.n_apps);
        let mut vm_handles = Vec::with_capacity(cfg.n_apps);
        let c0 = vec![1.0; n_tiers];
        for a in 0..cfg.n_apps {
            let plant = AppSim::new(
                profile.clone(),
                cfg.concurrency,
                &c0,
                cfg.seed.wrapping_add(7919 * (a as u64 + 1)),
            )?;
            let model = match &ident_model {
                Some(m) => m.clone(),
                None => {
                    let mut twin = AppSim::new(
                        profile.clone(),
                        cfg.concurrency,
                        &c0,
                        cfg.seed ^ (0xA11 + a as u64),
                    )?;
                    identify_plant(&mut twin, &cfg.ident, cfg.seed + a as u64)?
                }
            };
            let controller = cfg
                .controller
                .build(&model, cfg.setpoint_ms, cfg.period_s, &c0)?;

            // Register the application's tier VMs, spreading web and DB
            // tiers across different servers.
            let mut handles = Vec::with_capacity(n_tiers);
            for (tier, &c_init) in c0.iter().enumerate() {
                let vm_id = (a * n_tiers + tier) as u64;
                let h = dc.add_vm(VmSpec::for_app(
                    vm_id,
                    a as u32,
                    tier as u32,
                    c_init,
                    1024.0,
                ))?;
                let server = ServerHandle::from_index((a + tier) % dc.n_servers());
                dc.place_vm(h, server)?;
                handles.push(h);
            }
            apps.push(plant);
            controllers.push(controller);
            vm_handles.push(handles);
        }

        Ok(Testbed {
            dc,
            apps,
            controllers,
            vm_handles,
            time_s: 0.0,
        })
    }

    /// Current simulation time (seconds).
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// Number of applications.
    pub fn n_apps(&self) -> usize {
        self.apps.len()
    }

    /// Borrow the data center (e.g. for energy queries).
    pub fn datacenter(&self) -> &DataCenter {
        &self.dc
    }

    /// Borrow one application's controller (through the
    /// [`TierController`] seam).
    pub fn controller(&self, app: usize) -> &dyn TierController {
        self.controllers[app].as_ref()
    }

    /// Change an application's concurrency level (the Fig. 3 workload
    /// surge: App5 ramps 40 → 80 at t = 600 s).
    pub fn set_concurrency(&mut self, app: usize, concurrency: usize) {
        self.apps[app].set_concurrency(concurrency);
    }

    /// Change an application's response-time set point (Fig. 5 sweep).
    pub fn set_setpoint(&mut self, app: usize, setpoint_ms: f64) {
        self.controllers[app].set_setpoint(setpoint_ms);
    }

    /// Run one control period for every application, then arbitrate CPU on
    /// every server (DVFS) and account power.
    pub fn step(&mut self) -> Result<TestbedSample> {
        let period = self.controllers[0].period_s();

        // 1. Application-level control.
        let mut response_ms = Vec::with_capacity(self.apps.len());
        for (ctrl, plant) in self.controllers.iter_mut().zip(&mut self.apps) {
            response_ms.push(ctrl.control_period(plant)?);
        }

        // 2. Propagate the VM demands to the data center.
        for (app, handles) in self.vm_handles.iter().enumerate() {
            let alloc = self.controllers[app].allocation();
            for (tier, &vm) in handles.iter().enumerate() {
                self.dc.set_vm_demand(vm, alloc[tier])?;
            }
        }

        // 3. Server-level arbitration: DVFS to the lowest sufficient level;
        //    when a server is oversubscribed, scale the hosted allocations
        //    proportionally and apply the throttled values to the plants.
        self.dc.apply_dvfs(false)?;
        for i in 0..self.dc.n_servers() {
            let s = ServerHandle::from_index(i);
            let demand = self.dc.server_demand_ghz(s)?;
            let cap = self.dc.server(s)?.spec.max_capacity_ghz();
            if demand > cap {
                let scale = cap / demand;
                let hosted: Vec<VmHandle> = self.dc.hosted_vms(s)?.to_vec();
                for vm in hosted {
                    let (app, tier) = self.dc.vm(vm)?.app.expect("testbed VMs carry app tags");
                    let granted = self.dc.vm_demand(vm)? * scale;
                    self.apps[app as usize].set_allocation(tier as usize, granted)?;
                }
            }
        }

        // 4. Power accounting.
        self.dc.accumulate_energy(period);
        self.time_s += period;
        let freq_ghz = (0..self.dc.n_servers())
            .map(|i| match self.dc.servers()[i].state {
                vdc_dcsim::ServerState::Active { freq_ghz } => freq_ghz,
                vdc_dcsim::ServerState::Sleeping | vdc_dcsim::ServerState::Failed => 0.0,
            })
            .collect();

        Ok(TestbedSample {
            time_s: self.time_s,
            response_ms,
            power_w: self.dc.total_power_watts(),
            freq_ghz,
        })
    }

    /// Run `n` control periods, collecting samples.
    pub fn run(&mut self, n: usize) -> Result<Vec<TestbedSample>> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.step()?);
        }
        Ok(out)
    }

    /// Invoke the data-center power optimizer on the testbed (the §VII-A
    /// experiments disable it, but the integrated system of Fig. 1 runs it
    /// on a long period on top of the response-time controllers).
    ///
    /// Placement changes do not disturb the application plants — live
    /// migration is transparent to the workload — but they change which
    /// server arbitrates each VM's demand and therefore the cluster power.
    pub fn run_optimizer(
        &mut self,
        optimizer: &mut crate::optimizer::PowerOptimizer,
    ) -> Result<vdc_consolidate::view::ApplyStats> {
        optimizer.optimize(&mut self.dc, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced testbed that keeps unit tests fast; the full-scale
    /// scenario is exercised by the fig* binaries and integration tests.
    fn quick_cfg() -> TestbedConfig {
        TestbedConfig {
            n_apps: 2,
            concurrency: 25,
            ident: IdentificationConfig {
                periods: 120,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn build_and_step() {
        let mut tb = Testbed::build(&quick_cfg()).unwrap();
        assert_eq!(tb.n_apps(), 2);
        let s = tb.step().unwrap();
        assert_eq!(s.response_ms.len(), 2);
        assert!(s.power_w > 0.0);
        assert_eq!(s.freq_ghz.len(), 4);
        assert!((tb.time_s() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_apps_rejected() {
        let cfg = TestbedConfig {
            n_apps: 0,
            ..quick_cfg()
        };
        assert!(Testbed::build(&cfg).is_err());
    }

    #[test]
    fn controllers_reach_setpoint() {
        let mut tb = Testbed::build(&quick_cfg()).unwrap();
        let samples = tb.run(100).unwrap();
        // Average the measured p90 over the last third of the run.
        for app in 0..2 {
            let tail: Vec<f64> = samples[66..]
                .iter()
                .filter_map(|s| s.response_ms[app])
                .collect();
            assert!(!tail.is_empty());
            let mean = tail.iter().sum::<f64>() / tail.len() as f64;
            assert!(
                (mean - 1000.0).abs() < 200.0,
                "app {app}: steady-state p90 {mean} ms"
            );
        }
    }

    #[test]
    fn workload_surge_recovers() {
        let mut tb = Testbed::build(&quick_cfg()).unwrap();
        tb.run(60).unwrap();
        tb.set_concurrency(0, 50);
        let surge = tb.run(80).unwrap();
        let tail: Vec<f64> = surge[50..]
            .iter()
            .filter_map(|s| s.response_ms[0])
            .collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - 1000.0).abs() < 250.0,
            "post-surge steady state {mean} ms"
        );
        // The controller should have raised app 0's allocation.
        let demand = tb.controller(0).total_demand_ghz();
        assert!(demand > 1.0, "surged app demand {demand} GHz");
    }

    #[test]
    fn power_tracks_demand() {
        let mut tb = Testbed::build(&quick_cfg()).unwrap();
        let early = tb.step().unwrap().power_w;
        tb.set_setpoint(0, 600.0); // tighter SLA → more CPU → more power
        tb.set_setpoint(1, 600.0);
        let samples = tb.run(60).unwrap();
        let late = samples.last().unwrap().power_w;
        assert!(late >= early - 30.0, "power {late} vs {early}");
        // Energy accrued.
        assert!(tb.datacenter().energy_wh() > 0.0);
    }
}

#[cfg(test)]
mod overload_tests {
    use super::*;
    use crate::controller::IdentificationConfig;

    #[test]
    fn oversubscribed_cluster_degrades_gracefully() {
        // Six applications with aggressive 400 ms targets push total CPU
        // demand past what the four servers can grant; the arbitrator
        // scales allocations instead of crashing, and the system keeps
        // producing measurements with bounded demands.
        let cfg = TestbedConfig {
            n_apps: 6,
            concurrency: 30,
            setpoint_ms: 400.0,
            ident: IdentificationConfig {
                periods: 120,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut tb = Testbed::build(&cfg).unwrap();
        let samples = tb.run(60).unwrap();
        // The run completes and keeps measuring.
        let measured: usize = samples
            .iter()
            .map(|s| s.response_ms.iter().filter(|r| r.is_some()).count())
            .sum();
        assert!(
            measured > 200,
            "cluster starved: only {measured} measurements"
        );
        // Every controller's demand stays within its configured ceiling.
        for app in 0..cfg.n_apps {
            for &c in tb.controller(app).allocation() {
                assert!((0.0..=3.0 + 1e-9).contains(&c));
            }
        }
        // Power stays within the physical envelope of the 4 servers.
        for s in &samples {
            assert!(
                s.power_w > 100.0 && s.power_w < 1200.0,
                "power {}",
                s.power_w
            );
        }
    }
}
