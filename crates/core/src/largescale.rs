//! The large-scale trace-driven simulation of §VI-B / §VII-B.
//!
//! Replays a 7-day utilization trace (5,415 VMs at the paper's scale)
//! against a simulated data center whose servers are randomly drawn from
//! the three CPU types of §VI-B. The data-center-level optimizer (IPAC or
//! pMapper) re-maps VMs on a long period; the server-level arbitrator
//! re-runs DVFS every trace sample (15 minutes); energy is integrated over
//! the whole week and reported per VM — the metric of Fig. 6.

use crate::optimizer::{snapshot_sharded, Algorithm, OptimizerConfig, PowerOptimizer};
use crate::run::RunOptions;
use crate::{CoreError, Result};
use vdc_apptier::rng::SimRng;
use vdc_consolidate::constraint::AndConstraint;
use vdc_consolidate::item::{PackItem, PackServer};
use vdc_consolidate::minslack::MinSlackConfig;
use vdc_consolidate::pac::pac_pack;
use vdc_consolidate::relief::{relieve_overloads, ReliefConfig};
use vdc_consolidate::view::{apply_plan, apply_plan_fallible, ApplyStats};
use vdc_dcsim::{DataCenter, FleetSpec, Server, ServerHandle, ServerSpec, VmHandle, VmSpec};
use vdc_faults::{FaultSession, HostFaultKind};
use vdc_telemetry::Telemetry;
use vdc_trace::{DemandSource, StreamingTrace, UtilizationTrace};

/// Which optimizer drives the large-scale run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// IPAC with DVFS (the paper's solution).
    Ipac,
    /// IPAC without DVFS (ablation: isolates consolidation from DVFS).
    IpacNoDvfs,
    /// pMapper baseline (no DVFS, per the paper's comparison: "IPAC is
    /// integrated with DVFS … Thus, IPAC saves more power").
    Pmapper,
}

/// Configuration of one large-scale run.
#[derive(Debug, Clone)]
pub struct LargeScaleConfig {
    /// Number of VMs to take from the trace.
    pub n_vms: usize,
    /// Number of simulated servers; `None` auto-sizes ("every data center
    /// is assumed to have enough inactive servers").
    pub n_servers: Option<usize>,
    /// Optimizer variant.
    pub optimizer: OptimizerKind,
    /// Optimizer invocation period, in trace samples (16 × 15 min = 4 h).
    pub optimizer_period_samples: usize,
    /// Run the on-demand overload-relief pass every sample between
    /// optimizer invocations (§III; see `vdc_consolidate::relief`).
    pub overload_relief: bool,
    /// Charge energy for wake transitions (static power × wake latency).
    pub count_wake_energy: bool,
    /// RNG seed for server-type assignment.
    pub seed: u64,
    /// Worker threads for the per-server/per-sample map stages (see
    /// [`crate::shard`]). `0` means "use the host parallelism"; the result
    /// is bit-identical for every value.
    pub shards: usize,
    /// Multi-site fleet spec. `None` (the default) stamps the legacy
    /// single-site 15/35/50 paper fleet of `n_servers` machines; `Some`
    /// takes the server count, host mix, and per-site PUE series from the
    /// spec (`n_servers` is ignored). `FleetSpec::paper_default(k)` is
    /// bit-identical to `n_servers: Some(k)` under the same seed.
    pub fleet: Option<FleetSpec>,
}

impl LargeScaleConfig {
    /// Defaults matching §VII-B: IPAC, optimizer every 4 hours.
    pub fn new(n_vms: usize, optimizer: OptimizerKind) -> LargeScaleConfig {
        LargeScaleConfig {
            n_vms,
            n_servers: None,
            optimizer,
            optimizer_period_samples: 16,
            overload_relief: true,
            count_wake_energy: true,
            seed: 0x5415,
            shards: 1,
            fleet: None,
        }
    }
}

/// Result of one large-scale run.
#[derive(Debug, Clone)]
pub struct LargeScaleResult {
    /// Number of VMs simulated.
    pub n_vms: usize,
    /// Total energy over the trace (Wh).
    pub total_energy_wh: f64,
    /// Energy per VM (Wh) — the Fig. 6 y-axis.
    pub energy_per_vm_wh: f64,
    /// Total live migrations executed.
    pub migrations: u64,
    /// Mean number of active servers over the run.
    pub mean_active_servers: f64,
    /// Peak number of active servers.
    pub peak_active_servers: usize,
    /// Optimizer invocations.
    pub optimizer_invocations: u64,
    /// Live migrations performed by the on-demand overload-relief pass
    /// (already included in `migrations`).
    pub relief_migrations: u64,
    /// Fraction of total CPU demand that could not be served because its
    /// host was overloaded beyond maximum capacity (performance-assurance
    /// proxy; 0.0 = every VM always got its demanded cycles).
    pub sla_violation_fraction: f64,
    /// Energy spent on wake transitions (Wh, included in the total when
    /// `count_wake_energy` is set).
    pub wake_energy_wh: f64,
    /// Final VM→server placement, sorted by VM id (shard-equivalence
    /// suites compare this against the single-threaded run).
    pub final_placements: Vec<(u64, usize)>,
    /// Facility energy per site (Wh, PUE included), indexed by site; one
    /// entry for the legacy single-site fleet. Wake energy is charged at
    /// the IT level and is *not* folded into these per-site figures.
    pub site_energy_wh: Vec<f64>,
    /// Per-sample time series (power, active servers, migration progress).
    /// Populated only when [`RunOptions::capture_series`] is set; empty
    /// otherwise.
    pub series: Vec<WeekSample>,
}

/// Build the data-center server fleet: random mix of the three §VI-B CPU
/// types, all initially asleep.
///
/// The mix is bottom-heavy (15 % quad-3 GHz, 35 % dual-2 GHz, 50 %
/// dual-1.5 GHz): power-efficient machines are the scarce resource, so
/// large data centers are forced onto less efficient types — the mechanism
/// the paper gives for energy-per-VM rising with the VM count ("both
/// algorithms try to use power-efficient servers first. With more VMs,
/// more power-inefficient servers need to be used").
fn build_fleet(n_servers: usize, seed: u64) -> DataCenter {
    let mut rng = SimRng::seed_from_u64(seed);
    let catalog = ServerSpec::catalog();
    let mut dc = DataCenter::new();
    for _ in 0..n_servers {
        let spec = match rng.index(100) {
            0..=14 => catalog[0].clone(),  // quad 3 GHz
            15..=49 => catalog[1].clone(), // dual 2 GHz
            _ => catalog[2].clone(),       // dual 1.5 GHz
        };
        dc.add_server(Server::asleep(spec));
    }
    dc
}

/// Stamp a multi-site fleet spec, driving the profile draws with the same
/// deterministic RNG stream `build_fleet` consumes — so
/// `FleetSpec::paper_default(k)` reproduces the legacy fleet draw for
/// draw under the same seed.
fn build_fleet_from_spec(spec: &FleetSpec, seed: u64) -> Result<DataCenter> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut dc = DataCenter::new();
    spec.build_with(&mut dc, &mut |n| rng.index(n))?;
    Ok(dc)
}

/// Auto-size the fleet so capacity comfortably exceeds peak demand.
///
/// The per-sample aggregate demand is a pure function of the trace, so the
/// scan over samples fans out across shards; each sample's inner sum stays
/// a sequential VM-order fold and the max-reduction runs on the caller in
/// sample order — bit-identical for every shard count. Requires a
/// random-access source (the caller rejects streaming sources up front).
fn auto_servers<S: DemandSource + Sync>(trace: &S, n_vms: usize, shards: usize) -> usize {
    // Peak aggregate demand across the trace.
    let totals = crate::shard::map_indices(trace.n_samples(), shards, |t| {
        (0..n_vms).map(|vm| trace.demand_ghz(vm, t)).sum::<f64>()
    });
    let mut peak = 0.0_f64;
    for total in totals {
        peak = peak.max(total);
    }
    // Mean fleet capacity under the 15/35/50 type mix; 2× headroom + floor.
    let mean_cap = 0.15 * 12.0 + 0.35 * 4.0 + 0.5 * 3.0;
    ((peak * 2.0 / mean_cap).ceil() as usize).max(4) + 2
}

/// One sample of the large-scale time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeekSample {
    /// Simulation time (seconds since trace start).
    pub t_s: f64,
    /// Instantaneous power of active servers (watts).
    pub power_w: f64,
    /// Active server count.
    pub active_servers: usize,
    /// Cumulative migrations (optimizer + relief).
    pub migrations_so_far: u64,
    /// Instantaneous unmet demand fraction.
    pub unmet_fraction: f64,
}

/// Run the large-scale simulation.
///
/// [`RunOptions`] carries the cross-cutting axes: telemetry sink
/// (per-sample step cost `largescale.sample_ns`, optimizer invocation
/// stats, per-server power samples, DVFS/wake/sleep transition counts —
/// telemetry only observes, results are bit-identical to the
/// uninstrumented run), shard override (else `cfg.shards`), and whether
/// the per-sample [`WeekSample`] series is kept in the result.
pub fn run_large_scale(
    trace: &UtilizationTrace,
    cfg: &LargeScaleConfig,
    opts: &RunOptions<'_>,
) -> Result<LargeScaleResult> {
    let telemetry = opts.telemetry();
    let mut source = trace;
    run_large_scale_impl(&mut source, cfg, opts, &telemetry, None)
}

/// Run the large-scale simulation against a constant-memory streaming
/// trace ([`StreamingTrace`]) — the megafleet path, where a materialized
/// week (`n_vms × n_samples` f64s) would not fit in memory.
///
/// Bit-identical to [`run_large_scale`] on the trace
/// [`StreamingTrace::materialize`] yields for the same
/// [`vdc_trace::TraceConfig`] (the determinism suite pins this). The
/// streaming source cannot be scanned ahead of time, so the fleet must be
/// sized explicitly: `cfg.n_servers` or `cfg.fleet` is required.
pub fn run_large_scale_streaming(
    stream: &mut StreamingTrace,
    cfg: &LargeScaleConfig,
    opts: &RunOptions<'_>,
) -> Result<LargeScaleResult> {
    let telemetry = opts.telemetry();
    run_large_scale_impl(stream, cfg, opts, &telemetry, None)
}

/// The shared replay loop under [`run_large_scale`] (no lifecycle events,
/// `churn: None`), [`run_large_scale_streaming`], and [`crate::run_churn`].
/// Every churn hook is behind the `Option`, so the fixed-population path is
/// byte-identical to the pre-churn loop. Generic over the demand source:
/// the loop only ever reads sample `t` after `advance_to(t)`, in
/// monotonically increasing order, which is exactly the contract a
/// streaming source can honor.
pub(crate) fn run_large_scale_impl<S: DemandSource + Sync>(
    source: &mut S,
    cfg: &LargeScaleConfig,
    opts: &RunOptions<'_>,
    telemetry: &Telemetry,
    mut churn: Option<&mut crate::churn::ChurnCtx<'_>>,
) -> Result<LargeScaleResult> {
    if cfg.n_vms == 0 || cfg.n_vms > source.n_vms() {
        return Err(CoreError::BadConfig(format!(
            "n_vms {} outside trace size {}",
            cfg.n_vms,
            source.n_vms()
        )));
    }
    if cfg.optimizer_period_samples == 0 {
        return Err(CoreError::BadConfig(
            "optimizer period must be at least one sample".into(),
        ));
    }
    let n_samples = source.n_samples();
    let interval_s = source.interval_s();
    let shards = crate::shard::resolve(opts.shards_or(cfg.shards));
    let mut dc = match &cfg.fleet {
        Some(spec) => build_fleet_from_spec(spec, cfg.seed)?,
        None => {
            let n_servers = match cfg.n_servers {
                Some(n) => n,
                None if source.random_access() => auto_servers(&*source, cfg.n_vms, shards),
                None => {
                    return Err(CoreError::BadConfig(
                        "auto-sizing scans every sample up front; a streaming trace \
                         requires an explicit n_servers or fleet spec"
                            .into(),
                    ))
                }
            };
            build_fleet(n_servers, cfg.seed)
        }
    };

    // Register the VMs with their t = 0 demands. Registration order makes
    // arena slot i the trace row i, which is what lets the per-sample
    // demand update below write the demand table by slot index.
    source.advance_to(0);
    let mut initial_items = Vec::with_capacity(cfg.n_vms);
    for vm in 0..cfg.n_vms {
        let demand = source.demand_ghz(vm, 0);
        let mem = source.meta(vm).memory_mib;
        let spec = VmSpec::new(vm as u64, demand, mem);
        let id = spec.id;
        let handle = dc.add_vm(spec)?;
        debug_assert_eq!(handle.index(), vm);
        initial_items.push(PackItem::new(id, demand, mem));
    }

    let dvfs = matches!(cfg.optimizer, OptimizerKind::Ipac);
    let mut optimizer = PowerOptimizer::new(match cfg.optimizer {
        OptimizerKind::Ipac | OptimizerKind::IpacNoDvfs => OptimizerConfig::ipac_default(),
        OptimizerKind::Pmapper => OptimizerConfig::pmapper_default(),
    });
    debug_assert!(matches!(
        cfg.optimizer,
        OptimizerKind::Ipac | OptimizerKind::IpacNoDvfs | OptimizerKind::Pmapper
    ));
    let _ = Algorithm::Ipac; // (re-exported for callers)
    optimizer.set_telemetry(telemetry.clone());
    optimizer.set_shards(shards);
    optimizer.set_pods(opts.pods);

    // Fault session. Everything fault-related below is behind this one
    // `Option`: `RunOptions::faults()` normalizes empty plans to `None`,
    // so a fault-free run executes the exact pre-fault instruction stream
    // (the zero-fault byte-identity contract in `tests/determinism.rs`).
    let mut faults = opts.faults().map(|plan| {
        register_fault_keys(telemetry);
        FaultSession::new(plan)
    });
    let mut violation_streak = 0usize;

    // Initial placement.
    optimize_step(&mut optimizer, &mut dc, &initial_items, &mut faults)?;

    let mut series = if opts.capture_series {
        Vec::with_capacity(n_samples)
    } else {
        Vec::new()
    };
    let mut active_sum = 0usize;
    let mut peak_active = 0usize;
    let mut total = 0.0_f64;
    let mut site_energy_wh = vec![0.0_f64; dc.n_sites()];
    let mut site_watts = vec![0.0_f64; dc.n_sites()];
    let mut relief_migrations = 0u64;
    let mut demand_total = 0.0_f64;
    let mut demand_unmet = 0.0_f64;
    let relief_constraint = AndConstraint::cpu_and_memory();
    let relief_cfg = ReliefConfig::default();
    for t in 0..n_samples {
        let sample_span = telemetry.timer("largescale.sample_ns");
        // Advance the demand source to this sample (no-op for materialized
        // traces; one generator step for streaming sources).
        source.advance_to(t);
        let src: &S = source;
        // Advance each site's PUE to this sample *before* any consolidation
        // decision, so the optimizer's efficiency ordering sees the same
        // facility cost the power fold below charges. A no-op (and no
        // copy-on-write fork) while the value is unchanged.
        if let Some(spec) = &cfg.fleet {
            for (site, s) in spec.sites.iter().enumerate() {
                dc.set_site_pue(site, s.pue.at(t))?;
            }
        }
        // Update demands from the trace: slot i is trace row i, so this is
        // a pure per-element write over a dense slice — sharded. The
        // `.max(0.0)` clamp matches `set_vm_demand`.
        let demand_span = telemetry.timer("largescale.demand_ns");
        crate::shard::map_slice_mut(&mut dc.demands_mut()[..cfg.n_vms], shards, |vm, d| {
            *d = src.demand_ghz(vm, t).max(0.0);
        });
        if let Some(ctx) = churn.as_deref() {
            // Churn slots (arena region past the base population): live
            // owners read their workload demand, vacant/queued slots 0.
            ctx.write_demands(&mut dc, t, shards);
        }
        demand_span.finish();
        // Lifecycle events due at this sample: departures free their arena
        // slots, arrivals go through admission. Runs between the demand
        // update and consolidation so the optimizer always re-plans the
        // post-event population.
        if let Some(ctx) = churn.as_deref_mut() {
            ctx.apply_events(&mut dc, t, shards, telemetry, faults.as_mut())?;
        }
        // Host crash/recover events due at this sample.
        if let Some(f) = faults.as_mut() {
            apply_host_events(&mut dc, f, t, shards, telemetry)?;
        }
        // Long-period consolidation.
        if t > 0 && t % cfg.optimizer_period_samples == 0 {
            optimize_step(&mut optimizer, &mut dc, &[], &mut faults)?;
        } else if cfg.overload_relief {
            // On-demand overload mitigation between invocations (§III).
            let snap_span = telemetry.timer("largescale.relief_snapshot_ns");
            let snap = snapshot_sharded(&dc, shards);
            snap_span.finish();
            let outcome = relieve_overloads(&snap, &relief_constraint, &relief_cfg);
            if !outcome.plan.is_empty() {
                let stats = apply_relief(&mut dc, &outcome.plan, &mut faults, telemetry)?;
                relief_migrations += stats.migrations as u64;
                telemetry.incr("largescale.relief_migrations", stats.migrations as u64);
            }
        }
        // Short-period DVFS (or pin active servers at max frequency). The
        // per-server arbitrator decision is a pure read, so it fans out
        // across shards; the commit (state writes + transition counters)
        // stays a sequential index-order pass.
        if dvfs {
            let dvfs_span = telemetry.timer("largescale.dvfs_ns");
            let decisions = crate::shard::map_indices(dc.n_servers(), shards, |s| {
                dc.dvfs_decision(ServerHandle::from_index(s), true)
            })
            .into_iter()
            .collect::<vdc_dcsim::Result<Vec<_>>>();
            dvfs_span.finish();
            dc.apply_dvfs_decisions(&decisions?)?;
        } else {
            pin_max_frequency(&mut dc)?;
        }
        let active = dc.active_servers();
        active_sum += active.len();
        peak_active = peak_active.max(active.len());
        // Energy of *active* servers only: the paper's inactive pool is
        // powered off ("enough inactive servers which will be waken up …
        // if necessary"), not suspended, so it draws nothing.
        // Per-server power/demand reads are pure with respect to the
        // data-center state, so they fan out across shards; the watts/SLA
        // sums stay sequential folds in active-list order, matching the
        // single-threaded left fold bit for bit. The span isolates the
        // shardable region for the `shard_scaling` bench's parallel-fraction
        // estimate.
        let power_span = telemetry.timer("largescale.power_map_ns");
        let per_server: Vec<Result<(f64, f64, f64, usize)>> =
            crate::shard::map_indices(active.len(), shards, |i| {
                let s = active[i];
                // Facility power: IT power × site PUE. With the default
                // single-site PUE of 1.0 the product is bit-identical to
                // the raw IT power, so legacy runs are unchanged.
                let w = dc.server_facility_power_watts(s)?;
                let demand = dc.server_demand_ghz(s)?;
                let cap = dc.server(s)?.spec.max_capacity_ghz();
                Ok((w, demand, cap, dc.server_site(s)))
            });
        power_span.finish();
        let mut watts = 0.0_f64;
        let mut sample_demand = 0.0_f64;
        let mut sample_unmet = 0.0_f64;
        for w in site_watts.iter_mut() {
            *w = 0.0;
        }
        for r in per_server {
            let (w, demand, cap, site) = r?;
            telemetry.record("dcsim.server_power_w", w);
            watts += w;
            site_watts[site] += w;
            // SLA proxy: demand beyond maximum capacity goes unserved.
            demand_total += demand;
            demand_unmet += (demand - cap).max(0.0);
            sample_demand += demand;
            sample_unmet += (demand - cap).max(0.0);
        }
        total += watts * interval_s / 3600.0;
        for (site, w) in site_watts.iter().enumerate() {
            site_energy_wh[site] += w * interval_s / 3600.0;
        }
        telemetry.incr("largescale.samples", 1);
        if opts.capture_series {
            series.push(WeekSample {
                t_s: t as f64 * interval_s,
                power_w: watts,
                active_servers: active.len(),
                migrations_so_far: optimizer.total_migrations() + relief_migrations,
                unmet_fraction: if sample_demand > 0.0 {
                    sample_unmet / sample_demand
                } else {
                    0.0
                },
            });
        }
        // SLO watchdog: three consecutive violation samples trigger an
        // out-of-cadence emergency relief pass — faulted runs can strand
        // load in places the periodic cadence is too slow to fix (e.g. a
        // crash dumped VMs onto already-busy hosts).
        if faults.is_some() {
            if sample_unmet > 0.0 {
                violation_streak += 1;
            } else {
                violation_streak = 0;
            }
            if violation_streak >= WATCHDOG_STREAK {
                violation_streak = 0;
                if let Some(f) = faults.as_mut() {
                    f.watchdog_reliefs += 1;
                }
                telemetry.incr("fault.watchdog_reliefs", 1);
                let snap = snapshot_sharded(&dc, shards);
                let outcome = relieve_overloads(&snap, &relief_constraint, &relief_cfg);
                if !outcome.plan.is_empty() {
                    let stats = apply_relief(&mut dc, &outcome.plan, &mut faults, telemetry)?;
                    relief_migrations += stats.migrations as u64;
                    telemetry.incr("largescale.relief_migrations", stats.migrations as u64);
                }
            }
        }
        sample_span.finish();
    }
    let wake_energy_wh = dc.wake_energy_wh();
    if cfg.count_wake_energy {
        total += wake_energy_wh;
    }

    // Run-level roll-up of the fault session (per-event counters were
    // already incremented inline; these are the apply-path aggregates).
    if let Some(f) = &faults {
        fault_rollup(f, telemetry);
    }

    // Run-level roll-up of arbitrator transitions and integrated energy.
    telemetry.incr("dcsim.dvfs_transitions", dc.dvfs_transitions());
    telemetry.incr("dcsim.wake_transitions", dc.wake_count());
    telemetry.incr("dcsim.sleep_transitions", dc.sleep_count());
    telemetry.gauge_set("dcsim.wake_energy_wh", wake_energy_wh);
    telemetry.gauge_set("largescale.total_energy_wh", total);
    telemetry.gauge_set("largescale.energy_per_vm_wh", total / cfg.n_vms as f64);
    telemetry.incr(
        "largescale.migrations",
        optimizer.total_migrations() + relief_migrations,
    );
    // Per-site facility-energy gauges only exist for explicit fleet runs,
    // so the legacy metric key set (and its committed baselines) is
    // untouched.
    if let Some(spec) = &cfg.fleet {
        for (site, s) in spec.sites.iter().enumerate() {
            telemetry.gauge_set(
                &format!("largescale.site_energy_wh.{}", s.name),
                site_energy_wh[site],
            );
        }
    }
    // Label-ordered (VmId-sorted) iteration, matching the order the old
    // BTreeMap-keyed state produced.
    let mut final_placements = Vec::with_capacity(cfg.n_vms);
    for (id, h) in dc.vm_handles() {
        if let Some(server) = dc.placement_of(h) {
            final_placements.push((id.0, server.index()));
        }
    }
    Ok(LargeScaleResult {
        n_vms: cfg.n_vms,
        total_energy_wh: total,
        energy_per_vm_wh: total / cfg.n_vms as f64,
        migrations: optimizer.total_migrations() + relief_migrations,
        mean_active_servers: active_sum as f64 / n_samples as f64,
        peak_active_servers: peak_active,
        optimizer_invocations: optimizer.invocations(),
        relief_migrations,
        sla_violation_fraction: if demand_total > 0.0 {
            demand_unmet / demand_total
        } else {
            0.0
        },
        wake_energy_wh,
        final_placements,
        site_energy_wh,
        series,
    })
}

/// Consecutive SLO-violation samples that trip the fault watchdog's
/// emergency relief pass.
pub(crate) const WATCHDOG_STREAK: usize = 3;

/// Fault counter family pre-registered at session creation, so every
/// faulted run exports the same key set regardless of which paths fire.
pub(crate) fn register_fault_keys(telemetry: &Telemetry) {
    for key in [
        "fault.crashes",
        "fault.recoveries",
        "fault.evacuated_vms",
        "fault.stranded_vms",
        "fault.watchdog_reliefs",
        "fault.migration_retries",
        "fault.migrations_dropped",
        "fault.plan_partials",
        "fault.wake_failures",
        "optimizer.plan_partial",
    ] {
        telemetry.incr(key, 0);
    }
}

/// End-of-run roll-up of the session's apply-path aggregates (per-event
/// counters are incremented inline as events fire).
pub(crate) fn fault_rollup(f: &FaultSession<'_>, telemetry: &Telemetry) {
    telemetry.incr("fault.migration_retries", f.migration_retries);
    telemetry.incr("fault.migrations_dropped", f.migrations_dropped);
    telemetry.incr("fault.plan_partials", f.plan_partials);
    telemetry.incr("fault.wake_failures", f.wake_failures);
    telemetry.incr("fault.stranded_vms", f.stranded_vms);
}

/// Replay every host crash/recover event due at sample `t`. Crashing a
/// host evacuates its VMs through the Minimum Slack packer onto the
/// active fleet (spilling onto woken sleepers); whatever fits nowhere is
/// counted stranded — the VM stays registered but unplaced, so its arena
/// slot is never recycled out from under external owner bookkeeping.
/// Out-of-range host indices (a plan drawn for a larger fleet) are
/// skipped.
pub(crate) fn apply_host_events(
    dc: &mut DataCenter,
    f: &mut FaultSession<'_>,
    t: usize,
    shards: usize,
    telemetry: &Telemetry,
) -> Result<()> {
    for ev in f.host_events_at(t) {
        if ev.host >= dc.n_servers() {
            continue;
        }
        let server = ServerHandle::from_index(ev.host);
        match ev.kind {
            HostFaultKind::Crash => {
                let evacuees = dc.fail_server(server)?;
                f.crashes += 1;
                telemetry.incr("fault.crashes", 1);
                evacuate_vms(dc, &evacuees, shards, f, telemetry)?;
            }
            HostFaultKind::Recover => {
                dc.recover_server(server)?;
                f.recoveries += 1;
                telemetry.incr("fault.recoveries", 1);
            }
        }
    }
    Ok(())
}

/// One optimizer invocation, fault-aware when a session is active. The
/// fault-free arm is the exact pre-fault call, so runs without a plan are
/// byte-identical to the historical loop.
pub(crate) fn optimize_step(
    optimizer: &mut PowerOptimizer,
    dc: &mut DataCenter,
    items: &[PackItem],
    faults: &mut Option<FaultSession<'_>>,
) -> Result<ApplyStats> {
    match faults.as_mut() {
        Some(f) => optimizer.optimize_faulted(dc, items, f),
        None => optimizer.optimize(dc, items),
    }
}

/// Apply an overload-relief plan, drawing per-attempt migration failures
/// from the fault session when one is active.
pub(crate) fn apply_relief(
    dc: &mut DataCenter,
    plan: &vdc_consolidate::plan::ConsolidationPlan,
    faults: &mut Option<FaultSession<'_>>,
    telemetry: &Telemetry,
) -> Result<ApplyStats> {
    match faults.as_mut() {
        Some(f) => {
            let max_attempts = f.plan().max_migration_attempts();
            let partial =
                apply_plan_fallible(dc, plan, max_attempts, || f.draw_migration_failure())?;
            f.migration_retries += partial.retries;
            f.migrations_dropped += partial.dropped as u64;
            f.stranded_vms += partial.stranded.len() as u64;
            if partial.is_partial() {
                f.plan_partials += 1;
                telemetry.incr("optimizer.plan_partial", 1);
            }
            Ok(partial.stats)
        }
        None => Ok(apply_plan(dc, plan)?),
    }
}

/// Re-place the VMs evacuated from a crashed host: Minimum Slack onto the
/// active fleet first, spill onto the sleeping pool (waking hosts), and
/// count whatever fits nowhere as stranded. Stranding only happens when
/// capacity is genuinely exhausted (not even waking every sleeping host
/// fits the VM). A stranded VM stays registered but unplaced — removing it
/// would recycle its arena slot and corrupt any external owner bookkeeping
/// keyed by slot — and simply runs no work for the rest of the horizon.
fn evacuate_vms(
    dc: &mut DataCenter,
    evacuees: &[VmHandle],
    shards: usize,
    faults: &mut FaultSession<'_>,
    telemetry: &Telemetry,
) -> Result<()> {
    if evacuees.is_empty() {
        return Ok(());
    }
    let mut items = Vec::with_capacity(evacuees.len());
    let mut by_id = std::collections::BTreeMap::new();
    for &h in evacuees {
        let spec = dc.vm(h)?;
        let (id, mem) = (spec.id, spec.memory_mib);
        items.push(PackItem::new(id, dc.vm_demand(h)?, mem));
        by_id.insert(id.0, h);
    }
    let constraint = AndConstraint::cpu_and_memory();
    let minslack = MinSlackConfig {
        shards,
        ..MinSlackConfig::default()
    };
    let (mut active_view, mut sleeping_view): (Vec<PackServer>, Vec<PackServer>) =
        snapshot_sharded(dc, shards)
            .into_iter()
            .partition(|s| s.active);
    // Failed hosts land in the inactive partition advertising zero
    // capacity; drop them so the spill pass can't select one (a
    // zero-demand item would otherwise "fit").
    sleeping_view.retain(|s| s.cpu_capacity_ghz > 0.0);
    let first = pac_pack(&mut active_view, &items, &constraint, &minslack);
    for &(id, si) in &first.assignments {
        dc.place_vm(
            by_id[&id.0],
            ServerHandle::from_index(active_view[si].index),
        )?;
    }
    telemetry.incr("fault.evacuated_vms", first.assignments.len() as u64);
    if !first.unplaced.is_empty() {
        let spill_items: Vec<PackItem> = items
            .iter()
            .filter(|i| first.unplaced.contains(&i.vm))
            .cloned()
            .collect();
        let second = pac_pack(&mut sleeping_view, &spill_items, &constraint, &minslack);
        for &(id, si) in &second.assignments {
            // `place_vm` auto-wakes the sleeping target.
            dc.place_vm(
                by_id[&id.0],
                ServerHandle::from_index(sleeping_view[si].index),
            )?;
        }
        telemetry.incr("fault.evacuated_vms", second.assignments.len() as u64);
        faults.stranded_vms += second.unplaced.len() as u64;
    }
    Ok(())
}

/// Without DVFS, active servers run at their maximum frequency; idle ones
/// still sleep (both schemes consolidate).
fn pin_max_frequency(dc: &mut DataCenter) -> Result<()> {
    for i in 0..dc.n_servers() {
        let s = ServerHandle::from_index(i);
        if dc.server(s)?.is_active() {
            if dc.hosted_vms(s)?.is_empty() {
                dc.sleep_server(s)?;
            } else {
                dc.wake_server(s)?; // ensures Active at max frequency
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdc_trace::{generate_trace, TraceConfig};

    /// Local shorthand: the quiet default-options run.
    fn run_large_scale(t: &UtilizationTrace, cfg: &LargeScaleConfig) -> Result<LargeScaleResult> {
        super::run_large_scale(t, cfg, &RunOptions::default())
    }

    fn small_trace() -> UtilizationTrace {
        generate_trace(&TraceConfig {
            n_vms: 40,
            n_samples: 96, // one day
            interval_s: 900.0,
            seed: 99,
        })
    }

    #[test]
    fn validates_config() {
        let t = small_trace();
        assert!(run_large_scale(&t, &LargeScaleConfig::new(0, OptimizerKind::Ipac)).is_err());
        assert!(run_large_scale(&t, &LargeScaleConfig::new(100, OptimizerKind::Ipac)).is_err());
        let mut cfg = LargeScaleConfig::new(10, OptimizerKind::Ipac);
        cfg.optimizer_period_samples = 0;
        assert!(run_large_scale(&t, &cfg).is_err());
    }

    #[test]
    fn ipac_run_produces_plausible_energy() {
        let t = small_trace();
        let r = run_large_scale(&t, &LargeScaleConfig::new(40, OptimizerKind::Ipac)).unwrap();
        assert_eq!(r.n_vms, 40);
        assert!(r.total_energy_wh > 0.0);
        // Sanity: per-VM power between 1 W and 300 W.
        let watts_per_vm = r.energy_per_vm_wh / 24.0;
        assert!(
            (1.0..300.0).contains(&watts_per_vm),
            "implausible {watts_per_vm} W per VM"
        );
        assert!(r.mean_active_servers >= 1.0);
        assert!(r.optimizer_invocations >= 1);
    }

    #[test]
    fn ipac_beats_pmapper_on_energy() {
        let t = small_trace();
        let ipac = run_large_scale(&t, &LargeScaleConfig::new(40, OptimizerKind::Ipac)).unwrap();
        let pmapper =
            run_large_scale(&t, &LargeScaleConfig::new(40, OptimizerKind::Pmapper)).unwrap();
        assert!(
            ipac.energy_per_vm_wh < pmapper.energy_per_vm_wh,
            "IPAC {} Wh/VM should beat pMapper {} Wh/VM",
            ipac.energy_per_vm_wh,
            pmapper.energy_per_vm_wh
        );
    }

    #[test]
    fn dvfs_contributes_savings() {
        let t = small_trace();
        let with = run_large_scale(&t, &LargeScaleConfig::new(40, OptimizerKind::Ipac)).unwrap();
        let without =
            run_large_scale(&t, &LargeScaleConfig::new(40, OptimizerKind::IpacNoDvfs)).unwrap();
        assert!(
            with.energy_per_vm_wh < without.energy_per_vm_wh,
            "DVFS should save energy: {} vs {}",
            with.energy_per_vm_wh,
            without.energy_per_vm_wh
        );
    }

    #[test]
    fn fleet_capacity_covers_demand() {
        let t = small_trace();
        let r = run_large_scale(&t, &LargeScaleConfig::new(30, OptimizerKind::Ipac)).unwrap();
        // With auto-sizing there must be no runaway active-server count.
        assert!(r.peak_active_servers < 40);
    }

    pub(super) fn assert_results_bit_identical(
        a: &LargeScaleResult,
        b: &LargeScaleResult,
        ctx: &str,
    ) {
        assert_eq!(a.n_vms, b.n_vms, "{ctx}");
        assert_eq!(
            a.total_energy_wh.to_bits(),
            b.total_energy_wh.to_bits(),
            "{ctx}: total energy"
        );
        assert_eq!(
            a.energy_per_vm_wh.to_bits(),
            b.energy_per_vm_wh.to_bits(),
            "{ctx}: energy per VM"
        );
        assert_eq!(a.migrations, b.migrations, "{ctx}: migrations");
        assert_eq!(
            a.mean_active_servers.to_bits(),
            b.mean_active_servers.to_bits(),
            "{ctx}: mean active"
        );
        assert_eq!(a.peak_active_servers, b.peak_active_servers, "{ctx}");
        assert_eq!(a.optimizer_invocations, b.optimizer_invocations, "{ctx}");
        assert_eq!(a.relief_migrations, b.relief_migrations, "{ctx}");
        assert_eq!(
            a.sla_violation_fraction.to_bits(),
            b.sla_violation_fraction.to_bits(),
            "{ctx}: SLA fraction"
        );
        assert_eq!(
            a.wake_energy_wh.to_bits(),
            b.wake_energy_wh.to_bits(),
            "{ctx}: wake energy"
        );
        assert_eq!(a.final_placements, b.final_placements, "{ctx}: placements");
        let (sa, sb): (Vec<u64>, Vec<u64>) = (
            a.site_energy_wh.iter().map(|x| x.to_bits()).collect(),
            b.site_energy_wh.iter().map(|x| x.to_bits()).collect(),
        );
        assert_eq!(sa, sb, "{ctx}: per-site energy");
    }

    #[test]
    fn sharded_run_is_bit_identical_to_single_threaded() {
        let t = small_trace();
        let base = LargeScaleConfig::new(40, OptimizerKind::Ipac);
        let opts = RunOptions::default().with_series();
        let single = {
            let mut cfg = base.clone();
            cfg.shards = 1;
            super::run_large_scale(&t, &cfg, &opts).unwrap()
        };
        for shards in [2usize, 3, 8] {
            // Exercise the RunOptions shard override path as well.
            let sharded = super::run_large_scale(&t, &base, &opts.with_shards(shards)).unwrap();
            assert_results_bit_identical(&single, &sharded, &format!("shards={shards}"));
            let (series, single_series) = (&sharded.series, &single.series);
            assert_eq!(series.len(), single_series.len());
            for (a, b) in series.iter().zip(single_series) {
                assert_eq!(a.power_w.to_bits(), b.power_w.to_bits(), "shards={shards}");
                assert_eq!(a.active_servers, b.active_servers);
                assert_eq!(a.migrations_so_far, b.migrations_so_far);
                assert_eq!(
                    a.unmet_fraction.to_bits(),
                    b.unmet_fraction.to_bits(),
                    "shards={shards}"
                );
            }
        }
    }

    #[test]
    fn single_vm_runs_and_is_shard_invariant() {
        // Edge case: 1 VM, and far more shards than VMs or servers.
        let t = small_trace();
        let mut cfg = LargeScaleConfig::new(1, OptimizerKind::Ipac);
        cfg.shards = 1;
        let single = run_large_scale(&t, &cfg).unwrap();
        assert_eq!(single.final_placements.len(), 1);
        assert!(single.total_energy_wh > 0.0);
        cfg.shards = 64;
        let sharded = run_large_scale(&t, &cfg).unwrap();
        assert_results_bit_identical(&single, &sharded, "1 VM, 64 shards");
    }

    #[test]
    fn streaming_run_matches_materialized_run() {
        let tc = TraceConfig {
            n_vms: 30,
            n_samples: 48,
            interval_s: 900.0,
            seed: 7,
        };
        let trace = StreamingTrace::materialize(&tc);
        let mut stream = StreamingTrace::new(&tc);
        let cfg = LargeScaleConfig {
            n_servers: Some(24),
            ..LargeScaleConfig::new(30, OptimizerKind::Ipac)
        };
        let opts = RunOptions::default().with_series();
        let a = super::run_large_scale(&trace, &cfg, &opts).unwrap();
        let b = super::run_large_scale_streaming(&mut stream, &cfg, &opts).unwrap();
        assert_results_bit_identical(&a, &b, "streaming vs materialized");
        assert_eq!(a.series.len(), b.series.len());
        for (x, y) in a.series.iter().zip(&b.series) {
            assert_eq!(x.power_w.to_bits(), y.power_w.to_bits());
        }
    }

    #[test]
    fn streaming_auto_sizing_is_rejected() {
        // Auto-sizing scans the full horizon up front, which a streaming
        // source cannot do — the run must fail loudly, not silently fall
        // back to something else.
        let tc = TraceConfig {
            n_vms: 10,
            n_samples: 8,
            interval_s: 900.0,
            seed: 3,
        };
        let mut stream = StreamingTrace::new(&tc);
        let cfg = LargeScaleConfig::new(10, OptimizerKind::Ipac);
        assert!(cfg.n_servers.is_none() && cfg.fleet.is_none());
        let err = super::run_large_scale_streaming(&mut stream, &cfg, &RunOptions::default());
        assert!(matches!(err, Err(CoreError::BadConfig(_))), "{err:?}");
    }

    #[test]
    fn hierarchical_run_matches_itself_and_differs_from_flat_metadata() {
        // End-to-end seam check: `with_pods` flows from RunOptions into the
        // optimizer, the run completes, and the same options reproduce the
        // same bits.
        let t = small_trace();
        let cfg = LargeScaleConfig {
            n_servers: Some(24),
            ..LargeScaleConfig::new(40, OptimizerKind::Ipac)
        };
        let opts = RunOptions::default().with_pods(8);
        let a = super::run_large_scale(&t, &cfg, &opts).unwrap();
        let b = super::run_large_scale(&t, &cfg, &opts).unwrap();
        assert_results_bit_identical(&a, &b, "hierarchical repeat");
        assert!(a.total_energy_wh > 0.0);
        assert_eq!(a.final_placements.len(), 40);
    }

    #[test]
    fn shards_zero_means_auto_and_stays_identical() {
        let t = small_trace();
        let mut cfg = LargeScaleConfig::new(20, OptimizerKind::Pmapper);
        cfg.shards = 1;
        let single = run_large_scale(&t, &cfg).unwrap();
        cfg.shards = 0; // auto: host parallelism
        let auto = run_large_scale(&t, &cfg).unwrap();
        assert_results_bit_identical(&single, &auto, "shards=0 (auto)");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use vdc_faults::{FaultConfig, FaultPlan};
    use vdc_trace::{generate_trace, TraceConfig};

    fn small_trace() -> UtilizationTrace {
        generate_trace(&TraceConfig {
            n_vms: 40,
            n_samples: 96,
            interval_s: 900.0,
            seed: 99,
        })
    }

    fn counter(telemetry: &Telemetry, name: &str) -> u64 {
        telemetry
            .counter_values()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("counter {name} not registered"))
    }

    #[test]
    fn empty_plan_is_bit_identical_to_a_plain_run() {
        let t = small_trace();
        let cfg = LargeScaleConfig::new(40, OptimizerKind::Ipac);
        let plain = super::run_large_scale(&t, &cfg, &RunOptions::default()).unwrap();
        let empty = FaultPlan::empty();
        let faulted =
            super::run_large_scale(&t, &cfg, &RunOptions::default().with_faults(&empty)).unwrap();
        super::tests::assert_results_bit_identical(&plain, &faulted, "empty fault plan");
    }

    #[test]
    fn quiet_config_generates_an_empty_plan_end_to_end() {
        let t = small_trace();
        let cfg = LargeScaleConfig::new(40, OptimizerKind::Ipac);
        let plan =
            FaultPlan::generate(&FaultConfig::quiet(7), t.n_samples(), t.interval_s(), 30, 0);
        assert!(plan.is_empty());
        let plain = super::run_large_scale(&t, &cfg, &RunOptions::default()).unwrap();
        let faulted =
            super::run_large_scale(&t, &cfg, &RunOptions::default().with_faults(&plan)).unwrap();
        super::tests::assert_results_bit_identical(&plain, &faulted, "quiet plan");
    }

    #[test]
    fn crash_storm_evacuates_and_recovers_without_losing_vms() {
        let t = small_trace();
        let cfg = LargeScaleConfig {
            n_servers: Some(30),
            ..LargeScaleConfig::new(40, OptimizerKind::Ipac)
        };
        // Aggressive MTTF: every host fails roughly twice a day.
        let plan = FaultPlan::generate(
            &FaultConfig::crash_storm(12.0 * 3600.0, 1800.0, 0xFA11),
            t.n_samples(),
            t.interval_s(),
            30,
            0,
        );
        assert!(!plan.is_empty(), "a crash storm must generate events");
        let telemetry = Telemetry::enabled();
        let opts = RunOptions::default()
            .with_telemetry(&telemetry)
            .with_faults(&plan);
        let r = super::run_large_scale(&t, &cfg, &opts).unwrap();
        assert!(r.total_energy_wh > 0.0);
        let crashes = counter(&telemetry, "fault.crashes");
        let recoveries = counter(&telemetry, "fault.recoveries");
        assert!(crashes > 0, "the storm must crash hosts");
        assert!(recoveries > 0, "short MTTR must recover hosts in-horizon");
        assert!(recoveries <= crashes);
        // Every base VM is either placed at the end or was counted
        // stranded at some point — none silently vanish.
        let stranded = counter(&telemetry, "fault.stranded_vms");
        assert!(
            r.final_placements.len() as u64 + stranded >= 40,
            "{} placed + {} stranded events must cover 40 VMs",
            r.final_placements.len(),
            stranded
        );
    }

    #[test]
    fn crash_storm_is_deterministic_per_seed() {
        let t = small_trace();
        let cfg = LargeScaleConfig {
            n_servers: Some(30),
            ..LargeScaleConfig::new(40, OptimizerKind::Ipac)
        };
        let plan = FaultPlan::generate(
            &FaultConfig::crash_storm(12.0 * 3600.0, 1800.0, 0xFA11),
            t.n_samples(),
            t.interval_s(),
            30,
            0,
        );
        let opts = RunOptions::default().with_faults(&plan);
        let a = super::run_large_scale(&t, &cfg, &opts).unwrap();
        let b = super::run_large_scale(&t, &cfg, &opts).unwrap();
        super::tests::assert_results_bit_identical(&a, &b, "same seed, same storm");
    }

    #[test]
    fn flaky_migrations_drop_moves_but_commit_the_prefix() {
        let t = small_trace();
        let cfg = LargeScaleConfig::new(40, OptimizerKind::Ipac);
        // Certain failure with a zero retry budget: every migration is
        // dropped, so only initial placements (and none of the periodic
        // re-maps) ever move a VM.
        let plan = FaultPlan::generate(
            &FaultConfig {
                migration_backoff_budget: 0,
                ..FaultConfig::flaky_migrations(1.0, 3)
            },
            t.n_samples(),
            t.interval_s(),
            0,
            0,
        );
        let telemetry = Telemetry::enabled();
        let opts = RunOptions::default()
            .with_telemetry(&telemetry)
            .with_faults(&plan);
        let r = super::run_large_scale(&t, &cfg, &opts).unwrap();
        assert_eq!(r.migrations, 0, "every migration draw fails");
        assert_eq!(r.final_placements.len(), 40, "placements still complete");
        assert!(counter(&telemetry, "fault.migrations_dropped") > 0);
        // Moderate flakiness with retry budget still lands most moves.
        let flaky = FaultPlan::generate(
            &FaultConfig::flaky_migrations(0.3, 3),
            t.n_samples(),
            t.interval_s(),
            0,
            0,
        );
        let telemetry2 = Telemetry::enabled();
        let r2 = super::run_large_scale(
            &t,
            &cfg,
            &RunOptions::default()
                .with_telemetry(&telemetry2)
                .with_faults(&flaky),
        )
        .unwrap();
        assert!(r2.migrations > 0, "retries must land most migrations");
        assert!(counter(&telemetry2, "fault.migration_retries") > 0);
    }
}

#[cfg(test)]
mod fleet_tests {
    use super::*;
    use vdc_dcsim::fleet::PueSeries;
    use vdc_dcsim::{HostCatalog, SiteSpec};
    use vdc_trace::{generate_trace, TraceConfig};

    fn trace(n_vms: usize, seed: u64) -> UtilizationTrace {
        generate_trace(&TraceConfig {
            n_vms,
            n_samples: 96,
            interval_s: 900.0,
            seed,
        })
    }

    #[test]
    fn paper_default_fleet_is_bit_identical_to_legacy_template() {
        let t = trace(40, 0xF1EE7);
        for optimizer in [OptimizerKind::Ipac, OptimizerKind::Pmapper] {
            let legacy = LargeScaleConfig {
                n_servers: Some(30),
                ..LargeScaleConfig::new(40, optimizer)
            };
            let fleet = LargeScaleConfig {
                fleet: Some(FleetSpec::paper_default(30)),
                ..legacy.clone()
            };
            let opts = RunOptions::default().with_series();
            let a = super::run_large_scale(&t, &legacy, &opts).unwrap();
            let b = super::run_large_scale(&t, &fleet, &opts).unwrap();
            super::tests::assert_results_bit_identical(&a, &b, "paper-default fleet");
            let (pa, pb): (Vec<u64>, Vec<u64>) = (
                a.series.iter().map(|s| s.power_w.to_bits()).collect(),
                b.series.iter().map(|s| s.power_w.to_bits()).collect(),
            );
            assert_eq!(pa, pb, "power series must match bit for bit");
            // The single-site fleet reports exactly one energy bucket,
            // holding the facility (== IT at PUE 1.0) energy sans wake.
            assert_eq!(b.site_energy_wh.len(), 1);
            assert!(
                (b.site_energy_wh[0] - (b.total_energy_wh - b.wake_energy_wh)).abs() < 1e-9,
                "site bucket {} vs total-minus-wake {}",
                b.site_energy_wh[0],
                b.total_energy_wh - b.wake_energy_wh
            );
        }
    }

    #[test]
    fn mixed_fleet_prefers_low_idle_fraction_site() {
        let t = trace(40, 0xF1EE8);
        let spec = FleetSpec::specpower_mixed(12);
        let cfg = LargeScaleConfig {
            fleet: Some(spec.clone()),
            ..LargeScaleConfig::new(40, OptimizerKind::Ipac)
        };
        let r = super::run_large_scale(&t, &cfg, &RunOptions::default()).unwrap();
        assert_eq!(r.site_energy_wh.len(), 2);
        // Replay the deterministic profile draws to recover each server's
        // site, then check PAC/IPAC packed the load into the
        // low-idle-fraction (and low-PUE) "lean" site.
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let assignments = spec.assignments_with(&mut |n| rng.index(n));
        let on_lean = r
            .final_placements
            .iter()
            .filter(|(_, s)| assignments[*s].0 == 0)
            .count();
        assert!(
            2 * on_lean > r.final_placements.len(),
            "only {on_lean}/{} VMs on the efficient site",
            r.final_placements.len()
        );
        assert!(
            r.site_energy_wh[0] > 0.0,
            "the preferred site must burn energy"
        );
    }

    #[test]
    fn pue_step_change_scales_facility_power_midweek() {
        let t = trace(30, 0xF1EE9);
        // Single-site paper fleet; PUE jumps from 1.0 to 1.5 at sample 48.
        let mut samples = vec![1.0; 48];
        samples.extend(std::iter::repeat(1.5).take(48));
        let catalog = HostCatalog::paper();
        let mix = vec![
            (vdc_dcsim::ProfileId::from_index(0), 15),
            (vdc_dcsim::ProfileId::from_index(1), 35),
            (vdc_dcsim::ProfileId::from_index(2), 50),
        ];
        let mut site = SiteSpec::new("stepped", 24, mix, 1.0).unwrap();
        site.pue = PueSeries::from_samples(samples).unwrap();
        let stepped_spec = FleetSpec::new(catalog, vec![site]).unwrap();
        let base_cfg = LargeScaleConfig {
            fleet: Some(FleetSpec::paper_default(24)),
            ..LargeScaleConfig::new(30, OptimizerKind::Ipac)
        };
        let step_cfg = LargeScaleConfig {
            fleet: Some(stepped_spec),
            ..base_cfg.clone()
        };
        let opts = RunOptions::default().with_series();
        let base = super::run_large_scale(&t, &base_cfg, &opts).unwrap();
        let step = super::run_large_scale(&t, &step_cfg, &opts).unwrap();
        // A uniform PUE rescales every efficiency key by the same factor,
        // so placements are unchanged; facility power scales per sample.
        assert_eq!(base.final_placements, step.final_placements);
        assert_eq!(base.series.len(), step.series.len());
        for (i, (a, b)) in base.series.iter().zip(&step.series).enumerate() {
            let pue = if i < 48 { 1.0 } else { 1.5 };
            assert!(
                (b.power_w - a.power_w * pue).abs() < 1e-6 * a.power_w.max(1.0),
                "sample {i}: {} vs {} x {pue}",
                b.power_w,
                a.power_w
            );
        }
        assert!(step.total_energy_wh > base.total_energy_wh);
    }
}

#[cfg(test)]
mod relief_tests {
    use super::*;
    use vdc_trace::{generate_trace, TraceConfig};

    /// Local shorthand: the quiet default-options run.
    fn run_large_scale(t: &UtilizationTrace, cfg: &LargeScaleConfig) -> Result<LargeScaleResult> {
        super::run_large_scale(t, cfg, &RunOptions::default())
    }

    fn trace(n_vms: usize, seed: u64) -> UtilizationTrace {
        generate_trace(&TraceConfig {
            n_vms,
            n_samples: 96,
            interval_s: 900.0,
            seed,
        })
    }

    #[test]
    fn relief_reduces_sla_violations() {
        // Force pressure: a deliberately small fleet so demand swings
        // overload servers between optimizer invocations.
        let t = trace(60, 404);
        let base = LargeScaleConfig {
            n_servers: Some(14),
            ..LargeScaleConfig::new(60, OptimizerKind::Ipac)
        };
        let with_relief = run_large_scale(&t, &base).unwrap();
        let without = run_large_scale(
            &t,
            &LargeScaleConfig {
                overload_relief: false,
                ..base
            },
        )
        .unwrap();
        assert!(
            with_relief.sla_violation_fraction <= without.sla_violation_fraction,
            "relief must not increase violations: {} vs {}",
            with_relief.sla_violation_fraction,
            without.sla_violation_fraction
        );
        // Under real pressure relief should actually migrate something.
        if without.sla_violation_fraction > 0.0 {
            assert!(with_relief.relief_migrations > 0);
        }
    }

    #[test]
    fn sla_violation_fraction_is_a_fraction() {
        let t = trace(30, 405);
        let r = run_large_scale(&t, &LargeScaleConfig::new(30, OptimizerKind::Ipac)).unwrap();
        assert!((0.0..=1.0).contains(&r.sla_violation_fraction));
        // Well-provisioned fleets should be (near-)violation-free.
        assert!(
            r.sla_violation_fraction < 0.05,
            "{}",
            r.sla_violation_fraction
        );
    }

    #[test]
    fn wake_energy_is_accounted_when_enabled() {
        let t = trace(30, 406);
        let with = run_large_scale(&t, &LargeScaleConfig::new(30, OptimizerKind::Ipac)).unwrap();
        let without = run_large_scale(
            &t,
            &LargeScaleConfig {
                count_wake_energy: false,
                ..LargeScaleConfig::new(30, OptimizerKind::Ipac)
            },
        )
        .unwrap();
        assert!(with.wake_energy_wh > 0.0, "at least the initial wakes");
        assert!(
            (with.total_energy_wh - without.total_energy_wh - with.wake_energy_wh).abs() < 1e-6,
            "wake energy must explain the difference exactly"
        );
    }
}
