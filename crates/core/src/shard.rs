//! Deterministic fork–join sharding for the replay and co-simulation loops.
//!
//! The large-scale runs spend their time in per-element work that is
//! independent across elements — one application's MPC step, one server's
//! power draw — while every *reduction* over those elements (energy sums,
//! SLO accounting, trajectory rows) is a left fold whose f64 result depends
//! on evaluation order. This module parallelizes only the per-element map
//! and leaves every fold sequential in index order, which yields the
//! guarantee the shard-equivalence suite (`tests/sharding.rs`) enforces:
//! **a run with N shards is bit-identical to the single-threaded run for
//! every N**, not merely statistically equivalent.
//!
//! Mechanics:
//!
//! * work is split into **contiguous index ranges** ([`partition`]), so
//!   shard boundaries never reorder elements;
//! * each worker owns a disjoint chunk (scoped threads, no locks on the
//!   simulation state) and returns its results as a vector;
//! * the caller receives one vector in **original index order**
//!   ([`map_indices`] / [`map_slice_mut`]) and folds it sequentially.
//!
//! Per-shard randomness needs no extra machinery: every stochastic
//! component in the workspace draws from its own stream derived with
//! [`vdc_apptier::rng::seed_stream`] (one SplitMix64-avalanched stream per
//! application), so moving an application between shards cannot change the
//! values it draws.
//!
//! With one effective shard the helpers run inline on the calling thread —
//! no threads are spawned, so `shards = 1` *is* the single-threaded run.

use std::ops::Range;

/// Resolve a requested shard count: `0` means "use the host parallelism"
/// (the CLI convention for `--shards 0`/unset); anything else is taken
/// literally. Never returns 0.
pub fn resolve(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Split `0..n` into at most `shards` contiguous, non-empty, near-even
/// ranges (the first `n % shards` ranges get one extra element). With
/// `n < shards` the result has `n` single-element ranges — more shards
/// than work degrades gracefully instead of spawning idle workers.
pub fn partition(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1).min(n);
    if shards == 0 {
        return Vec::new();
    }
    let base = n / shards;
    let extra = n % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

/// Map `f` over `0..n`, fanned out over `shards` scoped workers, returning
/// results in index order. `f` must be pure with respect to index order
/// (it may read shared state, which is what makes the output independent
/// of the shard count).
pub fn map_indices<R, F>(n: usize, shards: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let ranges = partition(n, resolve(shards));
    if ranges.len() <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Vec<R>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(|| range.map(&f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("shard worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Map `f` over a mutable slice — each worker owns a disjoint contiguous
/// chunk, so per-element mutation (an application's plant + controller
/// advancing one sample) needs no synchronization. Results come back in
/// index order; `f` also receives the element's global index.
pub fn map_slice_mut<T, R, F>(items: &mut [T], shards: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let ranges = partition(n, resolve(shards));
    if ranges.len() <= 1 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let mut out: Vec<Vec<R>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let mut rest = items;
        let mut offset = 0;
        let mut handles = Vec::with_capacity(ranges.len());
        for range in &ranges {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let base = offset;
            offset += range.len();
            let f = &f;
            handles.push(scope.spawn(move || {
                chunk
                    .iter_mut()
                    .enumerate()
                    .map(|(i, item)| f(base + i, item))
                    .collect::<Vec<R>>()
            }));
        }
        for h in handles {
            out.push(h.join().expect("shard worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_uses_host_parallelism() {
        assert!(resolve(0) >= 1);
        assert_eq!(resolve(1), 1);
        assert_eq!(resolve(7), 7);
    }

    #[test]
    fn partition_covers_exactly_without_gaps() {
        for n in 0..40 {
            for shards in 1..10 {
                let ranges = partition(n, shards);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap at n={n} shards={shards}");
                    assert!(!r.is_empty(), "empty range at n={n} shards={shards}");
                    next = r.end;
                }
                assert_eq!(next, n);
                assert!(ranges.len() <= shards.min(n).max(1).min(n.max(1)));
            }
        }
    }

    #[test]
    fn partition_is_near_even() {
        let ranges = partition(10, 3);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }

    #[test]
    fn partition_more_shards_than_items() {
        let ranges = partition(3, 8);
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().all(|r| r.len() == 1));
        assert!(partition(0, 8).is_empty());
    }

    #[test]
    fn map_indices_matches_inline_for_every_shard_count() {
        let inline: Vec<u64> = (0..97).map(|i| (i as u64) * 3 + 1).collect();
        for shards in [1, 2, 3, 5, 8, 200] {
            let sharded = map_indices(97, shards, |i| (i as u64) * 3 + 1);
            assert_eq!(sharded, inline, "shards={shards}");
        }
    }

    #[test]
    fn map_slice_mut_mutates_and_preserves_order() {
        let inline: Vec<f64> = (0..31).map(|i| (i as f64).sqrt()).collect();
        for shards in [1, 2, 4, 64] {
            let mut items: Vec<f64> = (0..31).map(|i| i as f64).collect();
            let roots = map_slice_mut(&mut items, shards, |i, x| {
                *x += 1.0;
                (i as f64).sqrt()
            });
            assert_eq!(
                roots.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                inline.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "shards={shards}"
            );
            assert!(items.iter().enumerate().all(|(i, &x)| x == i as f64 + 1.0));
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = map_indices(0, 4, |_| 0u32);
        assert!(none.is_empty());
        let one = map_indices(1, 4, |i| i + 10);
        assert_eq!(one, vec![10]);
        let mut empty: Vec<u8> = Vec::new();
        assert!(map_slice_mut(&mut empty, 4, |_, _| 0u8).is_empty());
    }
}
