//! Cross-cutting options shared by every runner entry point.
//!
//! Historically each runner grew its own variants (`run_cosim` /
//! `run_cosim_with_telemetry`, `run_large_scale` / `_with_series` /
//! `_with_telemetry`, four `fig6` spellings). [`RunOptions`] collapses the
//! axes those variants multiplied over — observability sink, shard
//! override, series capture — into one value with sane defaults, so every
//! runner is `run_xxx(input, &config, &RunOptions)` and new axes don't
//! multiply the API again.

use crate::tier::ControllerSpec;
use vdc_dcsim::PueSeries;
use vdc_faults::FaultPlan;
use vdc_telemetry::Telemetry;

/// Options orthogonal to *what* is simulated: where metrics go, how many
/// shard workers run the fan-out stages, and whether the per-sample ledger
/// is kept. None of these change simulation results — runs are bit-identical
/// for every combination (`tests/sharding.rs` and the determinism suite
/// enforce this).
///
/// `RunOptions::default()` is the quiet single-purpose run: no telemetry,
/// shard count taken from the runner's config, no series capture.
///
/// # Examples
///
/// ```
/// use vdc_core::RunOptions;
/// use vdc_telemetry::Telemetry;
///
/// let telemetry = Telemetry::enabled();
/// let opts = RunOptions::default()
///     .with_telemetry(&telemetry)
///     .with_shards(8)
///     .with_series();
/// assert_eq!(opts.shards, Some(8));
/// assert!(opts.capture_series);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions<'a> {
    /// Metrics/span/SLO sink. `None` runs unobserved (zero overhead);
    /// telemetry only observes, never perturbs results.
    pub telemetry: Option<&'a Telemetry>,
    /// Shard-worker override for the fan-out stages: `Some(0)` = host
    /// parallelism, `Some(n)` = exactly `n`, `None` = defer to the
    /// runner's config (its own `shards` field).
    pub shards: Option<usize>,
    /// Capture the per-sample time series in the result (the large-scale
    /// replay's `WeekSample` ledger). Off by default: a week at 15-minute
    /// samples is small, but figure sweeps run many replays and only the
    /// profile plots read it. The co-simulation's trajectories are part of
    /// its result proper and are always captured.
    pub capture_series: bool,
    /// Deterministic fault plan injected into the run (host crashes,
    /// migration/wake failures, sensor dropout). `None` — or a plan for
    /// which [`FaultPlan::is_empty`] holds — runs fault-free, byte-identical
    /// to a plain run (the zero-fault contract `tests/determinism.rs`
    /// enforces). Faulted runs stay bit-identical at every shard count.
    pub faults: Option<&'a FaultPlan>,
    /// Hierarchical pod size for the optimizer: `Some(n)` partitions the
    /// fleet into site-aligned pods of at most `n` servers and plans each
    /// pod independently (see [`crate::optimizer::pod_partition`]). `None`
    /// (default) plans the whole fleet flat. Unlike the other axes this
    /// *does* change placement decisions — the regret harness
    /// (`tests/regret.rs`) bounds the power cost — but a given pod size is
    /// still bit-identical across shard counts.
    pub pods: Option<usize>,
    /// Which tier controller the run builds per application (the
    /// [`crate::tier`] seam). `None` defers to the runner's config (the
    /// co-simulation's `CosimConfig::controller`, itself defaulting to the
    /// paper MPC). Runners without application-level controllers — the
    /// large-scale trace replay and churn, whose VM demands come straight
    /// from the trace — ignore this axis entirely. Like `pods`, a
    /// non-default controller *does* change results; any given spec is
    /// still deterministic and bit-identical across shard counts.
    pub controller: Option<ControllerSpec>,
    /// Site PUE series fed forward to the controllers: each sample, every
    /// application's controller sees the current PUE via
    /// [`crate::tier::TierController::observe_pue`]. `None` feeds nothing
    /// (byte-identical to the pre-seam loop). Only cooling-coupled
    /// controllers react; for the rest the feed is a no-op by contract.
    pub pue: Option<&'a PueSeries>,
}

impl<'a> RunOptions<'a> {
    /// Attach a telemetry sink.
    pub fn with_telemetry(mut self, telemetry: &'a Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Override the shard count (`0` = host parallelism).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Capture the per-sample time series.
    pub fn with_series(mut self) -> Self {
        self.capture_series = true;
        self
    }

    /// Inject a fault plan.
    pub fn with_faults(mut self, faults: &'a FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Plan hierarchically with pods of at most `pod_size` servers.
    pub fn with_pods(mut self, pod_size: usize) -> Self {
        self.pods = Some(pod_size);
        self
    }

    /// Select the tier controller (overrides the runner config's spec).
    pub fn with_controller(mut self, spec: ControllerSpec) -> Self {
        self.controller = Some(spec);
        self
    }

    /// Feed the site PUE series forward to the controllers each sample.
    pub fn with_pue(mut self, pue: &'a PueSeries) -> Self {
        self.pue = Some(pue);
        self
    }

    /// The effective fault plan: `None` when no plan was attached *or* the
    /// attached plan injects nothing, so every run loop's fault machinery
    /// is gated on one check and an empty plan cannot perturb anything.
    pub(crate) fn faults(&self) -> Option<&'a FaultPlan> {
        self.faults.filter(|p| !p.is_empty())
    }

    /// The effective telemetry sink (disabled when none was attached).
    pub(crate) fn telemetry(&self) -> Telemetry {
        self.telemetry.cloned().unwrap_or_else(Telemetry::disabled)
    }

    /// The effective shard request given a runner config's own `shards`
    /// field: the override wins, otherwise the config value passes through
    /// (still subject to `shard::resolve`'s `0` = auto rule).
    pub(crate) fn shards_or(&self, cfg_shards: usize) -> usize {
        self.shards.unwrap_or(cfg_shards)
    }

    /// The effective controller spec given a runner config's own
    /// `controller` field: the override wins, otherwise the config value
    /// passes through.
    pub(crate) fn controller_or(&self, cfg_controller: ControllerSpec) -> ControllerSpec {
        self.controller.unwrap_or(cfg_controller)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet_and_defers_to_config() {
        let opts = RunOptions::default();
        assert!(opts.telemetry.is_none());
        assert!(!opts.capture_series);
        assert!(opts.faults.is_none());
        assert_eq!(opts.shards_or(3), 3);
        assert!(!opts.telemetry().is_enabled());
    }

    #[test]
    fn empty_fault_plan_is_normalized_away() {
        let empty = FaultPlan::empty();
        let opts = RunOptions::default().with_faults(&empty);
        assert!(opts.faults.is_some(), "attached as given...");
        assert!(opts.faults().is_none(), "...but effectively fault-free");
    }

    #[test]
    fn builders_set_each_axis() {
        let telemetry = Telemetry::enabled();
        let opts = RunOptions::default()
            .with_telemetry(&telemetry)
            .with_shards(0)
            .with_series()
            .with_pods(256);
        assert_eq!(opts.shards_or(5), 0, "explicit 0 (auto) beats config");
        assert!(opts.capture_series);
        assert!(opts.telemetry().is_enabled());
        assert_eq!(opts.pods, Some(256));
    }

    #[test]
    fn pods_default_to_flat() {
        assert!(RunOptions::default().pods.is_none());
    }

    #[test]
    fn controller_axis_defers_to_config_then_overrides() {
        let opts = RunOptions::default();
        assert!(opts.controller.is_none());
        assert!(opts.pue.is_none());
        assert_eq!(
            opts.controller_or(ControllerSpec::Robust),
            ControllerSpec::Robust
        );
        let opts = opts.with_controller(ControllerSpec::cooling());
        assert_eq!(
            opts.controller_or(ControllerSpec::Mpc),
            ControllerSpec::cooling()
        );
        let pue = PueSeries::constant(1.4).unwrap();
        let opts = opts.with_pue(&pue);
        assert!(opts.pue.is_some());
    }
}
