//! Full-system co-simulation: the Fig. 1 architecture at data-center
//! scale, with the response-time controllers **in the loop**.
//!
//! The paper's large-scale evaluation (§VII-B) replays recorded CPU
//! demands; its testbed evaluation (§VII-A) runs the controllers on four
//! servers. This module closes the gap the paper leaves implicit: hundreds
//! of MPC-controlled multi-tier applications whose *workloads* follow the
//! trace (clients come and go diurnally), whose *allocations* come from
//! their controllers, and whose VMs are consolidated by IPAC and throttled
//! by DVFS — i.e. the complete two-level system, end to end.
//!
//! Each application is an instant analytic plant ([`AnalyticPlant`]), so a
//! week of 15-minute samples over hundreds of applications runs in
//! seconds. The ablation comparison is **static peak provisioning**: the
//! same applications with allocations frozen at what the controller needs
//! at peak concurrency — the classic worst-case sizing the paper's
//! dynamic reallocation replaces.

use crate::controller::{identify_plant, IdentificationConfig};
use crate::largescale::{
    apply_host_events, apply_relief, fault_rollup, optimize_step, register_fault_keys,
    WATCHDOG_STREAK,
};
use crate::optimizer::{OptimizerConfig, PowerOptimizer};
use crate::run::RunOptions;
use crate::tier::{ControllerSpec, TierController};
use crate::{CoreError, Result};
use vdc_apptier::rng::{seed_stream, SimRng};
use vdc_apptier::{AnalyticPlant, Plant, WorkloadProfile};
use vdc_consolidate::constraint::AndConstraint;
use vdc_consolidate::item::PackItem;
use vdc_consolidate::relief::{relieve_overloads, ReliefConfig};
use vdc_dcsim::{DataCenter, Server, ServerSpec, VmHandle, VmSpec};
use vdc_faults::FaultSession;
use vdc_telemetry::Telemetry;
use vdc_trace::UtilizationTrace;

/// Configuration of a co-simulation run.
#[derive(Debug, Clone)]
pub struct CosimConfig {
    /// Number of controlled applications (each a two-tier plant).
    pub n_apps: usize,
    /// Response-time set point (ms).
    pub setpoint_ms: f64,
    /// Control periods executed per 15-minute trace sample.
    pub control_periods_per_sample: usize,
    /// Whether the tier controllers run; `false` freezes every application
    /// at its peak-sized static allocation (the ablation baseline).
    pub controllers_enabled: bool,
    /// Consolidation period in trace samples (16 = 4 h).
    pub optimizer_period_samples: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker shards for the per-sample control loop (`0` = host
    /// parallelism). Applications are partitioned into contiguous shards;
    /// results are bit-identical for every shard count because each app
    /// owns its plant, controller, and `seed_stream`-derived RNG stream,
    /// and all cross-app reductions stay sequential in app order.
    pub shards: usize,
    /// Which tier controller each application runs (the [`crate::tier`]
    /// seam). The default, [`ControllerSpec::Mpc`], is the paper's
    /// controller and keeps the run bit-identical to the pre-seam loop;
    /// `RunOptions::controller` overrides this per run.
    pub controller: ControllerSpec,
}

impl Default for CosimConfig {
    fn default() -> Self {
        CosimConfig {
            n_apps: 100,
            setpoint_ms: 1000.0,
            control_periods_per_sample: 8,
            controllers_enabled: true,
            optimizer_period_samples: 16,
            seed: 0xC051,
            shards: 1,
            controller: ControllerSpec::Mpc,
        }
    }
}

/// Result of a co-simulation run.
#[derive(Debug, Clone)]
pub struct CosimResult {
    /// Applications simulated.
    pub n_apps: usize,
    /// Total energy of active servers over the horizon (Wh).
    pub total_energy_wh: f64,
    /// Energy per application (Wh).
    pub energy_per_app_wh: f64,
    /// Mean absolute tracking error of the measured SLA metric vs the set
    /// point, over all apps and samples with measurements (ms).
    pub mean_tracking_error_ms: f64,
    /// Fraction of measurements exceeding 1.5× the set point (severe SLA
    /// violations).
    pub violation_fraction: f64,
    /// Mean active servers.
    pub mean_active_servers: f64,
    /// Total migrations (optimizer + relief).
    pub migrations: u64,
    /// Instantaneous active-server power at each trace sample (watts) —
    /// the power trajectory, recorded for reproducibility audits.
    pub power_series_w: Vec<f64>,
    /// Mean measured SLA metric at each trace sample (ms); samples with no
    /// completed measurements record `-1.0`.
    pub response_series_ms: Vec<f64>,
    /// Final VM placement `(vm id, server index)`, sorted by VM id — part
    /// of the shard-equivalence contract (`tests/sharding.rs`).
    pub final_placements: Vec<(u64, usize)>,
}

/// One controlled application in the co-simulation.
struct App {
    plant: AnalyticPlant,
    controller: Box<dyn TierController>,
    /// Frozen allocation when controllers are disabled.
    static_alloc: Vec<f64>,
    /// Client population cap (peak concurrency).
    max_clients: usize,
    /// Arena handles of the two tier VMs.
    vm_handles: [VmHandle; 2],
}

/// Advance one application through every control period of one trace
/// sample, returning the per-period measurements. This is the shard worker
/// body: it touches only the application's own plant and controller, so a
/// worker needs no view of any other shard.
fn app_sample_periods(
    app: &mut App,
    cfg: &CosimConfig,
    period_s: f64,
    masked: bool,
) -> Result<Vec<Option<f64>>> {
    let mut measured = Vec::with_capacity(cfg.control_periods_per_sample);
    for _ in 0..cfg.control_periods_per_sample {
        let m = if masked {
            // Sensor dropout: the plant still runs, but the monitor that
            // would time its completions is down — no measurement exists
            // for this period (None, never a fabricated 0.0).
            if cfg.controllers_enabled {
                app.controller.control_period_masked(&mut app.plant)?
            } else {
                app.plant.set_allocations(&app.static_alloc)?;
                app.plant.run_for(period_s);
                let _ = app.plant.take_completed();
                None
            }
        } else if cfg.controllers_enabled {
            app.controller.control_period(&mut app.plant)?
        } else {
            app.plant.set_allocations(&app.static_alloc)?;
            app.plant.run_for(period_s);
            let stats =
                vdc_apptier::monitor::ResponseStats::from_samples(app.plant.take_completed());
            if stats.is_empty() {
                None
            } else {
                Some(stats.p90() * 1000.0)
            }
        };
        measured.push(m);
    }
    Ok(measured)
}

/// Run the co-simulation over (the first `n_apps` rows of) a trace.
///
/// Each application's concurrency at sample `t` is its trace row's
/// utilization scaled into `[2, max_clients]` — applications inherit the
/// trace's diurnal/weekly structure while their CPU demands emerge from
/// feedback control rather than being replayed.
///
/// [`RunOptions`] carries the cross-cutting axes: a telemetry sink (per-app
/// SLO accounting against `cfg.setpoint_ms`, MPC phase-split timings,
/// optimizer invocation stats, per-server power samples, per-sample step
/// cost, DVFS/wake/sleep transition counts — telemetry only observes,
/// results are bit-identical; enforced by `tests/determinism.rs`) and a
/// shard override (else `cfg.shards`). The power/response trajectories are
/// part of [`CosimResult`] proper, so `capture_series` has no effect here.
pub fn run_cosim(
    trace: &UtilizationTrace,
    cfg: &CosimConfig,
    opts: &RunOptions<'_>,
) -> Result<CosimResult> {
    let telemetry = opts.telemetry();
    run_cosim_impl(trace, cfg, opts, &telemetry)
}

fn run_cosim_impl(
    trace: &UtilizationTrace,
    cfg: &CosimConfig,
    opts: &RunOptions<'_>,
    telemetry: &Telemetry,
) -> Result<CosimResult> {
    if cfg.n_apps == 0 || cfg.n_apps > trace.n_vms() {
        return Err(CoreError::BadConfig(format!(
            "n_apps {} outside trace size {}",
            cfg.n_apps,
            trace.n_vms()
        )));
    }
    if cfg.control_periods_per_sample == 0 || cfg.optimizer_period_samples == 0 {
        return Err(CoreError::BadConfig(
            "control and optimizer periods must be positive".into(),
        ));
    }
    let shards = crate::shard::resolve(opts.shards_or(cfg.shards));
    let spec = opts.controller_or(cfg.controller);
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let profile = WorkloadProfile::rubbos();
    let period_s = 900.0 / cfg.control_periods_per_sample as f64;

    // One shared identified model (the paper identifies once and reuses).
    let mut twin = AnalyticPlant::new(profile.clone(), 40, &[1.0, 1.0], 0.45, cfg.seed)?;
    let ident = IdentificationConfig {
        periods: 200,
        period_s,
        ..Default::default()
    };
    let model = identify_plant(&mut twin, &ident, cfg.seed)?;

    // Static-peak allocation: what the controller converges to at the
    // highest concurrency any app will see. Found once by closed-loop
    // search on a twin, then reused (classic peak sizing).
    let peak_clients = 80;
    let static_alloc = {
        let mut peak_twin = AnalyticPlant::new(
            profile.clone(),
            peak_clients,
            &[1.0, 1.0],
            0.45,
            cfg.seed ^ 1,
        )?;
        let mut c = spec.build(&model, cfg.setpoint_ms, period_s, &[1.0, 1.0])?;
        for _ in 0..80 {
            c.control_period(&mut peak_twin)?;
        }
        c.allocation().to_vec()
    };

    // Build the fleet (enough for peak static provisioning of all apps).
    let fleet_capacity_needed: f64 = static_alloc.iter().sum::<f64>() * cfg.n_apps as f64;
    let mean_cap = 0.15 * 12.0 + 0.35 * 4.0 + 0.5 * 3.0;
    let n_servers = ((fleet_capacity_needed * 1.6 / mean_cap).ceil() as usize).max(4);
    let mut dc = DataCenter::new();
    let catalog = ServerSpec::catalog();
    for _ in 0..n_servers {
        let spec = match rng.index(100) {
            0..=14 => catalog[0].clone(),
            15..=49 => catalog[1].clone(),
            _ => catalog[2].clone(),
        };
        dc.add_server(Server::asleep(spec));
    }

    // Build the applications and register their tier VMs.
    let mut apps = Vec::with_capacity(cfg.n_apps);
    let mut initial_items = Vec::with_capacity(2 * cfg.n_apps);
    for a in 0..cfg.n_apps {
        let max_clients = 30 + rng.index(50);
        let c0 = if cfg.controllers_enabled {
            vec![1.0, 1.0]
        } else {
            static_alloc.clone()
        };
        let plant = AnalyticPlant::new(
            profile.clone(),
            max_clients / 2,
            &c0,
            0.45,
            seed_stream(cfg.seed, a as u64),
        )?;
        let mut controller = spec.build(&model, cfg.setpoint_ms, period_s, &c0)?;
        controller.set_telemetry(telemetry.clone());
        let mut handles = [VmHandle::from_index(0); 2];
        for tier in 0..2usize {
            let spec = VmSpec::for_app(
                (2 * a + tier) as u64,
                a as u32,
                tier as u32,
                c0[tier],
                1024.0,
            );
            let id = spec.id;
            handles[tier] = dc.add_vm(spec)?;
            initial_items.push(PackItem::new(id, c0[tier], 1024.0));
        }
        apps.push(App {
            plant,
            controller,
            static_alloc: static_alloc.clone(),
            max_clients,
            vm_handles: handles,
        });
    }

    // Fault session: gated exactly like the large-scale loop — empty
    // plans were normalized to `None` by `RunOptions::faults()`, so a
    // fault-free run executes the pre-fault instruction stream.
    let mut faults = opts.faults().map(|plan| {
        register_fault_keys(telemetry);
        telemetry.incr("control.safe_mode_samples", 0);
        FaultSession::new(plan)
    });
    let mut violation_streak = 0usize;

    // Initial placement.
    let mut optimizer = PowerOptimizer::new(OptimizerConfig::ipac_default());
    optimizer.set_telemetry(telemetry.clone());
    optimize_step(&mut optimizer, &mut dc, &initial_items, &mut faults)?;

    let constraint = AndConstraint::cpu_and_memory();
    let relief_cfg = ReliefConfig::default();
    let mut total_energy = 0.0;
    let mut active_sum = 0usize;
    let mut err_sum = 0.0;
    let mut err_count = 0usize;
    let mut violations = 0usize;
    let mut relief_migrations = 0u64;
    let mut power_series_w = Vec::with_capacity(trace.n_samples());
    let mut response_series_ms = Vec::with_capacity(trace.n_samples());

    for t in 0..trace.n_samples() {
        let sample_span = telemetry.timer("cosim.sample_ns");

        // 1. Workload: concurrency follows the trace's shape.
        for (a, app) in apps.iter_mut().enumerate() {
            let u = trace.utilization(a, t);
            let clients = (2.0 + u * app.max_clients as f64).round() as usize;
            app.plant.set_concurrency(clients);
        }

        // 1.5 Feed-forward: the site's current PUE sample reaches every
        //     controller before the control fan-out. A no-op by contract
        //     for controllers that don't price cooling, and absent entirely
        //     (bit-identical loop) when no series is attached.
        if let Some(series) = opts.pue {
            let pue = series.at(t);
            for app in apps.iter_mut() {
                app.controller.observe_pue(pue);
            }
        }

        // 2. Application-level control (or static hold), fanned out over
        //    shards. Each worker advances a contiguous chunk of apps; the
        //    SLO accounting below folds the returned measurements
        //    sequentially in (app, period) order, exactly as the
        //    single-threaded loop did — so the shard count cannot perturb
        //    any f64 of the result.
        let control_span = telemetry.timer("cosim.control_ns");
        // The dropout mask is a pure function of the immutable plan, so
        // shard workers may consult it directly; all mutable fault
        // accounting stays in the sequential fold below.
        let plan = faults.as_ref().map(|f| f.plan());
        let per_app: Vec<Result<Vec<Option<f64>>>> =
            crate::shard::map_slice_mut(&mut apps, shards, |a, app| {
                let masked = plan.is_some_and(|p| p.sensor_dropped(a, t));
                app_sample_periods(app, cfg, period_s, masked)
            });
        control_span.finish();
        let mut sample_ms_sum = 0.0;
        let mut sample_ms_count = 0usize;
        let mut sample_violations = 0usize;
        for (a, measurements) in per_app.into_iter().enumerate() {
            let measurements = measurements?;
            if plan.is_some_and(|p| p.sensor_dropped(a, t)) {
                // Masked periods are sensor outage, not starvation — the
                // controller held its allocation in safe mode.
                if let Some(f) = faults.as_mut() {
                    f.safe_mode_samples += cfg.control_periods_per_sample as u64;
                }
                continue;
            }
            for measured in measurements {
                if let Some(ms) = measured {
                    telemetry.slo_observe(a as u32, cfg.setpoint_ms, ms, period_s);
                    err_sum += (ms - cfg.setpoint_ms).abs();
                    err_count += 1;
                    sample_ms_sum += ms;
                    sample_ms_count += 1;
                    if ms > 1.5 * cfg.setpoint_ms {
                        violations += 1;
                        sample_violations += 1;
                    }
                } else {
                    telemetry.incr("cosim.starved_periods", 1);
                }
            }
        }

        // 3. Propagate demands to the data center.
        for app in &apps {
            let alloc: &[f64] = if cfg.controllers_enabled {
                app.controller.allocation()
            } else {
                &app.static_alloc
            };
            for (tier, &vm) in app.vm_handles.iter().enumerate() {
                dc.set_vm_demand(vm, alloc[tier])?;
            }
        }

        // 3.5 Host crash/recover events due at this sample (evacuation
        //     sees the demands just propagated above).
        if let Some(f) = faults.as_mut() {
            apply_host_events(&mut dc, f, t, shards, telemetry)?;
        }

        // 4. Data-center level: consolidate on the long period, relieve
        //    overloads otherwise, and always re-run DVFS.
        if t > 0 && t % cfg.optimizer_period_samples == 0 {
            optimize_step(&mut optimizer, &mut dc, &[], &mut faults)?;
        } else {
            let snap = crate::optimizer::snapshot_sharded(&dc, shards);
            let outcome = relieve_overloads(&snap, &constraint, &relief_cfg);
            if !outcome.plan.is_empty() {
                let stats = apply_relief(&mut dc, &outcome.plan, &mut faults, telemetry)?;
                relief_migrations += stats.migrations as u64;
                telemetry.incr("cosim.relief_migrations", stats.migrations as u64);
            }
        }
        dc.apply_dvfs(true)?;

        // 5. Energy of active servers over this sample.
        let active = dc.active_servers();
        active_sum += active.len();
        let mut watts = 0.0;
        for &s in &active {
            let w = dc.server_power_watts(s).expect("index in range");
            telemetry.record("dcsim.server_power_w", w);
            watts += w;
        }
        total_energy += watts * trace.interval_s() / 3600.0;
        power_series_w.push(watts);
        response_series_ms.push(if sample_ms_count > 0 {
            sample_ms_sum / sample_ms_count as f64
        } else {
            -1.0
        });
        telemetry.incr("cosim.samples", 1);
        // SLO watchdog: consecutive samples with severe violations trip an
        // out-of-cadence emergency relief pass (matters on optimizer
        // samples, where the regular relief doesn't run).
        if faults.is_some() {
            if sample_violations > 0 {
                violation_streak += 1;
            } else {
                violation_streak = 0;
            }
            if violation_streak >= WATCHDOG_STREAK {
                violation_streak = 0;
                if let Some(f) = faults.as_mut() {
                    f.watchdog_reliefs += 1;
                }
                telemetry.incr("fault.watchdog_reliefs", 1);
                let snap = crate::optimizer::snapshot_sharded(&dc, shards);
                let outcome = relieve_overloads(&snap, &constraint, &relief_cfg);
                if !outcome.plan.is_empty() {
                    let stats = apply_relief(&mut dc, &outcome.plan, &mut faults, telemetry)?;
                    relief_migrations += stats.migrations as u64;
                    telemetry.incr("cosim.relief_migrations", stats.migrations as u64);
                }
            }
        }
        sample_span.finish();
    }
    total_energy += dc.wake_energy_wh();

    // Run-level roll-up of the fault session.
    if let Some(f) = &faults {
        fault_rollup(f, telemetry);
        telemetry.incr("control.safe_mode_samples", f.safe_mode_samples);
    }

    // Run-level roll-up: DVFS / sleep-state transition counts from the
    // arbitrator and the integrated energy of the horizon.
    telemetry.incr("dcsim.dvfs_transitions", dc.dvfs_transitions());
    telemetry.incr("dcsim.wake_transitions", dc.wake_count());
    telemetry.incr("dcsim.sleep_transitions", dc.sleep_count());
    telemetry.gauge_set("dcsim.wake_energy_wh", dc.wake_energy_wh());
    telemetry.gauge_set("cosim.total_energy_wh", total_energy);
    telemetry.gauge_set(
        "cosim.mean_active_servers",
        active_sum as f64 / trace.n_samples() as f64,
    );
    telemetry.incr(
        "cosim.migrations",
        optimizer.total_migrations() + relief_migrations,
    );

    // Label-ordered (VmId-sorted) iteration, matching the ascending-id
    // order of the old lookup loop.
    let mut final_placements: Vec<(u64, usize)> = Vec::with_capacity(2 * cfg.n_apps);
    for (id, h) in dc.vm_handles() {
        if let Some(server) = dc.placement_of(h) {
            final_placements.push((id.0, server.index()));
        }
    }

    Ok(CosimResult {
        n_apps: cfg.n_apps,
        total_energy_wh: total_energy,
        energy_per_app_wh: total_energy / cfg.n_apps as f64,
        mean_tracking_error_ms: if err_count > 0 {
            err_sum / err_count as f64
        } else {
            f64::INFINITY
        },
        violation_fraction: if err_count > 0 {
            violations as f64 / err_count as f64
        } else {
            1.0
        },
        mean_active_servers: active_sum as f64 / trace.n_samples() as f64,
        migrations: optimizer.total_migrations() + relief_migrations,
        power_series_w,
        response_series_ms,
        final_placements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdc_trace::{generate_trace, TraceConfig};

    /// Local shorthand: the quiet default-options run.
    fn run_cosim(t: &UtilizationTrace, cfg: &CosimConfig) -> Result<CosimResult> {
        super::run_cosim(t, cfg, &RunOptions::default())
    }

    fn day_trace(n: usize, seed: u64) -> UtilizationTrace {
        generate_trace(&TraceConfig {
            n_vms: n,
            n_samples: 96,
            interval_s: 900.0,
            seed,
        })
    }

    #[test]
    fn validates_config() {
        let t = day_trace(10, 1);
        let mut cfg = CosimConfig {
            n_apps: 0,
            ..Default::default()
        };
        assert!(run_cosim(&t, &cfg).is_err());
        cfg.n_apps = 50; // > trace rows
        assert!(run_cosim(&t, &cfg).is_err());
        cfg.n_apps = 5;
        cfg.control_periods_per_sample = 0;
        assert!(run_cosim(&t, &cfg).is_err());
    }

    #[test]
    fn controlled_run_tracks_and_completes() {
        let t = day_trace(20, 2);
        let cfg = CosimConfig {
            n_apps: 20,
            control_periods_per_sample: 4,
            ..Default::default()
        };
        let r = run_cosim(&t, &cfg).unwrap();
        assert_eq!(r.n_apps, 20);
        assert!(r.total_energy_wh > 0.0);
        assert!(
            r.mean_tracking_error_ms < 0.25 * cfg.setpoint_ms,
            "tracking error {:.0} ms",
            r.mean_tracking_error_ms
        );
        assert!(r.violation_fraction < 0.05, "{}", r.violation_fraction);
        assert!(r.mean_active_servers >= 1.0);
    }

    #[test]
    fn dynamic_control_saves_energy_vs_static_peak() {
        let t = day_trace(25, 3);
        let base = CosimConfig {
            n_apps: 25,
            control_periods_per_sample: 4,
            ..Default::default()
        };
        let dynamic = run_cosim(&t, &base).unwrap();
        let stat = run_cosim(
            &t,
            &CosimConfig {
                controllers_enabled: false,
                ..base
            },
        )
        .unwrap();
        assert!(
            dynamic.total_energy_wh < stat.total_energy_wh,
            "dynamic {:.0} Wh must beat static peak {:.0} Wh",
            dynamic.total_energy_wh,
            stat.total_energy_wh
        );
        // The static baseline over-provisions, so it violates rarely too —
        // the win is energy, not SLA.
        assert!(stat.violation_fraction < 0.05);
    }

    #[test]
    fn sharded_run_matches_single_threaded() {
        let t = day_trace(8, 9);
        let base = CosimConfig {
            n_apps: 8,
            control_periods_per_sample: 2,
            optimizer_period_samples: 8,
            ..Default::default()
        };
        let one = run_cosim(&t, &base).unwrap();
        for shards in [2usize, 3, 8] {
            let s = run_cosim(
                &t,
                &CosimConfig {
                    shards,
                    ..base.clone()
                },
            )
            .unwrap();
            let as_bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                as_bits(&one.power_series_w),
                as_bits(&s.power_series_w),
                "power trajectory diverged at shards={shards}"
            );
            assert_eq!(
                as_bits(&one.response_series_ms),
                as_bits(&s.response_series_ms),
                "response trajectory diverged at shards={shards}"
            );
            assert_eq!(one.total_energy_wh.to_bits(), s.total_energy_wh.to_bits());
            assert_eq!(one.migrations, s.migrations);
            assert_eq!(one.final_placements, s.final_placements);
        }
    }

    #[test]
    fn sensor_dropout_engages_safe_mode_without_nans() {
        use vdc_faults::{FaultConfig, FaultPlan};
        let t = day_trace(12, 7);
        let cfg = CosimConfig {
            n_apps: 12,
            control_periods_per_sample: 2,
            ..Default::default()
        };
        // Several outages per app-day, each ~2 hours.
        let plan = FaultPlan::generate(
            &FaultConfig::sensor_dropout(4.0, 7200.0, 0xD80),
            t.n_samples(),
            t.interval_s(),
            0,
            cfg.n_apps,
        );
        assert!(
            !plan.dropout_windows().is_empty(),
            "config must generate dropout windows"
        );
        let telemetry = vdc_telemetry::Telemetry::enabled();
        let opts = RunOptions::default()
            .with_telemetry(&telemetry)
            .with_faults(&plan);
        let r = super::run_cosim(&t, &cfg, &opts).unwrap();
        let safe_samples = telemetry
            .counter_values()
            .into_iter()
            .find(|(n, _)| n == "control.safe_mode_samples")
            .map(|(_, v)| v)
            .expect("safe mode counter registered");
        assert!(
            safe_samples > 0,
            "outages must put controllers in safe mode"
        );
        // Masked samples are absent, never fabricated: every series entry
        // is finite (−1.0 marks a sample with no measurements at all).
        for (i, &ms) in r.response_series_ms.iter().enumerate() {
            assert!(ms.is_finite(), "sample {i} response {ms} must be finite");
            assert!(ms >= -1.0, "sample {i}: {ms}");
        }
        for (i, &w) in r.power_series_w.iter().enumerate() {
            assert!(w.is_finite() && w >= 0.0, "sample {i} power {w}");
        }
        assert!(r.mean_tracking_error_ms.is_finite());
        // Control still works: violations stay rare despite the outages.
        assert!(
            r.violation_fraction < 0.10,
            "violation fraction {} under dropout",
            r.violation_fraction
        );
    }

    #[test]
    fn host_crashes_in_cosim_keep_the_loop_running() {
        use vdc_faults::{FaultConfig, FaultPlan};
        let t = day_trace(10, 8);
        let cfg = CosimConfig {
            n_apps: 10,
            control_periods_per_sample: 2,
            ..Default::default()
        };
        // Generate against a generous host count; out-of-range indices for
        // the auto-sized fleet are skipped by the run loop.
        let plan = FaultPlan::generate(
            &FaultConfig::crash_storm(24.0 * 3600.0, 3600.0, 0xC4A5),
            t.n_samples(),
            t.interval_s(),
            64,
            cfg.n_apps,
        );
        assert!(!plan.host_events().is_empty());
        let telemetry = vdc_telemetry::Telemetry::enabled();
        let opts = RunOptions::default()
            .with_telemetry(&telemetry)
            .with_faults(&plan);
        let r = super::run_cosim(&t, &cfg, &opts).unwrap();
        assert!(r.total_energy_wh > 0.0);
        assert!(r.mean_tracking_error_ms.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let t = day_trace(10, 4);
        let cfg = CosimConfig {
            n_apps: 10,
            control_periods_per_sample: 4,
            ..Default::default()
        };
        let a = run_cosim(&t, &cfg).unwrap();
        let b = run_cosim(&t, &cfg).unwrap();
        assert_eq!(a.total_energy_wh, b.total_energy_wh);
        assert_eq!(a.migrations, b.migrations);
    }
}
