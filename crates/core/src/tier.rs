//! The pluggable controller seam: [`TierController`] and [`ControllerSpec`].
//!
//! The paper's MPC ([`ResponseTimeController`]) is one point in a design
//! space. This module turns the application-control layer into a real seam:
//! an object-safe trait every run loop (`cosim`, `testbed`, faults) drives
//! through `Box<dyn TierController>`, with three implementations —
//!
//! * **`mpc`** — the paper's §IV controller, unchanged. The default, and
//!   bit-identical to the pre-seam code path.
//! * **`robust`** — the model-free fixed-gain provisioning law of
//!   [`vdc_control::robust`] (after Makridis et al., arXiv:1811.05533),
//!   wrapped with the same plant-loop mechanics (measure → filter → move,
//!   starvation watchdog, sensor-dropout safe mode).
//! * **`cooling`** — the cooling-coupled MPC of [`vdc_control::cooling`]
//!   (after Ogura et al., arXiv:1806.03375): the paper's controller plus a
//!   PUE-weighted allocation-level term, fed per sample through
//!   [`TierController::observe_pue`] from the fleet layer's `PueSeries`.
//!
//! Selection is data, not code: [`ControllerSpec`] travels on
//! `CosimConfig`/`RunOptions`/`TestbedConfig` and builds the boxed
//! controller from the identified model.
//!
//! ## Trait contract
//!
//! Implementations must uphold, and the conformance suite
//! (`tests/controller_conformance.rs`) checks, the following:
//!
//! * `control_period` advances the plant exactly `period_s` seconds under
//!   the *currently applied* allocation, then computes the next one.
//!   Returns `Ok(Some(t_ms))` for a clean measurement, `Ok(None)` when the
//!   period starved (no completions).
//! * `control_period_masked` is the sensor-down variant: the plant still
//!   advances (requests drain unseen), the allocation freezes at its
//!   last-good value, and *no* control law runs. The first masked period
//!   enters safe mode; the first clean `control_period` afterwards exits
//!   it. Masked periods always return `Ok(None)` — an absent sample is
//!   never `0.0`.
//! * `set_bounds` with invalid bounds (non-finite, inverted, infeasible)
//!   returns `Err`, ticks a `control.bad_bounds` telemetry counter, and
//!   leaves the previous bounds in force. It must never partially apply.
//! * `allocation()` is always inside the configured box, and never moves
//!   while in safe mode.
//! * `observe_pue` is feed-forward only: controllers that do not price
//!   cooling ignore it, and ignoring it must be free (the default no-op).

use crate::controller::ResponseTimeController;
use crate::{CoreError, Result};
use vdc_apptier::monitor::{ResponseStats, SlaMetric};
use vdc_apptier::Plant;
use vdc_control::{ArxModel, RobustConfig, RobustController};
use vdc_telemetry::Telemetry;

/// An application-level controller bound to one multi-tier plant: the
/// object-safe seam the run loops drive. See the module docs for the
/// behavioral contract.
pub trait TierController: Send + std::fmt::Debug {
    /// Run one control period against the plant and apply the next
    /// allocation. `Ok(Some(t_ms))` on a clean measurement, `Ok(None)`
    /// when the period starved.
    fn control_period(&mut self, plant: &mut dyn Plant) -> Result<Option<f64>>;

    /// Run one control period with the response-time sensor down: freeze
    /// the allocation, drain completions unseen, enter safe mode on the
    /// first masked period. Always `Ok(None)`.
    fn control_period_masked(&mut self, plant: &mut dyn Plant) -> Result<Option<f64>>;

    /// Currently applied allocation (GHz per tier).
    fn allocation(&self) -> &[f64];

    /// Replace the per-tier allocation box (GHz). Invalid bounds return
    /// `Err`, tick `control.bad_bounds`, and leave the old box in force.
    fn set_bounds(&mut self, c_min: f64, c_max: f64) -> Result<()>;

    /// Change the response-time set point (ms) at run time.
    fn set_setpoint(&mut self, setpoint_ms: f64);

    /// Current set point (ms).
    fn setpoint(&self) -> f64;

    /// Control period (seconds).
    fn period_s(&self) -> f64;

    /// Whether the controller is holding in sensor-dropout safe mode.
    fn in_safe_mode(&self) -> bool;

    /// Most recent clean measurement fed to the controller (ms), if any.
    fn last_measurement_ms(&self) -> Option<f64>;

    /// Attach a telemetry sink. Telemetry only observes — attaching one
    /// must not change a single control move.
    fn set_telemetry(&mut self, telemetry: Telemetry);

    /// Feed the site's current PUE sample (feed-forward, from the fleet
    /// layer's `PueSeries`). Controllers that do not price cooling ignore
    /// it; the default is a no-op.
    fn observe_pue(&mut self, _pue: f64) {}

    /// Total CPU demand across tiers (GHz) — what the server-level
    /// arbitrators aggregate.
    fn total_demand_ghz(&self) -> f64 {
        self.allocation().iter().sum()
    }
}

impl TierController for ResponseTimeController {
    fn control_period(&mut self, plant: &mut dyn Plant) -> Result<Option<f64>> {
        ResponseTimeController::control_period(self, plant)
    }

    fn control_period_masked(&mut self, plant: &mut dyn Plant) -> Result<Option<f64>> {
        ResponseTimeController::control_period_masked(self, plant)
    }

    fn allocation(&self) -> &[f64] {
        ResponseTimeController::allocation(self)
    }

    fn set_bounds(&mut self, c_min: f64, c_max: f64) -> Result<()> {
        ResponseTimeController::set_bounds(self, c_min, c_max)
    }

    fn set_setpoint(&mut self, setpoint_ms: f64) {
        ResponseTimeController::set_setpoint(self, setpoint_ms);
    }

    fn setpoint(&self) -> f64 {
        ResponseTimeController::setpoint(self)
    }

    fn period_s(&self) -> f64 {
        ResponseTimeController::period_s(self)
    }

    fn in_safe_mode(&self) -> bool {
        ResponseTimeController::in_safe_mode(self)
    }

    fn last_measurement_ms(&self) -> Option<f64> {
        ResponseTimeController::last_measurement_ms(self)
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        ResponseTimeController::set_telemetry(self, telemetry);
    }
}

/// Starvation-watchdog bump per period (GHz) — matches the MPC path's.
const WATCHDOG_BUMP_GHZ: f64 = 0.2;

/// The robust provisioning controller bound to a plant: the fixed-gain law
/// of [`vdc_control::robust`] plus the plant-loop mechanics every tier
/// controller needs (p90 measurement, starvation watchdog, sensor-dropout
/// safe mode).
#[derive(Debug, Clone)]
pub struct RobustTierController {
    law: RobustController,
    period_s: f64,
    metric: SlaMetric,
    last_measurement_ms: Option<f64>,
    safe_mode: bool,
}

impl RobustTierController {
    /// Build from the SLA target and initial allocation. The allocation
    /// box and rate limit come from [`RobustConfig::default`] and match
    /// the MPC path's (`c` in `[0.3, 3.0]` GHz, 0.3 GHz per period).
    pub fn new(setpoint_ms: f64, period_s: f64, c0: &[f64]) -> Result<RobustTierController> {
        if !(period_s.is_finite() && period_s > 0.0) {
            return Err(CoreError::BadConfig(format!(
                "control period {period_s} s must be positive"
            )));
        }
        let law = RobustController::new(setpoint_ms, RobustConfig::default(), c0)
            .map_err(CoreError::Control)?;
        Ok(RobustTierController {
            law,
            period_s,
            metric: SlaMetric::P90,
            last_measurement_ms: None,
            safe_mode: false,
        })
    }

    /// The wrapped control law.
    pub fn law(&self) -> &RobustController {
        &self.law
    }
}

impl TierController for RobustTierController {
    fn control_period(&mut self, plant: &mut dyn Plant) -> Result<Option<f64>> {
        plant.set_allocations(self.law.allocation())?;
        plant.run_for(self.period_s);
        let stats = ResponseStats::from_samples(plant.take_completed());
        if stats.is_empty() {
            // Starved: watchdog-bump the allocation by the rate limit.
            let bumped: Vec<f64> = self
                .law
                .allocation()
                .iter()
                .map(|&c| c + WATCHDOG_BUMP_GHZ)
                .collect();
            self.law
                .force_allocation(&bumped)
                .map_err(CoreError::Control)?;
            self.last_measurement_ms = None;
            return Ok(None);
        }
        let t_ms = self
            .metric
            .evaluate(&stats)
            .expect("non-empty stats evaluate for every metric")
            * 1000.0;
        self.last_measurement_ms = Some(t_ms);
        let _ = self.law.step(t_ms);
        if self.safe_mode {
            // First clean sample: the filter was reset on safe-mode entry,
            // so this step already moved gently; resume normal operation.
            self.safe_mode = false;
        }
        Ok(Some(t_ms))
    }

    fn control_period_masked(&mut self, plant: &mut dyn Plant) -> Result<Option<f64>> {
        plant.set_allocations(self.law.allocation())?;
        plant.run_for(self.period_s);
        let _ = plant.take_completed();
        if !self.safe_mode {
            self.safe_mode = true;
            // Pre-outage error history is stale; re-entry reseeds fresh.
            self.law.reset_filter();
        }
        self.last_measurement_ms = None;
        Ok(None)
    }

    fn allocation(&self) -> &[f64] {
        self.law.allocation()
    }

    fn set_bounds(&mut self, c_min: f64, c_max: f64) -> Result<()> {
        self.law.set_bounds(c_min, c_max).map_err(|e| {
            self.law.telemetry().incr("control.bad_bounds", 1);
            CoreError::Control(e)
        })
    }

    fn set_setpoint(&mut self, setpoint_ms: f64) {
        self.law.set_setpoint(setpoint_ms);
    }

    fn setpoint(&self) -> f64 {
        self.law.setpoint()
    }

    fn period_s(&self) -> f64 {
        self.period_s
    }

    fn in_safe_mode(&self) -> bool {
        self.safe_mode
    }

    fn last_measurement_ms(&self) -> Option<f64> {
        self.last_measurement_ms
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.law.set_telemetry(telemetry);
    }
}

/// The cooling-coupled MPC bound to a plant: the paper controller's entire
/// plant loop (measurement filter, watchdog, safe mode) with the
/// PUE-weighted energy term switched on in the wrapped MPC's objective.
#[derive(Debug, Clone)]
pub struct CoolingTierController {
    rtc: ResponseTimeController,
}

impl CoolingTierController {
    /// Build from an identified model; `energy_weight` must be finite and
    /// non-negative (zero degenerates to the paper controller exactly).
    pub fn new(
        model: ArxModel,
        setpoint_ms: f64,
        period_s: f64,
        c0: &[f64],
        energy_weight: f64,
    ) -> Result<CoolingTierController> {
        let mut rtc = ResponseTimeController::new(model, setpoint_ms, period_s, c0)?;
        rtc.mpc_mut()
            .set_energy_weight(energy_weight)
            .map_err(CoreError::Control)?;
        Ok(CoolingTierController { rtc })
    }

    /// The configured energy weight.
    pub fn energy_weight(&self) -> f64 {
        self.rtc.mpc().energy_weight()
    }

    /// The PUE multiplier currently applied.
    pub fn pue(&self) -> f64 {
        self.rtc.mpc().pue()
    }
}

impl TierController for CoolingTierController {
    fn control_period(&mut self, plant: &mut dyn Plant) -> Result<Option<f64>> {
        self.rtc.control_period(plant)
    }

    fn control_period_masked(&mut self, plant: &mut dyn Plant) -> Result<Option<f64>> {
        self.rtc.control_period_masked(plant)
    }

    fn allocation(&self) -> &[f64] {
        self.rtc.allocation()
    }

    fn set_bounds(&mut self, c_min: f64, c_max: f64) -> Result<()> {
        self.rtc.set_bounds(c_min, c_max)
    }

    fn set_setpoint(&mut self, setpoint_ms: f64) {
        self.rtc.set_setpoint(setpoint_ms);
    }

    fn setpoint(&self) -> f64 {
        self.rtc.setpoint()
    }

    fn period_s(&self) -> f64 {
        self.rtc.period_s()
    }

    fn in_safe_mode(&self) -> bool {
        self.rtc.in_safe_mode()
    }

    fn last_measurement_ms(&self) -> Option<f64> {
        self.rtc.last_measurement_ms()
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.rtc.set_telemetry(telemetry);
    }

    fn observe_pue(&mut self, pue: f64) {
        self.rtc.mpc_mut().set_pue(pue);
    }
}

/// Default energy weight for [`ControllerSpec::cooling`], in the MPC's
/// cost units (the tracking error is in ms², so allocation-level pressure
/// needs comparable scale — see `crates/control/src/cooling.rs`). Tuned
/// against the `controllers` ablation: a visible energy saving at PUE ≈
/// 1.3–1.6 while the week trace still completes within its SLO budget.
pub const DEFAULT_COOLING_WEIGHT: f64 = 1.5e4;

/// Which tier controller a run builds for each application. Travels on
/// `CosimConfig`, `RunOptions`, and `TestbedConfig`; the run loops call
/// [`ControllerSpec::build`] with the identified model instead of
/// constructing a concrete controller type.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ControllerSpec {
    /// The paper's MPC (§IV) — the default, bit-identical to the pre-seam
    /// code path.
    #[default]
    Mpc,
    /// The model-free robust provisioning law (Makridis et al.,
    /// arXiv:1811.05533). Ignores the identified model by design.
    Robust,
    /// The cooling-coupled MPC (Ogura et al., arXiv:1806.03375) with the
    /// given energy weight.
    CoolingMpc {
        /// Weight of the PUE-multiplied allocation-level term.
        energy_weight: f64,
    },
}

impl ControllerSpec {
    /// The cooling-coupled variant at [`DEFAULT_COOLING_WEIGHT`].
    pub fn cooling() -> ControllerSpec {
        ControllerSpec::CoolingMpc {
            energy_weight: DEFAULT_COOLING_WEIGHT,
        }
    }

    /// Stable short name for CLI flags and metrics labels.
    pub fn name(&self) -> &'static str {
        match self {
            ControllerSpec::Mpc => "mpc",
            ControllerSpec::Robust => "robust",
            ControllerSpec::CoolingMpc { .. } => "cooling",
        }
    }

    /// Parse a CLI flag value (`mpc` | `robust` | `cooling`).
    pub fn parse(s: &str) -> Option<ControllerSpec> {
        match s {
            "mpc" => Some(ControllerSpec::Mpc),
            "robust" => Some(ControllerSpec::Robust),
            "cooling" => Some(ControllerSpec::cooling()),
            _ => None,
        }
    }

    /// Build the boxed controller for one application from its identified
    /// model. The `Mpc` arm routes through [`ResponseTimeController::new`]
    /// with exactly the pre-seam arguments, so the default path stays
    /// bit-identical.
    pub fn build(
        &self,
        model: &ArxModel,
        setpoint_ms: f64,
        period_s: f64,
        c0: &[f64],
    ) -> Result<Box<dyn TierController>> {
        Ok(match *self {
            ControllerSpec::Mpc => Box::new(ResponseTimeController::new(
                model.clone(),
                setpoint_ms,
                period_s,
                c0,
            )?),
            ControllerSpec::Robust => {
                Box::new(RobustTierController::new(setpoint_ms, period_s, c0)?)
            }
            ControllerSpec::CoolingMpc { energy_weight } => Box::new(CoolingTierController::new(
                model.clone(),
                setpoint_ms,
                period_s,
                c0,
                energy_weight,
            )?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ArxModel {
        ArxModel::new(
            vec![0.45],
            vec![vec![-180.0, -120.0], vec![-60.0, -40.0]],
            1400.0,
        )
        .unwrap()
    }

    #[test]
    fn spec_names_round_trip_through_parse() {
        for spec in [
            ControllerSpec::Mpc,
            ControllerSpec::Robust,
            ControllerSpec::cooling(),
        ] {
            assert_eq!(ControllerSpec::parse(spec.name()), Some(spec));
        }
        assert_eq!(ControllerSpec::parse("pid"), None);
        assert_eq!(ControllerSpec::default(), ControllerSpec::Mpc);
    }

    #[test]
    fn build_produces_working_controllers_of_each_kind() {
        for spec in [
            ControllerSpec::Mpc,
            ControllerSpec::Robust,
            ControllerSpec::cooling(),
        ] {
            let ctrl = spec.build(&model(), 1000.0, 4.0, &[1.0, 1.0]).unwrap();
            assert_eq!(ctrl.allocation(), &[1.0, 1.0], "{}", spec.name());
            assert_eq!(ctrl.setpoint(), 1000.0);
            assert_eq!(ctrl.period_s(), 4.0);
            assert!(!ctrl.in_safe_mode());
            assert!((ctrl.total_demand_ghz() - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn build_rejects_bad_inputs() {
        assert!(ControllerSpec::Mpc
            .build(&model(), -5.0, 4.0, &[1.0, 1.0])
            .is_err());
        assert!(ControllerSpec::Robust
            .build(&model(), 1000.0, 0.0, &[1.0, 1.0])
            .is_err());
        assert!(ControllerSpec::CoolingMpc {
            energy_weight: -1.0
        }
        .build(&model(), 1000.0, 4.0, &[1.0, 1.0])
        .is_err());
    }

    #[test]
    fn bad_bounds_are_rejected_and_counted() {
        let telemetry = Telemetry::enabled();
        for spec in [
            ControllerSpec::Mpc,
            ControllerSpec::Robust,
            ControllerSpec::cooling(),
        ] {
            let mut ctrl = spec.build(&model(), 1000.0, 4.0, &[1.0, 1.0]).unwrap();
            ctrl.set_telemetry(telemetry.clone());
            assert!(ctrl.set_bounds(2.0, 1.0).is_err(), "{}", spec.name());
            assert!(ctrl.set_bounds(0.5, 2.5).is_ok(), "{}", spec.name());
        }
        let counters = telemetry.counter_values();
        let bad = counters
            .iter()
            .find(|(n, _)| n == "control.bad_bounds")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert_eq!(bad, 3, "each controller must tick control.bad_bounds once");
    }

    #[test]
    fn observe_pue_is_a_noop_for_non_cooling_controllers() {
        let mut mpc = ControllerSpec::Mpc
            .build(&model(), 1000.0, 4.0, &[1.0, 1.0])
            .unwrap();
        mpc.observe_pue(2.5); // must be accepted and ignored
        let mut cooling =
            CoolingTierController::new(model(), 1000.0, 4.0, &[1.0, 1.0], 10.0).unwrap();
        assert_eq!(cooling.pue(), 1.0);
        TierController::observe_pue(&mut cooling, 1.6);
        assert_eq!(cooling.pue(), 1.6);
        assert_eq!(cooling.energy_weight(), 10.0);
    }
}
