//! The application-level response-time controller (§IV), bound to a
//! simulated multi-tier plant.
//!
//! Combines the pieces the paper describes: system identification of the
//! eq. (1) model by PRBS excitation and least squares, then an MPC
//! controller tracking the 90-percentile response time by adjusting the
//! per-tier CPU allocations every control period.

use crate::{CoreError, Result};
use vdc_apptier::monitor::{ResponseStats, SlaMetric};
use vdc_apptier::Plant;
use vdc_control::sysid::{fit_arx, ExperimentData, Prbs};
use vdc_control::{ArxModel, MpcConfig, MpcController, ReferenceTrajectory};

/// Nominal reference time constant, as a multiple of the control period.
const REFERENCE_TC_PERIODS: f64 = 3.0;

/// How much the reference band widens while re-entering closed loop after
/// a sensor outage: the first clean sample steps toward the set point this
/// much slower, so a single post-outage measurement can't command an
/// aggressive allocation move.
const SAFE_MODE_REFERENCE_SCALE: f64 = 3.0;

/// Configuration of the identification experiment (§IV-B / §VI-A: the
/// paper identifies at concurrency 40).
#[derive(Debug, Clone)]
pub struct IdentificationConfig {
    /// Number of control periods to excite.
    pub periods: usize,
    /// Control period (seconds).
    pub period_s: f64,
    /// Low PRBS allocation level per tier (GHz).
    pub low_ghz: f64,
    /// High PRBS allocation level per tier (GHz).
    pub high_ghz: f64,
    /// Hold length of each PRBS level, in periods.
    pub hold: usize,
    /// ARX output lags (paper's example: 1).
    pub na: usize,
    /// ARX input lags (paper's example: 2).
    pub nb: usize,
    /// Which response-time statistic to identify against. The paper uses
    /// the 90th percentile but notes the solution "can be extended to
    /// control other SLAs such as average or maximum response times"
    /// (§III); the controller must use the same metric it was identified
    /// with.
    pub metric: SlaMetric,
}

impl Default for IdentificationConfig {
    fn default() -> Self {
        IdentificationConfig {
            periods: 220,
            period_s: 4.0,
            low_ghz: 0.45,
            high_ghz: 1.3,
            hold: 3,
            na: 1,
            nb: 2,
            metric: SlaMetric::P90,
        }
    }
}

/// Identify an eq. (1)-style ARX model for `plant` by PRBS excitation.
///
/// The plant is driven for `cfg.periods` control periods with independent
/// per-tier PRBS allocation signals; the 90-percentile response time of
/// each period is regressed on the allocation history. The plant is
/// *consumed* mutably — identify on a dedicated instance (or accept the
/// warm-up perturbation, as a real testbed would).
pub fn identify_plant<P: Plant + ?Sized>(
    plant: &mut P,
    cfg: &IdentificationConfig,
    seed: u64,
) -> Result<ArxModel> {
    let n_tiers = plant.n_tiers();
    let mut prbs: Vec<Prbs> = (0..n_tiers)
        .map(|i| {
            Prbs::new(
                cfg.low_ghz,
                cfg.high_ghz,
                cfg.hold + i % 2, // decorrelate tiers with different holds
                (seed as u16).wrapping_add(101 * i as u16 + 1),
            )
        })
        .collect();
    let mut data = ExperimentData::new();
    for _ in 0..cfg.periods {
        let alloc: Vec<f64> = prbs.iter_mut().map(|p| p.next_level()).collect();
        plant.set_allocations(&alloc)?;
        plant.run_for(cfg.period_s);
        let stats = ResponseStats::from_samples(plant.take_completed());
        let Some(value) = cfg.metric.evaluate(&stats) else {
            // Starved period: skip the sample (no measurement, like a
            // monitor timeout on the real testbed).
            continue;
        };
        data.push(alloc, value * 1000.0); // seconds → ms
    }
    let fit = fit_arx(&data, cfg.na, cfg.nb)?;
    Ok(fit.model)
}

/// A response-time controller bound to one application.
#[derive(Debug, Clone)]
pub struct ResponseTimeController {
    mpc: MpcController,
    period_s: f64,
    /// The SLA statistic this controller regulates (default: p90).
    metric: SlaMetric,
    /// Most recent measured 90-percentile response time (ms).
    last_measurement_ms: Option<f64>,
    /// EWMA-filtered measurement fed to the MPC. Per-period p90 estimates
    /// over ~100 requests are heavy-tailed; light filtering keeps the
    /// controller from chasing sampling noise.
    filtered_ms: Option<f64>,
    /// Sensor-dropout safe mode: the monitor is down, the allocation is
    /// frozen at its last-good value, and the reference band is widened
    /// for re-entry. Cleared by the first clean sample.
    safe_mode: bool,
}

/// EWMA weight of the newest p90 sample.
const MEASUREMENT_EWMA_ALPHA: f64 = 0.5;

impl ResponseTimeController {
    /// Build a controller from an identified model.
    ///
    /// `setpoint_ms` is the SLA target; `c0` the initial per-tier
    /// allocation (GHz).
    pub fn new(
        model: ArxModel,
        setpoint_ms: f64,
        period_s: f64,
        c0: &[f64],
    ) -> Result<ResponseTimeController> {
        if setpoint_ms <= 0.0 {
            return Err(CoreError::BadConfig(format!(
                "setpoint {setpoint_ms} ms must be positive"
            )));
        }
        let n = model.n_inputs();
        let reference = ReferenceTrajectory::new(period_s, REFERENCE_TC_PERIODS * period_s)
            .map_err(CoreError::Control)?;
        let cfg = MpcConfig {
            prediction_horizon: 10,
            control_horizon: 3,
            q_weight: 1.0,
            // The tracking error is in ms² (~1e4–1e5 per period near the
            // set point), so the move penalty must be of comparable scale
            // to damp noise-chasing: 0.3 GHz moves cost ~0.09 · 4e4 ≈ 4e3.
            r_weight: vec![4.0e4; n],
            reference,
            setpoint: setpoint_ms,
            // Stay inside the identified operating region: far below the
            // PRBS low level the linearized gains are badly wrong.
            c_min: vec![0.3; n],
            c_max: vec![3.0; n],
            delta_max: Some(0.3),
            terminal_constraint: true,
        };
        let mpc = MpcController::new(model, cfg, c0)?;
        Ok(ResponseTimeController {
            mpc,
            period_s,
            metric: SlaMetric::P90,
            last_measurement_ms: None,
            filtered_ms: None,
            safe_mode: false,
        })
    }

    /// Change the regulated SLA statistic (§III: "can be extended to
    /// control other SLAs such as average or maximum response times").
    /// Use the same metric the model was identified with.
    pub fn set_metric(&mut self, metric: SlaMetric) {
        self.metric = metric;
    }

    /// Attach a telemetry sink to the underlying MPC (phase-split timings
    /// and solver-fallback counters; see [`MpcController::set_telemetry`]).
    pub fn set_telemetry(&mut self, telemetry: vdc_telemetry::Telemetry) {
        self.mpc.set_telemetry(telemetry);
    }

    /// The regulated SLA statistic.
    pub fn metric(&self) -> SlaMetric {
        self.metric
    }

    /// Override the per-tier allocation bounds (GHz). The edit happens in
    /// place: controller state resets as a rebuild would, but the MPC's
    /// cached step-response matrix survives (it depends only on the model
    /// and horizons). Invalid bounds (non-finite, inverted, or infeasible
    /// against the rate limit) are rejected: the error is returned, a
    /// `control.bad_bounds` telemetry counter ticks, and the previous
    /// bounds stay in force.
    pub fn set_bounds(&mut self, c_min: f64, c_max: f64) -> Result<()> {
        let n = self.mpc.model().n_inputs();
        self.mpc
            .set_allocation_bounds(vec![c_min; n], vec![c_max; n])
            .map_err(|e| {
                self.mpc.telemetry().incr("control.bad_bounds", 1);
                CoreError::Control(e)
            })
    }

    /// Control period (seconds).
    pub fn period_s(&self) -> f64 {
        self.period_s
    }

    /// Change the set point (ms) at run time.
    pub fn set_setpoint(&mut self, setpoint_ms: f64) {
        self.mpc.set_setpoint(setpoint_ms);
    }

    /// Current set point (ms).
    pub fn setpoint(&self) -> f64 {
        self.mpc.config().setpoint
    }

    /// Currently applied allocation (GHz per tier).
    pub fn allocation(&self) -> &[f64] {
        self.mpc.current_allocation()
    }

    /// Most recent measurement fed to the controller (ms).
    pub fn last_measurement_ms(&self) -> Option<f64> {
        self.last_measurement_ms
    }

    /// Whether the controller is holding in sensor-dropout safe mode.
    pub fn in_safe_mode(&self) -> bool {
        self.safe_mode
    }

    /// Run one control period with the response-time sensor *down*: the
    /// plant advances under the frozen last-good allocation, completions
    /// drain unseen (the monitor that would time them is the thing that
    /// failed), and no MPC step runs — stepping on a fabricated number
    /// would chase noise that isn't there. The first masked period enters
    /// safe mode: the EWMA filter resets (pre-outage dynamics are stale)
    /// and the reference band widens so re-entry is gentle. Returns
    /// `Ok(None)` always — a masked sample is *absent*, never `0.0`.
    pub fn control_period_masked<P: Plant + ?Sized>(
        &mut self,
        plant: &mut P,
    ) -> Result<Option<f64>> {
        plant.set_allocations(self.allocation())?;
        plant.run_for(self.period_s);
        let _ = plant.take_completed();
        if !self.safe_mode {
            self.safe_mode = true;
            if let Ok(wide) = ReferenceTrajectory::new(
                self.period_s,
                SAFE_MODE_REFERENCE_SCALE * REFERENCE_TC_PERIODS * self.period_s,
            ) {
                self.mpc.set_reference(wide);
            }
        }
        self.last_measurement_ms = None;
        self.filtered_ms = None;
        Ok(None)
    }

    /// Run one control period against the plant: simulate `period_s`
    /// seconds, measure the 90-percentile response time, and compute and
    /// apply the next allocation. Returns the measurement (ms) if any
    /// requests completed.
    pub fn control_period<P: Plant + ?Sized>(&mut self, plant: &mut P) -> Result<Option<f64>> {
        plant.set_allocations(self.allocation())?;
        plant.run_for(self.period_s);
        let stats = ResponseStats::from_samples(plant.take_completed());
        if stats.is_empty() {
            // No completions (severely starved): push allocations up by the
            // rate limit to recover, as a watchdog would.
            let bumped: Vec<f64> = self
                .allocation()
                .iter()
                .map(|&c| (c + 0.2).min(self.mpc.config().c_max[0]))
                .collect();
            let t_guess = self.setpoint() * 4.0;
            let _ = self.mpc.step(t_guess)?;
            // Overwrite the MPC's move with the watchdog bump if larger.
            let current = self.mpc.current_allocation().to_vec();
            let merged: Vec<f64> = current
                .iter()
                .zip(&bumped)
                .map(|(&a, &b)| a.max(b))
                .collect();
            self.force_allocation(&merged);
            self.last_measurement_ms = None;
            return Ok(None);
        }
        let t_ms = self
            .metric
            .evaluate(&stats)
            .expect("non-empty stats evaluate for every metric")
            * 1000.0;
        self.last_measurement_ms = Some(t_ms);
        let filtered = match self.filtered_ms {
            Some(prev) => MEASUREMENT_EWMA_ALPHA * t_ms + (1.0 - MEASUREMENT_EWMA_ALPHA) * prev,
            None => t_ms,
        };
        self.filtered_ms = Some(filtered);
        let _step = self.mpc.step(filtered)?;
        if self.safe_mode {
            // First clean sample after a sensor outage: the step above ran
            // against the widened band; restore the nominal reference and
            // re-enter normal closed-loop operation.
            self.safe_mode = false;
            if let Ok(nominal) =
                ReferenceTrajectory::new(self.period_s, REFERENCE_TC_PERIODS * self.period_s)
            {
                self.mpc.set_reference(nominal);
            }
        }
        Ok(Some(t_ms))
    }

    /// Total CPU demand across tiers (GHz) — what the server-level
    /// arbitrators aggregate.
    pub fn total_demand_ghz(&self) -> f64 {
        self.allocation().iter().sum()
    }

    fn force_allocation(&mut self, alloc: &[f64]) {
        // Reset the MPC state at the forced allocation, keeping the model,
        // config, and cached predictor; histories reset, which is
        // acceptable after a starvation event (the old dynamics are stale
        // anyway).
        let _ = self.mpc.force_allocation(alloc);
    }

    /// Mutable access to the wrapped MPC, for variant controllers (the
    /// cooling-coupled wrapper sets its energy weight and PUE multiplier
    /// here) without widening the public surface.
    pub(crate) fn mpc_mut(&mut self) -> &mut MpcController {
        &mut self.mpc
    }

    /// Shared access to the wrapped MPC (see [`Self::mpc_mut`]).
    pub(crate) fn mpc(&self) -> &MpcController {
        &self.mpc
    }
}

// The sharded co-sim ships each application's controller to a scoped
// worker thread (`crate::shard::map_slice_mut`), so the controller must
// stay `Send` — enforced here at compile time rather than discovered as a
// cryptic trait error at the spawn site if someone adds an `Rc`/`RefCell`.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<ResponseTimeController>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use vdc_apptier::{AppSim, WorkloadProfile};

    fn plant(concurrency: usize, seed: u64) -> AppSim {
        AppSim::new(WorkloadProfile::rubbos(), concurrency, &[1.0, 1.0], seed).unwrap()
    }

    fn quick_ident_cfg() -> IdentificationConfig {
        IdentificationConfig {
            periods: 150,
            ..Default::default()
        }
    }

    #[test]
    fn identification_produces_sensible_model() {
        let mut p = plant(40, 1);
        let model = identify_plant(&mut p, &quick_ident_cfg(), 11).unwrap();
        assert_eq!(model.n_inputs(), 2);
        assert_eq!(model.na(), 1);
        assert_eq!(model.nb(), 2);
        // More CPU must lower response time: negative DC gains.
        for ch in 0..2 {
            let g = model.dc_gain(ch).expect("non-integrating model");
            assert!(g < 0.0, "channel {ch} gain {g} should be negative");
        }
        // Stable AR part.
        assert!(model.a()[0].abs() < 1.0, "a = {:?}", model.a());
    }

    #[test]
    fn controller_converges_to_setpoint_on_real_plant() {
        let mut ident = plant(40, 2);
        let model = identify_plant(&mut ident, &quick_ident_cfg(), 22).unwrap();
        let mut ctrl = ResponseTimeController::new(model, 1000.0, 4.0, &[1.0, 1.0]).unwrap();
        let mut run = plant(40, 3);
        let mut tail = Vec::new();
        for k in 0..120 {
            if let Some(t) = ctrl.control_period(&mut run).unwrap() {
                if k >= 80 {
                    tail.push(t);
                }
            }
        }
        assert!(tail.len() > 20, "controller starved the plant");
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - 1000.0).abs() < 150.0,
            "steady-state p90 {mean} ms should track the 1000 ms set point"
        );
    }

    #[test]
    fn controller_validates_setpoint() {
        let model = ArxModel::new(vec![0.4], vec![vec![-100.0, -80.0]], 1200.0).unwrap();
        assert!(ResponseTimeController::new(model, 0.0, 4.0, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn setpoint_change_applies() {
        let model = ArxModel::new(vec![0.4], vec![vec![-100.0, -80.0]], 1200.0).unwrap();
        let mut c = ResponseTimeController::new(model, 1000.0, 4.0, &[1.0, 1.0]).unwrap();
        assert_eq!(c.setpoint(), 1000.0);
        c.set_setpoint(700.0);
        assert_eq!(c.setpoint(), 700.0);
        assert_eq!(c.period_s(), 4.0);
        assert!((c.total_demand_ghz() - 2.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod metric_tests {
    use super::*;
    use vdc_apptier::{AppSim, WorkloadProfile};

    /// §III extension: control the *mean* response time instead of the
    /// 90th percentile. Identification and control must share the metric.
    #[test]
    fn mean_response_time_is_controllable() {
        let ident = IdentificationConfig {
            periods: 140,
            metric: SlaMetric::Mean,
            ..Default::default()
        };
        let mut twin = AppSim::new(WorkloadProfile::rubbos(), 30, &[1.0, 1.0], 41).unwrap();
        let model = identify_plant(&mut twin, &ident, 41).unwrap();
        // Target the mean at 600 ms (mean sits well below the p90).
        let mut ctrl = ResponseTimeController::new(model, 600.0, 4.0, &[1.0, 1.0]).unwrap();
        ctrl.set_metric(SlaMetric::Mean);
        assert_eq!(ctrl.metric(), SlaMetric::Mean);
        let mut plant = AppSim::new(WorkloadProfile::rubbos(), 30, &[1.0, 1.0], 43).unwrap();
        let mut tail = Vec::new();
        for k in 0..110 {
            if let Some(t) = ctrl.control_period(&mut plant).unwrap() {
                if k >= 70 {
                    tail.push(t);
                }
            }
        }
        let mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
        assert!(
            (mean - 600.0).abs() < 120.0,
            "controlled mean {mean:.0} ms vs 600 ms target"
        );
    }

    /// Identification under the mean metric produces lower bias/levels
    /// than under p90 (the mean is below the tail by construction).
    #[test]
    fn metric_choice_shifts_identified_level() {
        let mk = |metric| IdentificationConfig {
            periods: 130,
            metric,
            ..Default::default()
        };
        let mut twin_a = AppSim::new(WorkloadProfile::rubbos(), 30, &[1.0, 1.0], 5).unwrap();
        let m_mean = identify_plant(&mut twin_a, &mk(SlaMetric::Mean), 5).unwrap();
        let mut twin_b = AppSim::new(WorkloadProfile::rubbos(), 30, &[1.0, 1.0], 5).unwrap();
        let m_p90 = identify_plant(&mut twin_b, &mk(SlaMetric::P90), 5).unwrap();
        // Compare steady-state predictions at a common operating point.
        let at = |m: &vdc_control::ArxModel| {
            let denom = 1.0 - m.a().iter().sum::<f64>();
            let num: f64 = m.b().iter().flat_map(|lag| lag.iter()).sum::<f64>();
            (m.bias() + num * 1.0) / denom
        };
        assert!(
            at(&m_mean) < at(&m_p90),
            "mean level {:.0} must sit below p90 level {:.0}",
            at(&m_mean),
            at(&m_p90)
        );
    }
}
