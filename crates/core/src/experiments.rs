//! Experiment runners — one per figure of the paper's evaluation (§VII).
//!
//! Each runner returns plain data; the `vdc-bench` figure binaries print
//! the same rows/series the paper plots, and EXPERIMENTS.md records the
//! paper-vs-measured comparison.

use crate::controller::{identify_plant, IdentificationConfig, ResponseTimeController};
use crate::largescale::{run_large_scale, LargeScaleConfig, LargeScaleResult, OptimizerKind};
use crate::run::RunOptions;
use crate::testbed::{Testbed, TestbedConfig};
use crate::Result;
use vdc_apptier::{AnalyticPlant, AppSim, Plant, WorkloadProfile};
use vdc_control::ArxModel;
use vdc_dcsim::FleetSpec;
use vdc_trace::UtilizationTrace;

/// Mean and standard deviation of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Number of samples.
    pub n: usize,
}

impl MeanStd {
    /// Compute from samples (0/0 for empty input).
    pub fn from_samples(samples: &[f64]) -> MeanStd {
        let n = samples.len();
        if n == 0 {
            return MeanStd {
                mean: 0.0,
                std: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        MeanStd {
            mean,
            std: var.sqrt(),
            n,
        }
    }
}

// ---------------------------------------------------------------- Fig. 2 --

/// Result of the Fig. 2 experiment: response time of all applications under
/// the same set point.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// Set point used (ms).
    pub setpoint_ms: f64,
    /// Per-application mean ± std of the measured p90 (ms).
    pub per_app: Vec<MeanStd>,
}

/// Fig. 2: run the full testbed (power optimizer disabled), discard the
/// warm-up, and report mean ± std of every application's 90-percentile
/// response time.
pub fn fig2(
    cfg: &TestbedConfig,
    warmup_periods: usize,
    measure_periods: usize,
) -> Result<Fig2Result> {
    let mut tb = Testbed::build(cfg)?;
    tb.run(warmup_periods)?;
    let samples = tb.run(measure_periods)?;
    let per_app = (0..cfg.n_apps)
        .map(|a| {
            let vals: Vec<f64> = samples.iter().filter_map(|s| s.response_ms[a]).collect();
            MeanStd::from_samples(&vals)
        })
        .collect();
    Ok(Fig2Result {
        setpoint_ms: cfg.setpoint_ms,
        per_app,
    })
}

// ---------------------------------------------------------------- Fig. 3 --

/// One point of the Fig. 3 time series.
#[derive(Debug, Clone, Copy)]
pub struct Fig3Point {
    /// Time (s).
    pub time_s: f64,
    /// Measured p90 of the surged application (ms), if measured.
    pub response_ms: Option<f64>,
    /// Cluster power (W).
    pub power_w: f64,
}

/// Result of the Fig. 3 experiment.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Index of the surged application.
    pub app: usize,
    /// The time series.
    pub series: Vec<Fig3Point>,
}

/// Fig. 3: typical run with a workload surge. The surged application's
/// concurrency doubles during `[surge_start_s, surge_end_s)`.
pub fn fig3(
    cfg: &TestbedConfig,
    app: usize,
    total_s: f64,
    surge_start_s: f64,
    surge_end_s: f64,
    surge_concurrency: usize,
) -> Result<Fig3Result> {
    let mut tb = Testbed::build(cfg)?;
    let mut series = Vec::new();
    let mut surged = false;
    let mut restored = false;
    while tb.time_s() < total_s {
        if !surged && tb.time_s() >= surge_start_s {
            tb.set_concurrency(app, surge_concurrency);
            surged = true;
        }
        if !restored && tb.time_s() >= surge_end_s {
            tb.set_concurrency(app, cfg.concurrency);
            restored = true;
        }
        let s = tb.step()?;
        series.push(Fig3Point {
            time_s: s.time_s,
            response_ms: s.response_ms[app],
            power_w: s.power_w,
        });
    }
    Ok(Fig3Result { app, series })
}

/// Static-allocation baseline for the Fig. 3 scenario: the same surge
/// schedule with allocations frozen at the pre-surge controller
/// equilibrium. Shows the SLA violation the controller prevents (the role
/// the pMapper baseline plays in the paper's Fig. 3 caption: its
/// performance management cannot reallocate CPU between VMs).
pub fn fig3_static_baseline(
    cfg: &TestbedConfig,
    total_s: f64,
    surge_start_s: f64,
    surge_end_s: f64,
    surge_concurrency: usize,
    frozen_alloc: &[f64],
    seed: u64,
) -> Result<Vec<Fig3Point>> {
    let profile = WorkloadProfile::rubbos();
    let mut plant = AppSim::new(profile, cfg.concurrency, frozen_alloc, seed)?;
    let period = cfg.period_s;
    let mut series = Vec::new();
    let mut time = 0.0;
    let mut surged = false;
    let mut restored = false;
    while time < total_s {
        if !surged && time >= surge_start_s {
            plant.set_concurrency(surge_concurrency);
            surged = true;
        }
        if !restored && time >= surge_end_s {
            plant.set_concurrency(cfg.concurrency);
            restored = true;
        }
        plant.run_for(period);
        time += period;
        let stats = vdc_apptier::monitor::ResponseStats::from_samples(plant.take_completed());
        series.push(Fig3Point {
            time_s: time,
            response_ms: if stats.is_empty() {
                None
            } else {
                Some(stats.p90() * 1000.0)
            },
            power_w: 0.0, // single-app baseline: cluster power not modeled
        });
    }
    Ok(series)
}

// ----------------------------------------------------------- Figs. 4 & 5 --

/// One swept point of Fig. 4 / Fig. 5.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// The swept value (concurrency for Fig. 4, set point for Fig. 5).
    pub x: f64,
    /// Mean ± std of the controlled p90 (ms).
    pub response: MeanStd,
}

/// Which plant backs the single-application sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlantKind {
    /// The exact discrete-event simulator (default; slower, faithful).
    #[default]
    Des,
    /// The instant MVA-backed analytic plant (tuning sweeps, CI).
    Analytic,
}

fn make_plant(
    kind: PlantKind,
    concurrency: usize,
    c0: &[f64],
    seed: u64,
) -> Result<Box<dyn Plant>> {
    let profile = WorkloadProfile::rubbos();
    Ok(match kind {
        PlantKind::Des => Box::new(AppSim::new(profile, concurrency, c0, seed)?),
        PlantKind::Analytic => Box::new(AnalyticPlant::new(profile, concurrency, c0, 0.45, seed)?),
    })
}

/// Identify once (at the given concurrency) and return the shared model —
/// Figs. 4/5 deliberately reuse the model identified at concurrency 40
/// while the actual workload differs.
pub fn identify_reference_model(
    concurrency: usize,
    ident: &IdentificationConfig,
    seed: u64,
) -> Result<ArxModel> {
    let profile = WorkloadProfile::rubbos();
    let n = profile.n_tiers();
    let mut twin = AppSim::new(profile, concurrency, &vec![1.0; n], seed)?;
    identify_plant(&mut twin, ident, seed)
}

/// Run one application under its controller and report tail statistics.
#[allow(clippy::too_many_arguments)]
fn run_single_app(
    model: &ArxModel,
    setpoint_ms: f64,
    concurrency: usize,
    period_s: f64,
    warmup: usize,
    measure: usize,
    seed: u64,
    kind: PlantKind,
) -> Result<MeanStd> {
    let n = model.n_inputs();
    let c0 = vec![1.0; n];
    let mut plant = make_plant(kind, concurrency, &c0, seed)?;
    let mut ctrl = ResponseTimeController::new(model.clone(), setpoint_ms, period_s, &c0)?;
    for _ in 0..warmup {
        ctrl.control_period(plant.as_mut())?;
    }
    let mut vals = Vec::with_capacity(measure);
    for _ in 0..measure {
        if let Some(t) = ctrl.control_period(plant.as_mut())? {
            vals.push(t);
        }
    }
    Ok(MeanStd::from_samples(&vals))
}

/// Fig. 4: response time under concurrency levels different from the one
/// the controller was identified at.
pub fn fig4(
    concurrencies: &[usize],
    setpoint_ms: f64,
    ident: &IdentificationConfig,
    warmup: usize,
    measure: usize,
    seed: u64,
) -> Result<Vec<SweepPoint>> {
    fig4_with_plant(
        concurrencies,
        setpoint_ms,
        ident,
        warmup,
        measure,
        seed,
        PlantKind::Des,
    )
}

/// [`fig4`] with an explicit plant backend (`PlantKind::Analytic` runs the
/// whole sweep in milliseconds).
#[allow(clippy::too_many_arguments)]
pub fn fig4_with_plant(
    concurrencies: &[usize],
    setpoint_ms: f64,
    ident: &IdentificationConfig,
    warmup: usize,
    measure: usize,
    seed: u64,
    kind: PlantKind,
) -> Result<Vec<SweepPoint>> {
    let model = identify_reference_model(40, ident, seed)?;
    concurrencies
        .iter()
        .map(|&c| {
            let r = run_single_app(
                &model,
                setpoint_ms,
                c,
                ident.period_s,
                warmup,
                measure,
                seed.wrapping_add(c as u64),
                kind,
            )?;
            Ok(SweepPoint {
                x: c as f64,
                response: r,
            })
        })
        .collect()
}

/// Fig. 5: response time across set points (600–1300 ms in the paper).
pub fn fig5(
    setpoints_ms: &[f64],
    concurrency: usize,
    ident: &IdentificationConfig,
    warmup: usize,
    measure: usize,
    seed: u64,
) -> Result<Vec<SweepPoint>> {
    fig5_with_plant(
        setpoints_ms,
        concurrency,
        ident,
        warmup,
        measure,
        seed,
        PlantKind::Des,
    )
}

/// [`fig5`] with an explicit plant backend.
#[allow(clippy::too_many_arguments)]
pub fn fig5_with_plant(
    setpoints_ms: &[f64],
    concurrency: usize,
    ident: &IdentificationConfig,
    warmup: usize,
    measure: usize,
    seed: u64,
    kind: PlantKind,
) -> Result<Vec<SweepPoint>> {
    let model = identify_reference_model(40, ident, seed)?;
    setpoints_ms
        .iter()
        .map(|&ts| {
            let r = run_single_app(
                &model,
                ts,
                concurrency,
                ident.period_s,
                warmup,
                measure,
                seed.wrapping_add(ts as u64),
                kind,
            )?;
            Ok(SweepPoint { x: ts, response: r })
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 6 --

/// One Fig. 6 point: both schemes at one data-center size.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Number of VMs in this simulated data center.
    pub n_vms: usize,
    /// IPAC result.
    pub ipac: LargeScaleResult,
    /// pMapper result.
    pub pmapper: LargeScaleResult,
}

impl Fig6Point {
    /// Relative energy saving of IPAC vs pMapper (positive = IPAC better).
    pub fn saving_fraction(&self) -> f64 {
        if self.pmapper.energy_per_vm_wh <= 0.0 {
            return 0.0;
        }
        1.0 - self.ipac.energy_per_vm_wh / self.pmapper.energy_per_vm_wh
    }
}

/// Configuration of the Fig. 6 sweep.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Data-center sizes to sweep (number of VMs per point).
    pub sizes: Vec<usize>,
    /// Shared server-fleet size. `None` applies the paper ratio (3,000
    /// servers for 5,415 VMs) to the largest swept size. Ignored when
    /// `fleet_spec` is set.
    pub fleet: Option<usize>,
    /// Shard count for the across-sizes fan-out (`0` = host parallelism).
    pub shards: usize,
    /// Heterogeneous multi-site fleet shared by every swept size. `None`
    /// keeps the legacy homogeneous-catalog fleet of `fleet` servers.
    pub fleet_spec: Option<FleetSpec>,
}

impl Fig6Config {
    /// Sweep the given sizes with the paper-ratio fleet at host parallelism.
    pub fn new(sizes: impl Into<Vec<usize>>) -> Fig6Config {
        Fig6Config {
            sizes: sizes.into(),
            fleet: None,
            shards: 0,
            fleet_spec: None,
        }
    }
}

/// Fig. 6: energy per VM for IPAC vs pMapper across data-center sizes,
/// parallelized across sizes on the [`crate::shard`] substrate. Each swept
/// size is one shard-map element; results come back in sweep order, so the
/// output is identical for every shard count.
///
/// Every size runs against the **same fixed server fleet** (the paper uses
/// one pool of 3,000 simulated servers for all 54 data centers): small data
/// centers occupy only the most power-efficient machines, large ones are
/// forced onto less efficient types — which is what makes energy-per-VM
/// rise with the VM count in Fig. 6.
pub fn fig6(trace: &UtilizationTrace, cfg: &Fig6Config) -> Result<Vec<Fig6Point>> {
    let fleet = cfg.fleet.unwrap_or_else(|| {
        // Paper ratio: 3,000 servers for 5,415 VMs.
        let max_size = cfg.sizes.iter().copied().max().unwrap_or(1);
        ((max_size as f64 * 3000.0 / 5415.0).ceil() as usize).max(8)
    });
    crate::shard::map_indices(cfg.sizes.len(), cfg.shards, |i| {
        let n_vms = cfg.sizes[i];
        let mut ipac_cfg = LargeScaleConfig::new(n_vms, OptimizerKind::Ipac);
        ipac_cfg.n_servers = Some(fleet);
        ipac_cfg.fleet = cfg.fleet_spec.clone();
        let mut pmap_cfg = LargeScaleConfig::new(n_vms, OptimizerKind::Pmapper);
        pmap_cfg.n_servers = Some(fleet);
        pmap_cfg.fleet = cfg.fleet_spec.clone();
        let opts = RunOptions::default();
        let ipac = run_large_scale(trace, &ipac_cfg, &opts)?;
        let pmapper = run_large_scale(trace, &pmap_cfg, &opts)?;
        Ok(Fig6Point {
            n_vms,
            ipac,
            pmapper,
        })
    })
    .into_iter()
    .collect()
}

/// Ablation (ABL1 in DESIGN.md): IPAC with and without DVFS, plus pMapper,
/// at one size — separates the paper's two claimed saving sources.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Size used.
    pub n_vms: usize,
    /// IPAC with DVFS.
    pub ipac: LargeScaleResult,
    /// IPAC without DVFS.
    pub ipac_no_dvfs: LargeScaleResult,
    /// pMapper.
    pub pmapper: LargeScaleResult,
}

/// Run the DVFS ablation.
pub fn ablation_dvfs(trace: &UtilizationTrace, n_vms: usize) -> Result<AblationResult> {
    let opts = RunOptions::default();
    Ok(AblationResult {
        n_vms,
        ipac: run_large_scale(
            trace,
            &LargeScaleConfig::new(n_vms, OptimizerKind::Ipac),
            &opts,
        )?,
        ipac_no_dvfs: run_large_scale(
            trace,
            &LargeScaleConfig::new(n_vms, OptimizerKind::IpacNoDvfs),
            &opts,
        )?,
        pmapper: run_large_scale(
            trace,
            &LargeScaleConfig::new(n_vms, OptimizerKind::Pmapper),
            &opts,
        )?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdc_trace::{generate_trace, TraceConfig};

    #[test]
    fn mean_std_basics() {
        let m = MeanStd::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(m.mean, 5.0);
        assert_eq!(m.std, 2.0);
        assert_eq!(m.n, 8);
        let empty = MeanStd::from_samples(&[]);
        assert_eq!(empty.n, 0);
    }

    #[test]
    fn fig6_parallel_matches_expectation() {
        let trace = generate_trace(&TraceConfig {
            n_vms: 60,
            n_samples: 48, // half a day keeps the test fast
            interval_s: 900.0,
            seed: 5,
        });
        let points = fig6(&trace, &Fig6Config::new([20, 40, 60])).unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.ipac.energy_per_vm_wh > 0.0);
            assert!(p.pmapper.energy_per_vm_wh > 0.0);
            assert!(
                p.saving_fraction() > 0.0,
                "IPAC should save energy at n = {}: {:?}",
                p.n_vms,
                p.saving_fraction()
            );
        }
    }

    #[test]
    fn fig6_shard_count_does_not_change_results() {
        let trace = generate_trace(&TraceConfig {
            n_vms: 40,
            n_samples: 24,
            interval_s: 900.0,
            seed: 7,
        });
        let sizes = vec![10usize, 25, 40];
        let single = fig6(
            &trace,
            &Fig6Config {
                shards: 1,
                ..Fig6Config::new(sizes.clone())
            },
        )
        .unwrap();
        for shards in [2usize, 8] {
            let sharded = fig6(
                &trace,
                &Fig6Config {
                    shards,
                    ..Fig6Config::new(sizes.clone())
                },
            )
            .unwrap();
            assert_eq!(sharded.len(), single.len());
            for (a, b) in sharded.iter().zip(&single) {
                assert_eq!(a.n_vms, b.n_vms);
                assert_eq!(
                    a.ipac.total_energy_wh.to_bits(),
                    b.ipac.total_energy_wh.to_bits(),
                    "shards={shards} n={}",
                    a.n_vms
                );
                assert_eq!(
                    a.pmapper.total_energy_wh.to_bits(),
                    b.pmapper.total_energy_wh.to_bits()
                );
                assert_eq!(a.ipac.migrations, b.ipac.migrations);
                assert_eq!(a.ipac.final_placements, b.ipac.final_placements);
            }
        }
    }

    #[test]
    fn ablation_orders_sanely() {
        let trace = generate_trace(&TraceConfig {
            n_vms: 40,
            n_samples: 48,
            interval_s: 900.0,
            seed: 6,
        });
        let a = ablation_dvfs(&trace, 40).unwrap();
        assert!(a.ipac.energy_per_vm_wh <= a.ipac_no_dvfs.energy_per_vm_wh);
        assert!(a.ipac.energy_per_vm_wh <= a.pmapper.energy_per_vm_wh);
    }
}
