//! `vdc-core`: the integrated two-level power/performance management
//! runtime of the paper (Fig. 1).
//!
//! * **Application level** ([`controller`]): one response-time controller
//!   per multi-tier application — system identification (PRBS + least
//!   squares) followed by receding-horizon MPC over per-tier CPU
//!   allocations, tracking a 90-percentile response-time set point.
//! * **Server level**: the CPU resource arbitrator from `vdc-dcsim`
//!   aggregates hosted VM demands and throttles each server via DVFS.
//! * **Data-center level** ([`optimizer`]): the power optimizer
//!   (IPAC, or pMapper as baseline) re-maps VMs to servers on a long time
//!   scale and sleeps empty servers.
//!
//! [`cosim`] closes the loop at scale: hundreds of MPC-controlled
//! applications whose workloads follow the trace and whose VM demands come
//! from feedback control, consolidated by IPAC — the complete Fig. 1
//! system end to end.
//!
//! [`testbed`] wires these into the paper's hardware-testbed scenario
//! (4 servers, 8 two-tier RUBBoS-like applications at concurrency 40);
//! [`largescale`] wires the trace-driven 3,000-server simulation of
//! §VII-B. [`experiments`] contains one runner per paper figure.
//!
//! [`tier`] is the pluggable controller seam: the run loops drive every
//! application through the object-safe [`tier::TierController`] trait, and
//! [`tier::ControllerSpec`] selects between the paper MPC (default), the
//! model-free robust provisioning law, and the cooling-coupled MPC.
//!
//! [`shard`] is the deterministic fork–join substrate under [`cosim`] and
//! [`largescale`]: per-element work fans out over scoped threads while
//! every reduction stays a sequential index-order fold, so sharded runs
//! are bit-identical to single-threaded runs at any shard count.

#![warn(missing_docs)]

pub mod churn;
pub mod controller;
pub mod cosim;
pub mod experiments;
pub mod largescale;
pub mod optimizer;
pub mod run;
pub mod shard;
pub mod testbed;
pub mod tier;

pub use churn::{run_churn, ChurnResult};
pub use controller::{IdentificationConfig, ResponseTimeController};
pub use cosim::{run_cosim, CosimConfig, CosimResult};
pub use experiments::Fig6Config;
pub use largescale::{
    run_large_scale, run_large_scale_streaming, LargeScaleConfig, LargeScaleResult, OptimizerKind,
};
pub use optimizer::{pod_partition, OptimizerConfig, PowerOptimizer};
pub use run::RunOptions;
pub use testbed::{Testbed, TestbedConfig};
pub use tier::{
    ControllerSpec, CoolingTierController, RobustTierController, TierController,
    DEFAULT_COOLING_WEIGHT,
};
pub use vdc_faults::{FaultConfig, FaultPlan, FaultSession};

/// Errors from the integrated runtime.
#[derive(Debug)]
pub enum CoreError {
    /// Control-layer failure.
    Control(vdc_control::ControlError),
    /// Plant-layer failure.
    Plant(vdc_apptier::AppTierError),
    /// Data-center-layer failure.
    DataCenter(vdc_dcsim::DcError),
    /// Configuration problem.
    BadConfig(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Control(e) => write!(f, "control error: {e}"),
            CoreError::Plant(e) => write!(f, "plant error: {e}"),
            CoreError::DataCenter(e) => write!(f, "data-center error: {e}"),
            CoreError::BadConfig(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<vdc_control::ControlError> for CoreError {
    fn from(e: vdc_control::ControlError) -> Self {
        CoreError::Control(e)
    }
}

impl From<vdc_apptier::AppTierError> for CoreError {
    fn from(e: vdc_apptier::AppTierError) -> Self {
        CoreError::Plant(e)
    }
}

impl From<vdc_dcsim::DcError> for CoreError {
    fn from(e: vdc_dcsim::DcError) -> Self {
        CoreError::DataCenter(e)
    }
}

/// Result alias for the runtime.
pub type Result<T> = std::result::Result<T, CoreError>;
