//! Property gate for the heterogeneous-fleet layer: every catalog profile's
//! power curve must be monotone in utilization *and* in the DVFS ladder
//! step (more load or more clock never costs less power), and per-site PUE
//! must behave like a pure multiplier on IT power — constant series stay
//! constant, step changes clamp, and sub-unity PUE is rejected everywhere.
//! Failures replay with `VDC_CHECK_SEED`.

use vdc_check::{check, from_fn, prop_assert, Gen, TestRng};
use vdc_dcsim::{DataCenter, FleetSpec, HostCatalog, ProfileId, PueSeries, Server, SiteSpec};

const CASES: u32 = 64;

/// Both shipped catalogs, as (catalog, profile-index) draws.
fn any_profile() -> impl Gen<Value = (HostCatalog, usize)> {
    from_fn(|rng: &mut TestRng| {
        let catalog = if rng.bool() {
            HostCatalog::specpower()
        } else {
            HostCatalog::paper()
        };
        let idx = rng.usize_in(0, catalog.len() - 1);
        (catalog, idx)
    })
}

#[test]
fn profile_power_is_monotone_in_utilization() {
    let gen = from_fn(|rng: &mut TestRng| {
        let (catalog, idx) = any_profile().generate(rng);
        let a = rng.unit_f64();
        let b = rng.unit_f64();
        (catalog, idx, a.min(b), a.max(b))
    });
    check(CASES, &gen, |(catalog, idx, lo, hi)| {
        let profile = catalog
            .get(ProfileId::from_index(*idx))
            .expect("drawn index");
        prop_assert!(
            profile.power_at_util(*lo) <= profile.power_at_util(*hi),
            "{}: P({lo}) > P({hi}) on the linear SPECpower view",
            profile.name
        );
        let model = profile.power_model().expect("catalog profiles validate");
        let f = profile.freq_levels_ghz[idx % profile.freq_levels_ghz.len()];
        let ratio = f / profile.max_freq_ghz;
        prop_assert!(
            model.active_power(ratio, *lo) <= model.active_power(ratio, *hi),
            "{}: active power not monotone in u at f_ratio {ratio}",
            profile.name
        );
        Ok(())
    });
}

#[test]
fn profile_power_is_monotone_in_dvfs_step() {
    let gen = from_fn(|rng: &mut TestRng| {
        let (catalog, idx) = any_profile().generate(rng);
        let u = rng.unit_f64();
        (catalog, idx, u)
    });
    check(CASES, &gen, |(catalog, idx, u)| {
        let profile = catalog
            .get(ProfileId::from_index(*idx))
            .expect("drawn index");
        let model = profile.power_model().expect("catalog profiles validate");
        for pair in profile.freq_levels_ghz.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            prop_assert!(
                model.active_power(lo / profile.max_freq_ghz, *u)
                    <= model.active_power(hi / profile.max_freq_ghz, *u),
                "{}: stepping {lo} -> {hi} GHz at u {u} lowered power",
                profile.name
            );
        }
        Ok(())
    });
}

#[test]
fn constant_pue_series_is_constant_everywhere() {
    let gen = from_fn(|rng: &mut TestRng| (rng.f64_in(1.0, 3.0), rng.usize_in(0, 10_000)));
    check(CASES, &gen, |(pue, t)| {
        let series = PueSeries::constant(*pue).expect("PUE >= 1 is valid");
        prop_assert!(
            series.at(*t).to_bits() == pue.to_bits(),
            "constant series moved at t {t}: {} vs {pue}",
            series.at(*t)
        );
        Ok(())
    });
}

#[test]
fn step_change_pue_series_clamps_to_the_last_value() {
    let gen = from_fn(|rng: &mut TestRng| {
        let before = rng.f64_in(1.0, 2.0);
        let after = rng.f64_in(1.0, 2.0);
        let step_at = rng.usize_in(1, 96);
        (before, after, step_at)
    });
    check(CASES, &gen, |(before, after, step_at)| {
        let mut samples = vec![*before; *step_at];
        samples.push(*after);
        let series = PueSeries::from_samples(samples).expect("valid step series");
        prop_assert!(
            series.at(0).to_bits() == before.to_bits(),
            "pre-step value moved"
        );
        prop_assert!(
            series.at(*step_at).to_bits() == after.to_bits(),
            "step value moved"
        );
        // Clamp: any index past the end holds the post-step value.
        prop_assert!(
            series.at(step_at + 10_000).to_bits() == after.to_bits(),
            "clamp past the end moved"
        );
        Ok(())
    });
}

#[test]
fn sub_unity_and_non_finite_pue_are_rejected_everywhere() {
    let gen = from_fn(|rng: &mut TestRng| rng.f64_in(-1.0, 1.0 - 1e-9));
    check(CASES, &gen, |bad| {
        prop_assert!(
            PueSeries::constant(*bad).is_err(),
            "PueSeries accepted PUE {bad}"
        );
        prop_assert!(
            PueSeries::from_samples(vec![1.2, *bad]).is_err(),
            "PueSeries accepted a {bad} sample"
        );
        let mut dc = DataCenter::new();
        let catalog = HostCatalog::specpower();
        let spec = catalog
            .spec(ProfileId::from_index(0))
            .expect("catalog spec");
        dc.add_server_in_site(Server::active(spec), 0)
            .expect("site 0 always exists");
        prop_assert!(
            dc.set_site_pue(0, *bad).is_err(),
            "set_site_pue accepted PUE {bad}"
        );
        Ok(())
    });
    assert!(PueSeries::constant(f64::NAN).is_err());
    assert!(PueSeries::constant(f64::INFINITY).is_err());
}

/// A random multi-site fleet over one of the shipped catalogs: arbitrary
/// site count, server counts, weighted sub-mixes of the catalog, and PUE
/// series of random length/values — the space a hand-written `--fleet`
/// file lives in.
fn any_fleet() -> impl Gen<Value = FleetSpec> {
    from_fn(|rng: &mut TestRng| {
        let catalog = if rng.bool() {
            HostCatalog::specpower()
        } else {
            HostCatalog::paper()
        };
        let n_sites = rng.usize_in(1, 4);
        let sites = (0..n_sites)
            .map(|i| {
                let n_mix = rng.usize_in(1, catalog.len());
                let mix = (0..n_mix)
                    .map(|_| {
                        (
                            ProfileId::from_index(rng.usize_in(0, catalog.len() - 1)),
                            rng.usize_in(1, 100) as u32,
                        )
                    })
                    .collect();
                let pue = PueSeries::from_samples(
                    (0..rng.usize_in(1, 8))
                        .map(|_| rng.f64_in(1.0, 3.0))
                        .collect(),
                )
                .expect("samples in [1, 3] validate");
                SiteSpec {
                    name: format!("site-{i}"),
                    n_servers: rng.usize_in(0, 500),
                    mix,
                    pue,
                }
            })
            .collect();
        FleetSpec::new(catalog, sites).expect("generated fleets validate")
    })
}

#[test]
fn fleet_spec_json_round_trips_bit_exactly() {
    check(CASES, &any_fleet(), |spec| {
        let doc = spec.to_json();
        let parsed = FleetSpec::from_json_str(&doc);
        prop_assert!(
            parsed.is_ok(),
            "round-trip parse failed: {:?}",
            parsed.err()
        );
        let back = parsed.expect("checked above");
        prop_assert!(
            back == *spec,
            "parsed fleet differs from the original (doc: {doc})"
        );
        // Equality covers every f64 via PartialEq; additionally pin the
        // rendered document itself (shortest-round-trip floats re-render
        // identically).
        prop_assert!(back.to_json() == doc, "re-rendered document drifted");
        Ok(())
    });
}

#[test]
fn facility_power_is_it_power_times_site_pue() {
    let gen = from_fn(|rng: &mut TestRng| {
        let idx = rng.usize_in(0, HostCatalog::specpower().len() - 1);
        let pue = rng.f64_in(1.0, 3.0);
        (idx, pue)
    });
    check(CASES, &gen, |(idx, pue)| {
        let catalog = HostCatalog::specpower();
        let spec = catalog
            .spec(ProfileId::from_index(*idx))
            .expect("catalog spec");
        let mut dc = DataCenter::new();
        let s = dc
            .add_server_in_site(Server::active(spec), 0)
            .expect("add server");
        dc.set_site_pue(0, *pue).expect("PUE >= 1 is valid");
        let it = dc.server_power_watts(s).expect("power");
        let facility = dc.server_facility_power_watts(s).expect("facility power");
        prop_assert!(
            facility.to_bits() == (it * pue).to_bits(),
            "facility {facility} != IT {it} x PUE {pue}"
        );
        Ok(())
    });
}
