//! Property gate for the arena redesign: the handle-addressed `DataCenter`
//! must present exactly the iteration semantics of the `BTreeMap<VmId, _>`
//! state it replaced. For *arbitrary* interleavings of VM registration and
//! removal with arbitrary (colliding, out-of-order) labels,
//! `vm_handles()` must walk the live population in ascending-`VmId` order —
//! the order every label-keyed output (`final_placements`, pack items)
//! inherits. Failures replay with `VDC_CHECK_SEED`.

use vdc_check::{check, from_fn, prop_assert, prop_assert_eq, Gen, TestRng};
use vdc_dcsim::{DataCenter, VmId, VmSpec};

const CASES: u32 = 48;

/// One add/remove script: positive label = register `VmId(label)` (a
/// duplicate registration is expected to be rejected), negative = remove
/// the oldest-registered VM still alive.
#[derive(Debug, Clone)]
struct Script {
    ops: Vec<i64>,
}

fn script() -> impl Gen<Value = Script> {
    from_fn(|rng: &mut TestRng| {
        let n_ops = rng.usize_in(1, 40);
        let ops = (0..n_ops)
            .map(|_| {
                if rng.usize_in(0, 3) == 0 {
                    -1
                } else {
                    // A small label space forces duplicate registrations.
                    rng.u64_in(0, 12) as i64
                }
            })
            .collect();
        Script { ops }
    })
}

#[test]
fn handle_iteration_matches_btreemap_key_order() {
    check(CASES, &script(), |s| {
        let mut dc = DataCenter::new();
        // The reference semantics: the BTreeMap keyed by VmId that the
        // arena replaced.
        let mut reference = std::collections::BTreeMap::new();
        let mut alive_fifo = Vec::new();
        for &op in &s.ops {
            if op >= 0 {
                let id = VmId(op as u64);
                let added = dc.add_vm(VmSpec::new(id.0, 0.5, 256.0));
                prop_assert_eq!(
                    added.is_ok(),
                    !reference.contains_key(&id),
                    "duplicate acceptance diverged for {:?}",
                    id
                );
                if let Ok(handle) = added {
                    reference.insert(id, handle);
                    alive_fifo.push(id);
                }
            } else if !alive_fifo.is_empty() {
                let id = alive_fifo.remove(0);
                let handle = reference.remove(&id).expect("reference tracks live VMs");
                dc.remove_vm(handle).expect("live handle removes cleanly");
            }
        }
        let arena_order: Vec<(VmId, _)> = dc.vm_handles().collect();
        let btree_order: Vec<(VmId, _)> = reference.iter().map(|(&id, &h)| (id, h)).collect();
        prop_assert_eq!(
            &arena_order,
            &btree_order,
            "arena iteration must walk ascending VmId like the old BTreeMap"
        );
        prop_assert_eq!(dc.n_vms(), reference.len(), "live population size");
        let mut prev: Option<VmId> = None;
        for &(id, handle) in &arena_order {
            if let Some(p) = prev {
                prop_assert!(
                    p < id,
                    "order not strictly ascending: {:?} then {:?}",
                    p,
                    id
                );
            }
            prev = Some(id);
            prop_assert_eq!(dc.lookup(id), Some(handle), "lookup({:?})", id);
        }
        Ok(())
    });
}
