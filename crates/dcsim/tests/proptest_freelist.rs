//! Property gate for the slot-recycling free list: under *arbitrary*
//! create/destroy/create interleavings,
//!
//! 1. no stale handle is ever resurrected — every handle minted for a
//!    removed VM keeps failing with `DcError::StaleHandle`, even after its
//!    slot hosts a new tenant under a bumped generation;
//! 2. the arena never grows past its high-water live population (vacant
//!    slots are reused before the arena appends);
//! 3. label-index iteration stays strictly ascending by `VmId` throughout.
//!
//! Failures replay with `VDC_CHECK_SEED`.

use vdc_check::{check, from_fn, prop_assert, prop_assert_eq, Gen, TestRng};
use vdc_dcsim::{DataCenter, DcError, VmId, VmSpec};

const CASES: u32 = 48;

/// One lifecycle script: positive label = register `VmId(label)`, negative
/// = remove a pseudo-randomly chosen live VM (the value picks which).
#[derive(Debug, Clone)]
struct Script {
    ops: Vec<i64>,
}

fn script() -> impl Gen<Value = Script> {
    from_fn(|rng: &mut TestRng| {
        let n_ops = rng.usize_in(1, 60);
        let ops = (0..n_ops)
            .map(|_| {
                // Removal-heavy mix over a small label space: plenty of
                // destroy/create collisions on the same slots.
                if rng.usize_in(0, 2) == 0 {
                    -(rng.u64_in(0, 1 << 20) as i64) - 1
                } else {
                    rng.u64_in(0, 10) as i64
                }
            })
            .collect();
        Script { ops }
    })
}

#[test]
fn free_list_never_resurrects_and_never_grows_past_high_water() {
    check(CASES, &script(), |s| {
        let mut dc = DataCenter::new();
        let mut live = std::collections::BTreeMap::new();
        let mut dead_handles = Vec::new();
        let mut high_water = 0usize;
        for &op in &s.ops {
            if op >= 0 {
                let id = VmId(op as u64);
                if let Ok(handle) = dc.add_vm(VmSpec::new(id.0, 0.5, 256.0)) {
                    // A recycled slot must come back under a strictly
                    // higher generation than any dead handle it had.
                    for dead in dead_handles
                        .iter()
                        .filter(|h: &&vdc_dcsim::VmHandle| h.index() == handle.index())
                    {
                        prop_assert!(
                            handle.generation() > dead.generation(),
                            "slot {} reissued at generation {} <= dead generation {}",
                            handle.index(),
                            handle.generation(),
                            dead.generation()
                        );
                    }
                    live.insert(id, handle);
                    high_water = high_water.max(live.len());
                }
            } else if !live.is_empty() {
                let pick = (-op - 1) as usize % live.len();
                let id = *live.keys().nth(pick).expect("pick in range");
                let handle = live.remove(&id).expect("tracked live VM");
                let spec = dc.remove_vm(handle).expect("live handle removes cleanly");
                prop_assert_eq!(spec.id, id, "removed the VM the handle named");
                dead_handles.push(handle);
            }
            // (2) Arena length never exceeds the high-water live count.
            prop_assert!(
                dc.vm_slots() <= high_water,
                "arena grew to {} slots with high-water population {}",
                dc.vm_slots(),
                high_water
            );
            // (1) Every dead handle stays dead, whatever now occupies its
            // slot.
            for dead in &dead_handles {
                prop_assert_eq!(
                    dc.vm(*dead).unwrap_err(),
                    DcError::StaleHandle(dead.index()),
                    "stale handle {:?} resurrected",
                    dead
                );
                prop_assert_eq!(dc.placement_of(*dead), None);
            }
            // (3) Label iteration stays strictly ascending by VmId and in
            // sync with the reference map.
            let order: Vec<VmId> = dc.vm_handles().map(|(id, _)| id).collect();
            prop_assert!(
                order.windows(2).all(|w| w[0] < w[1]),
                "label iteration not strictly ascending: {:?}",
                order
            );
            let reference: Vec<VmId> = live.keys().copied().collect();
            prop_assert_eq!(&order, &reference, "live set diverged");
            prop_assert_eq!(dc.n_vms(), live.len());
        }
        // Live handles still resolve to their own specs at the end.
        for (&id, &handle) in &live {
            prop_assert_eq!(dc.vm(handle).expect("live handle resolves").id, id);
        }
        Ok(())
    });
}
