//! Property gate for the slot-recycling free list: under *arbitrary*
//! create/destroy/create interleavings,
//!
//! 1. no stale handle is ever resurrected — every handle minted for a
//!    removed VM keeps failing with `DcError::StaleHandle`, even after its
//!    slot hosts a new tenant under a bumped generation;
//! 2. the arena never grows past its high-water live population (vacant
//!    slots are reused before the arena appends);
//! 3. label-index iteration stays strictly ascending by `VmId` throughout.
//!
//! Failures replay with `VDC_CHECK_SEED`.

use vdc_check::{check, from_fn, prop_assert, prop_assert_eq, Gen, TestRng};
use vdc_dcsim::{DataCenter, DcError, Server, ServerHandle, ServerSpec, VmId, VmSpec};

const CASES: u32 = 48;

/// One lifecycle script: positive label = register `VmId(label)`, negative
/// = remove a pseudo-randomly chosen live VM (the value picks which).
#[derive(Debug, Clone)]
struct Script {
    ops: Vec<i64>,
}

fn script() -> impl Gen<Value = Script> {
    from_fn(|rng: &mut TestRng| {
        let n_ops = rng.usize_in(1, 60);
        let ops = (0..n_ops)
            .map(|_| {
                // Removal-heavy mix over a small label space: plenty of
                // destroy/create collisions on the same slots.
                if rng.usize_in(0, 2) == 0 {
                    -(rng.u64_in(0, 1 << 20) as i64) - 1
                } else {
                    rng.u64_in(0, 10) as i64
                }
            })
            .collect();
        Script { ops }
    })
}

#[test]
fn free_list_never_resurrects_and_never_grows_past_high_water() {
    check(CASES, &script(), |s| {
        let mut dc = DataCenter::new();
        let mut live = std::collections::BTreeMap::new();
        let mut dead_handles = Vec::new();
        let mut high_water = 0usize;
        for &op in &s.ops {
            if op >= 0 {
                let id = VmId(op as u64);
                if let Ok(handle) = dc.add_vm(VmSpec::new(id.0, 0.5, 256.0)) {
                    // A recycled slot must come back under a strictly
                    // higher generation than any dead handle it had.
                    for dead in dead_handles
                        .iter()
                        .filter(|h: &&vdc_dcsim::VmHandle| h.index() == handle.index())
                    {
                        prop_assert!(
                            handle.generation() > dead.generation(),
                            "slot {} reissued at generation {} <= dead generation {}",
                            handle.index(),
                            handle.generation(),
                            dead.generation()
                        );
                    }
                    live.insert(id, handle);
                    high_water = high_water.max(live.len());
                }
            } else if !live.is_empty() {
                let pick = (-op - 1) as usize % live.len();
                let id = *live.keys().nth(pick).expect("pick in range");
                let handle = live.remove(&id).expect("tracked live VM");
                let spec = dc.remove_vm(handle).expect("live handle removes cleanly");
                prop_assert_eq!(spec.id, id, "removed the VM the handle named");
                dead_handles.push(handle);
            }
            // (2) Arena length never exceeds the high-water live count.
            prop_assert!(
                dc.vm_slots() <= high_water,
                "arena grew to {} slots with high-water population {}",
                dc.vm_slots(),
                high_water
            );
            // (1) Every dead handle stays dead, whatever now occupies its
            // slot.
            for dead in &dead_handles {
                prop_assert_eq!(
                    dc.vm(*dead).unwrap_err(),
                    DcError::StaleHandle(dead.index()),
                    "stale handle {:?} resurrected",
                    dead
                );
                prop_assert_eq!(dc.placement_of(*dead), None);
            }
            // (3) Label iteration stays strictly ascending by VmId and in
            // sync with the reference map.
            let order: Vec<VmId> = dc.vm_handles().map(|(id, _)| id).collect();
            prop_assert!(
                order.windows(2).all(|w| w[0] < w[1]),
                "label iteration not strictly ascending: {:?}",
                order
            );
            let reference: Vec<VmId> = live.keys().copied().collect();
            prop_assert_eq!(&order, &reference, "live set diverged");
            prop_assert_eq!(dc.n_vms(), live.len());
        }
        // Live handles still resolve to their own specs at the end.
        for (&id, &handle) in &live {
            prop_assert_eq!(dc.vm(handle).expect("live handle resolves").id, id);
        }
        Ok(())
    });
}

/// One op of the migration/churn interleaving script (see
/// `rebalance_migrations_interleaved_with_recycling_stay_consistent`).
#[derive(Debug, Clone)]
enum MixOp {
    /// Register `VmId(label)` and place it on the first host with room.
    Add(u64),
    /// Remove a pseudo-randomly chosen live VM, freeing its slot.
    Remove(u64),
    /// Rebalance-style move: migrate a pseudo-randomly chosen live VM to
    /// the given server (the cross-pod rebalance and drain passes issue
    /// exactly these one-VM moves).
    Migrate(u64, usize),
    /// Replay a dead handle through `migrate_vm` — must fail stale, even
    /// when the slot already hosts a new tenant.
    MigrateStale(u64, usize),
}

#[derive(Debug, Clone)]
struct MixScript {
    ops: Vec<MixOp>,
}

const MIX_SERVERS: usize = 3;

fn mix_script() -> impl Gen<Value = MixScript> {
    from_fn(|rng: &mut TestRng| {
        let n_ops = rng.usize_in(1, 80);
        let ops = (0..n_ops)
            .map(|_| match rng.usize_in(0, 9) {
                0..=3 => MixOp::Add(rng.u64_in(0, 12)),
                4 | 5 => MixOp::Remove(rng.u64_in(0, 1 << 20)),
                6 | 7 => MixOp::Migrate(rng.u64_in(0, 1 << 20), rng.usize_in(0, MIX_SERVERS - 1)),
                _ => MixOp::MigrateStale(rng.u64_in(0, 1 << 20), rng.usize_in(0, MIX_SERVERS - 1)),
            })
            .collect();
        MixScript { ops }
    })
}

/// Rebalance-style migrations interleaved with slot recycling: under
/// arbitrary add/remove/migrate scripts over a memory-tight fleet,
///
/// 1. a committed migration moves exactly the named VM and logs exactly
///    one migration record; a refused one (same host, memory overflow)
///    rolls back to the pre-call placement;
/// 2. dead handles fail `migrate_vm` with `DcError::StaleHandle` forever,
///    even after their slot is recycled for a new tenant — a stale
///    rebalance move can never drag the new occupant anywhere;
/// 3. the hosted lists stay exact: every placed VM appears on exactly one
///    host, unplaced and removed VMs on none, and the arena never grows
///    past its high-water live population.
#[test]
fn rebalance_migrations_interleaved_with_recycling_stay_consistent() {
    check(CASES, &mix_script(), |s| {
        let mut dc = DataCenter::new();
        // Small hosts (4096 MiB) and 1024 MiB VMs: four tenants fill a
        // host, so migrations regularly bounce off the memory constraint
        // and exercise the rollback path.
        let servers: Vec<ServerHandle> = (0..MIX_SERVERS)
            .map(|_| dc.add_server(Server::active(ServerSpec::type_dual_1_5ghz())))
            .collect();
        let mut live = std::collections::BTreeMap::new();
        let mut placed_on: std::collections::BTreeMap<VmId, Option<usize>> =
            std::collections::BTreeMap::new();
        let mut dead_handles: Vec<vdc_dcsim::VmHandle> = Vec::new();
        let mut high_water = 0usize;
        let mut expected_migrations = 0usize;

        for op in &s.ops {
            match *op {
                MixOp::Add(label) => {
                    let id = VmId(label);
                    if let Ok(handle) = dc.add_vm(VmSpec::new(id.0, 0.5, 1024.0)) {
                        for dead in dead_handles.iter().filter(|h| h.index() == handle.index()) {
                            prop_assert!(
                                handle.generation() > dead.generation(),
                                "slot {} reissued at generation {} <= dead generation {}",
                                handle.index(),
                                handle.generation(),
                                dead.generation()
                            );
                        }
                        let mut host = None;
                        for (i, &srv) in servers.iter().enumerate() {
                            if dc.place_vm(handle, srv).is_ok() {
                                host = Some(i);
                                break;
                            }
                        }
                        live.insert(id, handle);
                        placed_on.insert(id, host);
                        high_water = high_water.max(live.len());
                    }
                }
                MixOp::Remove(pick) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = pick as usize % live.len();
                    let id = *live.keys().nth(idx).expect("pick in range");
                    let handle = live.remove(&id).expect("tracked live VM");
                    placed_on.remove(&id);
                    let spec = dc.remove_vm(handle).expect("live handle removes cleanly");
                    prop_assert_eq!(spec.id, id, "removed the VM the handle named");
                    dead_handles.push(handle);
                }
                MixOp::Migrate(pick, target) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = pick as usize % live.len();
                    let id = *live.keys().nth(idx).expect("pick in range");
                    let handle = live[&id];
                    let before = placed_on[&id];
                    match dc.migrate_vm(handle, servers[target]) {
                        Ok(record) => {
                            prop_assert_eq!(record.vm, id, "migrated the VM the handle named");
                            prop_assert_eq!(
                                record.from,
                                before.map(|i| servers[i].index()),
                                "migration record origin"
                            );
                            prop_assert_eq!(
                                record.to,
                                servers[target].index(),
                                "migration record target"
                            );
                            placed_on.insert(id, Some(target));
                            expected_migrations += 1;
                        }
                        Err(_) => {
                            // Unplaced VM, same-host move, or memory
                            // overflow on the target: the placement must
                            // be exactly what it was before the call.
                            prop_assert_eq!(
                                dc.placement_of(handle).map(|s| s.index()),
                                before.map(|i| servers[i].index()),
                                "refused migration did not roll back"
                            );
                        }
                    }
                }
                MixOp::MigrateStale(pick, target) => {
                    if dead_handles.is_empty() {
                        continue;
                    }
                    let dead = dead_handles[pick as usize % dead_handles.len()];
                    prop_assert_eq!(
                        dc.migrate_vm(dead, servers[target]).unwrap_err(),
                        DcError::StaleHandle(dead.index()),
                        "stale handle {:?} accepted a migration",
                        dead
                    );
                }
            }
            prop_assert!(
                dc.vm_slots() <= high_water,
                "arena grew to {} slots with high-water population {}",
                dc.vm_slots(),
                high_water
            );
            prop_assert_eq!(
                dc.migrations().len(),
                expected_migrations,
                "migration log drifted from committed moves"
            );
            // Hosted lists stay exact: placed VMs on exactly their host,
            // nobody else anywhere.
            let mut hosted_seen = std::collections::BTreeMap::new();
            for (i, &srv) in servers.iter().enumerate() {
                for &h in dc.hosted_vms(srv).expect("valid server") {
                    let id = dc.vm(h).expect("hosted handle is live").id;
                    prop_assert!(
                        hosted_seen.insert(id, i).is_none(),
                        "VM {:?} hosted on two servers",
                        id
                    );
                }
            }
            for (&id, &host) in &placed_on {
                prop_assert_eq!(
                    hosted_seen.get(&id).copied(),
                    host,
                    "hosted list diverged for {:?}",
                    id
                );
            }
            prop_assert_eq!(hosted_seen.len(), placed_on.values().flatten().count());
            for dead in &dead_handles {
                prop_assert_eq!(
                    dc.vm(*dead).unwrap_err(),
                    DcError::StaleHandle(dead.index()),
                    "stale handle {:?} resurrected",
                    dead
                );
                prop_assert_eq!(dc.placement_of(*dead), None);
            }
        }
        Ok(())
    });
}

/// One fault-script op over a small placed fleet.
#[derive(Debug, Clone)]
enum FaultOp {
    /// Register `VmId(label)` and place it on the first willing host.
    Add(u64),
    /// Remove a pseudo-randomly chosen live VM (the value picks which).
    Remove(u64),
    /// Crash the given server, evacuating its tenants.
    Crash(usize),
    /// Repair the given server (no-op unless failed).
    Recover(usize),
}

#[derive(Debug, Clone)]
struct FaultScript {
    ops: Vec<FaultOp>,
}

const N_SERVERS: usize = 4;

fn fault_script() -> impl Gen<Value = FaultScript> {
    from_fn(|rng: &mut TestRng| {
        let n_ops = rng.usize_in(1, 80);
        let ops = (0..n_ops)
            .map(|_| match rng.usize_in(0, 9) {
                0..=3 => FaultOp::Add(rng.u64_in(0, 10)),
                4 | 5 => FaultOp::Remove(rng.u64_in(0, 1 << 20)),
                6 | 7 => FaultOp::Crash(rng.usize_in(0, N_SERVERS - 1)),
                _ => FaultOp::Recover(rng.usize_in(0, N_SERVERS - 1)),
            })
            .collect();
        FaultScript { ops }
    })
}

/// Crash/evacuate/recover interleaved with VM churn: under arbitrary fault
/// scripts,
///
/// 1. every evacuation is exactly-once — `fail_server` returns precisely
///    the VMs the model says were hosted there, and each evacuee ends up
///    either re-placed on a healthy host or counted stranded (unplaced),
///    never duplicated and never lost;
/// 2. failed hosts reject placements with `DcError::ServerFailed` until
///    repaired, and repairing makes them placeable again;
/// 3. no stale handle is ever resurrected, and label-index iteration stays
///    strictly ascending, exactly as in the churn-only property above.
#[test]
fn crash_recover_scripts_never_lose_or_duplicate_vms() {
    check(CASES, &fault_script(), |s| {
        let mut dc = DataCenter::new();
        let servers: Vec<ServerHandle> = (0..N_SERVERS)
            .map(|_| dc.add_server(Server::active(ServerSpec::type_quad_3ghz())))
            .collect();
        // Model state: live VMs, where each is placed (None = stranded),
        // and every handle ever invalidated by removal.
        let mut live = std::collections::BTreeMap::new();
        let mut placed_on: std::collections::BTreeMap<VmId, Option<usize>> =
            std::collections::BTreeMap::new();
        let mut failed = [false; N_SERVERS];
        let mut dead_handles: Vec<vdc_dcsim::VmHandle> = Vec::new();

        // Re-place one unplaced VM on the first healthy host with memory
        // room; returns its new host, or None (stranded).
        fn replace(
            dc: &mut DataCenter,
            servers: &[ServerHandle],
            failed: &[bool; N_SERVERS],
            h: vdc_dcsim::VmHandle,
        ) -> Option<usize> {
            for (i, &srv) in servers.iter().enumerate() {
                if failed[i] {
                    continue;
                }
                if dc.place_vm(h, srv).is_ok() {
                    return Some(i);
                }
            }
            None
        }

        for op in &s.ops {
            match *op {
                FaultOp::Add(label) => {
                    let id = VmId(label);
                    if let Ok(handle) = dc.add_vm(VmSpec::new(id.0, 0.5, 1024.0)) {
                        let host = replace(&mut dc, &servers, &failed, handle);
                        live.insert(id, handle);
                        placed_on.insert(id, host);
                    }
                }
                FaultOp::Remove(pick) => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = pick as usize % live.len();
                    let id = *live.keys().nth(idx).expect("pick in range");
                    let handle = live.remove(&id).expect("tracked live VM");
                    placed_on.remove(&id);
                    let spec = dc.remove_vm(handle).expect("live handle removes cleanly");
                    prop_assert_eq!(spec.id, id, "removed the VM the handle named");
                    dead_handles.push(handle);
                }
                FaultOp::Crash(srv) => {
                    let evacuees = dc.fail_server(servers[srv]).expect("valid server handle");
                    // Exactly-once: the evacuee label set is precisely the
                    // model's set of VMs placed on this host (empty when
                    // the host was already failed).
                    let mut got: Vec<VmId> = evacuees
                        .iter()
                        .map(|&h| dc.vm(h).expect("evacuee is live").id)
                        .collect();
                    got.sort();
                    let mut expected: Vec<VmId> = placed_on
                        .iter()
                        .filter(|&(_, &host)| !failed[srv] && host == Some(srv))
                        .map(|(&id, _)| id)
                        .collect();
                    expected.sort();
                    prop_assert_eq!(&got, &expected, "evacuation set mismatch on crash");
                    failed[srv] = true;
                    prop_assert!(dc.is_failed(servers[srv]).expect("valid handle"));
                    // A crashed host rejects new placements outright.
                    if let Some((&id, _)) = live.iter().next() {
                        if placed_on[&id].is_none() {
                            prop_assert_eq!(
                                dc.place_vm(live[&id], servers[srv]).unwrap_err(),
                                DcError::ServerFailed(srv),
                                "failed host accepted a placement"
                            );
                        }
                    }
                    // Each evacuee is re-placed once or counted stranded.
                    for &h in &evacuees {
                        let id = dc.vm(h).expect("evacuee is live").id;
                        let host = replace(&mut dc, &servers, &failed, h);
                        placed_on.insert(id, host);
                    }
                }
                FaultOp::Recover(srv) => {
                    dc.recover_server(servers[srv]).expect("valid handle");
                    prop_assert!(!dc.is_failed(servers[srv]).expect("valid handle"));
                    failed[srv] = false;
                    // The repaired host rejoins the pool: stranded VMs are
                    // retried, in ascending label order, exactly once each.
                    let stranded: Vec<VmId> = placed_on
                        .iter()
                        .filter(|&(_, &host)| host.is_none())
                        .map(|(&id, _)| id)
                        .collect();
                    for id in stranded {
                        let host = replace(&mut dc, &servers, &failed, live[&id]);
                        placed_on.insert(id, host);
                    }
                }
            }
            // Placements agree with the model, and no live VM sits on a
            // failed host.
            for (&id, &handle) in &live {
                let actual = dc.placement_of(handle).map(|s| s.index());
                prop_assert_eq!(actual, placed_on[&id], "placement diverged for {:?}", id);
                if let Some(host) = actual {
                    prop_assert!(!failed[host], "VM {:?} left on failed host {}", id, host);
                }
            }
            // Dead handles stay dead through crash/recover cycles.
            for dead in &dead_handles {
                prop_assert_eq!(
                    dc.vm(*dead).unwrap_err(),
                    DcError::StaleHandle(dead.index()),
                    "stale handle {:?} resurrected",
                    dead
                );
                prop_assert_eq!(dc.placement_of(*dead), None);
            }
            // Label iteration stays strictly ascending and in sync.
            let order: Vec<VmId> = dc.vm_handles().map(|(id, _)| id).collect();
            prop_assert!(
                order.windows(2).all(|w| w[0] < w[1]),
                "label iteration not strictly ascending: {:?}",
                order
            );
            let reference: Vec<VmId> = live.keys().copied().collect();
            prop_assert_eq!(&order, &reference, "live set diverged");
            prop_assert_eq!(dc.n_vms(), live.len());
        }
        Ok(())
    });
}
