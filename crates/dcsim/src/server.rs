//! Server catalog, runtime state, and the CPU resource arbitrator.
//!
//! The arbitrator is the server-level component of Fig. 1: it "collects the
//! CPU resource demand of every VM hosted on the server, … decides what CPU
//! frequency the server should have in order to satisfy the aggregated
//! demands, and then throttles the processor … using DVFS" (§IV).

use crate::power::PowerModel;
use crate::profile::ProfileId;

/// Copyable generation-tagged handle addressing one server slot in the
/// [`crate::DataCenter`] arena.
///
/// Server handles carry the same index + generation shape as
/// [`crate::VmHandle`], and every validity check compares generations.
/// Servers are never removed, so every server slot stays at generation 0
/// and a handle obtained from [`crate::DataCenter::add_server`] stays
/// valid for the lifetime of the data center; an out-of-range (or
/// fabricated non-zero-generation) handle yields
/// [`crate::DcError::UnknownServer`] at the use site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerHandle {
    index: usize,
    generation: u32,
}

impl ServerHandle {
    /// Handle for a server slot index. Intended for fan-out loops that
    /// enumerate servers (`0..n_servers`) and for converting the raw
    /// indices carried by consolidation plans back into handles.
    pub fn from_index(slot: usize) -> ServerHandle {
        ServerHandle {
            index: slot,
            generation: 0,
        }
    }

    /// The arena slot this handle addresses.
    pub fn index(self) -> usize {
        self.index
    }

    /// The slot generation this handle was issued for — always 0 today,
    /// because servers are never removed from the arena.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "srv#{}", self.index)
    }
}

/// Static description of a server model (the "catalog" entry).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpec {
    /// Human-readable model name.
    pub name: String,
    /// Number of cores.
    pub cores: u32,
    /// Maximum per-core frequency in GHz.
    pub max_freq_ghz: f64,
    /// Discrete DVFS frequency ladder (GHz, ascending, last == max).
    pub freq_levels_ghz: Vec<f64>,
    /// Installed memory in MiB.
    pub memory_mib: f64,
    /// Power model.
    pub power: PowerModel,
    /// Seconds to wake from sleep (S3 resume + readiness).
    pub wake_latency_s: f64,
    /// The catalog profile this spec was stamped from, when the server
    /// came out of a [`crate::HostCatalog`]; `None` for ad-hoc specs (the
    /// legacy §VI-B constructors below).
    pub profile: Option<ProfileId>,
}

impl ServerSpec {
    /// Total CPU capacity at maximum frequency (GHz·cores) — the paper's
    /// notion of a server's CPU resource.
    pub fn max_capacity_ghz(&self) -> f64 {
        self.max_freq_ghz * self.cores as f64
    }

    /// Capacity at a given per-core frequency.
    pub fn capacity_at(&self, freq_ghz: f64) -> f64 {
        freq_ghz * self.cores as f64
    }

    /// Power efficiency: "the ratio between the maximum CPU frequency and
    /// maximum power consumption" (§V), using total capacity. GHz per watt;
    /// higher is better.
    pub fn power_efficiency(&self) -> f64 {
        self.max_capacity_ghz() / self.power.max_watts
    }

    /// The 3 GHz quad-core type of §VI-B. Numbers chosen so that larger
    /// servers are more power-efficient (typical of server generations).
    pub fn type_quad_3ghz() -> ServerSpec {
        ServerSpec {
            name: "quad-3.0GHz".into(),
            cores: 4,
            max_freq_ghz: 3.0,
            freq_levels_ghz: vec![1.0, 1.5, 2.0, 2.5, 3.0],
            memory_mib: 16384.0,
            power: PowerModel::new(15.0, 190.0, 320.0).expect("static catalog model"),
            wake_latency_s: 30.0,
            profile: None,
        }
    }

    /// The 2 GHz dual-core type of §VI-B.
    pub fn type_dual_2ghz() -> ServerSpec {
        ServerSpec {
            name: "dual-2.0GHz".into(),
            cores: 2,
            max_freq_ghz: 2.0,
            freq_levels_ghz: vec![0.8, 1.2, 1.6, 2.0],
            memory_mib: 8192.0,
            power: PowerModel::new(10.0, 110.0, 180.0).expect("static catalog model"),
            wake_latency_s: 25.0,
            profile: None,
        }
    }

    /// The 1.5 GHz dual-core type of §VI-B.
    pub fn type_dual_1_5ghz() -> ServerSpec {
        ServerSpec {
            name: "dual-1.5GHz".into(),
            cores: 2,
            max_freq_ghz: 1.5,
            freq_levels_ghz: vec![0.6, 0.9, 1.2, 1.5],
            memory_mib: 4096.0,
            power: PowerModel::new(8.0, 95.0, 150.0).expect("static catalog model"),
            wake_latency_s: 25.0,
            profile: None,
        }
    }

    /// The full §VI-B catalog, in declaration order.
    pub fn catalog() -> Vec<ServerSpec> {
        vec![
            ServerSpec::type_quad_3ghz(),
            ServerSpec::type_dual_2ghz(),
            ServerSpec::type_dual_1_5ghz(),
        ]
    }
}

/// Runtime power state of a server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServerState {
    /// Active at the given per-core frequency (GHz).
    Active {
        /// Current per-core DVFS frequency (GHz).
        freq_ghz: f64,
    },
    /// Sleeping (suspend-to-RAM).
    Sleeping,
    /// Crashed. A failed host draws no power, offers no capacity, and
    /// cannot be woken or receive placements until
    /// [`crate::DataCenter::recover_server`] returns it to [`Sleeping`].
    Failed,
}

/// A server instance: spec + runtime state.
#[derive(Debug, Clone, PartialEq)]
pub struct Server {
    /// Static description.
    pub spec: ServerSpec,
    /// Current power state.
    pub state: ServerState,
}

impl Server {
    /// A new server, initially sleeping (the large-scale scenario wakes
    /// servers on demand, §VII-B).
    pub fn asleep(spec: ServerSpec) -> Server {
        Server {
            spec,
            state: ServerState::Sleeping,
        }
    }

    /// A new server, active at maximum frequency.
    pub fn active(spec: ServerSpec) -> Server {
        let f = spec.max_freq_ghz;
        Server {
            spec,
            state: ServerState::Active { freq_ghz: f },
        }
    }

    /// Whether the server is active.
    pub fn is_active(&self) -> bool {
        matches!(self.state, ServerState::Active { .. })
    }

    /// Current total capacity (GHz); 0 when sleeping or failed.
    pub fn capacity_ghz(&self) -> f64 {
        match self.state {
            ServerState::Active { freq_ghz } => self.spec.capacity_at(freq_ghz),
            ServerState::Sleeping | ServerState::Failed => 0.0,
        }
    }

    /// Power draw (watts) given the total CPU demand currently hosted
    /// (GHz). Demand above capacity saturates at 100 % utilization.
    pub fn power_watts(&self, demand_ghz: f64) -> f64 {
        match self.state {
            ServerState::Sleeping => self.spec.power.sleep_power(),
            ServerState::Failed => 0.0,
            ServerState::Active { freq_ghz } => {
                let cap = self.spec.capacity_at(freq_ghz);
                let u = if cap > 0.0 { demand_ghz / cap } else { 0.0 };
                self.spec
                    .power
                    .active_power(freq_ghz / self.spec.max_freq_ghz, u)
            }
        }
    }
}

/// The server-level CPU resource arbitrator of §IV.
///
/// `headroom` is the fraction of capacity kept free when choosing the DVFS
/// level (0.0 = run exactly at demand; 0.1 = keep 10 % slack so transient
/// demand spikes do not immediately saturate the processor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuArbitrator {
    /// Fractional capacity headroom retained when picking the frequency.
    pub headroom: f64,
}

impl Default for CpuArbitrator {
    fn default() -> Self {
        CpuArbitrator { headroom: 0.05 }
    }
}

impl CpuArbitrator {
    /// Create an arbitrator with the given headroom fraction (clamped to
    /// `[0, 0.9]`).
    pub fn new(headroom: f64) -> CpuArbitrator {
        CpuArbitrator {
            headroom: headroom.clamp(0.0, 0.9),
        }
    }

    /// Pick the lowest DVFS frequency whose capacity covers the aggregate
    /// demand plus headroom; returns the ladder maximum if none suffices.
    pub fn choose_frequency(&self, spec: &ServerSpec, total_demand_ghz: f64) -> f64 {
        let needed = total_demand_ghz / (1.0 - self.headroom);
        for &f in &spec.freq_levels_ghz {
            if spec.capacity_at(f) >= needed {
                return f;
            }
        }
        *spec.freq_levels_ghz.last().unwrap_or(&spec.max_freq_ghz)
    }

    /// Scale VM allocations down proportionally when aggregate demand
    /// exceeds the server's maximum capacity (the overload case the
    /// data-center optimizer later resolves by migration).
    pub fn allocate(&self, spec: &ServerSpec, demands_ghz: &[f64]) -> Vec<f64> {
        let total: f64 = demands_ghz.iter().sum();
        let cap = spec.max_capacity_ghz();
        if total <= cap || total <= 0.0 {
            return demands_ghz.to_vec();
        }
        let scale = cap / total;
        demands_ghz.iter().map(|d| d * scale).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_capacities_match_paper() {
        let cat = ServerSpec::catalog();
        assert_eq!(cat.len(), 3);
        assert_eq!(cat[0].max_capacity_ghz(), 12.0);
        assert_eq!(cat[1].max_capacity_ghz(), 4.0);
        assert_eq!(cat[2].max_capacity_ghz(), 3.0);
        for s in &cat {
            assert_eq!(*s.freq_levels_ghz.last().unwrap(), s.max_freq_ghz);
            let mut sorted = s.freq_levels_ghz.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(sorted, s.freq_levels_ghz, "ladder must ascend");
        }
    }

    #[test]
    fn efficiency_ordering() {
        let cat = ServerSpec::catalog();
        let eff: Vec<f64> = cat.iter().map(|s| s.power_efficiency()).collect();
        assert!(eff[0] > eff[1] && eff[1] > eff[2], "{eff:?}");
    }

    #[test]
    fn server_states_and_capacity() {
        let spec = ServerSpec::type_dual_2ghz();
        let asleep = Server::asleep(spec.clone());
        assert!(!asleep.is_active());
        assert_eq!(asleep.capacity_ghz(), 0.0);
        let active = Server::active(spec);
        assert!(active.is_active());
        assert_eq!(active.capacity_ghz(), 4.0);
    }

    #[test]
    fn power_reflects_state_and_load() {
        let spec = ServerSpec::type_quad_3ghz();
        let sleeping = Server::asleep(spec.clone());
        assert_eq!(sleeping.power_watts(99.0), 15.0);
        let active = Server::active(spec.clone());
        let idle = active.power_watts(0.0);
        let half = active.power_watts(6.0);
        let full = active.power_watts(12.0);
        let over = active.power_watts(24.0);
        assert_eq!(idle, 190.0);
        assert!(idle < half && half < full);
        assert_eq!(full, 320.0);
        assert_eq!(over, full, "utilization saturates at 1");
        // Throttled server at same absolute demand draws less dynamic power.
        let throttled = Server {
            spec,
            state: ServerState::Active { freq_ghz: 2.0 },
        };
        assert!(throttled.power_watts(6.0) < half);
    }

    #[test]
    fn arbitrator_picks_lowest_sufficient_frequency() {
        let spec = ServerSpec::type_quad_3ghz(); // 4 cores
        let arb = CpuArbitrator::new(0.0);
        // Demand 3.9 GHz needs capacity >= 3.9: 1.0 GHz level gives 4.0.
        assert_eq!(arb.choose_frequency(&spec, 3.9), 1.0);
        // Demand 4.1 needs the 1.5 level (6.0).
        assert_eq!(arb.choose_frequency(&spec, 4.1), 1.5);
        // Demand beyond max returns max.
        assert_eq!(arb.choose_frequency(&spec, 100.0), 3.0);
        // Zero demand: lowest level.
        assert_eq!(arb.choose_frequency(&spec, 0.0), 1.0);
    }

    #[test]
    fn arbitrator_headroom_raises_frequency() {
        let spec = ServerSpec::type_quad_3ghz();
        let tight = CpuArbitrator::new(0.0);
        let slack = CpuArbitrator::new(0.2);
        // 3.9 GHz demand with 20 % headroom needs 4.875 => 1.5 level.
        assert_eq!(tight.choose_frequency(&spec, 3.9), 1.0);
        assert_eq!(slack.choose_frequency(&spec, 3.9), 1.5);
        // Clamping of silly headroom values.
        assert_eq!(CpuArbitrator::new(5.0).headroom, 0.9);
        assert_eq!(CpuArbitrator::new(-1.0).headroom, 0.0);
    }

    #[test]
    fn allocation_scaling_on_overload() {
        let spec = ServerSpec::type_dual_1_5ghz(); // capacity 3.0
        let arb = CpuArbitrator::default();
        let fits = arb.allocate(&spec, &[1.0, 1.5]);
        assert_eq!(fits, vec![1.0, 1.5]);
        let over = arb.allocate(&spec, &[3.0, 3.0]);
        let total: f64 = over.iter().sum();
        assert!((total - 3.0).abs() < 1e-12);
        assert!((over[0] - 1.5).abs() < 1e-12);
        let empty = arb.allocate(&spec, &[0.0, 0.0]);
        assert_eq!(empty, vec![0.0, 0.0]);
    }
}
