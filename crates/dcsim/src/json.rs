//! Minimal hand-rolled JSON emission.
//!
//! The workspace builds with zero external dependencies (no `serde`), so
//! results serialization is done with this tiny writer instead of derive
//! macros: explicit, std-only, and more than enough for the flat records
//! the experiment binaries and the bench harness emit.

use crate::power::PowerModel;
use crate::server::ServerSpec;
use crate::vm::VmSpec;

/// Escape a string for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (non-finite values become `null`,
/// which JSON cannot represent as numbers).
pub fn num(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        // Display for f64 is the shortest decimal that round-trips exactly.
        format!("{x}")
    }
}

/// Builder for a JSON object. Fields appear in insertion order.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Add a numeric field.
    pub fn num(mut self, key: &str, value: f64) -> JsonObject {
        self.fields
            .push(format!("\"{}\":{}", escape(key), num(value)));
        self
    }

    /// Add an integer field (exact, no float formatting).
    pub fn int(mut self, key: &str, value: i64) -> JsonObject {
        self.fields.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> JsonObject {
        self.fields.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Add a pre-rendered JSON value (object, array, …) verbatim.
    pub fn raw(mut self, key: &str, rendered: &str) -> JsonObject {
        self.fields
            .push(format!("\"{}\":{}", escape(key), rendered));
        self
    }

    /// Add an array of numbers.
    pub fn nums(mut self, key: &str, values: &[f64]) -> JsonObject {
        let items: Vec<String> = values.iter().map(|&v| num(v)).collect();
        self.fields
            .push(format!("\"{}\":[{}]", escape(key), items.join(",")));
        self
    }

    /// Render the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Render a slice of pre-rendered JSON values as an array.
pub fn array(rendered: &[String]) -> String {
    format!("[{}]", rendered.join(","))
}

impl PowerModel {
    /// Hand-rolled JSON rendering of the model parameters.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .num("sleep_watts", self.sleep_watts)
            .num("static_watts", self.static_watts)
            .num("max_watts", self.max_watts)
            .build()
    }
}

impl ServerSpec {
    /// Hand-rolled JSON rendering of the catalog entry.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .str("name", &self.name)
            .int("cores", self.cores as i64)
            .num("max_freq_ghz", self.max_freq_ghz)
            .num("memory_mib", self.memory_mib)
            .num("wake_latency_s", self.wake_latency_s)
            .nums("freq_levels_ghz", &self.freq_levels_ghz)
            .raw("power", &self.power.to_json())
            .build()
    }
}

impl VmSpec {
    /// Hand-rolled JSON rendering of the VM descriptor.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .int("id", self.id.0 as i64)
            .num("cpu_demand_ghz", self.cpu_demand_ghz)
            .num("memory_mib", self.memory_mib)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmId;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_render_compactly_and_roundtrip() {
        assert_eq!(num(3.0), "3.0");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        let x = 0.1 + 0.2;
        let rendered = num(x);
        let parsed: f64 = rendered.parse().unwrap();
        assert_eq!(parsed.to_bits(), x.to_bits(), "17-digit round-trip");
    }

    #[test]
    fn object_builder_renders_valid_json() {
        let j = JsonObject::new()
            .str("name", "dual 2 GHz")
            .int("cores", 2)
            .bool("active", true)
            .nums("xs", &[1.0, 2.5])
            .raw("nested", &JsonObject::new().int("k", 1).build())
            .build();
        assert_eq!(
            j,
            "{\"name\":\"dual 2 GHz\",\"cores\":2,\"active\":true,\
             \"xs\":[1.0,2.5],\"nested\":{\"k\":1}}"
        );
    }

    #[test]
    fn spec_serialization_contains_fields() {
        let spec = ServerSpec::type_dual_2ghz();
        let j = spec.to_json();
        assert!(j.contains("\"name\":"));
        assert!(j.contains("\"freq_levels_ghz\":["));
        assert!(j.contains("\"power\":{"));
        let vm = VmSpec::new(7, 1.25, 512.0);
        assert!(vm.to_json().contains("\"id\":7"));
        let _ = VmId(7);
    }

    #[test]
    fn array_joins_items() {
        let items = vec!["1".to_string(), "{\"a\":2}".to_string()];
        assert_eq!(array(&items), "[1,{\"a\":2}]");
    }
}
