//! Minimal hand-rolled JSON emission and parsing.
//!
//! The workspace builds with zero external dependencies (no `serde`), so
//! results serialization is done with this tiny writer instead of derive
//! macros: explicit, std-only, and more than enough for the flat records
//! the experiment binaries and the bench harness emit. The matching
//! reader ([`JsonValue::parse`]) exists so tests and downstream tooling
//! can round-trip those documents without a second dialect.

use crate::power::PowerModel;
use crate::server::ServerSpec;
use crate::vm::VmSpec;

/// Escape a string for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (non-finite values become `null`,
/// which JSON cannot represent as numbers).
pub fn num(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        // Display for f64 is the shortest decimal that round-trips exactly.
        format!("{x}")
    }
}

/// Builder for a JSON object. Fields appear in insertion order.
#[derive(Debug, Default, Clone)]
pub struct JsonObject {
    fields: Vec<String>,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> JsonObject {
        self.fields
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Add a numeric field.
    pub fn num(mut self, key: &str, value: f64) -> JsonObject {
        self.fields
            .push(format!("\"{}\":{}", escape(key), num(value)));
        self
    }

    /// Add an integer field (exact, no float formatting).
    pub fn int(mut self, key: &str, value: i64) -> JsonObject {
        self.fields.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> JsonObject {
        self.fields.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Add a pre-rendered JSON value (object, array, …) verbatim.
    pub fn raw(mut self, key: &str, rendered: &str) -> JsonObject {
        self.fields
            .push(format!("\"{}\":{}", escape(key), rendered));
        self
    }

    /// Add an array of numbers.
    pub fn nums(mut self, key: &str, values: &[f64]) -> JsonObject {
        let items: Vec<String> = values.iter().map(|&v| num(v)).collect();
        self.fields
            .push(format!("\"{}\":[{}]", escape(key), items.join(",")));
        self
    }

    /// Render the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.fields.join(","))
    }
}

/// Render a slice of pre-rendered JSON values as an array.
pub fn array(rendered: &[String]) -> String {
    format!("[{}]", rendered.join(","))
}

/// A parsed JSON value — the reader half of this module's writer.
///
/// Objects keep fields in document order (a `Vec` of pairs, not a map):
/// the writer emits insertion order, and round-trip tests compare it.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also what [`num`] emits for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, fields in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document. Trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Field lookup on an object (first match in document order).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (the input is valid UTF-8).
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape_char()?);
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn escape_char(&mut self) -> Result<char, String> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or("unterminated escape".to_string())?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                // Decode a surrogate pair when one follows.
                let code = if (0xD800..0xDC00).contains(&hi)
                    && self.bytes[self.pos..].starts_with(b"\\u")
                {
                    self.pos += 2;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(format!("unpaired surrogate \\u{hi:04x}\\u{lo:04x}"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                char::from_u32(code).ok_or(format!("bad \\u escape {code:#x}"))?
            }
            other => return Err(format!("bad escape '\\{}'", other as char)),
        })
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("short \\u escape".to_string())?;
        self.pos += 4;
        let s = std::str::from_utf8(digits).map_err(|_| "bad \\u escape".to_string())?;
        u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape {s:?}"))
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {s:?} at byte {start}"))
    }
}

impl PowerModel {
    /// Hand-rolled JSON rendering of the model parameters.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .num("sleep_watts", self.sleep_watts)
            .num("static_watts", self.static_watts)
            .num("max_watts", self.max_watts)
            .build()
    }
}

impl ServerSpec {
    /// Hand-rolled JSON rendering of the catalog entry. The `profile`
    /// field appears only for catalog-stamped specs, so ad-hoc (legacy)
    /// specs render byte-identically to before profiles existed.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new().str("name", &self.name);
        if let Some(p) = self.profile {
            obj = obj.int("profile", p.index() as i64);
        }
        obj.int("cores", self.cores as i64)
            .num("max_freq_ghz", self.max_freq_ghz)
            .num("memory_mib", self.memory_mib)
            .num("wake_latency_s", self.wake_latency_s)
            .nums("freq_levels_ghz", &self.freq_levels_ghz)
            .raw("power", &self.power.to_json())
            .build()
    }
}

impl VmSpec {
    /// Hand-rolled JSON rendering of the VM descriptor.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .int("id", self.id.0 as i64)
            .num("cpu_demand_ghz", self.cpu_demand_ghz)
            .num("memory_mib", self.memory_mib)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::VmId;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_render_compactly_and_roundtrip() {
        assert_eq!(num(3.0), "3.0");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        let x = 0.1 + 0.2;
        let rendered = num(x);
        let parsed: f64 = rendered.parse().unwrap();
        assert_eq!(parsed.to_bits(), x.to_bits(), "17-digit round-trip");
    }

    #[test]
    fn object_builder_renders_valid_json() {
        let j = JsonObject::new()
            .str("name", "dual 2 GHz")
            .int("cores", 2)
            .bool("active", true)
            .nums("xs", &[1.0, 2.5])
            .raw("nested", &JsonObject::new().int("k", 1).build())
            .build();
        assert_eq!(
            j,
            "{\"name\":\"dual 2 GHz\",\"cores\":2,\"active\":true,\
             \"xs\":[1.0,2.5],\"nested\":{\"k\":1}}"
        );
    }

    #[test]
    fn spec_serialization_contains_fields() {
        let spec = ServerSpec::type_dual_2ghz();
        let j = spec.to_json();
        assert!(j.contains("\"name\":"));
        assert!(j.contains("\"freq_levels_ghz\":["));
        assert!(j.contains("\"power\":{"));
        let vm = VmSpec::new(7, 1.25, 512.0);
        assert!(vm.to_json().contains("\"id\":7"));
        let _ = VmId(7);
    }

    #[test]
    fn array_joins_items() {
        let items = vec!["1".to_string(), "{\"a\":2}".to_string()];
        assert_eq!(array(&items), "[1,{\"a\":2}]");
    }

    #[test]
    fn parser_handles_scalars_and_nesting() {
        let v =
            JsonValue::parse(" {\"a\": [1, -2.5e3, true, false, null], \"b\": {\"c\": \"x\"}} ")
                .unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2500.0));
        assert_eq!(a[2], JsonValue::Bool(true));
        assert_eq!(a[3], JsonValue::Bool(false));
        assert_eq!(a[4], JsonValue::Null);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(JsonValue::parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(JsonValue::parse("{}").unwrap(), JsonValue::Object(vec![]));
    }

    #[test]
    fn parser_decodes_string_escapes() {
        let v = JsonValue::parse(r#""a\"b\\c\nd\tAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\tA\u{e9}"));
        // Surrogate-pair escape for U+1F600, next to the literal code point.
        let v = JsonValue::parse(r#""\ud83d\ude00 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600} \u{1F600}"));
        assert!(JsonValue::parse(r#""\ud83dx""#).is_err(), "lone surrogate");
        assert!(JsonValue::parse(r#""\q""#).is_err(), "unknown escape");
        assert!(JsonValue::parse("\"open").is_err(), "unterminated");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,}",
            "1 2",
            "tru",
            "nul",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{1} unicode é\u{1F600}";
        let doc = JsonObject::new().str("s", nasty).build();
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn non_finite_floats_round_trip_as_null() {
        let doc = JsonObject::new()
            .num("nan", f64::NAN)
            .num("inf", f64::INFINITY)
            .num("ninf", f64::NEG_INFINITY)
            .num("ok", 1.5)
            .build();
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("nan"), Some(&JsonValue::Null));
        assert_eq!(v.get("inf"), Some(&JsonValue::Null));
        assert_eq!(v.get("ninf"), Some(&JsonValue::Null));
        assert_eq!(v.get("ok").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn shortest_round_trip_floats_survive_parse_bit_exactly() {
        // Display emits the shortest decimal that round-trips; the parser
        // must land back on the identical bit pattern.
        for x in [
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.2250738585072014e-308,
            6.02214076e23,
            1e15 + 1.0,
        ] {
            let doc = JsonObject::new().num("x", x).build();
            let back = JsonValue::parse(&doc)
                .unwrap()
                .get("x")
                .unwrap()
                .as_f64()
                .unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "lossy round-trip for {x:e}");
        }
    }

    #[test]
    fn writer_documents_parse_back_in_field_order() {
        let doc = ServerSpec::type_dual_2ghz().to_json();
        let v = JsonValue::parse(&doc).unwrap();
        let JsonValue::Object(fields) = &v else {
            panic!("not an object")
        };
        assert_eq!(fields[0].0, "name");
        assert!(v.get("power").unwrap().get("max_watts").is_some());
        assert!(v.get("freq_levels_ghz").unwrap().as_array().is_some());
    }
}
