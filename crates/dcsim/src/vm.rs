//! Virtual-machine descriptors as seen by the consolidation layer.
//!
//! A VM here is characterized by the two resources the paper's optimizer
//! packs: CPU demand (absolute GHz, as determined by the application-level
//! response-time controller — §IV-A's `c_ij`) and memory footprint (the
//! administrator-defined constraint of §VII-B). The `app` tag ties tier VMs
//! back to their application.

/// Opaque VM identifier, unique within a [`crate::DataCenter`].
///
/// This is the *external label* of a VM — the name a trace row, a packing
/// item, or a migration record carries. Runtime state is addressed by
/// [`VmHandle`], the dense arena slot; [`crate::DataCenter::lookup`]
/// translates label to handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub u64);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Copyable handle addressing one VM slot in the [`crate::DataCenter`]
/// arena.
///
/// Handles are stable: a slot index never changes while the VM is
/// registered, and removed slots are never recycled, so a handle is either
/// valid or permanently stale (stale use returns
/// [`crate::DcError::StaleHandle`]). Obtained from
/// [`crate::DataCenter::add_vm`] or [`crate::DataCenter::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmHandle(usize);

impl VmHandle {
    /// Handle for an arena slot index. Intended for fan-out loops that
    /// enumerate slots (`0..arena_len`); an out-of-range or vacant index
    /// yields [`crate::DcError::StaleHandle`] at the use site, never UB.
    pub fn from_index(slot: usize) -> VmHandle {
        VmHandle(slot)
    }

    /// The arena slot this handle addresses.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for VmHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm#{}", self.0)
    }
}

/// Descriptor of one VM.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSpec {
    /// Identifier.
    pub id: VmId,
    /// Current CPU demand in GHz (cycles/second / 1e9). Updated at run time
    /// by the application-level controller or the utilization trace.
    pub cpu_demand_ghz: f64,
    /// Memory footprint in MiB (static; drives migration cost and the
    /// memory packing constraint).
    pub memory_mib: f64,
    /// Application this VM belongs to and its tier index, if any.
    pub app: Option<(u32, u32)>,
}

impl VmSpec {
    /// Construct a standalone VM (no application tag).
    pub fn new(id: u64, cpu_demand_ghz: f64, memory_mib: f64) -> VmSpec {
        VmSpec {
            id: VmId(id),
            cpu_demand_ghz: cpu_demand_ghz.max(0.0),
            memory_mib: memory_mib.max(0.0),
            app: None,
        }
    }

    /// Construct a tier VM of an application.
    pub fn for_app(id: u64, app: u32, tier: u32, cpu_demand_ghz: f64, memory_mib: f64) -> VmSpec {
        VmSpec {
            app: Some((app, tier)),
            ..VmSpec::new(id, cpu_demand_ghz, memory_mib)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps_negatives() {
        let vm = VmSpec::new(1, -0.5, -10.0);
        assert_eq!(vm.cpu_demand_ghz, 0.0);
        assert_eq!(vm.memory_mib, 0.0);
        assert_eq!(vm.app, None);
    }

    #[test]
    fn app_tagging() {
        let vm = VmSpec::for_app(7, 3, 1, 1.2, 2048.0);
        assert_eq!(vm.id, VmId(7));
        assert_eq!(vm.app, Some((3, 1)));
        assert_eq!(format!("{}", vm.id), "vm7");
    }

    #[test]
    fn ids_hash_and_order() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(VmId(1));
        set.insert(VmId(2));
        set.insert(VmId(1));
        assert_eq!(set.len(), 2);
        assert!(VmId(1) < VmId(2));
    }
}
