//! Virtual-machine descriptors as seen by the consolidation layer.
//!
//! A VM here is characterized by the two resources the paper's optimizer
//! packs: CPU demand (absolute GHz, as determined by the application-level
//! response-time controller — §IV-A's `c_ij`) and memory footprint (the
//! administrator-defined constraint of §VII-B). The `app` tag ties tier VMs
//! back to their application.

/// Opaque VM identifier, unique within a [`crate::DataCenter`].
///
/// This is the *external label* of a VM — the name a trace row, a packing
/// item, or a migration record carries. Runtime state is addressed by
/// [`VmHandle`], the dense arena slot; [`crate::DataCenter::lookup`]
/// translates label to handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub u64);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Copyable generation-tagged handle addressing one VM slot in the
/// [`crate::DataCenter`] arena.
///
/// A handle pairs the slot index with the slot's *generation* at the time
/// the handle was issued. Removing a VM bumps its slot's generation and
/// recycles the slot through a free list, so a later arrival may occupy
/// the same index under a higher generation; every validity check compares
/// generations, so an outstanding handle to the removed tenant keeps
/// returning [`crate::DcError::StaleHandle`] instead of silently aliasing
/// the new one. Obtained from [`crate::DataCenter::add_vm`] or
/// [`crate::DataCenter::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmHandle {
    index: usize,
    generation: u32,
}

impl VmHandle {
    /// Handle for an arena slot at a specific generation (what the arena
    /// mints on registration; [`crate::DataCenter::lookup`] returns the
    /// live occupant's handle).
    pub(crate) fn new(index: usize, generation: u32) -> VmHandle {
        VmHandle { index, generation }
    }

    /// Generation-0 handle for an arena slot index. Intended for fan-out
    /// loops that enumerate slots (`0..arena_len`) of a churn-free arena
    /// (no removal ever bumps a generation there); an out-of-range, vacant,
    /// or recycled slot yields [`crate::DcError::StaleHandle`] at the use
    /// site, never UB.
    pub fn from_index(slot: usize) -> VmHandle {
        VmHandle {
            index: slot,
            generation: 0,
        }
    }

    /// The arena slot this handle addresses.
    pub fn index(self) -> usize {
        self.index
    }

    /// The slot generation this handle was issued for (0 until the slot is
    /// first recycled).
    pub fn generation(self) -> u32 {
        self.generation
    }
}

impl std::fmt::Display for VmHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.generation == 0 {
            write!(f, "vm#{}", self.index)
        } else {
            write!(f, "vm#{}g{}", self.index, self.generation)
        }
    }
}

/// Descriptor of one VM.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSpec {
    /// Identifier.
    pub id: VmId,
    /// Current CPU demand in GHz (cycles/second / 1e9). Updated at run time
    /// by the application-level controller or the utilization trace.
    pub cpu_demand_ghz: f64,
    /// Memory footprint in MiB (static; drives migration cost and the
    /// memory packing constraint).
    pub memory_mib: f64,
    /// Application this VM belongs to and its tier index, if any.
    pub app: Option<(u32, u32)>,
}

impl VmSpec {
    /// Construct a standalone VM (no application tag).
    pub fn new(id: u64, cpu_demand_ghz: f64, memory_mib: f64) -> VmSpec {
        VmSpec {
            id: VmId(id),
            cpu_demand_ghz: cpu_demand_ghz.max(0.0),
            memory_mib: memory_mib.max(0.0),
            app: None,
        }
    }

    /// Construct a tier VM of an application.
    pub fn for_app(id: u64, app: u32, tier: u32, cpu_demand_ghz: f64, memory_mib: f64) -> VmSpec {
        VmSpec {
            app: Some((app, tier)),
            ..VmSpec::new(id, cpu_demand_ghz, memory_mib)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps_negatives() {
        let vm = VmSpec::new(1, -0.5, -10.0);
        assert_eq!(vm.cpu_demand_ghz, 0.0);
        assert_eq!(vm.memory_mib, 0.0);
        assert_eq!(vm.app, None);
    }

    #[test]
    fn app_tagging() {
        let vm = VmSpec::for_app(7, 3, 1, 1.2, 2048.0);
        assert_eq!(vm.id, VmId(7));
        assert_eq!(vm.app, Some((3, 1)));
        assert_eq!(format!("{}", vm.id), "vm7");
    }

    #[test]
    fn ids_hash_and_order() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(VmId(1));
        set.insert(VmId(2));
        set.insert(VmId(1));
        assert_eq!(set.len(), 2);
        assert!(VmId(1) < VmId(2));
    }
}
