//! Host hardware profiles: the per-model power/capacity catalog behind
//! heterogeneous fleets.
//!
//! A [`HostProfile`] is one server model — core count, peak and idle power,
//! DVFS ladder, memory — and a [`HostCatalog`] is an ordered set of them
//! addressed by copyable [`ProfileId`] handles. Two catalogs ship in-tree:
//!
//! * [`HostCatalog::paper`] — the three CPU types of the paper's §VI-B,
//!   identical (field for field) to [`ServerSpec::catalog`];
//! * [`HostCatalog::specpower`] — nine SPECpower-style machines with idle
//!   fractions from 12.5 % to 57.6 % of peak, the spread that makes
//!   PAC/IPAC's power-efficiency ordering consequential on mixed fleets.
//!
//! The profile's linear power view `P(u) = idle + (peak − idle)·u` is
//! exactly the workspace [`PowerModel`] evaluated at maximum frequency
//! (`static_watts = idle`, `max_watts = peak`); the DVFS ladder adds the
//! frequency-cubed dynamic scaling on top, per profile.

use crate::power::PowerModel;
use crate::server::ServerSpec;
use crate::{DcError, Result};

/// Copyable handle addressing one profile of a [`HostCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProfileId(usize);

impl ProfileId {
    /// Handle for a catalog position (insertion order, never reshuffled).
    pub fn from_index(slot: usize) -> ProfileId {
        ProfileId(slot)
    }

    /// The catalog position this handle addresses.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for ProfileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "profile#{}", self.0)
    }
}

/// One server model of the catalog: capacity, power curve, and DVFS ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct HostProfile {
    /// Human-readable model name (e.g. `ASUSTeK-RS720-E9`).
    pub name: String,
    /// Number of cores.
    pub cores: u32,
    /// Total power at maximum frequency and 100 % utilization (watts).
    pub peak_power_w: f64,
    /// Idle (static) power when active at maximum frequency (watts).
    pub idle_power_w: f64,
    /// Power when sleeping (suspend-to-RAM), watts.
    pub sleep_watts: f64,
    /// Maximum per-core frequency (GHz).
    pub max_freq_ghz: f64,
    /// Discrete DVFS ladder (GHz, ascending, last == max).
    pub freq_levels_ghz: Vec<f64>,
    /// Installed memory (MiB).
    pub memory_mib: f64,
    /// Seconds to wake from sleep.
    pub wake_latency_s: f64,
}

impl HostProfile {
    /// A SPECpower-style profile: idle power given as a percentage of peak,
    /// 4 GiB of memory per core, sleep at 5 % of peak, 30 s wake latency,
    /// and a four-step DVFS ladder at 40/60/80/100 % of the maximum
    /// frequency.
    pub fn specpower(
        name: &str,
        cores: u32,
        peak_power_w: f64,
        idle_percent: f64,
        max_freq_ghz: f64,
    ) -> HostProfile {
        HostProfile {
            name: name.to_string(),
            cores,
            peak_power_w,
            idle_power_w: peak_power_w * idle_percent / 100.0,
            sleep_watts: peak_power_w * 0.05,
            max_freq_ghz,
            freq_levels_ghz: [0.4, 0.6, 0.8, 1.0]
                .iter()
                .map(|r| r * max_freq_ghz)
                .collect(),
            memory_mib: cores as f64 * 4096.0,
            wake_latency_s: 30.0,
        }
    }

    /// Lossless conversion from a legacy catalog entry; `server_spec`
    /// reproduces the input field for field.
    pub fn from_spec(spec: &ServerSpec) -> HostProfile {
        HostProfile {
            name: spec.name.clone(),
            cores: spec.cores,
            peak_power_w: spec.power.max_watts,
            idle_power_w: spec.power.static_watts,
            sleep_watts: spec.power.sleep_watts,
            max_freq_ghz: spec.max_freq_ghz,
            freq_levels_ghz: spec.freq_levels_ghz.clone(),
            memory_mib: spec.memory_mib,
            wake_latency_s: spec.wake_latency_s,
        }
    }

    /// Idle power as a fraction of peak (the SPECpower "idle %").
    pub fn idle_fraction(&self) -> f64 {
        if self.peak_power_w > 0.0 {
            self.idle_power_w / self.peak_power_w
        } else {
            0.0
        }
    }

    /// Total CPU capacity at maximum frequency (GHz·cores).
    pub fn max_capacity_ghz(&self) -> f64 {
        self.max_freq_ghz * self.cores as f64
    }

    /// Power efficiency (GHz per watt, §V ordering key); higher is better.
    pub fn power_efficiency(&self) -> f64 {
        self.max_capacity_ghz() / self.peak_power_w
    }

    /// The linear idle+dynamic power at utilization `u ∈ [0, 1]` and
    /// maximum frequency: `idle + (peak − idle)·u`.
    pub fn power_at_util(&self, u: f64) -> f64 {
        self.idle_power_w + (self.peak_power_w - self.idle_power_w) * u.clamp(0.0, 1.0)
    }

    /// The validated workspace power model for this profile
    /// (`static_watts = idle`, `max_watts = peak`).
    pub fn power_model(&self) -> Result<PowerModel> {
        PowerModel::new(self.sleep_watts, self.idle_power_w, self.peak_power_w).ok_or_else(|| {
            DcError::Invalid(format!(
                "profile {:?}: power curve must satisfy 0 <= sleep <= idle <= peak",
                self.name
            ))
        })
    }

    /// Materialize the catalog entry as a [`ServerSpec`] carrying the given
    /// profile handle.
    pub fn server_spec(&self, id: ProfileId) -> Result<ServerSpec> {
        Ok(ServerSpec {
            name: self.name.clone(),
            cores: self.cores,
            max_freq_ghz: self.max_freq_ghz,
            freq_levels_ghz: self.freq_levels_ghz.clone(),
            memory_mib: self.memory_mib,
            power: self.power_model()?,
            wake_latency_s: self.wake_latency_s,
            profile: Some(id),
        })
    }
}

/// An ordered, validated set of [`HostProfile`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct HostCatalog {
    profiles: Vec<HostProfile>,
}

impl HostCatalog {
    /// Build a catalog, validating every profile's power curve and ladder.
    pub fn new(profiles: Vec<HostProfile>) -> Result<HostCatalog> {
        if profiles.is_empty() {
            return Err(DcError::Invalid("catalog must not be empty".into()));
        }
        for p in &profiles {
            p.power_model()?;
            if p.cores == 0 || !p.max_freq_ghz.is_finite() || p.max_freq_ghz <= 0.0 {
                return Err(DcError::Invalid(format!(
                    "profile {:?}: cores and max frequency must be positive",
                    p.name
                )));
            }
            let ladder_ok = !p.freq_levels_ghz.is_empty()
                && p.freq_levels_ghz.windows(2).all(|w| w[0] < w[1])
                && *p.freq_levels_ghz.last().unwrap() == p.max_freq_ghz;
            if !ladder_ok {
                return Err(DcError::Invalid(format!(
                    "profile {:?}: DVFS ladder must ascend to the maximum frequency",
                    p.name
                )));
            }
        }
        Ok(HostCatalog { profiles })
    }

    /// The three CPU types of the paper's §VI-B, in the order
    /// [`ServerSpec::catalog`] declares them (quad-3 GHz, dual-2 GHz,
    /// dual-1.5 GHz).
    pub fn paper() -> HostCatalog {
        HostCatalog::new(
            ServerSpec::catalog()
                .iter()
                .map(HostProfile::from_spec)
                .collect(),
        )
        .expect("static catalog validates")
    }

    /// Nine SPECpower-style profiles, idle fractions 12.5 %–57.6 % of peak.
    pub fn specpower() -> HostCatalog {
        HostCatalog::new(vec![
            HostProfile::specpower("HP-DL360-G7-LowPower", 8, 208.0, 27.9, 2.4),
            HostProfile::specpower("Dell-R720-Medium", 16, 345.0, 28.4, 2.2),
            HostProfile::specpower("Cisco-UCS-C240-HighPerf", 24, 476.0, 29.8, 2.6),
            HostProfile::specpower("HPE-DL380-Gen10-Ultra", 32, 634.0, 30.6, 2.8),
            HostProfile::specpower("Acer-Altos-R520", 8, 269.0, 57.6, 2.5),
            HostProfile::specpower("Acer-AR360-F2", 16, 315.0, 22.0, 2.6),
            HostProfile::specpower("ASUSTeK-RS720-E9", 56, 385.0, 12.5, 2.7),
            HostProfile::specpower("ASUSTeK-RS500A", 64, 214.0, 24.0, 2.2),
            HostProfile::specpower("ASUSTeK-RS700A", 128, 430.0, 24.7, 2.25),
        ])
        .expect("static catalog validates")
    }

    /// Number of profiles.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the catalog is empty (never true for a validated catalog).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// All profiles, in handle order.
    pub fn profiles(&self) -> &[HostProfile] {
        &self.profiles
    }

    /// Borrow one profile.
    pub fn get(&self, id: ProfileId) -> Result<&HostProfile> {
        self.profiles
            .get(id.index())
            .ok_or(DcError::Invalid(format!("unknown {id}")))
    }

    /// Find a profile by model name.
    pub fn by_name(&self, name: &str) -> Option<ProfileId> {
        self.profiles
            .iter()
            .position(|p| p.name == name)
            .map(ProfileId::from_index)
    }

    /// Materialize one profile as a handle-carrying [`ServerSpec`].
    pub fn spec(&self, id: ProfileId) -> Result<ServerSpec> {
        self.get(id)?.server_spec(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specpower_catalog_matches_published_numbers() {
        let cat = HostCatalog::specpower();
        assert_eq!(cat.len(), 9);
        let low = cat.get(cat.by_name("ASUSTeK-RS720-E9").unwrap()).unwrap();
        assert!((low.idle_fraction() - 0.125).abs() < 1e-12);
        let high = cat.get(cat.by_name("Acer-Altos-R520").unwrap()).unwrap();
        assert!((high.idle_fraction() - 0.576).abs() < 1e-12);
        for p in cat.profiles() {
            assert!(p.idle_power_w < p.peak_power_w);
            assert!(p.sleep_watts < p.idle_power_w);
            assert_eq!(*p.freq_levels_ghz.last().unwrap(), p.max_freq_ghz);
        }
    }

    #[test]
    fn linear_view_agrees_with_power_model_at_max_frequency() {
        for p in HostCatalog::specpower().profiles() {
            let model = p.power_model().unwrap();
            for u in [0.0, 0.25, 0.5, 1.0] {
                assert_eq!(
                    p.power_at_util(u).to_bits(),
                    model.active_power(1.0, u).to_bits(),
                    "{} at u={u}",
                    p.name
                );
            }
        }
    }

    #[test]
    fn paper_catalog_round_trips_the_legacy_specs() {
        let cat = HostCatalog::paper();
        let legacy = ServerSpec::catalog();
        assert_eq!(cat.len(), legacy.len());
        for (i, want) in legacy.iter().enumerate() {
            let id = ProfileId::from_index(i);
            let got = cat.spec(id).unwrap();
            assert_eq!(got.profile, Some(id));
            assert_eq!(got.name, want.name);
            assert_eq!(got.power, want.power, "{}", want.name);
            assert_eq!(got.freq_levels_ghz, want.freq_levels_ghz);
            assert_eq!(got.memory_mib, want.memory_mib);
            assert_eq!(got.wake_latency_s, want.wake_latency_s);
        }
    }

    #[test]
    fn validation_rejects_bad_curves_and_ladders() {
        let mut inverted = HostProfile::specpower("x", 4, 100.0, 50.0, 2.0);
        inverted.idle_power_w = 200.0; // idle above peak
        assert!(HostCatalog::new(vec![inverted]).is_err());
        let mut flat = HostProfile::specpower("y", 4, 100.0, 50.0, 2.0);
        flat.freq_levels_ghz = vec![2.0, 1.0]; // not ascending
        assert!(HostCatalog::new(vec![flat]).is_err());
        let mut short = HostProfile::specpower("z", 4, 100.0, 50.0, 2.0);
        short.freq_levels_ghz = vec![1.0]; // ladder must end at max
        assert!(HostCatalog::new(vec![short]).is_err());
        assert!(HostCatalog::new(vec![]).is_err());
    }

    #[test]
    fn efficiency_separates_the_asus_and_acer_extremes() {
        let cat = HostCatalog::specpower();
        let best = cat.get(cat.by_name("ASUSTeK-RS700A").unwrap()).unwrap();
        let worst = cat.get(cat.by_name("Acer-Altos-R520").unwrap()).unwrap();
        assert!(best.power_efficiency() > 4.0 * worst.power_efficiency());
    }
}
