//! Fleet specification: multi-site host mixes and per-site PUE series.
//!
//! A [`FleetSpec`] describes *what hardware exists where*: a
//! [`HostCatalog`] plus one [`SiteSpec`] per datacenter site, each with a
//! server count, a weighted profile mix, and a [`PueSeries`] — the
//! facility power-usage-effectiveness trace that multiplies IT power in
//! every exported power figure for that site.
//!
//! `dcsim` stays dependency-free, so profile draws are injected:
//! [`FleetSpec::build_with`] takes a `draw(n) -> usize` closure and the
//! caller supplies its own RNG. [`FleetSpec::paper_default`] encodes the
//! legacy single-site 15/35/50 mix over the paper catalog, and — driven by
//! the same RNG draws the legacy builder used — reproduces the
//! single-template fleet byte for byte.

use crate::datacenter::DataCenter;
use crate::json::{array, JsonObject, JsonValue};
use crate::profile::{HostCatalog, HostProfile, ProfileId};
use crate::server::Server;
use crate::{DcError, Result};

/// A per-site PUE time series, sampled on the trace grid.
///
/// `at(t)` clamps to the last value, so a constant series is one sample
/// and a step change is two-plus. Every value must be finite and ≥ 1.0 —
/// a facility cannot deliver more IT power than it draws.
#[derive(Debug, Clone, PartialEq)]
pub struct PueSeries {
    values: Vec<f64>,
}

impl PueSeries {
    /// A constant PUE (single-sample series).
    pub fn constant(pue: f64) -> Result<PueSeries> {
        PueSeries::from_samples(vec![pue])
    }

    /// A PUE trace on the sample grid; clamps to the last value past the
    /// end. Rejects empty series and any value that is non-finite or
    /// below 1.0.
    pub fn from_samples(values: Vec<f64>) -> Result<PueSeries> {
        if values.is_empty() {
            return Err(DcError::Invalid("PUE series must not be empty".into()));
        }
        for (i, v) in values.iter().enumerate() {
            if !v.is_finite() || *v < 1.0 {
                return Err(DcError::Invalid(format!(
                    "PUE series sample {i} is {v}; every PUE must be finite and >= 1.0"
                )));
            }
        }
        Ok(PueSeries { values })
    }

    /// The PUE at sample index `t` (clamped to the last sample).
    pub fn at(&self, t: usize) -> f64 {
        self.values[t.min(self.values.len() - 1)]
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.values
    }
}

/// One datacenter site: a server count, a weighted profile mix, and the
/// facility PUE series.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSpec {
    /// Site name (used in telemetry gauge names and reports).
    pub name: String,
    /// Number of servers stamped at this site.
    pub n_servers: usize,
    /// Weighted profile mix: `(profile, weight)` pairs; a server's profile
    /// is drawn with probability `weight / Σ weights`.
    pub mix: Vec<(ProfileId, u32)>,
    /// Facility PUE over the run.
    pub pue: PueSeries,
}

impl SiteSpec {
    /// A site with the given mix and a constant PUE.
    pub fn new(
        name: &str,
        n_servers: usize,
        mix: Vec<(ProfileId, u32)>,
        pue: f64,
    ) -> Result<SiteSpec> {
        Ok(SiteSpec {
            name: name.to_string(),
            n_servers,
            mix,
            pue: PueSeries::constant(pue)?,
        })
    }

    /// Map one draw from `0..total_weight` onto a profile by cumulative
    /// weight.
    fn profile_for_draw(&self, draw: usize) -> ProfileId {
        let mut acc = 0usize;
        for (id, w) in &self.mix {
            acc += *w as usize;
            if draw < acc {
                return *id;
            }
        }
        self.mix.last().expect("validated mix is non-empty").0
    }

    fn total_weight(&self) -> usize {
        self.mix.iter().map(|(_, w)| *w as usize).sum()
    }
}

/// A multi-site fleet: the hardware catalog plus per-site specs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// The hardware catalog every site's mix indexes into.
    pub catalog: HostCatalog,
    /// The sites, in index order (site id = position).
    pub sites: Vec<SiteSpec>,
}

impl FleetSpec {
    /// Build a validated fleet spec.
    pub fn new(catalog: HostCatalog, sites: Vec<SiteSpec>) -> Result<FleetSpec> {
        if sites.is_empty() {
            return Err(DcError::Invalid("fleet must have at least one site".into()));
        }
        for site in &sites {
            if site.mix.is_empty() || site.total_weight() == 0 {
                return Err(DcError::Invalid(format!(
                    "site {:?}: profile mix must have positive total weight",
                    site.name
                )));
            }
            for (id, _) in &site.mix {
                catalog.get(*id)?;
            }
        }
        Ok(FleetSpec { catalog, sites })
    }

    /// The legacy single-site fleet: the paper catalog with the 15/35/50
    /// quad-3 GHz / dual-2 GHz / dual-1.5 GHz mix and PUE 1.0. Driven by
    /// the same RNG, [`build_with`](FleetSpec::build_with) reproduces the
    /// pre-fleet template builder draw for draw.
    pub fn paper_default(n_servers: usize) -> FleetSpec {
        let catalog = HostCatalog::paper();
        let mix = vec![
            (ProfileId::from_index(0), 15),
            (ProfileId::from_index(1), 35),
            (ProfileId::from_index(2), 50),
        ];
        let site =
            SiteSpec::new("site0", n_servers, mix, 1.0).expect("constant 1.0 is a valid PUE");
        FleetSpec::new(catalog, vec![site]).expect("static spec validates")
    }

    /// A two-site mixed fleet over the SPECpower catalog: one site biased
    /// to the low-idle-fraction ASUS profiles, one to the older
    /// high-idle boxes, with distinct constant PUEs. The `fig6
    /// --mixed-fleet` sweep runs on this spec.
    pub fn specpower_mixed(n_servers: usize) -> FleetSpec {
        let catalog = HostCatalog::specpower();
        let id = |name: &str| catalog.by_name(name).expect("catalog name");
        let lean = n_servers / 2;
        let legacy = n_servers - lean;
        let sites = vec![
            SiteSpec::new(
                "lean",
                lean,
                vec![
                    (id("ASUSTeK-RS720-E9"), 40),
                    (id("ASUSTeK-RS500A"), 30),
                    (id("ASUSTeK-RS700A"), 30),
                ],
                1.12,
            )
            .expect("valid PUE"),
            SiteSpec::new(
                "legacy",
                legacy,
                vec![
                    (id("HP-DL360-G7-LowPower"), 25),
                    (id("Dell-R720-Medium"), 25),
                    (id("Cisco-UCS-C240-HighPerf"), 15),
                    (id("HPE-DL380-Gen10-Ultra"), 10),
                    (id("Acer-Altos-R520"), 15),
                    (id("Acer-AR360-F2"), 10),
                ],
                1.58,
            )
            .expect("valid PUE"),
        ];
        FleetSpec::new(catalog, sites).expect("static spec validates")
    }

    /// Total servers across all sites.
    pub fn n_servers(&self) -> usize {
        self.sites.iter().map(|s| s.n_servers).sum()
    }

    /// Resolve every server's profile, in (site, server) order, by calling
    /// `draw(total_weight)` once per server — the caller owns the RNG, so
    /// `dcsim` stays dependency-free and the draw sequence is under the
    /// caller's deterministic control. Returns `(site, profile)` pairs in
    /// arena order.
    pub fn assignments_with(
        &self,
        draw: &mut dyn FnMut(usize) -> usize,
    ) -> Vec<(usize, ProfileId)> {
        let mut out = Vec::with_capacity(self.n_servers());
        for (site_idx, site) in self.sites.iter().enumerate() {
            let total = site.total_weight();
            for _ in 0..site.n_servers {
                out.push((site_idx, site.profile_for_draw(draw(total))));
            }
        }
        out
    }

    /// Render the fleet spec as a JSON document (`dcsim::json` dialect),
    /// the file format the `largescale`/`megafleet` bins load via
    /// `--fleet <path>`. Profiles serialize in full (every
    /// [`HostProfile`] field) and site mixes reference them *by name*, so
    /// a spec file is self-contained and survives catalog reordering.
    /// [`FleetSpec::from_json_str`] inverts this losslessly (the f64
    /// writer emits shortest-round-trip decimals).
    pub fn to_json(&self) -> String {
        let profiles: Vec<String> = self
            .catalog
            .profiles()
            .iter()
            .map(|p| {
                JsonObject::new()
                    .str("name", &p.name)
                    .int("cores", p.cores as i64)
                    .num("peak_power_w", p.peak_power_w)
                    .num("idle_power_w", p.idle_power_w)
                    .num("sleep_watts", p.sleep_watts)
                    .num("max_freq_ghz", p.max_freq_ghz)
                    .nums("freq_levels_ghz", &p.freq_levels_ghz)
                    .num("memory_mib", p.memory_mib)
                    .num("wake_latency_s", p.wake_latency_s)
                    .build()
            })
            .collect();
        let sites: Vec<String> = self
            .sites
            .iter()
            .map(|s| {
                let mix: Vec<String> = s
                    .mix
                    .iter()
                    .map(|(id, w)| {
                        let name = &self
                            .catalog
                            .get(*id)
                            .expect("validated mix references the catalog")
                            .name;
                        JsonObject::new()
                            .str("profile", name)
                            .int("weight", *w as i64)
                            .build()
                    })
                    .collect();
                JsonObject::new()
                    .str("name", &s.name)
                    .int("n_servers", s.n_servers as i64)
                    .raw("mix", &array(&mix))
                    .nums("pue", s.pue.samples())
                    .build()
            })
            .collect();
        JsonObject::new()
            .raw("catalog", &array(&profiles))
            .raw("sites", &array(&sites))
            .build()
    }

    /// Parse a fleet spec from its [`FleetSpec::to_json`] document,
    /// re-running every constructor validation (power curves, DVFS
    /// ladders, mix weights, PUE bounds) — a hand-edited file fails with
    /// the same errors the builders raise.
    pub fn from_json_str(text: &str) -> Result<FleetSpec> {
        let bad = |what: &str| DcError::Invalid(format!("fleet spec: {what}"));
        let doc = JsonValue::parse(text).map_err(|e| bad(&format!("invalid JSON: {e}")))?;
        let f64_of = |obj: &JsonValue, key: &str| -> Result<f64> {
            obj.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| bad(&format!("missing number {key:?}")))
        };
        let str_of = |obj: &JsonValue, key: &str| -> Result<String> {
            Ok(obj
                .get(key)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad(&format!("missing string {key:?}")))?
                .to_string())
        };
        let nums_of = |obj: &JsonValue, key: &str| -> Result<Vec<f64>> {
            obj.get(key)
                .and_then(JsonValue::as_array)
                .ok_or_else(|| bad(&format!("missing array {key:?}")))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| bad(&format!("non-numeric entry in {key:?}")))
                })
                .collect()
        };

        let mut profiles = Vec::new();
        for p in doc
            .get("catalog")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("missing array \"catalog\""))?
        {
            profiles.push(HostProfile {
                name: str_of(p, "name")?,
                cores: f64_of(p, "cores")? as u32,
                peak_power_w: f64_of(p, "peak_power_w")?,
                idle_power_w: f64_of(p, "idle_power_w")?,
                sleep_watts: f64_of(p, "sleep_watts")?,
                max_freq_ghz: f64_of(p, "max_freq_ghz")?,
                freq_levels_ghz: nums_of(p, "freq_levels_ghz")?,
                memory_mib: f64_of(p, "memory_mib")?,
                wake_latency_s: f64_of(p, "wake_latency_s")?,
            });
        }
        let catalog = HostCatalog::new(profiles)?;

        let mut sites = Vec::new();
        for s in doc
            .get("sites")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| bad("missing array \"sites\""))?
        {
            let mut mix = Vec::new();
            for m in s
                .get("mix")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| bad("site missing array \"mix\""))?
            {
                let profile = str_of(m, "profile")?;
                let id = catalog
                    .by_name(&profile)
                    .ok_or_else(|| bad(&format!("mix references unknown profile {profile:?}")))?;
                mix.push((id, f64_of(m, "weight")? as u32));
            }
            sites.push(SiteSpec {
                name: str_of(s, "name")?,
                n_servers: f64_of(s, "n_servers")? as usize,
                mix,
                pue: PueSeries::from_samples(nums_of(s, "pue")?)?,
            });
        }
        FleetSpec::new(catalog, sites)
    }

    /// Stamp the fleet into a [`DataCenter`]: every server starts asleep,
    /// tagged with its site, with each site's PUE initialised to the
    /// series' first sample. Returns the site of each server in arena
    /// order.
    pub fn build_with(
        &self,
        dc: &mut DataCenter,
        draw: &mut dyn FnMut(usize) -> usize,
    ) -> Result<Vec<usize>> {
        let assignments = self.assignments_with(draw);
        let mut sites = Vec::with_capacity(assignments.len());
        for (site, profile) in assignments {
            let spec = self.catalog.spec(profile)?;
            dc.add_server_in_site(Server::asleep(spec), site)?;
            sites.push(site);
        }
        for (site_idx, site) in self.sites.iter().enumerate() {
            dc.set_site_pue(site_idx, site.pue.at(0))?;
        }
        Ok(sites)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pue_series_rejects_empty_nonfinite_and_below_one() {
        assert!(PueSeries::from_samples(vec![]).is_err());
        assert!(PueSeries::from_samples(vec![0.97]).is_err());
        assert!(PueSeries::from_samples(vec![f64::NAN]).is_err());
        assert!(PueSeries::from_samples(vec![1.2, f64::INFINITY]).is_err());
        assert!(PueSeries::constant(0.5).is_err());
        assert!(PueSeries::constant(1.0).is_ok());
    }

    #[test]
    fn pue_series_clamps_to_last_sample() {
        let s = PueSeries::from_samples(vec![1.5, 1.2]).unwrap();
        assert_eq!(s.at(0), 1.5);
        assert_eq!(s.at(1), 1.2);
        assert_eq!(s.at(100), 1.2);
        let c = PueSeries::constant(1.3).unwrap();
        assert_eq!(c.at(0), 1.3);
        assert_eq!(c.at(672), 1.3);
    }

    #[test]
    fn paper_default_draw_mapping_matches_the_legacy_thresholds() {
        // Legacy builder: draw in 0..=14 -> catalog[0], 15..=49 ->
        // catalog[1], else catalog[2].
        let spec = FleetSpec::paper_default(1);
        let site = &spec.sites[0];
        assert_eq!(site.total_weight(), 100);
        for d in 0..100 {
            let want = if d <= 14 {
                0
            } else if d <= 49 {
                1
            } else {
                2
            };
            assert_eq!(site.profile_for_draw(d).index(), want, "draw {d}");
        }
    }

    #[test]
    fn assignments_cover_sites_in_order() {
        let spec = FleetSpec::specpower_mixed(10);
        let mut counter = 0usize;
        let mut draw = |n: usize| {
            counter += 1;
            counter % n
        };
        let got = spec.assignments_with(&mut draw);
        assert_eq!(got.len(), 10);
        assert!(got[..5].iter().all(|(site, _)| *site == 0));
        assert!(got[5..].iter().all(|(site, _)| *site == 1));
    }

    #[test]
    fn validation_rejects_bad_mixes() {
        let catalog = HostCatalog::paper();
        let empty_mix = SiteSpec::new("s", 4, vec![], 1.0).unwrap();
        assert!(FleetSpec::new(catalog.clone(), vec![empty_mix]).is_err());
        let zero_weight = SiteSpec::new("s", 4, vec![(ProfileId::from_index(0), 0)], 1.0).unwrap();
        assert!(FleetSpec::new(catalog.clone(), vec![zero_weight]).is_err());
        let unknown_profile =
            SiteSpec::new("s", 4, vec![(ProfileId::from_index(99), 1)], 1.0).unwrap();
        assert!(FleetSpec::new(catalog.clone(), vec![unknown_profile]).is_err());
        assert!(FleetSpec::new(catalog, vec![]).is_err());
    }

    #[test]
    fn json_round_trips_the_shipped_fleets() {
        for spec in [FleetSpec::paper_default(40), FleetSpec::specpower_mixed(13)] {
            let doc = spec.to_json();
            let back = FleetSpec::from_json_str(&doc).unwrap();
            assert_eq!(back, spec);
            // And the document itself is stable under a second round.
            assert_eq!(back.to_json(), doc);
        }
    }

    #[test]
    fn from_json_rejects_malformed_and_invalid_specs() {
        assert!(FleetSpec::from_json_str("not json").is_err());
        assert!(FleetSpec::from_json_str("{}").is_err(), "missing catalog");
        // Structurally valid but semantically bad: PUE below 1.0 fails the
        // same constructor validation the builders run.
        let doc = FleetSpec::paper_default(4)
            .to_json()
            .replace("\"pue\":[1.0]", "\"pue\":[0.5]");
        assert!(FleetSpec::from_json_str(&doc).is_err());
        // Mix referencing a profile the catalog doesn't have.
        let doc = FleetSpec::specpower_mixed(4)
            .to_json()
            .replace("ASUSTeK-RS720-E9\",\"weight\"", "no-such-box\",\"weight\"");
        assert!(FleetSpec::from_json_str(&doc).is_err());
    }

    #[test]
    fn build_with_stamps_sites_and_initial_pue() {
        let spec = FleetSpec::specpower_mixed(6);
        let mut dc = DataCenter::new();
        let mut k = 0usize;
        let sites = spec
            .build_with(&mut dc, &mut |n| {
                k += 7;
                k % n
            })
            .unwrap();
        assert_eq!(sites, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(dc.n_sites(), 2);
        let snap = dc.snapshot();
        for (i, srv) in snap.servers().iter().enumerate() {
            assert!(!srv.is_active(), "servers start asleep");
            assert!(srv.spec.profile.is_some());
            assert_eq!(
                snap.server_site(crate::ServerHandle::from_index(i)),
                sites[i]
            );
        }
        assert_eq!(dc.site_pue(0), 1.12);
        assert_eq!(dc.site_pue(1), 1.58);
    }
}
