//! Server power models.
//!
//! Active power follows the standard decomposition into a static (leakage +
//! platform) part and a dynamic part that scales with utilization and with
//! the cube of the DVFS frequency (dynamic CMOS power ≈ C·V²·f with V
//! roughly proportional to f):
//!
//! ```text
//! P(f, u) = P_static · (0.65 + 0.35 · (f/f_max)³)
//!         + (P_max − P_static) · u · (f / f_max)³
//! ```
//!
//! where `u` is the utilization *at the current frequency*. The static
//! (leakage + platform) part shrinks mildly with frequency because DVFS
//! lowers the supply voltage; the dynamic CMOS part scales with `u·f³`
//! (≈ C·V²·f with V ∝ f). Lowering `f` for a fixed absolute demand raises
//! `u` proportionally, so the net dynamic power scales as `(f/f_max)²` —
//! DVFS saves real power, but far less than sleeping a whole server, which
//! is exactly the trade-off the paper's two-level design exploits (§III).

/// Parametric power model of one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Power when the server sleeps (suspend-to-RAM), watts.
    pub sleep_watts: f64,
    /// Static (leakage + platform) power when active at maximum frequency,
    /// watts; DVFS trims it mildly (see the module formula). This is the
    /// idle floor the paper's consolidation eliminates by putting servers
    /// to sleep.
    pub static_watts: f64,
    /// Total power at maximum frequency and 100 % utilization, watts.
    pub max_watts: f64,
}

impl PowerModel {
    /// Construct a validated model (`0 ≤ sleep ≤ static ≤ max`).
    pub fn new(sleep_watts: f64, static_watts: f64, max_watts: f64) -> Option<PowerModel> {
        let ok = sleep_watts >= 0.0
            && static_watts >= sleep_watts
            && max_watts >= static_watts
            && max_watts.is_finite();
        ok.then_some(PowerModel {
            sleep_watts,
            static_watts,
            max_watts,
        })
    }

    /// Fraction of the static power that remains at the lowest voltage.
    const STATIC_FLOOR: f64 = 0.65;

    /// Active power at relative frequency `f_ratio = f/f_max ∈ (0, 1]` and
    /// utilization `u ∈ \[0, 1\]` (both clamped).
    pub fn active_power(&self, f_ratio: f64, u: f64) -> f64 {
        let f = f_ratio.clamp(0.0, 1.0);
        let u = u.clamp(0.0, 1.0);
        let f3 = f * f * f;
        self.static_watts * (Self::STATIC_FLOOR + (1.0 - Self::STATIC_FLOOR) * f3)
            + (self.max_watts - self.static_watts) * u * f3
    }

    /// Sleep power.
    pub fn sleep_power(&self) -> f64 {
        self.sleep_watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(PowerModel::new(10.0, 100.0, 300.0).is_some());
        assert!(PowerModel::new(-1.0, 100.0, 300.0).is_none());
        assert!(PowerModel::new(50.0, 40.0, 300.0).is_none());
        assert!(PowerModel::new(10.0, 100.0, 90.0).is_none());
        assert!(PowerModel::new(10.0, 100.0, f64::INFINITY).is_none());
    }

    #[test]
    fn endpoints() {
        let p = PowerModel::new(10.0, 100.0, 300.0).unwrap();
        assert_eq!(p.sleep_power(), 10.0);
        assert_eq!(p.active_power(1.0, 0.0), 100.0);
        assert_eq!(p.active_power(1.0, 1.0), 300.0);
    }

    #[test]
    fn dvfs_saves_power_for_fixed_absolute_demand() {
        let p = PowerModel::new(10.0, 100.0, 300.0).unwrap();
        // Fixed demand = 50 % of max capacity. At full frequency u = 0.5;
        // at half frequency u = 1.0.
        let full = p.active_power(1.0, 0.5);
        let half = p.active_power(0.5, 1.0);
        assert!(half < full, "DVFS should save power: {half} vs {full}");
        // But both dominate sleeping.
        assert!(p.sleep_power() < half);
    }

    #[test]
    fn clamping() {
        let p = PowerModel::new(10.0, 100.0, 300.0).unwrap();
        assert_eq!(p.active_power(2.0, 2.0), 300.0);
        // Negative frequency clamps to 0: only the static floor remains.
        assert_eq!(p.active_power(-1.0, 0.5), 65.0);
    }

    #[test]
    fn static_power_shrinks_with_frequency() {
        let p = PowerModel::new(10.0, 100.0, 300.0).unwrap();
        let idle_max = p.active_power(1.0, 0.0);
        let idle_min = p.active_power(0.3, 0.0);
        assert_eq!(idle_max, 100.0);
        assert!(idle_min < idle_max);
        assert!(idle_min >= 65.0, "static floor holds: {idle_min}");
    }

    #[test]
    fn monotone_in_utilization_and_frequency() {
        let p = PowerModel::new(10.0, 120.0, 250.0).unwrap();
        let mut prev = 0.0;
        for i in 0..=10 {
            let u = i as f64 / 10.0;
            let w = p.active_power(1.0, u);
            assert!(w >= prev);
            prev = w;
        }
        prev = 0.0;
        for i in 1..=10 {
            let f = i as f64 / 10.0;
            let w = p.active_power(f, 1.0);
            assert!(w >= prev);
            prev = w;
        }
    }
}
