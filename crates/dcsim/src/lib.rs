//! Virtualized data-center substrate: servers, DVFS, power, VMs, migration.
//!
//! This crate replaces the paper's physical infrastructure (§VI): Xen 3.3
//! hosts with DVFS-capable processors, VM live migration, and server
//! sleep/active states. It provides:
//!
//! * [`power`] — parametric server power models `P(f, u)` with static and
//!   frequency-cubed dynamic components, plus a sleep state;
//! * [`server`] — the server catalog (the three CPU types of §VI-B: 3 GHz
//!   quad-core, 2 GHz dual-core, 1.5 GHz dual-core), DVFS frequency
//!   ladders, runtime server state, and the **CPU resource arbitrator** of
//!   §IV that picks the lowest frequency satisfying aggregate VM demand;
//! * [`vm`] — VM descriptors (CPU demand in GHz, memory) as seen by the
//!   consolidation layer;
//! * [`datacenter`] — placement state, migration mechanics with cost
//!   accounting, sleep/wake transitions, and energy integration;
//! * [`profile`] — the heterogeneous hardware catalog ([`HostProfile`] /
//!   [`HostCatalog`]): per-model core counts, idle/peak power, and DVFS
//!   ladders, seeded with nine SPECpower-style machines;
//! * [`fleet`] — multi-site fleet specs ([`FleetSpec`] / [`SiteSpec`]) with
//!   weighted profile mixes and per-site PUE series ([`PueSeries`]) that
//!   scale IT power to facility power.

#![warn(missing_docs)]

pub mod datacenter;
pub mod fleet;
pub mod json;
pub mod power;
pub mod profile;
pub mod server;
pub mod vm;

pub use datacenter::{DataCenter, DvfsDecision, MigrationRecord, Snapshot};
pub use fleet::{FleetSpec, PueSeries, SiteSpec};
pub use power::PowerModel;
pub use profile::{HostCatalog, HostProfile, ProfileId};
pub use server::{CpuArbitrator, Server, ServerHandle, ServerSpec, ServerState};
pub use vm::{VmHandle, VmId, VmSpec};

/// Errors from data-center operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DcError {
    /// Referenced an unknown VM.
    UnknownVm(u64),
    /// Referenced an unknown server.
    UnknownServer(usize),
    /// Used a [`VmHandle`] whose generation no longer matches its arena
    /// slot (the VM was removed; the slot may since host a new tenant
    /// under a bumped generation) or whose slot is out of range.
    StaleHandle(usize),
    /// VM is already placed / not placed as required.
    BadPlacement(String),
    /// Capacity or configuration violation.
    Invalid(String),
    /// Targeted a server that is in the [`ServerState::Failed`] state
    /// (wake, placement, or DVFS against a crashed host).
    ServerFailed(usize),
    /// A VM evacuated from a failed host could not be re-placed anywhere
    /// (active capacity and the sleeping pool are both exhausted).
    Stranded(u64),
}

impl std::fmt::Display for DcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DcError::UnknownVm(id) => write!(f, "unknown VM {id}"),
            DcError::UnknownServer(id) => write!(f, "unknown server {id}"),
            DcError::StaleHandle(slot) => write!(f, "stale VM handle for slot {slot}"),
            DcError::BadPlacement(s) => write!(f, "bad placement: {s}"),
            DcError::Invalid(s) => write!(f, "invalid: {s}"),
            DcError::ServerFailed(id) => write!(f, "server {id} has failed"),
            DcError::Stranded(id) => write!(f, "VM {id} stranded: no capacity after evacuation"),
        }
    }
}

impl std::error::Error for DcError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, DcError>;
