//! Data-center state: servers, VM placement, migration, energy accounting.
//!
//! This is the bookkeeping substrate under both the testbed scenario (4
//! servers, 8 two-tier applications) and the large-scale simulation (3,000
//! servers hosting up to 5,415 trace-driven VMs). The consolidation
//! algorithms in `vdc-consolidate` compute *plans*; this module executes
//! them (migrations, sleep/wake) and integrates power into energy.

use crate::server::{CpuArbitrator, Server, ServerState};
use crate::vm::{VmId, VmSpec};
use crate::{DcError, Result};
use std::collections::BTreeMap;

/// Record of one executed live migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// The VM that moved.
    pub vm: VmId,
    /// Source server index (`None` = initial placement of an unhosted VM).
    pub from: Option<usize>,
    /// Destination server index.
    pub to: usize,
    /// Memory copied (MiB) — the dominant cost of pre-copy live migration.
    pub memory_mib: f64,
    /// Estimated transfer duration in seconds at the configured bandwidth.
    pub duration_s: f64,
}

/// The data center: servers, VMs, placement, and accounting.
///
/// # Examples
///
/// ```
/// use vdc_dcsim::{DataCenter, Server, ServerSpec, VmId, VmSpec};
///
/// let mut dc = DataCenter::new();
/// dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
/// dc.add_vm(VmSpec::new(1, 2.0, 1024.0)).unwrap();
/// dc.place_vm(VmId(1), 0).unwrap();
/// dc.apply_dvfs(false).unwrap();
/// assert!(dc.total_power_watts() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DataCenter {
    servers: Vec<Server>,
    vms: BTreeMap<VmId, VmSpec>,
    placement: BTreeMap<VmId, usize>,
    hosted: Vec<Vec<VmId>>,
    arbitrator: CpuArbitrator,
    /// Migration network bandwidth (MiB/s) used for cost estimates.
    migration_bandwidth_mib_s: f64,
    energy_wh: f64,
    elapsed_s: f64,
    migrations: Vec<MigrationRecord>,
    wake_count: u64,
    sleep_count: u64,
    /// DVFS frequency changes applied by the arbitrator (a server moving to
    /// a different active frequency; wake/sleep transitions count separately).
    freq_transitions: u64,
    /// Energy spent on wake transitions (a waking server burns roughly its
    /// static power for `wake_latency_s` before doing useful work).
    wake_energy_wh: f64,
}

impl DataCenter {
    /// Empty data center with the default arbitrator and 1 Gb/s ≈ 119 MiB/s
    /// migration bandwidth.
    pub fn new() -> DataCenter {
        DataCenter {
            servers: Vec::new(),
            vms: BTreeMap::new(),
            placement: BTreeMap::new(),
            hosted: Vec::new(),
            arbitrator: CpuArbitrator::default(),
            migration_bandwidth_mib_s: 119.0,
            energy_wh: 0.0,
            elapsed_s: 0.0,
            migrations: Vec::new(),
            wake_count: 0,
            sleep_count: 0,
            freq_transitions: 0,
            wake_energy_wh: 0.0,
        }
    }

    /// Replace the CPU arbitrator policy.
    pub fn set_arbitrator(&mut self, arb: CpuArbitrator) {
        self.arbitrator = arb;
    }

    /// Set the migration network bandwidth (MiB/s, floored at a small
    /// positive value).
    pub fn set_migration_bandwidth(&mut self, mib_s: f64) {
        self.migration_bandwidth_mib_s = mib_s.max(1e-3);
    }

    // ---- topology -------------------------------------------------------

    /// Add a server; returns its index.
    pub fn add_server(&mut self, server: Server) -> usize {
        self.servers.push(server);
        self.hosted.push(Vec::new());
        self.servers.len() - 1
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Borrow a server.
    pub fn server(&self, idx: usize) -> Result<&Server> {
        self.servers.get(idx).ok_or(DcError::UnknownServer(idx))
    }

    /// Indices of currently active servers.
    pub fn active_servers(&self) -> Vec<usize> {
        (0..self.servers.len())
            .filter(|&i| self.servers[i].is_active())
            .collect()
    }

    /// Register a VM (initially unplaced).
    pub fn add_vm(&mut self, spec: VmSpec) -> Result<VmId> {
        let id = spec.id;
        if self.vms.contains_key(&id) {
            return Err(DcError::BadPlacement(format!("VM {id} already exists")));
        }
        self.vms.insert(id, spec);
        Ok(id)
    }

    /// Number of registered VMs.
    pub fn n_vms(&self) -> usize {
        self.vms.len()
    }

    /// Borrow a VM spec.
    pub fn vm(&self, id: VmId) -> Result<&VmSpec> {
        self.vms.get(&id).ok_or(DcError::UnknownVm(id.0))
    }

    /// Current server hosting a VM, if placed.
    pub fn placement_of(&self, id: VmId) -> Option<usize> {
        self.placement.get(&id).copied()
    }

    /// VMs hosted on a server.
    pub fn hosted_vms(&self, server: usize) -> Result<&[VmId]> {
        self.hosted
            .get(server)
            .map(|v| v.as_slice())
            .ok_or(DcError::UnknownServer(server))
    }

    // ---- demand / capacity ----------------------------------------------

    /// Update a VM's CPU demand (GHz).
    pub fn set_vm_demand(&mut self, id: VmId, ghz: f64) -> Result<()> {
        let vm = self.vms.get_mut(&id).ok_or(DcError::UnknownVm(id.0))?;
        vm.cpu_demand_ghz = ghz.max(0.0);
        Ok(())
    }

    /// Aggregate CPU demand hosted on a server (GHz).
    pub fn server_demand_ghz(&self, server: usize) -> Result<f64> {
        Ok(self
            .hosted_vms(server)?
            .iter()
            .map(|id| self.vms[id].cpu_demand_ghz)
            .sum())
    }

    /// Aggregate memory hosted on a server (MiB).
    pub fn server_memory_mib(&self, server: usize) -> Result<f64> {
        Ok(self
            .hosted_vms(server)?
            .iter()
            .map(|id| self.vms[id].memory_mib)
            .sum())
    }

    /// Whether the aggregate demand exceeds the server's *maximum* capacity
    /// (the overload condition the IPAC invocation resolves, §V).
    pub fn is_overloaded(&self, server: usize) -> Result<bool> {
        let demand = self.server_demand_ghz(server)?;
        Ok(demand > self.servers[server].spec.max_capacity_ghz() + 1e-12)
    }

    // ---- placement & migration ------------------------------------------

    /// Place an unplaced VM on a server. Wakes the server if sleeping.
    /// Enforces the hard memory constraint; CPU may oversubscribe (it
    /// degrades performance rather than failing).
    pub fn place_vm(&mut self, id: VmId, server: usize) -> Result<()> {
        let vm_mem = self.vm(id)?.memory_mib;
        if server >= self.servers.len() {
            return Err(DcError::UnknownServer(server));
        }
        if self.placement.contains_key(&id) {
            return Err(DcError::BadPlacement(format!(
                "VM {id} is already placed; use migrate_vm"
            )));
        }
        let used = self.server_memory_mib(server)?;
        if used + vm_mem > self.servers[server].spec.memory_mib + 1e-9 {
            return Err(DcError::Invalid(format!(
                "memory overflow on server {server}: {used} + {vm_mem} > {}",
                self.servers[server].spec.memory_mib
            )));
        }
        if !self.servers[server].is_active() {
            self.wake_server(server)?;
        }
        self.placement.insert(id, server);
        self.hosted[server].push(id);
        Ok(())
    }

    /// Remove a VM from its server (it remains registered, unplaced).
    pub fn unplace_vm(&mut self, id: VmId) -> Result<usize> {
        let server = self
            .placement
            .remove(&id)
            .ok_or_else(|| DcError::BadPlacement(format!("VM {id} is not placed")))?;
        self.hosted[server].retain(|&v| v != id);
        Ok(server)
    }

    /// Live-migrate a placed VM to another server, recording the cost.
    pub fn migrate_vm(&mut self, id: VmId, to: usize) -> Result<MigrationRecord> {
        let from = self
            .placement_of(id)
            .ok_or_else(|| DcError::BadPlacement(format!("VM {id} is not placed")))?;
        if to == from {
            return Err(DcError::BadPlacement(format!(
                "VM {id} is already on server {to}"
            )));
        }
        self.unplace_vm(id)?;
        match self.place_vm(id, to) {
            Ok(()) => {}
            Err(e) => {
                // Roll back so the datacenter stays consistent.
                self.placement.insert(id, from);
                self.hosted[from].push(id);
                return Err(e);
            }
        }
        let memory_mib = self.vms[&id].memory_mib;
        let record = MigrationRecord {
            vm: id,
            from: Some(from),
            to,
            memory_mib,
            duration_s: memory_mib / self.migration_bandwidth_mib_s,
        };
        self.migrations.push(record.clone());
        Ok(record)
    }

    /// Record a migration performed via a separate unplace/place pair (bulk
    /// plan execution detaches all movers before re-attaching them, so the
    /// cost cannot be logged by [`DataCenter::migrate_vm`] itself).
    pub fn note_migration(&mut self, vm: VmId, from: usize, to: usize) -> Result<MigrationRecord> {
        let memory_mib = self.vm(vm)?.memory_mib;
        let record = MigrationRecord {
            vm,
            from: Some(from),
            to,
            memory_mib,
            duration_s: memory_mib / self.migration_bandwidth_mib_s,
        };
        self.migrations.push(record.clone());
        Ok(record)
    }

    /// All executed migrations.
    pub fn migrations(&self) -> &[MigrationRecord] {
        &self.migrations
    }

    // ---- power state ------------------------------------------------------

    /// Put an *empty* active server to sleep.
    pub fn sleep_server(&mut self, server: usize) -> Result<()> {
        if server >= self.servers.len() {
            return Err(DcError::UnknownServer(server));
        }
        if !self.hosted[server].is_empty() {
            return Err(DcError::Invalid(format!(
                "server {server} still hosts {} VMs",
                self.hosted[server].len()
            )));
        }
        if self.servers[server].is_active() {
            self.servers[server].state = ServerState::Sleeping;
            self.sleep_count += 1;
        }
        Ok(())
    }

    /// Wake a sleeping server (to its maximum frequency; the next DVFS pass
    /// throttles it down).
    pub fn wake_server(&mut self, server: usize) -> Result<()> {
        if server >= self.servers.len() {
            return Err(DcError::UnknownServer(server));
        }
        if !self.servers[server].is_active() {
            let spec = &self.servers[server].spec;
            self.wake_energy_wh += spec.power.static_watts * spec.wake_latency_s / 3600.0;
            let f = spec.max_freq_ghz;
            self.servers[server].state = ServerState::Active { freq_ghz: f };
            self.wake_count += 1;
        }
        Ok(())
    }

    /// Number of wake transitions so far.
    pub fn wake_count(&self) -> u64 {
        self.wake_count
    }

    /// Number of sleep transitions so far.
    pub fn sleep_count(&self) -> u64 {
        self.sleep_count
    }

    /// Number of DVFS frequency changes applied so far (excluding
    /// wake/sleep transitions, which [`DataCenter::wake_count`] and
    /// [`DataCenter::sleep_count`] track).
    pub fn dvfs_transitions(&self) -> u64 {
        self.freq_transitions
    }

    /// Energy consumed by wake transitions so far (Wh): each wake burns the
    /// server's static power for its wake latency (S3 resume + readiness).
    pub fn wake_energy_wh(&self) -> f64 {
        self.wake_energy_wh
    }

    /// Run the CPU resource arbitrator on every active server: set each to
    /// the lowest DVFS level covering its aggregate demand, and sleep-idle
    /// servers if `sleep_idle` is set.
    pub fn apply_dvfs(&mut self, sleep_idle: bool) -> Result<()> {
        for s in 0..self.servers.len() {
            if !self.servers[s].is_active() {
                continue;
            }
            if self.hosted[s].is_empty() && sleep_idle {
                self.sleep_server(s)?;
                continue;
            }
            let demand = self.server_demand_ghz(s)?;
            let f = self
                .arbitrator
                .choose_frequency(&self.servers[s].spec, demand);
            if !matches!(self.servers[s].state, ServerState::Active { freq_ghz } if freq_ghz == f) {
                self.freq_transitions += 1;
            }
            self.servers[s].state = ServerState::Active { freq_ghz: f };
        }
        Ok(())
    }

    // ---- power & energy ---------------------------------------------------

    /// Instantaneous power of one server (watts).
    pub fn server_power_watts(&self, server: usize) -> Result<f64> {
        let demand = self.server_demand_ghz(server)?;
        Ok(self.servers[server].power_watts(demand))
    }

    /// Instantaneous total power (watts) across all servers.
    pub fn total_power_watts(&self) -> f64 {
        (0..self.servers.len())
            .map(|s| {
                self.server_power_watts(s)
                    .expect("index in range by construction")
            })
            .sum()
    }

    /// Advance accounting time by `dt_s` seconds at the current power draw.
    pub fn accumulate_energy(&mut self, dt_s: f64) {
        let dt = dt_s.max(0.0);
        self.energy_wh += self.total_power_watts() * dt / 3600.0;
        self.elapsed_s += dt;
    }

    /// Total energy consumed so far (watt-hours).
    pub fn energy_wh(&self) -> f64 {
        self.energy_wh
    }

    /// Accounted simulation time (seconds).
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }
}

impl Default for DataCenter {
    fn default() -> Self {
        DataCenter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerSpec;

    fn dc_with(n_quad: usize) -> DataCenter {
        let mut dc = DataCenter::new();
        for _ in 0..n_quad {
            dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        }
        dc
    }

    #[test]
    fn add_and_query_topology() {
        let mut dc = dc_with(2);
        assert_eq!(dc.n_servers(), 2);
        assert!(dc.server(5).is_err());
        dc.add_vm(VmSpec::new(1, 1.0, 1024.0)).unwrap();
        assert_eq!(dc.n_vms(), 1);
        assert!(dc.add_vm(VmSpec::new(1, 2.0, 512.0)).is_err());
        assert!(dc.vm(VmId(9)).is_err());
        assert_eq!(dc.placement_of(VmId(1)), None);
    }

    #[test]
    fn placement_and_demand_aggregation() {
        let mut dc = dc_with(1);
        dc.add_vm(VmSpec::new(1, 1.5, 1024.0)).unwrap();
        dc.add_vm(VmSpec::new(2, 2.0, 2048.0)).unwrap();
        dc.place_vm(VmId(1), 0).unwrap();
        dc.place_vm(VmId(2), 0).unwrap();
        assert_eq!(dc.server_demand_ghz(0).unwrap(), 3.5);
        assert_eq!(dc.server_memory_mib(0).unwrap(), 3072.0);
        assert!(!dc.is_overloaded(0).unwrap());
        dc.set_vm_demand(VmId(1), 11.0).unwrap();
        assert!(dc.is_overloaded(0).unwrap());
        // Double placement rejected.
        assert!(dc.place_vm(VmId(1), 0).is_err());
    }

    #[test]
    fn memory_constraint_enforced() {
        let mut dc = dc_with(1); // 16384 MiB
        dc.add_vm(VmSpec::new(1, 0.5, 16000.0)).unwrap();
        dc.add_vm(VmSpec::new(2, 0.5, 1000.0)).unwrap();
        dc.place_vm(VmId(1), 0).unwrap();
        let err = dc.place_vm(VmId(2), 0).unwrap_err();
        assert!(matches!(err, DcError::Invalid(_)));
    }

    #[test]
    fn placing_on_sleeping_server_wakes_it() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::asleep(ServerSpec::type_dual_2ghz()));
        dc.add_vm(VmSpec::new(1, 1.0, 512.0)).unwrap();
        assert!(dc.active_servers().is_empty());
        dc.place_vm(VmId(1), 0).unwrap();
        assert_eq!(dc.active_servers(), vec![0]);
        assert_eq!(dc.wake_count(), 1);
    }

    #[test]
    fn migration_moves_vm_and_records_cost() {
        let mut dc = dc_with(2);
        dc.set_migration_bandwidth(100.0);
        dc.add_vm(VmSpec::new(1, 1.0, 2000.0)).unwrap();
        dc.place_vm(VmId(1), 0).unwrap();
        let rec = dc.migrate_vm(VmId(1), 1).unwrap();
        assert_eq!(rec.from, Some(0));
        assert_eq!(rec.to, 1);
        assert!((rec.duration_s - 20.0).abs() < 1e-12);
        assert_eq!(dc.placement_of(VmId(1)), Some(1));
        assert!(dc.hosted_vms(0).unwrap().is_empty());
        assert_eq!(dc.migrations().len(), 1);
        // Self-migration rejected.
        assert!(dc.migrate_vm(VmId(1), 1).is_err());
        // Unplaced VM rejected.
        dc.add_vm(VmSpec::new(2, 1.0, 512.0)).unwrap();
        assert!(dc.migrate_vm(VmId(2), 0).is_err());
    }

    #[test]
    fn migration_rolls_back_on_destination_overflow() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz())); // 16 GiB
        dc.add_server(Server::active(ServerSpec::type_dual_1_5ghz())); // 4 GiB
        dc.add_vm(VmSpec::new(1, 1.0, 8000.0)).unwrap();
        dc.place_vm(VmId(1), 0).unwrap();
        assert!(dc.migrate_vm(VmId(1), 1).is_err());
        // VM must still be on server 0.
        assert_eq!(dc.placement_of(VmId(1)), Some(0));
        assert_eq!(dc.hosted_vms(0).unwrap(), &[VmId(1)]);
        assert!(dc.migrations().is_empty());
    }

    #[test]
    fn sleep_requires_empty_server() {
        let mut dc = dc_with(1);
        dc.add_vm(VmSpec::new(1, 1.0, 512.0)).unwrap();
        dc.place_vm(VmId(1), 0).unwrap();
        assert!(dc.sleep_server(0).is_err());
        dc.unplace_vm(VmId(1)).unwrap();
        dc.sleep_server(0).unwrap();
        assert!(dc.active_servers().is_empty());
        assert_eq!(dc.sleep_count(), 1);
        // Sleeping a sleeping server is a no-op.
        dc.sleep_server(0).unwrap();
        assert_eq!(dc.sleep_count(), 1);
    }

    #[test]
    fn dvfs_throttles_and_sleeps_idle() {
        let mut dc = dc_with(2);
        dc.set_arbitrator(CpuArbitrator::new(0.0));
        dc.add_vm(VmSpec::new(1, 3.5, 1024.0)).unwrap();
        dc.place_vm(VmId(1), 0).unwrap();
        dc.apply_dvfs(true).unwrap();
        // Server 0: demand 3.5 => 1.0 GHz level (capacity 4.0).
        match dc.server(0).unwrap().state {
            ServerState::Active { freq_ghz } => assert_eq!(freq_ghz, 1.0),
            _ => panic!("server 0 should stay active"),
        }
        // Server 1 idle => asleep.
        assert!(!dc.server(1).unwrap().is_active());
    }

    #[test]
    fn power_and_energy_accounting() {
        let mut dc = dc_with(1);
        dc.add_vm(VmSpec::new(1, 6.0, 1024.0)).unwrap();
        dc.place_vm(VmId(1), 0).unwrap();
        // Active at 3 GHz, u = 0.5: P = 190 + 130*0.5 = 255 W.
        assert!((dc.total_power_watts() - 255.0).abs() < 1e-9);
        dc.accumulate_energy(3600.0);
        assert!((dc.energy_wh() - 255.0).abs() < 1e-9);
        assert_eq!(dc.elapsed_s(), 3600.0);
        // Negative dt ignored.
        dc.accumulate_energy(-5.0);
        assert_eq!(dc.elapsed_s(), 3600.0);
    }

    #[test]
    fn consolidation_saves_energy_end_to_end() {
        // Two lightly loaded servers vs one consolidated + one asleep.
        let mut spread = dc_with(2);
        for i in 0..2 {
            spread.add_vm(VmSpec::new(i, 1.0, 1024.0)).unwrap();
            spread.place_vm(VmId(i), i as usize).unwrap();
        }
        spread.apply_dvfs(true).unwrap();
        let mut packed = dc_with(2);
        for i in 0..2 {
            packed.add_vm(VmSpec::new(i, 1.0, 1024.0)).unwrap();
            packed.place_vm(VmId(i), 0).unwrap();
        }
        packed.apply_dvfs(true).unwrap();
        assert!(
            packed.total_power_watts() < spread.total_power_watts() - 100.0,
            "packing should save the static power of one server: {} vs {}",
            packed.total_power_watts(),
            spread.total_power_watts()
        );
    }
}

#[cfg(test)]
mod accounting_tests {
    use super::*;
    use crate::server::ServerSpec;

    #[test]
    fn wake_energy_accrues_per_transition() {
        let mut dc = DataCenter::new();
        let spec = ServerSpec::type_quad_3ghz();
        let expected = spec.power.static_watts * spec.wake_latency_s / 3600.0;
        dc.add_server(Server::asleep(spec));
        assert_eq!(dc.wake_energy_wh(), 0.0);
        dc.wake_server(0).unwrap();
        assert!((dc.wake_energy_wh() - expected).abs() < 1e-12);
        // Waking an already-active server adds nothing.
        dc.wake_server(0).unwrap();
        assert!((dc.wake_energy_wh() - expected).abs() < 1e-12);
        // Sleep and wake again: a second transition is charged.
        dc.sleep_server(0).unwrap();
        dc.wake_server(0).unwrap();
        assert!((dc.wake_energy_wh() - 2.0 * expected).abs() < 1e-12);
    }

    #[test]
    fn note_migration_records_cost_without_moving() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        dc.set_migration_bandwidth(100.0);
        dc.add_vm(VmSpec::new(1, 1.0, 1500.0)).unwrap();
        dc.place_vm(VmId(1), 0).unwrap();
        // Simulate a bulk-plan execution: detach, attach, note.
        dc.unplace_vm(VmId(1)).unwrap();
        dc.place_vm(VmId(1), 1).unwrap();
        let rec = dc.note_migration(VmId(1), 0, 1).unwrap();
        assert_eq!(rec.from, Some(0));
        assert_eq!(rec.to, 1);
        assert!((rec.duration_s - 15.0).abs() < 1e-12);
        assert_eq!(dc.migrations().len(), 1);
        // Unknown VM is rejected.
        assert!(dc.note_migration(VmId(99), 0, 1).is_err());
    }
}
