//! Data-center state: servers, VM placement, migration, energy accounting.
//!
//! This is the bookkeeping substrate under both the testbed scenario (4
//! servers, 8 two-tier applications) and the large-scale simulation (3,000
//! servers hosting up to 5,415 trace-driven VMs). The consolidation
//! algorithms in `vdc-consolidate` compute *plans*; this module executes
//! them (migrations, sleep/wake) and integrates power into energy.
//!
//! # Arena layout
//!
//! All mutable simulation state lives in dense, index-addressed vectors
//! inside one copy-on-write block ([`DataCenter`] holds it behind an
//! `Arc`): VM specs, current CPU demands, placements, and per-server
//! hosted lists are `Vec`s addressed by copyable [`VmHandle`] /
//! [`ServerHandle`] slot indices. [`VmId`] remains only as the external
//! label ([`DataCenter::lookup`] translates). The layout exists so that
//! the per-sample demand update and the per-server DVFS/arbitrator pass
//! can fan out over shard workers (`vdc_core::shard`) as pure per-element
//! reads/writes, with every reduction a sequential index-order fold:
//!
//! * [`DataCenter::demands_mut`] exposes the demand table as one `&mut
//!   [f64]` so disjoint chunks can be written concurrently;
//! * [`DataCenter::dvfs_decision`] is the read-only per-server half of the
//!   arbitrator pass; [`DataCenter::apply_dvfs_decisions`] commits the
//!   decisions sequentially in index order (counter updates stay
//!   deterministic);
//! * [`DataCenter::snapshot`] returns a cheap [`Snapshot`] — an `Arc`
//!   clone — that read-only shard workers can walk while the live state
//!   keeps mutating (first mutation after a snapshot clones the block).
//!
//! # Slot recycling
//!
//! Removing a VM bumps its slot's generation and pushes the slot onto a
//! free list; the next registration pops it (LIFO) instead of growing the
//! arena, so lifecycle churn keeps the arena at its high-water live
//! population. Handles are generation-tagged, so a handle minted for a
//! removed tenant keeps failing with [`DcError::StaleHandle`] even after
//! the slot hosts a new VM. Runs that never remove a VM never touch the
//! free list and stay byte-identical to the pre-recycling arena.

use crate::server::{CpuArbitrator, Server, ServerHandle, ServerState};
use crate::vm::{VmHandle, VmId, VmSpec};
use crate::{DcError, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Record of one executed live migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationRecord {
    /// The VM that moved.
    pub vm: VmId,
    /// Source server index (`None` = initial placement of an unhosted VM).
    pub from: Option<usize>,
    /// Destination server index.
    pub to: usize,
    /// Memory copied (MiB) — the dominant cost of pre-copy live migration.
    pub memory_mib: f64,
    /// Estimated transfer duration in seconds at the configured bandwidth.
    pub duration_s: f64,
}

/// One per-server outcome of the DVFS/arbitrator pass, computed read-only
/// by [`DataCenter::dvfs_decision`] and committed by
/// [`DataCenter::apply_dvfs_decisions`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DvfsDecision {
    /// Leave the server untouched (it is sleeping).
    Hold,
    /// Sleep an idle active server (`sleep_idle` mode, no hosted VMs).
    Sleep,
    /// Set the active server to this per-core frequency (GHz).
    Frequency(f64),
}

/// The copy-on-write state block: every field the simulation mutates per
/// sample, in dense slot-indexed form. `DataCenter` mutators funnel
/// through `Arc::make_mut`, so cloning the `Arc` ([`DataCenter::snapshot`])
/// is O(1) and the first mutation afterwards pays one deep copy.
#[derive(Debug, Clone, Default)]
struct DcState {
    servers: Vec<Server>,
    /// VM arena; `None` marks a vacant (removed, recyclable) slot.
    vms: Vec<Option<VmSpec>>,
    /// Current CPU demand (GHz) per VM slot; 0.0 for vacant slots.
    demand: Vec<f64>,
    /// Hosting server per VM slot; `None` = registered but unplaced.
    placement: Vec<Option<ServerHandle>>,
    /// Hosted VM handles per server, in placement order.
    hosted: Vec<Vec<VmHandle>>,
    /// External-label index, VmId-ordered.
    index: BTreeMap<VmId, VmHandle>,
    /// Per-slot generation: the generation the slot's *current or next*
    /// occupant is (or will be) addressed under. Bumped on removal, so
    /// handles minted for earlier tenants fail the generation comparison.
    vm_gen: Vec<u32>,
    /// Vacant slot indices available for reuse (LIFO). While this is empty
    /// — i.e. in any run that never removes a VM — registration appends,
    /// byte-identical to the pre-recycling arena.
    free: Vec<usize>,
    /// Site index per server slot (site 0 when unspecified).
    site_of: Vec<u32>,
    /// Current facility PUE per site; every site starts at 1.0 (facility
    /// power == IT power) until [`DataCenter::set_site_pue`].
    site_pue: Vec<f64>,
}

impl DcState {
    fn vm_ref(&self, h: VmHandle) -> Result<&VmSpec> {
        if self.vm_gen.get(h.index()).copied() != Some(h.generation()) {
            return Err(DcError::StaleHandle(h.index()));
        }
        self.vms
            .get(h.index())
            .and_then(|slot| slot.as_ref())
            .ok_or(DcError::StaleHandle(h.index()))
    }

    /// Validate a server handle (index in range, generation current —
    /// servers are never removed, so every live generation is 0) and
    /// return its slot index.
    fn server_slot(&self, server: ServerHandle) -> Result<usize> {
        if server.index() >= self.servers.len() || server.generation() != 0 {
            return Err(DcError::UnknownServer(server.index()));
        }
        Ok(server.index())
    }

    fn hosted_on(&self, server: ServerHandle) -> Result<&[VmHandle]> {
        let s = self.server_slot(server)?;
        Ok(self.hosted[s].as_slice())
    }

    fn server_demand_ghz(&self, server: ServerHandle) -> Result<f64> {
        Ok(self
            .hosted_on(server)?
            .iter()
            .map(|h| self.demand[h.index()])
            .sum())
    }

    fn server_memory_mib(&self, server: ServerHandle) -> Result<f64> {
        Ok(self
            .hosted_on(server)?
            .iter()
            .map(|h| {
                self.vms[h.index()]
                    .as_ref()
                    .expect("hosted lists hold only occupied slots")
                    .memory_mib
            })
            .sum())
    }

    fn server_site(&self, server: ServerHandle) -> usize {
        self.site_of.get(server.index()).copied().unwrap_or(0) as usize
    }

    fn server_pue(&self, server: ServerHandle) -> f64 {
        self.site_pue
            .get(self.server_site(server))
            .copied()
            .unwrap_or(1.0)
    }
}

/// A cheap read-only view of the data-center state at one instant.
///
/// Taking a snapshot clones only an `Arc`; the live [`DataCenter`] pays a
/// single deep copy on its *next* mutation (copy-on-write), after which
/// the snapshot and the live state diverge. Shard workers building packing
/// views walk a snapshot without borrowing the live simulation.
#[derive(Debug, Clone)]
pub struct Snapshot {
    state: Arc<DcState>,
}

impl Snapshot {
    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.state.servers.len()
    }

    /// All servers, slot-indexed.
    pub fn servers(&self) -> &[Server] {
        &self.state.servers
    }

    /// Borrow a server.
    pub fn server(&self, server: ServerHandle) -> Result<&Server> {
        let s = self.state.server_slot(server)?;
        Ok(&self.state.servers[s])
    }

    /// Number of registered (live) VMs.
    pub fn n_vms(&self) -> usize {
        self.state.index.len()
    }

    /// Borrow a VM spec (demand at registration time; see
    /// [`Snapshot::vm_demand`] for the live demand).
    pub fn vm(&self, h: VmHandle) -> Result<&VmSpec> {
        self.state.vm_ref(h)
    }

    /// Current CPU demand (GHz) of a VM.
    pub fn vm_demand(&self, h: VmHandle) -> Result<f64> {
        self.state.vm_ref(h)?;
        Ok(self.state.demand[h.index()])
    }

    /// The demand table, slot-indexed (vacant slots read 0.0).
    pub fn demands(&self) -> &[f64] {
        &self.state.demand
    }

    /// Hosting server per VM slot.
    pub fn placements(&self) -> &[Option<ServerHandle>] {
        &self.state.placement
    }

    /// Current server hosting a VM, if placed. Stale handles (the slot
    /// was recycled under a bumped generation) read `None`, never the new
    /// tenant's placement.
    pub fn placement_of(&self, h: VmHandle) -> Option<ServerHandle> {
        self.state.vm_ref(h).ok()?;
        self.state.placement.get(h.index()).copied().flatten()
    }

    /// VMs hosted on a server, in placement order.
    pub fn hosted_vms(&self, server: ServerHandle) -> Result<&[VmHandle]> {
        self.state.hosted_on(server)
    }

    /// Aggregate CPU demand hosted on a server (GHz).
    pub fn server_demand_ghz(&self, server: ServerHandle) -> Result<f64> {
        self.state.server_demand_ghz(server)
    }

    /// Aggregate memory hosted on a server (MiB).
    pub fn server_memory_mib(&self, server: ServerHandle) -> Result<f64> {
        self.state.server_memory_mib(server)
    }

    /// Translate an external VM label to its arena handle.
    pub fn lookup(&self, id: VmId) -> Option<VmHandle> {
        self.state.index.get(&id).copied()
    }

    /// Registered VMs in external-label (`VmId`) order — the iteration
    /// order the old `BTreeMap`-keyed state exposed.
    pub fn vm_handles(&self) -> impl Iterator<Item = (VmId, VmHandle)> + '_ {
        self.state.index.iter().map(|(&id, &h)| (id, h))
    }

    /// Number of sites seen so far (0 for an empty data center).
    pub fn n_sites(&self) -> usize {
        self.state.site_pue.len()
    }

    /// The site a server belongs to (site 0 when it was added without one).
    pub fn server_site(&self, server: ServerHandle) -> usize {
        self.state.server_site(server)
    }

    /// The current facility PUE of the server's site (1.0 when no PUE was
    /// ever set).
    pub fn server_pue(&self, server: ServerHandle) -> f64 {
        self.state.server_pue(server)
    }

    /// The current facility PUE of a site (1.0 for unknown sites).
    pub fn site_pue(&self, site: usize) -> f64 {
        self.state.site_pue.get(site).copied().unwrap_or(1.0)
    }
}

/// The data center: servers, VMs, placement, and accounting.
///
/// # Examples
///
/// ```
/// use vdc_dcsim::{DataCenter, Server, ServerSpec, VmSpec};
///
/// let mut dc = DataCenter::new();
/// let srv = dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
/// let vm = dc.add_vm(VmSpec::new(1, 2.0, 1024.0)).unwrap();
/// dc.place_vm(vm, srv).unwrap();
/// dc.apply_dvfs(false).unwrap();
/// assert!(dc.total_power_watts() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DataCenter {
    state: Arc<DcState>,
    arbitrator: CpuArbitrator,
    /// Migration network bandwidth (MiB/s) used for cost estimates.
    migration_bandwidth_mib_s: f64,
    energy_wh: f64,
    elapsed_s: f64,
    migrations: Vec<MigrationRecord>,
    wake_count: u64,
    sleep_count: u64,
    /// DVFS frequency changes applied by the arbitrator (a server moving to
    /// a different active frequency; wake/sleep transitions count separately).
    freq_transitions: u64,
    /// Energy spent on wake transitions (a waking server burns roughly its
    /// static power for `wake_latency_s` before doing useful work).
    wake_energy_wh: f64,
}

impl DataCenter {
    /// Empty data center with the default arbitrator and 1 Gb/s ≈ 119 MiB/s
    /// migration bandwidth.
    pub fn new() -> DataCenter {
        DataCenter {
            state: Arc::new(DcState::default()),
            arbitrator: CpuArbitrator::default(),
            migration_bandwidth_mib_s: 119.0,
            energy_wh: 0.0,
            elapsed_s: 0.0,
            migrations: Vec::new(),
            wake_count: 0,
            sleep_count: 0,
            freq_transitions: 0,
            wake_energy_wh: 0.0,
        }
    }

    /// Copy-on-write access to the state block: a no-op pointer deref while
    /// no [`Snapshot`] is outstanding, one deep copy otherwise.
    fn state_mut(&mut self) -> &mut DcState {
        Arc::make_mut(&mut self.state)
    }

    /// Replace the CPU arbitrator policy.
    pub fn set_arbitrator(&mut self, arb: CpuArbitrator) {
        self.arbitrator = arb;
    }

    /// Set the migration network bandwidth (MiB/s, floored at a small
    /// positive value).
    pub fn set_migration_bandwidth(&mut self, mib_s: f64) {
        self.migration_bandwidth_mib_s = mib_s.max(1e-3);
    }

    /// A cheap read-only view of the current state (`Arc` clone; the next
    /// mutation of `self` copies the block, leaving the snapshot intact).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            state: Arc::clone(&self.state),
        }
    }

    // ---- topology -------------------------------------------------------

    /// Add a server to site 0; returns its handle (slot indices are
    /// assigned in insertion order and never change).
    pub fn add_server(&mut self, server: Server) -> ServerHandle {
        self.add_server_in_site(server, 0)
            .expect("site 0 is always addressable")
    }

    /// Add a server to a specific site. Sites are created on first use
    /// with PUE 1.0; change it with [`DataCenter::set_site_pue`].
    pub fn add_server_in_site(&mut self, server: Server, site: usize) -> Result<ServerHandle> {
        if site > u32::MAX as usize {
            return Err(DcError::Invalid(format!("site index {site} out of range")));
        }
        let st = self.state_mut();
        st.servers.push(server);
        st.hosted.push(Vec::new());
        st.site_of.push(site as u32);
        if st.site_pue.len() <= site {
            st.site_pue.resize(site + 1, 1.0);
        }
        Ok(ServerHandle::from_index(st.servers.len() - 1))
    }

    /// Set a site's current facility PUE (finite, ≥ 1.0). A no-op when the
    /// value is unchanged, so constant-PUE runs never fork the
    /// copy-on-write state block for this.
    pub fn set_site_pue(&mut self, site: usize, pue: f64) -> Result<()> {
        if site >= self.state.site_pue.len() {
            return Err(DcError::Invalid(format!(
                "unknown site {site} ({} sites exist)",
                self.state.site_pue.len()
            )));
        }
        if !pue.is_finite() || pue < 1.0 {
            return Err(DcError::Invalid(format!(
                "PUE for site {site} is {pue}; must be finite and >= 1.0"
            )));
        }
        if self.state.site_pue[site].to_bits() != pue.to_bits() {
            self.state_mut().site_pue[site] = pue;
        }
        Ok(())
    }

    /// Number of sites seen so far (0 for an empty data center).
    pub fn n_sites(&self) -> usize {
        self.state.site_pue.len()
    }

    /// The site a server belongs to (site 0 when it was added without one).
    pub fn server_site(&self, server: ServerHandle) -> usize {
        self.state.server_site(server)
    }

    /// The current facility PUE of the server's site (1.0 when no PUE was
    /// ever set).
    pub fn server_pue(&self, server: ServerHandle) -> f64 {
        self.state.server_pue(server)
    }

    /// The current facility PUE of a site (1.0 for unknown sites).
    pub fn site_pue(&self, site: usize) -> f64 {
        self.state.site_pue.get(site).copied().unwrap_or(1.0)
    }

    /// Number of servers.
    pub fn n_servers(&self) -> usize {
        self.state.servers.len()
    }

    /// Borrow a server.
    pub fn server(&self, server: ServerHandle) -> Result<&Server> {
        let s = self.state.server_slot(server)?;
        Ok(&self.state.servers[s])
    }

    /// All servers, slot-indexed.
    pub fn servers(&self) -> &[Server] {
        &self.state.servers
    }

    /// Handles of currently active servers, in slot order.
    pub fn active_servers(&self) -> Vec<ServerHandle> {
        (0..self.state.servers.len())
            .filter(|&i| self.state.servers[i].is_active())
            .map(ServerHandle::from_index)
            .collect()
    }

    /// Register a VM (initially unplaced); returns its arena handle. The
    /// spec's `cpu_demand_ghz` seeds the live demand table. The external
    /// label must be unique among live VMs.
    ///
    /// Slots of removed VMs are recycled (most recently freed first) under
    /// a bumped generation, so the arena never grows past its high-water
    /// live population; with no free slot the arena appends, exactly as it
    /// did before recycling existed.
    pub fn add_vm(&mut self, spec: VmSpec) -> Result<VmHandle> {
        let id = spec.id;
        if self.state.index.contains_key(&id) {
            return Err(DcError::BadPlacement(format!("VM {id} already exists")));
        }
        let st = self.state_mut();
        let h = match st.free.pop() {
            Some(slot) => {
                debug_assert!(st.vms[slot].is_none(), "free list holds only vacant slots");
                let h = VmHandle::new(slot, st.vm_gen[slot]);
                st.demand[slot] = spec.cpu_demand_ghz;
                st.vms[slot] = Some(spec);
                st.placement[slot] = None;
                h
            }
            None => {
                let slot = st.vms.len();
                let h = VmHandle::from_index(slot);
                st.demand.push(spec.cpu_demand_ghz);
                st.vms.push(Some(spec));
                st.placement.push(None);
                st.vm_gen.push(0);
                h
            }
        };
        st.index.insert(id, h);
        Ok(h)
    }

    /// Deregister a VM (unplacing it first if hosted) and return its spec.
    /// The slot's generation is bumped and the slot joins the free list for
    /// reuse by a later arrival; every outstanding handle to the removed VM
    /// fails the generation comparison from now on
    /// ([`crate::DcError::StaleHandle`]), so it can never alias the slot's
    /// next tenant.
    pub fn remove_vm(&mut self, h: VmHandle) -> Result<VmSpec> {
        let id = self.state.vm_ref(h)?.id;
        if self.placement_of(h).is_some() {
            self.unplace_vm(h)?;
        }
        let st = self.state_mut();
        st.index.remove(&id);
        st.demand[h.index()] = 0.0;
        st.vm_gen[h.index()] += 1;
        st.free.push(h.index());
        Ok(st.vms[h.index()].take().expect("checked occupied above"))
    }

    /// Number of registered (live) VMs.
    pub fn n_vms(&self) -> usize {
        self.state.index.len()
    }

    /// Arena length in slots (live VMs plus vacant slots awaiting reuse);
    /// the bound for slot-enumerating fan-out loops and the length of
    /// [`DataCenter::demands`]. Because vacant slots are recycled before
    /// the arena grows, this never exceeds the high-water live population.
    pub fn vm_slots(&self) -> usize {
        self.state.vms.len()
    }

    /// Borrow a VM spec (fields are as registered; the *live* demand is
    /// [`DataCenter::vm_demand`]).
    pub fn vm(&self, h: VmHandle) -> Result<&VmSpec> {
        self.state.vm_ref(h)
    }

    /// Translate an external VM label to its arena handle.
    pub fn lookup(&self, id: VmId) -> Option<VmHandle> {
        self.state.index.get(&id).copied()
    }

    /// Registered VMs in external-label (`VmId`) order — the iteration
    /// order the old `BTreeMap`-keyed state exposed; label-ordered outputs
    /// (e.g. final placements) are built from this.
    pub fn vm_handles(&self) -> impl Iterator<Item = (VmId, VmHandle)> + '_ {
        self.state.index.iter().map(|(&id, &h)| (id, h))
    }

    /// Current server hosting a VM, if placed. Stale handles (the slot
    /// was recycled under a bumped generation) read `None`, never the new
    /// tenant's placement.
    pub fn placement_of(&self, h: VmHandle) -> Option<ServerHandle> {
        self.state.vm_ref(h).ok()?;
        self.state.placement.get(h.index()).copied().flatten()
    }

    /// Hosting server per VM slot (`None` = unplaced or vacant slot).
    pub fn placements(&self) -> &[Option<ServerHandle>] {
        &self.state.placement
    }

    /// VMs hosted on a server, in placement order.
    pub fn hosted_vms(&self, server: ServerHandle) -> Result<&[VmHandle]> {
        self.state.hosted_on(server)
    }

    // ---- demand / capacity ----------------------------------------------

    /// Update a VM's CPU demand (GHz, floored at 0).
    pub fn set_vm_demand(&mut self, h: VmHandle, ghz: f64) -> Result<()> {
        self.state.vm_ref(h)?;
        self.state_mut().demand[h.index()] = ghz.max(0.0);
        Ok(())
    }

    /// Current CPU demand (GHz) of a VM.
    pub fn vm_demand(&self, h: VmHandle) -> Result<f64> {
        self.state.vm_ref(h)?;
        Ok(self.state.demand[h.index()])
    }

    /// The demand table, slot-indexed (vacant slots read 0.0).
    pub fn demands(&self) -> &[f64] {
        &self.state.demand
    }

    /// Mutable access to the whole demand table for sharded per-slot
    /// updates (`shard::map_slice_mut` hands each worker a disjoint chunk).
    /// Callers must write non-negative values; entries of vacant slots are
    /// ignored by every aggregate.
    pub fn demands_mut(&mut self) -> &mut [f64] {
        &mut self.state_mut().demand
    }

    /// Aggregate CPU demand hosted on a server (GHz).
    pub fn server_demand_ghz(&self, server: ServerHandle) -> Result<f64> {
        self.state.server_demand_ghz(server)
    }

    /// Aggregate memory hosted on a server (MiB).
    pub fn server_memory_mib(&self, server: ServerHandle) -> Result<f64> {
        self.state.server_memory_mib(server)
    }

    /// Whether the aggregate demand exceeds the server's *maximum* capacity
    /// (the overload condition the IPAC invocation resolves, §V).
    pub fn is_overloaded(&self, server: ServerHandle) -> Result<bool> {
        let demand = self.server_demand_ghz(server)?;
        Ok(demand > self.state.servers[server.index()].spec.max_capacity_ghz() + 1e-12)
    }

    // ---- placement & migration ------------------------------------------

    /// Place an unplaced VM on a server. Wakes the server if sleeping.
    /// Enforces the hard memory constraint; CPU may oversubscribe (it
    /// degrades performance rather than failing).
    pub fn place_vm(&mut self, h: VmHandle, server: ServerHandle) -> Result<()> {
        let vm = self.state.vm_ref(h)?;
        let (id, vm_mem) = (vm.id, vm.memory_mib);
        let s = self.state.server_slot(server)?;
        if self.state.placement[h.index()].is_some() {
            return Err(DcError::BadPlacement(format!(
                "VM {id} is already placed; use migrate_vm"
            )));
        }
        let used = self.server_memory_mib(server)?;
        if used + vm_mem > self.state.servers[s].spec.memory_mib + 1e-9 {
            return Err(DcError::Invalid(format!(
                "memory overflow on server {s}: {used} + {vm_mem} > {}",
                self.state.servers[s].spec.memory_mib
            )));
        }
        if matches!(self.state.servers[s].state, ServerState::Failed) {
            return Err(DcError::ServerFailed(s));
        }
        if !self.state.servers[s].is_active() {
            self.wake_server(server)?;
        }
        let st = self.state_mut();
        st.placement[h.index()] = Some(server);
        st.hosted[s].push(h);
        Ok(())
    }

    /// Remove a VM from its server (it remains registered, unplaced).
    pub fn unplace_vm(&mut self, h: VmHandle) -> Result<ServerHandle> {
        let id = self.state.vm_ref(h)?.id;
        let server = self.state.placement[h.index()]
            .ok_or_else(|| DcError::BadPlacement(format!("VM {id} is not placed")))?;
        let st = self.state_mut();
        st.placement[h.index()] = None;
        st.hosted[server.index()].retain(|&v| v != h);
        Ok(server)
    }

    /// Live-migrate a placed VM to another server, recording the cost.
    pub fn migrate_vm(&mut self, h: VmHandle, to: ServerHandle) -> Result<MigrationRecord> {
        let id = self.state.vm_ref(h)?.id;
        let from = self
            .placement_of(h)
            .ok_or_else(|| DcError::BadPlacement(format!("VM {id} is not placed")))?;
        if to == from {
            return Err(DcError::BadPlacement(format!(
                "VM {id} is already on server {}",
                to.index()
            )));
        }
        self.unplace_vm(h)?;
        match self.place_vm(h, to) {
            Ok(()) => {}
            Err(e) => {
                // Roll back so the datacenter stays consistent.
                let st = self.state_mut();
                st.placement[h.index()] = Some(from);
                st.hosted[from.index()].push(h);
                return Err(e);
            }
        }
        let memory_mib = self.state.vm_ref(h)?.memory_mib;
        let record = MigrationRecord {
            vm: id,
            from: Some(from.index()),
            to: to.index(),
            memory_mib,
            duration_s: memory_mib / self.migration_bandwidth_mib_s,
        };
        self.migrations.push(record.clone());
        Ok(record)
    }

    /// Record a migration performed via a separate unplace/place pair (bulk
    /// plan execution detaches all movers before re-attaching them, so the
    /// cost cannot be logged by [`DataCenter::migrate_vm`] itself).
    pub fn note_migration(
        &mut self,
        h: VmHandle,
        from: ServerHandle,
        to: ServerHandle,
    ) -> Result<MigrationRecord> {
        let vm = self.state.vm_ref(h)?;
        let memory_mib = vm.memory_mib;
        let record = MigrationRecord {
            vm: vm.id,
            from: Some(from.index()),
            to: to.index(),
            memory_mib,
            duration_s: memory_mib / self.migration_bandwidth_mib_s,
        };
        self.migrations.push(record.clone());
        Ok(record)
    }

    /// All executed migrations.
    pub fn migrations(&self) -> &[MigrationRecord] {
        &self.migrations
    }

    // ---- power state ------------------------------------------------------

    /// Put an *empty* active server to sleep.
    pub fn sleep_server(&mut self, server: ServerHandle) -> Result<()> {
        let s = self.state.server_slot(server)?;
        if !self.state.hosted[s].is_empty() {
            return Err(DcError::Invalid(format!(
                "server {s} still hosts {} VMs",
                self.state.hosted[s].len()
            )));
        }
        if self.state.servers[s].is_active() {
            self.state_mut().servers[s].state = ServerState::Sleeping;
            self.sleep_count += 1;
        }
        Ok(())
    }

    /// Wake a sleeping server (to its maximum frequency; the next DVFS pass
    /// throttles it down). A [`ServerState::Failed`] server cannot be woken
    /// — it must first be repaired via [`DataCenter::recover_server`].
    pub fn wake_server(&mut self, server: ServerHandle) -> Result<()> {
        let s = self.state.server_slot(server)?;
        if matches!(self.state.servers[s].state, ServerState::Failed) {
            return Err(DcError::ServerFailed(s));
        }
        if !self.state.servers[s].is_active() {
            let spec = &self.state.servers[s].spec;
            let wake_wh = spec.power.static_watts * spec.wake_latency_s / 3600.0;
            let f = spec.max_freq_ghz;
            self.wake_energy_wh += wake_wh;
            self.state_mut().servers[s].state = ServerState::Active { freq_ghz: f };
            self.wake_count += 1;
        }
        Ok(())
    }

    /// Crash a host: every hosted VM is unplaced (the evacuee handles are
    /// returned in placement order so the caller can re-place them) and the
    /// server enters [`ServerState::Failed`], where it draws no power,
    /// offers no capacity, and rejects wake/placement until
    /// [`DataCenter::recover_server`]. Failing an already-failed server is
    /// a no-op returning no evacuees.
    pub fn fail_server(&mut self, server: ServerHandle) -> Result<Vec<VmHandle>> {
        let s = self.state.server_slot(server)?;
        if matches!(self.state.servers[s].state, ServerState::Failed) {
            return Ok(Vec::new());
        }
        let st = self.state_mut();
        let evacuees = std::mem::take(&mut st.hosted[s]);
        for h in &evacuees {
            st.placement[h.index()] = None;
        }
        st.servers[s].state = ServerState::Failed;
        Ok(evacuees)
    }

    /// Repair a failed host: it returns to [`ServerState::Sleeping`] (empty,
    /// wakeable again — no wake energy is charged until something wakes it).
    /// A no-op for servers that are not failed.
    pub fn recover_server(&mut self, server: ServerHandle) -> Result<()> {
        let s = self.state.server_slot(server)?;
        if matches!(self.state.servers[s].state, ServerState::Failed) {
            self.state_mut().servers[s].state = ServerState::Sleeping;
        }
        Ok(())
    }

    /// Whether a server is currently in the [`ServerState::Failed`] state.
    pub fn is_failed(&self, server: ServerHandle) -> Result<bool> {
        let s = self.state.server_slot(server)?;
        Ok(matches!(self.state.servers[s].state, ServerState::Failed))
    }

    /// Number of wake transitions so far.
    pub fn wake_count(&self) -> u64 {
        self.wake_count
    }

    /// Number of sleep transitions so far.
    pub fn sleep_count(&self) -> u64 {
        self.sleep_count
    }

    /// Number of DVFS frequency changes applied so far (excluding
    /// wake/sleep transitions, which [`DataCenter::wake_count`] and
    /// [`DataCenter::sleep_count`] track).
    pub fn dvfs_transitions(&self) -> u64 {
        self.freq_transitions
    }

    /// Energy consumed by wake transitions so far (Wh): each wake burns the
    /// server's static power for its wake latency (S3 resume + readiness).
    pub fn wake_energy_wh(&self) -> f64 {
        self.wake_energy_wh
    }

    /// The read-only half of the arbitrator pass for one server: what the
    /// DVFS step would do, computed from the current state without touching
    /// it. Pure per-server work — safe to fan out over shard workers; feed
    /// the index-ordered results to [`DataCenter::apply_dvfs_decisions`].
    pub fn dvfs_decision(&self, server: ServerHandle, sleep_idle: bool) -> Result<DvfsDecision> {
        let s = self.state.server_slot(server)?;
        let srv = &self.state.servers[s];
        if !srv.is_active() {
            return Ok(DvfsDecision::Hold);
        }
        if self.state.hosted[s].is_empty() && sleep_idle {
            return Ok(DvfsDecision::Sleep);
        }
        let demand = self.state.server_demand_ghz(server)?;
        Ok(DvfsDecision::Frequency(
            self.arbitrator.choose_frequency(&srv.spec, demand),
        ))
    }

    /// Commit one decision per server (index order, sequential), updating
    /// transition counters deterministically. Decisions must come from
    /// [`DataCenter::dvfs_decision`] on this same state — the slice length
    /// must equal [`DataCenter::n_servers`].
    pub fn apply_dvfs_decisions(&mut self, decisions: &[DvfsDecision]) -> Result<()> {
        if decisions.len() != self.state.servers.len() {
            return Err(DcError::Invalid(format!(
                "{} DVFS decisions for {} servers",
                decisions.len(),
                self.state.servers.len()
            )));
        }
        for (s, d) in decisions.iter().enumerate() {
            match *d {
                DvfsDecision::Hold => {}
                DvfsDecision::Sleep => {
                    self.sleep_server(ServerHandle::from_index(s))?;
                }
                DvfsDecision::Frequency(f) => {
                    if !matches!(
                        self.state.servers[s].state,
                        ServerState::Active { freq_ghz } if freq_ghz == f
                    ) {
                        self.freq_transitions += 1;
                    }
                    self.state_mut().servers[s].state = ServerState::Active { freq_ghz: f };
                }
            }
        }
        Ok(())
    }

    /// Run the CPU resource arbitrator on every active server: set each to
    /// the lowest DVFS level covering its aggregate demand, and sleep idle
    /// servers if `sleep_idle` is set. Single-threaded convenience wrapper
    /// over the [`DataCenter::dvfs_decision`] /
    /// [`DataCenter::apply_dvfs_decisions`] pair.
    pub fn apply_dvfs(&mut self, sleep_idle: bool) -> Result<()> {
        let decisions = (0..self.n_servers())
            .map(|s| self.dvfs_decision(ServerHandle::from_index(s), sleep_idle))
            .collect::<Result<Vec<_>>>()?;
        self.apply_dvfs_decisions(&decisions)
    }

    // ---- power & energy ---------------------------------------------------

    /// Instantaneous power of one server (watts).
    pub fn server_power_watts(&self, server: ServerHandle) -> Result<f64> {
        let demand = self.server_demand_ghz(server)?;
        Ok(self.state.servers[server.index()].power_watts(demand))
    }

    /// Instantaneous total power (watts) across all servers.
    pub fn total_power_watts(&self) -> f64 {
        (0..self.state.servers.len())
            .map(|s| {
                self.server_power_watts(ServerHandle::from_index(s))
                    .expect("index in range by construction")
            })
            .sum()
    }

    /// Instantaneous facility power of one server (watts): IT power scaled
    /// by the site's current PUE. With PUE 1.0 (the default) this is
    /// bit-identical to [`DataCenter::server_power_watts`].
    pub fn server_facility_power_watts(&self, server: ServerHandle) -> Result<f64> {
        Ok(self.server_power_watts(server)? * self.state.server_pue(server))
    }

    /// Instantaneous total facility power (watts), index-order fold.
    pub fn total_facility_power_watts(&self) -> f64 {
        (0..self.state.servers.len())
            .map(|s| {
                self.server_facility_power_watts(ServerHandle::from_index(s))
                    .expect("index in range by construction")
            })
            .sum()
    }

    /// Advance accounting time by `dt_s` seconds at the current power draw.
    pub fn accumulate_energy(&mut self, dt_s: f64) {
        let dt = dt_s.max(0.0);
        self.energy_wh += self.total_power_watts() * dt / 3600.0;
        self.elapsed_s += dt;
    }

    /// Total energy consumed so far (watt-hours).
    pub fn energy_wh(&self) -> f64 {
        self.energy_wh
    }

    /// Accounted simulation time (seconds).
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }
}

impl Default for DataCenter {
    fn default() -> Self {
        DataCenter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerSpec;

    fn dc_with(n_quad: usize) -> DataCenter {
        let mut dc = DataCenter::new();
        for _ in 0..n_quad {
            dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        }
        dc
    }

    fn srv(i: usize) -> ServerHandle {
        ServerHandle::from_index(i)
    }

    #[test]
    fn add_and_query_topology() {
        let mut dc = dc_with(2);
        assert_eq!(dc.n_servers(), 2);
        assert!(dc.server(srv(5)).is_err());
        let h = dc.add_vm(VmSpec::new(1, 1.0, 1024.0)).unwrap();
        assert_eq!(dc.n_vms(), 1);
        assert!(dc.add_vm(VmSpec::new(1, 2.0, 512.0)).is_err());
        assert!(dc.vm(VmHandle::from_index(9)).is_err());
        assert_eq!(dc.placement_of(h), None);
        assert_eq!(dc.lookup(VmId(1)), Some(h));
        assert_eq!(dc.lookup(VmId(9)), None);
    }

    #[test]
    fn placement_and_demand_aggregation() {
        let mut dc = dc_with(1);
        let a = dc.add_vm(VmSpec::new(1, 1.5, 1024.0)).unwrap();
        let b = dc.add_vm(VmSpec::new(2, 2.0, 2048.0)).unwrap();
        dc.place_vm(a, srv(0)).unwrap();
        dc.place_vm(b, srv(0)).unwrap();
        assert_eq!(dc.server_demand_ghz(srv(0)).unwrap(), 3.5);
        assert_eq!(dc.server_memory_mib(srv(0)).unwrap(), 3072.0);
        assert!(!dc.is_overloaded(srv(0)).unwrap());
        dc.set_vm_demand(a, 11.0).unwrap();
        assert_eq!(dc.vm_demand(a).unwrap(), 11.0);
        assert!(dc.is_overloaded(srv(0)).unwrap());
        // Double placement rejected.
        assert!(dc.place_vm(a, srv(0)).is_err());
    }

    #[test]
    fn memory_constraint_enforced() {
        let mut dc = dc_with(1); // 16384 MiB
        let a = dc.add_vm(VmSpec::new(1, 0.5, 16000.0)).unwrap();
        let b = dc.add_vm(VmSpec::new(2, 0.5, 1000.0)).unwrap();
        dc.place_vm(a, srv(0)).unwrap();
        let err = dc.place_vm(b, srv(0)).unwrap_err();
        assert!(matches!(err, DcError::Invalid(_)));
    }

    #[test]
    fn placing_on_sleeping_server_wakes_it() {
        let mut dc = DataCenter::new();
        let s = dc.add_server(Server::asleep(ServerSpec::type_dual_2ghz()));
        let h = dc.add_vm(VmSpec::new(1, 1.0, 512.0)).unwrap();
        assert!(dc.active_servers().is_empty());
        dc.place_vm(h, s).unwrap();
        assert_eq!(dc.active_servers(), vec![s]);
        assert_eq!(dc.wake_count(), 1);
    }

    #[test]
    fn migration_moves_vm_and_records_cost() {
        let mut dc = dc_with(2);
        dc.set_migration_bandwidth(100.0);
        let h = dc.add_vm(VmSpec::new(1, 1.0, 2000.0)).unwrap();
        dc.place_vm(h, srv(0)).unwrap();
        let rec = dc.migrate_vm(h, srv(1)).unwrap();
        assert_eq!(rec.from, Some(0));
        assert_eq!(rec.to, 1);
        assert!((rec.duration_s - 20.0).abs() < 1e-12);
        assert_eq!(dc.placement_of(h), Some(srv(1)));
        assert!(dc.hosted_vms(srv(0)).unwrap().is_empty());
        assert_eq!(dc.migrations().len(), 1);
        // Self-migration rejected.
        assert!(dc.migrate_vm(h, srv(1)).is_err());
        // Unplaced VM rejected.
        let h2 = dc.add_vm(VmSpec::new(2, 1.0, 512.0)).unwrap();
        assert!(dc.migrate_vm(h2, srv(0)).is_err());
    }

    #[test]
    fn migration_rolls_back_on_destination_overflow() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz())); // 16 GiB
        dc.add_server(Server::active(ServerSpec::type_dual_1_5ghz())); // 4 GiB
        let h = dc.add_vm(VmSpec::new(1, 1.0, 8000.0)).unwrap();
        dc.place_vm(h, srv(0)).unwrap();
        assert!(dc.migrate_vm(h, srv(1)).is_err());
        // VM must still be on server 0.
        assert_eq!(dc.placement_of(h), Some(srv(0)));
        assert_eq!(dc.hosted_vms(srv(0)).unwrap(), &[h]);
        assert!(dc.migrations().is_empty());
    }

    #[test]
    fn sleep_requires_empty_server() {
        let mut dc = dc_with(1);
        let h = dc.add_vm(VmSpec::new(1, 1.0, 512.0)).unwrap();
        dc.place_vm(h, srv(0)).unwrap();
        assert!(dc.sleep_server(srv(0)).is_err());
        dc.unplace_vm(h).unwrap();
        dc.sleep_server(srv(0)).unwrap();
        assert!(dc.active_servers().is_empty());
        assert_eq!(dc.sleep_count(), 1);
        // Sleeping a sleeping server is a no-op.
        dc.sleep_server(srv(0)).unwrap();
        assert_eq!(dc.sleep_count(), 1);
    }

    #[test]
    fn dvfs_throttles_and_sleeps_idle() {
        let mut dc = dc_with(2);
        dc.set_arbitrator(CpuArbitrator::new(0.0));
        let h = dc.add_vm(VmSpec::new(1, 3.5, 1024.0)).unwrap();
        dc.place_vm(h, srv(0)).unwrap();
        dc.apply_dvfs(true).unwrap();
        // Server 0: demand 3.5 => 1.0 GHz level (capacity 4.0).
        match dc.server(srv(0)).unwrap().state {
            ServerState::Active { freq_ghz } => assert_eq!(freq_ghz, 1.0),
            _ => panic!("server 0 should stay active"),
        }
        // Server 1 idle => asleep.
        assert!(!dc.server(srv(1)).unwrap().is_active());
    }

    #[test]
    fn two_phase_dvfs_matches_one_shot() {
        let mut one_shot = dc_with(3);
        let mut two_phase = one_shot.clone();
        for (i, dc) in [&mut one_shot, &mut two_phase].into_iter().enumerate() {
            let _ = i;
            let a = dc.add_vm(VmSpec::new(1, 3.5, 1024.0)).unwrap();
            let b = dc.add_vm(VmSpec::new(2, 7.0, 1024.0)).unwrap();
            dc.place_vm(a, srv(0)).unwrap();
            dc.place_vm(b, srv(1)).unwrap();
        }
        one_shot.apply_dvfs(true).unwrap();
        let decisions = (0..two_phase.n_servers())
            .map(|s| two_phase.dvfs_decision(srv(s), true).unwrap())
            .collect::<Vec<_>>();
        two_phase.apply_dvfs_decisions(&decisions).unwrap();
        for s in 0..3 {
            assert_eq!(
                one_shot.server(srv(s)).unwrap().state,
                two_phase.server(srv(s)).unwrap().state,
                "server {s}"
            );
        }
        assert_eq!(one_shot.dvfs_transitions(), two_phase.dvfs_transitions());
        assert_eq!(one_shot.sleep_count(), two_phase.sleep_count());
    }

    #[test]
    fn power_and_energy_accounting() {
        let mut dc = dc_with(1);
        let h = dc.add_vm(VmSpec::new(1, 6.0, 1024.0)).unwrap();
        dc.place_vm(h, srv(0)).unwrap();
        // Active at 3 GHz, u = 0.5: P = 190 + 130*0.5 = 255 W.
        assert!((dc.total_power_watts() - 255.0).abs() < 1e-9);
        dc.accumulate_energy(3600.0);
        assert!((dc.energy_wh() - 255.0).abs() < 1e-9);
        assert_eq!(dc.elapsed_s(), 3600.0);
        // Negative dt ignored.
        dc.accumulate_energy(-5.0);
        assert_eq!(dc.elapsed_s(), 3600.0);
    }

    #[test]
    fn consolidation_saves_energy_end_to_end() {
        // Two lightly loaded servers vs one consolidated + one asleep.
        let mut spread = dc_with(2);
        for i in 0..2u64 {
            let h = spread.add_vm(VmSpec::new(i, 1.0, 1024.0)).unwrap();
            spread.place_vm(h, srv(i as usize)).unwrap();
        }
        spread.apply_dvfs(true).unwrap();
        let mut packed = dc_with(2);
        for i in 0..2u64 {
            let h = packed.add_vm(VmSpec::new(i, 1.0, 1024.0)).unwrap();
            packed.place_vm(h, srv(0)).unwrap();
        }
        packed.apply_dvfs(true).unwrap();
        assert!(
            packed.total_power_watts() < spread.total_power_watts() - 100.0,
            "packing should save the static power of one server: {} vs {}",
            packed.total_power_watts(),
            spread.total_power_watts()
        );
    }
}

#[cfg(test)]
mod arena_tests {
    use super::*;
    use crate::server::ServerSpec;

    fn srv(i: usize) -> ServerHandle {
        ServerHandle::from_index(i)
    }

    #[test]
    fn stale_handle_is_rejected_everywhere_after_removal() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        let h = dc.add_vm(VmSpec::new(7, 1.0, 512.0)).unwrap();
        dc.place_vm(h, srv(0)).unwrap();
        let spec = dc.remove_vm(h).unwrap();
        assert_eq!(spec.id, VmId(7));
        assert_eq!(dc.n_vms(), 0);
        assert!(dc.hosted_vms(srv(0)).unwrap().is_empty(), "unplaced first");
        for err in [
            dc.vm(h).unwrap_err(),
            dc.vm_demand(h).unwrap_err(),
            dc.remove_vm(h).unwrap_err(),
        ] {
            assert_eq!(err, DcError::StaleHandle(h.index()));
        }
        assert!(matches!(
            dc.set_vm_demand(h, 2.0),
            Err(DcError::StaleHandle(_))
        ));
        assert!(matches!(
            dc.place_vm(h, srv(0)),
            Err(DcError::StaleHandle(_))
        ));
        assert!(matches!(dc.unplace_vm(h), Err(DcError::StaleHandle(_))));
        assert!(matches!(
            dc.migrate_vm(h, srv(0)),
            Err(DcError::StaleHandle(_))
        ));
        assert_eq!(dc.placement_of(h), None);
    }

    #[test]
    fn removed_slots_are_recycled_under_a_new_generation() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        let a = dc.add_vm(VmSpec::new(1, 1.0, 512.0)).unwrap();
        let b = dc.add_vm(VmSpec::new(2, 1.0, 512.0)).unwrap();
        dc.remove_vm(a).unwrap();
        // The next arrival reuses slot 0 under generation 1; the arena does
        // not grow.
        let a2 = dc.add_vm(VmSpec::new(1, 2.0, 512.0)).unwrap();
        assert_ne!(a2, a);
        assert_eq!(a2.index(), a.index(), "freed slot is reused");
        assert_eq!(a2.generation(), a.generation() + 1);
        assert_eq!(dc.vm_slots(), 2, "arena stays at its high-water mark");
        assert_eq!(dc.n_vms(), 2);
        // The stale handle still refuses to alias the new tenant.
        assert_eq!(dc.vm(a).unwrap_err(), DcError::StaleHandle(a.index()));
        assert_eq!(dc.lookup(VmId(1)), Some(a2));
        assert_eq!(dc.vm_demand(a2).unwrap(), 2.0);
        // Untouched VM is unaffected.
        assert_eq!(dc.vm(b).unwrap().id, VmId(2));
        // Removing the recycled tenant frees the slot again for a third
        // generation; the generation-1 handle goes stale in turn.
        dc.remove_vm(a2).unwrap();
        let a3 = dc.add_vm(VmSpec::new(11, 3.0, 512.0)).unwrap();
        assert_eq!(a3.index(), a.index());
        assert_eq!(a3.generation(), 2);
        assert!(dc.vm(a2).is_err());
        assert_eq!(dc.vm(a3).unwrap().id, VmId(11));
        assert_eq!(dc.vm_slots(), 2);
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutation() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        let h = dc.add_vm(VmSpec::new(1, 1.5, 512.0)).unwrap();
        dc.place_vm(h, srv(0)).unwrap();
        let snap = dc.snapshot();
        // Mutate the live state in every dimension the snapshot can see.
        dc.set_vm_demand(h, 9.0).unwrap();
        dc.migrate_vm(h, srv(1)).unwrap();
        dc.apply_dvfs(true).unwrap();
        // The snapshot still shows the pre-mutation world...
        assert_eq!(snap.vm_demand(h).unwrap(), 1.5);
        assert_eq!(snap.placement_of(h), Some(srv(0)));
        assert_eq!(snap.hosted_vms(srv(0)).unwrap(), &[h]);
        assert!(snap.server(srv(1)).unwrap().is_active());
        // ...while the live state moved on.
        assert_eq!(dc.vm_demand(h).unwrap(), 9.0);
        assert_eq!(dc.placement_of(h), Some(srv(1)));
    }

    #[test]
    fn snapshots_share_storage_until_a_mutation() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        let h = dc.add_vm(VmSpec::new(1, 1.0, 512.0)).unwrap();
        let a = dc.snapshot();
        let b = dc.snapshot();
        // Snapshots are Arc clones of one block — no deep copy yet.
        assert!(Arc::ptr_eq(&a.state, &b.state));
        // Read-only traffic on the live state does not fork it either.
        let _ = dc.total_power_watts();
        let _ = dc.vm_demand(h).unwrap();
        assert!(Arc::ptr_eq(&a.state, &dc.snapshot().state));
        // The first mutation forks the block; the snapshots keep the old one.
        dc.set_vm_demand(h, 2.0).unwrap();
        assert!(!Arc::ptr_eq(&a.state, &dc.snapshot().state));
        assert!(Arc::ptr_eq(&a.state, &b.state));
        assert_eq!(a.vm_demand(h).unwrap(), 1.0);
    }

    #[test]
    fn label_order_iteration_matches_btreemap_semantics() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        // Insert labels out of order; iteration must come back sorted,
        // exactly as the old BTreeMap-keyed state iterated.
        for id in [9u64, 2, 40, 17] {
            dc.add_vm(VmSpec::new(id, 0.5, 256.0)).unwrap();
        }
        let labels: Vec<u64> = dc.vm_handles().map(|(id, _)| id.0).collect();
        assert_eq!(labels, vec![2, 9, 17, 40]);
        let snap = dc.snapshot();
        let snap_labels: Vec<u64> = snap.vm_handles().map(|(id, _)| id.0).collect();
        assert_eq!(snap_labels, labels);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::server::ServerSpec;

    fn srv(i: usize) -> ServerHandle {
        ServerHandle::from_index(i)
    }

    #[test]
    fn failing_a_host_evacuates_and_rejects_wake_and_placement() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        let a = dc.add_vm(VmSpec::new(1, 1.0, 512.0)).unwrap();
        let b = dc.add_vm(VmSpec::new(2, 1.5, 512.0)).unwrap();
        dc.place_vm(a, srv(0)).unwrap();
        dc.place_vm(b, srv(0)).unwrap();
        let evacuees = dc.fail_server(srv(0)).unwrap();
        assert_eq!(evacuees, vec![a, b], "placement order preserved");
        assert!(dc.is_failed(srv(0)).unwrap());
        assert_eq!(dc.placement_of(a), None);
        assert_eq!(dc.placement_of(b), None);
        assert!(dc.hosted_vms(srv(0)).unwrap().is_empty());
        // A failed host draws no power and offers no capacity.
        assert_eq!(dc.server_power_watts(srv(0)).unwrap(), 0.0);
        assert_eq!(dc.server(srv(0)).unwrap().capacity_ghz(), 0.0);
        assert!(!dc.server(srv(0)).unwrap().is_active());
        // It rejects wake and placement until recovered.
        assert_eq!(
            dc.wake_server(srv(0)).unwrap_err(),
            DcError::ServerFailed(0)
        );
        assert_eq!(
            dc.place_vm(a, srv(0)).unwrap_err(),
            DcError::ServerFailed(0)
        );
        // Failing again is a no-op with no evacuees.
        assert!(dc.fail_server(srv(0)).unwrap().is_empty());
    }

    #[test]
    fn recovery_returns_the_host_to_the_sleeping_pool() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_dual_2ghz()));
        dc.fail_server(srv(0)).unwrap();
        let wake_wh_before = dc.wake_energy_wh();
        dc.recover_server(srv(0)).unwrap();
        assert!(!dc.is_failed(srv(0)).unwrap());
        assert_eq!(dc.server(srv(0)).unwrap().state, ServerState::Sleeping);
        assert_eq!(
            dc.wake_energy_wh(),
            wake_wh_before,
            "recovery is not a wake"
        );
        // Recovering a healthy server is a no-op.
        dc.recover_server(srv(0)).unwrap();
        assert_eq!(dc.server(srv(0)).unwrap().state, ServerState::Sleeping);
        // The recovered host is wakeable and placeable again.
        let h = dc.add_vm(VmSpec::new(1, 1.0, 512.0)).unwrap();
        dc.place_vm(h, srv(0)).unwrap();
        assert!(dc.server(srv(0)).unwrap().is_active());
    }

    #[test]
    fn dvfs_pass_holds_failed_servers() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        let h = dc.add_vm(VmSpec::new(1, 2.0, 512.0)).unwrap();
        dc.place_vm(h, srv(1)).unwrap();
        dc.fail_server(srv(0)).unwrap();
        assert_eq!(
            dc.dvfs_decision(srv(0), true).unwrap(),
            DvfsDecision::Hold,
            "failed servers are held, never slept or retuned"
        );
        dc.apply_dvfs(true).unwrap();
        assert!(
            dc.is_failed(srv(0)).unwrap(),
            "DVFS pass leaves failure intact"
        );
        // Migration into a failed host rolls back cleanly.
        let err = dc.migrate_vm(h, srv(0)).unwrap_err();
        assert_eq!(err, DcError::ServerFailed(0));
        assert_eq!(dc.placement_of(h), Some(srv(1)));
    }
}

#[cfg(test)]
mod site_tests {
    use super::*;
    use crate::server::ServerSpec;

    fn srv(i: usize) -> ServerHandle {
        ServerHandle::from_index(i)
    }

    #[test]
    fn default_site_is_zero_with_unit_pue() {
        let mut dc = DataCenter::new();
        assert_eq!(dc.n_sites(), 0);
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        assert_eq!(dc.n_sites(), 1);
        assert_eq!(dc.server_site(srv(0)), 0);
        assert_eq!(dc.server_pue(srv(0)), 1.0);
        assert_eq!(dc.site_pue(7), 1.0, "unknown sites read 1.0");
        // With PUE 1.0 facility power is bit-identical to IT power.
        let it = dc.server_power_watts(srv(0)).unwrap();
        let fac = dc.server_facility_power_watts(srv(0)).unwrap();
        assert_eq!(it.to_bits(), fac.to_bits());
        assert_eq!(
            dc.total_power_watts().to_bits(),
            dc.total_facility_power_watts().to_bits()
        );
    }

    #[test]
    fn site_pue_scales_facility_power_only() {
        let mut dc = DataCenter::new();
        dc.add_server_in_site(Server::active(ServerSpec::type_quad_3ghz()), 0)
            .unwrap();
        dc.add_server_in_site(Server::active(ServerSpec::type_quad_3ghz()), 1)
            .unwrap();
        assert_eq!(dc.n_sites(), 2);
        dc.set_site_pue(1, 1.5).unwrap();
        let it0 = dc.server_power_watts(srv(0)).unwrap();
        let it1 = dc.server_power_watts(srv(1)).unwrap();
        assert_eq!(it0, it1, "identical hardware, identical IT power");
        assert_eq!(dc.server_facility_power_watts(srv(0)).unwrap(), it0);
        assert_eq!(dc.server_facility_power_watts(srv(1)).unwrap(), it1 * 1.5);
        assert_eq!(dc.total_facility_power_watts(), it0 + it1 * 1.5);
        // IT-power accessors are untouched by PUE.
        assert_eq!(dc.total_power_watts(), it0 + it1);
    }

    #[test]
    fn set_site_pue_validates_site_and_value() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        assert!(dc.set_site_pue(3, 1.2).is_err(), "unknown site");
        assert!(dc.set_site_pue(0, 0.8).is_err(), "PUE < 1 rejected");
        assert!(dc.set_site_pue(0, f64::NAN).is_err());
        assert!(dc.set_site_pue(0, f64::INFINITY).is_err());
        dc.set_site_pue(0, 1.35).unwrap();
        assert_eq!(dc.site_pue(0), 1.35);
    }

    #[test]
    fn unchanged_pue_does_not_fork_the_state_block() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        dc.set_site_pue(0, 1.4).unwrap();
        let snap = dc.snapshot();
        dc.set_site_pue(0, 1.4).unwrap();
        assert!(Arc::ptr_eq(&snap.state, &dc.snapshot().state));
        dc.set_site_pue(0, 1.5).unwrap();
        assert!(!Arc::ptr_eq(&snap.state, &dc.snapshot().state));
        assert_eq!(snap.server_pue(srv(0)), 1.4, "snapshot keeps the old PUE");
        assert_eq!(snap.server_site(srv(0)), 0);
        assert_eq!(snap.n_sites(), 1);
    }
}

#[cfg(test)]
mod accounting_tests {
    use super::*;
    use crate::server::ServerSpec;

    fn srv(i: usize) -> ServerHandle {
        ServerHandle::from_index(i)
    }

    #[test]
    fn wake_energy_accrues_per_transition() {
        let mut dc = DataCenter::new();
        let spec = ServerSpec::type_quad_3ghz();
        let expected = spec.power.static_watts * spec.wake_latency_s / 3600.0;
        dc.add_server(Server::asleep(spec));
        assert_eq!(dc.wake_energy_wh(), 0.0);
        dc.wake_server(srv(0)).unwrap();
        assert!((dc.wake_energy_wh() - expected).abs() < 1e-12);
        // Waking an already-active server adds nothing.
        dc.wake_server(srv(0)).unwrap();
        assert!((dc.wake_energy_wh() - expected).abs() < 1e-12);
        // Sleep and wake again: a second transition is charged.
        dc.sleep_server(srv(0)).unwrap();
        dc.wake_server(srv(0)).unwrap();
        assert!((dc.wake_energy_wh() - 2.0 * expected).abs() < 1e-12);
    }

    #[test]
    fn note_migration_records_cost_without_moving() {
        let mut dc = DataCenter::new();
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        dc.add_server(Server::active(ServerSpec::type_quad_3ghz()));
        dc.set_migration_bandwidth(100.0);
        let h = dc.add_vm(VmSpec::new(1, 1.0, 1500.0)).unwrap();
        dc.place_vm(h, srv(0)).unwrap();
        // Simulate a bulk-plan execution: detach, attach, note.
        dc.unplace_vm(h).unwrap();
        dc.place_vm(h, srv(1)).unwrap();
        let rec = dc.note_migration(h, srv(0), srv(1)).unwrap();
        assert_eq!(rec.from, Some(0));
        assert_eq!(rec.to, 1);
        assert!((rec.duration_s - 15.0).abs() < 1e-12);
        assert_eq!(dc.migrations().len(), 1);
        // A stale handle is rejected.
        assert!(dc
            .note_migration(VmHandle::from_index(99), srv(0), srv(1))
            .is_err());
    }
}
