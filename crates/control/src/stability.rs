//! Stability analysis of identified models and closed loops.
//!
//! The paper ensures MPC stability by the terminal constraint (eq. (4),
//! citing optimal-control theory \[14, 15\]). This module provides the
//! numerical counterparts used in our analysis and tests:
//!
//! * open-loop pole locations / spectral radius of an ARX model,
//! * a closed-loop simulation probe that measures settling behaviour of a
//!   controller against a given plant.

use crate::arx::ArxModel;
use crate::mpc::MpcController;
use crate::{ControlError, Result};
use vdc_linalg::{eigenvalues, Complex};

/// Poles of the ARX model (roots of `zⁿᵃ − a₁ zⁿᵃ⁻¹ − … − aₙₐ`).
///
/// FIR models (`na = 0`) have no poles and return an empty vector.
pub fn model_poles(model: &ArxModel) -> Result<Vec<Complex>> {
    match model.companion_matrix() {
        Some(cm) => Ok(eigenvalues(&cm)?),
        None => Ok(Vec::new()),
    }
}

/// Spectral radius of the model's autoregressive dynamics (0 for FIR).
pub fn model_spectral_radius(model: &ArxModel) -> Result<f64> {
    Ok(model_poles(model)?
        .iter()
        .fold(0.0_f64, |m, z| m.max(z.abs())))
}

/// Whether the open-loop model is BIBO stable (all poles strictly inside
/// the unit circle, with `margin` of slack: radius < 1 − margin).
pub fn is_stable(model: &ArxModel, margin: f64) -> Result<bool> {
    Ok(model_spectral_radius(model)? < 1.0 - margin)
}

/// Result of a closed-loop probe run.
#[derive(Debug, Clone)]
pub struct ClosedLoopProbe {
    /// Output trajectory of the plant under control.
    pub trajectory: Vec<f64>,
    /// Steps until the output first enters (and stays in) the ±`band`
    /// envelope around the set point; `None` if it never settles.
    pub settling_steps: Option<usize>,
    /// Maximum overshoot beyond the set point (same sign convention as the
    /// approach direction), 0 if none.
    pub overshoot: f64,
    /// Mean absolute tracking error over the final quarter of the run.
    pub steady_state_error: f64,
}

/// Simulate `controller` against `plant` for `steps` periods from initial
/// output `t0`, and report settling metrics with the given `band`
/// (absolute units) around the controller's set point.
///
/// The plant may differ from the controller's internal model; this is how
/// we probe robustness (the Fig. 4/5 experiments of the paper change the
/// workload away from the identification conditions).
pub fn probe_closed_loop(
    controller: &mut MpcController,
    plant: &ArxModel,
    steps: usize,
    t0: f64,
    band: f64,
) -> Result<ClosedLoopProbe> {
    if steps == 0 {
        return Err(ControlError::BadConfig("probe needs steps > 0".into()));
    }
    if plant.n_inputs() != controller.model().n_inputs() {
        return Err(ControlError::BadDimensions(
            "plant and controller input counts differ".into(),
        ));
    }
    let ts = controller.config().setpoint;
    let mut t_hist = vec![t0; plant.na().max(1)];
    let mut c_hist = vec![controller.current_allocation().to_vec(); plant.nb()];
    let mut t = t0;
    let mut trajectory = Vec::with_capacity(steps);
    for _ in 0..steps {
        let step = controller.step(t)?;
        c_hist.insert(0, step.allocation);
        c_hist.truncate(plant.nb());
        t = plant.predict(&t_hist, &c_hist)?;
        t_hist.insert(0, t);
        t_hist.truncate(plant.na().max(1));
        trajectory.push(t);
    }

    // Settling: last index outside the band, +1.
    let outside = trajectory.iter().rposition(|&v| (v - ts).abs() > band);
    let settling_steps = match outside {
        None => Some(0),
        Some(idx) if idx + 1 < steps => Some(idx + 1),
        Some(_) => None,
    };

    // Overshoot relative to approach direction.
    let from_above = t0 > ts;
    let overshoot = trajectory
        .iter()
        .map(|&v| if from_above { ts - v } else { v - ts })
        .fold(0.0_f64, f64::max);

    let tail = &trajectory[steps - (steps / 4).max(1)..];
    let steady_state_error = tail.iter().map(|&v| (v - ts).abs()).sum::<f64>() / tail.len() as f64;

    Ok(ClosedLoopProbe {
        trajectory,
        settling_steps,
        overshoot,
        steady_state_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpc::MpcConfig;
    use crate::reference::ReferenceTrajectory;

    fn plant() -> ArxModel {
        ArxModel::new(
            vec![0.45],
            vec![vec![-180.0, -120.0], vec![-60.0, -40.0]],
            1400.0,
        )
        .unwrap()
    }

    fn controller(setpoint: f64, tref: f64) -> MpcController {
        let reference = ReferenceTrajectory::new(4.0, tref).unwrap();
        let cfg = MpcConfig {
            prediction_horizon: 8,
            control_horizon: 2,
            q_weight: 1.0,
            r_weight: vec![1e-4, 1e-4],
            reference,
            setpoint,
            c_min: vec![0.2, 0.2],
            c_max: vec![3.0, 3.0],
            delta_max: Some(0.5),
            terminal_constraint: true,
        };
        MpcController::new(plant(), cfg, &[1.0, 1.0]).unwrap()
    }

    #[test]
    fn poles_of_paper_model() {
        let m = plant();
        let poles = model_poles(&m).unwrap();
        assert_eq!(poles.len(), 1);
        assert!((poles[0].re - 0.45).abs() < 1e-9);
        assert!(is_stable(&m, 0.0).unwrap());
        assert!((model_spectral_radius(&m).unwrap() - 0.45).abs() < 1e-9);
    }

    #[test]
    fn unstable_model_detected() {
        let m = ArxModel::new(vec![1.1], vec![vec![1.0]], 0.0).unwrap();
        assert!(!is_stable(&m, 0.0).unwrap());
        // Marginally stable fails a positive margin.
        let m2 = ArxModel::new(vec![0.98], vec![vec![1.0]], 0.0).unwrap();
        assert!(is_stable(&m2, 0.0).unwrap());
        assert!(!is_stable(&m2, 0.05).unwrap());
    }

    #[test]
    fn fir_has_no_poles_and_is_stable() {
        let m = ArxModel::new(vec![], vec![vec![2.0]], 0.0).unwrap();
        assert!(model_poles(&m).unwrap().is_empty());
        assert_eq!(model_spectral_radius(&m).unwrap(), 0.0);
        assert!(is_stable(&m, 0.1).unwrap());
    }

    #[test]
    fn closed_loop_probe_settles() {
        let mut ctrl = controller(1000.0, 12.0);
        let probe = probe_closed_loop(&mut ctrl, &plant(), 80, 2000.0, 20.0).unwrap();
        let settle = probe.settling_steps.expect("should settle");
        assert!(settle < 40, "settling steps {settle}");
        assert!(probe.steady_state_error < 10.0);
    }

    #[test]
    fn faster_reference_settles_faster() {
        let mut fast = controller(1000.0, 6.0);
        let mut slow = controller(1000.0, 60.0);
        let p_fast = probe_closed_loop(&mut fast, &plant(), 100, 2000.0, 25.0).unwrap();
        let p_slow = probe_closed_loop(&mut slow, &plant(), 100, 2000.0, 25.0).unwrap();
        let (sf, ss) = (
            p_fast.settling_steps.expect("fast settles"),
            p_slow.settling_steps.expect("slow settles"),
        );
        assert!(sf <= ss, "fast {sf} should settle no slower than slow {ss}");
    }

    #[test]
    fn probe_validates_inputs() {
        let mut ctrl = controller(1000.0, 12.0);
        assert!(probe_closed_loop(&mut ctrl, &plant(), 0, 2000.0, 10.0).is_err());
        let wrong = ArxModel::new(vec![0.4], vec![vec![-100.0]], 1000.0).unwrap();
        assert!(probe_closed_loop(&mut ctrl, &wrong, 10, 2000.0, 10.0).is_err());
    }
}
