//! Model Predictive Controller for multi-tier response-time control
//! (§IV-B of the paper).
//!
//! Each control period the controller minimizes the cost of eq. (2),
//!
//! ```text
//! J(k) = Σ_{i=1..P} ||t(k+i|k) − ref(k+i|k)||²_Q
//!      + Σ_{i=0..M−1} ||Δc(k+i|k)||²_R
//! ```
//!
//! over the input trajectory `ΔC = [Δc(k), …, Δc(k+M−1|k)]`, subject to the
//! terminal constraint `t(k+M|k) = Ts` (eq. (4)) and the allocation box
//! `c_min ≤ c ≤ c_max`, then applies only the first move (receding horizon).
//!
//! ## Formulation
//!
//! The predictor is the classic step-response (DMC/GPC) lifting of the ARX
//! model: `t_pred = F + Ψ·ΔC`, where `F` is the free response (future
//! outputs with all future moves zero) and `Ψ` holds the model's
//! step-response coefficients. A constant output-disturbance estimate
//! `d(k) = t_meas(k) − t_model(k)` is added to all predictions, which gives
//! the controller integral action and offset-free tracking under model
//! mismatch — essential because the real plant (a closed queueing network)
//! is nonlinear while eq. (1) is linear.
//!
//! ## Solving
//!
//! The cost is a least-squares objective; with the terminal constraint it is
//! solved by the KKT system of [`vdc_linalg::lstsq_eq`] (the paper's "least
//! squares solver"). If the resulting first move violates the allocation
//! box, the problem is re-solved as a box-constrained QP
//! ([`vdc_linalg::BoxQp`]) with the terminal constraint folded in as a
//! large quadratic penalty. Bounds are enforced exactly on the first move —
//! the only one ever applied — and as a rate limit on later moves.

use crate::arx::ArxModel;
use crate::reference::ReferenceTrajectory;
use crate::{ControlError, Result};
use vdc_linalg::{lstsq_eq, BoxQp, Matrix, QpError, Vector};
use vdc_telemetry::Telemetry;

/// Weight of the terminal-constraint penalty relative to `Q` when the
/// box-QP fallback path is taken.
const TERMINAL_PENALTY_FACTOR: f64 = 1e4;

/// Configuration of an MPC response-time controller.
#[derive(Debug, Clone)]
pub struct MpcConfig {
    /// Prediction horizon `P` (periods).
    pub prediction_horizon: usize,
    /// Control horizon `M ≤ P` (periods).
    pub control_horizon: usize,
    /// Tracking-error weight `Q` (> 0).
    pub q_weight: f64,
    /// Control-penalty weight per input channel, `R(i)` of eq. (2). A higher
    /// weight for a channel makes the controller more reluctant to change
    /// that VM's allocation (§IV-B: "can be tuned to represent a preference
    /// among the VMs").
    pub r_weight: Vec<f64>,
    /// Reference trajectory (eq. (3)).
    pub reference: ReferenceTrajectory,
    /// Response-time set point `Ts` (e.g. milliseconds).
    pub setpoint: f64,
    /// Per-channel minimum CPU allocation (GHz).
    pub c_min: Vec<f64>,
    /// Per-channel maximum CPU allocation (GHz).
    pub c_max: Vec<f64>,
    /// Maximum per-period allocation change per channel (GHz); `None`
    /// disables rate limiting.
    pub delta_max: Option<f64>,
    /// Whether to impose the terminal constraint `t(k+M|k) = Ts` (eq. (4)).
    pub terminal_constraint: bool,
}

impl MpcConfig {
    /// Sensible defaults for a response-time controller over `n_inputs`
    /// tier VMs: P = 8, M = 2, Q = 1, R = 100 per channel.
    pub fn defaults(n_inputs: usize, setpoint: f64, reference: ReferenceTrajectory) -> MpcConfig {
        MpcConfig {
            prediction_horizon: 8,
            control_horizon: 2,
            q_weight: 1.0,
            r_weight: vec![100.0; n_inputs],
            reference,
            setpoint,
            c_min: vec![0.1; n_inputs],
            c_max: vec![4.0; n_inputs],
            delta_max: Some(1.0),
            terminal_constraint: true,
        }
    }

    fn validate(&self, n_inputs: usize) -> Result<()> {
        if self.control_horizon == 0 || self.prediction_horizon < self.control_horizon {
            return Err(ControlError::BadConfig(format!(
                "need 1 <= M <= P, got M={} P={}",
                self.control_horizon, self.prediction_horizon
            )));
        }
        if self.q_weight <= 0.0 {
            return Err(ControlError::BadConfig("Q weight must be positive".into()));
        }
        if self.r_weight.len() != n_inputs
            || self.c_min.len() != n_inputs
            || self.c_max.len() != n_inputs
        {
            return Err(ControlError::BadConfig(format!(
                "weights/bounds must have one entry per input ({n_inputs})"
            )));
        }
        if self.r_weight.iter().any(|&r| r <= 0.0) {
            return Err(ControlError::BadConfig("R weights must be positive".into()));
        }
        if self
            .c_min
            .iter()
            .zip(&self.c_max)
            .any(|(lo, hi)| lo > hi || !lo.is_finite() || !hi.is_finite())
        {
            return Err(ControlError::BadConfig(
                "allocation bounds must be finite with c_min <= c_max".into(),
            ));
        }
        if let Some(d) = self.delta_max {
            if d <= 0.0 {
                return Err(ControlError::BadConfig("delta_max must be positive".into()));
            }
        }
        Ok(())
    }
}

/// Outcome of one control step.
#[derive(Debug, Clone)]
pub struct MpcStep {
    /// The new allocation vector `c(k+1)` to apply (GHz per channel).
    pub allocation: Vec<f64>,
    /// The first move `Δc(k)` actually taken.
    pub delta: Vec<f64>,
    /// Predicted response time at the end of the prediction horizon.
    pub predicted_terminal: f64,
    /// Current disturbance estimate (measurement minus model prediction).
    pub disturbance: f64,
    /// Whether the box-QP fallback path was used.
    pub saturated: bool,
}

/// Receding-horizon MPC controller for one multi-tier application.
///
/// # Examples
///
/// ```
/// use vdc_control::{ArxModel, MpcConfig, MpcController, ReferenceTrajectory};
///
/// let model = ArxModel::new(
///     vec![0.45],
///     vec![vec![-180.0, -120.0], vec![-60.0, -40.0]],
///     1400.0,
/// ).unwrap();
/// let cfg = MpcConfig {
///     setpoint: 1000.0,
///     r_weight: vec![1e2; 2],
///     ..MpcConfig::defaults(2, 1000.0, ReferenceTrajectory::new(4.0, 12.0).unwrap())
/// };
/// let mut ctrl = MpcController::new(model, cfg, &[1.0, 1.0]).unwrap();
/// // Response time above the set point: the controller adds CPU.
/// let step = ctrl.step(1800.0).unwrap();
/// assert!(step.delta.iter().sum::<f64>() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct MpcController {
    model: ArxModel,
    cfg: MpcConfig,
    /// Dynamic matrix Ψ: `P x (M·m)`; column `j·m + ch` is the effect of
    /// move `j` on channel `ch`.
    psi: Matrix,
    /// Measured output history, most recent first (length ≥ na).
    t_hist: Vec<f64>,
    /// Applied input history `c(k−1), c(k−2), …`, most recent first.
    c_hist: Vec<Vec<f64>>,
    /// Allocation currently applied (`c(k)`).
    c_current: Vec<f64>,
    /// Output disturbance estimate (constant-offset form).
    disturbance: f64,
    /// Smoothing gain applied to the disturbance innovation: 1.0 is the
    /// raw DMC bias update; < 1.0 is the steady-state Kalman filter of
    /// `crate::observer` (use `DisturbanceKalman::new(..).gain()` to derive
    /// it from noise variances).
    disturbance_gain: f64,
    /// Number of dynamic-matrix rebuilds since construction (the cache
    /// generation of Ψ; see [`MpcController::predictor_generation`]).
    generation: u64,
    /// Cooling-coupling weight of the facility-power term (see
    /// [`MpcController::set_energy_weight`]); `0.0` — the default — keeps
    /// the objective exactly the paper's eq. (2).
    energy_weight: f64,
    /// Site PUE observed for the current period (≥ 1); scales the
    /// facility-power term when the cooling coupling is enabled.
    pue: f64,
    /// Observability sink (disabled by default; see [`MpcController::set_telemetry`]).
    telemetry: Telemetry,
}

impl MpcController {
    /// Build a controller for `model` with configuration `cfg`, starting
    /// from an initial allocation `c0` (clamped into the configured box).
    pub fn new(model: ArxModel, cfg: MpcConfig, c0: &[f64]) -> Result<MpcController> {
        let m = model.n_inputs();
        cfg.validate(m)?;
        if c0.len() != m {
            return Err(ControlError::BadDimensions(format!(
                "initial allocation has {} entries, model has {m} inputs",
                c0.len()
            )));
        }
        let psi = build_dynamic_matrix(&model, cfg.prediction_horizon, cfg.control_horizon)?;
        let mut c_current = c0.to_vec();
        for (c, (&lo, &hi)) in c_current.iter_mut().zip(cfg.c_min.iter().zip(&cfg.c_max)) {
            *c = c.clamp(lo, hi);
        }
        let na = model.na().max(1);
        let nb = model.nb();
        Ok(MpcController {
            model,
            cfg,
            psi,
            t_hist: Vec::with_capacity(na),
            c_hist: vec![c_current.clone(); nb],
            c_current,
            disturbance: 0.0,
            disturbance_gain: 1.0,
            generation: 0,
            energy_weight: 0.0,
            pue: 1.0,
            telemetry: Telemetry::disabled(),
        })
    }

    /// Construct a controller with explicit internal state: output history
    /// `t_hist` (most recent first, `t(k−1), t(k−2), …`), input history
    /// `c_hist` (most recent first, `c(k−1), …`), and the currently applied
    /// allocation `c_current = c(k)`. Histories shorter than the model
    /// orders are padded with their last entry (or with `c_current`).
    ///
    /// This is the entry point for closed-loop analysis (see
    /// `stability`/`analysis`): it lets the per-step control law be probed
    /// as a pure function of the loop state.
    pub fn with_state(
        model: ArxModel,
        cfg: MpcConfig,
        t_hist: &[f64],
        c_hist: &[Vec<f64>],
        c_current: &[f64],
    ) -> Result<MpcController> {
        let mut ctrl = MpcController::new(model, cfg, c_current)?;
        ctrl.t_hist = t_hist.to_vec();
        ctrl.t_hist.truncate(ctrl.model.na().max(1));
        ctrl.c_hist = c_hist.to_vec();
        while ctrl.c_hist.len() < ctrl.model.nb() {
            let pad = ctrl
                .c_hist
                .last()
                .cloned()
                .unwrap_or_else(|| ctrl.c_current.clone());
            ctrl.c_hist.push(pad);
        }
        ctrl.c_hist.truncate(ctrl.model.nb().max(1));
        Ok(ctrl)
    }

    /// The model in use.
    pub fn model(&self) -> &ArxModel {
        &self.model
    }

    /// The configuration in use.
    pub fn config(&self) -> &MpcConfig {
        &self.cfg
    }

    /// Currently applied allocation `c(k)`.
    pub fn current_allocation(&self) -> &[f64] {
        &self.c_current
    }

    /// Change the set point at run time (the Fig. 5 sweep does this).
    pub fn set_setpoint(&mut self, ts: f64) {
        self.cfg.setpoint = ts;
    }

    /// Set the disturbance-observer smoothing gain, in `(0, 1]`. Values
    /// outside the interval are clamped. See [`crate::observer`].
    pub fn set_disturbance_gain(&mut self, gain: f64) {
        self.disturbance_gain = gain.clamp(1e-6, 1.0);
    }

    /// Enable (or disable, with `0.0`) the cooling-coupled facility-power
    /// term in the objective: `ρ_cool · Σ_j ||c(k+j|k)||²` with
    /// `ρ_cool = weight · PUE` (see [`set_pue`](MpcController::set_pue)).
    /// Predicted *allocation levels* — not moves — are penalized, so the
    /// controller leans toward the cheapest allocation mix that still
    /// satisfies the terminal constraint; a higher facility PUE (more
    /// cooling watts per IT watt) leans harder. With the default `0.0` the
    /// stacked system is exactly the paper's eq. (2), bit for bit.
    ///
    /// The weight is in `Q` units per GHz² (tracking errors are ms², so
    /// values of order 1e1–1e3 trade visible energy against residual
    /// tracking slack). Rejects negative or non-finite weights.
    pub fn set_energy_weight(&mut self, weight: f64) -> Result<()> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(ControlError::BadConfig(format!(
                "energy weight {weight} must be finite and >= 0"
            )));
        }
        self.energy_weight = weight;
        Ok(())
    }

    /// The cooling-coupling weight (`0.0` = off).
    pub fn energy_weight(&self) -> f64 {
        self.energy_weight
    }

    /// Observe the current site PUE (facility watts per IT watt, ≥ 1).
    /// Only consulted while the cooling coupling is enabled
    /// ([`set_energy_weight`](MpcController::set_energy_weight)); with a
    /// zero weight the observation is recorded but cannot perturb the
    /// control law. Non-finite values are ignored; values below 1 clamp.
    pub fn set_pue(&mut self, pue: f64) {
        if pue.is_finite() {
            self.pue = pue.max(1.0);
        }
    }

    /// The most recently observed site PUE.
    pub fn pue(&self) -> f64 {
        self.pue
    }

    /// Replace the reference trajectory at run time — e.g. a supervisor
    /// widening the approach band while re-entering closed loop after a
    /// sensor outage. The cached step-response predictor depends only on
    /// the model and horizons, so it survives the swap.
    pub fn set_reference(&mut self, reference: ReferenceTrajectory) {
        self.cfg.reference = reference;
    }

    /// Attach a telemetry sink. Each [`step`](MpcController::step) then
    /// records the predictor-assembly vs QP-solve phase split
    /// (`mpc.predict_ns` / `mpc.solve_ns`), fallback counters, and
    /// [`update_model`](MpcController::update_model) the dynamic-matrix
    /// rebuild cost (`mpc.predictor_rebuild_ns`). Telemetry only observes —
    /// it never alters the computed control law.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry sink (disabled unless
    /// [`set_telemetry`](MpcController::set_telemetry) was called). Lets
    /// wrappers that rebuild the controller carry the sink over.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The cache generation of the dynamic matrix Ψ: the number of true
    /// predictor rebuilds since construction. Stays flat across
    /// [`update_model`](MpcController::update_model) calls that hand back
    /// an unchanged model and across bounds/allocation edits, which never
    /// touch Ψ.
    pub fn predictor_generation(&self) -> u64 {
        self.generation
    }

    /// Replace the model (e.g. after an RLS update) and rebuild the
    /// dynamic matrix. Histories are preserved where possible.
    ///
    /// Ψ depends only on the model and the horizons, so a replacement
    /// equal to the current model (a sysid refresh that converged) keeps
    /// the cached predictor: no rebuild, no
    /// `mpc.predictor_rebuild_ns`/`mpc.model_rebuilds` activity.
    pub fn update_model(&mut self, model: ArxModel) -> Result<()> {
        if model.n_inputs() != self.model.n_inputs() {
            return Err(ControlError::BadDimensions(
                "replacement model has different input count".into(),
            ));
        }
        if model == self.model {
            return Ok(());
        }
        let rebuild_span = self.telemetry.timer("mpc.predictor_rebuild_ns");
        self.psi = build_dynamic_matrix(
            &model,
            self.cfg.prediction_horizon,
            self.cfg.control_horizon,
        )?;
        rebuild_span.finish();
        self.telemetry.incr("mpc.model_rebuilds", 1);
        self.generation += 1;
        while self.c_hist.len() < model.nb() {
            self.c_hist.push(
                self.c_hist
                    .last()
                    .cloned()
                    .unwrap_or_else(|| self.c_current.clone()),
            );
        }
        self.c_hist.truncate(model.nb().max(1));
        self.model = model;
        Ok(())
    }

    /// Replace the per-channel allocation box in place.
    ///
    /// State resets exactly as a rebuild at the current allocation would —
    /// `c_current` clamped into the new box, histories re-seeded,
    /// disturbance cleared — but the cached dynamic matrix Ψ survives: it
    /// depends only on the model and the horizons, never on bounds.
    pub fn set_allocation_bounds(&mut self, c_min: Vec<f64>, c_max: Vec<f64>) -> Result<()> {
        let m = self.model.n_inputs();
        let mut cfg = self.cfg.clone();
        cfg.c_min = c_min;
        cfg.c_max = c_max;
        cfg.validate(m)?;
        self.cfg = cfg;
        let c0 = self.c_current.clone();
        self.reset_state(&c0);
        Ok(())
    }

    /// Force the applied allocation to `alloc` (clamped into the box) and
    /// reset histories and the disturbance estimate — the
    /// starvation-watchdog path. Keeps the cached dynamic matrix Ψ.
    pub fn force_allocation(&mut self, alloc: &[f64]) -> Result<()> {
        let m = self.model.n_inputs();
        if alloc.len() != m {
            return Err(ControlError::BadDimensions(format!(
                "forced allocation has {} entries, model has {m} inputs",
                alloc.len()
            )));
        }
        self.reset_state(alloc);
        Ok(())
    }

    /// Re-seed the controller state at allocation `c0` the way
    /// [`new`](MpcController::new) does, leaving the model, config, Ψ,
    /// disturbance gain, and telemetry sink untouched.
    fn reset_state(&mut self, c0: &[f64]) {
        let mut c_current = c0.to_vec();
        for (c, (&lo, &hi)) in c_current
            .iter_mut()
            .zip(self.cfg.c_min.iter().zip(&self.cfg.c_max))
        {
            *c = c.clamp(lo, hi);
        }
        self.c_hist = vec![c_current.clone(); self.model.nb()];
        self.c_current = c_current;
        self.t_hist.clear();
        self.disturbance = 0.0;
    }

    /// Feed the response-time measurement for the period that just ended and
    /// compute the next allocation. Returns the applied step.
    pub fn step(&mut self, t_measured: f64) -> Result<MpcStep> {
        let m = self.model.n_inputs();

        // Disturbance estimate: how far off was the model's one-step
        // prediction of this measurement? The measured period ran under
        // `c_current`, so it is the most recent input lag.
        if self.t_hist.len() >= self.model.na() && self.c_hist.len() + 1 >= self.model.nb() {
            let mut pred_c: Vec<Vec<f64>> = Vec::with_capacity(self.model.nb());
            pred_c.push(self.c_current.clone());
            for past in &self.c_hist {
                if pred_c.len() >= self.model.nb() {
                    break;
                }
                pred_c.push(past.clone());
            }
            while pred_c.len() < self.model.nb() {
                pred_c.push(self.c_current.clone());
            }
            let t_model = self.model.predict(&self.t_hist, &pred_c)?;
            let innovation = t_measured - t_model;
            self.disturbance += self.disturbance_gain * (innovation - self.disturbance);
        }

        // Update output history with the new measurement.
        self.t_hist.insert(0, t_measured);
        self.t_hist.truncate(self.model.na().max(1));

        // Not enough history yet for the model order: hold allocations.
        if self.t_hist.len() < self.model.na() {
            return Ok(MpcStep {
                allocation: self.c_current.clone(),
                delta: vec![0.0; m],
                predicted_terminal: t_measured,
                disturbance: self.disturbance,
                saturated: false,
            });
        }

        self.telemetry.incr("mpc.steps", 1);
        let p = self.cfg.prediction_horizon;
        let mm = self.cfg.control_horizon;
        let n_dec = mm * m;

        // Predictor phase: free response plus stacked-objective assembly.
        let predict_span = self.telemetry.timer("mpc.predict_ns");

        // Free response: future outputs if allocations stay at c_current.
        let free = self.free_response(p)?;

        // Reference trajectory from the current measurement.
        let reference = self.cfg.reference.horizon(self.cfg.setpoint, t_measured, p);

        // Stacked least-squares objective:
        //   || sqrt(Q) (Ψ ΔC − (ref − F)) ||² + || sqrt(R̄) ΔC ||²
        // plus, when the cooling coupling is on, the facility-power rows
        //   || sqrt(ρ_cool) c(k+j|k) ||²  for j = 0..M−1
        // where c(k+j|k) = c(k) + Σ_{i≤j} Δc(k+i|k) and ρ_cool scales with
        // the observed site PUE. A zero weight appends nothing, so the
        // default stacked system is bit-identical to the paper's eq. (2).
        let rho_cool = self.energy_weight * self.pue;
        let n_cool = if rho_cool > 0.0 { n_dec } else { 0 };
        let sq = self.cfg.q_weight.sqrt();
        let mut a = Matrix::zeros(p + n_dec + n_cool, n_dec);
        let mut b = vec![0.0; p + n_dec + n_cool];
        for i in 0..p {
            for j in 0..n_dec {
                a[(i, j)] = sq * self.psi[(i, j)];
            }
            b[i] = sq * (reference[i] - free[i]);
        }
        for j in 0..n_dec {
            let ch = j % m;
            a[(p + j, j)] = self.cfg.r_weight[ch].sqrt();
        }
        if n_cool > 0 {
            // Lower-triangular move selector: the level at horizon step j
            // accumulates every move up to and including j.
            let sc = rho_cool.sqrt();
            for j in 0..mm {
                for ch in 0..m {
                    let row = p + n_dec + j * m + ch;
                    for i in 0..=j {
                        a[(row, i * m + ch)] = sc;
                    }
                    b[row] = -sc * self.c_current[ch];
                }
            }
        }
        let a_rhs = Vector::from_vec(b);

        // Terminal constraint (eq. (4)): t(k+M|k) = Ts.
        let terminal_row = self.psi.block(mm - 1, 0, 1, n_dec);
        let terminal_rhs = self.cfg.setpoint - free[mm - 1];
        predict_span.finish();

        // Solve phase: KKT least squares, then the Hildreth box-QP fallback
        // if the first move leaves the allocation box.
        let solve_span = self.telemetry.timer("mpc.solve_ns");
        let mut saturated = false;
        let delta_all = if self.cfg.terminal_constraint {
            match lstsq_eq(
                &a,
                &a_rhs,
                &terminal_row,
                &Vector::from_slice(&[terminal_rhs]),
            ) {
                Ok(sol) => sol,
                Err(_) => {
                    // Singular KKT (e.g. terminal row ~ 0): fall back to the
                    // unconstrained least-squares solution.
                    self.telemetry.incr("mpc.kkt_singular", 1);
                    vdc_linalg::lstsq(&a, &a_rhs)?
                }
            }
        } else {
            vdc_linalg::lstsq(&a, &a_rhs)?
        };

        // Box check on the first move.
        let (lo, hi) = self.first_move_bounds();
        let first_ok =
            (0..m).all(|ch| delta_all[ch] >= lo[ch] - 1e-12 && delta_all[ch] <= hi[ch] + 1e-12);

        let delta_all = if first_ok {
            delta_all
        } else {
            saturated = true;
            self.telemetry.incr("mpc.qp_fallbacks", 1);
            self.solve_box_qp(&a, &a_rhs, &terminal_row, terminal_rhs, &lo, &hi)?
        };
        solve_span.finish();

        // Apply the first move (receding horizon).
        let mut delta: Vec<f64> = (0..m).map(|ch| delta_all[ch]).collect();
        let mut c_next = self.c_current.clone();
        for ch in 0..m {
            delta[ch] = delta[ch].clamp(lo[ch], hi[ch]);
            c_next[ch] = (c_next[ch] + delta[ch]).clamp(self.cfg.c_min[ch], self.cfg.c_max[ch]);
        }

        // Predicted terminal output under the chosen trajectory.
        let mut predicted_terminal = free[p - 1];
        for j in 0..n_dec {
            predicted_terminal += self.psi[(p - 1, j)] * delta_all[j];
        }

        // Shift input history: c_current becomes c(k−1) next period.
        self.c_hist.insert(0, self.c_current.clone());
        self.c_hist.truncate(self.model.nb().max(1));
        self.c_current = c_next.clone();

        Ok(MpcStep {
            allocation: c_next,
            delta,
            predicted_terminal,
            disturbance: self.disturbance,
            saturated,
        })
    }

    /// Bounds on the first move so that `c(k+1)` stays inside the box and
    /// the rate limit.
    fn first_move_bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let m = self.model.n_inputs();
        let mut lo = Vec::with_capacity(m);
        let mut hi = Vec::with_capacity(m);
        for ch in 0..m {
            let mut l = self.cfg.c_min[ch] - self.c_current[ch];
            let mut h = self.cfg.c_max[ch] - self.c_current[ch];
            if let Some(d) = self.cfg.delta_max {
                l = l.max(-d);
                h = h.min(d);
            }
            // Guard against an inverted interval when c_current drifted out
            // of a freshly narrowed box.
            if l > h {
                let mid = 0.5 * (l + h);
                l = mid;
                h = mid;
            }
            lo.push(l);
            hi.push(h);
        }
        (lo, hi)
    }

    /// Box-QP fallback: minimize the stacked LS objective with the terminal
    /// constraint as a quadratic penalty, under bounds on the first move
    /// (and the rate limit on later moves).
    fn solve_box_qp(
        &self,
        a: &Matrix,
        rhs: &Vector,
        terminal_row: &Matrix,
        terminal_rhs: f64,
        lo_first: &[f64],
        hi_first: &[f64],
    ) -> Result<Vector> {
        let n_dec = a.cols();
        let m = self.model.n_inputs();
        // H = 2(AᵀA + ρ ψᵀψ), f = −2(Aᵀ rhs + ρ ψᵀ d).
        let mut h = a.gram();
        let at_rhs = a.tr_matvec(rhs)?;
        let rho = TERMINAL_PENALTY_FACTOR * self.cfg.q_weight;
        let mut f = Vec::with_capacity(n_dec);
        for j in 0..n_dec {
            f.push(-2.0 * (at_rhs[j] + rho * terminal_row[(0, j)] * terminal_rhs));
        }
        if self.cfg.terminal_constraint {
            for i in 0..n_dec {
                for j in 0..n_dec {
                    h[(i, j)] += rho * terminal_row[(0, i)] * terminal_row[(0, j)];
                }
            }
        }
        h.scale_mut(2.0);
        let rate = self.cfg.delta_max.unwrap_or(f64::INFINITY);
        let wide = if rate.is_finite() { rate } else { 1e12 };
        let mut lb = vec![-wide; n_dec];
        let mut ub = vec![wide; n_dec];
        lb[..m].copy_from_slice(lo_first);
        ub[..m].copy_from_slice(hi_first);
        let qp = BoxQp::new(h, Vector::from_vec(f), lb, ub)
            .map_err(|e| ControlError::Qp(e.to_string()))?;
        match qp.solve() {
            Ok(sol) => Ok(sol.x),
            // Iteration cap: accept the best feasible iterate.
            Err(QpError::IterationLimit(best)) => Ok(best.x),
            Err(e) => Err(ControlError::Qp(e.to_string())),
        }
    }

    /// Free response of the (disturbance-corrected) model over `p` periods:
    /// predicted outputs when all future allocations stay at `c_current`.
    fn free_response(&self, p: usize) -> Result<Vec<f64>> {
        let mut t_sim = self.t_hist.clone();
        // Future input history: most recent first, c(k) = c_current.
        let mut c_sim: Vec<Vec<f64>> = Vec::with_capacity(self.model.nb());
        c_sim.push(self.c_current.clone());
        for past in &self.c_hist {
            if c_sim.len() >= self.model.nb() {
                break;
            }
            c_sim.push(past.clone());
        }
        while c_sim.len() < self.model.nb() {
            c_sim.push(self.c_current.clone());
        }
        let mut out = Vec::with_capacity(p);
        for _ in 0..p {
            let t = self.model.predict(&t_sim, &c_sim)? + self.disturbance;
            out.push(t);
            t_sim.insert(0, t);
            t_sim.truncate(self.model.na().max(1));
            c_sim.insert(0, self.c_current.clone());
            c_sim.truncate(self.model.nb().max(1));
        }
        Ok(out)
    }
}

/// Build the dynamic (step-response) matrix Ψ of the GPC predictor.
///
/// `Ψ[i−1, j·m + ch] = s_ch(i − j)` where `s_ch` is the step response of
/// channel `ch` and `s_ch(l) = 0` for `l ≤ 0`: move `j` (applied at time
/// `k+j`) begins to affect the output at time `k+j+1`.
fn build_dynamic_matrix(model: &ArxModel, p: usize, m_horizon: usize) -> Result<Matrix> {
    let m = model.n_inputs();
    let mut psi = Matrix::zeros(p, m_horizon * m);
    for ch in 0..m {
        let s = model.step_response(ch, p)?;
        for j in 0..m_horizon {
            for i in (j + 1)..=p {
                // Effect on t(k+i|k) of a move at k+j: s[i - j - 1].
                psi[(i - 1, j * m + ch)] = s[i - j - 1];
            }
        }
    }
    Ok(psi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plant_model() -> ArxModel {
        // Two-tier paper-like model: more CPU => lower response time.
        ArxModel::new(
            vec![0.45],
            vec![vec![-180.0, -120.0], vec![-60.0, -40.0]],
            1400.0,
        )
        .unwrap()
    }

    fn default_cfg(setpoint: f64) -> MpcConfig {
        let reference = ReferenceTrajectory::new(4.0, 12.0).unwrap();
        MpcConfig {
            prediction_horizon: 8,
            control_horizon: 2,
            q_weight: 1.0,
            r_weight: vec![1e-4, 1e-4],
            reference,
            setpoint,
            c_min: vec![0.2, 0.2],
            c_max: vec![3.0, 3.0],
            delta_max: Some(0.5),
            terminal_constraint: true,
        }
    }

    /// Closed loop against the exact model: the controller should drive the
    /// output to the set point.
    fn run_closed_loop(
        ctrl: &mut MpcController,
        plant: &ArxModel,
        steps: usize,
        t0: f64,
    ) -> Vec<f64> {
        let mut t_hist = vec![t0; plant.na()];
        let mut c_hist = vec![ctrl.current_allocation().to_vec(); plant.nb()];
        let mut t = t0;
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            let step = ctrl.step(t).unwrap();
            // Plant evolves under the newly applied allocation.
            c_hist.insert(0, step.allocation.clone());
            c_hist.truncate(plant.nb());
            t = plant.predict(&t_hist, &c_hist).unwrap();
            t_hist.insert(0, t);
            t_hist.truncate(plant.na().max(1));
            out.push(t);
        }
        out
    }

    #[test]
    fn config_validation() {
        let model = plant_model();
        let mut cfg = default_cfg(1000.0);
        cfg.control_horizon = 0;
        assert!(MpcController::new(model.clone(), cfg, &[1.0, 1.0]).is_err());

        let mut cfg = default_cfg(1000.0);
        cfg.prediction_horizon = 1; // < M = 2
        assert!(MpcController::new(model.clone(), cfg, &[1.0, 1.0]).is_err());

        let mut cfg = default_cfg(1000.0);
        cfg.q_weight = 0.0;
        assert!(MpcController::new(model.clone(), cfg, &[1.0, 1.0]).is_err());

        let mut cfg = default_cfg(1000.0);
        cfg.r_weight = vec![1.0]; // wrong length
        assert!(MpcController::new(model.clone(), cfg, &[1.0, 1.0]).is_err());

        let mut cfg = default_cfg(1000.0);
        cfg.c_min = vec![2.0, 2.0];
        cfg.c_max = vec![1.0, 1.0];
        assert!(MpcController::new(model.clone(), cfg, &[1.0, 1.0]).is_err());

        let cfg = default_cfg(1000.0);
        assert!(MpcController::new(model, cfg, &[1.0]).is_err()); // c0 length
    }

    #[test]
    fn converges_to_setpoint_on_exact_model() {
        let model = plant_model();
        let cfg = default_cfg(1000.0);
        let mut ctrl = MpcController::new(model.clone(), cfg, &[1.0, 1.0]).unwrap();
        let traj = run_closed_loop(&mut ctrl, &model, 60, 2000.0);
        let tail = &traj[40..];
        for &t in tail {
            assert!((t - 1000.0).abs() < 10.0, "tail value {t}");
        }
    }

    #[test]
    fn converges_from_below_too() {
        let model = plant_model();
        let cfg = default_cfg(1200.0);
        let mut ctrl = MpcController::new(model.clone(), cfg, &[2.0, 2.0]).unwrap();
        let traj = run_closed_loop(&mut ctrl, &model, 60, 400.0);
        assert!((traj[59] - 1200.0).abs() < 10.0, "final {}", traj[59]);
    }

    #[test]
    fn offset_free_under_model_mismatch() {
        // Plant has different gains and bias than the controller's model:
        // the disturbance estimator must remove the steady-state offset.
        let ctrl_model = plant_model();
        let plant = ArxModel::new(
            vec![0.5],
            vec![vec![-150.0, -100.0], vec![-50.0, -30.0]],
            1550.0,
        )
        .unwrap();
        let mut cfg = default_cfg(1000.0);
        // The mismatched plant has weaker gains; widen the box so the set
        // point stays reachable (t∞ = 3100 − 400c₁ − 260c₂ needs c ≈ 3.2).
        cfg.c_max = vec![6.0, 6.0];
        let mut ctrl = MpcController::new(ctrl_model, cfg, &[1.0, 1.0]).unwrap();
        let traj = run_closed_loop(&mut ctrl, &plant, 120, 1800.0);
        let tail_mean: f64 = traj[90..].iter().sum::<f64>() / 30.0;
        assert!(
            (tail_mean - 1000.0).abs() < 20.0,
            "steady state {tail_mean} should be near 1000"
        );
    }

    #[test]
    fn respects_allocation_box() {
        let model = plant_model();
        let mut cfg = default_cfg(100.0); // unreachably low set point
        cfg.c_max = vec![1.5, 1.5];
        let mut ctrl = MpcController::new(model.clone(), cfg, &[1.0, 1.0]).unwrap();
        let _ = run_closed_loop(&mut ctrl, &model, 40, 2000.0);
        let c = ctrl.current_allocation();
        // Allocations must saturate at the max without exceeding it.
        for &ci in c {
            assert!(ci <= 1.5 + 1e-9, "allocation {ci} exceeds c_max");
        }
        assert!(c[0] > 1.49, "should be pushed to the max, got {}", c[0]);
    }

    #[test]
    fn respects_rate_limit() {
        let model = plant_model();
        let mut cfg = default_cfg(500.0);
        cfg.delta_max = Some(0.1);
        let mut ctrl = MpcController::new(model.clone(), cfg, &[0.5, 0.5]).unwrap();
        let mut prev = ctrl.current_allocation().to_vec();
        let mut t = 2500.0;
        for _ in 0..20 {
            let step = ctrl.step(t).unwrap();
            for (a, p) in step.allocation.iter().zip(&prev) {
                assert!((a - p).abs() <= 0.1 + 1e-9, "rate limit violated");
            }
            prev = step.allocation.clone();
            t -= 50.0;
        }
    }

    #[test]
    fn setpoint_change_tracked() {
        let model = plant_model();
        let cfg = default_cfg(1000.0);
        let mut ctrl = MpcController::new(model.clone(), cfg, &[1.0, 1.0]).unwrap();
        let _ = run_closed_loop(&mut ctrl, &model, 50, 1500.0);
        ctrl.set_setpoint(800.0);
        let traj = run_closed_loop(&mut ctrl, &model, 50, 1000.0);
        assert!((traj[49] - 800.0).abs() < 12.0, "final {}", traj[49]);
    }

    #[test]
    fn without_terminal_constraint_still_converges() {
        let model = plant_model();
        let mut cfg = default_cfg(1000.0);
        cfg.terminal_constraint = false;
        let mut ctrl = MpcController::new(model.clone(), cfg, &[1.0, 1.0]).unwrap();
        let traj = run_closed_loop(&mut ctrl, &model, 80, 2000.0);
        assert!((traj[79] - 1000.0).abs() < 15.0);
    }

    #[test]
    fn update_model_rebuilds_predictor() {
        let model = plant_model();
        let cfg = default_cfg(1000.0);
        let mut ctrl = MpcController::new(model, cfg, &[1.0, 1.0]).unwrap();
        let stronger = ArxModel::new(
            vec![0.3],
            vec![vec![-250.0, -150.0], vec![-80.0, -60.0]],
            1300.0,
        )
        .unwrap();
        ctrl.update_model(stronger.clone()).unwrap();
        assert_eq!(ctrl.model(), &stronger);
        let traj = run_closed_loop(&mut ctrl, &stronger, 60, 1800.0);
        assert!((traj[59] - 1000.0).abs() < 10.0);
        // Input-count mismatch rejected.
        let wrong = ArxModel::new(vec![0.3], vec![vec![-250.0]], 1300.0).unwrap();
        assert!(ctrl.update_model(wrong).is_err());
    }

    #[test]
    fn unchanged_model_keeps_cached_predictor() {
        let model = plant_model();
        let cfg = default_cfg(1000.0);
        let mut ctrl = MpcController::new(model.clone(), cfg, &[1.0, 1.0]).unwrap();
        let telemetry = Telemetry::enabled();
        ctrl.set_telemetry(telemetry.clone());
        assert_eq!(ctrl.predictor_generation(), 0);
        // A sysid refresh that converged to the same coefficients: cache hit.
        ctrl.update_model(model.clone()).unwrap();
        ctrl.update_model(model).unwrap();
        assert_eq!(ctrl.predictor_generation(), 0);
        let rebuilds = |t: &Telemetry| {
            t.counter_values()
                .into_iter()
                .find(|(n, _)| n == "mpc.model_rebuilds")
                .map(|(_, v)| v)
                .unwrap_or(0)
        };
        assert_eq!(rebuilds(&telemetry), 0, "cache hits must not rebuild");
        // A genuinely different model: cache miss, one rebuild.
        let stronger = ArxModel::new(
            vec![0.3],
            vec![vec![-250.0, -150.0], vec![-80.0, -60.0]],
            1300.0,
        )
        .unwrap();
        ctrl.update_model(stronger).unwrap();
        assert_eq!(ctrl.predictor_generation(), 1);
        assert_eq!(rebuilds(&telemetry), 1);
    }

    #[test]
    fn bounds_change_in_place_matches_full_rebuild() {
        let model = plant_model();
        let cfg = default_cfg(1000.0);
        let mut in_place = MpcController::new(model.clone(), cfg.clone(), &[1.0, 1.0]).unwrap();
        in_place
            .set_allocation_bounds(vec![0.4, 0.4], vec![2.5, 2.5])
            .unwrap();
        assert_eq!(
            in_place.predictor_generation(),
            0,
            "a bounds edit must not rebuild the predictor"
        );
        let mut narrowed = cfg;
        narrowed.c_min = vec![0.4, 0.4];
        narrowed.c_max = vec![2.5, 2.5];
        let mut rebuilt = MpcController::new(model, narrowed, &[1.0, 1.0]).unwrap();
        for t in [1800.0, 1500.0, 1200.0, 1100.0] {
            let a = in_place.step(t).unwrap();
            let b = rebuilt.step(t).unwrap();
            for (x, y) in a.allocation.iter().zip(&b.allocation) {
                assert_eq!(x.to_bits(), y.to_bits(), "in-place diverged at t={t}");
            }
        }
        // Invalid boxes are rejected and leave the old bounds in force.
        assert!(in_place
            .set_allocation_bounds(vec![3.0, 3.0], vec![1.0, 1.0])
            .is_err());
        assert_eq!(in_place.config().c_min, vec![0.4, 0.4]);
    }

    #[test]
    fn force_allocation_matches_full_rebuild() {
        let model = plant_model();
        let cfg = default_cfg(1000.0);
        let mut in_place = MpcController::new(model.clone(), cfg.clone(), &[1.0, 1.0]).unwrap();
        let _ = in_place.step(1900.0).unwrap();
        in_place.force_allocation(&[2.2, 2.4]).unwrap();
        assert_eq!(in_place.predictor_generation(), 0);
        let mut rebuilt = MpcController::new(model, cfg, &[2.2, 2.4]).unwrap();
        for t in [1400.0, 1200.0, 1050.0] {
            let a = in_place.step(t).unwrap();
            let b = rebuilt.step(t).unwrap();
            for (x, y) in a.allocation.iter().zip(&b.allocation) {
                assert_eq!(x.to_bits(), y.to_bits(), "forced state diverged at t={t}");
            }
        }
        assert!(in_place.force_allocation(&[1.0]).is_err(), "length checked");
    }

    #[test]
    fn higher_r_weight_moves_channel_less() {
        let model = plant_model();
        let mut cfg = default_cfg(800.0);
        cfg.r_weight = vec![1e-6, 10.0]; // channel 1 heavily penalized
        cfg.delta_max = None; // keep the rate limit from masking the split
        let mut ctrl = MpcController::new(model, cfg, &[1.0, 1.0]).unwrap();
        let step = ctrl.step(900.0).unwrap();
        assert!(
            step.delta[0].abs() > step.delta[1].abs(),
            "cheap channel should move more: {:?}",
            step.delta
        );
    }

    #[test]
    fn zero_energy_weight_is_bit_identical_even_with_pue_observed() {
        // The cooling gate: a controller that merely *observes* PUE but has
        // no energy weight must produce every bit the plain controller does.
        let model = plant_model();
        let cfg = default_cfg(1000.0);
        let mut plain = MpcController::new(model.clone(), cfg.clone(), &[1.0, 1.0]).unwrap();
        let mut observed = MpcController::new(model, cfg, &[1.0, 1.0]).unwrap();
        observed.set_energy_weight(0.0).unwrap();
        observed.set_pue(1.73);
        for t in [1900.0, 1500.0, 1200.0, 1050.0, 990.0] {
            let a = plain.step(t).unwrap();
            let b = observed.step(t).unwrap();
            for (x, y) in a.allocation.iter().zip(&b.allocation) {
                assert_eq!(x.to_bits(), y.to_bits(), "PUE observation perturbed t={t}");
            }
        }
    }

    #[test]
    fn energy_weight_validation() {
        let model = plant_model();
        let mut ctrl = MpcController::new(model, default_cfg(1000.0), &[1.0, 1.0]).unwrap();
        assert!(ctrl.set_energy_weight(-1.0).is_err());
        assert!(ctrl.set_energy_weight(f64::NAN).is_err());
        assert!(ctrl.set_energy_weight(50.0).is_ok());
        assert_eq!(ctrl.energy_weight(), 50.0);
        ctrl.set_pue(f64::NAN); // ignored
        assert_eq!(ctrl.pue(), 1.0);
        ctrl.set_pue(0.2); // clamps up
        assert_eq!(ctrl.pue(), 1.0);
        ctrl.set_pue(1.6);
        assert_eq!(ctrl.pue(), 1.6);
    }

    #[test]
    fn cooling_term_shrinks_the_allocation_norm() {
        // With the facility-power rows active the controller settles on a
        // cheaper allocation mix (lower Σc²) while the terminal constraint
        // keeps it tracking the set point.
        let model = plant_model();
        let run = |weight: f64, pue: f64| {
            let mut ctrl =
                MpcController::new(model.clone(), default_cfg(1000.0), &[1.0, 1.0]).unwrap();
            ctrl.set_energy_weight(weight).unwrap();
            ctrl.set_pue(pue);
            let traj = run_closed_loop(&mut ctrl, &model, 80, 2000.0);
            let norm: f64 = ctrl.current_allocation().iter().map(|c| c * c).sum();
            (norm, traj[79])
        };
        let (norm_plain, t_plain) = run(0.0, 1.0);
        let (norm_cool, t_cool) = run(100.0, 1.5);
        assert!(
            norm_cool < norm_plain - 1e-6,
            "cooling norm {norm_cool} must undercut plain {norm_plain}"
        );
        assert!((t_plain - 1000.0).abs() < 15.0, "plain tracks: {t_plain}");
        assert!(
            (t_cool - 1000.0).abs() < 60.0,
            "cooling still tracks: {t_cool}"
        );
        // A hotter facility leans harder on the allocation.
        let (norm_hot, _) = run(100.0, 3.0);
        assert!(
            norm_hot <= norm_cool + 1e-9,
            "PUE 3.0 norm {norm_hot} vs PUE 1.5 norm {norm_cool}"
        );
    }

    #[test]
    fn dynamic_matrix_is_lower_block_toeplitz() {
        let model = plant_model();
        let psi = build_dynamic_matrix(&model, 6, 3).unwrap();
        let m = model.n_inputs();
        // Entries above the move time are zero: move j affects only i > j.
        for j in 0..3 {
            for ch in 0..m {
                for i in 0..j {
                    assert_eq!(psi[(i, j * m + ch)], 0.0);
                }
            }
        }
        // Toeplitz structure: psi[i][move 0] == psi[i+1][move 1].
        for i in 1..5 {
            for ch in 0..m {
                assert!((psi[(i, ch)] - psi[(i + 1 - 1 + 1, m + ch)]).abs() < 1e-12);
            }
        }
    }
}
