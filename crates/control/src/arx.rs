//! MISO ARX models of application response time.
//!
//! The paper's system model (eq. (1)) for a two-tier application is
//!
//! ```text
//! t(k) = α₁₁ t(k−1) + β₁₁ᵀ c(k−1) + β₁₂ᵀ c(k−2) + γ(k−1)
//! ```
//!
//! i.e. an ARX model with one output lag and two input lags over the vector
//! of per-tier CPU allocations. This module implements the general class:
//! `na` output lags, `nb` input lags, `m` inputs, plus a constant bias.

use crate::{ControlError, Result};
use vdc_linalg::Matrix;

/// A Multiple-Input Single-Output ARX model
///
/// ```text
/// t(k) = Σ_{j=1..na} a[j−1]·t(k−j) + Σ_{j=1..nb} b[j−1]ᵀ·c(k−j) + bias
/// ```
///
/// where `t` is the (scalar) 90-percentile response time and `c` is the
/// vector of CPU allocations of the application's tier VMs (GHz).
///
/// # Examples
///
/// ```
/// use vdc_control::ArxModel;
///
/// // The two-tier model shape of eq. (1): more CPU lowers response time.
/// let m = ArxModel::new(
///     vec![0.45],
///     vec![vec![-180.0, -120.0], vec![-60.0, -40.0]],
///     1400.0,
/// ).unwrap();
/// assert!(m.dc_gain(0).unwrap() < 0.0);
/// let t = m.predict(&[900.0], &[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
/// assert!(t > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArxModel {
    /// Output-lag coefficients `a[0..na]` (`a[j-1]` multiplies `t(k-j)`).
    a: Vec<f64>,
    /// Input-lag coefficient vectors: `b[j-1][i]` multiplies `c_i(k-j)`.
    b: Vec<Vec<f64>>,
    /// Constant bias term (absorbs the γ disturbance mean).
    bias: f64,
    /// Number of inputs (tiers).
    n_inputs: usize,
}

impl ArxModel {
    /// Construct a model from explicit coefficients.
    ///
    /// `b` must be non-empty and rectangular: every lag vector must have the
    /// same length (the input count). `a` may be empty (pure FIR model).
    pub fn new(a: Vec<f64>, b: Vec<Vec<f64>>, bias: f64) -> Result<ArxModel> {
        if b.is_empty() {
            return Err(ControlError::BadDimensions(
                "ARX model needs at least one input lag".into(),
            ));
        }
        let n_inputs = b[0].len();
        if n_inputs == 0 {
            return Err(ControlError::BadDimensions(
                "ARX model needs at least one input".into(),
            ));
        }
        if b.iter().any(|lag| lag.len() != n_inputs) {
            return Err(ControlError::BadDimensions(
                "ARX input-lag vectors have inconsistent lengths".into(),
            ));
        }
        Ok(ArxModel {
            a,
            b,
            bias,
            n_inputs,
        })
    }

    /// Number of output lags `na`.
    pub fn na(&self) -> usize {
        self.a.len()
    }

    /// Number of input lags `nb`.
    pub fn nb(&self) -> usize {
        self.b.len()
    }

    /// Number of inputs (tier VMs).
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Output-lag coefficients.
    pub fn a(&self) -> &[f64] {
        &self.a
    }

    /// Input-lag coefficient vectors.
    pub fn b(&self) -> &[Vec<f64>] {
        &self.b
    }

    /// Bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// One-step prediction.
    ///
    /// `t_hist[j]` is `t(k−1−j)` (most recent first) and `c_hist[j]` is
    /// `c(k−1−j)`. Histories must be at least `na` / `nb` long.
    pub fn predict(&self, t_hist: &[f64], c_hist: &[Vec<f64>]) -> Result<f64> {
        if t_hist.len() < self.na() {
            return Err(ControlError::BadDimensions(format!(
                "need {} output lags, got {}",
                self.na(),
                t_hist.len()
            )));
        }
        if c_hist.len() < self.nb() {
            return Err(ControlError::BadDimensions(format!(
                "need {} input lags, got {}",
                self.nb(),
                c_hist.len()
            )));
        }
        let mut t = self.bias;
        for (j, &aj) in self.a.iter().enumerate() {
            t += aj * t_hist[j];
        }
        for (j, bj) in self.b.iter().enumerate() {
            let c = &c_hist[j];
            if c.len() != self.n_inputs {
                return Err(ControlError::BadDimensions(format!(
                    "input lag {} has {} entries, model has {} inputs",
                    j,
                    c.len(),
                    self.n_inputs
                )));
            }
            for (bi, ci) in bj.iter().zip(c) {
                t += bi * ci;
            }
        }
        Ok(t)
    }

    /// Simulate the model forward over an input sequence.
    ///
    /// `inputs[k]` is `c(k)`; the output at step `k` uses inputs up to
    /// `c(k−1)`. Initial output history is zero; initial inputs are zero.
    /// Returns `t(1..=inputs.len())` — the free run of the model.
    pub fn simulate(&self, inputs: &[Vec<f64>]) -> Result<Vec<f64>> {
        let n = inputs.len();
        let mut t_hist: Vec<f64> = vec![0.0; self.na()];
        let mut c_hist: Vec<Vec<f64>> = vec![vec![0.0; self.n_inputs]; self.nb()];
        let mut out = Vec::with_capacity(n);
        for input in inputs {
            // Shift input history: most recent first.
            c_hist.rotate_right(1);
            c_hist[0] = input.clone();
            let t = self.predict(&t_hist, &c_hist)?;
            if !t_hist.is_empty() {
                t_hist.rotate_right(1);
                t_hist[0] = t;
            }
            out.push(t);
        }
        Ok(out)
    }

    /// Step-response coefficients of input channel `ch`: `s[i]` is the output
    /// at time `i+1` after a unit step on channel `ch` applied from time 0,
    /// with zero initial conditions and zero bias.
    ///
    /// These are the entries of the MPC dynamic matrix: a step of size
    /// `Δc_ch` at time `k+m` contributes `Δc_ch · s[i−m−1]` to `t(k+i|k)`.
    pub fn step_response(&self, ch: usize, horizon: usize) -> Result<Vec<f64>> {
        if ch >= self.n_inputs {
            return Err(ControlError::BadDimensions(format!(
                "channel {} out of range ({} inputs)",
                ch, self.n_inputs
            )));
        }
        let zero_bias = ArxModel {
            bias: 0.0,
            ..self.clone()
        };
        let mut step = vec![0.0; self.n_inputs];
        step[ch] = 1.0;
        let inputs = vec![step; horizon];
        zero_bias.simulate(&inputs)
    }

    /// Steady-state (DC) gain from input channel `ch` to the output:
    /// `Σ_j b[j][ch] / (1 − Σ_j a[j])`. `None` if the denominator vanishes
    /// (integrating model).
    pub fn dc_gain(&self, ch: usize) -> Option<f64> {
        if ch >= self.n_inputs {
            return None;
        }
        let denom = 1.0 - self.a.iter().sum::<f64>();
        if denom.abs() < 1e-12 {
            return None;
        }
        let num: f64 = self.b.iter().map(|lag| lag[ch]).sum();
        Some(num / denom)
    }

    /// Companion matrix of the autoregressive part; its eigenvalues are the
    /// model poles. Returns `None` for models with `na = 0` (FIR: no poles).
    pub fn companion_matrix(&self) -> Option<Matrix> {
        let na = self.na();
        if na == 0 {
            return None;
        }
        let mut m = Matrix::zeros(na, na);
        for (j, &aj) in self.a.iter().enumerate() {
            m[(0, j)] = aj;
        }
        for i in 1..na {
            m[(i, i - 1)] = 1.0;
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example model of eq. (1) in the paper, with coefficients in the
    /// right ballpark for a two-tier application (response time in ms,
    /// allocation in GHz; more CPU => lower response time, so b < 0).
    fn paper_like_model() -> ArxModel {
        ArxModel::new(
            vec![0.45],
            vec![vec![-180.0, -120.0], vec![-60.0, -40.0]],
            1400.0,
        )
        .unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(ArxModel::new(vec![0.5], vec![], 0.0).is_err());
        assert!(ArxModel::new(vec![0.5], vec![vec![]], 0.0).is_err());
        assert!(ArxModel::new(vec![0.5], vec![vec![1.0, 2.0], vec![1.0]], 0.0).is_err());
        let m = paper_like_model();
        assert_eq!(m.na(), 1);
        assert_eq!(m.nb(), 2);
        assert_eq!(m.n_inputs(), 2);
    }

    #[test]
    fn predict_matches_hand_computation() {
        let m = paper_like_model();
        // t(k) = 0.45*800 + (-180*1.0 - 120*0.8) + (-60*1.2 - 40*0.9) + 1400
        let t = m
            .predict(&[800.0], &[vec![1.0, 0.8], vec![1.2, 0.9]])
            .unwrap();
        let expected = 0.45 * 800.0 + (-180.0 - 96.0) + (-72.0 - 36.0) + 1400.0;
        assert!((t - expected).abs() < 1e-9, "{t} vs {expected}");
    }

    #[test]
    fn predict_rejects_short_history() {
        let m = paper_like_model();
        assert!(m.predict(&[], &[vec![1.0, 1.0], vec![1.0, 1.0]]).is_err());
        assert!(m.predict(&[800.0], &[vec![1.0, 1.0]]).is_err());
        assert!(m.predict(&[800.0], &[vec![1.0], vec![1.0, 1.0]]).is_err());
    }

    #[test]
    fn simulate_converges_to_dc_value_under_constant_input() {
        let m = paper_like_model();
        let c = vec![1.0, 1.0];
        let out = m.simulate(&vec![c.clone(); 200]).unwrap();
        let last = *out.last().unwrap();
        // Steady state: t = (bias + Σb·c) / (1 − Σa)
        let ss = (1400.0 + (-180.0 - 120.0 - 60.0 - 40.0)) / (1.0 - 0.45);
        assert!((last - ss).abs() < 1e-6, "{last} vs {ss}");
    }

    #[test]
    fn step_response_settles_at_dc_gain() {
        let m = paper_like_model();
        let s = m.step_response(0, 100).unwrap();
        let gain = m.dc_gain(0).unwrap();
        assert!((s.last().unwrap() - gain).abs() < 1e-9);
        // More CPU lowers response time: negative gain.
        assert!(gain < 0.0);
        // First coefficient is b[0][0] (one-step delay).
        assert!((s[0] - (-180.0)).abs() < 1e-12);
    }

    #[test]
    fn step_response_bad_channel() {
        assert!(paper_like_model().step_response(2, 10).is_err());
    }

    #[test]
    fn dc_gain_integrator_is_none() {
        let m = ArxModel::new(vec![1.0], vec![vec![1.0]], 0.0).unwrap();
        assert!(m.dc_gain(0).is_none());
        assert!(m.dc_gain(5).is_none());
    }

    #[test]
    fn companion_matrix_poles() {
        // t(k) = 0.5 t(k-1) + 0.2 t(k-2) + u: companion [[0.5,0.2],[1,0]].
        let m = ArxModel::new(vec![0.5, 0.2], vec![vec![1.0]], 0.0).unwrap();
        let cm = m.companion_matrix().unwrap();
        assert_eq!(cm[(0, 0)], 0.5);
        assert_eq!(cm[(0, 1)], 0.2);
        assert_eq!(cm[(1, 0)], 1.0);
        // FIR model has no companion matrix.
        let fir = ArxModel::new(vec![], vec![vec![1.0]], 0.0).unwrap();
        assert!(fir.companion_matrix().is_none());
    }

    #[test]
    fn fir_model_simulation() {
        // t(k) = 2 c(k-1): pure gain with one delay.
        let m = ArxModel::new(vec![], vec![vec![2.0]], 0.0).unwrap();
        let out = m.simulate(&[vec![1.0], vec![3.0], vec![5.0]]).unwrap();
        assert_eq!(out, vec![2.0, 6.0, 10.0]);
    }
}
