//! Disturbance observers.
//!
//! The MPC corrects its predictions with an output-disturbance estimate
//! `d(k) = t_meas(k) − t_model(k)` (the classic DMC bias update, which is
//! what gives the loop integral action). With noisy 90-percentile
//! measurements, feeding the raw innovation through (gain 1.0) makes the
//! controller chase sampling noise; this module provides the optimal
//! smoothing alternative: a steady-state scalar Kalman filter for a
//! random-walk disturbance observed in white noise.
//!
//! Model: `d(k+1) = d(k) + w(k)`, `y(k) = d(k) + v(k)` with
//! `Var[w] = q`, `Var[v] = r`. The steady-state gain solves the scalar
//! Riccati recursion `P⁺ = P + q`, `K = P⁺/(P⁺+r)`, `P = (1−K)P⁺`.

use crate::{ControlError, Result};

/// Steady-state scalar Kalman filter for an output disturbance.
#[derive(Debug, Clone, Copy)]
pub struct DisturbanceKalman {
    /// Steady-state Kalman gain in `(0, 1]`.
    gain: f64,
    /// Current disturbance estimate.
    estimate: f64,
}

impl DisturbanceKalman {
    /// Build from noise variances: `process_var` (how fast the true
    /// disturbance wanders per period) and `measurement_var` (the variance
    /// of the p90 sampling noise). Both must be positive.
    pub fn new(process_var: f64, measurement_var: f64) -> Result<DisturbanceKalman> {
        if process_var <= 0.0 || !process_var.is_finite() {
            return Err(ControlError::BadConfig(format!(
                "process variance {process_var} must be positive"
            )));
        }
        if measurement_var <= 0.0 || !measurement_var.is_finite() {
            return Err(ControlError::BadConfig(format!(
                "measurement variance {measurement_var} must be positive"
            )));
        }
        // Closed form of the steady-state Riccati fixed point:
        // P = (q + sqrt(q² + 4qr)) / 2, K = (P+q)/(P+q+r)… iterate instead,
        // which is robust and obviously correct.
        let (q, r) = (process_var, measurement_var);
        let mut p = q;
        for _ in 0..200 {
            let p_pred = p + q;
            let k = p_pred / (p_pred + r);
            let p_next = (1.0 - k) * p_pred;
            if (p_next - p).abs() < 1e-15 * (1.0 + p) {
                p = p_next;
                break;
            }
            p = p_next;
        }
        let p_pred = p + q;
        Ok(DisturbanceKalman {
            gain: p_pred / (p_pred + r),
            estimate: 0.0,
        })
    }

    /// Directly specify the gain (1.0 reproduces the unfiltered DMC bias
    /// update; smaller = heavier smoothing).
    pub fn with_gain(gain: f64) -> Result<DisturbanceKalman> {
        if !(0.0 < gain && gain <= 1.0) {
            return Err(ControlError::BadConfig(format!(
                "Kalman gain {gain} outside (0, 1]"
            )));
        }
        Ok(DisturbanceKalman {
            gain,
            estimate: 0.0,
        })
    }

    /// The steady-state gain.
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Current estimate.
    pub fn estimate(&self) -> f64 {
        self.estimate
    }

    /// Fold in a raw innovation (measured minus model-predicted output) and
    /// return the updated estimate.
    pub fn update(&mut self, innovation: f64) -> f64 {
        self.estimate += self.gain * (innovation - self.estimate);
        self.estimate
    }

    /// Reset the estimate (e.g. after a model swap).
    pub fn reset(&mut self) {
        self.estimate = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(DisturbanceKalman::new(0.0, 1.0).is_err());
        assert!(DisturbanceKalman::new(1.0, 0.0).is_err());
        assert!(DisturbanceKalman::new(-1.0, 1.0).is_err());
        assert!(DisturbanceKalman::with_gain(0.0).is_err());
        assert!(DisturbanceKalman::with_gain(1.5).is_err());
        assert!(DisturbanceKalman::with_gain(1.0).is_ok());
    }

    #[test]
    fn gain_reflects_noise_ratio() {
        // Trust measurements when process noise dominates…
        let fast = DisturbanceKalman::new(100.0, 1.0).unwrap();
        assert!(fast.gain() > 0.9);
        // …and smooth hard when measurement noise dominates.
        let slow = DisturbanceKalman::new(1.0, 100.0).unwrap();
        assert!(slow.gain() < 0.15);
        assert!(slow.gain() > 0.0);
    }

    #[test]
    fn converges_to_constant_disturbance() {
        let mut f = DisturbanceKalman::new(1.0, 10.0).unwrap();
        for _ in 0..100 {
            f.update(50.0);
        }
        assert!((f.estimate() - 50.0).abs() < 0.5);
    }

    #[test]
    fn smooths_noise_better_than_raw() {
        // White noise around 0: the filtered variance must be far below the
        // raw innovation variance.
        let mut f = DisturbanceKalman::new(0.1, 100.0).unwrap();
        let mut state: u64 = 9;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0) * 30.0
        };
        let mut raw_var = 0.0;
        let mut est_var = 0.0;
        let n = 5000;
        for _ in 0..n {
            let e = next();
            let d = f.update(e);
            raw_var += e * e;
            est_var += d * d;
        }
        assert!(
            est_var < raw_var / 5.0,
            "filter should attenuate: {est_var} vs {raw_var}"
        );
    }

    #[test]
    fn gain_one_is_pass_through_and_reset_works() {
        let mut f = DisturbanceKalman::with_gain(1.0).unwrap();
        assert_eq!(f.update(42.0), 42.0);
        assert_eq!(f.update(-7.0), -7.0);
        f.reset();
        assert_eq!(f.estimate(), 0.0);
    }
}
