//! Cooling-coupled MPC (after Ogura et al., arXiv:1806.03375).
//!
//! The paper's MPC objective (eq. (2)) trades tracking error against move
//! effort; the cooling-coupled variant adds a third term that charges each
//! predicted allocation *level* at the site's current power usage
//! effectiveness,
//!
//! ```text
//! J = Σ‖t̂ − t_ref‖²_Q + Σ‖Δc‖²_R + ρ(k) Σ‖c(k+j|k)‖²,
//! ρ(k) = w_energy · PUE(k),
//! ```
//!
//! so when the site's cooling overhead is high (hot hours push PUE up) the
//! controller leans toward leaner allocations, and when cooling is cheap it
//! tracks more aggressively. The coupling is *feed-forward*: the PUE sample
//! arrives via [`CoolingMpc::observe_pue`] from the fleet layer's
//! `PueSeries`, and the optimizer re-weights its cost with it every period.
//!
//! This type is a thin, explicit wrapper over [`MpcController`] — the term
//! itself lives in the MPC's stacked least-squares assembly (both the
//! unconstrained and box-QP paths), activated by a positive energy weight.
//! A weight of zero is *exactly* the paper's controller, bit for bit.

use crate::mpc::MpcStep;
use crate::{ArxModel, MpcConfig, MpcController, Result};
use vdc_telemetry::Telemetry;

/// MPC variant whose objective adds the PUE-weighted allocation-level term
/// described in the module docs.
#[derive(Debug, Clone)]
pub struct CoolingMpc {
    inner: MpcController,
}

impl CoolingMpc {
    /// Build a cooling-coupled controller. `energy_weight` must be finite
    /// and non-negative; until a PUE sample is observed the multiplier
    /// defaults to 1.0 (an ideal site — all power goes to IT load).
    pub fn new(
        model: ArxModel,
        cfg: MpcConfig,
        c0: &[f64],
        energy_weight: f64,
    ) -> Result<CoolingMpc> {
        let mut inner = MpcController::new(model, cfg, c0)?;
        inner.set_energy_weight(energy_weight)?;
        Ok(CoolingMpc { inner })
    }

    /// Feed the site's current PUE sample (clamped to ≥ 1.0; non-finite
    /// values are ignored). Takes effect on the next [`CoolingMpc::step`].
    pub fn observe_pue(&mut self, pue: f64) {
        self.inner.set_pue(pue);
    }

    /// The PUE multiplier currently applied to the energy term.
    pub fn pue(&self) -> f64 {
        self.inner.pue()
    }

    /// The configured energy weight `w_energy`.
    pub fn energy_weight(&self) -> f64 {
        self.inner.energy_weight()
    }

    /// Run one control period: measurement in, next allocation out.
    pub fn step(&mut self, t_measured: f64) -> Result<MpcStep> {
        self.inner.step(t_measured)
    }

    /// Currently applied allocation (GHz per tier).
    pub fn current_allocation(&self) -> &[f64] {
        self.inner.current_allocation()
    }

    /// Change the response-time set point (ms).
    pub fn set_setpoint(&mut self, ts: f64) {
        self.inner.set_setpoint(ts);
    }

    /// Replace the reference trajectory (safe-mode band widening).
    pub fn set_reference(&mut self, reference: crate::ReferenceTrajectory) {
        self.inner.set_reference(reference);
    }

    /// Replace the allocation box; see
    /// [`MpcController::set_allocation_bounds`].
    pub fn set_allocation_bounds(&mut self, c_min: Vec<f64>, c_max: Vec<f64>) -> Result<()> {
        self.inner.set_allocation_bounds(c_min, c_max)
    }

    /// Force the applied allocation; see [`MpcController::force_allocation`].
    pub fn force_allocation(&mut self, alloc: &[f64]) -> Result<()> {
        self.inner.force_allocation(alloc)
    }

    /// Attach a telemetry sink (observation only).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.inner.set_telemetry(telemetry);
    }

    /// The attached telemetry sink.
    pub fn telemetry(&self) -> &Telemetry {
        self.inner.telemetry()
    }

    /// The MPC configuration in use.
    pub fn config(&self) -> &MpcConfig {
        self.inner.config()
    }

    /// The plant model in use.
    pub fn model(&self) -> &ArxModel {
        self.inner.model()
    }

    /// Borrow the wrapped paper MPC (for analysis tooling that takes
    /// `&MpcController`).
    pub fn as_mpc(&self) -> &MpcController {
        &self.inner
    }

    /// Mutably borrow the wrapped paper MPC.
    pub fn as_mpc_mut(&mut self) -> &mut MpcController {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReferenceTrajectory;

    fn plant_model() -> ArxModel {
        ArxModel::new(
            vec![0.45],
            vec![vec![-180.0, -120.0], vec![-60.0, -40.0]],
            1400.0,
        )
        .unwrap()
    }

    fn cfg(setpoint: f64) -> MpcConfig {
        MpcConfig {
            prediction_horizon: 8,
            control_horizon: 2,
            q_weight: 1.0,
            r_weight: vec![1e-4, 1e-4],
            reference: ReferenceTrajectory::new(4.0, 12.0).unwrap(),
            setpoint,
            c_min: vec![0.2, 0.2],
            c_max: vec![3.0, 3.0],
            delta_max: Some(0.5),
            terminal_constraint: true,
        }
    }

    fn run(ctrl: &mut CoolingMpc, plant: &ArxModel, steps: usize, t0: f64) -> Vec<f64> {
        let mut t_hist = vec![t0; plant.na()];
        let mut c_hist = vec![ctrl.current_allocation().to_vec(); plant.nb()];
        let mut t = t0;
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            let step = ctrl.step(t).unwrap();
            c_hist.insert(0, step.allocation.clone());
            c_hist.truncate(plant.nb());
            t = plant.predict(&t_hist, &c_hist).unwrap();
            t_hist.insert(0, t);
            t_hist.truncate(plant.na().max(1));
            out.push(t);
        }
        out
    }

    #[test]
    fn rejects_bad_energy_weight() {
        let m = plant_model();
        assert!(CoolingMpc::new(m.clone(), cfg(1000.0), &[1.0, 1.0], -0.5).is_err());
        assert!(CoolingMpc::new(m.clone(), cfg(1000.0), &[1.0, 1.0], f64::NAN).is_err());
        let c = CoolingMpc::new(m, cfg(1000.0), &[1.0, 1.0], 25.0).unwrap();
        assert_eq!(c.energy_weight(), 25.0);
        assert_eq!(c.pue(), 1.0, "multiplier defaults to the ideal site");
    }

    #[test]
    fn zero_weight_is_the_paper_controller_bit_for_bit() {
        let plant = plant_model();
        let mut paper = MpcController::new(plant.clone(), cfg(1000.0), &[1.0, 1.0]).unwrap();
        let mut cooled = CoolingMpc::new(plant.clone(), cfg(1000.0), &[1.0, 1.0], 0.0).unwrap();
        cooled.observe_pue(1.8); // observed but inert at weight 0
        let mut t_a = 2000.0;
        let mut t_b = 2000.0;
        for _ in 0..30 {
            let a = paper.step(t_a).unwrap();
            let b = cooled.step(t_b).unwrap();
            for (x, y) in a.allocation.iter().zip(&b.allocation) {
                assert_eq!(x.to_bits(), y.to_bits(), "zero weight must be inert");
            }
            t_a = (t_a * 0.8).max(900.0);
            t_b = t_a;
        }
    }

    #[test]
    fn higher_pue_means_leaner_allocations() {
        let plant = plant_model();
        let norm_at = |pue: f64| {
            let mut ctrl = CoolingMpc::new(plant.clone(), cfg(1000.0), &[1.0, 1.0], 100.0).unwrap();
            ctrl.observe_pue(pue);
            let traj = run(&mut ctrl, &plant, 80, 2000.0);
            let sum: f64 = ctrl.current_allocation().iter().map(|c| c * c).sum();
            (sum, traj[79])
        };
        let (lean_cool, t_cool) = norm_at(1.2);
        let (lean_hot, t_hot) = norm_at(3.0);
        assert!(
            lean_hot <= lean_cool + 1e-9,
            "hot site ({lean_hot}) should allocate no more than cool site ({lean_cool})"
        );
        // Both still track the set point to within the energy-term bias.
        for t in [t_cool, t_hot] {
            assert!((t - 1000.0).abs() < 120.0, "tracking lost: {t} ms");
        }
    }
}
