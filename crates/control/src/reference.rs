//! Exponential reference trajectory (eq. (3) of the paper).
//!
//! ```text
//! ref(k+i|k) = Ts − e^{−(T/Tref)·i} · (Ts − t(k))
//! ```
//!
//! The trajectory defines the ideal path along which the response time
//! should move from its current value `t(k)` to the set point `Ts`; tracking
//! it makes the closed loop behave like a first-order linear system with
//! time constant `Tref`.

use crate::{ControlError, Result};

/// Exponential reference trajectory generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceTrajectory {
    /// Control period `T` (seconds).
    pub period: f64,
    /// Time constant `Tref` (seconds). Smaller = faster convergence but
    /// larger overshoot risk (§IV-B).
    pub time_constant: f64,
}

impl ReferenceTrajectory {
    /// Create a trajectory generator; both times must be positive.
    pub fn new(period: f64, time_constant: f64) -> Result<Self> {
        if period <= 0.0 || !period.is_finite() {
            return Err(ControlError::BadConfig(format!(
                "control period {period} must be positive"
            )));
        }
        if time_constant <= 0.0 || !time_constant.is_finite() {
            return Err(ControlError::BadConfig(format!(
                "reference time constant {time_constant} must be positive"
            )));
        }
        Ok(ReferenceTrajectory {
            period,
            time_constant,
        })
    }

    /// Decay factor per control period, `e^{−T/Tref}` ∈ (0, 1).
    pub fn decay(&self) -> f64 {
        (-self.period / self.time_constant).exp()
    }

    /// `ref(k+i|k)` for the current measurement `t_now` and set point `ts`.
    pub fn at(&self, ts: f64, t_now: f64, i: usize) -> f64 {
        ts - self.decay().powi(i as i32) * (ts - t_now)
    }

    /// The whole trajectory for `i = 1..=horizon`.
    pub fn horizon(&self, ts: f64, t_now: f64, horizon: usize) -> Vec<f64> {
        (1..=horizon).map(|i| self.at(ts, t_now, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ReferenceTrajectory::new(0.0, 1.0).is_err());
        assert!(ReferenceTrajectory::new(1.0, 0.0).is_err());
        assert!(ReferenceTrajectory::new(-1.0, 1.0).is_err());
        assert!(ReferenceTrajectory::new(1.0, f64::NAN).is_err());
        assert!(ReferenceTrajectory::new(4.0, 12.0).is_ok());
    }

    #[test]
    fn starts_at_measurement_and_converges_to_setpoint() {
        let r = ReferenceTrajectory::new(4.0, 12.0).unwrap();
        let (ts, t0) = (1000.0, 2000.0);
        // i = 0 is the current measurement.
        assert!((r.at(ts, t0, 0) - t0).abs() < 1e-12);
        // Monotone approach to the set point from above.
        let traj = r.horizon(ts, t0, 50);
        for w in traj.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!((traj[49] - ts).abs() < 1.0);
    }

    #[test]
    fn approach_from_below() {
        let r = ReferenceTrajectory::new(1.0, 5.0).unwrap();
        let traj = r.horizon(1000.0, 400.0, 30);
        for w in traj.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!(traj[0] > 400.0 && traj[0] < 1000.0);
    }

    #[test]
    fn smaller_time_constant_converges_faster() {
        let fast = ReferenceTrajectory::new(1.0, 2.0).unwrap();
        let slow = ReferenceTrajectory::new(1.0, 20.0).unwrap();
        let e_fast = (fast.at(1000.0, 2000.0, 3) - 1000.0).abs();
        let e_slow = (slow.at(1000.0, 2000.0, 3) - 1000.0).abs();
        assert!(e_fast < e_slow);
    }

    #[test]
    fn at_setpoint_stays_at_setpoint() {
        let r = ReferenceTrajectory::new(4.0, 12.0).unwrap();
        for i in 0..10 {
            assert_eq!(r.at(1000.0, 1000.0, i), 1000.0);
        }
    }

    #[test]
    fn decay_in_unit_interval() {
        let r = ReferenceTrajectory::new(4.0, 12.0).unwrap();
        let d = r.decay();
        assert!(d > 0.0 && d < 1.0);
        assert!((d - (-1.0_f64 / 3.0).exp()).abs() < 1e-15);
    }
}
