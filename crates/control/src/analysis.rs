//! Closed-loop analysis of the MPC response-time controller.
//!
//! The paper's first contribution bullet promises to "design a performance
//! controller … based on MIMO control theory, **and analyze the control
//! performance**"; stability itself is argued via the terminal constraint
//! (§IV-B, citing \[14, 15\]). This module provides the numerical
//! counterpart: away from its constraints, the receding-horizon law is a
//! time-invariant map of the loop state
//!
//! ```text
//! z(k) = [t(k), …, t(k−na+1),  c(k), …, c(k−nb+2)]
//! ```
//!
//! (allocation lags beyond the first appear because the ARX model has `nb`
//! input lags). We linearize one controller+plant step around the loop's
//! equilibrium by finite differences and compute the spectral radius of the
//! resulting closed-loop transition matrix: `ρ < 1` certifies local
//! asymptotic stability of the nominal loop (plant = model), and the
//! magnitude of `ρ` quantifies how fast disturbances decay.

use crate::arx::ArxModel;
use crate::mpc::{MpcConfig, MpcController};
use crate::{ControlError, Result};
use vdc_linalg::{eigenvalues, Complex, Matrix};

/// Result of a closed-loop linearization.
#[derive(Debug, Clone)]
pub struct ClosedLoopAnalysis {
    /// The linearized closed-loop transition matrix (dimension
    /// `na + m·(nb−1)`).
    pub matrix: Matrix,
    /// Its eigenvalues.
    pub eigenvalues: Vec<Complex>,
    /// Spectral radius `max |λ|`.
    pub spectral_radius: f64,
    /// The equilibrium allocation used for linearization (GHz).
    pub c_star: Vec<f64>,
    /// The equilibrium response time (the set point used during analysis).
    pub t_star: f64,
}

impl ClosedLoopAnalysis {
    /// Whether the loop is locally asymptotically stable with the given
    /// margin (`spectral_radius < 1 − margin`).
    ///
    /// Note for MIMO response-time control: with `m > 1` tier VMs and a
    /// single output, the allocation *split* has an `m−1`-dimensional null
    /// space that the control penalty `R` (which weights allocation
    /// *changes*, not levels) never re-centers — the loop carries `m−1`
    /// structurally marginal modes at `|λ| ≈ 1` even though the tracking
    /// error decays. Use [`ClosedLoopAnalysis::decay_radius`] for the rate
    /// of the modes that actually move the output.
    pub fn is_stable(&self, margin: f64) -> bool {
        self.spectral_radius < 1.0 - margin
    }

    /// Number of (near-)marginal modes, `|λ| ≥ 0.999` — for a well-posed
    /// response-time loop this equals `m − 1` (the allocation-split null
    /// space); anything larger flags a mistuned controller.
    pub fn marginal_modes(&self) -> usize {
        self.eigenvalues.iter().filter(|z| z.abs() >= 0.999).count()
    }

    /// Largest `|λ|` strictly below the marginal band — the decay rate of
    /// the modes that drive the tracking error. Falls back to the full
    /// spectral radius when every mode is marginal.
    pub fn decay_radius(&self) -> f64 {
        let below = self
            .eigenvalues
            .iter()
            .map(|z| z.abs())
            .filter(|a| *a < 0.999)
            .fold(0.0_f64, f64::max);
        if self.marginal_modes() == self.eigenvalues.len() {
            self.spectral_radius
        } else {
            below
        }
    }

    /// Approximate 2-%-settling horizon of the tracking error in control
    /// periods, `ln(0.02) / ln(ρ_decay)`; `None` if the output modes are
    /// deadbeat (ρ ≈ 0 — settles in at most the state dimension) or the
    /// loop is unstable.
    pub fn settling_periods(&self) -> Option<f64> {
        let rho = self.decay_radius();
        if rho >= 1.0 {
            return None;
        }
        if rho < 1e-9 {
            return None;
        }
        Some((0.02_f64).ln() / rho.ln())
    }
}

/// Loop state dimension for a model.
fn state_dim(model: &ArxModel) -> usize {
    model.na().max(1) + model.n_inputs() * model.nb().saturating_sub(1)
}

/// One exact closed-loop step `z → z⁺` with plant = model.
///
/// The controller is freshly constructed from the state each call, so the
/// map is a pure function (the receding-horizon law is time-invariant).
fn closed_loop_step(model: &ArxModel, cfg: &MpcConfig, z: &[f64]) -> Result<Vec<f64>> {
    let na = model.na().max(1);
    let nb = model.nb();
    let m = model.n_inputs();

    // Unpack the state.
    let t_now = z[0];
    let t_prev: Vec<f64> = z[1..na].to_vec(); // t(k−1) … t(k−na+1)
    let mut c_lags: Vec<Vec<f64>> = Vec::with_capacity(nb - 1);
    for j in 0..(nb - 1) {
        let base = na + j * m;
        c_lags.push(z[base..base + m].to_vec());
    }
    let c_current = if nb >= 1 && !c_lags.is_empty() {
        c_lags[0].clone()
    } else {
        // nb == 1: no allocation lags in the state; use the box midpoint.
        cfg.c_min
            .iter()
            .zip(&cfg.c_max)
            .map(|(lo, hi)| 0.5 * (lo + hi))
            .collect()
    };
    let c_hist: Vec<Vec<f64>> = c_lags.iter().skip(1).cloned().collect();

    // Controller sees history *before* the new measurement.
    let mut ctrl =
        MpcController::with_state(model.clone(), cfg.clone(), &t_prev, &c_hist, &c_current)?;
    let step = ctrl.step(t_now)?;
    let c_next = step.allocation;

    // Plant update: t(k+1) uses the new allocation and the lagged ones.
    let mut t_hist_plant = vec![t_now];
    t_hist_plant.extend_from_slice(&t_prev);
    let mut c_hist_plant = vec![c_next.clone()];
    c_hist_plant.extend(c_lags.iter().cloned());
    while c_hist_plant.len() < nb {
        c_hist_plant.push(c_current.clone());
    }
    let t_next = model.predict(&t_hist_plant, &c_hist_plant)?;

    // Pack z⁺.
    let mut z_next = Vec::with_capacity(z.len());
    z_next.push(t_next);
    z_next.push(t_now);
    z_next.extend_from_slice(&t_prev[..na.saturating_sub(2).min(t_prev.len())]);
    z_next.truncate(na);
    while z_next.len() < na {
        z_next.push(*z_next.last().expect("na >= 1"));
    }
    z_next.extend_from_slice(&c_next);
    for lag in c_lags.iter().take(nb.saturating_sub(2)) {
        z_next.extend_from_slice(lag);
    }
    debug_assert_eq!(z_next.len(), z.len());
    Ok(z_next)
}

/// Linearize the closed loop around its equilibrium.
///
/// The equilibrium allocation is the midpoint of the configured box; the
/// analysis overrides the set point to the model's steady-state output at
/// that allocation so the loop has an exact interior fixed point, and
/// disables the rate limit (the analysis targets the *unconstrained* law —
/// saturated behaviour is inherently nonlinear).
pub fn analyze_closed_loop(model: &ArxModel, cfg: &MpcConfig) -> Result<ClosedLoopAnalysis> {
    let denom = 1.0 - model.a().iter().sum::<f64>();
    if denom.abs() < 1e-9 {
        return Err(ControlError::BadConfig(
            "integrating model: no steady state to linearize around".into(),
        ));
    }
    let c_star: Vec<f64> = cfg
        .c_min
        .iter()
        .zip(&cfg.c_max)
        .map(|(lo, hi)| 0.5 * (lo + hi))
        .collect();
    let gain_sum: f64 = model
        .b()
        .iter()
        .map(|lag| lag.iter().zip(&c_star).map(|(b, c)| b * c).sum::<f64>())
        .sum();
    let t_star = (model.bias() + gain_sum) / denom;

    let mut a_cfg = cfg.clone();
    a_cfg.setpoint = t_star;
    a_cfg.delta_max = None;

    let n = state_dim(model);
    let na = model.na().max(1);
    let mut z_star = Vec::with_capacity(n);
    z_star.extend(std::iter::repeat_n(t_star, na));
    for _ in 0..(model.nb() - 1) {
        z_star.extend_from_slice(&c_star);
    }

    // Verify the fixed point.
    let z_check = closed_loop_step(model, &a_cfg, &z_star)?;
    let drift = z_star
        .iter()
        .zip(&z_check)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f64, f64::max);
    if drift > 1e-6 * (1.0 + t_star.abs()) {
        return Err(ControlError::BadConfig(format!(
            "equilibrium is not a fixed point (drift {drift}); \
             is the set point reachable inside the box?"
        )));
    }

    // Finite-difference Jacobian, central differences.
    let mut jac = Matrix::zeros(n, n);
    for col in 0..n {
        let scale = if col < na {
            (1.0 + t_star.abs()) * 1e-6
        } else {
            1e-6
        };
        let mut zp = z_star.clone();
        zp[col] += scale;
        let fp = closed_loop_step(model, &a_cfg, &zp)?;
        let mut zm = z_star.clone();
        zm[col] -= scale;
        let fm = closed_loop_step(model, &a_cfg, &zm)?;
        for row in 0..n {
            jac[(row, col)] = (fp[row] - fm[row]) / (2.0 * scale);
        }
    }

    let eigs = eigenvalues(&jac)?;
    let spectral_radius = eigs.iter().fold(0.0_f64, |acc, z| acc.max(z.abs()));
    Ok(ClosedLoopAnalysis {
        matrix: jac,
        eigenvalues: eigs,
        spectral_radius,
        c_star,
        t_star,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceTrajectory;

    fn paper_model() -> ArxModel {
        ArxModel::new(
            vec![0.45],
            vec![vec![-180.0, -120.0], vec![-60.0, -40.0]],
            1400.0,
        )
        .unwrap()
    }

    fn cfg(r: f64) -> MpcConfig {
        MpcConfig {
            prediction_horizon: 10,
            control_horizon: 3,
            q_weight: 1.0,
            r_weight: vec![r; 2],
            reference: ReferenceTrajectory::new(4.0, 12.0).unwrap(),
            setpoint: 1000.0, // overridden by the analysis
            c_min: vec![0.3; 2],
            c_max: vec![3.0; 2],
            delta_max: Some(0.3),
            terminal_constraint: true,
        }
    }

    #[test]
    fn nominal_loop_output_modes_are_stable() {
        let analysis = analyze_closed_loop(&paper_model(), &cfg(4.0e4)).unwrap();
        assert_eq!(analysis.matrix.rows(), 3); // na=1 + 2*(nb-1)=2
        assert!(analysis.t_star > 0.0);
        // With 2 inputs and 1 output the loop carries exactly one
        // structural marginal mode (the allocation-split null space).
        assert_eq!(
            analysis.marginal_modes(),
            1,
            "eigenvalues: {:?}",
            analysis.eigenvalues
        );
        // The modes that drive the tracking error decay.
        assert!(
            analysis.decay_radius() < 1.0,
            "decay radius {}",
            analysis.decay_radius()
        );
        // Settling estimate is finite and positive when 0 < rho < 1.
        if analysis.decay_radius() > 1e-9 {
            let s = analysis.settling_periods().unwrap();
            assert!(s > 0.0 && s.is_finite());
        }
    }

    #[test]
    fn single_input_loop_has_no_marginal_mode() {
        // One tier, one output: no null space, radius itself must be < 1.
        let model = ArxModel::new(vec![0.45], vec![vec![-200.0], vec![-60.0]], 1400.0).unwrap();
        let mut c = cfg(4.0e4);
        c.r_weight = vec![4.0e4];
        c.c_min = vec![0.3];
        c.c_max = vec![3.0];
        let analysis = analyze_closed_loop(&model, &c).unwrap();
        assert_eq!(analysis.marginal_modes(), 0, "{:?}", analysis.eigenvalues);
        assert!(
            analysis.is_stable(0.0),
            "radius {}",
            analysis.spectral_radius
        );
    }

    #[test]
    fn control_penalty_scan_stays_stable() {
        // The decay radius is NOT monotone in R: with the hard terminal
        // constraint the output is forced to the set point within M periods
        // regardless of R, and at small R the loop instead follows the
        // exponential reference trajectory. What must hold across the whole
        // scan: stable tracking modes and exactly one structural marginal
        // mode (m − 1 = 1).
        for r in [1.0, 1.0e2, 1.0e4, 1.0e7] {
            let a = analyze_closed_loop(&paper_model(), &cfg(r)).unwrap();
            assert!(
                a.decay_radius() < 1.0,
                "R = {r}: decay radius {}",
                a.decay_radius()
            );
            assert_eq!(a.marginal_modes(), 1, "R = {r}: {:?}", a.eigenvalues);
        }
    }

    #[test]
    fn integrating_model_is_rejected() {
        let m = ArxModel::new(vec![1.0], vec![vec![-100.0, -50.0]], 0.0).unwrap();
        assert!(analyze_closed_loop(&m, &cfg(1.0)).is_err());
    }

    #[test]
    fn equilibrium_matches_model_steady_state() {
        let model = paper_model();
        let a = analyze_closed_loop(&model, &cfg(4.0e4)).unwrap();
        // t* = (bias + Σ b·c*) / (1 − a) with c* = box midpoint (1.65).
        let c = 1.65;
        let expect = (1400.0 + (-180.0 - 120.0 - 60.0 - 40.0) * c) / (1.0 - 0.45);
        assert!((a.t_star - expect).abs() < 1e-9);
        assert_eq!(a.c_star, vec![1.65, 1.65]);
    }

    #[test]
    fn linearization_predicts_simulated_decay() {
        // The linearized radius must upper-bound the observed decay of a
        // small perturbation in simulation (same unconstrained config).
        let model = paper_model();
        let mut a_cfg = cfg(4.0e4);
        let analysis = analyze_closed_loop(&model, &a_cfg).unwrap();
        a_cfg.setpoint = analysis.t_star;
        a_cfg.delta_max = None;

        // Simulate the loop from a slightly perturbed start.
        let mut ctrl = MpcController::with_state(
            model.clone(),
            a_cfg,
            &[analysis.t_star],
            &[],
            &analysis.c_star,
        )
        .unwrap();
        let mut t = analysis.t_star + 50.0;
        let mut t_hist = [analysis.t_star];
        let mut c_hist = vec![analysis.c_star.clone(), analysis.c_star.clone()];
        let mut errs = Vec::new();
        for _ in 0..12 {
            let step = ctrl.step(t).unwrap();
            c_hist.rotate_right(1);
            c_hist[0] = step.allocation.clone();
            let t_next = model.predict(&[t, t_hist[0]][..1], &c_hist).unwrap();
            t_hist[0] = t;
            t = t_next;
            errs.push((t - analysis.t_star).abs());
        }
        // After a dozen periods the perturbation must have decayed hard if
        // rho is small.
        let final_err = errs.last().unwrap();
        assert!(
            *final_err < 50.0 * (analysis.decay_radius() + 0.2).powi(6),
            "decay too slow: errs {errs:?}, rho {}",
            analysis.decay_radius()
        );
    }
}

/// Auto-tune the control penalty `R` so the closed loop's tracking modes
/// decay at approximately `target_decay` per period (0 = deadbeat,
/// → 1 = sluggish). Scans `R` logarithmically over `[r_min, r_max]` and
/// returns the value whose [`ClosedLoopAnalysis::decay_radius`] comes
/// closest to the target, together with the analysis at that value.
///
/// This closes the paper's tuning loop: §IV-B says the weights "can be
/// tuned", and the closed-loop linearization provides the metric to tune
/// against.
pub fn tune_r_weight(
    model: &ArxModel,
    base_cfg: &MpcConfig,
    target_decay: f64,
    r_min: f64,
    r_max: f64,
    steps: usize,
) -> Result<(f64, ClosedLoopAnalysis)> {
    if !(0.0..1.0).contains(&target_decay) {
        return Err(ControlError::BadConfig(format!(
            "target decay {target_decay} outside [0, 1)"
        )));
    }
    if r_min <= 0.0 || r_max < r_min || steps < 2 {
        return Err(ControlError::BadConfig(
            "need 0 < r_min <= r_max and steps >= 2".into(),
        ));
    }
    let m = model.n_inputs();
    let mut best: Option<(f64, f64, ClosedLoopAnalysis)> = None;
    for k in 0..steps {
        let frac = k as f64 / (steps - 1) as f64;
        let r = r_min * (r_max / r_min).powf(frac);
        let mut cfg = base_cfg.clone();
        cfg.r_weight = vec![r; m];
        let analysis = analyze_closed_loop(model, &cfg)?;
        let err = (analysis.decay_radius() - target_decay).abs();
        let better = best.as_ref().map(|(e, _, _)| err < *e).unwrap_or(true);
        if better {
            best = Some((err, r, analysis));
        }
    }
    let (_, r, analysis) = best.expect("steps >= 2 yields at least one candidate");
    Ok((r, analysis))
}

#[cfg(test)]
mod tuner_tests {
    use super::*;
    use crate::reference::ReferenceTrajectory;

    fn model() -> ArxModel {
        ArxModel::new(
            vec![0.45],
            vec![vec![-180.0, -120.0], vec![-60.0, -40.0]],
            1400.0,
        )
        .unwrap()
    }

    fn base_cfg() -> MpcConfig {
        MpcConfig {
            prediction_horizon: 10,
            control_horizon: 3,
            q_weight: 1.0,
            r_weight: vec![1.0; 2],
            reference: ReferenceTrajectory::new(4.0, 12.0).unwrap(),
            setpoint: 1000.0,
            c_min: vec![0.3; 2],
            c_max: vec![3.0; 2],
            delta_max: Some(0.3),
            terminal_constraint: true,
        }
    }

    #[test]
    fn tuner_validates_inputs() {
        let m = model();
        let cfg = base_cfg();
        assert!(tune_r_weight(&m, &cfg, 1.2, 1.0, 1e6, 8).is_err());
        assert!(tune_r_weight(&m, &cfg, 0.5, 0.0, 1e6, 8).is_err());
        assert!(tune_r_weight(&m, &cfg, 0.5, 10.0, 1.0, 8).is_err());
        assert!(tune_r_weight(&m, &cfg, 0.5, 1.0, 1e6, 1).is_err());
    }

    #[test]
    fn tuner_hits_requested_decay_within_grid_resolution() {
        let m = model();
        let cfg = base_cfg();
        let (r, analysis) = tune_r_weight(&m, &cfg, 0.6, 1e0, 1e8, 17).unwrap();
        assert!((1e0..=1e8).contains(&r));
        assert!(
            (analysis.decay_radius() - 0.6).abs() < 0.2,
            "decay {} for target 0.6",
            analysis.decay_radius()
        );
        // The tuned loop still tracks.
        assert!(analysis.decay_radius() < 1.0);
    }

    #[test]
    fn tuner_is_monotone_in_intent() {
        // Asking for faster decay must not yield a slower loop than asking
        // for slower decay (up to grid resolution).
        let m = model();
        let cfg = base_cfg();
        let (_, fast) = tune_r_weight(&m, &cfg, 0.3, 1e0, 1e8, 17).unwrap();
        let (_, slow) = tune_r_weight(&m, &cfg, 0.9, 1e0, 1e8, 17).unwrap();
        assert!(fast.decay_radius() <= slow.decay_radius() + 0.05);
    }
}

/// Achievable steady-state output range of `model` over the allocation box
/// `[c_min, c_max]` — the §IV-A feasibility check: "we assume that the
/// constrained optimization problem is feasible, i.e., there exists a set
/// of CPU resource allocations within their acceptable ranges that can
/// make the response time of the application achieve the desired value."
///
/// The steady state is linear in the allocation, so the extremes sit at
/// box corners selected by each channel's gain sign. Returns `None` for
/// integrating models (no steady state).
pub fn achievable_range(model: &ArxModel, c_min: &[f64], c_max: &[f64]) -> Option<(f64, f64)> {
    let m = model.n_inputs();
    if c_min.len() != m || c_max.len() != m {
        return None;
    }
    let denom = 1.0 - model.a().iter().sum::<f64>();
    if denom.abs() < 1e-12 {
        return None;
    }
    // Total steady-state gain per channel: Σ_lag b[lag][ch].
    let mut lo = model.bias();
    let mut hi = model.bias();
    for ch in 0..m {
        let g: f64 = model.b().iter().map(|lag| lag[ch]).sum();
        // Contribution g·c over c ∈ [c_min, c_max].
        let (c_lo, c_hi) = (c_min[ch], c_max[ch]);
        let (add_lo, add_hi) = if g >= 0.0 {
            (g * c_lo, g * c_hi)
        } else {
            (g * c_hi, g * c_lo)
        };
        lo += add_lo;
        hi += add_hi;
    }
    let (mut t_lo, mut t_hi) = (lo / denom, hi / denom);
    if t_lo > t_hi {
        std::mem::swap(&mut t_lo, &mut t_hi);
    }
    Some((t_lo, t_hi))
}

/// Whether a set point is reachable in steady state within the box
/// (`None` for integrating models: feasibility cannot be decided).
pub fn setpoint_feasible(
    model: &ArxModel,
    setpoint: f64,
    c_min: &[f64],
    c_max: &[f64],
) -> Option<bool> {
    achievable_range(model, c_min, c_max).map(|(lo, hi)| (lo..=hi).contains(&setpoint))
}

#[cfg(test)]
mod feasibility_tests {
    use super::*;

    fn model() -> ArxModel {
        // t∞(c) = (1400 − 240 c₁ − 160 c₂) / 0.55.
        ArxModel::new(
            vec![0.45],
            vec![vec![-180.0, -120.0], vec![-60.0, -40.0]],
            1400.0,
        )
        .unwrap()
    }

    #[test]
    fn range_matches_hand_computation() {
        let (lo, hi) = achievable_range(&model(), &[0.3, 0.3], &[3.0, 3.0]).unwrap();
        let t_at = |c1: f64, c2: f64| (1400.0 - 240.0 * c1 - 160.0 * c2) / 0.55;
        assert!((lo - t_at(3.0, 3.0)).abs() < 1e-9);
        assert!((hi - t_at(0.3, 0.3)).abs() < 1e-9);
        assert!(lo < hi);
    }

    #[test]
    fn feasibility_verdicts() {
        let m = model();
        let (c_min, c_max) = (vec![0.3, 0.3], vec![3.0, 3.0]);
        // 1000 ms is comfortably inside; 10 ms and 10 s are not.
        assert_eq!(setpoint_feasible(&m, 1000.0, &c_min, &c_max), Some(true));
        assert_eq!(setpoint_feasible(&m, 10.0, &c_min, &c_max), Some(false));
        assert_eq!(setpoint_feasible(&m, 10_000.0, &c_min, &c_max), Some(false));
    }

    #[test]
    fn mixed_gain_signs_pick_correct_corners() {
        // One positive, one negative gain.
        let m = ArxModel::new(vec![0.0], vec![vec![100.0, -50.0]], 500.0).unwrap();
        let (lo, hi) = achievable_range(&m, &[0.0, 0.0], &[2.0, 2.0]).unwrap();
        // min at c1=0 (g>0) and c2=2 (g<0): 500 − 100 = 400.
        // max at c1=2, c2=0: 500 + 200 = 700.
        assert!((lo - 400.0).abs() < 1e-9);
        assert!((hi - 700.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        let m = model();
        assert!(achievable_range(&m, &[0.3], &[3.0, 3.0]).is_none());
        let integ = ArxModel::new(vec![1.0], vec![vec![-1.0, -1.0]], 0.0).unwrap();
        assert!(achievable_range(&integ, &[0.0, 0.0], &[1.0, 1.0]).is_none());
        assert_eq!(
            setpoint_feasible(&integ, 1.0, &[0.0, 0.0], &[1.0, 1.0]),
            None
        );
    }
}
