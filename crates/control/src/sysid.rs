//! System identification of response-time models.
//!
//! The paper (§IV-B) does not derive a physical equation for `t = f(c)`;
//! it excites the testbed, records data, and fits eq. (1) with least
//! squares. This module provides the same workflow against any plant:
//!
//! 1. design an excitation signal ([`Prbs`], independent per tier),
//! 2. log `(c(k), t(k))` pairs into [`ExperimentData`],
//! 3. fit an [`crate::ArxModel`] with [`fit_arx`] (QR least squares),
//!    optionally selecting orders by AIC with [`select_order`],
//! 4. or adapt online with [`RecursiveLeastSquares`].

use crate::arx::ArxModel;
use crate::{ControlError, Result};
use vdc_linalg::{Matrix, Vector};

/// Pseudo-Random Binary Sequence generator (maximal-length LFSR).
///
/// PRBS is the standard excitation for linear system identification: it is
/// persistently exciting and has a flat spectrum. Each call to
/// [`Prbs::next_level`] returns either `low` or `high`.
#[derive(Debug, Clone)]
pub struct Prbs {
    /// LFSR state (16-bit taps 16,15,13,4 — maximal length 65535).
    state: u16,
    low: f64,
    high: f64,
    /// Hold each level for this many steps (shapes excitation bandwidth).
    hold: usize,
    held: usize,
    current_bit: bool,
}

impl Prbs {
    /// Create a PRBS alternating between `low` and `high`, holding each
    /// level for `hold` consecutive samples. `seed` must be non-zero
    /// (a zero seed is replaced with 1).
    pub fn new(low: f64, high: f64, hold: usize, seed: u16) -> Prbs {
        Prbs {
            state: if seed == 0 { 1 } else { seed },
            low,
            high,
            hold: hold.max(1),
            held: 0,
            current_bit: true,
        }
    }

    fn step_lfsr(&mut self) -> bool {
        // Fibonacci LFSR, taps 16,15,13,4.
        let bit = (self.state ^ (self.state >> 1) ^ (self.state >> 3) ^ (self.state >> 12)) & 1;
        self.state = (self.state >> 1) | (bit << 15);
        bit == 1
    }

    /// Next excitation level.
    pub fn next_level(&mut self) -> f64 {
        if self.held == 0 {
            self.current_bit = self.step_lfsr();
        }
        self.held = (self.held + 1) % self.hold;
        if self.current_bit {
            self.high
        } else {
            self.low
        }
    }
}

/// Logged identification data: aligned sequences of inputs and outputs.
///
/// `inputs[k]` is the allocation vector `c(k)` applied during period `k`;
/// `outputs[k]` is the response time `t(k)` measured at the end of period
/// `k`.
#[derive(Debug, Clone, Default)]
pub struct ExperimentData {
    inputs: Vec<Vec<f64>>,
    outputs: Vec<f64>,
}

impl ExperimentData {
    /// Empty data set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one sample `(c(k), t(k))`.
    pub fn push(&mut self, input: Vec<f64>, output: f64) {
        self.inputs.push(input);
        self.outputs.push(output);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Recorded inputs.
    pub fn inputs(&self) -> &[Vec<f64>] {
        &self.inputs
    }

    /// Recorded outputs.
    pub fn outputs(&self) -> &[f64] {
        &self.outputs
    }
}

/// An identified model together with fit-quality metrics.
#[derive(Debug, Clone)]
pub struct ArxFit {
    /// The identified model.
    pub model: ArxModel,
    /// Root-mean-square one-step prediction error on the fit data.
    pub rmse: f64,
    /// Coefficient of determination of one-step predictions.
    pub r_squared: f64,
    /// Akaike Information Criterion (lower is better).
    pub aic: f64,
    /// Number of regression rows used.
    pub rows: usize,
    /// Condition estimate of the regressor matrix (max/min |R_ii| of its
    /// QR factor). Values ≫ 1e6 flag poor excitation: the PRBS levels were
    /// too close, too slow, or collinear across tiers.
    pub condition: f64,
}

/// Fit an ARX(`na`, `nb`) model to experiment data by QR least squares.
///
/// The regression for each usable time index `k` (where all lags exist) is
///
/// ```text
/// t(k) = [t(k−1)…t(k−na), c(k), c(k−1), …, c(k−nb+1), 1] · θ
/// ```
///
/// Convention: `inputs[k]` is the allocation **in force during** period `k`
/// and `outputs[k]` the response time measured over period `k`, so the most
/// recent input lag is the same-period allocation. (The paper's eq. (1)
/// indexes allocations by decision instant, which shifts the labels by one
/// period but describes the same model.)
pub fn fit_arx(data: &ExperimentData, na: usize, nb: usize) -> Result<ArxFit> {
    if nb == 0 {
        return Err(ControlError::BadConfig("nb must be >= 1".into()));
    }
    if data.is_empty() {
        return Err(ControlError::InsufficientData {
            available: 0,
            required: 1,
        });
    }
    let m = data.inputs[0].len();
    if m == 0 || data.inputs.iter().any(|c| c.len() != m) {
        return Err(ControlError::BadDimensions(
            "experiment inputs are empty or ragged".into(),
        ));
    }
    let lag = na.max(nb - 1);
    let n_params = na + nb * m + 1;
    let n = data.len();
    if n <= lag || n - lag < n_params + 2 {
        return Err(ControlError::InsufficientData {
            available: n.saturating_sub(lag),
            required: n_params + 2,
        });
    }

    let rows = n - lag;
    let mut reg = Matrix::zeros(rows, n_params);
    let mut y = Vec::with_capacity(rows);
    for (row, k) in (lag..n).enumerate() {
        let mut col = 0;
        for j in 1..=na {
            reg[(row, col)] = data.outputs[k - j];
            col += 1;
        }
        for j in 0..nb {
            for i in 0..m {
                reg[(row, col)] = data.inputs[k - j][i];
                col += 1;
            }
        }
        reg[(row, col)] = 1.0; // bias
        y.push(data.outputs[k]);
    }
    let yv = Vector::from_vec(y);
    let qr = vdc_linalg::Qr::new(&reg)?;
    let condition = qr.condition_estimate();
    let theta = qr.solve(&yv)?;

    // Unpack parameters.
    let a: Vec<f64> = (0..na).map(|j| theta[j]).collect();
    let mut b = Vec::with_capacity(nb);
    for j in 0..nb {
        b.push((0..m).map(|i| theta[na + j * m + i]).collect());
    }
    let bias = theta[n_params - 1];
    let model = ArxModel::new(a, b, bias)?;

    // Fit metrics.
    let pred = reg.matvec(&theta)?;
    let resid = &pred - &yv;
    let sse: f64 = resid.as_slice().iter().map(|e| e * e).sum();
    let mean = yv.sum() / rows as f64;
    let sst: f64 = yv.as_slice().iter().map(|v| (v - mean).powi(2)).sum();
    let rmse = (sse / rows as f64).sqrt();
    let r_squared = if sst > 0.0 { 1.0 - sse / sst } else { 1.0 };
    // AIC for Gaussian residuals: n·ln(SSE/n) + 2k.
    let aic = rows as f64 * (sse / rows as f64).max(1e-300).ln() + 2.0 * n_params as f64;
    Ok(ArxFit {
        model,
        rmse,
        r_squared,
        aic,
        rows,
        condition,
    })
}

/// Fit all order combinations `na ∈ [1, max_na]`, `nb ∈ [1, max_nb]` and
/// return the fit with the lowest AIC.
pub fn select_order(data: &ExperimentData, max_na: usize, max_nb: usize) -> Result<ArxFit> {
    let mut best: Option<ArxFit> = None;
    for na in 1..=max_na.max(1) {
        for nb in 1..=max_nb.max(1) {
            if let Ok(fit) = fit_arx(data, na, nb) {
                let better = match &best {
                    Some(b) => fit.aic < b.aic,
                    None => true,
                };
                if better {
                    best = Some(fit);
                }
            }
        }
    }
    best.ok_or(ControlError::InsufficientData {
        available: data.len(),
        required: 4,
    })
}

/// Recursive least squares with exponential forgetting.
///
/// Tracks the ARX parameter vector online so the controller can adapt when
/// the workload drifts away from the identification conditions (the
/// robustness experiments of Fig. 4/5 in the paper probe exactly this).
#[derive(Debug, Clone)]
pub struct RecursiveLeastSquares {
    na: usize,
    nb: usize,
    m: usize,
    theta: Vector,
    /// Inverse covariance (information) matrix P.
    p: Matrix,
    lambda: f64,
    t_hist: Vec<f64>,
    c_hist: Vec<Vec<f64>>,
    updates: usize,
}

impl RecursiveLeastSquares {
    /// Create an RLS estimator for an ARX(`na`,`nb`) model with `m` inputs.
    ///
    /// `forgetting` λ ∈ (0, 1]: 1.0 = ordinary RLS; 0.95–0.99 tracks
    /// time-varying plants. `initial_covariance` scales the prior
    /// uncertainty (large = fast initial adaptation).
    pub fn new(
        na: usize,
        nb: usize,
        m: usize,
        forgetting: f64,
        initial_covariance: f64,
    ) -> Result<RecursiveLeastSquares> {
        if nb == 0 || m == 0 {
            return Err(ControlError::BadConfig(
                "RLS needs nb >= 1 and m >= 1".into(),
            ));
        }
        if !(0.0 < forgetting && forgetting <= 1.0) {
            return Err(ControlError::BadConfig(format!(
                "forgetting factor {forgetting} outside (0, 1]"
            )));
        }
        let n_params = na + nb * m + 1;
        Ok(RecursiveLeastSquares {
            na,
            nb,
            m,
            theta: Vector::zeros(n_params),
            p: Matrix::identity(n_params).scaled(initial_covariance),
            lambda: forgetting,
            t_hist: Vec::new(),
            c_hist: Vec::new(),
            updates: 0,
        })
    }

    /// Number of parameter updates performed so far.
    pub fn updates(&self) -> usize {
        self.updates
    }

    fn regressor(&self) -> Option<Vector> {
        if self.t_hist.len() < self.na || self.c_hist.len() < self.nb {
            return None;
        }
        let mut phi = Vec::with_capacity(self.theta.len());
        for j in 0..self.na {
            phi.push(self.t_hist[j]);
        }
        for j in 0..self.nb {
            phi.extend_from_slice(&self.c_hist[j]);
        }
        phi.push(1.0);
        Some(Vector::from_vec(phi))
    }

    /// Feed one observation `(c(k), t(k))` — `input` is the allocation in
    /// force during period `k` (same convention as [`fit_arx`]). Parameters
    /// update once enough history has accumulated.
    pub fn observe(&mut self, input: &[f64], output: f64) -> Result<()> {
        if input.len() != self.m {
            return Err(ControlError::BadDimensions(format!(
                "RLS input has {} entries, expected {}",
                input.len(),
                self.m
            )));
        }
        // The same-period input is part of the regressor: push it first.
        self.c_hist.insert(0, input.to_vec());
        self.c_hist.truncate(self.nb);
        if let Some(phi) = self.regressor() {
            // Standard RLS update.
            let p_phi = self.p.matvec(&phi)?;
            let denom = self.lambda + phi.dot(&p_phi);
            let gain = p_phi.scaled(1.0 / denom);
            let err = output - phi.dot(&self.theta);
            self.theta.axpy(err, &gain);
            // P = (P - gain·phiᵀ·P) / λ
            let phi_t_p = self.p.tr_matvec(&phi)?;
            let n = self.theta.len();
            for r in 0..n {
                for c in 0..n {
                    self.p[(r, c)] = (self.p[(r, c)] - gain[r] * phi_t_p[c]) / self.lambda;
                }
            }
            self.updates += 1;
        }
        // Shift output history (most recent first).
        self.t_hist.insert(0, output);
        self.t_hist.truncate(self.na.max(1));
        Ok(())
    }

    /// Current parameter estimate as an [`ArxModel`].
    pub fn model(&self) -> Result<ArxModel> {
        let a: Vec<f64> = (0..self.na).map(|j| self.theta[j]).collect();
        let mut b = Vec::with_capacity(self.nb);
        for j in 0..self.nb {
            b.push(
                (0..self.m)
                    .map(|i| self.theta[self.na + j * self.m + i])
                    .collect(),
            );
        }
        ArxModel::new(a, b, self.theta[self.theta.len() - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn true_model() -> ArxModel {
        ArxModel::new(
            vec![0.45],
            vec![vec![-180.0, -120.0], vec![-60.0, -40.0]],
            1400.0,
        )
        .unwrap()
    }

    /// Generate noiseless data from the true model under PRBS excitation.
    fn make_data(n: usize, noise: f64) -> ExperimentData {
        let model = true_model();
        let mut p1 = Prbs::new(0.6, 1.4, 3, 0xACE1);
        let mut p2 = Prbs::new(0.5, 1.2, 4, 0xBEEF);
        let mut rng_state: u64 = 7;
        let mut noise_next = move || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((rng_state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0) * noise
        };
        let mut data = ExperimentData::new();
        let mut t_hist = vec![800.0];
        let mut c_hist = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        for _ in 0..n {
            let c = vec![p1.next_level(), p2.next_level()];
            c_hist.rotate_right(1);
            c_hist[0] = c.clone();
            let t = model.predict(&t_hist, &c_hist).unwrap() + noise_next();
            t_hist[0] = t;
            data.push(c, t);
        }
        data
    }

    #[test]
    fn prbs_levels_and_hold() {
        let mut p = Prbs::new(-1.0, 1.0, 2, 1);
        let seq: Vec<f64> = (0..20).map(|_| p.next_level()).collect();
        assert!(seq.iter().all(|&v| v == -1.0 || v == 1.0));
        // Hold = 2: values come in pairs.
        for pair in seq.chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
        // Both levels appear.
        assert!(seq.contains(&-1.0) && seq.contains(&1.0));
    }

    #[test]
    fn prbs_zero_seed_survives() {
        let mut p = Prbs::new(0.0, 1.0, 1, 0);
        // Must not get stuck at all-zero state.
        let seq: Vec<f64> = (0..100).map(|_| p.next_level()).collect();
        assert!(seq.contains(&1.0));
    }

    #[test]
    fn fit_recovers_true_parameters_noiseless() {
        let data = make_data(300, 0.0);
        let fit = fit_arx(&data, 1, 2).unwrap();
        let m = fit.model;
        assert!((m.a()[0] - 0.45).abs() < 1e-6, "a = {:?}", m.a());
        assert!((m.b()[0][0] + 180.0).abs() < 1e-4);
        assert!((m.b()[0][1] + 120.0).abs() < 1e-4);
        assert!((m.b()[1][0] + 60.0).abs() < 1e-4);
        assert!((m.b()[1][1] + 40.0).abs() < 1e-4);
        assert!((m.bias() - 1400.0).abs() < 1e-3);
        assert!(fit.rmse < 1e-6);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn fit_with_noise_still_close() {
        let data = make_data(2000, 20.0);
        let fit = fit_arx(&data, 1, 2).unwrap();
        assert!((fit.model.a()[0] - 0.45).abs() < 0.05);
        assert!((fit.model.b()[0][0] + 180.0).abs() < 25.0);
        assert!(fit.r_squared > 0.9);
    }

    #[test]
    fn fit_rejects_insufficient_data() {
        let mut data = ExperimentData::new();
        for k in 0..5 {
            data.push(vec![1.0, 1.0], 100.0 + k as f64);
        }
        assert!(matches!(
            fit_arx(&data, 1, 2),
            Err(ControlError::InsufficientData { .. })
        ));
        assert!(matches!(
            fit_arx(&ExperimentData::new(), 1, 1),
            Err(ControlError::InsufficientData { .. })
        ));
    }

    #[test]
    fn fit_rejects_bad_orders_and_ragged_inputs() {
        let data = make_data(100, 0.0);
        assert!(matches!(
            fit_arx(&data, 1, 0),
            Err(ControlError::BadConfig(_))
        ));
        let mut ragged = ExperimentData::new();
        ragged.push(vec![1.0, 2.0], 1.0);
        ragged.push(vec![1.0], 2.0);
        for _ in 0..50 {
            ragged.push(vec![1.0, 2.0], 1.0);
        }
        assert!(fit_arx(&ragged, 1, 1).is_err());
    }

    #[test]
    fn order_selection_prefers_true_order() {
        let data = make_data(600, 5.0);
        let best = select_order(&data, 3, 3).unwrap();
        // With noise, AIC should not wildly overfit: orders stay small and
        // the chosen model fits well.
        assert!(best.model.na() <= 3);
        assert!(best.r_squared > 0.95);
    }

    #[test]
    fn rls_converges_to_true_parameters() {
        let data = make_data(800, 1.0);
        let mut rls = RecursiveLeastSquares::new(1, 2, 2, 1.0, 1e6).unwrap();
        for (c, &t) in data.inputs().iter().zip(data.outputs()) {
            rls.observe(c, t).unwrap();
        }
        assert!(rls.updates() > 700);
        let m = rls.model().unwrap();
        assert!((m.a()[0] - 0.45).abs() < 0.05, "a = {:?}", m.a());
        assert!((m.b()[0][0] + 180.0).abs() < 20.0, "b = {:?}", m.b());
    }

    #[test]
    fn rls_validates_inputs() {
        assert!(RecursiveLeastSquares::new(1, 0, 2, 1.0, 100.0).is_err());
        assert!(RecursiveLeastSquares::new(1, 1, 2, 0.0, 100.0).is_err());
        assert!(RecursiveLeastSquares::new(1, 1, 2, 1.5, 100.0).is_err());
        let mut rls = RecursiveLeastSquares::new(1, 1, 2, 1.0, 100.0).unwrap();
        assert!(rls.observe(&[1.0], 5.0).is_err());
    }

    #[test]
    fn rls_with_forgetting_tracks_parameter_change() {
        // Plant gain changes halfway; forgetting RLS should follow.
        let m1 = ArxModel::new(vec![0.3], vec![vec![-100.0]], 500.0).unwrap();
        let m2 = ArxModel::new(vec![0.3], vec![vec![-200.0]], 500.0).unwrap();
        let mut rls = RecursiveLeastSquares::new(1, 1, 1, 0.97, 1e6).unwrap();
        let mut prbs = Prbs::new(0.5, 1.5, 2, 77);
        let mut t_hist = vec![0.0];
        let mut c_hist = vec![vec![1.0]];
        for step in 0..1200 {
            let model = if step < 600 { &m1 } else { &m2 };
            let c = vec![prbs.next_level()];
            c_hist[0] = c.clone();
            let t = model.predict(&t_hist, &c_hist).unwrap();
            t_hist[0] = t;
            rls.observe(&c, t).unwrap();
        }
        let m = rls.model().unwrap();
        assert!(
            (m.b()[0][0] + 200.0).abs() < 30.0,
            "tracked gain {:?} should be near -200",
            m.b()
        );
    }
}
