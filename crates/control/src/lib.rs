//! Control-theory substrate for `vdcpower`: ARX modeling, system
//! identification, and Model Predictive Control.
//!
//! This crate implements §IV of the paper ("Response Time Controller"):
//!
//! * [`arx`] — the MISO ARX model class of eq. (1):
//!   `t(k) = Σ aₘ t(k−m) + Σ bₘᵀ c(k−m) + γ`, relating an application's
//!   90-percentile response time to the CPU allocations of its tier VMs.
//! * [`sysid`] — "standard approach … called system identification":
//!   pseudo-random excitation design, batch least-squares ARX fitting with
//!   fit metrics and AIC order selection, and recursive least squares for
//!   online adaptation.
//! * `reference` — the exponential reference trajectory of eq. (3).
//! * [`mpc`] — the model predictive controller of §IV-B: lifted
//!   step-response predictor, quadratic cost of eq. (2), terminal
//!   constraint of eq. (4), allocation box constraints, receding-horizon
//!   application of the first move.
//! * [`robust`] — a model-free robust provisioning alternative (fixed
//!   gains on filtered relative RT error, after Makridis et al.,
//!   arXiv:1811.05533).
//! * [`cooling`] — the cooling-coupled MPC variant (PUE-weighted energy
//!   term in the objective, after Ogura et al., arXiv:1806.03375).
//! * [`stability`] — pole analysis of identified models plus closed-loop
//!   simulation probes.
//! * [`analysis`] — numerical linearization of the full receding-horizon
//!   law and closed-loop spectral radii (the paper invokes the
//!   terminal-constraint stability argument from optimal control; we
//!   verify it numerically).

#![warn(missing_docs)]

pub mod analysis;
pub mod arx;
pub mod cooling;
pub mod mpc;
pub mod observer;
pub mod reference;
pub mod robust;
pub mod stability;
pub mod sysid;

pub use analysis::{achievable_range, analyze_closed_loop, setpoint_feasible, ClosedLoopAnalysis};
pub use arx::ArxModel;
pub use cooling::CoolingMpc;
pub use mpc::{MpcConfig, MpcController};
pub use observer::DisturbanceKalman;
pub use reference::ReferenceTrajectory;
pub use robust::{RobustConfig, RobustController};
pub use sysid::{fit_arx, ArxFit, ExperimentData, Prbs, RecursiveLeastSquares};

/// Errors from model construction, identification, or control.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlError {
    /// Model orders or data shapes are inconsistent.
    BadDimensions(String),
    /// Not enough data points to identify the requested model.
    InsufficientData {
        /// Number of usable regression rows available.
        available: usize,
        /// Number of rows required.
        required: usize,
    },
    /// The underlying linear-algebra routine failed.
    Numerical(vdc_linalg::LinalgError),
    /// The QP solver failed.
    Qp(String),
    /// A configuration value is invalid (e.g. M > P, non-positive weight).
    BadConfig(String),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::BadDimensions(s) => write!(f, "bad dimensions: {s}"),
            ControlError::InsufficientData {
                available,
                required,
            } => write!(
                f,
                "insufficient identification data: {available} rows available, {required} required"
            ),
            ControlError::Numerical(e) => write!(f, "numerical failure: {e}"),
            ControlError::Qp(s) => write!(f, "QP failure: {s}"),
            ControlError::BadConfig(s) => write!(f, "bad configuration: {s}"),
        }
    }
}

impl std::error::Error for ControlError {}

impl From<vdc_linalg::LinalgError> for ControlError {
    fn from(e: vdc_linalg::LinalgError) -> Self {
        ControlError::Numerical(e)
    }
}

/// Result alias for control operations.
pub type Result<T> = std::result::Result<T, ControlError>;
