//! Robust dynamic provisioning controller (after Makridis et al.,
//! arXiv:1811.05533).
//!
//! Where the MPC of [`crate::mpc`] optimizes over an identified ARX model,
//! this controller is deliberately *model-free*: a fixed robust gain pair
//! acting on the EWMA-filtered **relative** response-time error
//!
//! ```text
//! e(k) = (t(k) − Ts) / Ts
//! ```
//!
//! in velocity (incremental) form,
//!
//! ```text
//! Δc(k) = Kp · (ē(k) − ē(k−1)) + Ki · ē(k)
//! ```
//!
//! applied uniformly to every tier and clamped to a per-period move bound
//! and the allocation box. The velocity form carries its integral action in
//! the *applied allocation* rather than an explicit integrator state, so
//! saturation cannot wind anything up, and the only dynamic state is the
//! filtered error — which is why the controller needs no re-identification
//! when the plant drifts: there is no model to go stale. The price is
//! slower, first-order convergence and no per-tier preference shaping; the
//! paper's MPC wins on tracking, this controller wins on robustness to
//! model mismatch and on cost (no least-squares solve per period).

use crate::{ControlError, Result};
use vdc_telemetry::Telemetry;

/// Configuration of the robust provisioning controller.
#[derive(Debug, Clone)]
pub struct RobustConfig {
    /// Proportional gain on the filtered relative-error *increment*
    /// (GHz per unit of relative error).
    pub kp: f64,
    /// Integral gain on the filtered relative error (GHz per period per
    /// unit of relative error). Must be positive — this is the term that
    /// makes tracking offset-free.
    pub ki: f64,
    /// EWMA weight of the newest relative-error sample, in `(0, 1]`.
    pub filter_alpha: f64,
    /// Relative-error deadband: filtered errors within it hold the
    /// allocation (no noise-chasing near the set point).
    pub deadband: f64,
    /// Per-tier minimum allocation (GHz).
    pub c_min: f64,
    /// Per-tier maximum allocation (GHz).
    pub c_max: f64,
    /// Per-period move bound (GHz).
    pub delta_max: f64,
}

impl Default for RobustConfig {
    /// Gains sized for the workspace's RUBBoS-like plants: the same
    /// allocation box and rate limit the MPC controller uses, a half-weight
    /// error filter, and a 2 % deadband.
    fn default() -> Self {
        RobustConfig {
            kp: 0.8,
            ki: 0.35,
            filter_alpha: 0.5,
            deadband: 0.02,
            c_min: 0.3,
            c_max: 3.0,
            delta_max: 0.3,
        }
    }
}

impl RobustConfig {
    fn validate(&self) -> Result<()> {
        if !self.kp.is_finite() || self.kp < 0.0 {
            return Err(ControlError::BadConfig(format!(
                "kp {} must be finite and >= 0",
                self.kp
            )));
        }
        if !self.ki.is_finite() || self.ki <= 0.0 {
            return Err(ControlError::BadConfig(format!(
                "ki {} must be finite and > 0 (integral action is what tracks)",
                self.ki
            )));
        }
        if !(self.filter_alpha > 0.0 && self.filter_alpha <= 1.0) {
            return Err(ControlError::BadConfig(format!(
                "filter_alpha {} must be in (0, 1]",
                self.filter_alpha
            )));
        }
        if !self.deadband.is_finite() || self.deadband < 0.0 {
            return Err(ControlError::BadConfig(format!(
                "deadband {} must be finite and >= 0",
                self.deadband
            )));
        }
        if !self.c_min.is_finite() || !self.c_max.is_finite() || self.c_min > self.c_max {
            return Err(ControlError::BadConfig(format!(
                "allocation bounds [{}, {}] must be finite with c_min <= c_max",
                self.c_min, self.c_max
            )));
        }
        if !self.delta_max.is_finite() || self.delta_max <= 0.0 {
            return Err(ControlError::BadConfig(format!(
                "delta_max {} must be finite and > 0",
                self.delta_max
            )));
        }
        Ok(())
    }
}

/// The model-free robust controller: fixed gains, filtered relative error,
/// bounded moves. See the module docs for the control law.
#[derive(Debug, Clone)]
pub struct RobustController {
    cfg: RobustConfig,
    setpoint_ms: f64,
    alloc: Vec<f64>,
    /// EWMA-filtered relative error `ē(k)`.
    filtered_error: Option<f64>,
    /// Previous filtered error `ē(k−1)` for the velocity term.
    prev_error: Option<f64>,
    telemetry: Telemetry,
}

impl RobustController {
    /// Build a controller targeting `setpoint_ms` from the initial per-tier
    /// allocation `c0` (clamped into the configured box).
    pub fn new(setpoint_ms: f64, cfg: RobustConfig, c0: &[f64]) -> Result<RobustController> {
        cfg.validate()?;
        if !(setpoint_ms.is_finite() && setpoint_ms > 0.0) {
            return Err(ControlError::BadConfig(format!(
                "setpoint {setpoint_ms} ms must be positive"
            )));
        }
        if c0.is_empty() {
            return Err(ControlError::BadDimensions("need at least one tier".into()));
        }
        let alloc = c0.iter().map(|c| c.clamp(cfg.c_min, cfg.c_max)).collect();
        Ok(RobustController {
            cfg,
            setpoint_ms,
            alloc,
            filtered_error: None,
            prev_error: None,
            telemetry: Telemetry::disabled(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &RobustConfig {
        &self.cfg
    }

    /// Currently applied allocation (GHz per tier).
    pub fn allocation(&self) -> &[f64] {
        &self.alloc
    }

    /// Current set point (ms).
    pub fn setpoint(&self) -> f64 {
        self.setpoint_ms
    }

    /// Change the set point (ms) at run time; non-positive or non-finite
    /// values are ignored (the relative error divides by the set point).
    pub fn set_setpoint(&mut self, setpoint_ms: f64) {
        if setpoint_ms.is_finite() && setpoint_ms > 0.0 {
            self.setpoint_ms = setpoint_ms;
        }
    }

    /// Replace the allocation box in place. The applied allocation is
    /// clamped into the new box; the error filter survives (no model, no
    /// histories — nothing else to reset). Invalid bounds are rejected and
    /// leave the old box in force.
    pub fn set_bounds(&mut self, c_min: f64, c_max: f64) -> Result<()> {
        let mut cfg = self.cfg.clone();
        cfg.c_min = c_min;
        cfg.c_max = c_max;
        cfg.validate()?;
        self.cfg = cfg;
        for c in &mut self.alloc {
            *c = c.clamp(c_min, c_max);
        }
        Ok(())
    }

    /// Attach a telemetry sink (`robust.steps` / `robust.holds` counters).
    /// Telemetry only observes — it never alters the control law.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry sink.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Reset the error filter (sensor-outage re-entry: pre-outage errors
    /// are stale). The next measurement seeds the filter fresh, and with
    /// `ē(k−1)` unknown the velocity term vanishes on that first sample —
    /// re-entry moves by at most `Ki · ē`, gentle by construction.
    pub fn reset_filter(&mut self) {
        self.filtered_error = None;
        self.prev_error = None;
    }

    /// Force the applied allocation (clamped into the box) and reset the
    /// error filter — the starvation-watchdog path.
    pub fn force_allocation(&mut self, alloc: &[f64]) -> Result<()> {
        if alloc.len() != self.alloc.len() {
            return Err(ControlError::BadDimensions(format!(
                "forced allocation has {} entries, controller has {} tiers",
                alloc.len(),
                self.alloc.len()
            )));
        }
        self.alloc = alloc
            .iter()
            .map(|c| c.clamp(self.cfg.c_min, self.cfg.c_max))
            .collect();
        self.reset_filter();
        Ok(())
    }

    /// Feed the response-time measurement for the period that just ended
    /// and compute the next allocation (applied uniformly to every tier).
    pub fn step(&mut self, t_measured_ms: f64) -> &[f64] {
        let e = (t_measured_ms - self.setpoint_ms) / self.setpoint_ms;
        let filtered = match self.filtered_error {
            Some(prev) => self.cfg.filter_alpha * e + (1.0 - self.cfg.filter_alpha) * prev,
            None => e,
        };
        let prev = self.prev_error.unwrap_or(filtered);
        self.filtered_error = Some(filtered);
        self.prev_error = Some(filtered);
        if filtered.abs() <= self.cfg.deadband {
            self.telemetry.incr("robust.holds", 1);
            return &self.alloc;
        }
        self.telemetry.incr("robust.steps", 1);
        let delta = (self.cfg.kp * (filtered - prev) + self.cfg.ki * filtered)
            .clamp(-self.cfg.delta_max, self.cfg.delta_max);
        for c in &mut self.alloc {
            *c = (*c + delta).clamp(self.cfg.c_min, self.cfg.c_max);
        }
        &self.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArxModel;

    /// The mpc-module plant: t∞ = (1400 − 300c₁ − 100c₂) / 0.55, so the
    /// 1000 ms set point sits at c₁ = c₂ ≈ 2.12 when tiers move together.
    fn plant_model() -> ArxModel {
        ArxModel::new(
            vec![0.45],
            vec![vec![-180.0, -120.0], vec![-60.0, -40.0]],
            1400.0,
        )
        .unwrap()
    }

    /// Closed loop against the exact ARX plant (the controller never sees
    /// the model — it is model-free by design).
    fn run_closed_loop(
        ctrl: &mut RobustController,
        plant: &ArxModel,
        steps: usize,
        t0: f64,
    ) -> Vec<f64> {
        let mut t_hist = vec![t0; plant.na()];
        let mut c_hist = vec![ctrl.allocation().to_vec(); plant.nb()];
        let mut t = t0;
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            let alloc = ctrl.step(t).to_vec();
            c_hist.insert(0, alloc);
            c_hist.truncate(plant.nb());
            t = plant.predict(&t_hist, &c_hist).unwrap();
            t_hist.insert(0, t);
            t_hist.truncate(plant.na().max(1));
            out.push(t);
        }
        out
    }

    #[test]
    fn config_validation() {
        let ok = RobustConfig::default();
        assert!(RobustController::new(1000.0, ok.clone(), &[1.0, 1.0]).is_ok());
        assert!(RobustController::new(0.0, ok.clone(), &[1.0, 1.0]).is_err());
        assert!(RobustController::new(1000.0, ok.clone(), &[]).is_err());
        let bad = |f: &dyn Fn(&mut RobustConfig)| {
            let mut cfg = RobustConfig::default();
            f(&mut cfg);
            RobustController::new(1000.0, cfg, &[1.0, 1.0]).is_err()
        };
        assert!(bad(&|c| c.ki = 0.0));
        assert!(bad(&|c| c.kp = -1.0));
        assert!(bad(&|c| c.filter_alpha = 0.0));
        assert!(bad(&|c| c.filter_alpha = 1.5));
        assert!(bad(&|c| c.deadband = -0.1));
        assert!(bad(&|c| {
            c.c_min = 2.0;
            c.c_max = 1.0;
        }));
        assert!(bad(&|c| c.delta_max = 0.0));
    }

    #[test]
    fn converges_to_setpoint_on_arx_plant() {
        let plant = plant_model();
        let mut ctrl = RobustController::new(1000.0, RobustConfig::default(), &[1.0, 1.0]).unwrap();
        let traj = run_closed_loop(&mut ctrl, &plant, 120, 2000.0);
        let tail = &traj[90..];
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        // The deadband tolerates 2 % (±20 ms); converge well inside 5 %.
        assert!(
            (mean - 1000.0).abs() < 50.0,
            "steady state {mean} ms vs 1000 ms set point"
        );
    }

    #[test]
    fn converges_from_below_too() {
        let plant = plant_model();
        let mut ctrl = RobustController::new(1200.0, RobustConfig::default(), &[2.5, 2.5]).unwrap();
        let traj = run_closed_loop(&mut ctrl, &plant, 120, 500.0);
        let mean = traj[90..].iter().sum::<f64>() / 30.0;
        assert!((mean - 1200.0).abs() < 60.0, "steady state {mean} ms");
    }

    #[test]
    fn tolerates_plant_drift_without_reidentification() {
        // The robustness claim: halve the plant's gains mid-run (a drift
        // that would invalidate an identified model) and the fixed-gain
        // loop still recovers the set point.
        let strong = plant_model();
        let weak = ArxModel::new(
            vec![0.45],
            vec![vec![-90.0, -60.0], vec![-30.0, -20.0]],
            1400.0,
        )
        .unwrap();
        let mut ctrl = RobustController::new(1400.0, RobustConfig::default(), &[1.0, 1.0]).unwrap();
        let _ = run_closed_loop(&mut ctrl, &strong, 80, 2000.0);
        let traj = run_closed_loop(&mut ctrl, &weak, 160, 1400.0);
        let mean = traj[130..].iter().sum::<f64>() / 30.0;
        assert!(
            (mean - 1400.0).abs() < 70.0,
            "post-drift steady state {mean} ms vs 1400 ms"
        );
    }

    #[test]
    fn respects_box_and_rate_limit() {
        let plant = plant_model();
        let mut cfg = RobustConfig::default();
        cfg.c_max = 1.5;
        let mut ctrl = RobustController::new(100.0, cfg, &[1.0, 1.0]).unwrap(); // unreachable
        let _ = run_closed_loop(&mut ctrl, &plant, 5, 2000.0);
        let mut prev = ctrl.allocation().to_vec();
        for _ in 0..40 {
            let next = ctrl.step(2000.0).to_vec();
            for (n, p) in next.iter().zip(&prev) {
                assert!((n - p).abs() <= 0.3 + 1e-12, "rate limit violated");
                assert!(
                    (0.3..=1.5 + 1e-12).contains(n),
                    "allocation {n} outside box"
                );
            }
            prev = next;
        }
        assert!(ctrl.allocation()[0] > 1.49, "should saturate at c_max");
    }

    #[test]
    fn deadband_holds_near_the_setpoint() {
        let mut ctrl = RobustController::new(1000.0, RobustConfig::default(), &[2.0, 2.0]).unwrap();
        let before = ctrl.allocation().to_vec();
        // 1 % error sits inside the 2 % deadband.
        let after = ctrl.step(1010.0).to_vec();
        assert_eq!(before, after, "deadband must hold the allocation");
    }

    #[test]
    fn filter_reset_gives_gentle_reentry() {
        let mut ctrl = RobustController::new(1000.0, RobustConfig::default(), &[1.0, 1.0]).unwrap();
        // Build up a large error history, then reset (sensor outage).
        let _ = ctrl.step(3000.0);
        let _ = ctrl.step(3000.0);
        ctrl.reset_filter();
        let before = ctrl.allocation().to_vec();
        let after = ctrl.step(1300.0).to_vec();
        // With the velocity term vanished the move is at most Ki·ē.
        let cfg = RobustConfig::default();
        let expect = cfg.ki * 0.3;
        for (b, a) in before.iter().zip(&after) {
            assert!(
                (a - b).abs() <= expect + 1e-12,
                "re-entry move {} vs bound {expect}",
                a - b
            );
        }
    }

    #[test]
    fn bounds_edit_and_forced_allocation() {
        let mut ctrl = RobustController::new(1000.0, RobustConfig::default(), &[2.8, 2.8]).unwrap();
        ctrl.set_bounds(0.5, 2.0).unwrap();
        assert!(ctrl.allocation().iter().all(|&c| c <= 2.0));
        assert!(ctrl.set_bounds(3.0, 1.0).is_err());
        assert_eq!(ctrl.config().c_max, 2.0, "failed edit leaves old box");
        ctrl.force_allocation(&[1.2, 9.0]).unwrap();
        assert_eq!(ctrl.allocation(), &[1.2, 2.0]);
        assert!(ctrl.force_allocation(&[1.0]).is_err());
    }

    #[test]
    fn setpoint_guarding() {
        let mut ctrl = RobustController::new(1000.0, RobustConfig::default(), &[1.0, 1.0]).unwrap();
        ctrl.set_setpoint(0.0);
        assert_eq!(ctrl.setpoint(), 1000.0);
        ctrl.set_setpoint(f64::NAN);
        assert_eq!(ctrl.setpoint(), 1000.0);
        ctrl.set_setpoint(700.0);
        assert_eq!(ctrl.setpoint(), 700.0);
    }
}
