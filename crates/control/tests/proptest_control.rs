//! Property-based tests for the control layer: identification recovers
//! arbitrary stable models, the reference trajectory behaves like a
//! first-order system, and the MPC never violates its constraints.

use vdc_check::{check, f64_range, from_fn, prop_assert, prop_assume, vec_of, Gen, TestRng};
use vdc_control::arx::ArxModel;
use vdc_control::mpc::{MpcConfig, MpcController};
use vdc_control::reference::ReferenceTrajectory;
use vdc_control::stability::{is_stable, model_spectral_radius};
use vdc_control::sysid::{fit_arx, ExperimentData, Prbs};

const CASES: u32 = 32;

/// A random stable ARX(1, 2) model with 2 inputs and negative gains (the
/// physical shape of a response-time model).
fn gen_stable_model(rng: &mut TestRng) -> ArxModel {
    let a = rng.f64_in(-0.8, 0.8);
    let b1 = vec![rng.f64_in(-300.0, -20.0), rng.f64_in(-300.0, -20.0)];
    let b2 = vec![rng.f64_in(-100.0, -5.0), rng.f64_in(-100.0, -5.0)];
    let bias = rng.f64_in(500.0, 2500.0);
    ArxModel::new(vec![a], vec![b1, b2], bias).unwrap()
}

fn stable_model() -> impl Gen<Value = ArxModel> {
    from_fn(gen_stable_model)
}

/// Simulate `model` under PRBS excitation into an identification data set.
fn excite(model: &ArxModel, n: usize, seed: u16) -> ExperimentData {
    let mut p1 = Prbs::new(0.5, 1.4, 3, seed | 1);
    let mut p2 = Prbs::new(0.4, 1.2, 4, seed.wrapping_add(77) | 1);
    let mut data = ExperimentData::new();
    let mut t_hist = vec![model.bias()];
    let mut c_hist = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
    for _ in 0..n {
        let c = vec![p1.next_level(), p2.next_level()];
        c_hist.rotate_right(1);
        c_hist[0] = c.clone();
        let t = model.predict(&t_hist, &c_hist).unwrap();
        t_hist[0] = t;
        data.push(c, t);
    }
    data
}

#[test]
fn identification_recovers_any_stable_model() {
    let gen = from_fn(|rng: &mut TestRng| (gen_stable_model(rng), rng.u64_in(1, 5000) as u16));
    check(CASES, &gen, |(model, seed)| {
        let data = excite(model, 260, *seed);
        let fit = fit_arx(&data, 1, 2).unwrap();
        prop_assert!(
            (fit.model.a()[0] - model.a()[0]).abs() < 1e-4,
            "a: {} vs {}",
            fit.model.a()[0],
            model.a()[0]
        );
        for lag in 0..2 {
            for ch in 0..2 {
                prop_assert!(
                    (fit.model.b()[lag][ch] - model.b()[lag][ch]).abs() < 1e-2,
                    "b[{lag}][{ch}]: {} vs {}",
                    fit.model.b()[lag][ch],
                    model.b()[lag][ch]
                );
            }
        }
        prop_assert!(fit.r_squared > 0.999);
        Ok(())
    });
}

#[test]
fn stability_analysis_matches_ar_coefficient() {
    check(CASES, &f64_range(-0.99, 0.99), |&a| {
        let m = ArxModel::new(vec![a], vec![vec![-100.0]], 1000.0).unwrap();
        let rho = model_spectral_radius(&m).unwrap();
        prop_assert!((rho - a.abs()).abs() < 1e-7);
        prop_assert!(is_stable(&m, 0.0).unwrap());
        Ok(())
    });
}

#[test]
fn reference_trajectory_is_exponential() {
    let gen = (
        f64_range(0.5, 10.0),
        f64_range(1.0, 60.0),
        f64_range(100.0, 2000.0),
        f64_range(100.0, 4000.0),
    );
    check(CASES, &gen, |&(period, tau, ts, t0)| {
        let r = ReferenceTrajectory::new(period, tau).unwrap();
        // First-order recursion: ref(i+1) - Ts = decay * (ref(i) - Ts).
        let d = r.decay();
        for i in 0..20 {
            let lhs = r.at(ts, t0, i + 1) - ts;
            let rhs = d * (r.at(ts, t0, i) - ts);
            prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + rhs.abs()));
        }
        // Error shrinks monotonically.
        let e0 = (r.at(ts, t0, 1) - ts).abs();
        let e5 = (r.at(ts, t0, 6) - ts).abs();
        prop_assert!(e5 <= e0 + 1e-12);
        Ok(())
    });
}

#[test]
fn mpc_always_respects_box_and_rate_limits() {
    let gen = (
        stable_model(),
        vec_of(f64_range(200.0, 3500.0), 10, 11),
        f64_range(0.2, 0.6),
        f64_range(0.5, 2.5),
        f64_range(0.05, 0.5),
    );
    check(CASES, &gen, |(model, t_seq, c_lo, width, rate)| {
        let reference = ReferenceTrajectory::new(4.0, 12.0).unwrap();
        let cfg = MpcConfig {
            prediction_horizon: 8,
            control_horizon: 2,
            q_weight: 1.0,
            r_weight: vec![1e3; 2],
            reference,
            setpoint: 1000.0,
            c_min: vec![*c_lo; 2],
            c_max: vec![c_lo + width; 2],
            delta_max: Some(*rate),
            terminal_constraint: true,
        };
        let mut ctrl = MpcController::new(model.clone(), cfg, &[c_lo + width / 2.0; 2]).unwrap();
        let mut prev = ctrl.current_allocation().to_vec();
        for t in t_seq {
            let step = ctrl.step(*t).unwrap();
            for (a, p) in step.allocation.iter().zip(&prev) {
                prop_assert!(*a >= c_lo - 1e-9);
                prop_assert!(*a <= c_lo + width + 1e-9);
                prop_assert!(
                    (a - p).abs() <= rate + 1e-9,
                    "rate limit violated: {} -> {}",
                    p,
                    a
                );
            }
            prev = step.allocation;
        }
        Ok(())
    });
}

#[test]
fn mpc_converges_on_its_own_model() {
    check(CASES, &stable_model(), |model| {
        // Closed loop against the exact model from a random start: the
        // terminal-constraint MPC must settle near the set point when it is
        // reachable within the box.
        let reference = ReferenceTrajectory::new(4.0, 12.0).unwrap();
        // Reachability: pick a set point inside the plant's range over the
        // box [0.2, 3.0]².
        let t_at = |c: f64| {
            let denom = 1.0 - model.a()[0];
            let sum_b: f64 = model.b().iter().map(|lag| lag.iter().sum::<f64>()).sum();
            (model.bias() + sum_b * c) / denom
        };
        let (hi, lo) = (t_at(0.4), t_at(2.5));
        let ts = 0.5 * (hi + lo);
        prop_assume!(ts > 50.0);
        let cfg = MpcConfig {
            prediction_horizon: 8,
            control_horizon: 2,
            q_weight: 1.0,
            r_weight: vec![1e2; 2],
            reference,
            setpoint: ts,
            c_min: vec![0.2; 2],
            c_max: vec![3.0; 2],
            delta_max: Some(0.5),
            terminal_constraint: true,
        };
        let mut ctrl = MpcController::new(model.clone(), cfg, &[1.0, 1.0]).unwrap();
        let mut t_hist = vec![t_at(1.0)];
        let mut c_hist = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let mut t = t_hist[0];
        for _ in 0..60 {
            let step = ctrl.step(t).unwrap();
            c_hist.rotate_right(1);
            c_hist[0] = step.allocation.clone();
            t = model.predict(&t_hist, &c_hist).unwrap();
            t_hist[0] = t;
        }
        prop_assert!(
            (t - ts).abs() < 0.05 * ts.abs() + 5.0,
            "did not converge: {t} vs {ts}"
        );
        Ok(())
    });
}
