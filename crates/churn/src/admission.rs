//! Admission-control policies for VM arrivals.
//!
//! When Minimum Slack finds no feasible active server for an arriving VM,
//! the run loop consults the configured policy. All three outcomes are
//! counted in telemetry (`churn.rejections`, `churn.queue_depth`,
//! `churn.wake_retries`) so scenario tables can compare policies.

/// What to do with an arrival that no active server can host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Turn the VM away immediately (counted in `churn.rejections`).
    Reject,
    /// Keep the VM registered but unplaced and retry admission at every
    /// subsequent sample until it fits or its departure time passes
    /// (`churn.queue_depth` gauges the backlog).
    Queue,
    /// Wake the most efficient sleeping server that fits the VM and place
    /// it there, modeling the host's wake latency as an admission delay
    /// (the VM's demand starts one sample late and the wait is recorded in
    /// the `churn.wake_wait_ns` histogram); if no sleeping server fits
    /// either, fall back to rejection.
    #[default]
    WakeAndRetry,
}

impl std::fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionPolicy::Reject => write!(f, "reject"),
            AdmissionPolicy::Queue => write!(f, "queue"),
            AdmissionPolicy::WakeAndRetry => write!(f, "wake-and-retry"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_are_stable() {
        assert_eq!(AdmissionPolicy::Reject.to_string(), "reject");
        assert_eq!(AdmissionPolicy::Queue.to_string(), "queue");
        assert_eq!(AdmissionPolicy::WakeAndRetry.to_string(), "wake-and-retry");
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::WakeAndRetry);
    }
}
