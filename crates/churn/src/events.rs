//! Timestamped VM lifecycle events.
//!
//! An event stream is a `Vec<VmEvent>` sorted ascending by sample index
//! (ties keep generation order, which the workload generator fixes once —
//! steady-state arrivals in time order, then flash-crowd bursts). The run
//! loop walks the stream with a cursor: at each sample it applies every
//! departure due at that sample, then every arrival, so the set of live
//! VMs a control period sees is a pure function of the stream and never
//! of shard count.

/// What happens to a churn VM at its event time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Churn VM `k` (an index into the workload's demand trace) asks for
    /// admission.
    Arrive(usize),
    /// Churn VM `k` departs; its arena slot is freed for recycling. A
    /// departure for a VM that was rejected at admission is a no-op.
    Depart(usize),
}

/// One timestamped lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmEvent {
    /// Sample index (multiple of the trace interval) the event fires at.
    pub at_sample: usize,
    /// Arrival or departure.
    pub kind: EventKind,
}

impl VmEvent {
    /// An arrival of churn VM `k` at `at_sample`.
    pub fn arrive(at_sample: usize, k: usize) -> VmEvent {
        VmEvent {
            at_sample,
            kind: EventKind::Arrive(k),
        }
    }

    /// A departure of churn VM `k` at `at_sample`.
    pub fn depart(at_sample: usize, k: usize) -> VmEvent {
        VmEvent {
            at_sample,
            kind: EventKind::Depart(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_tag_the_kind() {
        assert_eq!(VmEvent::arrive(3, 7).kind, EventKind::Arrive(7));
        assert_eq!(VmEvent::depart(9, 1).kind, EventKind::Depart(1));
        assert_eq!(VmEvent::arrive(3, 7).at_sample, 3);
    }
}
