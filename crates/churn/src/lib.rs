//! VM lifecycle churn: deterministic workload events and admission control.
//!
//! The paper's IPAC (§V) is an *incremental* consolidation algorithm, but
//! a fixed-population replay only ever exercises it from a quasi-static
//! placement. This crate supplies the missing axis: a deterministic
//! stream of timestamped VM lifecycle events — steady arrivals whose rate
//! follows a diurnal profile, exponential lifetimes, and batch flash
//! crowds — plus the admission policies consulted when Minimum Slack
//! finds no feasible server for an arrival. `vdc-core`'s `run_churn`
//! replays the stream against the control/optimizer cadence, so IPAC
//! re-plans against a placement that drifts between invocations.
//!
//! Everything is drawn from [`vdc_apptier::rng::SimRng`] under a single
//! workload seed and generated up front, single-threaded; run loops only
//! read the workload, preserving bit-identical sharded replay.

pub mod admission;
pub mod events;
pub mod workload;

pub use admission::AdmissionPolicy;
pub use events::{EventKind, VmEvent};
pub use workload::{ChurnConfig, ChurnWorkload, FlashCrowd};
