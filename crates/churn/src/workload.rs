//! Deterministic churn-workload generation.
//!
//! A [`ChurnWorkload`] is the replayable artifact: a sorted lifecycle
//! event stream plus one sector-trace demand row per churn VM, all drawn
//! from [`vdc_apptier::rng::SimRng`] so the same seed always produces the
//! same workload. Generation is strictly single-threaded and happens
//! before any run loop starts; the run loop only *reads* the workload, so
//! sharded replays stay bit-identical at every shard count.
//!
//! Steady-state arrivals are a per-sample Poisson draw whose rate follows
//! a raised-cosine diurnal profile (the same shape the sector traces in
//! `vdc-trace` use for utilization); each arrival's lifetime is
//! exponential. Flash crowds are batch bursts at fixed samples layered on
//! top. Per-VM demand curves and memory footprints come from
//! [`vdc_trace::generate_trace`], so churn VMs look statistically like the
//! base population.

use crate::events::{EventKind, VmEvent};
use vdc_apptier::rng::{seed_stream, SimRng};
use vdc_trace::{generate_trace, TraceConfig, UtilizationTrace};

/// RNG stream tags so the event draw and the demand-trace draw never
/// overlap even though both derive from the same workload seed.
const STREAM_EVENTS: u64 = 0x5648_4552; // "VHER"
const STREAM_DEMAND: u64 = 0x5644_454D; // "VDEM"

/// A batch burst of arrivals at one sample — the "flash crowd" of the
/// scenario tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Sample index the burst lands on.
    pub at_sample: usize,
    /// Number of VMs arriving in the burst.
    pub arrivals: usize,
    /// Mean of the exponential lifetime draw for burst VMs (seconds);
    /// flash-crowd tenants are typically short-lived.
    pub mean_lifetime_s: f64,
}

/// Configuration of the churn generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Mean steady-state arrival rate (VMs per day) before diurnal
    /// modulation.
    pub arrivals_per_day: f64,
    /// Diurnal modulation depth in `[0, 1]`: the per-sample arrival rate
    /// is scaled by `1 + amplitude * cos(angle to peak_hour)`, so 0 means
    /// a flat rate and 1 doubles the rate at the peak and zeroes it at the
    /// trough.
    pub diurnal_amplitude: f64,
    /// Hour of day (0–24) the arrival rate peaks at.
    pub peak_hour: f64,
    /// Mean of the exponential lifetime draw for steady-state arrivals
    /// (seconds).
    pub mean_lifetime_s: f64,
    /// Batch bursts layered on the steady stream.
    pub flash_crowds: Vec<FlashCrowd>,
    /// Workload seed (fully deterministic given the seed).
    pub seed: u64,
}

impl ChurnConfig {
    /// A steady diurnal stream with no bursts: `arrivals_per_day` mean
    /// arrivals, one-day mean lifetime, business-hours peak.
    pub fn steady(arrivals_per_day: f64, seed: u64) -> ChurnConfig {
        ChurnConfig {
            arrivals_per_day,
            diurnal_amplitude: 0.6,
            peak_hour: 14.0,
            mean_lifetime_s: 86_400.0,
            flash_crowds: Vec::new(),
            seed,
        }
    }

    /// The steady stream plus one flash crowd of `arrivals` short-lived
    /// VMs (2-hour mean lifetime) landing at `at_sample`.
    pub fn with_flash_crowd(
        arrivals_per_day: f64,
        at_sample: usize,
        arrivals: usize,
        seed: u64,
    ) -> ChurnConfig {
        let mut cfg = ChurnConfig::steady(arrivals_per_day, seed);
        cfg.flash_crowds.push(FlashCrowd {
            at_sample,
            arrivals,
            mean_lifetime_s: 7_200.0,
        });
        cfg
    }
}

/// A generated, replayable churn workload: the sorted event stream and
/// one demand row per churn VM.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnWorkload {
    events: Vec<VmEvent>,
    /// Demand/meta rows, one per churn VM index `k`.
    trace: UtilizationTrace,
    n_samples: usize,
}

impl ChurnWorkload {
    /// Generate the workload for a horizon of `n_samples` samples spaced
    /// `interval_s` seconds apart (match these to the base trace the run
    /// replays). Arrival order — and therefore churn VM indices — is
    /// steady-state arrivals in time order first, then flash-crowd bursts
    /// in declaration order.
    pub fn generate(cfg: &ChurnConfig, n_samples: usize, interval_s: f64) -> ChurnWorkload {
        assert!(n_samples > 0, "churn workload needs a non-empty horizon");
        assert!(interval_s > 0.0, "churn workload needs a positive interval");
        assert!(
            (0.0..=1.0).contains(&cfg.diurnal_amplitude),
            "diurnal amplitude {} outside [0, 1]",
            cfg.diurnal_amplitude
        );
        let mut rng = SimRng::seed_from_u64(seed_stream(cfg.seed, STREAM_EVENTS));
        let mut events = Vec::new();
        let mut next_k = 0usize;
        let mut spawn =
            |events: &mut Vec<VmEvent>, rng: &mut SimRng, t: usize, mean_lifetime_s: f64| {
                let k = next_k;
                next_k += 1;
                events.push(VmEvent::arrive(t, k));
                let lifetime_samples =
                    ((rng.exponential(mean_lifetime_s) / interval_s).ceil() as usize).max(1);
                if let Some(depart) = t.checked_add(lifetime_samples) {
                    if depart < n_samples {
                        events.push(VmEvent::depart(depart, k));
                    }
                }
            };

        // Steady stream: per-sample Poisson draw at the diurnal rate.
        let per_sample = cfg.arrivals_per_day * interval_s / 86_400.0;
        for t in 0..n_samples {
            let hour = (t as f64 * interval_s / 3_600.0).rem_euclid(24.0);
            let angle = (hour - cfg.peak_hour) / 24.0 * 2.0 * std::f64::consts::PI;
            let rate = per_sample * (1.0 + cfg.diurnal_amplitude * angle.cos()).max(0.0);
            for _ in 0..poisson(&mut rng, rate) {
                spawn(&mut events, &mut rng, t, cfg.mean_lifetime_s);
            }
        }

        // Flash crowds: batch bursts on top.
        for fc in &cfg.flash_crowds {
            assert!(
                fc.at_sample < n_samples,
                "flash crowd at sample {} beyond horizon {n_samples}",
                fc.at_sample
            );
            for _ in 0..fc.arrivals {
                spawn(&mut events, &mut rng, fc.at_sample, fc.mean_lifetime_s);
            }
        }

        // Stable sort: same-sample events keep generation order, so a
        // burst's arrivals are admitted in index order.
        events.sort_by_key(|e| e.at_sample);

        // One sector-trace row per churn VM (demand curve + memory/nominal
        // capacity), statistically matched to the base population.
        let trace = generate_trace(&TraceConfig {
            n_vms: next_k,
            n_samples,
            interval_s,
            seed: seed_stream(cfg.seed, STREAM_DEMAND),
        });
        ChurnWorkload {
            events,
            trace,
            n_samples,
        }
    }

    /// A workload with zero lifecycle events (the fixed-population case:
    /// replaying it must be bit-identical to not replaying churn at all).
    pub fn empty(n_samples: usize, interval_s: f64) -> ChurnWorkload {
        ChurnWorkload {
            events: Vec::new(),
            trace: generate_trace(&TraceConfig {
                n_vms: 0,
                n_samples,
                interval_s,
                seed: 0,
            }),
            n_samples,
        }
    }

    /// The sorted event stream.
    pub fn events(&self) -> &[VmEvent] {
        &self.events
    }

    /// Total number of distinct churn VMs (arrival events).
    pub fn n_churn_vms(&self) -> usize {
        self.trace.n_vms()
    }

    /// Horizon length in samples.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// CPU demand (GHz) of churn VM `k` at sample `t`.
    pub fn demand_ghz(&self, k: usize, t: usize) -> f64 {
        self.trace.demand_ghz(k, t)
    }

    /// Memory footprint (MiB) of churn VM `k`.
    pub fn memory_mib(&self, k: usize) -> f64 {
        self.trace.meta(k).memory_mib
    }

    /// Total arrival events (== [`ChurnWorkload::n_churn_vms`]).
    pub fn total_arrivals(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Arrive(_)))
            .count()
    }

    /// Total departure events inside the horizon (VMs whose lifetime ends
    /// after the horizon never depart).
    pub fn total_departures(&self) -> usize {
        self.events.len() - self.total_arrivals()
    }
}

/// Knuth's Poisson sampler — exact and branch-deterministic, fine for the
/// per-sample rates churn uses (a handful of arrivals per sample at most).
fn poisson(rng: &mut SimRng, rate: f64) -> usize {
    if rate <= 0.0 {
        return 0;
    }
    let limit = (-rate).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.uniform();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = ChurnConfig::with_flash_crowd(40.0, 10, 12, 7);
        let a = ChurnWorkload::generate(&cfg, 96, 900.0);
        let b = ChurnWorkload::generate(&cfg, 96, 900.0);
        assert_eq!(a, b);
        let c = ChurnWorkload::generate(&ChurnConfig { seed: 8, ..cfg }, 96, 900.0);
        assert_ne!(a, c);
    }

    #[test]
    fn events_are_sorted_and_departures_follow_arrivals() {
        let cfg = ChurnConfig::with_flash_crowd(60.0, 5, 20, 3);
        let w = ChurnWorkload::generate(&cfg, 192, 900.0);
        assert!(w
            .events()
            .windows(2)
            .all(|p| p[0].at_sample <= p[1].at_sample));
        // Every departure's VM arrived strictly earlier.
        let mut arrive_at = std::collections::BTreeMap::new();
        for e in w.events() {
            match e.kind {
                EventKind::Arrive(k) => {
                    assert!(
                        arrive_at.insert(k, e.at_sample).is_none(),
                        "vm {k} arrived twice"
                    );
                }
                EventKind::Depart(k) => {
                    let at = arrive_at.get(&k).expect("departure before arrival");
                    assert!(e.at_sample > *at, "vm {k} departs at its arrival sample");
                }
            }
        }
        assert_eq!(w.total_arrivals(), w.n_churn_vms());
        assert!(w.total_departures() <= w.total_arrivals());
    }

    #[test]
    fn flash_crowd_lands_as_a_batch() {
        let base = ChurnWorkload::generate(&ChurnConfig::steady(20.0, 5), 96, 900.0);
        let burst =
            ChurnWorkload::generate(&ChurnConfig::with_flash_crowd(20.0, 48, 25, 5), 96, 900.0);
        let arrivals_at = |w: &ChurnWorkload, t: usize| {
            w.events()
                .iter()
                .filter(|e| e.at_sample == t && matches!(e.kind, EventKind::Arrive(_)))
                .count()
        };
        assert_eq!(arrivals_at(&burst, 48), arrivals_at(&base, 48) + 25);
        assert_eq!(burst.n_churn_vms(), base.n_churn_vms() + 25);
    }

    #[test]
    fn diurnal_modulation_shifts_arrival_mass_toward_the_peak() {
        // One simulated week, strong modulation: the peak-hour half of the
        // day must collect clearly more arrivals than the trough half.
        let cfg = ChurnConfig {
            diurnal_amplitude: 1.0,
            ..ChurnConfig::steady(200.0, 11)
        };
        let w = ChurnWorkload::generate(&cfg, 672, 900.0);
        let (mut near, mut far) = (0usize, 0usize);
        for e in w.events() {
            if let EventKind::Arrive(_) = e.kind {
                let hour = (e.at_sample as f64 * 0.25).rem_euclid(24.0);
                let dist = (hour - cfg.peak_hour)
                    .abs()
                    .min(24.0 - (hour - cfg.peak_hour).abs());
                if dist < 6.0 {
                    near += 1;
                } else {
                    far += 1;
                }
            }
        }
        assert!(
            near > 2 * far,
            "peak half-day should dominate: {near} near vs {far} far"
        );
    }

    #[test]
    fn empty_workload_has_no_events() {
        let w = ChurnWorkload::empty(48, 900.0);
        assert!(w.events().is_empty());
        assert_eq!(w.n_churn_vms(), 0);
        assert_eq!(w.total_arrivals(), 0);
        assert_eq!(w.total_departures(), 0);
    }

    #[test]
    fn demand_rows_cover_every_churn_vm() {
        let w = ChurnWorkload::generate(&ChurnConfig::steady(50.0, 13), 96, 900.0);
        assert!(w.n_churn_vms() > 0, "50/day over a day should arrive");
        for k in 0..w.n_churn_vms() {
            assert!(w.memory_mib(k) >= 512.0);
            for t in 0..w.n_samples() {
                let d = w.demand_ghz(k, t);
                assert!(d.is_finite() && d >= 0.0);
            }
        }
    }

    #[test]
    fn poisson_mean_tracks_rate() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson(&mut rng, 1.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1.5).abs() < 0.05, "poisson mean {mean} vs 1.5");
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }
}
