//! Dense linear-algebra substrate for `vdcpower`.
//!
//! The control-theory ecosystem in Rust is thin, so this crate implements —
//! from scratch — everything the MPC response-time controller of the paper
//! needs:
//!
//! * [`Matrix`] / [`Vector`]: small dense row-major matrices with the usual
//!   arithmetic.
//! * [`lu::Lu`]: LU decomposition with partial pivoting (general solves,
//!   determinants, inverses, KKT systems).
//! * [`qr::Qr`]: Householder QR (least-squares system identification).
//! * [`cholesky::Cholesky`]: SPD factorization (fast solves of MPC Hessians).
//! * [`lstsq`](crate::lstsq()): unconstrained and equality-constrained least squares.
//! * [`svd`]: one-sided Jacobi SVD (exact condition numbers, numerical
//!   rank, pseudo-inverse solves of rank-deficient identification data).
//! * [`qp`]: box- and equality-constrained quadratic programming via a
//!   primal active-set method (the "least squares solver" of §IV-B of the
//!   paper, honoring allocation ranges).
//! * [`eig`] / [`poly`] / [`complex`]: spectral radii via characteristic
//!   polynomials and Aberth–Ehrlich root finding (closed-loop stability
//!   analysis of the identified ARX models).
//!
//! Matrices here are *small* (MPC horizons of tens, ARX orders of a few), so
//! the implementations favour clarity and numerical robustness over blocked
//! performance; everything is `O(n³)` dense with partial pivoting.

#![warn(missing_docs)]
// Triangular-solve and factorization loops index by position on purpose:
// the math (row/column recurrences with running offsets) reads better with
// explicit indices than with iterator adaptors.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod complex;
pub mod eig;
pub mod hildreth;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod poly;
pub mod qp;
pub mod qr;
pub mod svd;
pub mod vector;

pub use cholesky::Cholesky;
pub use complex::Complex;
pub use eig::{eigenvalues, spectral_radius};
pub use hildreth::{hildreth_solve, HildrethSolution};
pub use lstsq::{lstsq, lstsq_eq};
pub use lu::Lu;
pub use matrix::Matrix;
pub use qp::{BoxQp, QpError, QpSolution};
pub use qr::Qr;
pub use svd::Svd;
pub use vector::Vector;

/// Error type shared by the factorizations and solvers in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// The matrix was structurally incompatible (dimension mismatch).
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
        /// Dimensions the caller supplied, `(rows, cols)` pairs.
        got: (usize, usize),
        /// Dimensions that were required.
        expected: (usize, usize),
    },
    /// The matrix was singular (or numerically so) to working precision.
    Singular,
    /// The matrix was expected to be symmetric positive definite but is not.
    NotPositiveDefinite,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                context,
                got,
                expected,
            } => write!(
                f,
                "dimension mismatch in {context}: got {}x{}, expected {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            LinalgError::NoConvergence => write!(f, "iteration failed to converge"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Result alias for linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
