//! Eigenvalues of small dense matrices.
//!
//! Used to analyze the closed-loop dynamics of the MPC controller: the paper
//! argues stability via the terminal constraint; we verify numerically by
//! computing the spectral radius of the closed-loop transition matrix (all
//! eigenvalues must lie strictly inside the unit circle).
//!
//! Implementation: characteristic polynomial via the Faddeev–LeVerrier
//! recurrence, then Aberth–Ehrlich root finding. This is `O(n⁴)` and only
//! appropriate for the small (n ≲ 15) matrices that appear in identified
//! ARX models — which is exactly our use case.

use crate::complex::Complex;
use crate::matrix::Matrix;
use crate::poly::Poly;
use crate::{LinalgError, Result};

/// Coefficients of the characteristic polynomial `det(λI − A)`, lowest
/// degree first, computed with the Faddeev–LeVerrier recurrence.
pub fn characteristic_polynomial(a: &Matrix) -> Result<Poly> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            context: "characteristic_polynomial",
            got: a.shape(),
            expected: (a.rows(), a.rows()),
        });
    }
    let n = a.rows();
    // c[n] = 1 (monic); recurrence produces c[n-k] for k = 1..n.
    let mut coeffs = vec![0.0; n + 1];
    coeffs[n] = 1.0;
    let mut m = Matrix::zeros(n, n); // M_0 = 0
    for k in 1..=n {
        // M_k = A * M_{k-1} + c_{n-k+1} * I
        let mut am = a.matmul(&m)?;
        let prev_c = coeffs[n - k + 1];
        for i in 0..n {
            am[(i, i)] += prev_c;
        }
        m = am;
        // c_{n-k} = -trace(A * M_k) / k
        let amk = a.matmul(&m)?;
        let trace: f64 = (0..n).map(|i| amk[(i, i)]).sum();
        coeffs[n - k] = -trace / k as f64;
    }
    Ok(Poly::new(coeffs))
}

/// All eigenvalues of a small square matrix.
pub fn eigenvalues(a: &Matrix) -> Result<Vec<Complex>> {
    characteristic_polynomial(a)?.roots()
}

/// Spectral radius `max |λᵢ|` of a small square matrix.
pub fn spectral_radius(a: &Matrix) -> Result<f64> {
    Ok(eigenvalues(a)?.iter().fold(0.0_f64, |m, z| m.max(z.abs())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_eigenvalues() {
        let a = Matrix::diag(&[1.0, 2.0, 3.0]);
        let mut eigs: Vec<f64> = eigenvalues(&a).unwrap().iter().map(|z| z.re).collect();
        eigs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((eigs[0] - 1.0).abs() < 1e-8);
        assert!((eigs[1] - 2.0).abs() < 1e-8);
        assert!((eigs[2] - 3.0).abs() < 1e-8);
    }

    #[test]
    fn char_poly_2x2() {
        // A = [[2, 1], [1, 2]] => λ² - 4λ + 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let p = characteristic_polynomial(&a).unwrap();
        let c = p.coeffs();
        assert!((c[0] - 3.0).abs() < 1e-12);
        assert!((c[1] + 4.0).abs() < 1e-12);
        assert!((c[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_matrix_complex_eigs() {
        // 90° rotation: eigenvalues ±i, spectral radius 1.
        let a = Matrix::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]]);
        let eigs = eigenvalues(&a).unwrap();
        for z in &eigs {
            assert!(z.re.abs() < 1e-8);
            assert!((z.im.abs() - 1.0).abs() < 1e-8);
        }
        assert!((spectral_radius(&a).unwrap() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn stable_companion_matrix() {
        // Companion matrix of z² - 0.5 z - 0.2 (stable ARX poles).
        let a = Matrix::from_rows(&[&[0.5, 0.2], &[1.0, 0.0]]);
        let rho = spectral_radius(&a).unwrap();
        assert!(rho < 1.0, "spectral radius {rho} should be < 1");
        // Against explicit quadratic roots: (0.5 ± sqrt(0.25 + 0.8)) / 2.
        let r = (0.5 + (0.25_f64 + 0.8).sqrt()) / 2.0;
        assert!((rho - r).abs() < 1e-8);
    }

    #[test]
    fn unstable_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.2, 0.0], &[0.3, 0.5]]);
        assert!(spectral_radius(&a).unwrap() > 1.0);
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            eigenvalues(&Matrix::zeros(2, 3)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn trace_and_det_consistency() {
        // Sum of eigenvalues = trace; product = det.
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[2.0, 3.0, 1.0], &[0.0, 1.0, 5.0]]);
        let eigs = eigenvalues(&a).unwrap();
        let sum: f64 = eigs.iter().map(|z| z.re).sum();
        assert!((sum - 12.0).abs() < 1e-7);
        let prod = eigs.iter().fold(Complex::ONE, |acc, &z| acc * z);
        let det = crate::lu::Lu::new(&a).unwrap().det();
        assert!((prod.re - det).abs() < 1e-6);
        assert!(prod.im.abs() < 1e-6);
    }
}
